//===- support/Args.h - Checked CLI argument parsing ----------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict numeric flag parsing shared by the CLIs (ssp-sim, ssp-adapt,
/// ssp-verify) and the bench harness. Replaces the bare std::atoi calls
/// that silently turned `--memlat garbage` into 0: a malformed, missing,
/// overflowing or out-of-range value is reported on stderr and rejected
/// instead of being misread as a number.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SUPPORT_ARGS_H
#define SSP_SUPPORT_ARGS_H

#include <cstdint>

namespace ssp::support {

/// Parses \p Text as a full-string base-10 unsigned integer into \p Out.
/// Rejects empty strings, any non-digit character (including signs and
/// leading/trailing whitespace) and values that overflow uint64_t.
bool parseUnsigned(const char *Text, uint64_t &Out);

/// Parses the value of numeric flag Argv[I] (e.g. "--jobs"): consumes
/// Argv[I+1], advancing \p I, and range-checks against [\p Min, \p Max].
/// On a missing, malformed or out-of-range value, prints a one-line error
/// naming the flag to stderr and returns false (callers then print their
/// usage text and exit non-zero).
bool parseUnsignedFlag(int Argc, char **Argv, int &I, uint64_t Min,
                       uint64_t Max, uint64_t &Out);

} // namespace ssp::support

#endif // SSP_SUPPORT_ARGS_H
