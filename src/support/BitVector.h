//===- support/BitVector.h - Dense fixed-size bit vector ------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense word-packed bit vector, promoted out of ReachingDefs' private
/// BitSet so every analysis and the slicer share one implementation. The
/// slicer's hot paths key sets by dense instruction / register ids, so a
/// flat bit vector replaces the tree-based std::set<...> structures: set
/// membership is one load+mask, unions are word-wide ORs, and ascending
/// iteration (forEachSetBit) reproduces std::set's sorted traversal order
/// bit for bit — the property the deterministic-output contract rests on.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SUPPORT_BITVECTOR_H
#define SSP_SUPPORT_BITVECTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ssp::support {

class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t Bits) { resize(Bits); }

  /// Resizes to \p Bits bits, all zero (existing contents are discarded).
  void resize(size_t Bits) {
    NumBits = Bits;
    Words.assign((Bits + 63) / 64, 0);
  }

  /// Clears every bit, keeping the size.
  void clearAll() { Words.assign(Words.size(), 0); }

  size_t size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  bool test(size_t I) const {
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  void set(size_t I) { Words[I / 64] |= uint64_t(1) << (I % 64); }
  void reset(size_t I) { Words[I / 64] &= ~(uint64_t(1) << (I % 64)); }

  /// Sets bit \p I; returns true when it was previously clear (the
  /// insert-if-new idiom the slicer worklists use).
  bool testAndSet(size_t I) {
    uint64_t &W = Words[I / 64];
    uint64_t Mask = uint64_t(1) << (I % 64);
    if (W & Mask)
      return false;
    W |= Mask;
    return true;
  }

  /// In-place union; returns true if any bit changed.
  bool unionWith(const BitVector &O) {
    bool Changed = false;
    for (size_t W = 0; W < Words.size(); ++W) {
      uint64_t New = Words[W] | O.Words[W];
      if (New != Words[W]) {
        Words[W] = New;
        Changed = true;
      }
    }
    return Changed;
  }

  /// True when the two vectors share any set bit (sized equally).
  bool anyCommon(const BitVector &O) const {
    size_t N = Words.size() < O.Words.size() ? Words.size() : O.Words.size();
    for (size_t W = 0; W < N; ++W)
      if (Words[W] & O.Words[W])
        return true;
    return false;
  }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  /// Calls \p Fn(index) for every set bit in ascending order.
  template <typename Fn> void forEachSetBit(Fn &&F) const {
    for (size_t WI = 0; WI < Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned B = static_cast<unsigned>(__builtin_ctzll(W));
        F(WI * 64 + B);
        W &= W - 1;
      }
    }
  }

  friend bool operator==(const BitVector &A, const BitVector &B) {
    return A.NumBits == B.NumBits && A.Words == B.Words;
  }

private:
  std::vector<uint64_t> Words;
  size_t NumBits = 0;
};

} // namespace ssp::support

#endif // SSP_SUPPORT_BITVECTOR_H
