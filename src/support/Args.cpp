//===- support/Args.cpp - Checked CLI argument parsing --------------------===//

#include "support/Args.h"

#include <cstdio>

using namespace ssp;

bool support::parseUnsigned(const char *Text, uint64_t &Out) {
  if (!Text || *Text == '\0')
    return false;
  uint64_t V = 0;
  for (const char *P = Text; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    unsigned Digit = static_cast<unsigned>(*P - '0');
    if (V > (UINT64_MAX - Digit) / 10)
      return false; // Overflow.
    V = V * 10 + Digit;
  }
  Out = V;
  return true;
}

bool support::parseUnsignedFlag(int Argc, char **Argv, int &I, uint64_t Min,
                                uint64_t Max, uint64_t &Out) {
  const char *Flag = Argv[I];
  if (I + 1 >= Argc) {
    std::fprintf(stderr, "error: %s requires a value\n", Flag);
    return false;
  }
  const char *Text = Argv[++I];
  uint64_t V = 0;
  if (!parseUnsigned(Text, V)) {
    std::fprintf(stderr, "error: %s expects an unsigned integer, got '%s'\n",
                 Flag, Text);
    return false;
  }
  if (V < Min || V > Max) {
    std::fprintf(stderr,
                 "error: %s value %llu out of range [%llu, %llu]\n", Flag,
                 (unsigned long long)V, (unsigned long long)Min,
                 (unsigned long long)Max);
    return false;
  }
  Out = V;
  return true;
}
