//===- support/TablePrinter.cpp - Aligned text tables ---------------------===//

#include "support/TablePrinter.h"

#include <cassert>
#include <cstdio>

using namespace ssp;

void TablePrinter::cell(const std::string &Text) {
  assert(!Rows.empty() && "cell() before row()");
  Rows.back().push_back(Text);
}

void TablePrinter::cell(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  cell(std::string(Buf));
}

void TablePrinter::cell(long long Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", Value);
  cell(std::string(Buf));
}

void TablePrinter::cell(unsigned long long Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu", Value);
  cell(std::string(Buf));
}

std::string TablePrinter::toString() const {
  // Compute the width of each column across all rows.
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Row.size() > Widths.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();
  }

  std::string Out;
  for (size_t R = 0; R < Rows.size(); ++R) {
    const auto &Row = Rows[R];
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        Out += "  ";
      Out += Row[I];
      Out.append(Widths[I] - Row[I].size(), ' ');
    }
    Out += '\n';
    if (R == 0 && Rows.size() > 1) {
      size_t Total = 0;
      for (size_t I = 0; I < Widths.size(); ++I)
        Total += Widths[I] + (I != 0 ? 2 : 0);
      Out.append(Total, '-');
      Out += '\n';
    }
  }
  return Out;
}

void TablePrinter::print(std::FILE *Out) const {
  std::fputs(toString().c_str(), Out);
}
