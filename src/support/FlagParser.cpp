//===- support/FlagParser.cpp - Declarative CLI flag parsing --------------===//

#include "support/FlagParser.h"

#include "support/Args.h"

#include <cstdio>
#include <cstring>

using namespace ssp::support;

FlagParser &FlagParser::flag(const char *Name, bool &Out) {
  Spec S;
  S.K = Spec::Bool;
  S.Name = Name;
  S.B = &Out;
  Specs.push_back(std::move(S));
  return *this;
}

FlagParser &FlagParser::flag(const char *Name, unsigned &Out, uint64_t Min,
                             uint64_t Max) {
  Spec S;
  S.K = Spec::Uint;
  S.Name = Name;
  S.U32 = &Out;
  S.Min = Min;
  S.Max = Max;
  Specs.push_back(std::move(S));
  return *this;
}

FlagParser &FlagParser::flag(const char *Name, uint64_t &Out, uint64_t Min,
                             uint64_t Max) {
  Spec S;
  S.K = Spec::Uint;
  S.Name = Name;
  S.U64 = &Out;
  S.Min = Min;
  S.Max = Max;
  Specs.push_back(std::move(S));
  return *this;
}

FlagParser &FlagParser::flag(const char *Name, const char *&Out) {
  Spec S;
  S.K = Spec::Str;
  S.Name = Name;
  S.S = &Out;
  Specs.push_back(std::move(S));
  return *this;
}

FlagParser &FlagParser::flagEq(const char *Name,
                               std::function<bool(const char *)> Fn) {
  Spec S;
  S.K = Spec::Eq;
  S.Name = Name;
  S.Fn = std::move(Fn);
  Specs.push_back(std::move(S));
  return *this;
}

bool FlagParser::parse(std::vector<std::string> *Positional) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (Arg[0] != '-' || Arg[1] == '\0') {
      if (!Positional) {
        std::fprintf(stderr, "error: unexpected argument '%s'\n", Arg);
        return false;
      }
      Positional->push_back(Arg);
      continue;
    }
    const Spec *Match = nullptr;
    const char *EqValue = nullptr; // Non-null only for `--name=VALUE`.
    for (const Spec &S : Specs) {
      if (std::strcmp(Arg, S.Name) == 0) {
        Match = &S;
        break;
      }
      if (S.K == Spec::Eq) {
        size_t Len = std::strlen(S.Name);
        if (std::strncmp(Arg, S.Name, Len) == 0 && Arg[Len] == '=') {
          Match = &S;
          EqValue = Arg + Len + 1;
          break;
        }
      }
    }
    if (!Match) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg);
      return false;
    }
    switch (Match->K) {
    case Spec::Bool:
      *Match->B = true;
      break;
    case Spec::Uint: {
      uint64_t V = 0;
      if (!parseUnsignedFlag(Argc, Argv, I, Match->Min, Match->Max, V))
        return false;
      if (Match->U32)
        *Match->U32 = static_cast<unsigned>(V);
      else
        *Match->U64 = V;
      break;
    }
    case Spec::Str:
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Match->Name);
        return false;
      }
      *Match->S = Argv[++I];
      break;
    case Spec::Eq:
      if (!Match->Fn(EqValue)) {
        std::fprintf(stderr, "error: invalid value for %s: '%s'\n",
                     Match->Name, EqValue ? EqValue : "");
        return false;
      }
      break;
    }
  }
  return true;
}
