//===- support/RNG.h - Deterministic random number generation ------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic xorshift-based RNG. The workload generators use it
/// so that every simulation run of a benchmark touches exactly the same data
/// structure layout, which keeps the baseline and the SSP-enhanced binary
/// observationally comparable and makes all experiments reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SUPPORT_RNG_H
#define SSP_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace ssp {

/// xorshift128+ generator with a splitmix64-seeded state. Deterministic for a
/// given seed on all platforms, unlike std::mt19937 distributions.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9E3779B97F4A7C15ULL) {
    State0 = splitMix64(Seed + 1);
    State1 = splitMix64(Seed + 2);
    // Avoid the all-zero state, which is a fixed point of xorshift.
    if (State0 == 0 && State1 == 0)
      State1 = 0x9E3779B97F4A7C15ULL;
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    uint64_t X = State0;
    const uint64_t Y = State1;
    State0 = Y;
    X ^= X << 23;
    State1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return State1 + Y;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be non-zero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow bound must be non-zero");
    return next() % Bound;
  }

  /// Returns a uniform value in [Lo, Hi]. Requires Lo <= Hi.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "invalid range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t splitMix64(uint64_t X) {
    uint64_t Z = X + 0x9E3779B97F4A7C15ULL;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  uint64_t State0;
  uint64_t State1;
};

} // namespace ssp

#endif // SSP_SUPPORT_RNG_H
