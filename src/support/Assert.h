//===- support/Assert.h - Assertion helpers ------------------------------===//
//
// Part of the ssp-postpass project: a reproduction of "Post-Pass Binary
// Adaptation for Software-Based Speculative Precomputation" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small assertion helpers shared across the project. `ssp_unreachable`
/// mirrors llvm_unreachable: it aborts with a message in all build modes so
/// that impossible control flow is always diagnosed.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SUPPORT_ASSERT_H
#define SSP_SUPPORT_ASSERT_H

#include <cstdio>
#include <cstdlib>

namespace ssp {

/// Aborts the program, reporting \p Msg and the source location. Used to mark
/// control flow that must never be reached if program invariants hold.
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

/// Aborts the program with a fatal-error message. Used for invariant
/// violations that must be diagnosed even in release builds.
[[noreturn]] inline void fatalError(const char *Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::abort();
}

} // namespace ssp

#define ssp_unreachable(MSG) ::ssp::unreachableImpl(MSG, __FILE__, __LINE__)

#endif // SSP_SUPPORT_ASSERT_H
