//===- support/ThreadPool.h - Fixed-size worker pool ----------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size, FIFO thread pool for the experiment harness: simulation
/// jobs are coarse (whole cycle-level runs) and independent, so a single
/// locked queue — no work stealing — is all the machinery required. A pool
/// constructed with one thread spawns no workers at all and runs every job
/// inline on the submitting thread, which makes `--jobs 1` exactly the
/// serial execution path.
///
/// Determinism contract: the pool adds no randomness. Each job owns all of
/// its mutable state; results are written to caller-provided slots, so any
/// schedule produces bit-identical outputs. Exceptions thrown inside a job
/// are captured in the returned future and rethrown to the waiter.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SUPPORT_THREADPOOL_H
#define SSP_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ssp::support {

class ThreadPool {
public:
  /// \p NumThreads = 0 selects defaultConcurrency(). One thread means "run
  /// inline": no workers are spawned.
  explicit ThreadPool(unsigned NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// The pool's parallelism (>= 1, counting the submitting thread for the
  /// inline pool).
  unsigned numThreads() const { return NumThreads; }

  /// Enqueues \p Fn; the future completes when the job finishes and
  /// rethrows anything the job threw. With an inline pool the job runs
  /// before submit returns.
  std::future<void> submit(std::function<void()> Fn);

  /// Runs Fn(0..N-1), blocking until all complete. With an inline pool
  /// this is a plain loop. Otherwise the wait is *cooperative*: while its
  /// tasks are pending the calling thread pops and runs queued tasks (any
  /// waiter's), and blocks only when the queue is empty — so nesting
  /// parallelFor inside a pool task is safe; one process-wide pool can
  /// carry request-level parallelism layered over per-request fan-out.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// max(1, std::thread::hardware_concurrency()).
  static unsigned defaultConcurrency();

private:
  void workerLoop();

  /// Pops and runs one queued task; false if the queue was empty.
  bool runOneTask();

  unsigned NumThreads;
  std::vector<std::thread> Workers;
  std::deque<std::packaged_task<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable CV;
  bool Stopping = false;
};

} // namespace ssp::support

#endif // SSP_SUPPORT_THREADPOOL_H
