//===- support/TablePrinter.h - Aligned text tables for benches -----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small helper that renders aligned ASCII tables. The benchmark harness
/// uses it to print the rows of every table and figure the paper reports in
/// a form that is easy to diff against the paper's numbers.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SUPPORT_TABLEPRINTER_H
#define SSP_SUPPORT_TABLEPRINTER_H

#include <cstdio>
#include <string>
#include <vector>

namespace ssp {

/// Accumulates rows of string cells and prints them with per-column
/// alignment. The first added row is treated as the header.
class TablePrinter {
public:
  /// Starts a new row. Subsequent cell() calls append to it.
  void row() { Rows.emplace_back(); }

  /// Appends a string cell to the current row.
  void cell(const std::string &Text);

  /// Appends a formatted floating-point cell with \p Digits fraction digits.
  void cell(double Value, int Digits = 2);

  /// Appends an integer cell.
  void cell(long long Value);
  void cell(unsigned long long Value);
  void cell(int Value) { cell(static_cast<long long>(Value)); }
  void cell(unsigned Value) { cell(static_cast<unsigned long long>(Value)); }
  void cell(size_t Value) { cell(static_cast<unsigned long long>(Value)); }

  /// Renders the table to \p Out (defaults to stdout). A separator line is
  /// drawn between the header row and the body.
  void print(std::FILE *Out = stdout) const;

  /// Renders the table into a string (used by unit tests).
  std::string toString() const;

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace ssp

#endif // SSP_SUPPORT_TABLEPRINTER_H
