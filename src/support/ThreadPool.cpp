//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//

#include "support/ThreadPool.h"

#include <chrono>
#include <memory>

using namespace ssp;
using namespace ssp::support;

unsigned ThreadPool::defaultConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned NumThreads)
    : NumThreads(NumThreads == 0 ? defaultConcurrency() : NumThreads) {
  if (this->NumThreads <= 1)
    return; // Inline pool: jobs run on the submitting thread.
  Workers.reserve(this->NumThreads);
  for (unsigned I = 0; I < this->NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  CV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::packaged_task<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      CV.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> Fn) {
  std::packaged_task<void()> Task(std::move(Fn));
  std::future<void> Fut = Task.get_future();
  if (NumThreads <= 1) {
    Task(); // Inline pool: run now; the future carries any exception.
    return Fut;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  CV.notify_one();
  return Fut;
}

bool ThreadPool::runOneTask() {
  std::packaged_task<void()> Task;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Queue.empty())
      return false;
    Task = std::move(Queue.front());
    Queue.pop_front();
  }
  Task();
  return true;
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
  if (NumThreads <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  // Each task owns a handle to the callable: if get() rethrows, this frame
  // unwinds while later tasks may still be queued or running, so they must
  // not reference the caller's Fn.
  auto Shared = std::make_shared<std::function<void(size_t)>>(Fn);
  std::vector<std::future<void>> Futures;
  Futures.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Futures.push_back(submit([Shared, I] { (*Shared)(I); }));
  // Cooperative wait: while our tasks are pending, drain and run whatever
  // sits in the queue (ours or another waiter's) instead of sleeping. A
  // thread therefore never blocks on a task that is merely *queued* — it
  // only blocks once the queue is empty, at which point the awaited task
  // is provably running on another thread (or done). That makes nested
  // parallelFor on one shared pool deadlock-free: the serving layer fans
  // out over requests while each request fans out over delinquent loads.
  for (std::future<void> &F : Futures)
    while (F.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready)
      if (!runOneTask())
        F.wait();
  for (std::future<void> &F : Futures)
    F.get(); // Rethrows the first failure in index order.
}

