//===- support/Hash.cpp - Stable 64-bit content hashing -------------------===//

#include "support/Hash.h"

using namespace ssp;
using namespace ssp::support;

static constexpr uint64_t FnvPrime = 0x100000001b3ULL;

uint64_t ssp::support::hashBytes(const void *Data, size_t Len, uint64_t H) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

uint64_t ssp::support::hashValue(uint64_t Value, uint64_t H) {
  for (int I = 0; I < 8; ++I) {
    H ^= (Value >> (8 * I)) & 0xFF;
    H *= FnvPrime;
  }
  return H;
}
