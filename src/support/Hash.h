//===- support/Hash.h - Stable 64-bit content hashing ---------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable 64-bit content hash (FNV-1a) for the adaptation service's
/// content-addressed cache: request payloads (program text, profile text,
/// canonical option text) are keyed by their hash, with the full bytes
/// compared on every hit — the hash narrows the search, it is never
/// trusted alone. FNV-1a is used deliberately instead of std::hash:
/// the value is part of the serving contract (logged, reported in
/// metrics, usable across processes), so it must not vary by standard
/// library, platform, or process (std::hash<std::string> may be seeded
/// per process).
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SUPPORT_HASH_H
#define SSP_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace ssp::support {

/// FNV-1a offset basis: the hash of zero bytes.
inline constexpr uint64_t HashSeed = 0xcbf29ce484222325ULL;

/// Folds \p Len bytes at \p Data into \p H (FNV-1a step).
uint64_t hashBytes(const void *Data, size_t Len, uint64_t H = HashSeed);

/// Content hash of a string's bytes.
inline uint64_t hashString(const std::string &S, uint64_t H = HashSeed) {
  return hashBytes(S.data(), S.size(), H);
}

/// Mixes \p Value into \p H as 8 little-endian bytes (endian-independent:
/// the bytes are derived by shifting, not by reinterpreting memory).
uint64_t hashValue(uint64_t Value, uint64_t H);

} // namespace ssp::support

#endif // SSP_SUPPORT_HASH_H
