//===- support/FlagParser.h - Declarative CLI flag parsing ----------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative flag parser shared by the tools and bench binaries,
/// replacing the hand-rolled strcmp loop each of them used to carry. Flags
/// are registered against references; parse() walks argv once, fills them
/// in, collects positional arguments, and reports the first malformed or
/// unknown flag on stderr (callers then print their usage text and exit).
///
/// Numeric values go through support::parseUnsigned, so the strictness of
/// the checked parsers (no signs, no whitespace, no overflow) is uniform
/// across every binary. Four flag shapes cover the whole CLI surface:
///
///   P.flag("--ooo", Ooo);                     presence -> bool
///   P.flag("--jobs", Jobs, 0, 512);           `--jobs N` -> integer
///   P.flag("--out", OutPath);                 `--out FILE` -> C string
///   P.flagEq("--sample", [&](const char *V) { ... });
///                                             `--name` or `--name=VALUE`
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SUPPORT_FLAGPARSER_H
#define SSP_SUPPORT_FLAGPARSER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ssp::support {

class FlagParser {
public:
  FlagParser(int Argc, char **Argv) : Argc(Argc), Argv(Argv) {}

  /// Presence flag: `--name` sets \p Out to true.
  FlagParser &flag(const char *Name, bool &Out);

  /// Integer flag: `--name N` with N in [\p Min, \p Max]. Leave the
  /// reference at its default before parse(); it is only written when the
  /// flag appears.
  FlagParser &flag(const char *Name, unsigned &Out, uint64_t Min,
                   uint64_t Max);
  FlagParser &flag(const char *Name, uint64_t &Out, uint64_t Min,
                   uint64_t Max);

  /// String flag: `--name VALUE` stores the argv pointer.
  FlagParser &flag(const char *Name, const char *&Out);

  /// Equals-form flag: `--name` invokes \p Fn with nullptr, `--name=VALUE`
  /// with the text after '='. \p Fn returns false to reject the value
  /// (parse() then fails after printing a one-line error).
  FlagParser &flagEq(const char *Name,
                     std::function<bool(const char *Value)> Fn);

  /// Walks argv. Non-flag arguments are appended to \p Positional when
  /// provided and rejected otherwise. Returns false on the first unknown
  /// flag or malformed value (diagnostic already printed to stderr).
  bool parse(std::vector<std::string> *Positional = nullptr);

private:
  struct Spec {
    enum Kind { Bool, Uint, Str, Eq } K;
    const char *Name;
    bool *B = nullptr;
    unsigned *U32 = nullptr;
    uint64_t *U64 = nullptr;
    const char **S = nullptr;
    uint64_t Min = 0, Max = 0;
    std::function<bool(const char *)> Fn;
  };

  int Argc;
  char **Argv;
  std::vector<Spec> Specs;
};

} // namespace ssp::support

#endif // SSP_SUPPORT_FLAGPARSER_H
