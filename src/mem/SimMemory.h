//===- mem/SimMemory.h - Sparse simulated address space -------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SimMemory is the 64-bit data address space of the simulated machine,
/// stored sparsely in 4 KiB pages. All accesses are 8-byte words (the IR's
/// ld8/st8). Speculative threads may compute wild addresses; readMaybe lets
/// the simulator service those without faulting, matching the paper's
/// statement that p-slice computation need not satisfy correctness
/// constraints.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_MEM_SIMMEMORY_H
#define SSP_MEM_SIMMEMORY_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <unordered_map>

namespace ssp::mem {

/// Simulated page size in bytes. Also the TLB page size.
inline constexpr uint64_t PageSize = 4096;

/// A sparse, paged 64-bit byte-addressed memory holding 8-byte words.
class SimMemory {
public:
  /// Reads the 64-bit word at \p Addr. The address must be 8-byte aligned
  /// and the page must be mapped (written before): main-thread semantics.
  uint64_t read(uint64_t Addr) const {
    assert((Addr & 7) == 0 && "unaligned access");
    const Page *P = findPage(Addr);
    assert(P && "main-thread read from unmapped memory");
    return P->Words[wordIndex(Addr)];
  }

  /// Reads the word at \p Addr, returning 0 for unmapped or unaligned
  /// addresses: speculative-thread semantics (wild loads never fault).
  /// Sets \p WasMapped so callers can count wrong-address prefetches.
  uint64_t readMaybe(uint64_t Addr, bool &WasMapped) const {
    if ((Addr & 7) != 0) {
      WasMapped = false;
      return 0;
    }
    const Page *P = findPage(Addr);
    WasMapped = P != nullptr;
    return P ? P->Words[wordIndex(Addr)] : 0;
  }

  /// Returns true if the page containing \p Addr has been written.
  bool isMapped(uint64_t Addr) const { return findPage(Addr) != nullptr; }

  /// Writes the 64-bit word at \p Addr, mapping the page on demand.
  void write(uint64_t Addr, uint64_t Value) {
    assert((Addr & 7) == 0 && "unaligned access");
    Page &P = getOrCreatePage(Addr);
    P.Words[wordIndex(Addr)] = Value;
  }

  /// Number of mapped pages (test/diagnostic aid).
  size_t numPages() const { return Pages.size(); }

private:
  struct Page {
    uint64_t Words[PageSize / 8] = {};
  };

  static uint64_t pageNumber(uint64_t Addr) { return Addr / PageSize; }
  static size_t wordIndex(uint64_t Addr) {
    return static_cast<size_t>((Addr % PageSize) / 8);
  }

  const Page *findPage(uint64_t Addr) const {
    auto It = Pages.find(pageNumber(Addr));
    return It == Pages.end() ? nullptr : It->second.get();
  }

  Page &getOrCreatePage(uint64_t Addr) {
    std::unique_ptr<Page> &Slot = Pages[pageNumber(Addr)];
    if (!Slot)
      Slot = std::make_unique<Page>();
    return *Slot;
  }

  std::unordered_map<uint64_t, std::unique_ptr<Page>> Pages;
};

/// A bump allocator over SimMemory used by the workload generators to lay
/// out heap data structures. Returns 8-byte-aligned simulated addresses and
/// zero-fills each allocation so that the pages are mapped.
class BumpAllocator {
public:
  /// \p Base is the first simulated address to hand out; keep it away from
  /// 0 so that null-pointer sentinels stay distinguishable.
  BumpAllocator(SimMemory &Mem, uint64_t Base = 0x10000)
      : Mem(Mem), Next(Base) {
    assert((Base & 7) == 0 && "allocator base must be aligned");
  }

  /// Allocates \p Bytes (rounded up to 8) and returns the base address.
  uint64_t alloc(uint64_t Bytes) {
    uint64_t Size = (Bytes + 7) & ~uint64_t(7);
    uint64_t Addr = Next;
    Next += Size;
    for (uint64_t Off = 0; Off < Size; Off += 8)
      Mem.write(Addr + Off, 0);
    return Addr;
  }

  /// Skips ahead to at least \p Addr (for placing structures at fixed spots
  /// or inserting padding that defeats accidental cache-friendly layouts).
  void alignTo(uint64_t Alignment) {
    assert(Alignment != 0 && (Alignment & (Alignment - 1)) == 0 &&
           "alignment must be a power of two");
    Next = (Next + Alignment - 1) & ~(Alignment - 1);
  }

  uint64_t bytesAllocated(uint64_t Base = 0x10000) const {
    return Next - Base;
  }

private:
  SimMemory &Mem;
  uint64_t Next;
};

} // namespace ssp::mem

#endif // SSP_MEM_SIMMEMORY_H
