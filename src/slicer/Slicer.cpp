//===- slicer/Slicer.cpp - Slicing for speculative precomputation ---------===//

#include "slicer/Slicer.h"

#include "sim/ThreadContext.h"
#include "support/Assert.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>

using namespace ssp;
using namespace ssp::slicer;
using namespace ssp::analysis;
using namespace ssp::ir;

Slicer::Slicer(const ProgramDeps &Deps, const RegionGraph &RG,
               const CallGraph &CG, const profile::ProfileData &PD,
               SliceOptions Opts, const SpecDeps *Spec)
    : Deps(Deps), RG(RG), CG(CG), PD(PD), Opts(Opts), Spec(Spec) {}

bool Slicer::blockIsCold(uint32_t Func, uint32_t Block) const {
  if (!Opts.Speculative)
    return false;
  return PD.blockCount(Func, Block) == 0;
}

bool Slicer::regionContains(int RegionIdx, uint32_t Func,
                            uint32_t Block) const {
  const Region &R = RG.region(RegionIdx);
  if (R.Func != Func)
    return false;
  if (R.Kind == RegionKind::Procedure)
    return true;
  return Deps.forFunction(Func).loops().loop(R.LoopIdx).contains(Block);
}

//===----------------------------------------------------------------------===//
// Callee summaries (Section 3.1.1): worklist fixed point over recursion.
//===----------------------------------------------------------------------===//

namespace {

/// Size cap for one register's summary slice; beyond this the summary is
/// truncated (the slice using it will then exceed its own cap and be
/// rejected, which matches the paper's guard against oversized slices).
constexpr size_t SummaryRegCap = 200;

/// Sorted-unique union into \p A. Inputs need not be sorted; the result is
/// sorted, matching the std::set-based union this replaces.
template <typename T>
void unionInPlace(std::vector<T> &A, const std::vector<T> &B) {
  A.insert(A.end(), B.begin(), B.end());
  std::sort(A.begin(), A.end());
  A.erase(std::unique(A.begin(), A.end()), A.end());
}

} // namespace

void Slicer::computeSummaries() {
  const Program &P = Deps.program();
  const InstIndex &Index = Deps.instIndex();
  std::vector<FuncSummary> Tab(P.numFuncs());
  for (FuncSummary &Sum : Tab) {
    Sum.DefinedRegs.resize(Reg::NumDenseIndices);
    Sum.Defined.resize(Reg::NumDenseIndices);
  }

  // Per-def closure state, reused across defs: membership bits over dense
  // program-wide instruction ids and dense register indices.
  support::BitVector Members(Index.numInsts());
  support::BitVector Entry(Reg::NumDenseIndices);

  // Iterate all function summaries to a fixed point. Sets only grow and
  // are bounded, so this terminates; recursion (e.g. treeadd) converges in
  // a few rounds.
  bool Changed = true;
  unsigned Round = 0;
  while (Changed && Round < 8) {
    Changed = false;
    ++Round;
    for (uint32_t FI = 0; FI < P.numFuncs(); ++FI) {
      const FunctionDeps &FD = Deps.forFunction(FI);
      FuncSummary &Sum = Tab[FI];

      for (const InstRef &Def : FD.reachingDefs().allDefs()) {
        Reg R = Def.get(P).def();
        if (blockIsCold(FI, Def.Block))
          continue;
        Sum.Defined.set(R.denseIndex());
        FuncSummary::RegInfo &Info = Sum.DefinedRegs[R.denseIndex()];

        // Closure of this def within the function.
        Members.clearAll();
        Entry.clearAll();
        size_t NumMembers = Info.Insts.size();
        size_t NumEntry = Info.EntryDeps.size();
        for (const InstRef &M : Info.Insts)
          Members.set(Index.id(M));
        for (Reg E : Info.EntryDeps)
          Entry.set(E.denseIndex());
        size_t OldMembers = NumMembers, OldEntry = NumEntry;

        std::deque<InstRef> Work;
        if (Members.testAndSet(Index.id(Def))) {
          ++NumMembers;
          Work.push_back(Def);
        }
        while (!Work.empty()) {
          InstRef I = Work.front();
          Work.pop_front();
          if (NumMembers > SummaryRegCap)
            break;
          const Instruction &Inst = I.get(P);
          Inst.forEachUse([&](Reg U) {
            if ((U.isInt() || U.isPred()) && U.Num == 0)
              return;
            FD.reachingDefs().forEachReachingDef(
                I.Block, I.Inst, U, RDScratch, [&](const InstRef &Prod) {
                  if (blockIsCold(FI, Prod.Block))
                    return;
                  if (Members.testAndSet(Index.id(Prod))) {
                    ++NumMembers;
                    Work.push_back(Prod);
                  }
                });
            if (FD.reachingDefs().mayBeLiveIn(I.Block, I.Inst, U) &&
                Entry.testAndSet(U.denseIndex()))
              ++NumEntry;
          });
          for (const InstRef &Ctrl : FD.controlSources(I)) {
            if (blockIsCold(FI, Ctrl.Block))
              continue;
            if (Members.testAndSet(Index.id(Ctrl))) {
              ++NumMembers;
              Work.push_back(Ctrl);
            }
          }
        }

        if (NumMembers != OldMembers || NumEntry != OldEntry) {
          Changed = true;
          Info.Insts.clear();
          Info.Insts.reserve(NumMembers);
          Members.forEachSetBit([&](size_t Id) {
            Info.Insts.push_back(Index.ref(static_cast<uint32_t>(Id)));
          });
          Info.EntryDeps.clear();
          Info.EntryDeps.reserve(NumEntry);
          Entry.forEachSetBit([&](size_t Dense) {
            Info.EntryDeps.push_back(
                regFromDenseIndex(static_cast<unsigned>(Dense)));
          });
        }
      }
      Sum.Computed = true;
    }
  }
  Summaries =
      std::make_shared<const std::vector<FuncSummary>>(std::move(Tab));
}

void Slicer::ensureSummaries() {
  if (!Summaries)
    computeSummaries();
}

const FuncSummary &Slicer::summaryOf(uint32_t Func) {
  ensureSummaries();
  return (*Summaries)[Func];
}

//===----------------------------------------------------------------------===//
// Demand-driven, region-restricted, context-sensitive slicing.
//===----------------------------------------------------------------------===//

namespace {

/// Acyclic may-reach test between two positions in one function's CFG
/// (used to decide whether a call site can feed a later use).
bool mayReach(const FunctionDeps &FD, const InstRef &From,
              const InstRef &To) {
  if (From.Block == To.Block)
    return From.Inst < To.Inst;
  const CFG &G = FD.cfg();
  std::vector<uint32_t> Work{From.Block};
  std::vector<uint8_t> Seen(G.numBlocks(), 0);
  Seen[From.Block] = 1;
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    for (uint32_t S : G.succs(B)) {
      if (S == To.Block)
        return true;
      if (!Seen[S]) {
        Seen[S] = 1;
        Work.push_back(S);
      }
    }
  }
  return false;
}

} // namespace

Slice Slicer::computeSlice(const InstRef &Load, int RegionIdx,
                           const std::vector<InstRef> &ContextCallSites) {
  const Program &P = Deps.program();
  const InstIndex &Index = Deps.instIndex();
  Slice S;
  S.PrimaryLoad = Load;
  S.TargetLoads.push_back(Load);
  S.RegionIdx = RegionIdx;
  S.Valid = true;

  // Frame k function: 0 = load's function; k>0 = ContextCallSites[k-1]'s.
  const size_t TopFrame = ContextCallSites.size();

  support::BitVector Members(Index.numInsts());
  size_t NumMembers = 0;
  support::BitVector LiveInDense(Reg::NumDenseIndices);
  std::deque<std::pair<InstRef, size_t>> Work; // (instruction, frame).

  auto InRegionAtFrame = [&](const InstRef &I, size_t K) {
    if (K < TopFrame)
      return true; // Inner frames are dynamically inside the region.
    return regionContains(RegionIdx, I.Func, I.Block);
  };

  // Adds an instruction to the slice.
  auto Include = [&](const InstRef &I, size_t K) {
    if (Members.test(Index.id(I)))
      return;
    if (blockIsCold(I.Func, I.Block))
      return; // Speculative slicing filters unexecuted paths.
    Members.set(Index.id(I));
    ++NumMembers;
    Work.push_back({I, K});
  };

  // Expands the value of register R as observed just before position Pos
  // at frame K. Memoized on (position, frame, register) to terminate in
  // the presence of recursive entry-dependence chains; the memo is one
  // lazily allocated instruction-id bitset per (frame, register).
  std::vector<std::unique_ptr<support::BitVector>> ExpandedUses(
      (TopFrame + 1) * Reg::NumDenseIndices);
  std::function<void(const InstRef &, size_t, Reg)> ExpandUse =
      [&](const InstRef &Pos, size_t K, Reg R) {
        if ((R.isInt() || R.isPred()) && R.Num == 0)
          return;
        auto &Memo = ExpandedUses[K * Reg::NumDenseIndices + R.denseIndex()];
        if (!Memo)
          Memo = std::make_unique<support::BitVector>(Index.numInsts());
        if (!Memo->testAndSet(Index.id(Pos)))
          return;
        const FunctionDeps &FD = Deps.forFunction(Pos.Func);

        FD.reachingDefs().forEachReachingDef(
            Pos.Block, Pos.Inst, R, RDScratch, [&](const InstRef &Prod) {
              if (!InRegionAtFrame(Prod, K)) {
                // Producer outside the region: the value is a live-in.
                LiveInDense.set(R.denseIndex());
                return;
              }
              // Speculation-aware slicing: a cold purely-loop-carried
              // producer is dropped from the slice and its value taken
              // from the LIB at trigger time instead — exactly what the
              // speculation assumes about the edge.
              analysis::SpecDrop Drop;
              if (Spec && Spec->shouldPrune(analysis::DepKind::Register,
                                            Prod, Pos, &Drop)) {
                LiveInDense.set(R.denseIndex());
                S.SpecDrops.push_back(Drop);
                return;
              }
              Include(Prod, K);
            });

        // Values produced inside callees: expand through summaries for
        // every warm call site that can reach this position and whose
        // callee may define R.
        for (const CallSite &C : CG.callSitesIn(Pos.Func)) {
          if (blockIsCold(Pos.Func, C.Site.Block))
            continue;
          if (!(C.Site == Pos) && !mayReach(FD, C.Site, Pos))
            continue;
          if (!InRegionAtFrame(C.Site, K))
            continue;
          const FuncSummary &Sum = summaryOf(C.Callee);
          const FuncSummary::RegInfo *Info = Sum.regInfo(R.denseIndex());
          if (!Info)
            continue;
          S.Interprocedural = true;
          for (const InstRef &M : Info->Insts)
            Include(M, K); // Callee instructions: dynamically in region.
          for (Reg E : Info->EntryDeps)
            ExpandUse(C.Site, K, E); // Actuals just before the call.
        }

        if (FD.reachingDefs().mayBeLiveIn(Pos.Block, Pos.Inst, R)) {
          if (K < TopFrame) {
            // Continue in the caller just before the context call site:
            // the context-sensitive contextmap(f, c) step.
            S.Interprocedural = true;
            ExpandUse(ContextCallSites[K], K + 1, R);
          } else {
            LiveInDense.set(R.denseIndex());
          }
        }
      };

  // Seed: the address operand of the delinquent load plus its control
  // dependences (Figure 3 includes the loop's continue condition).
  const Instruction &LoadInst = Load.get(P);
  assert(isLoad(LoadInst.Op) && "slicing a non-load");
  ExpandUse(Load, 0, LoadInst.Src1);
  {
    const FunctionDeps &FD = Deps.forFunction(Load.Func);
    for (const InstRef &Ctrl : FD.controlSources(Load))
      if (InRegionAtFrame(Ctrl, 0))
        Include(Ctrl, 0);
  }

  // Transitive closure.
  while (!Work.empty()) {
    auto [I, K] = Work.front();
    Work.pop_front();
    if (NumMembers > Opts.MaxSize) {
      S.Valid = false;
      S.RejectReason = "slice exceeds size cap";
      break;
    }
    const Instruction &Inst = I.get(P);
    const FunctionDeps &FD = Deps.forFunction(I.Func);

    if (Opts.RejectStoreDependent && isLoad(Inst.Op)) {
      for (const InstRef &Store : FD.memorySources(I)) {
        if (InRegionAtFrame(Store, K)) {
          // A cold store->load may-edge is speculatively ignored instead
          // of rejecting the slice.
          analysis::SpecDrop Drop;
          if (Spec && Spec->shouldPrune(analysis::DepKind::Memory, Store, I,
                                        &Drop)) {
            S.SpecDrops.push_back(Drop);
            continue;
          }
          S.Valid = false;
          S.RejectReason = "address depends on an in-region store";
        }
      }
    }

    Inst.forEachUse([&](Reg R) { ExpandUse(I, K, R); });
    for (const InstRef &Ctrl : FD.controlSources(I))
      if (InRegionAtFrame(Ctrl, K))
        Include(Ctrl, K);
  }

  S.Insts.reserve(NumMembers);
  Members.forEachSetBit([&](size_t Id) {
    S.Insts.push_back(Index.ref(static_cast<uint32_t>(Id)));
  });
  LiveInDense.forEachSetBit([&](size_t Dense) {
    S.LiveIns.push_back(regFromDenseIndex(static_cast<unsigned>(Dense)));
  });
  S.Interprocedural |= TopFrame > 0;
  std::sort(S.SpecDrops.begin(), S.SpecDrops.end());
  S.SpecDrops.erase(std::unique(S.SpecDrops.begin(), S.SpecDrops.end()),
                    S.SpecDrops.end());

  if (S.LiveIns.size() > sim::MaxLIBSlots - 2) {
    S.Valid = false;
    S.RejectReason = "too many live-ins for the LIB";
  }
  if (S.Valid && S.Insts.empty()) {
    S.Valid = false;
    S.RejectReason = "empty slice (address is region-invariant)";
  }
  return S;
}

void Slicer::mergeInto(Slice &A, const Slice &B) {
  assert(A.RegionIdx == B.RegionIdx && "merging slices of different regions");
  unionInPlace(A.Insts, B.Insts);
  unionInPlace(A.TargetLoads, B.TargetLoads);
  unionInPlace(A.LiveIns, B.LiveIns);
  unionInPlace(A.SpecDrops, B.SpecDrops);
  A.Interprocedural |= B.Interprocedural;
}

bool Slicer::combineIfOverlapping(Slice &A, const Slice &B) {
  if (A.RegionIdx != B.RegionIdx || !A.Valid || !B.Valid)
    return false;
  bool Shares = false;
  for (const InstRef &I : B.Insts)
    if (A.contains(I)) {
      Shares = true;
      break;
    }
  if (!Shares)
    return false;
  // Union members, targets, live-ins and speculation records.
  unionInPlace(A.Insts, B.Insts);
  unionInPlace(A.TargetLoads, B.TargetLoads);
  unionInPlace(A.LiveIns, B.LiveIns);
  unionInPlace(A.SpecDrops, B.SpecDrops);
  A.Interprocedural |= B.Interprocedural;
  return true;
}
