//===- slicer/Slicer.h - Slicing for speculative precomputation -----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The slicing machinery of Section 3.1:
///
///  * Backward, demand-driven slicing of a delinquent load's *address*
///    over data and control dependence edges.
///  * Region-restricted slices: producers outside the target region become
///    slice live-ins rather than slice members (region-based slicing,
///    Section 3.1.1, prunes traversal once the slack is large enough).
///  * Context sensitivity: when the region traversal climbs to a caller
///    through a call site c, the slice continues in the caller just before
///    c — the slice(r, [c1..cn]) formula of Section 3.1, which only builds
///    the slice up the chain of calls on the call stack.
///  * Callee summaries with a fixed-point over recursion: values produced
///    inside callees are expanded through per-function register summaries
///    (slice summaries of Section 3.1.1); recursion is resolved by
///    iterating summaries to a fixed point.
///  * Control-flow speculative slicing (Section 3.1.2): blocks never
///    executed during profiling are filtered out of the slice, and
///    indirect calls are resolved only to their profiled targets.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SLICER_SLICER_H
#define SSP_SLICER_SLICER_H

#include "analysis/CallGraph.h"
#include "analysis/DependenceGraph.h"
#include "analysis/RegionGraph.h"
#include "analysis/SpecDeps.h"
#include "profile/Profile.h"
#include "support/BitVector.h"

#include <memory>
#include <vector>

namespace ssp::slicer {

/// Tuning knobs for slice construction.
struct SliceOptions {
  /// Control-flow speculative slicing: drop never-executed blocks.
  bool Speculative = true;

  /// Reject slices whose address computation takes a memory flow
  /// dependence from a store inside the region (conservative mode; the
  /// default trusts the disambiguator per the paper).
  bool RejectStoreDependent = false;

  /// Hard cap on slice size; bigger slices are marked invalid ("to avoid a
  /// slice becoming too big that often leads to wrong address
  /// calculations", Section 3.4.1).
  unsigned MaxSize = 48;
};

/// A precomputation slice for one (or, after combining, several)
/// delinquent loads, relative to one region.
struct Slice {
  analysis::InstRef PrimaryLoad;              ///< Load that seeded the slice.
  std::vector<analysis::InstRef> TargetLoads; ///< All loads it prefetches.
  std::vector<analysis::InstRef> Insts; ///< Members, program layout order.
  std::vector<ir::Reg> LiveIns;         ///< Values copied through the LIB.
  int RegionIdx = -1;
  bool Interprocedural = false;
  bool Valid = false;
  std::string RejectReason;

  /// May-dependence edges speculatively dropped while building this slice
  /// (sorted, deduplicated). Each producer became a trigger-time live-in
  /// instead of a member; the `speculation.*` verify pass re-derives every
  /// entry against the profile evidence.
  std::vector<analysis::SpecDrop> SpecDrops;

  bool contains(const analysis::InstRef &I) const {
    for (const analysis::InstRef &M : Insts)
      if (M == I)
        return true;
    return false;
  }
};

/// Per-function register summary: for every register the function may
/// define, the slice of its definitions and the entry registers they
/// depend on (the reusable "slice summary" of Section 3.1.1).
struct FuncSummary {
  struct RegInfo {
    std::vector<analysis::InstRef> Insts; ///< Sorted, program layout order.
    std::vector<ir::Reg> EntryDeps;       ///< Sorted by dense index.
  };
  /// Indexed by dense register idx; only indices set in Defined are
  /// populated (dense array + membership bits replace the old ordered map
  /// on the slicer's hottest lookup).
  std::vector<RegInfo> DefinedRegs;
  support::BitVector Defined;
  bool Computed = false;

  /// Summary for dense register index \p Dense, or nullptr when the
  /// function never defines it.
  const RegInfo *regInfo(unsigned Dense) const {
    return Defined.size() > Dense && Defined.test(Dense)
               ? &DefinedRegs[Dense]
               : nullptr;
  }
};

/// Demand-driven slicer with summary caching. Copying a Slicer is cheap
/// and shares the (immutable once computed) summary table: parallel
/// candidate generation gives each worker thread its own copy, so only the
/// per-slicer scratch buffers are private while every analysis input stays
/// const-shared.
class Slicer {
public:
  /// \p Spec, when non-null and enabled, prunes cold may-dependences
  /// during slice closure (speculation-aware slicing); every drop is
  /// recorded in Slice::SpecDrops.
  Slicer(const analysis::ProgramDeps &Deps, const analysis::RegionGraph &RG,
         const analysis::CallGraph &CG, const profile::ProfileData &PD,
         SliceOptions Opts = SliceOptions(),
         const analysis::SpecDeps *Spec = nullptr);

  /// Computes the slice of \p Load's address restricted to region
  /// \p RegionIdx. \p ContextCallSites is the call-stack context from the
  /// region traversal: empty when the region is in the load's function;
  /// otherwise the call sites crossed climbing outward, innermost first.
  Slice computeSlice(const analysis::InstRef &Load, int RegionIdx,
                     const std::vector<analysis::InstRef> &ContextCallSites =
                         {});

  /// Merges \p B into \p A when they share dependence-graph nodes
  /// (Section 3.4.1: "different slices are combined if they share nodes").
  /// Returns true if merged.
  static bool combineIfOverlapping(Slice &A, const Slice &B);

  /// Unconditionally merges \p B into \p A (same region required). Used to
  /// fuse the slices of one load reached through several calling contexts,
  /// e.g. treeadd's left- and right-child call sites.
  static void mergeInto(Slice &A, const Slice &B);

  /// Summary of \p Func, computed on demand with recursion fixed point.
  const FuncSummary &summaryOf(uint32_t Func);

  /// Forces the summary fixed point now. Call once before handing copies
  /// of this slicer to worker threads so they never race to build it.
  void ensureSummaries();

private:
  bool blockIsCold(uint32_t Func, uint32_t Block) const;
  bool regionContains(int RegionIdx, uint32_t Func, uint32_t Block) const;
  void computeSummaries();

  const analysis::ProgramDeps &Deps;
  const analysis::RegionGraph &RG;
  const analysis::CallGraph &CG;
  const profile::ProfileData &PD;
  SliceOptions Opts;
  const analysis::SpecDeps *Spec;
  /// Shared by all copies of this slicer; immutable once built.
  std::shared_ptr<const std::vector<FuncSummary>> Summaries;
  /// Reused reaching-def id buffer (private per copy, so concurrent
  /// slicers never share scratch).
  std::vector<uint32_t> RDScratch;
};

} // namespace ssp::slicer

#endif // SSP_SLICER_SLICER_H
