//===- analysis/CallGraph.cpp - Static + dynamic call graph ---------------===//

#include "analysis/CallGraph.h"

#include <algorithm>

using namespace ssp;
using namespace ssp::analysis;
using namespace ssp::ir;

CallGraph CallGraph::build(const Program &P,
                           const std::vector<IndirectCallTarget>
                               &IndirectTargets,
                           const std::vector<DirectCallCount> &SiteCounts) {
  CallGraph CG;
  CG.Callers.resize(P.numFuncs());
  CG.Sites.resize(P.numFuncs());

  auto DirectBySite = [&](InstRef Ref) -> uint64_t {
    auto It = std::lower_bound(SiteCounts.begin(), SiteCounts.end(), Ref,
                               [](const DirectCallCount &A, InstRef B) {
                                 return A.Site < B;
                               });
    return It != SiteCounts.end() && It->Site == Ref ? It->Count : 0;
  };

  for (uint32_t FI = 0; FI < P.numFuncs(); ++FI) {
    const Function &F = P.func(FI);
    for (uint32_t BI = 0; BI < F.numBlocks(); ++BI) {
      const BasicBlock &BB = F.block(BI);
      if (BB.isAttachment())
        continue;
      for (uint32_t II = 0; II < BB.Insts.size(); ++II) {
        const Instruction &I = BB.Insts[II];
        InstRef Ref{FI, BI, II};
        if (I.Op == Opcode::Call) {
          CallSite CS{Ref, I.Target, DirectBySite(Ref)};
          CG.Sites[FI].push_back(CS);
          CG.Callers[I.Target].push_back(CS);
        } else if (I.Op == Opcode::CallInd) {
          // Unresolved sites (never executed during profiling) have no
          // records and contribute no edges.
          auto It = std::lower_bound(
              IndirectTargets.begin(), IndirectTargets.end(), Ref,
              [](const IndirectCallTarget &A, InstRef B) {
                return A.Site < B;
              });
          for (; It != IndirectTargets.end() && It->Site == Ref; ++It) {
            CallSite CS{Ref, It->Callee, It->Count};
            CG.Sites[FI].push_back(CS);
            CG.Callers[It->Callee].push_back(CS);
          }
        }
      }
    }
  }

  for (auto &List : CG.Callers)
    std::sort(List.begin(), List.end(),
              [](const CallSite &A, const CallSite &B) {
                if (A.Count != B.Count)
                  return A.Count > B.Count;
                return A.Site < B.Site;
              });
  return CG;
}
