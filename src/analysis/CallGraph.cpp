//===- analysis/CallGraph.cpp - Static + dynamic call graph ---------------===//

#include "analysis/CallGraph.h"

#include <algorithm>

using namespace ssp;
using namespace ssp::analysis;
using namespace ssp::ir;

CallGraph CallGraph::build(
    const Program &P,
    const std::map<InstRef, std::vector<std::pair<uint32_t, uint64_t>>>
        &IndirectTargets,
    const std::map<InstRef, uint64_t> &SiteCounts) {
  CallGraph CG;
  CG.Callers.resize(P.numFuncs());
  CG.Sites.resize(P.numFuncs());

  for (uint32_t FI = 0; FI < P.numFuncs(); ++FI) {
    const Function &F = P.func(FI);
    for (uint32_t BI = 0; BI < F.numBlocks(); ++BI) {
      const BasicBlock &BB = F.block(BI);
      if (BB.isAttachment())
        continue;
      for (uint32_t II = 0; II < BB.Insts.size(); ++II) {
        const Instruction &I = BB.Insts[II];
        InstRef Ref{FI, BI, II};
        if (I.Op == Opcode::Call) {
          uint64_t Count = 0;
          if (auto It = SiteCounts.find(Ref); It != SiteCounts.end())
            Count = It->second;
          CallSite CS{Ref, I.Target, Count};
          CG.Sites[FI].push_back(CS);
          CG.Callers[I.Target].push_back(CS);
        } else if (I.Op == Opcode::CallInd) {
          auto It = IndirectTargets.find(Ref);
          if (It == IndirectTargets.end())
            continue; // Unresolved: never executed during profiling.
          for (const auto &[Callee, Count] : It->second) {
            CallSite CS{Ref, Callee, Count};
            CG.Sites[FI].push_back(CS);
            CG.Callers[Callee].push_back(CS);
          }
        }
      }
    }
  }

  for (auto &List : CG.Callers)
    std::sort(List.begin(), List.end(),
              [](const CallSite &A, const CallSite &B) {
                if (A.Count != B.Count)
                  return A.Count > B.Count;
                return A.Site < B.Site;
              });
  return CG;
}
