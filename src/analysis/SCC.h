//===- analysis/SCC.h - Strongly connected components ---------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tarjan's strongly-connected-components algorithm over a small adjacency
/// list graph. The chaining-SP scheduler partitions the slice's dependence
/// graph into SCCs (paper Section 3.2.1.2.1): non-degenerate SCCs are
/// dependence cycles whose span must be minimized so the next chaining
/// thread can start early.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_SCC_H
#define SSP_ANALYSIS_SCC_H

#include <cstdint>
#include <vector>

namespace ssp::analysis {

/// Computes the strongly connected components of the directed graph with
/// \p NumNodes nodes and adjacency \p Adj. Components are returned in
/// *reverse topological order* of the condensation (Tarjan's emission
/// order): if component A has an edge into component B, B appears first.
std::vector<std::vector<unsigned>>
stronglyConnectedComponents(unsigned NumNodes,
                            const std::vector<std::vector<unsigned>> &Adj);

} // namespace ssp::analysis

#endif // SSP_ANALYSIS_SCC_H
