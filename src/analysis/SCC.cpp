//===- analysis/SCC.cpp - Tarjan's SCC algorithm (iterative) --------------===//

#include "analysis/SCC.h"

#include <algorithm>

using namespace ssp::analysis;

std::vector<std::vector<unsigned>>
ssp::analysis::stronglyConnectedComponents(
    unsigned NumNodes, const std::vector<std::vector<unsigned>> &Adj) {
  std::vector<std::vector<unsigned>> Components;
  std::vector<int> Index(NumNodes, -1), LowLink(NumNodes, 0);
  std::vector<uint8_t> OnStack(NumNodes, 0);
  std::vector<unsigned> Stack;
  int NextIndex = 0;

  // Iterative Tarjan with an explicit DFS frame stack.
  struct Frame {
    unsigned Node;
    size_t NextEdge;
  };
  std::vector<Frame> DFS;

  for (unsigned Root = 0; Root < NumNodes; ++Root) {
    if (Index[Root] != -1)
      continue;
    DFS.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = 1;

    while (!DFS.empty()) {
      Frame &F = DFS.back();
      unsigned V = F.Node;
      if (F.NextEdge < Adj[V].size()) {
        unsigned W = Adj[V][F.NextEdge++];
        if (Index[W] == -1) {
          Index[W] = LowLink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = 1;
          DFS.push_back({W, 0});
        } else if (OnStack[W]) {
          LowLink[V] = std::min(LowLink[V], Index[W]);
        }
      } else {
        DFS.pop_back();
        if (!DFS.empty())
          LowLink[DFS.back().Node] =
              std::min(LowLink[DFS.back().Node], LowLink[V]);
        if (LowLink[V] == Index[V]) {
          std::vector<unsigned> Comp;
          while (true) {
            unsigned W = Stack.back();
            Stack.pop_back();
            OnStack[W] = 0;
            Comp.push_back(W);
            if (W == V)
              break;
          }
          std::sort(Comp.begin(), Comp.end());
          Components.push_back(std::move(Comp));
        }
      }
    }
  }
  return Components;
}
