//===- analysis/StreamPatterns.h - P-slice access-pattern classifier ------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies a scheduled, chained p-slice as one of the regular stream
/// patterns of ir/Stream.h — induction-affine, recurrence pointer-chase,
/// or indirect (affine index stream feeding a dependent gather) — by
/// abstract interpretation of the slice's straight-line dataflow over
/// symbolic initial register values. Irregular slices classify as nullopt
/// and keep their full p-slice replay: a descriptor is only ever attached
/// when the whole prefetch address recurrence is provably captured.
///
/// The same entry point serves the code generator (classifying the slice
/// it is about to emit) and the `stream.*` verify pass (re-deriving the
/// descriptor from the *emitted* slice blocks); both feed it the identical
/// instruction sequences, so a disagreement is a real codegen bug rather
/// than a modeling artifact.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_STREAMPATTERNS_H
#define SSP_ANALYSIS_STREAMPATTERNS_H

#include "ir/Instruction.h"
#include "ir/Stream.h"

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace ssp::analysis {

/// One chained slice in the shape the rewriter emits it (see
/// codegen::rewriteWithSlices): the critical sub-slice is the per-link
/// recurrence (its results are re-staged into the LIB for the next link),
/// the body is the non-critical remainder (including inner-loop unroll
/// copies), and the targets are the deduplicated (base register, offset)
/// prefetches, in emission order. Only slice-emittable instructions
/// belong here — control transfers and stores never enter a slice.
struct StreamClassifyInput {
  std::vector<ir::Instruction> Critical;
  std::vector<ir::Instruction> Body;
  std::vector<std::pair<ir::Reg, int64_t>> Targets;
  /// Chain trip budget: how many links the replayed chain would run.
  uint32_t Depth = 0;
};

/// Classifies \p In. On success the returned descriptor covers *every*
/// target (kind, first address, stride/chase offset, per-step prefetch
/// offsets, depth); Func/StubBlock are left zero for the caller to bind.
/// Returns nullopt for any pattern the descriptor language cannot express
/// exactly — the caller falls back to full p-slice replay.
std::optional<ir::StreamDescriptor>
classifyStream(const StreamClassifyInput &In);

} // namespace ssp::analysis

#endif // SSP_ANALYSIS_STREAMPATTERNS_H
