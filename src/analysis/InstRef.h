//===- analysis/InstRef.h - Stable instruction references -----------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// InstRef names one instruction position in a Program by (function, block,
/// index). All analyses and the slicer exchange instruction sets in this
/// form.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_INSTREF_H
#define SSP_ANALYSIS_INSTREF_H

#include "ir/Program.h"

#include <cstdint>
#include <functional>
#include <string>

namespace ssp::analysis {

/// A position of one instruction inside a Program.
struct InstRef {
  uint32_t Func = 0;
  uint32_t Block = 0;
  uint32_t Inst = 0;

  friend bool operator==(const InstRef &A, const InstRef &B) {
    return A.Func == B.Func && A.Block == B.Block && A.Inst == B.Inst;
  }
  friend bool operator!=(const InstRef &A, const InstRef &B) {
    return !(A == B);
  }
  friend bool operator<(const InstRef &A, const InstRef &B) {
    if (A.Func != B.Func)
      return A.Func < B.Func;
    if (A.Block != B.Block)
      return A.Block < B.Block;
    return A.Inst < B.Inst;
  }

  const ir::Instruction &get(const ir::Program &P) const {
    return P.func(Func).block(Block).Insts[Inst];
  }

  std::string str() const {
    return "fn" + std::to_string(Func) + ":bb" + std::to_string(Block) +
           ":" + std::to_string(Inst);
  }
};

} // namespace ssp::analysis

template <> struct std::hash<ssp::analysis::InstRef> {
  size_t operator()(const ssp::analysis::InstRef &R) const {
    uint64_t Key = (static_cast<uint64_t>(R.Func) << 40) ^
                   (static_cast<uint64_t>(R.Block) << 20) ^ R.Inst;
    return std::hash<uint64_t>()(Key);
  }
};

#endif // SSP_ANALYSIS_INSTREF_H
