//===- analysis/Loops.h - Natural loop detection ---------------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loops of a function's CFG, found via dominator-identified back
/// edges, with nesting resolved by containment. Loops are the primary
/// region kind the post-pass tool targets: chaining SP turns a loop's
/// p-slice into a do-across prefetching loop.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_LOOPS_H
#define SSP_ANALYSIS_LOOPS_H

#include "analysis/CFG.h"
#include "analysis/Dominators.h"

#include <cstdint>
#include <vector>

namespace ssp::analysis {

/// One natural loop.
struct Loop {
  uint32_t Header = 0;
  std::vector<uint32_t> Blocks;   ///< All blocks in the loop (sorted).
  std::vector<uint32_t> Latches;  ///< Sources of back edges to the header.
  int Parent = -1;                ///< Index of the innermost enclosing loop.
  std::vector<uint32_t> Children; ///< Indices of directly nested loops.
  unsigned Depth = 1;             ///< 1 for outermost loops.

  bool contains(uint32_t Block) const {
    for (uint32_t B : Blocks)
      if (B == Block)
        return true;
    return false;
  }
};

/// All natural loops of one function, outermost-first within each nest.
class LoopInfo {
public:
  static LoopInfo build(const CFG &G, const DomTree &Dom);

  const std::vector<Loop> &loops() const { return Loops; }
  size_t numLoops() const { return Loops.size(); }
  const Loop &loop(size_t I) const { return Loops[I]; }

  /// Index of the innermost loop containing \p Block, or -1.
  int innermostLoopOf(uint32_t Block) const {
    return Block < BlockToLoop.size() ? BlockToLoop[Block] : -1;
  }

private:
  std::vector<Loop> Loops;
  std::vector<int> BlockToLoop;
};

} // namespace ssp::analysis

#endif // SSP_ANALYSIS_LOOPS_H
