//===- analysis/InstIndex.h - Program-wide dense instruction ids ----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bijection between InstRef positions and dense instruction ids in
/// program layout order. Because InstRef's lexicographic (Func, Block,
/// Inst) order *is* layout order, ascending id order reproduces the
/// iteration order of a std::set<InstRef> — which lets the slicer keep
/// instruction sets in flat BitVectors without perturbing any output the
/// deterministic-adaptation contract pins.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_INSTINDEX_H
#define SSP_ANALYSIS_INSTINDEX_H

#include "analysis/InstRef.h"

#include <cstdint>
#include <vector>

namespace ssp::analysis {

class InstIndex {
public:
  InstIndex() = default;

  explicit InstIndex(const ir::Program &P) {
    BlockOff.reserve(P.numFuncs());
    for (uint32_t FI = 0; FI < P.numFuncs(); ++FI) {
      const ir::Function &F = P.func(FI);
      BlockOff.push_back(static_cast<uint32_t>(BlockBase.size()));
      for (uint32_t BI = 0; BI < F.numBlocks(); ++BI) {
        BlockBase.push_back(static_cast<uint32_t>(Refs.size()));
        const ir::BasicBlock &BB = F.block(BI);
        for (uint32_t II = 0; II < BB.Insts.size(); ++II)
          Refs.push_back({FI, BI, II});
      }
    }
  }

  uint32_t numInsts() const { return static_cast<uint32_t>(Refs.size()); }

  /// Dense layout-order id of \p R.
  uint32_t id(const InstRef &R) const {
    return BlockBase[BlockOff[R.Func] + R.Block] + R.Inst;
  }

  /// Position of dense id \p Id.
  const InstRef &ref(uint32_t Id) const { return Refs[Id]; }

private:
  std::vector<uint32_t> BlockOff;  ///< Func -> first entry in BlockBase.
  std::vector<uint32_t> BlockBase; ///< (Func, Block) -> id of first inst.
  std::vector<InstRef> Refs;       ///< Id -> position.
};

} // namespace ssp::analysis

#endif // SSP_ANALYSIS_INSTINDEX_H
