//===- analysis/ReachingDefs.h - Register reaching definitions ------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic reaching-definitions dataflow over one function's registers.
/// Uses with no intra-function reaching definition are *live-in uses*: the
/// value comes from a caller, which is where the context-sensitive slicer
/// continues up the call stack (paper Section 3.1) and what the live-in
/// analysis of the code generator marshals through the LIB.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_REACHINGDEFS_H
#define SSP_ANALYSIS_REACHINGDEFS_H

#include "analysis/CFG.h"
#include "analysis/InstRef.h"
#include "support/BitVector.h"

#include <cstdint>
#include <vector>

namespace ssp::analysis {

/// Reaching definitions for every register of one function. Calls are
/// treated as transparent (registers are physical and the modeled machine
/// does not rename across calls); definitions made *inside* callees are
/// handled separately by the interprocedural slicer via callee summaries.
class ReachingDefs {
public:
  static ReachingDefs build(const ir::Program &P, uint32_t Func,
                            const CFG &G);

  /// All intra-function definitions of \p R that reach the program point
  /// just before instruction (\p Block, \p Inst).
  std::vector<InstRef> reachingDefs(uint32_t Block, uint32_t Inst,
                                    ir::Reg R) const;

  /// Allocation-free form of reachingDefs for the slicer hot path: calls
  /// \p Fn(const InstRef &) for every reaching definition, in the same
  /// order reachingDefs returns them. \p Scratch is a caller-owned reused
  /// id buffer (per-thread in parallel adaptation; this analysis stays
  /// const-shared and holds no mutable state).
  template <typename Fn>
  void forEachReachingDef(uint32_t Block, uint32_t Inst, ir::Reg R,
                          std::vector<uint32_t> &Scratch, Fn &&F) const {
    bool EntrySurvives = false;
    stateBefore(Block, Inst, R, Scratch, EntrySurvives);
    for (uint32_t Id : Scratch)
      F(Defs[Id]);
  }

  /// True if some path from the function entry reaches (\p Block, \p Inst)
  /// with no definition of \p R: the value may come from the caller.
  bool mayBeLiveIn(uint32_t Block, uint32_t Inst, ir::Reg R) const;

  /// All definition sites in the function, in layout order.
  const std::vector<InstRef> &allDefs() const { return Defs; }

private:
  /// Walks block \p Block from its entry state to just before \p Inst,
  /// producing the live def set and whether the entry value of \p R
  /// survives.
  void stateBefore(uint32_t Block, uint32_t Inst, ir::Reg R,
                   std::vector<uint32_t> &DefsOut, bool &EntrySurvives)
      const;

  const ir::Program *Prog = nullptr;
  uint32_t Func = 0;
  const CFG *G = nullptr;

  std::vector<InstRef> Defs;              ///< Def id -> site.
  std::vector<ir::Reg> DefRegs;           ///< Def id -> register.
  std::vector<std::vector<uint32_t>> DefsOfReg; ///< DenseReg -> def ids.
  std::vector<support::BitVector> In;     ///< Block -> reaching def ids.
  std::vector<support::BitVector> EntryReachesIn; ///< Block -> per-reg "no
                                          ///< def on some path from entry".
};

} // namespace ssp::analysis

#endif // SSP_ANALYSIS_REACHINGDEFS_H
