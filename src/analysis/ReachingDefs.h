//===- analysis/ReachingDefs.h - Register reaching definitions ------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic reaching-definitions dataflow over one function's registers.
/// Uses with no intra-function reaching definition are *live-in uses*: the
/// value comes from a caller, which is where the context-sensitive slicer
/// continues up the call stack (paper Section 3.1) and what the live-in
/// analysis of the code generator marshals through the LIB.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_REACHINGDEFS_H
#define SSP_ANALYSIS_REACHINGDEFS_H

#include "analysis/CFG.h"
#include "analysis/InstRef.h"

#include <cstdint>
#include <vector>

namespace ssp::analysis {

/// Reaching definitions for every register of one function. Calls are
/// treated as transparent (registers are physical and the modeled machine
/// does not rename across calls); definitions made *inside* callees are
/// handled separately by the interprocedural slicer via callee summaries.
class ReachingDefs {
public:
  static ReachingDefs build(const ir::Program &P, uint32_t Func,
                            const CFG &G);

  /// All intra-function definitions of \p R that reach the program point
  /// just before instruction (\p Block, \p Inst).
  std::vector<InstRef> reachingDefs(uint32_t Block, uint32_t Inst,
                                    ir::Reg R) const;

  /// True if some path from the function entry reaches (\p Block, \p Inst)
  /// with no definition of \p R: the value may come from the caller.
  bool mayBeLiveIn(uint32_t Block, uint32_t Inst, ir::Reg R) const;

  /// All definition sites in the function, in layout order.
  const std::vector<InstRef> &allDefs() const { return Defs; }

private:
  struct BitSet {
    std::vector<uint64_t> Words;
    void resize(size_t Bits) { Words.assign((Bits + 63) / 64, 0); }
    bool get(size_t I) const {
      return (Words[I / 64] >> (I % 64)) & 1;
    }
    void set(size_t I) { Words[I / 64] |= uint64_t(1) << (I % 64); }
    void clear(size_t I) { Words[I / 64] &= ~(uint64_t(1) << (I % 64)); }
    bool unionWith(const BitSet &O) {
      bool Changed = false;
      for (size_t W = 0; W < Words.size(); ++W) {
        uint64_t New = Words[W] | O.Words[W];
        if (New != Words[W]) {
          Words[W] = New;
          Changed = true;
        }
      }
      return Changed;
    }
  };

  /// Walks block \p Block from its entry state to just before \p Inst,
  /// producing the live def set and whether the entry value of \p R
  /// survives.
  void stateBefore(uint32_t Block, uint32_t Inst, ir::Reg R,
                   std::vector<uint32_t> &DefsOut, bool &EntrySurvives)
      const;

  const ir::Program *Prog = nullptr;
  uint32_t Func = 0;
  const CFG *G = nullptr;

  std::vector<InstRef> Defs;              ///< Def id -> site.
  std::vector<ir::Reg> DefRegs;           ///< Def id -> register.
  std::vector<std::vector<uint32_t>> DefsOfReg; ///< DenseReg -> def ids.
  std::vector<BitSet> In;                 ///< Block -> reaching def ids.
  std::vector<BitSet> EntryReachesIn;     ///< Block -> per-reg "no def on
                                          ///< some path from entry" bit.
};

} // namespace ssp::analysis

#endif // SSP_ANALYSIS_REACHINGDEFS_H
