//===- analysis/CFG.h - Control flow graph of a function ------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-level control flow graph over the *body* blocks of one function.
/// SSP attachments (stub/slice blocks) are excluded: they are reached via
/// the chk.c exception and spawn mechanisms, not by ordinary control flow,
/// and the post-pass analyses operate on the original program structure.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_CFG_H
#define SSP_ANALYSIS_CFG_H

#include "ir/Function.h"

#include <cstdint>
#include <vector>

namespace ssp::analysis {

/// Successor/predecessor lists plus a reverse post-order of one function's
/// body blocks.
class CFG {
public:
  /// Builds the CFG of \p F. Attachment blocks get empty adjacency.
  static CFG build(const ir::Function &F);

  const std::vector<uint32_t> &succs(uint32_t Block) const {
    return Succs[Block];
  }
  const std::vector<uint32_t> &preds(uint32_t Block) const {
    return Preds[Block];
  }

  uint32_t entry() const { return 0; }
  size_t numBlocks() const { return Succs.size(); }

  /// Body blocks in reverse post-order from the entry (unreachable blocks
  /// are absent).
  const std::vector<uint32_t> &rpo() const { return RPO; }

  /// Position of a block in the RPO, or ~0u when unreachable.
  uint32_t rpoIndex(uint32_t Block) const { return RPOIndex[Block]; }

  /// Blocks with no successors (ret/halt): the exit set.
  const std::vector<uint32_t> &exits() const { return Exits; }

private:
  std::vector<std::vector<uint32_t>> Succs;
  std::vector<std::vector<uint32_t>> Preds;
  std::vector<uint32_t> RPO;
  std::vector<uint32_t> RPOIndex;
  std::vector<uint32_t> Exits;
};

} // namespace ssp::analysis

#endif // SSP_ANALYSIS_CFG_H
