//===- analysis/Loops.cpp - Natural loop detection -------------------------===//

#include "analysis/Loops.h"

#include <algorithm>
#include <map>

using namespace ssp;
using namespace ssp::analysis;

LoopInfo LoopInfo::build(const CFG &G, const DomTree &Dom) {
  LoopInfo LI;
  uint32_t N = static_cast<uint32_t>(G.numBlocks());
  LI.BlockToLoop.assign(N, -1);

  // Find back edges (Latch -> Header where Header dominates Latch) and
  // group them by header.
  std::map<uint32_t, std::vector<uint32_t>> HeaderLatches;
  for (uint32_t B = 0; B < N; ++B) {
    if (!Dom.isReachable(B))
      continue;
    for (uint32_t S : G.succs(B))
      if (Dom.dominates(S, B))
        HeaderLatches[S].push_back(B);
  }

  // Compute each loop's body: backward reachability from the latches,
  // stopping at the header.
  for (auto &[Header, Latches] : HeaderLatches) {
    Loop L;
    L.Header = Header;
    L.Latches = Latches;
    std::vector<uint32_t> Work = Latches;
    std::vector<uint8_t> InLoop(N, 0);
    InLoop[Header] = 1;
    while (!Work.empty()) {
      uint32_t B = Work.back();
      Work.pop_back();
      if (InLoop[B])
        continue;
      InLoop[B] = 1;
      for (uint32_t P : G.preds(B))
        Work.push_back(P);
    }
    for (uint32_t B = 0; B < N; ++B)
      if (InLoop[B])
        L.Blocks.push_back(B);
    LI.Loops.push_back(std::move(L));
  }

  // Nesting: loop A is a parent of B if A contains B's header and A != B.
  // The innermost container (smallest block count) wins.
  for (size_t I = 0; I < LI.Loops.size(); ++I) {
    int Best = -1;
    size_t BestSize = ~size_t(0);
    for (size_t J = 0; J < LI.Loops.size(); ++J) {
      if (I == J)
        continue;
      const Loop &Outer = LI.Loops[J];
      if (!Outer.contains(LI.Loops[I].Header))
        continue;
      if (Outer.Blocks.size() < BestSize) {
        BestSize = Outer.Blocks.size();
        Best = static_cast<int>(J);
      }
    }
    LI.Loops[I].Parent = Best;
    if (Best >= 0)
      LI.Loops[static_cast<size_t>(Best)].Children.push_back(
          static_cast<uint32_t>(I));
  }

  // Depths and block->innermost-loop map.
  for (size_t I = 0; I < LI.Loops.size(); ++I) {
    unsigned Depth = 1;
    int P = LI.Loops[I].Parent;
    while (P >= 0) {
      ++Depth;
      P = LI.Loops[static_cast<size_t>(P)].Parent;
    }
    LI.Loops[I].Depth = Depth;
  }
  for (uint32_t B = 0; B < N; ++B) {
    int Best = -1;
    unsigned BestDepth = 0;
    for (size_t I = 0; I < LI.Loops.size(); ++I) {
      if (!LI.Loops[I].contains(B))
        continue;
      if (LI.Loops[I].Depth > BestDepth) {
        BestDepth = LI.Loops[I].Depth;
        Best = static_cast<int>(I);
      }
    }
    LI.BlockToLoop[B] = Best;
  }
  return LI;
}
