//===- analysis/RegionGraph.h - Hierarchical region representation --------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The region graph of Section 3.1.1: "a region represents a loop, a loop
/// body, or a procedure", connected parent-to-child from callers to callees
/// and from outer scopes to inner scopes. Region-based slicing walks from
/// the innermost region containing a delinquent load outward until the
/// slack is large enough; region selection (Section 3.4.1) walks the same
/// chain choosing the precomputation region and model.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_REGIONGRAPH_H
#define SSP_ANALYSIS_REGIONGRAPH_H

#include "analysis/CallGraph.h"
#include "analysis/DependenceGraph.h"
#include "analysis/InstRef.h"

#include <cstdint>
#include <vector>

namespace ssp::analysis {

enum class RegionKind : uint8_t { Procedure, Loop };

/// One region of the program-wide region graph.
struct Region {
  RegionKind Kind = RegionKind::Procedure;
  uint32_t Func = 0;
  int LoopIdx = -1; ///< Index into the function's LoopInfo when Kind==Loop.
  int Parent = -1;  ///< Enclosing region in the same function, or, for a
                    ///< Procedure region, -1 (callers resolved separately).
  std::vector<int> Children;

  bool isLoop() const { return Kind == RegionKind::Loop; }
};

/// All regions of a program plus navigation helpers.
class RegionGraph {
public:
  /// Builds the per-function region trees. \p Deps supplies loop info.
  static RegionGraph build(const ProgramDeps &Deps);

  const Region &region(int Idx) const { return Regions[Idx]; }
  size_t numRegions() const { return Regions.size(); }

  /// Procedure region of function \p Func.
  int procedureRegion(uint32_t Func) const { return ProcRegion[Func]; }

  /// Innermost region containing \p I (the loop it sits in, else the
  /// procedure region).
  int innermostRegionOf(const InstRef &I, const ProgramDeps &Deps) const;

  /// The parent region for outward traversal. For loops this is the
  /// enclosing loop or procedure; for procedures it is the region of the
  /// hottest call site per \p CG (the top of the calling context), or -1
  /// at the program entry. \p CallSiteOut receives the crossed call site
  /// when the step is interprocedural.
  int outwardParent(int RegionIdx, const CallGraph &CG, const ProgramDeps &Deps,
                    InstRef *CallSiteOut = nullptr) const;

private:
  std::vector<Region> Regions;
  std::vector<int> ProcRegion;                 ///< Func -> region index.
  std::vector<std::vector<int>> LoopRegion;    ///< Func -> loop -> region.
};

} // namespace ssp::analysis

#endif // SSP_ANALYSIS_REGIONGRAPH_H
