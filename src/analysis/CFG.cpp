//===- analysis/CFG.cpp - Control flow graph construction -----------------===//

#include "analysis/CFG.h"

#include "support/Assert.h"

#include <cassert>

using namespace ssp;
using namespace ssp::analysis;
using namespace ssp::ir;

CFG CFG::build(const Function &F) {
  CFG G;
  size_t N = F.numBlocks();
  G.Succs.resize(N);
  G.Preds.resize(N);
  G.RPOIndex.assign(N, ~0u);

  // Number of body blocks: attachments always trail the body.
  uint32_t NumBody = 0;
  for (const BasicBlock &BB : F.blocks())
    if (!BB.isAttachment())
      NumBody = BB.Index + 1;

  for (uint32_t BI = 0; BI < NumBody; ++BI) {
    const BasicBlock &BB = F.block(BI);
    assert(!BB.Insts.empty() && "CFG over empty block");
    const Instruction &Last = BB.Insts.back();
    switch (Last.Op) {
    case Opcode::Br:
      G.Succs[BI].push_back(Last.Target);
      assert(BI + 1 < NumBody && "conditional branch falls off function");
      if (Last.Target != BI + 1)
        G.Succs[BI].push_back(BI + 1);
      break;
    case Opcode::Jmp:
      G.Succs[BI].push_back(Last.Target);
      break;
    case Opcode::Ret:
    case Opcode::Halt:
      G.Exits.push_back(BI);
      break;
    default:
      assert(BI + 1 < NumBody && "fallthrough falls off function");
      G.Succs[BI].push_back(BI + 1);
      break;
    }
  }
  for (uint32_t BI = 0; BI < NumBody; ++BI)
    for (uint32_t S : G.Succs[BI])
      G.Preds[S].push_back(BI);

  // Reverse post-order via iterative DFS from the entry.
  std::vector<uint8_t> State(N, 0); // 0 unvisited, 1 on stack, 2 done.
  std::vector<std::pair<uint32_t, uint32_t>> Stack; // (block, next succ).
  std::vector<uint32_t> PostOrder;
  Stack.push_back({0, 0});
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[BI, NextSucc] = Stack.back();
    if (NextSucc < G.Succs[BI].size()) {
      uint32_t S = G.Succs[BI][NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      State[BI] = 2;
      PostOrder.push_back(BI);
      Stack.pop_back();
    }
  }
  G.RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (uint32_t I = 0; I < G.RPO.size(); ++I)
    G.RPOIndex[G.RPO[I]] = I;
  return G;
}
