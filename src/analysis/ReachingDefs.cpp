//===- analysis/ReachingDefs.cpp - Register reaching definitions ----------===//

#include "analysis/ReachingDefs.h"

#include <cassert>

using namespace ssp;
using namespace ssp::analysis;
using namespace ssp::ir;

ReachingDefs ReachingDefs::build(const Program &P, uint32_t Func,
                                 const CFG &G) {
  ReachingDefs RD;
  RD.Prog = &P;
  RD.Func = Func;
  RD.G = &G;
  const Function &F = P.func(Func);

  // Enumerate definition sites.
  RD.DefsOfReg.resize(Reg::NumDenseIndices);
  for (uint32_t BI = 0; BI < F.numBlocks(); ++BI) {
    const BasicBlock &BB = F.block(BI);
    if (BB.isAttachment())
      continue;
    for (uint32_t II = 0; II < BB.Insts.size(); ++II) {
      Reg D = BB.Insts[II].def();
      if (!D.isValid())
        continue;
      uint32_t Id = static_cast<uint32_t>(RD.Defs.size());
      RD.Defs.push_back({Func, BI, II});
      RD.DefRegs.push_back(D);
      RD.DefsOfReg[D.denseIndex()].push_back(Id);
    }
  }

  size_t NumDefs = RD.Defs.size();
  size_t NumBlocks = F.numBlocks();
  RD.In.resize(NumBlocks);
  RD.EntryReachesIn.resize(NumBlocks);
  std::vector<support::BitVector> Out(NumBlocks), EntryReachesOut(NumBlocks);
  for (size_t B = 0; B < NumBlocks; ++B) {
    RD.In[B].resize(NumDefs);
    Out[B].resize(NumDefs);
    RD.EntryReachesIn[B].resize(Reg::NumDenseIndices);
    EntryReachesOut[B].resize(Reg::NumDenseIndices);
  }
  // At the function entry, every register may hold a caller value.
  for (unsigned R = 0; R < Reg::NumDenseIndices; ++R)
    RD.EntryReachesIn[G.entry()].set(R);

  // GEN/KILL per block, derived on the fly inside the transfer function.
  auto Transfer = [&](uint32_t BI, const support::BitVector &InSet,
                      const support::BitVector &EntryIn,
                      support::BitVector &OutSet,
                      support::BitVector &EntryOut) {
    OutSet = InSet;
    EntryOut = EntryIn;
    const BasicBlock &BB = F.block(BI);
    uint32_t DefCursor = 0;
    // Find the first def id belonging to this block by scanning; def ids
    // are in layout order, so a linear pass works.
    while (DefCursor < RD.Defs.size() && RD.Defs[DefCursor].Block != BI)
      ++DefCursor;
    for (uint32_t II = 0; II < BB.Insts.size(); ++II) {
      Reg D = BB.Insts[II].def();
      if (!D.isValid())
        continue;
      // Kill all other defs of D, then gen this def.
      for (uint32_t Killed : RD.DefsOfReg[D.denseIndex()])
        OutSet.reset(Killed);
      assert(DefCursor < RD.Defs.size() &&
             RD.Defs[DefCursor].Block == BI &&
             RD.Defs[DefCursor].Inst == II && "def enumeration mismatch");
      OutSet.set(DefCursor);
      ++DefCursor;
      EntryOut.reset(D.denseIndex());
    }
  };

  // Iterate to a fixed point over the RPO.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t BI : G.rpo()) {
      for (uint32_t Pred : G.preds(BI)) {
        if (RD.In[BI].unionWith(Out[Pred]))
          Changed = true;
        if (RD.EntryReachesIn[BI].unionWith(EntryReachesOut[Pred]))
          Changed = true;
      }
      support::BitVector NewOut, NewEntryOut;
      NewOut.resize(NumDefs);
      NewEntryOut.resize(Reg::NumDenseIndices);
      Transfer(BI, RD.In[BI], RD.EntryReachesIn[BI], NewOut, NewEntryOut);
      if (Out[BI].unionWith(NewOut))
        Changed = true;
      if (EntryReachesOut[BI].unionWith(NewEntryOut))
        Changed = true;
    }
  }
  return RD;
}

void ReachingDefs::stateBefore(uint32_t Block, uint32_t Inst, ir::Reg R,
                               std::vector<uint32_t> &DefsOut,
                               bool &EntrySurvives) const {
  const Function &F = Prog->func(Func);
  const BasicBlock &BB = F.block(Block);
  unsigned Dense = R.denseIndex();

  // Start from the block-entry state for register R.
  EntrySurvives = EntryReachesIn[Block].test(Dense);
  std::vector<uint32_t> &Live = DefsOut;
  Live.clear();
  for (uint32_t Id : DefsOfReg[Dense])
    if (In[Block].test(Id))
      Live.push_back(Id);

  // Walk the block up to (exclusive) Inst.
  for (uint32_t II = 0; II < Inst && II < BB.Insts.size(); ++II) {
    Reg D = BB.Insts[II].def();
    if (!D.isValid() || D.denseIndex() != Dense)
      continue;
    Live.clear();
    EntrySurvives = false;
    // Find this def's id.
    for (uint32_t Id : DefsOfReg[Dense])
      if (Defs[Id].Block == Block && Defs[Id].Inst == II)
        Live.push_back(Id);
  }
}

std::vector<InstRef> ReachingDefs::reachingDefs(uint32_t Block, uint32_t Inst,
                                                Reg R) const {
  std::vector<uint32_t> Ids;
  bool EntrySurvives = false;
  stateBefore(Block, Inst, R, Ids, EntrySurvives);
  std::vector<InstRef> Result;
  Result.reserve(Ids.size());
  for (uint32_t Id : Ids)
    Result.push_back(Defs[Id]);
  return Result;
}

bool ReachingDefs::mayBeLiveIn(uint32_t Block, uint32_t Inst, Reg R) const {
  std::vector<uint32_t> Ids;
  bool EntrySurvives = false;
  stateBefore(Block, Inst, R, Ids, EntrySurvives);
  return EntrySurvives;
}
