//===- analysis/StreamPatterns.cpp - P-slice access-pattern classifier ----===//
//
// Abstract interpretation of a chained slice over symbolic initial register
// values. The domain has four useful shapes plus Opaque:
//
//   Lin     c + sum(K_i * init(R_i))          (<= 2 terms)
//   Gather  map(mem[idx]) where idx is Lin and
//           map(v) = init(VBase) + (((v*VMul) & VMask) << VShift) + VAdd
//   Chase   chase^Links(init(Ptr); LinkOff) + Add
//   Opaque  anything else
//
// The per-link recurrence is the critical sub-slice alone: the rewriter
// stages chain live-ins back to the LIB immediately after the critical
// instructions, so link i's initial environment is EnvC applied i-1 times.
// Target addresses are evaluated after critical + body. Classification
// succeeds only when that composition collapses into one of the
// StreamDescriptor forms exactly.
//
//===----------------------------------------------------------------------===//

#include "analysis/StreamPatterns.h"

#include <algorithm>
#include <map>

using namespace ssp;
using namespace ssp::analysis;
using namespace ssp::ir;

namespace {

/// c + sum(K_i * init(R_i)); terms sorted by dense index, coefficients
/// nonzero, at most two terms (the descriptor encodes base + ind*mul).
struct LinExpr {
  struct Term {
    Reg R;
    int64_t K = 0;
  };
  int64_t C = 0;
  std::vector<Term> Terms;

  bool sameTerms(const LinExpr &O) const {
    if (Terms.size() != O.Terms.size())
      return false;
    for (size_t I = 0; I < Terms.size(); ++I)
      if (Terms[I].R != O.Terms[I].R || Terms[I].K != O.Terms[I].K)
        return false;
    return true;
  }
};

struct Expr {
  enum Shape { Lin, Gather, Chase, Opaque } S = Opaque;

  LinExpr L; // Lin: the value. Gather: the index-load address.

  // Gather value mapping (identity right after the load).
  Reg VBase;
  int64_t VMul = 1;
  uint64_t VMask = ~0ull;
  int64_t VShift = 0;
  int64_t VAdd = 0;

  // Chase: value = chase^Links(init(Ptr)) + Add, where one link loads at
  // (current pointer + LinkOff).
  Reg Ptr;
  int64_t LinkOff = 0;
  unsigned Links = 0;
  int64_t Add = 0;

  static Expr opaque() { return Expr{}; }
  static Expr lin(LinExpr LE) {
    Expr E;
    E.S = Lin;
    E.L = std::move(LE);
    return E;
  }
};

/// Lazy symbolic environment: registers default to their initial value.
class Env {
public:
  Expr get(Reg R) const {
    if (!R.isValid() || !R.isInt())
      return Expr::opaque();
    if (R.Num == 0) // hardwired zero
      return Expr::lin(LinExpr{0, {}});
    auto It = M.find(R.denseIndex());
    if (It != M.end())
      return It->second;
    LinExpr LE;
    LE.Terms.push_back({R, 1});
    return Expr::lin(LE);
  }

  void set(Reg R, Expr E) {
    if (!R.isValid() || !R.isInt() || R.Num == 0)
      return;
    M[R.denseIndex()] = std::move(E);
  }

private:
  std::map<unsigned, Expr> M;
};

bool addLin(const LinExpr &A, const LinExpr &B, int64_t BSign, LinExpr &Out) {
  Out = A;
  Out.C += BSign * B.C;
  for (const LinExpr::Term &T : B.Terms) {
    bool Merged = false;
    for (auto It = Out.Terms.begin(); It != Out.Terms.end(); ++It) {
      if (It->R == T.R) {
        It->K += BSign * T.K;
        if (It->K == 0)
          Out.Terms.erase(It);
        Merged = true;
        break;
      }
    }
    if (!Merged)
      Out.Terms.push_back({T.R, BSign * T.K});
  }
  if (Out.Terms.size() > 2)
    return false;
  std::sort(Out.Terms.begin(), Out.Terms.end(),
            [](const LinExpr::Term &X, const LinExpr::Term &Y) {
              return X.R.denseIndex() < Y.R.denseIndex();
            });
  return true;
}

Expr addExprs(const Expr &A, const Expr &B, int64_t BSign) {
  if (A.S == Expr::Lin && B.S == Expr::Lin) {
    LinExpr R;
    if (!addLin(A.L, B.L, BSign, R))
      return Expr::opaque();
    return Expr::lin(R);
  }
  // Gather/Chase absorb Lin addends; subtraction *from* them only.
  const Expr *Big = nullptr;
  const Expr *Small = nullptr;
  int64_t Sign = 1;
  if (A.S != Expr::Lin && B.S == Expr::Lin) {
    Big = &A;
    Small = &B;
    Sign = BSign;
  } else if (A.S == Expr::Lin && B.S != Expr::Lin && BSign == 1) {
    Big = &B;
    Small = &A;
  } else {
    return Expr::opaque();
  }
  Expr R = *Big;
  if (R.S == Expr::Chase) {
    if (!Small->L.Terms.empty())
      return Expr::opaque();
    R.Add += Sign * Small->L.C;
    return R;
  }
  if (R.S == Expr::Gather) {
    // A captured base register may join exactly once, with coefficient 1.
    if (Small->L.Terms.size() > 1)
      return Expr::opaque();
    if (Small->L.Terms.size() == 1) {
      if (Sign != 1 || Small->L.Terms[0].K != 1 || R.VBase.isValid())
        return Expr::opaque();
      R.VBase = Small->L.Terms[0].R;
    }
    R.VAdd += Sign * Small->L.C;
    return R;
  }
  return Expr::opaque();
}

Expr mulExprImm(const Expr &A, int64_t K) {
  if (K == 0)
    return Expr::lin(LinExpr{0, {}});
  if (A.S == Expr::Lin) {
    LinExpr R = A.L;
    R.C *= K;
    for (LinExpr::Term &T : R.Terms)
      T.K *= K;
    return Expr::lin(R);
  }
  if (A.S == Expr::Gather && A.VMask == ~0ull && A.VShift == 0 &&
      !A.VBase.isValid()) {
    Expr R = A;
    R.VMul *= K;
    R.VAdd *= K;
    return R;
  }
  return Expr::opaque();
}

Expr shlExprImm(const Expr &A, int64_t Sh) {
  if (Sh < 0 || Sh > 63)
    return Expr::opaque();
  if (A.S == Expr::Lin)
    return mulExprImm(A, int64_t(1) << Sh);
  if (A.S == Expr::Gather && !A.VBase.isValid()) {
    Expr R = A;
    R.VShift += Sh;
    R.VAdd = static_cast<int64_t>(static_cast<uint64_t>(R.VAdd) << Sh);
    return R;
  }
  return Expr::opaque();
}

Expr andExprImm(const Expr &A, int64_t M) {
  if (A.S == Expr::Lin && A.L.Terms.empty())
    return Expr::lin(
        LinExpr{static_cast<int64_t>(static_cast<uint64_t>(A.L.C) &
                                     static_cast<uint64_t>(M)),
                {}});
  if (A.S == Expr::Gather && A.VShift == 0 && A.VAdd == 0 &&
      !A.VBase.isValid()) {
    Expr R = A;
    R.VMask &= static_cast<uint64_t>(M);
    return R;
  }
  return Expr::opaque();
}

/// True when \p E is exactly c + 1*init(R) for some single register.
bool isPurePointer(const Expr &E, Reg &R, int64_t &C) {
  if (E.S != Expr::Lin || E.L.Terms.size() != 1 || E.L.Terms[0].K != 1)
    return false;
  R = E.L.Terms[0].R;
  C = E.L.C;
  return true;
}

Expr loadExpr(const Expr &Addr, int64_t Imm, Reg Dst) {
  Reg P;
  int64_t C = 0;
  // A self-recurrent load through a plain pointer is one chase link; the
  // per-link offset is everything added to the current pointer.
  if (isPurePointer(Addr, P, C) && Dst == P) {
    Expr E;
    E.S = Expr::Chase;
    E.Ptr = P;
    E.LinkOff = C + Imm;
    E.Links = 1;
    return E;
  }
  if (Addr.S == Expr::Chase && Dst == Addr.Ptr &&
      Addr.Add + Imm == Addr.LinkOff) {
    Expr E = Addr;
    E.Links += 1;
    E.Add = 0;
    return E;
  }
  if (Addr.S == Expr::Lin) {
    Expr E;
    E.S = Expr::Gather;
    E.L = Addr.L;
    E.L.C += Imm;
    return E;
  }
  return Expr::opaque();
}

void transfer(Env &E, const Instruction &I) {
  Reg D = I.def();
  if (!D.isValid() || !D.isInt())
    return; // predicate/float defs and non-writers never carry addresses
  Expr R = Expr::opaque();
  switch (I.Op) {
  case Opcode::MovI:
    R = Expr::lin(LinExpr{I.Imm, {}});
    break;
  case Opcode::Mov:
    R = E.get(I.Src1);
    break;
  case Opcode::Add:
    R = addExprs(E.get(I.Src1), E.get(I.Src2), 1);
    break;
  case Opcode::Sub:
    R = addExprs(E.get(I.Src1), E.get(I.Src2), -1);
    break;
  case Opcode::AddI:
    R = addExprs(E.get(I.Src1), Expr::lin(LinExpr{I.Imm, {}}), 1);
    break;
  case Opcode::MulI:
    R = mulExprImm(E.get(I.Src1), I.Imm);
    break;
  case Opcode::ShlI:
    R = shlExprImm(E.get(I.Src1), I.Imm);
    break;
  case Opcode::AndI:
    R = andExprImm(E.get(I.Src1), I.Imm);
    break;
  case Opcode::Load:
    R = loadExpr(E.get(I.Src1), I.Imm, D);
    break;
  default:
    break; // Mul/And/Or/Xor/Shl/Shr/OrI/FToX/CopyFromLIB...: opaque
  }
  E.set(D, R);
}

/// Step of one register across a link: EnvC maps init(R) to init(R) + s.
/// Returns false when the register changes in any non-affine way.
bool linearStep(const Env &EnvC, Reg R, int64_t &Step) {
  Expr E = EnvC.get(R);
  Reg P;
  int64_t C = 0;
  if (!isPurePointer(E, P, C) || P != R)
    return false;
  Step = C;
  return true;
}

/// Encodes a Lin address into the descriptor's base/ind/mul/add slots.
bool encodeAddr(const LinExpr &L, StreamDescriptor &D) {
  D.AddrAdd = L.C;
  D.AddrMul = 0;
  if (L.Terms.empty())
    return true;
  if (L.Terms.size() == 1) {
    if (L.Terms[0].K == 1) {
      D.AddrBase = L.Terms[0].R;
    } else {
      D.AddrInd = L.Terms[0].R;
      D.AddrMul = L.Terms[0].K;
    }
    return true;
  }
  // Two terms: one must carry coefficient 1 for the base slot.
  const LinExpr::Term *BaseT = nullptr;
  const LinExpr::Term *IndT = nullptr;
  for (const LinExpr::Term &T : L.Terms) {
    if (T.K == 1 && !BaseT)
      BaseT = &T;
    else
      IndT = &T;
  }
  if (!BaseT || !IndT)
    return false;
  D.AddrBase = BaseT->R;
  D.AddrInd = IndT->R;
  D.AddrMul = IndT->K;
  return true;
}

/// Per-link advance of a Lin address: sum of coefficient * register step.
bool linStride(const Env &EnvC, const LinExpr &L, int64_t &Stride) {
  Stride = 0;
  for (const LinExpr::Term &T : L.Terms) {
    int64_t S = 0;
    if (!linearStep(EnvC, T.R, S))
      return false;
    Stride += T.K * S;
  }
  return Stride != 0;
}

} // namespace

std::optional<StreamDescriptor>
analysis::classifyStream(const StreamClassifyInput &In) {
  if (In.Targets.empty() || In.Depth == 0)
    return std::nullopt;

  Env EnvC;
  for (const Instruction &I : In.Critical)
    transfer(EnvC, I);
  Env EnvF = EnvC;
  for (const Instruction &I : In.Body)
    transfer(EnvF, I);

  std::vector<Expr> TE;
  TE.reserve(In.Targets.size());
  for (const auto &[Base, Imm] : In.Targets) {
    (void)Imm;
    TE.push_back(EnvF.get(Base));
  }

  size_t NLin = 0, NGather = 0, NChase = 0;
  for (const Expr &E : TE) {
    NLin += E.S == Expr::Lin;
    NGather += E.S == Expr::Gather;
    NChase += E.S == Expr::Chase;
  }
  if (NLin + NGather + NChase != TE.size())
    return std::nullopt; // an opaque target defeats full coverage

  StreamDescriptor D;
  D.Depth = In.Depth;

  // ---- Chase: every target dereferences the same one-link recurrence. ----
  if (NChase == TE.size()) {
    const Expr &E0 = TE[0];
    if (E0.Links != 1)
      return std::nullopt; // the engine advances one link per step
    for (const Expr &E : TE)
      if (E.Ptr != E0.Ptr || E.LinkOff != E0.LinkOff || E.Links != E0.Links)
        return std::nullopt;
    // The staged pointer must advance by exactly that link.
    Expr S = EnvC.get(E0.Ptr);
    if (S.S != Expr::Chase || S.Ptr != E0.Ptr || S.LinkOff != E0.LinkOff ||
        S.Links != 1 || S.Add != 0)
      return std::nullopt;
    D.Kind = StreamKind::Chase;
    D.AddrBase = E0.Ptr;
    D.ChaseOff = E0.LinkOff;
    for (size_t J = 0; J < TE.size(); ++J)
      D.PrefetchOffsets.push_back(TE[J].Add + In.Targets[J].second);
    return D;
  }

  // ---- Affine: every target is the same linear form, differing only in
  // its constant; each participating register steps linearly. ----
  if (NLin == TE.size()) {
    const LinExpr &L0 = TE[0].L;
    for (const Expr &E : TE)
      if (!E.L.sameTerms(L0))
        return std::nullopt;
    if (!linStride(EnvC, L0, D.Stride))
      return std::nullopt;
    LinExpr First = L0;
    First.C += In.Targets[0].second;
    if (!encodeAddr(First, D))
      return std::nullopt;
    D.Kind = StreamKind::Affine;
    for (size_t J = 0; J < TE.size(); ++J)
      D.PrefetchOffsets.push_back((TE[J].L.C + In.Targets[J].second) -
                                  First.C);
    return D;
  }

  // ---- Indirect: gather targets share one index stream and one value
  // mapping; any Lin targets must prefetch that index stream itself. ----
  if (NGather >= 1 && NGather + NLin == TE.size()) {
    const Expr *G0 = nullptr;
    for (const Expr &E : TE)
      if (E.S == Expr::Gather) {
        G0 = &E;
        break;
      }
    for (const Expr &E : TE)
      if (E.S == Expr::Gather &&
          (!E.L.sameTerms(G0->L) || E.L.C != G0->L.C || E.VMul != G0->VMul ||
           E.VMask != G0->VMask || E.VShift != G0->VShift ||
           E.VBase != G0->VBase))
        return std::nullopt;
    if (!linStride(EnvC, G0->L, D.Stride))
      return std::nullopt;
    if (G0->VBase.isValid()) {
      int64_t S = 0;
      if (!linearStep(EnvC, G0->VBase, S) || S != 0)
        return std::nullopt; // the gather base must be loop-invariant
    }
    if (!encodeAddr(G0->L, D))
      return std::nullopt;
    D.Kind = StreamKind::Indirect;
    D.ValBase = G0->VBase;
    D.ValMul = G0->VMul;
    D.ValMask = G0->VMask;
    D.ValShift = G0->VShift;
    bool HaveFirst = false;
    for (size_t J = 0; J < TE.size(); ++J) {
      const Expr &E = TE[J];
      int64_t Imm = In.Targets[J].second;
      if (E.S == Expr::Gather) {
        int64_t Abs = E.VAdd + Imm;
        if (!HaveFirst) {
          D.ValAdd = Abs;
          HaveFirst = true;
        }
        D.PrefetchOffsets.push_back(Abs - D.ValAdd);
      } else {
        // Index prefetch: same linear form as the index address.
        if (!E.L.sameTerms(G0->L))
          return std::nullopt;
        D.PrefetchIndex = true;
        D.IdxPrefetchOffsets.push_back((E.L.C + Imm) - G0->L.C);
      }
    }
    return D;
  }

  return std::nullopt;
}
