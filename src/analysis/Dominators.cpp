//===- analysis/Dominators.cpp - (Post)dominator trees --------------------===//

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace ssp;
using namespace ssp::analysis;

namespace {

/// Cooper-Harvey-Kennedy over an arbitrary graph given in RPO.
/// \p Preds gives predecessors in the traversal direction.
std::vector<uint32_t> iterativeDoms(uint32_t NumNodes, uint32_t Root,
                                    const std::vector<uint32_t> &RPO,
                                    const std::vector<uint32_t> &RPOIndex,
                                    const std::vector<std::vector<uint32_t>>
                                        &Preds) {
  std::vector<uint32_t> IDom(NumNodes, ~0u);
  IDom[Root] = Root;

  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RPOIndex[A] > RPOIndex[B])
        A = IDom[A];
      while (RPOIndex[B] > RPOIndex[A])
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : RPO) {
      if (B == Root)
        continue;
      uint32_t NewIDom = ~0u;
      for (uint32_t P : Preds[B]) {
        if (IDom[P] == ~0u)
          continue; // Not yet processed / unreachable.
        NewIDom = NewIDom == ~0u ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != ~0u && IDom[B] != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
  IDom[Root] = ~0u; // Root has no parent in tree form.
  return IDom;
}

} // namespace

DomTree DomTree::buildDominators(const CFG &G) {
  DomTree T;
  T.Root = G.entry();
  std::vector<std::vector<uint32_t>> Preds(G.numBlocks());
  for (uint32_t B = 0; B < G.numBlocks(); ++B)
    Preds[B] = G.preds(B);
  T.IDom = iterativeDoms(static_cast<uint32_t>(G.numBlocks()), T.Root,
                         G.rpo(), [&] {
                           std::vector<uint32_t> Idx(G.numBlocks(), ~0u);
                           for (uint32_t I = 0; I < G.rpo().size(); ++I)
                             Idx[G.rpo()[I]] = I;
                           return Idx;
                         }(),
                         Preds);
  return T;
}

DomTree DomTree::buildPostDominators(const CFG &G) {
  // Reverse graph with a virtual exit node V = numBlocks().
  uint32_t N = static_cast<uint32_t>(G.numBlocks());
  uint32_t V = N;
  std::vector<std::vector<uint32_t>> RevSuccs(N + 1), RevPreds(N + 1);
  for (uint32_t B = 0; B < N; ++B)
    for (uint32_t S : G.succs(B)) {
      RevSuccs[S].push_back(B);
      RevPreds[B].push_back(S);
    }
  for (uint32_t E : G.exits()) {
    RevSuccs[V].push_back(E);
    RevPreds[E].push_back(V);
  }

  // RPO on the reverse graph from V.
  std::vector<uint8_t> State(N + 1, 0);
  std::vector<std::pair<uint32_t, uint32_t>> Stack;
  std::vector<uint32_t> PostOrder;
  Stack.push_back({V, 0});
  State[V] = 1;
  while (!Stack.empty()) {
    auto &[B, Next] = Stack.back();
    if (Next < RevSuccs[B].size()) {
      uint32_t S = RevSuccs[B][Next++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      PostOrder.push_back(B);
      Stack.pop_back();
    }
  }
  std::vector<uint32_t> RPO(PostOrder.rbegin(), PostOrder.rend());
  std::vector<uint32_t> RPOIndex(N + 1, ~0u);
  for (uint32_t I = 0; I < RPO.size(); ++I)
    RPOIndex[RPO[I]] = I;

  DomTree T;
  T.Root = V;
  T.IDom = iterativeDoms(N + 1, V, RPO, RPOIndex, RevPreds);
  // Queries never mention V, but blocks whose ipdom is V keep it; shrink
  // the vector view: keep as-is (V index exists).
  return T;
}

bool DomTree::dominates(uint32_t A, uint32_t B) const {
  if (A == B)
    return true;
  uint32_t Cur = B;
  while (IDom[Cur] != ~0u) {
    Cur = IDom[Cur];
    if (Cur == A)
      return true;
  }
  return false;
}

std::vector<std::vector<uint32_t>>
ssp::analysis::controlDependence(const CFG &G) {
  uint32_t N = static_cast<uint32_t>(G.numBlocks());
  DomTree PDom = DomTree::buildPostDominators(G);
  std::vector<std::vector<uint32_t>> CD(N);

  // Classic algorithm: for each edge (A -> B) where B does not post-dominate
  // A, walk from B up the post-dominator tree to (exclusive) ipdom(A),
  // marking every visited block as control dependent on A.
  for (uint32_t A = 0; A < N; ++A) {
    if (G.succs(A).size() < 2)
      continue; // Only branches create control dependence.
    for (uint32_t B : G.succs(A)) {
      uint32_t Stop = PDom.idom(A);
      uint32_t Cur = B;
      while (Cur != Stop && Cur != ~0u && Cur != PDom.root()) {
        if (Cur < N)
          CD[Cur].push_back(A);
        Cur = PDom.idom(Cur);
      }
    }
  }
  for (auto &Deps : CD) {
    std::sort(Deps.begin(), Deps.end());
    Deps.erase(std::unique(Deps.begin(), Deps.end()), Deps.end());
  }
  return CD;
}
