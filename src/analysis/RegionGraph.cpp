//===- analysis/RegionGraph.cpp - Hierarchical regions --------------------===//

#include "analysis/RegionGraph.h"

using namespace ssp;
using namespace ssp::analysis;
using namespace ssp::ir;

RegionGraph RegionGraph::build(const ProgramDeps &Deps) {
  RegionGraph RG;
  const Program &P = Deps.program();
  RG.ProcRegion.resize(P.numFuncs(), -1);
  RG.LoopRegion.resize(P.numFuncs());

  for (uint32_t FI = 0; FI < P.numFuncs(); ++FI) {
    const FunctionDeps &FD = Deps.forFunction(FI);

    Region Proc;
    Proc.Kind = RegionKind::Procedure;
    Proc.Func = FI;
    int ProcIdx = static_cast<int>(RG.Regions.size());
    RG.Regions.push_back(Proc);
    RG.ProcRegion[FI] = ProcIdx;

    const LoopInfo &LI = FD.loops();
    RG.LoopRegion[FI].assign(LI.numLoops(), -1);
    for (size_t L = 0; L < LI.numLoops(); ++L) {
      Region R;
      R.Kind = RegionKind::Loop;
      R.Func = FI;
      R.LoopIdx = static_cast<int>(L);
      RG.LoopRegion[FI][L] = static_cast<int>(RG.Regions.size());
      RG.Regions.push_back(R);
    }
    // Wire loop parents: enclosing loop region or the procedure region.
    for (size_t L = 0; L < LI.numLoops(); ++L) {
      int Idx = RG.LoopRegion[FI][L];
      int ParentLoop = LI.loop(L).Parent;
      int ParentIdx =
          ParentLoop >= 0 ? RG.LoopRegion[FI][ParentLoop] : ProcIdx;
      RG.Regions[Idx].Parent = ParentIdx;
      RG.Regions[ParentIdx].Children.push_back(Idx);
    }
  }
  return RG;
}

int RegionGraph::innermostRegionOf(const InstRef &I,
                                   const ProgramDeps &Deps) const {
  const FunctionDeps &FD = Deps.forFunction(I.Func);
  int LoopIdx = FD.loops().innermostLoopOf(I.Block);
  if (LoopIdx >= 0)
    return LoopRegion[I.Func][LoopIdx];
  return ProcRegion[I.Func];
}

int RegionGraph::outwardParent(int RegionIdx, const CallGraph &CG,
                               const ProgramDeps &Deps, InstRef *CallSiteOut)
    const {
  (void)Deps;
  const Region &R = Regions[RegionIdx];
  if (R.Kind == RegionKind::Loop)
    return R.Parent;
  // Procedure region: climb to the hottest caller's innermost region.
  const std::vector<CallSite> &Callers = CG.callersOf(R.Func);
  if (Callers.empty())
    return -1; // Program entry.
  const CallSite &Top = Callers.front();
  if (CallSiteOut)
    *CallSiteOut = Top.Site;
  // The call site's innermost enclosing region in the caller.
  const FunctionDeps &FD = Deps.forFunction(Top.Site.Func);
  int LoopIdx = FD.loops().innermostLoopOf(Top.Site.Block);
  if (LoopIdx >= 0)
    return LoopRegion[Top.Site.Func][LoopIdx];
  return ProcRegion[Top.Site.Func];
}
