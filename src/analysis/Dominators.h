//===- analysis/Dominators.h - (Post)dominator trees ----------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator trees over a function's CFG, built with the
/// Cooper-Harvey-Kennedy iterative algorithm, plus classic control
/// dependence (a block is control dependent on the branches in its
/// post-dominance frontier). The trigger placer uses dominance to hoist
/// triggers to immediate control dominant nodes (paper Section 3.3); the
/// slicer uses control dependence edges.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_DOMINATORS_H
#define SSP_ANALYSIS_DOMINATORS_H

#include "analysis/CFG.h"

#include <cstdint>
#include <vector>

namespace ssp::analysis {

/// A dominator tree (or post-dominator tree when built over the reverse
/// CFG). Unreachable blocks have no parent and dominate nothing.
class DomTree {
public:
  /// Builds the dominator tree of \p G.
  static DomTree buildDominators(const CFG &G);

  /// Builds the post-dominator tree of \p G using a virtual exit node that
  /// succeeds all exit blocks. The virtual node never appears in queries.
  static DomTree buildPostDominators(const CFG &G);

  /// Immediate dominator of \p Block, or ~0u for the root / unreachable.
  uint32_t idom(uint32_t Block) const { return IDom[Block]; }

  /// Returns true if \p A dominates \p B (reflexive).
  bool dominates(uint32_t A, uint32_t B) const;

  bool isReachable(uint32_t Block) const {
    return Block == Root || IDom[Block] != ~0u;
  }

  uint32_t root() const { return Root; }

private:
  std::vector<uint32_t> IDom;
  uint32_t Root = 0;
};

/// For each block, the set of (branch block) ids it is control dependent
/// on: block B is control dependent on branch X if X's outcome decides
/// whether B executes (computed via post-dominance frontiers).
std::vector<std::vector<uint32_t>> controlDependence(const CFG &G);

} // namespace ssp::analysis

#endif // SSP_ANALYSIS_DOMINATORS_H
