//===- analysis/DependenceGraph.h - Data/control/memory dependences -------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function dependence information: register data dependences (via
/// reaching definitions), control dependences (via post-dominance), and
/// memory flow dependences. Backward traversal over these edges is the
/// slicing primitive of Section 3.1; loop-carried classification of edges
/// drives the chaining-SP scheduler of Section 3.2.
///
/// Memory disambiguation: a load takes a flow dependence from a store only
/// when both use the same base register and displacement. This plays the
/// role of the production compiler's static disambiguator, which the paper
/// reports as effective (reference [11]); the workloads' address
/// computations read from pointer structures that the loop does not mutate,
/// matching the measurements of Aamodt et al. cited in Section 4.1 (0.87
/// stores per slice on average).
///
/// Every edge this analysis reports is conservative ("may"); the
/// speculation layer (analysis/SpecDeps.h) refines the view with a
/// must/hot/cold taxonomy when profile evidence is available:
///
///   * **must** edges have an intra-iteration component — a register def
///     reaches its use over a back-edge-free path inside their innermost
///     common loop, the endpoints are in different functions, or a
///     memorySources store precedes its load in the same block. The
///     consumers here (Slicer, SliceDepGraph) always honor them.
///   * **hot**/**cold** are the remaining may-edges — purely loop-carried
///     register flows and cross-block disambiguator-approved store->load
///     pairs — split by observed dynamic activation ratio. Only *cold*
///     edges are prunable, and only by consumers that record a SpecDrop
///     for the `speculation.*` verification pass.
///
/// In particular a memorySources result is prunable exactly when the pair
/// is cross-block (or backward within a block) and the profile shows the
/// store's value reaching the load in at most threshold * trips of the
/// load's executions; dataSources/controlSources edges are never pruned
/// here — pruning happens in the consumers against the SpecDeps oracle.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_DEPENDENCEGRAPH_H
#define SSP_ANALYSIS_DEPENDENCEGRAPH_H

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/InstIndex.h"
#include "analysis/InstRef.h"
#include "analysis/Loops.h"
#include "analysis/ReachingDefs.h"

#include <memory>
#include <vector>

namespace ssp::analysis {

/// Dependence analysis results for one function. Construction is eager for
/// CFG/dominators/loops/reaching-defs; edge queries are computed on demand.
class FunctionDeps {
public:
  FunctionDeps(const ir::Program &P, uint32_t Func);

  const CFG &cfg() const { return G; }
  const DomTree &doms() const { return Dom; }
  const LoopInfo &loops() const { return LI; }
  const ReachingDefs &reachingDefs() const { return RD; }
  uint32_t funcIndex() const { return Func; }

  /// Intra-function producers of \p I's register uses (flow dependences).
  std::vector<InstRef> dataSources(const InstRef &I) const;

  /// Branch instructions \p I is control dependent on.
  std::vector<InstRef> controlSources(const InstRef &I) const;

  /// Stores that may feed \p I when it is a load (same base + displacement
  /// disambiguation; see file comment).
  std::vector<InstRef> memorySources(const InstRef &I) const;

  /// Register uses of \p I whose value may come from the caller.
  std::vector<ir::Reg> liveInUses(const InstRef &I) const;

  /// True if \p Def reaches \p Use along some path inside loop \p L that
  /// does not traverse a back edge: the dependence has an intra-iteration
  /// component. When false, a def->use dependence between them is purely
  /// loop-carried.
  bool reachesWithoutBackedge(const InstRef &Def, const InstRef &Use,
                              const Loop &L) const;

private:
  const ir::Program &P;
  uint32_t Func;
  CFG G;
  DomTree Dom;
  LoopInfo LI;
  ReachingDefs RD;
  std::vector<std::vector<uint32_t>> CtrlDeps; ///< Block -> branch blocks.
};

/// Dependence analyses for a whole program. Construction is eager (the
/// tool's summary fixpoint visits every function anyway), which makes the
/// object immutable afterwards: parallel candidate generation const-shares
/// one ProgramDeps across worker threads with no synchronization.
class ProgramDeps {
public:
  explicit ProgramDeps(const ir::Program &P) : P(P), Index(P) {
    Cache.reserve(P.numFuncs());
    for (uint32_t F = 0; F < P.numFuncs(); ++F)
      Cache.push_back(std::make_unique<FunctionDeps>(P, F));
  }

  const FunctionDeps &forFunction(uint32_t Func) const {
    return *Cache[Func];
  }

  const ir::Program &program() const { return P; }

  /// Program-wide dense instruction ids (layout order).
  const InstIndex &instIndex() const { return Index; }

private:
  const ir::Program &P;
  InstIndex Index;
  std::vector<std::unique_ptr<FunctionDeps>> Cache;
};

} // namespace ssp::analysis

#endif // SSP_ANALYSIS_DEPENDENCEGRAPH_H
