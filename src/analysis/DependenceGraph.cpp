//===- analysis/DependenceGraph.cpp - Dependence edge queries -------------===//

#include "analysis/DependenceGraph.h"

#include <algorithm>
#include <cassert>

using namespace ssp;
using namespace ssp::analysis;
using namespace ssp::ir;

FunctionDeps::FunctionDeps(const Program &P, uint32_t Func)
    : P(P), Func(Func), G(CFG::build(P.func(Func))),
      Dom(DomTree::buildDominators(G)), LI(LoopInfo::build(G, Dom)),
      RD(ReachingDefs::build(P, Func, G)), CtrlDeps(controlDependence(G)) {}

std::vector<InstRef> FunctionDeps::dataSources(const InstRef &I) const {
  assert(I.Func == Func && "query for wrong function");
  std::vector<InstRef> Sources;
  const Instruction &Inst = I.get(P);
  Inst.forEachUse([&](Reg R) {
    // Hardwired registers have no producers.
    if ((R.isInt() || R.isPred()) && R.Num == 0)
      return;
    for (const InstRef &Def : RD.reachingDefs(I.Block, I.Inst, R))
      Sources.push_back(Def);
  });
  std::sort(Sources.begin(), Sources.end());
  Sources.erase(std::unique(Sources.begin(), Sources.end()), Sources.end());
  return Sources;
}

std::vector<InstRef> FunctionDeps::controlSources(const InstRef &I) const {
  assert(I.Func == Func && "query for wrong function");
  std::vector<InstRef> Sources;
  for (uint32_t BranchBlock : CtrlDeps[I.Block]) {
    const BasicBlock &BB = P.func(Func).block(BranchBlock);
    assert(!BB.Insts.empty());
    Sources.push_back(
        {Func, BranchBlock, static_cast<uint32_t>(BB.Insts.size() - 1)});
  }
  return Sources;
}

std::vector<InstRef> FunctionDeps::memorySources(const InstRef &I) const {
  assert(I.Func == Func && "query for wrong function");
  const Instruction &Load = I.get(P);
  std::vector<InstRef> Sources;
  if (!isLoad(Load.Op))
    return Sources;
  // Same-base-same-displacement disambiguation (see header comment).
  const Function &F = P.func(Func);
  for (uint32_t BI = 0; BI < F.numBlocks(); ++BI) {
    const BasicBlock &BB = F.block(BI);
    if (BB.isAttachment())
      continue;
    for (uint32_t II = 0; II < BB.Insts.size(); ++II) {
      const Instruction &S = BB.Insts[II];
      if (!isStore(S.Op))
        continue;
      if (S.Src1 == Load.Src1 && S.Imm == Load.Imm)
        Sources.push_back({Func, BI, II});
    }
  }
  return Sources;
}

std::vector<Reg> FunctionDeps::liveInUses(const InstRef &I) const {
  assert(I.Func == Func && "query for wrong function");
  std::vector<Reg> LiveIns;
  const Instruction &Inst = I.get(P);
  Inst.forEachUse([&](Reg R) {
    if ((R.isInt() || R.isPred()) && R.Num == 0)
      return;
    if (RD.mayBeLiveIn(I.Block, I.Inst, R))
      LiveIns.push_back(R);
  });
  std::sort(LiveIns.begin(), LiveIns.end());
  LiveIns.erase(std::unique(LiveIns.begin(), LiveIns.end()), LiveIns.end());
  return LiveIns;
}

bool FunctionDeps::reachesWithoutBackedge(const InstRef &Def,
                                          const InstRef &Use,
                                          const Loop &L) const {
  if (Def.Block == Use.Block)
    return Def.Inst < Use.Inst;

  // DFS from Def.Block to Use.Block restricted to loop blocks, with all
  // back edges to the header removed.
  std::vector<uint32_t> Work{Def.Block};
  std::vector<uint8_t> Seen(G.numBlocks(), 0);
  Seen[Def.Block] = 1;
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    for (uint32_t S : G.succs(B)) {
      if (S == L.Header)
        continue; // Back edge (or loop entry, which a path from inside the
                  // loop cannot re-enter acyclically anyway).
      if (!L.contains(S) || Seen[S])
        continue;
      if (S == Use.Block)
        return true;
      Seen[S] = 1;
      Work.push_back(S);
    }
  }
  // The use may live in the header itself, reachable only via back edges.
  return false;
}
