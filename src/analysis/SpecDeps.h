//===- analysis/SpecDeps.h - Speculation-aware dependence classification --===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profile-backed classification of may-dependences, after SCAF's shape:
/// a speculative analysis may *remove* a may-dependence edge when dynamic
/// evidence says it is cold, provided a validation plan backs the removal
/// (here: the `speculation.*` verification pass re-derives every drop).
///
/// Every dependence edge the slicer or scheduler might traverse falls into
/// one of three classes:
///
///   * **must** — the edge has an intra-iteration component (a register
///     def reaches its use without crossing a back edge) or is otherwise
///     not a speculation candidate (cross-function, same-block forward
///     store->load). Never prunable.
///   * **hot**  — a may-edge (purely loop-carried register flow, or a
///     disambiguator-approved store->load pair) whose observed dynamic
///     activation ratio exceeds the confidence threshold, or that has no
///     profile coverage at all (the consumer never executed, or the
///     profile predates dependence evidence). Kept.
///   * **cold** — a covered may-edge observed in at most
///     `threshold * trips` of the consumer's executions. Prunable: the
///     slicer turns the producer into a trigger-time live-in and the
///     scheduler ignores the carried edge, each recording a SpecDrop the
///     verification pipeline checks for evidence.
///
/// Evidence is the flat DepEvidence view over profile-collected per-edge
/// activation counts (profile/Profile.h stores the vectors; this layer
/// deliberately sees only plain data so ssp_verify can consume it without
/// linking ssp_profile).
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_SPECDEPS_H
#define SSP_ANALYSIS_SPECDEPS_H

#include "analysis/DependenceGraph.h"
#include "analysis/InstRef.h"

#include <cstdint>
#include <vector>

namespace ssp::analysis {

/// One observed dynamic dependence edge: \p From produced a value (register
/// def or store) that \p To consumed (register use or load) \p Count times.
/// Both endpoints are in one function; vectors of these are sorted by
/// (From, To) — the canonical `.sspprof` record order.
struct DepEdgeCount {
  ir::StaticId From = 0;
  ir::StaticId To = 0;
  uint64_t Count = 0;

  friend bool operator<(const DepEdgeCount &A, const DepEdgeCount &B) {
    if (A.From != B.From)
      return A.From < B.From;
    return A.To < B.To;
  }
};

/// Flat, layering-free view of the dependence evidence one profile carries
/// (see profile::ProfileData::depEvidence). All pointers may be null when
/// the profile predates evidence collection; Collected distinguishes "no
/// dynamic dependences observed" from "never measured".
struct DepEvidence {
  const std::vector<DepEdgeCount> *MemDeps = nullptr;
  const std::vector<DepEdgeCount> *RegDeps = nullptr;
  /// Per (function, instruction Id) execution counts: the trip denominator
  /// of a consumer is the number of times it itself executed. (Block entry
  /// counts would over-count blocks containing calls — the call-return
  /// resumption re-enters the block.)
  const std::vector<std::vector<uint64_t>> *InstCounts = nullptr;
  bool Collected = false;
};

/// Tuning of the speculation pass (ToolOptions::SpecDepThreshold and the
/// `--spec-deps[=T]` flag map here).
struct SpecDepOptions {
  /// Master switch; off keeps every may-edge (bit-identical to the
  /// pre-speculation pipeline).
  bool Enabled = false;
  /// Confidence threshold: a covered may-edge is cold when
  /// observed <= Threshold * trips. 0 prunes only never-observed edges.
  double Threshold = 0.0;
};

enum class DepClass : uint8_t { Must, Hot, Cold };
enum class DepKind : uint8_t { Register, Memory };

inline const char *depClassName(DepClass C) {
  switch (C) {
  case DepClass::Must:
    return "must";
  case DepClass::Hot:
    return "hot";
  case DepClass::Cold:
    return "cold";
  }
  return "?";
}

inline const char *depKindName(DepKind K) {
  return K == DepKind::Register ? "reg" : "mem";
}

/// The record of one pruned may-edge, carried from the slicer through the
/// manifest into the `speculation.*` verification pass, which re-derives
/// the classification and rejects drops without evidence.
struct SpecDrop {
  DepKind Kind = DepKind::Register;
  ir::StaticId From = 0; ///< Producer (register def or store).
  ir::StaticId To = 0;   ///< Consumer (register use or load).
  uint64_t Observed = 0; ///< Dynamic activations of this edge.
  uint64_t Trips = 0;    ///< Consumer executions (profile instcount).
  double Threshold = 0.0;

  friend bool operator<(const SpecDrop &A, const SpecDrop &B) {
    if (A.Kind != B.Kind)
      return A.Kind < B.Kind;
    if (A.From != B.From)
      return A.From < B.From;
    if (A.To != B.To)
      return A.To < B.To;
    if (A.Observed != B.Observed)
      return A.Observed < B.Observed;
    if (A.Trips != B.Trips)
      return A.Trips < B.Trips;
    return A.Threshold < B.Threshold;
  }
  friend bool operator==(const SpecDrop &A, const SpecDrop &B) {
    return !(A < B) && !(B < A);
  }
};

/// Classifies may-dependence edges of one program as must/hot/cold from
/// profile evidence. Immutable after construction and allocation-free per
/// query, so slicer/scheduler workers const-share one instance.
class SpecDeps {
public:
  SpecDeps(const ProgramDeps &Deps, SpecDepOptions Opts, DepEvidence Ev)
      : Deps(Deps), Opts(Opts), Ev(Ev) {}

  /// True when pruning may happen at all: the pass is switched on *and*
  /// the profile carries dependence evidence.
  bool enabled() const { return Opts.Enabled && Ev.Collected; }
  double threshold() const { return Opts.Threshold; }
  const SpecDepOptions &options() const { return Opts; }

  /// Classifies the register flow edge \p Def -> \p Use. Must unless the
  /// edge is purely loop-carried (no back-edge-free path inside the
  /// innermost loop containing both) and \p Use actually reads \p Def's
  /// defined register.
  DepClass classifyRegEdge(const InstRef &Def, const InstRef &Use) const;

  /// Classifies the memory flow edge \p Store -> \p Load (a
  /// FunctionDeps::memorySources pair). Same-block forward pairs are must.
  DepClass classifyMemEdge(const InstRef &Store, const InstRef &Load) const;

  /// True when the edge is Cold (and pruning is enabled); fills \p Drop
  /// with the evidence record.
  bool shouldPrune(DepKind Kind, const InstRef &From, const InstRef &To,
                   SpecDrop *Drop = nullptr) const;

  /// Observed activation count and trip denominator for an edge. Zero/zero
  /// when uncovered.
  void evidenceFor(DepKind Kind, const InstRef &From, const InstRef &To,
                   uint64_t &Observed, uint64_t &Trips) const;

  const ProgramDeps &deps() const { return Deps; }

private:
  DepClass classifyMayEdge(DepKind Kind, const InstRef &From,
                           const InstRef &To) const;
  uint64_t tripsOf(const InstRef &Consumer) const;

  const ProgramDeps &Deps;
  SpecDepOptions Opts;
  DepEvidence Ev;
};

} // namespace ssp::analysis

#endif // SSP_ANALYSIS_SPECDEPS_H
