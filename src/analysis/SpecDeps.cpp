//===- analysis/SpecDeps.cpp - Speculation-aware dependence classification ===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SpecDeps.h"

#include <algorithm>

namespace ssp::analysis {

namespace {

/// Observed count of (From, To) in the sorted evidence vector, 0 if absent.
uint64_t lookupCount(const std::vector<DepEdgeCount> *V, ir::StaticId From,
                     ir::StaticId To) {
  if (!V)
    return 0;
  DepEdgeCount Key;
  Key.From = From;
  Key.To = To;
  auto It = std::lower_bound(V->begin(), V->end(), Key);
  if (It != V->end() && It->From == From && It->To == To)
    return It->Count;
  return 0;
}

/// Index of the innermost loop containing both \p A and \p B, or -1. Walks
/// the parent chain of \p A's innermost loop until one contains \p B.
int innermostCommonLoop(const LoopInfo &LI, uint32_t A, uint32_t B) {
  int L = LI.innermostLoopOf(A);
  while (L >= 0 && !LI.loop(L).contains(B))
    L = LI.loop(L).Parent;
  return L;
}

} // namespace

uint64_t SpecDeps::tripsOf(const InstRef &Consumer) const {
  if (!Ev.InstCounts || Consumer.Func >= Ev.InstCounts->size())
    return 0;
  const std::vector<uint64_t> &IC = (*Ev.InstCounts)[Consumer.Func];
  uint32_t Id = Consumer.get(Deps.program()).Id;
  return Id < IC.size() ? IC[Id] : 0;
}

void SpecDeps::evidenceFor(DepKind Kind, const InstRef &From,
                           const InstRef &To, uint64_t &Observed,
                           uint64_t &Trips) const {
  const ir::Program &P = Deps.program();
  ir::StaticId FromSid = ir::makeStaticId(From.Func, From.get(P).Id);
  ir::StaticId ToSid = ir::makeStaticId(To.Func, To.get(P).Id);
  Observed = lookupCount(Kind == DepKind::Memory ? Ev.MemDeps : Ev.RegDeps,
                         FromSid, ToSid);
  Trips = tripsOf(To);
}

DepClass SpecDeps::classifyMayEdge(DepKind Kind, const InstRef &From,
                                   const InstRef &To) const {
  if (!enabled())
    return DepClass::Hot;
  uint64_t Observed = 0, Trips = 0;
  evidenceFor(Kind, From, To, Observed, Trips);
  // No coverage: the consumer never ran under the profile, so there is no
  // evidence either way — keep the edge.
  if (Trips == 0)
    return DepClass::Hot;
  return static_cast<double>(Observed) <=
                 Opts.Threshold * static_cast<double>(Trips)
             ? DepClass::Cold
             : DepClass::Hot;
}

DepClass SpecDeps::classifyRegEdge(const InstRef &Def,
                                   const InstRef &Use) const {
  if (Def.Func != Use.Func)
    return DepClass::Must;
  const ir::Program &P = Deps.program();
  const ir::Instruction &DefI = Def.get(P);
  ir::Reg R = DefI.def();
  if (!R.isValid())
    return DepClass::Must;
  // The slicer expands uses from synthetic positions too (call sites
  // standing in for callee live-ins); only a position that genuinely reads
  // the defined register is a speculation candidate.
  bool Reads = false;
  Use.get(P).forEachUse([&](ir::Reg U) { Reads |= U == R; });
  if (!Reads)
    return DepClass::Must;
  const FunctionDeps &FD = Deps.forFunction(Def.Func);
  int L = innermostCommonLoop(FD.loops(), Use.Block, Def.Block);
  if (L < 0)
    return DepClass::Must;
  // An intra-iteration component makes the edge non-speculative; only a
  // purely loop-carried def->use flow may be pruned on evidence.
  if (FD.reachesWithoutBackedge(Def, Use, FD.loops().loop(L)))
    return DepClass::Must;
  return classifyMayEdge(DepKind::Register, Def, Use);
}

DepClass SpecDeps::classifyMemEdge(const InstRef &Store,
                                   const InstRef &Load) const {
  if (Store.Func != Load.Func)
    return DepClass::Must;
  // A store earlier in the load's own block flows on every execution.
  if (Store.Block == Load.Block && Store.Inst < Load.Inst)
    return DepClass::Must;
  return classifyMayEdge(DepKind::Memory, Store, Load);
}

bool SpecDeps::shouldPrune(DepKind Kind, const InstRef &From,
                           const InstRef &To, SpecDrop *Drop) const {
  DepClass C = Kind == DepKind::Memory ? classifyMemEdge(From, To)
                                       : classifyRegEdge(From, To);
  if (C != DepClass::Cold)
    return false;
  if (Drop) {
    const ir::Program &P = Deps.program();
    Drop->Kind = Kind;
    Drop->From = ir::makeStaticId(From.Func, From.get(P).Id);
    Drop->To = ir::makeStaticId(To.Func, To.get(P).Id);
    evidenceFor(Kind, From, To, Drop->Observed, Drop->Trips);
    Drop->Threshold = Opts.Threshold;
  }
  return true;
}

} // namespace ssp::analysis
