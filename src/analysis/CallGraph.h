//===- analysis/CallGraph.h - Static + dynamic call graph -----------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program call graph. Direct calls are resolved statically; indirect
/// call sites are resolved from the dynamic call graph captured during
/// profiling, exactly as the paper instruments "all the indirect procedural
/// calls to capture the call graph during profiling" (Section 3.1.2).
///
//===----------------------------------------------------------------------===//

#ifndef SSP_ANALYSIS_CALLGRAPH_H
#define SSP_ANALYSIS_CALLGRAPH_H

#include "analysis/InstRef.h"

#include <cstdint>
#include <vector>

namespace ssp::analysis {

/// One resolved call edge.
struct CallSite {
  InstRef Site;        ///< The call/calli instruction.
  uint32_t Callee = 0; ///< Target function.
  uint64_t Count = 0;  ///< Dynamic execution count (0 if unknown).
};

/// One profiled (indirect call site, callee) edge. The profiler emits these
/// as a flat vector sorted by (Site, Callee) so the call-graph builder can
/// binary-search instead of walking an ordered map.
struct IndirectCallTarget {
  InstRef Site;
  uint32_t Callee = 0;
  uint64_t Count = 0;
};

/// Dynamic execution count of one direct call site, sorted by Site.
struct DirectCallCount {
  InstRef Site;
  uint64_t Count = 0;
};

/// Per-program call graph with caller and callee views.
class CallGraph {
public:
  /// Builds the call graph. \p IndirectTargets resolves calli sites (from
  /// the profiler's dynamic call graph) and must be sorted by
  /// (Site, Callee); \p SiteCounts optionally gives dynamic counts for
  /// direct calls and must be sorted by Site.
  static CallGraph
  build(const ir::Program &P,
        const std::vector<IndirectCallTarget> &IndirectTargets = {},
        const std::vector<DirectCallCount> &SiteCounts = {});

  /// Call sites whose callee is \p Func, hottest first.
  const std::vector<CallSite> &callersOf(uint32_t Func) const {
    return Callers[Func];
  }

  /// Call sites textually inside \p Func.
  const std::vector<CallSite> &callSitesIn(uint32_t Func) const {
    return Sites[Func];
  }

private:
  std::vector<std::vector<CallSite>> Callers; ///< Indexed by callee.
  std::vector<std::vector<CallSite>> Sites;   ///< Indexed by caller.
};

} // namespace ssp::analysis

#endif // SSP_ANALYSIS_CALLGRAPH_H
