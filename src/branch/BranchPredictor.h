//===- branch/BranchPredictor.h - GSHARE + BTB ----------------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The branch prediction hardware of the research Itanium models (paper,
/// Table 1): a 2k-entry GSHARE direction predictor and a 256-entry 4-way
/// associative branch target buffer. Each hardware thread context keeps its
/// own global-history register; the tables are shared, as on real SMT parts.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_BRANCH_BRANCHPREDICTOR_H
#define SSP_BRANCH_BRANCHPREDICTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ssp::branch {

/// GSHARE direction predictor: a table of 2-bit saturating counters indexed
/// by PC xor per-thread global history.
class GShare {
public:
  explicit GShare(unsigned Entries = 2048, unsigned NumThreads = 4)
      : Counters(Entries, 1 /* weakly not-taken */), History(NumThreads, 0),
        Mask(Entries - 1) {}

  /// Predicts the direction of the branch at \p Pc for thread \p Tid.
  bool predict(uint64_t Pc, unsigned Tid) const {
    return Counters[indexOf(Pc, Tid)] >= 2;
  }

  /// Trains on the resolved outcome and updates the global history.
  void update(uint64_t Pc, unsigned Tid, bool Taken) {
    uint8_t &C = Counters[indexOf(Pc, Tid)];
    if (Taken && C < 3)
      ++C;
    else if (!Taken && C > 0)
      --C;
    History[Tid] = (History[Tid] << 1) | (Taken ? 1 : 0);
  }

private:
  size_t indexOf(uint64_t Pc, unsigned Tid) const {
    return static_cast<size_t>((Pc ^ History[Tid]) & Mask);
  }

  std::vector<uint8_t> Counters;
  std::vector<uint64_t> History;
  uint64_t Mask;
};

/// Branch target buffer: 256 entries, 4-way set associative, LRU.
class BTB {
public:
  explicit BTB(unsigned Entries = 256, unsigned Assoc = 4)
      : Assoc(Assoc), NumSets(Entries / Assoc),
        Ways(static_cast<size_t>(Entries)) {}

  /// Returns true and fills \p Target if \p Pc hits in the BTB.
  bool lookup(uint64_t Pc, uint64_t &Target) {
    Entry *Base = setBase(Pc);
    for (unsigned W = 0; W < Assoc; ++W) {
      if (Base[W].Valid && Base[W].Pc == Pc) {
        Base[W].LastUse = ++UseClock;
        Target = Base[W].Target;
        return true;
      }
    }
    return false;
  }

  /// Installs or refreshes the mapping Pc -> Target.
  void update(uint64_t Pc, uint64_t Target) {
    Entry *Base = setBase(Pc);
    Entry *Victim = &Base[0];
    for (unsigned W = 0; W < Assoc; ++W) {
      if (Base[W].Valid && Base[W].Pc == Pc) {
        Base[W].Target = Target;
        Base[W].LastUse = ++UseClock;
        return;
      }
      if (!Base[W].Valid) {
        Victim = &Base[W];
        break;
      }
      if (Base[W].LastUse < Victim->LastUse)
        Victim = &Base[W];
    }
    Victim->Valid = true;
    Victim->Pc = Pc;
    Victim->Target = Target;
    Victim->LastUse = ++UseClock;
  }

private:
  struct Entry {
    uint64_t Pc = 0;
    uint64_t Target = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  Entry *setBase(uint64_t Pc) {
    return &Ways[static_cast<size_t>(Pc % NumSets) * Assoc];
  }

  unsigned Assoc;
  unsigned NumSets;
  std::vector<Entry> Ways;
  uint64_t UseClock = 0;
};

/// Combined front-end predictor with accuracy counters.
class BranchPredictor {
public:
  explicit BranchPredictor(unsigned NumThreads = 4)
      : Dir(2048, NumThreads) {}

  /// Predicts direction; trains immediately with the resolved outcome and
  /// reports whether the prediction was correct. The simulator models the
  /// misprediction penalty when this returns false.
  bool predictAndTrainDirection(uint64_t Pc, unsigned Tid, bool Taken) {
    bool Predicted = Dir.predict(Pc, Tid);
    Dir.update(Pc, Tid, Taken);
    ++Branches;
    if (Predicted != Taken)
      ++Mispredicts;
    return Predicted == Taken;
  }

  /// Predicts an indirect target via the BTB; trains with the resolved
  /// target and reports whether the prediction was correct.
  bool predictAndTrainTarget(uint64_t Pc, uint64_t ActualTarget) {
    uint64_t Predicted = 0;
    bool Hit = Targets.lookup(Pc, Predicted);
    Targets.update(Pc, ActualTarget);
    ++Branches;
    bool Correct = Hit && Predicted == ActualTarget;
    if (!Correct)
      ++Mispredicts;
    return Correct;
  }

  uint64_t numBranches() const { return Branches; }
  uint64_t numMispredicts() const { return Mispredicts; }

private:
  GShare Dir;
  BTB Targets;
  uint64_t Branches = 0;
  uint64_t Mispredicts = 0;
};

} // namespace ssp::branch

#endif // SSP_BRANCH_BRANCHPREDICTOR_H
