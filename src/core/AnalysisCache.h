//===- core/AnalysisCache.h - Shared immutable adaptation analyses --------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All analyses the adaptation pipeline consumes, built once up front and
/// immutable afterwards: per-function CFG/dominators/loops/reaching-defs
/// (inside ProgramDeps), the region graph, the call graph, the slicer's
/// callee summaries, and the scheduler's per-function call costs. Candidate
/// generation for every delinquent load reads this one cache — serially or
/// from ThreadPool workers — instead of rebuilding analyses per candidate.
///
/// Ownership and thread-safety contract: the cache owns every analysis and
/// outlives the workers. Nothing in it mutates after the constructor
/// returns, so workers share it by const reference with no locking. The
/// only mutable per-worker state (slicer scratch buffers) lives in the
/// cheap Slicer/SliceScheduler copies makeSlicer()/makeScheduler() hand
/// out, which share the precomputed summary and call-cost tables.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_CORE_ANALYSISCACHE_H
#define SSP_CORE_ANALYSISCACHE_H

#include "analysis/CallGraph.h"
#include "analysis/DependenceGraph.h"
#include "analysis/RegionGraph.h"
#include "sched/Scheduler.h"
#include "slicer/Slicer.h"

namespace ssp::core {

class AnalysisCache {
public:
  AnalysisCache(const ir::Program &P, const profile::ProfileData &PD,
                slicer::SliceOptions SliceOpts,
                sched::ScheduleOptions SchedOpts,
                analysis::SpecDepOptions SpecOpts = {})
      : Deps(P), Regions(analysis::RegionGraph::build(Deps)),
        Calls(analysis::CallGraph::build(P, PD.IndirectTargets,
                                         PD.CallSiteCounts)),
        Spec(Deps, SpecOpts, PD.depEvidence()),
        MasterSlicer(Deps, Regions, Calls, PD, SliceOpts, &Spec),
        MasterScheduler(Deps, Regions, PD, SchedOpts, &Spec) {
    MasterSlicer.ensureSummaries();
    MasterScheduler.ensureCallCosts();
  }

  AnalysisCache(const AnalysisCache &) = delete;
  AnalysisCache &operator=(const AnalysisCache &) = delete;

  const analysis::ProgramDeps &deps() const { return Deps; }
  const analysis::RegionGraph &regions() const { return Regions; }
  const analysis::CallGraph &calls() const { return Calls; }

  /// Speculation-aware dependence classifier over this program and
  /// profile. Disabled (classifies nothing cold) unless the cache was
  /// built with SpecDepOptions::Enabled and the profile has evidence.
  const analysis::SpecDeps &specDeps() const { return Spec; }

  /// A worker-private slicer sharing the precomputed summary table.
  slicer::Slicer makeSlicer() const { return MasterSlicer; }

  /// A worker-private scheduler sharing the warmed call-cost table.
  sched::SliceScheduler makeScheduler() const { return MasterScheduler; }

private:
  analysis::ProgramDeps Deps;
  analysis::RegionGraph Regions;
  analysis::CallGraph Calls;
  analysis::SpecDeps Spec; ///< Before the slicer/scheduler: they point at it.
  slicer::Slicer MasterSlicer;
  sched::SliceScheduler MasterScheduler;
};

} // namespace ssp::core

#endif // SSP_CORE_ANALYSISCACHE_H
