//===- core/AdaptService.cpp - The adaptation-as-a-service engine ---------===//

#include "core/AdaptService.h"

#include "core/AnalysisCache.h"
#include "core/Feedback.h"
#include "core/PostPassTool.h"
#include "core/ReportRender.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "obs/Percentile.h"
#include "obs/Registry.h"
#include "profile/ProfileIO.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>

using namespace ssp;
using namespace ssp::core;

//===----------------------------------------------------------------------===//
// Request options: strict parsing + canonical rendering
//===----------------------------------------------------------------------===//

namespace {

std::string trimmed(const std::string &S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

bool strictU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  Out = 0;
  for (char Ch : S) {
    if (!std::isdigit(static_cast<unsigned char>(Ch)))
      return false;
    uint64_t Digit = static_cast<uint64_t>(Ch - '0');
    if (Out > (~0ULL - Digit) / 10)
      return false;
    Out = Out * 10 + Digit;
  }
  return true;
}

bool strictBool(const std::string &S, bool &Out) {
  if (S == "1" || S == "true") {
    Out = true;
    return true;
  }
  if (S == "0" || S == "false") {
    Out = false;
    return true;
  }
  return false;
}

bool strictFraction(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  Out = std::strtod(S.c_str(), &End);
  return End == S.c_str() + S.size() && std::isfinite(Out) && Out >= 0.0 &&
         Out <= 1.0;
}

std::string fmtDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

/// Applies one `option KEY=VALUE` to \p TO; false + \p Msg on error.
/// The key set mirrors the semantic ToolOptions knobs — serving-level
/// knobs (jobs, metrics) are daemon flags, not request options, so they
/// can never split the cache key.
bool applyOption(core::ToolOptions &TO, const std::string &Key,
                 const std::string &Value, std::string &Msg) {
  uint64_t U = 0;
  bool B = false;
  double D = 0;
  auto Bad = [&](const char *Want) {
    Msg = "option " + Key + ": expected " + Want + ", got '" + Value + "'";
    return false;
  };
  if (Key == "chaining")
    return strictBool(Value, TO.EnableChaining) || Bad("0/1");
  if (Key == "cond-prediction")
    return strictBool(Value, TO.EnableConditionPrediction) || Bad("0/1");
  if (Key == "coverage") {
    if (!strictFraction(Value, D))
      return Bad("a fraction in [0, 1]");
    TO.DelinquentCoverage = D;
    return true;
  }
  if (Key == "cutoff") {
    if (!strictFraction(Value, D))
      return Bad("a fraction in [0, 1]");
    TO.ReducedMissCutoff = D;
    return true;
  }
  if (Key == "feedback-deepen-late") {
    if (!strictFraction(Value, D))
      return Bad("a fraction in [0, 1]");
    TO.Feedback.DeepenLateMax = D;
    return true;
  }
  if (Key == "feedback-drop-max") {
    if (!strictFraction(Value, D))
      return Bad("a fraction in [0, 1]");
    TO.Feedback.DropUsefulMax = D;
    return true;
  }
  if (Key == "feedback-hoist-late") {
    if (!strictFraction(Value, D))
      return Bad("a fraction in [0, 1]");
    TO.Feedback.HoistLateMin = D;
    return true;
  }
  if (Key == "feedback-min-sample") {
    if (!strictU64(Value, U))
      return Bad("an unsigned integer");
    TO.Feedback.MinSample = U;
    return true;
  }
  if (Key == "feedback-rounds") {
    if (!strictU64(Value, U) || U > 64)
      return Bad("an integer in [0, 64]");
    TO.FeedbackRounds = static_cast<unsigned>(U);
    return true;
  }
  if (Key == "feedback-throttle-evicted") {
    if (!strictFraction(Value, D))
      return Bad("a fraction in [0, 1]");
    TO.Feedback.ThrottleEvictedMin = D;
    return true;
  }
  if (Key == "inner-unroll") {
    if (!strictU64(Value, U) || U < 1 || U > 64)
      return Bad("an integer in [1, 64]");
    TO.InnerUnroll = static_cast<unsigned>(U);
    return true;
  }
  if (Key == "loop-rotation")
    return strictBool(Value, TO.EnableLoopRotation) || Bad("0/1");
  if (Key == "max-depth") {
    if (!strictU64(Value, U) || U < 1 || U > 64)
      return Bad("an integer in [1, 64]");
    TO.MaxRegionDepth = static_cast<unsigned>(U);
    return true;
  }
  if (Key == "max-loads") {
    if (!strictU64(Value, U) || U < 1 || U > 4096)
      return Bad("an integer in [1, 4096]");
    TO.MaxDelinquentLoads = static_cast<unsigned>(U);
    return true;
  }
  if (Key == "min-slack") {
    if (!strictU64(Value, U))
      return Bad("an unsigned integer");
    TO.MinSlackCycles = U;
    return true;
  }
  if (Key == "reject-store-dep")
    return strictBool(Value, TO.Slicing.RejectStoreDependent) || Bad("0/1");
  if (Key == "restart-triggers")
    return strictBool(Value, TO.EnableRestartTriggers) || Bad("0/1");
  if (Key == "slice-max") {
    if (!strictU64(Value, U) || U < 1 || U > 4096)
      return Bad("an integer in [1, 4096]");
    TO.Slicing.MaxSize = static_cast<unsigned>(U);
    return true;
  }
  if (Key == "spec-deps")
    return strictBool(Value, TO.EnableSpecDeps) || Bad("0/1");
  if (Key == "spec-threshold") {
    if (!strictFraction(Value, D))
      return Bad("a fraction in [0, 1]");
    TO.SpecDepThreshold = D;
    return true;
  }
  if (Key == "speculative") {
    if (!strictBool(Value, B))
      return Bad("0/1");
    TO.EnableSpeculativeSlicing = B;
    return true;
  }
  if (Key == "streams")
    return strictBool(Value, TO.EnableStreams) || Bad("0/1");
  if (Key == "trip-budget") {
    if (!strictU64(Value, U) || U < 1)
      return Bad("a positive integer");
    TO.MaxTripBudget = U;
    return true;
  }
  Msg = "option " + Key + ": unknown option";
  return false;
}

/// Canonical option text: every semantic knob, fixed (alphabetical)
/// order, defaults filled in — so two requests that differ only in how
/// they spelled the defaults share one cache key.
std::string canonicalOptionsText(const core::ToolOptions &TO) {
  std::string S;
  S += "chaining=" + std::string(TO.EnableChaining ? "1" : "0") + "\n";
  S += "cond-prediction=" +
       std::string(TO.EnableConditionPrediction ? "1" : "0") + "\n";
  S += "coverage=" + fmtDouble(TO.DelinquentCoverage) + "\n";
  S += "cutoff=" + fmtDouble(TO.ReducedMissCutoff) + "\n";
  // Feedback knobs are part of the result-cache key even though the
  // one-shot tool ignores them: with feedback-rounds > 0 the served
  // binary is the loop's fixpoint, and the attribution evidence the loop
  // folds in travels inside the profile text (already keyed above the
  // options). Same pattern as the PR 8 spec-deps keys.
  S += "feedback-deepen-late=" + fmtDouble(TO.Feedback.DeepenLateMax) + "\n";
  S += "feedback-drop-max=" + fmtDouble(TO.Feedback.DropUsefulMax) + "\n";
  S += "feedback-hoist-late=" + fmtDouble(TO.Feedback.HoistLateMin) + "\n";
  S += "feedback-min-sample=" + std::to_string(TO.Feedback.MinSample) + "\n";
  S += "feedback-rounds=" + std::to_string(TO.FeedbackRounds) + "\n";
  S += "feedback-throttle-evicted=" +
       fmtDouble(TO.Feedback.ThrottleEvictedMin) + "\n";
  S += "inner-unroll=" + std::to_string(TO.InnerUnroll) + "\n";
  S += "loop-rotation=" + std::string(TO.EnableLoopRotation ? "1" : "0") +
       "\n";
  S += "max-depth=" + std::to_string(TO.MaxRegionDepth) + "\n";
  S += "max-loads=" + std::to_string(TO.MaxDelinquentLoads) + "\n";
  S += "min-slack=" + std::to_string(TO.MinSlackCycles) + "\n";
  S += "reject-store-dep=" +
       std::string(TO.Slicing.RejectStoreDependent ? "1" : "0") + "\n";
  S += "restart-triggers=" +
       std::string(TO.EnableRestartTriggers ? "1" : "0") + "\n";
  S += "slice-max=" + std::to_string(TO.Slicing.MaxSize) + "\n";
  S += "spec-deps=" + std::string(TO.EnableSpecDeps ? "1" : "0") + "\n";
  S += "spec-threshold=" + fmtDouble(TO.SpecDepThreshold) + "\n";
  S += "speculative=" +
       std::string(TO.EnableSpeculativeSlicing ? "1" : "0") + "\n";
  S += "streams=" + std::string(TO.EnableStreams ? "1" : "0") + "\n";
  S += "trip-budget=" + std::to_string(TO.MaxTripBudget) + "\n";
  return S;
}

/// The subset of option text the AnalysisCache construction depends on:
/// the warm-memo key. Requests differing only in non-analysis knobs
/// (coverage, trip budget, ...) share one warm analysis state.
std::string analysisOptionsText(const core::ToolOptions &TO) {
  slicer::SliceOptions SO = core::PostPassTool::sliceOptionsOf(TO);
  sched::ScheduleOptions SchO = core::PostPassTool::scheduleOptionsOf(TO);
  analysis::SpecDepOptions SpO = core::PostPassTool::specDepOptionsOf(TO);
  std::string S;
  S += "cond-prediction=" +
       std::string(SchO.EnableConditionPrediction ? "1" : "0") + "\n";
  S += "loop-rotation=" + std::string(SchO.EnableLoopRotation ? "1" : "0") +
       "\n";
  S += "reject-store-dep=" +
       std::string(SO.RejectStoreDependent ? "1" : "0") + "\n";
  S += "slice-max=" + std::to_string(SO.MaxSize) + "\n";
  S += "spec-deps=" + std::string(SpO.Enabled ? "1" : "0") + "\n";
  S += "spec-threshold=" + fmtDouble(SpO.Threshold) + "\n";
  S += "speculative=" + std::string(SO.Speculative ? "1" : "0") + "\n";
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Request and warm-state records
//===----------------------------------------------------------------------===//

struct AdaptService::Request {
  std::string Id = "?";
  bool HaveProgram = false, HaveProfile = false;
  std::string ProgramText, ProfileText;
  std::vector<std::pair<std::string, std::string>> RawOptions;
  /// First framing/semantic error; non-empty turns the whole request
  /// into an `error` response.
  std::string Error;

  // Execution state.
  core::ToolOptions TO;
  ServeKey Key;
  std::string Report, Binary;
  bool IsHit = false;
  int DupOf = -1; ///< Index of an identical earlier miss in this batch.
  WarmEntry *Entry = nullptr;

  void fail(std::string Msg) {
    if (Error.empty())
      Error = std::move(Msg);
  }
  bool isMiss() const {
    return Error.empty() && !IsHit && DupOf < 0;
  }
};

struct AdaptService::WarmEntry {
  std::string ProgramText, ProfileText, AnalysisOpts;
  slicer::SliceOptions SliceOpts;
  sched::ScheduleOptions SchedOpts;
  analysis::SpecDepOptions SpecOpts;

  ir::Program Prog;
  ir::DataImage Data;
  profile::ProfileData PD;
  std::optional<AnalysisCache> AC;
  std::string Error; ///< Parse/validation failure; sticky for reuse.
  bool Built = false;

  /// Parses and validates the texts, then builds the analyses. Runs on a
  /// pool worker; touches only this entry.
  void build() {
    Built = true;
    std::string Err;
    if (!ir::parseProgram(ProgramText, Prog, Err, &Data)) {
      Error = "program: " + Err;
      return;
    }
    std::vector<std::string> Diags = ir::verify(Prog);
    if (!Diags.empty()) {
      Error = "program: " + Diags.front();
      return;
    }
    if (!profile::parseProfileText(ProfileText, PD, Err)) {
      Error = "profile: " + Err;
      return;
    }
    // Cross-validate the profile against the program: sizes the parser
    // cannot know, and the call records CallGraph::build indexes with.
    if (PD.BlockCounts.size() != Prog.numFuncs()) {
      Error = "profile: function count " +
              std::to_string(PD.BlockCounts.size()) +
              " does not match program (" +
              std::to_string(Prog.numFuncs()) + " functions)";
      return;
    }
    auto SiteOk = [&](const analysis::InstRef &Site) {
      return Site.Func < Prog.numFuncs() &&
             Site.Block < Prog.func(Site.Func).numBlocks() &&
             Site.Inst <
                 Prog.func(Site.Func).block(Site.Block).Insts.size();
    };
    for (const analysis::DirectCallCount &C : PD.CallSiteCounts)
      if (!SiteOk(C.Site)) {
        Error = "profile: call site " + C.Site.str() + " out of range";
        return;
      }
    for (const analysis::IndirectCallTarget &T : PD.IndirectTargets)
      if (!SiteOk(T.Site) || T.Callee >= Prog.numFuncs()) {
        Error = "profile: icall record " + T.Site.str() + " -> fn" +
                std::to_string(T.Callee) + " out of range";
        return;
      }
    AC.emplace(Prog, PD, SliceOpts, SchedOpts, SpecOpts);
  }
};

//===----------------------------------------------------------------------===//
// Service
//===----------------------------------------------------------------------===//

AdaptService::AdaptService(const ServeOptions &Opts)
    : Opts(Opts), Pool(Opts.Jobs), Cache(Opts.CacheBytes) {}

AdaptService::~AdaptService() = default;

AdaptService::WarmEntry *
AdaptService::findWarm(const std::string &ProgramText,
                       const std::string &ProfileText,
                       const std::string &AnalysisOpts) {
  for (auto It = Warm.begin(); It != Warm.end(); ++It) {
    WarmEntry &E = **It;
    if (E.ProgramText == ProgramText && E.ProfileText == ProfileText &&
        E.AnalysisOpts == AnalysisOpts) {
      Warm.splice(Warm.begin(), Warm, It); // Refresh LRU.
      if (Opts.Metrics)
        Opts.Metrics->addCounter("serve.warm_hits");
      return Warm.front().get();
    }
  }
  auto E = std::make_unique<WarmEntry>();
  E->ProgramText = ProgramText;
  E->ProfileText = ProfileText;
  E->AnalysisOpts = AnalysisOpts;
  Warm.push_front(std::move(E));
  if (Opts.Metrics)
    Opts.Metrics->addCounter("serve.warm_builds");
  return Warm.front().get();
}

void AdaptService::executeBatch(std::vector<Request> &Batch,
                                std::ostream &Out) {
  if (Batch.empty())
    return;
  obs::Registry *M = Opts.Metrics;
  if (M)
    M->addCounter("serve.batches");

  // Stage 1 (serial): options, cache keys, result-cache lookups, and
  // batch-local dedup. Serial lookups keep hit/miss accounting and LRU
  // order independent of --jobs.
  {
    obs::ScopedTimerMs T(M, "serve.lookup_ms");
    for (size_t I = 0; I < Batch.size(); ++I) {
      Request &R = Batch[I];
      if (!R.Error.empty())
        continue;
      if (!R.HaveProgram) {
        R.fail("request '" + R.Id + "': missing program section");
        continue;
      }
      if (!R.HaveProfile) {
        R.fail("request '" + R.Id + "': missing profile section");
        continue;
      }
      std::string Msg;
      for (const auto &[Key, Value] : R.RawOptions)
        if (!applyOption(R.TO, Key, Value, Msg)) {
          R.fail(Msg);
          break;
        }
      if (!R.Error.empty())
        continue;
      R.TO.FatalOnVerifyError = false;
      R.TO.Metrics = M;
      R.TO.Pool = &Pool;
      R.Key = ServeKey{R.ProgramText, R.ProfileText,
                       canonicalOptionsText(R.TO)};
      if (const ServeResult *Hit = Cache.lookup(R.Key)) {
        R.Report = Hit->Report;
        R.Binary = Hit->Binary;
        R.IsHit = true;
        continue;
      }
      for (size_t J = 0; J < I; ++J)
        if (Batch[J].isMiss() && Batch[J].Key == R.Key) {
          R.DupOf = static_cast<int>(J);
          break;
        }
    }
  }

  // Stage 2 (serial): attach each miss to its warm analysis state,
  // creating unbuilt entries for unseen (program, profile, analysis-
  // options) triples.
  std::vector<WarmEntry *> ToBuild;
  for (Request &R : Batch) {
    if (!R.isMiss())
      continue;
    R.Entry = findWarm(R.ProgramText, R.ProfileText,
                       analysisOptionsText(R.TO));
    if (!R.Entry->Built) {
      R.Entry->SliceOpts = PostPassTool::sliceOptionsOf(R.TO);
      R.Entry->SchedOpts = PostPassTool::scheduleOptionsOf(R.TO);
      R.Entry->SpecOpts = PostPassTool::specDepOptionsOf(R.TO);
      if (std::find(ToBuild.begin(), ToBuild.end(), R.Entry) ==
          ToBuild.end())
        ToBuild.push_back(R.Entry);
    }
  }

  // Stage 3 (parallel): parse + analyze new programs, then run every
  // miss. Each worker touches only its own entry/request slot, and
  // adaptWith() fans out further on the same pool — the cooperative
  // parallelFor makes the nesting safe.
  {
    obs::ScopedTimerMs T(M, "serve.analysis_ms");
    Pool.parallelFor(ToBuild.size(),
                     [&](size_t I) { ToBuild[I]->build(); });
  }
  std::vector<size_t> Misses;
  for (size_t I = 0; I < Batch.size(); ++I)
    if (Batch[I].isMiss())
      Misses.push_back(I);
  std::vector<double> MissUs(Misses.size(), 0.0);
  {
    obs::ScopedTimerMs T(M, "serve.adapt_ms");
    Pool.parallelFor(Misses.size(), [&](size_t I) {
      Request &R = Batch[Misses[I]];
      WarmEntry &E = *R.Entry;
      if (!E.Error.empty()) {
        R.fail(E.Error);
        return;
      }
      auto Start = std::chrono::steady_clock::now();
      if (R.TO.FeedbackRounds > 0) {
        // Closed-loop serving: the daemon runs the adapt -> simulate ->
        // re-adapt loop itself (it has the data image and the warm
        // analyses), and the response carries the best round's binary
        // plus the per-round decision trace appended to the report.
        FeedbackOptions FO;
        FO.MaxRounds = R.TO.FeedbackRounds;
        auto BuildMemory = [&E](mem::SimMemory &Mem) {
          for (const auto &[Addr, Value] : E.Data)
            Mem.write(Addr, Value);
        };
        FeedbackResult FR =
            runFeedbackLoop(E.Prog, E.PD, R.TO, FO, BuildMemory, &*E.AC);
        R.Report = renderReportText(E.PD.BaselineCycles, FR.BestReport) +
                   renderFeedbackText(FR);
        R.Binary = FR.Best.str();
      } else {
        PostPassTool Tool(E.Prog, E.PD, R.TO);
        AdaptationReport Rep;
        ir::Program Enhanced = Tool.adaptWith(&*E.AC, &Rep);
        R.Report = renderReportText(E.PD.BaselineCycles, Rep);
        R.Binary = Enhanced.str();
      }
      MissUs[I] = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    });
  }
  for (double Us : MissUs)
    if (Us > 0.0)
      LatencyUs.push_back(Us);

  // Stage 4 (serial, request order): resolve duplicates, publish results
  // into the cache, and write the responses. Insertion order — and with
  // it eviction order — is therefore deterministic for any job count.
  {
    obs::ScopedTimerMs T(M, "serve.respond_ms");
    for (Request &R : Batch) {
      if (R.DupOf >= 0 && R.Error.empty()) {
        const Request &Src = Batch[static_cast<size_t>(R.DupOf)];
        if (Src.Error.empty()) {
          R.Report = Src.Report;
          R.Binary = Src.Binary;
        } else {
          R.fail(Src.Error);
        }
      }
      if (R.Error.empty() && !R.IsHit && R.DupOf < 0)
        Cache.insert(R.Key, ServeResult{R.Report, R.Binary});
      ++Served;
      if (!R.Error.empty()) {
        Out << "response " << R.Id << " error\n"
            << "message " << R.Error.size() << "\n"
            << R.Error << "\n"
            << "end\n";
      } else {
        Out << "response " << R.Id << " ok\n"
            << "report " << R.Report.size() << "\n"
            << R.Report << "\n"
            << "binary " << R.Binary.size() << "\n"
            << R.Binary << "\n"
            << "end\n";
      }
      if (M) {
        M->addCounter("serve.requests");
        M->addCounter(R.Error.empty() ? "serve.responses_ok"
                                      : "serve.responses_error");
      }
    }
  }

  // Stage 5: retire warm state beyond the budget (never an entry this
  // batch just used — those were all refreshed to the front).
  while (Warm.size() > Opts.WarmPrograms)
    Warm.pop_back();

  if (M) {
    const ServeCache::Stats &St = Cache.stats();
    M->setCounter("serve.cache_hits", St.Hits);
    M->setCounter("serve.cache_misses", St.Misses);
    M->setCounter("serve.cache_evictions", St.Evictions);
    M->setCounter("serve.cache_collisions", St.Collisions);
    M->setCounter("serve.cache_entries", Cache.size());
    M->setCounter("serve.cache_bytes", Cache.usedBytes());
  }
}

uint64_t AdaptService::serve(std::istream &In, std::ostream &Out) {
  uint64_t ServedBefore = Served;
  std::vector<Request> Batch;
  uint64_t LineNo = 0;
  std::string Line;

  auto Located = [&](const std::string &Msg) {
    return "line " + std::to_string(LineNo) + ": " + Msg;
  };
  // After a framing error inside a request the payload boundary is
  // unknown; skip forward to the next lone `end` so the session can
  // continue. (Payload bytes that happen to contain an `end` line will
  // mis-resync — the price of broken framing; the daemon still answers
  // every subsequent well-formed request.)
  auto Resync = [&] {
    while (std::getline(In, Line)) {
      ++LineNo;
      if (trimmed(Line) == "end")
        return;
    }
  };
  // Reads an N-byte length-prefixed payload plus its terminating
  // newline; false + a located error on truncation.
  auto ReadPayload = [&](uint64_t N, std::string &PayloadOut,
                         std::string &Err) {
    PayloadOut.assign(N, '\0');
    if (N > 0)
      In.read(&PayloadOut[0], static_cast<std::streamsize>(N));
    if (static_cast<uint64_t>(In.gcount()) != N) {
      PayloadOut.resize(static_cast<size_t>(std::max<std::streamsize>(
          In.gcount(), 0)));
      Err = Located("truncated payload (got " +
                    std::to_string(PayloadOut.size()) + " of " +
                    std::to_string(N) + " bytes)");
      return false;
    }
    // One optional newline terminates the frame: explicit-framing clients
    // send `<N bytes>\n`, shell clients `cat` files whose own trailing
    // newline is already inside the byte count. Directive lines never
    // start with '\n', so consuming it only when present is unambiguous.
    LineNo += static_cast<uint64_t>(
        std::count(PayloadOut.begin(), PayloadOut.end(), '\n'));
    if (In.peek() == '\n') {
      In.get();
      ++LineNo;
    }
    return true;
  };

  while (std::getline(In, Line)) {
    ++LineNo;
    std::string T = trimmed(Line);
    if (T.empty() || T[0] == '#')
      continue;
    if (T == "flush") {
      executeBatch(Batch, Out);
      Batch.clear();
      Out.flush();
      continue;
    }
    if (T.compare(0, 8, "request ") != 0 && T != "request") {
      Request Bad;
      Bad.fail(Located("expected 'request' or 'flush', got '" + T + "'"));
      Batch.push_back(std::move(Bad));
      continue;
    }

    Request R;
    {
      std::string Id = T == "request" ? "" : trimmed(T.substr(8));
      if (Id.empty() || Id.find(' ') != std::string::npos) {
        R.fail(Located("'request' needs a single id token"));
        Batch.push_back(std::move(R));
        Resync();
        continue;
      }
      R.Id = Id;
    }

    // Section loop, until `end`.
    bool Ended = false;
    while (!Ended) {
      if (!std::getline(In, Line)) {
        R.fail(Located("unexpected end of input inside request '" + R.Id +
                       "'"));
        break;
      }
      ++LineNo;
      T = trimmed(Line);
      if (T.empty() || T[0] == '#')
        continue;
      if (T == "end") {
        Ended = true;
        break;
      }
      bool IsProgram = T.compare(0, 8, "program ") == 0;
      bool IsProfile = T.compare(0, 8, "profile ") == 0;
      if (IsProgram || IsProfile) {
        uint64_t N = 0;
        if (!strictU64(trimmed(T.substr(8)), N)) {
          R.fail(Located("bad payload length in '" + T + "'"));
          Resync();
          break;
        }
        std::string Payload, Err;
        if (!ReadPayload(N, Payload, Err)) {
          R.fail(Err);
          break; // Truncation means EOF: nothing left to resync over.
        }
        bool &Have = IsProgram ? R.HaveProgram : R.HaveProfile;
        if (Have) {
          R.fail(Located(std::string("duplicate '") +
                         (IsProgram ? "program" : "profile") +
                         "' section"));
          continue; // Framing is intact; keep consuming to `end`.
        }
        Have = true;
        (IsProgram ? R.ProgramText : R.ProfileText) = std::move(Payload);
        continue;
      }
      if (T.compare(0, 7, "option ") == 0) {
        std::string Rest = trimmed(T.substr(7));
        size_t Eq = Rest.find('=');
        if (Eq == std::string::npos || Eq == 0) {
          R.fail(Located("malformed option (want KEY=VALUE): '" + Rest +
                         "'"));
          continue;
        }
        R.RawOptions.emplace_back(trimmed(Rest.substr(0, Eq)),
                                  trimmed(Rest.substr(Eq + 1)));
        continue;
      }
      R.fail(Located("expected 'program', 'profile', 'option', or 'end', "
                     "got '" +
                     T + "'"));
      Resync();
      break;
    }
    Batch.push_back(std::move(R));
  }
  executeBatch(Batch, Out); // EOF is the final flush.
  Out.flush();
  return Served - ServedBefore;
}

std::string AdaptService::processBatch(const std::string &Session) {
  std::istringstream In(Session);
  std::ostringstream Out;
  serve(In, Out);
  return Out.str();
}

void AdaptService::flushLatencyMetrics() {
  if (!Opts.Metrics || LatencyUs.empty())
    return;
  obs::PercentileSet P;
  for (double Us : LatencyUs)
    P.record(Us);
  auto AsUs = [](double V) { return static_cast<uint64_t>(V + 0.5); };
  Opts.Metrics->setCounter("serve.latency_p50_us", AsUs(P.percentile(50)));
  Opts.Metrics->setCounter("serve.latency_p95_us", AsUs(P.percentile(95)));
  Opts.Metrics->setCounter("serve.latency_p99_us", AsUs(P.percentile(99)));
  Opts.Metrics->setCounter("serve.latency_mean_us", AsUs(P.mean()));
  Opts.Metrics->setCounter("serve.latency_samples", P.count());
}
