//===- core/PostPassTool.cpp - The post-pass binary adaptation tool -------===//

#include "core/PostPassTool.h"

#include "analysis/RegionGraph.h"
#include "core/AnalysisCache.h"
#include "sim/Simulator.h"
#include "support/Assert.h"
#include "support/ThreadPool.h"
#include "trigger/TriggerPlacer.h"
#include "verify/PassManager.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <set>

using namespace ssp;
using namespace ssp::core;
using namespace ssp::analysis;
using namespace ssp::ir;

PostPassTool::PostPassTool(const Program &Orig,
                           const profile::ProfileData &PD, ToolOptions Opts)
    : Orig(Orig), PD(PD), Opts(Opts) {}

slicer::SliceOptions PostPassTool::sliceOptionsOf(const ToolOptions &Opts) {
  slicer::SliceOptions SOpts = Opts.Slicing;
  SOpts.Speculative = Opts.EnableSpeculativeSlicing;
  return SOpts;
}

sched::ScheduleOptions PostPassTool::scheduleOptionsOf(const ToolOptions &Opts) {
  sched::ScheduleOptions SchedOpts;
  SchedOpts.EnableLoopRotation = Opts.EnableLoopRotation;
  SchedOpts.EnableConditionPrediction = Opts.EnableConditionPrediction;
  return SchedOpts;
}

analysis::SpecDepOptions
PostPassTool::specDepOptionsOf(const ToolOptions &Opts) {
  analysis::SpecDepOptions SpecOpts;
  SpecOpts.Enabled = Opts.EnableSpecDeps;
  SpecOpts.Threshold = Opts.SpecDepThreshold;
  return SpecOpts;
}

Program PostPassTool::adapt(AdaptationReport *Report) {
  return adaptWith(nullptr, Report);
}

Program PostPassTool::adaptWith(const AnalysisCache *ExternalAC,
                                AdaptationReport *Report) {
  // Stage wall-time metrics (off unless the caller supplied a registry;
  // the adaptation itself is identical either way).
  auto StageStart = std::chrono::steady_clock::now();
  auto EndStage = [&](const char *Name) {
    if (!Opts.Metrics)
      return;
    auto NowT = std::chrono::steady_clock::now();
    Opts.Metrics->addTimeMs(
        Name, std::chrono::duration<double, std::milli>(NowT - StageStart)
                  .count());
    StageStart = NowT;
  };

  // Every analysis is built once (or arrives warm from the serving
  // daemon's memo); candidate generation below only reads it
  // (const-shared across ThreadPool workers when Jobs != 1).
  std::optional<AnalysisCache> OwnAC;
  if (!ExternalAC) {
    OwnAC.emplace(Orig, PD, sliceOptionsOf(Opts), scheduleOptionsOf(Opts),
                  specDepOptionsOf(Opts));
    ExternalAC = &*OwnAC;
  }
  const AnalysisCache &AC = *ExternalAC;
  const ProgramDeps &Deps = AC.deps();
  const RegionGraph &RG = AC.regions();
  const CallGraph &CG = AC.calls();

  sched::SliceScheduler Scheduler = AC.makeScheduler();
  trigger::TriggerPlacer Placer(Deps, RG, PD);

  std::vector<profile::DelinquentLoad> DLoads = profile::selectDelinquentLoads(
      Orig, PD, Opts.DelinquentCoverage, Opts.MaxDelinquentLoads);

  AdaptationReport Rep;
  Rep.DelinquentLoads = static_cast<unsigned>(DLoads.size());
  EndStage("adapt.analysis_ms");

  struct Candidate {
    slicer::Slice Slice;                    ///< Primary-context slice.
    sched::ScheduledSlice Sched;
    std::vector<slicer::Slice> ExtraParts;  ///< Other calling contexts.
    uint64_t Reduced = 0;
    unsigned Depth = 0;
    double TripPerEntry = 1.0;
    /// Feedback override of the primary load (no-op defaults when the
    /// load has none). When overlapping slices are combined, the
    /// earlier (hotter) candidate's override wins.
    LoadOverride Override;
  };

  // Converts slice members that sit *before* the trigger position (and
  // thus have already executed on the main thread when the exception
  // fires) into live-ins; re-executing them in the p-slice would double
  // apply their effects (e.g. a stack-pointer decrement).
  auto DropPreTriggerMembers = [this](slicer::Slice &S,
                                      const trigger::TriggerPlacement &T) {
    std::set<ir::Reg> DroppedDefs;
    std::vector<analysis::InstRef> Kept;
    for (const analysis::InstRef &M : S.Insts) {
      if (M.Func == T.Where.Func && M.Block == T.Where.Block &&
          M.Inst < T.Where.Inst) {
        ir::Reg D = M.get(Orig).def();
        if (D.isValid())
          DroppedDefs.insert(D);
        continue;
      }
      Kept.push_back(M);
    }
    if (Kept.size() == S.Insts.size())
      return false;
    std::set<ir::Reg> Lives(S.LiveIns.begin(), S.LiveIns.end());
    auto NoteUses = [&](const analysis::InstRef &M) {
      M.get(Orig).forEachUse([&](ir::Reg U) {
        if (DroppedDefs.count(U))
          Lives.insert(U);
      });
    };
    for (const analysis::InstRef &M : Kept)
      NoteUses(M);
    for (const analysis::InstRef &M : S.TargetLoads)
      NoteUses(M);
    S.Insts = std::move(Kept);
    S.LiveIns.assign(Lives.begin(), Lives.end());
    return true;
  };

  // Candidate generation fans out across the pool: each delinquent load is
  // independent, so worker Idx writes only Slots[Idx]/HasSlot[Idx]. The
  // merge below reads the slots in load order, making the report and the
  // emitted binary bit-identical for every job count (Jobs == 1 runs the
  // loop bodies inline on this thread).
  std::vector<Candidate> Slots(DLoads.size());
  std::vector<uint8_t> HasSlot(DLoads.size(), 0);
  std::optional<support::ThreadPool> OwnPool;
  support::ThreadPool *Pool = Opts.Pool;
  if (!Pool) {
    OwnPool.emplace(Opts.Jobs);
    Pool = &*OwnPool;
  }

  Pool->parallelFor(DLoads.size(), [&](size_t LoadIdx) {
    const profile::DelinquentLoad &D = DLoads[LoadIdx];
    // Feedback directives for this load (default: no change).
    LoadOverride Ov;
    if (auto It = Opts.Overrides.find(D.Sid); It != Opts.Overrides.end())
      Ov = It->second;
    if (Ov.Drop)
      return;
    // Worker-private slicer/scheduler: cheap copies sharing the cache's
    // precomputed summary and call-cost tables, owning only scratch.
    slicer::Slicer WorkerSlicer = AC.makeSlicer();
    sched::SliceScheduler WorkerSched = AC.makeScheduler();

    uint64_t LoadExecs = 0;
    if (auto It = PD.Loads.find(D.Sid); It != PD.Loads.end())
      LoadExecs = It->second.Accesses;
    if (LoadExecs == 0)
      return;
    uint64_t MissPerExec = D.MissCycles / LoadExecs;
    if (MissPerExec == 0)
      return;

    // Region traversal: innermost outward (Section 3.4.1). When the
    // traversal climbs from a procedure into its callers, up to two
    // calling contexts (the hottest call sites) are sliced and their
    // slices merged, so e.g. both of treeadd's recursive call sites
    // contribute prefetches.
    int RegionIdx = RG.innermostRegionOf(D.Ref, Deps);
    std::vector<std::vector<InstRef>> Contexts = {{}};
    Candidate Best;
    bool HaveBest = false;

    for (unsigned Depth = 0; Depth < Opts.MaxRegionDepth && RegionIdx >= 0;
         ++Depth) {
      // Slice each calling context; the hottest valid one is primary and
      // the rest become extra emission sections (basic SP). A feedback
      // hoist directive rejects regions shallower than MinRegionDepth
      // (the traversal still runs so caller contexts accumulate).
      std::vector<slicer::Slice> Parts;
      if (Depth >= Ov.MinRegionDepth)
        for (const std::vector<InstRef> &Ctx : Contexts) {
          slicer::Slice SP2 = WorkerSlicer.computeSlice(D.Ref, RegionIdx, Ctx);
          if (SP2.Valid)
            Parts.push_back(std::move(SP2));
        }
      if (!Parts.empty()) {
        slicer::Slice &S = Parts.front();
        const Region &R = RG.region(RegionIdx);
        double TripPerEntry = 1.0;
        double Entries = 1.0;
        if (R.Kind == RegionKind::Loop) {
          const Loop &L = Deps.forFunction(R.Func).loops().loop(R.LoopIdx);
          TripPerEntry = PD.tripCountOf(R.Func, L);
          uint64_t HeaderCount = PD.blockCount(R.Func, L.Header);
          Entries = TripPerEntry > 0
                        ? static_cast<double>(HeaderCount) / TripPerEntry
                        : 1.0;
        }

        // Evaluate both precomputation models; small trip counts or
        // better slack pick basic SP (Section 3.4.1). Chaining applies
        // whenever an iteration structure exists: the region itself or,
        // for procedure regions, the loop the load sits in (the prologue
        // thread bridges from the region entry to the chain).
        bool LoadInLoop = Deps.forFunction(D.Ref.Func)
                              .loops()
                              .innermostLoopOf(D.Ref.Block) >= 0;
        std::vector<sched::SPModel> Models;
        if (Opts.EnableChaining &&
            (R.Kind == RegionKind::Loop || LoadInLoop))
          Models.push_back(sched::SPModel::Chaining);
        Models.push_back(sched::SPModel::Basic);

        // A slice that never computes any prefetch base register would
        // prefetch an address the main thread has in hand at the trigger:
        // zero lead for procedure regions. Reject it there.
        bool NullPrefetch = false;
        if (R.Kind == RegionKind::Procedure) {
          bool ComputesBase = false;
          std::set<ir::Reg> Defs;
          for (const analysis::InstRef &M : S.Insts) {
            ir::Reg DR = M.get(Orig).def();
            if (DR.isValid())
              Defs.insert(DR);
          }
          for (const analysis::InstRef &T : S.TargetLoads)
            if (Defs.count(T.get(Orig).Src1))
              ComputesBase = true;
          NullPrefetch = !ComputesBase;
        }

        for (sched::SPModel M : Models) {
          if (NullPrefetch)
            break;
          sched::ScheduledSlice Sched = WorkerSched.schedule(S, M);
          // Chaining iterates the *chain* loop; procedure regions fire the
          // trigger once per invocation.
          double TripEff = TripPerEntry, EntriesEff = Entries;
          if (R.Kind == RegionKind::Procedure) {
            EntriesEff = static_cast<double>(PD.blockCount(
                R.Func, Deps.forFunction(R.Func).cfg().entry()));
            if (M == sched::SPModel::Chaining)
              TripEff = std::max(1.0, Sched.ChainTripCount);
          }
          uint64_t PerEntry = sched::SliceScheduler::reducedMissCycles(
              Sched.SlackPerIteration, MissPerExec, TripEff);
          uint64_t Reduced =
              static_cast<uint64_t>(PerEntry * std::max(1.0, EntriesEff));
          // Very short loops cannot amortize chaining spawn overhead.
          if (M == sched::SPModel::Chaining && TripEff < 3.0)
            Reduced /= 4;
          if (Opts.Verbose)
            std::fprintf(stderr,
                         "  [tool] load=%s region=%d depth=%u model=%s "
                         "slack=%llu reduced=%llu (miss=%llu)\n",
                         D.Ref.str().c_str(), RegionIdx, Depth,
                         sched::modelName(M),
                         static_cast<unsigned long long>(
                             Sched.SlackPerIteration),
                         static_cast<unsigned long long>(Reduced),
                         static_cast<unsigned long long>(D.MissCycles));
          if (Sched.SlackPerIteration < Opts.MinSlackCycles)
            continue; // No useful prefetch distance: skip this candidate.
          // Inner regions are preferred "when the reduced miss cycles are
          // about the same" (Section 3.4.1): an outer region must beat
          // the incumbent by a margin to displace it.
          if (!HaveBest || Reduced > Best.Reduced + Best.Reduced / 20) {
            Best.Slice = S;
            Best.Sched = Sched;
            Best.ExtraParts.assign(Parts.begin() + 1, Parts.end());
            Best.Reduced = Reduced;
            Best.Depth = Depth;
            Best.TripPerEntry = TripPerEntry;
            Best.Override = Ov;
            HaveBest = true;
          }
        }
      }

      // Step outward; crossing into a caller extends every context with
      // the caller's call sites (up to two within the chosen caller).
      InstRef CrossedCall;
      const Region &Cur = RG.region(RegionIdx);
      bool WasProcedure = Cur.Kind == RegionKind::Procedure;
      int Parent = RG.outwardParent(RegionIdx, CG, Deps, &CrossedCall);
      if (WasProcedure && Parent >= 0) {
        // All call sites of the chosen caller function that land in the
        // same parent region, hottest first, capped at two.
        std::vector<InstRef> Sites{CrossedCall};
        for (const CallSite &CS : CG.callersOf(Cur.Func)) {
          if (Sites.size() >= 2)
            break;
          if (CS.Site.Func == CrossedCall.Func &&
              !(CS.Site == CrossedCall) &&
              RG.innermostRegionOf(CS.Site, Deps) == Parent)
            Sites.push_back(CS.Site);
        }
        std::vector<std::vector<InstRef>> NewContexts;
        for (const std::vector<InstRef> &Ctx : Contexts)
          for (const InstRef &Site : Sites) {
            if (NewContexts.size() >= 2)
              break;
            std::vector<InstRef> Extended = Ctx;
            Extended.push_back(Site);
            NewContexts.push_back(std::move(Extended));
          }
        Contexts = std::move(NewContexts);
      }
      RegionIdx = Parent;
    }

    // "If none of the regions reduce the miss cycles beyond the threshold,
    // we pick the region with the largest percentage."
    if (HaveBest && Best.Reduced > 0) {
      Slots[LoadIdx] = std::move(Best);
      HasSlot[LoadIdx] = 1;
    }
  });
  EndStage("adapt.candidates_ms");

  // Deterministic merge: drain the slots in delinquent-load order, exactly
  // the sequence the old serial loop produced.
  std::vector<Candidate> Chosen;
  for (size_t Idx = 0; Idx < Slots.size(); ++Idx)
    if (HasSlot[Idx])
      Chosen.push_back(std::move(Slots[Idx]));

  // Combine slices that share dependence-graph nodes within one region.
  std::vector<Candidate> Combined;
  for (Candidate &C : Chosen) {
    bool Merged = false;
    for (Candidate &Existing : Combined) {
      if (slicer::Slicer::combineIfOverlapping(Existing.Slice, C.Slice)) {
        // Re-schedule the merged slice under the existing model.
        Existing.Sched =
            Scheduler.schedule(Existing.Slice, Existing.Sched.Model);
        Merged = true;
        break;
      }
    }
    if (!Merged)
      Combined.push_back(std::move(C));
  }
  EndStage("adapt.combine_ms");

  // Trigger placement and rewrite payload.
  std::vector<codegen::AdaptedLoad> Adapted;
  for (Candidate &C : Combined) {
    codegen::AdaptedLoad AL;

    // Fixpoint between trigger placement and slice contents: members that
    // precede the trigger become live-ins, which can in turn move the
    // trigger past their producers.
    trigger::TriggerPlan Plan;
    bool RestartTriggers =
        Opts.EnableRestartTriggers && !C.Override.NoRestartTrigger;
    for (int Iter = 0; Iter < 3; ++Iter) {
      Plan = Placer.place(C.Slice, C.Sched, RestartTriggers);
      if (Plan.Triggers.empty())
        break;
      bool Changed = false;
      if (RG.region(C.Slice.RegionIdx).Kind == RegionKind::Procedure) {
        Changed |= DropPreTriggerMembers(C.Slice, Plan.Triggers.front());
        for (slicer::Slice &EP : C.ExtraParts)
          Changed |= DropPreTriggerMembers(EP, Plan.Triggers.front());
      }
      if (!Changed)
        break;
      C.Sched = Scheduler.schedule(C.Slice, C.Sched.Model);
    }

    AL.Slice = C.Slice;
    AL.Sched = C.Sched;
    AL.Plan = Plan;
    AL.InnerUnroll =
        C.Override.InnerUnroll ? C.Override.InnerUnroll : Opts.InnerUnroll;
    AL.RegionDepth = C.Depth;
    // The chain budget covers the chain loop's trips (with headroom for
    // trip-count variance across region entries). A feedback throttle/
    // deepen directive scales it by 2^N before the clamp.
    double BudgetTrips =
        std::max(C.TripPerEntry, C.Sched.ChainTripCount) * 2.0;
    BudgetTrips = std::ldexp(BudgetTrips, C.Override.TripBudgetLog2);
    AL.TripBudget = std::min<uint64_t>(
        Opts.MaxTripBudget,
        std::max<uint64_t>(4, static_cast<uint64_t>(BudgetTrips)));
    if (AL.Plan.Triggers.empty())
      continue;

    // Extra calling-context sections (basic SP only); the stub stages the
    // union of all sections' live-ins.
    if (C.Sched.Model == sched::SPModel::Basic) {
      std::set<ir::Reg> Union(AL.Slice.LiveIns.begin(),
                              AL.Slice.LiveIns.end());
      for (slicer::Slice &EP : C.ExtraParts) {
        AL.ExtraSections.push_back(
            Scheduler.schedule(EP, sched::SPModel::Basic));
        AL.ExtraTargets.push_back(EP.TargetLoads);
        Union.insert(EP.LiveIns.begin(), EP.LiveIns.end());
      }
      AL.Slice.LiveIns.assign(Union.begin(), Union.end());
    }

    SliceReport SR;
    SR.FunctionName = Orig.func(C.Slice.PrimaryLoad.Func).getName();
    SR.Load = C.Slice.PrimaryLoad;
    SR.Size = static_cast<unsigned>(C.Slice.Insts.size());
    for (const slicer::Slice &EP : C.ExtraParts)
      SR.Size += static_cast<unsigned>(EP.Insts.size());
    SR.LiveIns = static_cast<unsigned>(C.Slice.LiveIns.size());
    SR.Interprocedural = C.Slice.Interprocedural;
    SR.Model = C.Sched.Model;
    SR.PredictedCondition = C.Sched.PredictCondition;
    SR.RegionDepth = C.Depth;
    SR.SlackPerIteration = C.Sched.SlackPerIteration;
    SR.AvailableILP = C.Sched.AvailableILP;
    SR.HeuristicTriggerCost = AL.Plan.HeuristicCost;
    SR.MinCutTriggerCost = Placer.minCutCost(C.Slice);
    SR.Targets = static_cast<unsigned>(C.Slice.TargetLoads.size());
    Rep.Slices.push_back(SR);

    Adapted.push_back(std::move(AL));
  }
  EndStage("adapt.triggers_ms");

  Program Enhanced = codegen::rewriteWithSlices(Orig, Adapted, &Rep.Rewrite,
                                                &Rep.Manifest,
                                                Opts.EnableStreams);
  // Record the feedback directives the run honoured (std::map order:
  // sorted by load sid) so the `feedback.*` verify pass can audit them.
  for (const auto &[Sid, Ov] : Opts.Overrides) {
    verify::FeedbackOverrideRecord FR;
    FR.LoadSid = Sid;
    FR.Drop = Ov.Drop;
    FR.NoRestartTrigger = Ov.NoRestartTrigger;
    FR.MinRegionDepth = Ov.MinRegionDepth;
    FR.TripBudgetLog2 = Ov.TripBudgetLog2;
    FR.InnerUnroll = Ov.InnerUnroll;
    Rep.Manifest.FeedbackOverrides.push_back(FR);
  }
  EndStage("adapt.rewrite_ms");

  // Validate the adaptation end to end: the emitted binary against the
  // original (translation validation) and against the rewrite plan, plus
  // the stub/slice speculation contracts. Errors here mean the tool
  // produced an unsafe binary — by default that is fatal.
  if (Opts.VerifyAdapted) {
    ssp::verify::VerifyContext VC{Enhanced, &Orig, &Rep.Manifest,
                                  Opts.Metrics, &AC.specDeps()};
    ssp::verify::DiagnosticEngine DE = ssp::verify::runStandardPipeline(VC);
    Rep.VerifyErrors = DE.errorCount();
    Rep.VerifyWarnings = DE.warningCount();
    Rep.VerifyDiags = DE.diagnostics();
    if (DE.hasErrors() && Opts.FatalOnVerifyError) {
      std::fprintf(stderr, "%s",
                   ssp::verify::renderTextAll(DE, &Enhanced).c_str());
      fatalError("adapted binary failed SSP verification");
    }
  }
  EndStage("adapt.verify_ms");

  if (Opts.Metrics) {
    Opts.Metrics->addCounter("adapt.runs");
    Opts.Metrics->addCounter("adapt.delinquent_loads", Rep.DelinquentLoads);
    Opts.Metrics->addCounter("adapt.slices", Rep.numSlices());
    Opts.Metrics->addCounter("adapt.interprocedural_slices",
                             Rep.numInterprocedural());
    Opts.Metrics->addCounter("adapt.triggers_inserted",
                             Rep.Rewrite.TriggersInserted);
    Opts.Metrics->addCounter("adapt.verify_errors", Rep.VerifyErrors);
    Opts.Metrics->addCounter("adapt.verify_warnings", Rep.VerifyWarnings);
  }

  if (Report)
    *Report = std::move(Rep);
  return Enhanced;
}

profile::ProfileData ssp::core::profileProgram(
    const Program &P,
    const std::function<void(mem::SimMemory &)> &BuildMemory) {
  LinkedProgram LP = LinkedProgram::link(P);

  // Pass 1: functional run for block/edge frequencies and dynamic calls.
  mem::SimMemory FuncMem;
  BuildMemory(FuncMem);
  profile::ProfileData PD = profile::collectControlFlowProfile(LP, FuncMem);

  // Pass 2: baseline in-order timing run for the cache profile.
  mem::SimMemory TimingMem;
  BuildMemory(TimingMem);
  sim::MachineConfig Cfg = sim::MachineConfig::inOrder();
  sim::Simulator Sim(Cfg, LP, TimingMem);
  profile::addCacheProfile(PD, Sim.run());
  return PD;
}
