//===- core/ServeCache.h - Content-addressed adaptation result store ------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's memo of finished adaptations: a content-addressed store
/// keyed by the full request content — program text, profile text, and
/// canonical option text — holding the rendered report and the adapted
/// binary text. The 64-bit FNV key (support/Hash.h) only narrows the
/// search to a bucket; every probe compares the complete key bytes, so a
/// hash collision degrades to a scan, never to a wrong response.
///
/// Eviction is LRU over a byte budget covering keys and payloads: on
/// insert, least-recently-used entries are dropped until the store fits.
/// An entry larger than the whole budget is dropped immediately (the
/// store never lies about what it holds). All operations are serialized
/// by the service's batch structure — lookups and inserts happen on the
/// coordinating thread — so the store itself carries no lock; this keeps
/// hit/miss accounting and eviction order deterministic for any --jobs.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_CORE_SERVECACHE_H
#define SSP_CORE_SERVECACHE_H

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace ssp::core {

/// The full content key of one adaptation request.
struct ServeKey {
  std::string Program;  ///< Program text (.ssp, including data sections).
  std::string Profile;  ///< Profile text (.sspprof).
  std::string Options;  ///< Canonical option rendering (fixed key order).

  friend bool operator==(const ServeKey &A, const ServeKey &B) {
    return A.Program == B.Program && A.Profile == B.Profile &&
           A.Options == B.Options;
  }
  size_t bytes() const {
    return Program.size() + Profile.size() + Options.size();
  }
};

/// The served payload of one adaptation.
struct ServeResult {
  std::string Report;  ///< renderReportText output.
  std::string Binary;  ///< Adapted Program::str() text.
  size_t bytes() const { return Report.size() + Binary.size(); }
};

class ServeCache {
public:
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    /// Probes that hashed into an occupied bucket but failed the full-key
    /// compare — the path a deliberate collision fixture exercises.
    uint64_t Collisions = 0;
  };

  explicit ServeCache(uint64_t ByteBudget) : ByteBudget(ByteBudget) {}

  ServeCache(const ServeCache &) = delete;
  ServeCache &operator=(const ServeCache &) = delete;

  /// Looks \p K up; a hit refreshes its LRU position and returns the
  /// stored result (valid until the next insert). Null on miss.
  const ServeResult *lookup(const ServeKey &K);

  /// Inserts \p K -> \p R (no-op if the key is already present) and
  /// evicts LRU entries until the byte budget holds.
  void insert(const ServeKey &K, ServeResult R);

  const Stats &stats() const { return St; }
  size_t size() const { return Entries.size(); }
  uint64_t usedBytes() const { return UsedBytes; }

  /// Test seam: replaces the key-hash function (e.g. with a constant, to
  /// force every key into one bucket and pin the full-key compare path).
  void setHashFunction(std::function<uint64_t(const ServeKey &)> Fn) {
    HashFn = std::move(Fn);
  }

private:
  struct Entry {
    ServeKey Key;
    ServeResult Result;
    uint64_t Hash = 0;
  };
  using EntryList = std::list<Entry>;

  uint64_t hashOf(const ServeKey &K) const;
  void evictToBudget();
  void erase(EntryList::iterator It);

  uint64_t ByteBudget;
  uint64_t UsedBytes = 0;
  EntryList Entries; ///< Front = most recently used.
  std::unordered_map<uint64_t, std::vector<EntryList::iterator>> Buckets;
  std::function<uint64_t(const ServeKey &)> HashFn;
  Stats St;
};

} // namespace ssp::core

#endif // SSP_CORE_SERVECACHE_H
