//===- core/PostPassTool.h - The post-pass binary adaptation tool ---------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the reproduction: the post-pass compilation
/// tool of the paper. Given the original binary and profiling feedback
/// (Figure 1's two-pass flow), it
///
///   1. identifies the delinquent loads covering >= 90% of miss cycles,
///   2. walks the region graph outward from each load's innermost region,
///      computing region-restricted context-sensitive slices,
///   3. schedules each slice for chaining or basic SP and evaluates the
///      reduced-miss-cycle objective, selecting the first region crossing
///      the cutoff (Section 3.4.1),
///   4. combines overlapping slices, places triggers, and
///   5. rewrites the binary with stub and slice attachments.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_CORE_POSTPASSTOOL_H
#define SSP_CORE_POSTPASSTOOL_H

#include "codegen/SSPCodeGen.h"
#include "obs/Registry.h"
#include "profile/Profile.h"
#include "verify/Diagnostic.h"

#include <functional>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ssp::support {
class ThreadPool;
}

namespace ssp::core {

class AnalysisCache;

/// One per-delinquent-load re-adaptation directive, keyed (in
/// ToolOptions::Overrides) by the load's StaticId in the original binary.
/// This is the channel the closed-loop feedback driver (core/Feedback.h)
/// writes its decisions through; all fields default to "no change" and an
/// empty override map is bit-identical to older builds. Every override is
/// recorded in the AdaptationManifest so the `feedback.*` verify pass can
/// audit that the emitted binary honoured it.
struct LoadOverride {
  /// Suppress adaptation of this load entirely (no slice, no triggers).
  bool Drop = false;
  /// Disable the chain-loop-header restart trigger for this load's slice
  /// (see trigger::TriggerPlan::RestartTriggers).
  bool NoRestartTrigger = false;
  /// Reject candidate regions fewer than this many outward steps from the
  /// innermost — hoist the trigger into a larger region so prefetches get
  /// more lead time.
  unsigned MinRegionDepth = 0;
  /// Scale the chain trip budget by 2^N before the MaxTripBudget clamp
  /// (negative throttles a trigger whose prefetches mostly lapse).
  int TripBudgetLog2 = 0;
  /// Nonzero replaces ToolOptions::InnerUnroll for this load's slice
  /// (deepen inner-loop emission where timely headroom exists).
  unsigned InnerUnroll = 0;

  bool operator==(const LoadOverride &O) const {
    return Drop == O.Drop && NoRestartTrigger == O.NoRestartTrigger &&
           MinRegionDepth == O.MinRegionDepth &&
           TripBudgetLog2 == O.TripBudgetLog2 && InnerUnroll == O.InnerUnroll;
  }
  bool operator!=(const LoadOverride &O) const { return !(*this == O); }
};

/// Thresholds of the feedback policy mapping each trigger's fate
/// distribution to a re-adaptation action (the policy table lives in
/// DESIGN.md "Closed-loop adaptation"; the loop in core/Feedback.h).
struct FeedbackPolicy {
  /// Ignore slices with fewer attributed prefetches than this — the fate
  /// distribution is noise at small samples.
  uint64_t MinSample = 256;
  /// Drop the load when useful/(all attributed) falls below this.
  double DropUsefulMax = 0.02;
  /// Hoist (MinRegionDepth+1) when useful-late/useful exceeds this.
  double HoistLateMin = 0.5;
  /// Throttle (TripBudgetLog2-1) when evicted-unused/attributed exceeds
  /// this.
  double ThrottleEvictedMin = 0.25;
  /// Deepen (double the inner unroll) when useful-late/useful is below
  /// this and the slice walks inner-loop members.
  double DeepenLateMax = 0.30;
  /// Disable the restart trigger when its useful fraction is below this
  /// while the cut-set trigger sustains chains >= RestartMinCutDepth deep
  /// on its own.
  double RestartUsefulMax = 0.30;
  uint32_t RestartMinCutDepth = 64;
  /// Saturation cap for deepened inner unroll (guarantees the override
  /// map reaches a fixpoint).
  unsigned MaxInnerUnroll = 8;
  /// Saturation caps for hoisting, throttling and budget deepening.
  unsigned MaxHoistDepth = 3;
  int MinTripBudgetLog2 = -3;
  int MaxTripBudgetLog2 = 2;

  bool operator==(const FeedbackPolicy &O) const {
    return MinSample == O.MinSample && DropUsefulMax == O.DropUsefulMax &&
           HoistLateMin == O.HoistLateMin &&
           ThrottleEvictedMin == O.ThrottleEvictedMin &&
           DeepenLateMax == O.DeepenLateMax &&
           RestartUsefulMax == O.RestartUsefulMax &&
           RestartMinCutDepth == O.RestartMinCutDepth &&
           MaxInnerUnroll == O.MaxInnerUnroll &&
           MaxHoistDepth == O.MaxHoistDepth &&
           MinTripBudgetLog2 == O.MinTripBudgetLog2 &&
           MaxTripBudgetLog2 == O.MaxTripBudgetLog2;
  }
};

/// Tuning options of the tool (defaults follow the paper).
struct ToolOptions {
  /// Delinquent loads must cover this fraction of miss cycles.
  double DelinquentCoverage = 0.90;
  unsigned MaxDelinquentLoads = 10;

  /// Region selection: accept the first region whose reduced miss cycles
  /// reach this fraction of the load's total miss cycles ("the cutoff
  /// percentage", Section 3.4.1).
  double ReducedMissCutoff = 0.30;

  /// Stop the region traversal when nested this many levels outward.
  unsigned MaxRegionDepth = 4;

  /// Feature toggles (for the ablation benches).
  bool EnableChaining = true;
  bool EnableLoopRotation = true;
  bool EnableConditionPrediction = true;
  bool EnableSpeculativeSlicing = true;

  /// Speculation-aware dependence analysis (`--spec-deps[=T]`): prune
  /// may-dependence edges whose profiled activation ratio is at most
  /// SpecDepThreshold, recording every drop for the `speculation.*`
  /// verify pass. Off by default; off is bit-identical to older builds.
  bool EnableSpecDeps = false;
  double SpecDepThreshold = 0.0;

  /// Stream-descriptor classification (`--streams`): attach compact
  /// StreamDescriptors to chained slices whose access pattern classifies
  /// as affine / pointer-chase / indirect; the simulator's stream engine
  /// then executes those descriptors directly at trigger time instead of
  /// spawning a thread context. Off by default; off is bit-identical to
  /// older builds.
  bool EnableStreams = false;

  /// Bound on the chain length when the spawn condition is predicted.
  uint64_t MaxTripBudget = 4096;

  /// Reject adaptations whose estimated slack per iteration is below this
  /// (a prefetch with no slack only adds trigger overhead).
  uint64_t MinSlackCycles = 16;

  /// Install chain restart triggers at the chain-loop header (see
  /// TriggerPlan::RestartTriggers).
  bool EnableRestartTriggers = true;

  /// Total emission count for inner-loop slice members (collision chains
  /// etc. walked this many steps per chain link).
  unsigned InnerUnroll = 2;

  /// Per-delinquent-load re-adaptation directives keyed by original-binary
  /// StaticId (std::map: deterministic order for canonical option
  /// rendering). Empty (the default) leaves every code path untouched.
  std::map<uint64_t, LoadOverride> Overrides;

  /// Closed-loop feedback re-adaptation (`ssp-adapt --feedback[=N]`):
  /// upper bound on adapt -> simulate -> re-adapt rounds taken by
  /// core::runFeedbackLoop. 0 (the default) disables the loop. adapt()
  /// itself never reads this — it is carried here so the CLIs and the
  /// serving daemon configure and cache-key the loop uniformly.
  unsigned FeedbackRounds = 0;
  /// Thresholds of the feedback policy (only read when FeedbackRounds>0).
  FeedbackPolicy Feedback;

  /// Worker threads for per-delinquent-load candidate generation. 0 picks
  /// hardware concurrency; 1 (the default) is the exact inline serial
  /// path. The AdaptationReport and the emitted binary are bit-identical
  /// for every value: candidates land in per-load result slots and are
  /// merged in load order.
  unsigned Jobs = 1;

  /// Trace candidate evaluation to stderr.
  bool Verbose = false;

  /// Run the full verification pipeline (structural checks, translation
  /// validation against the original, stub/slice contracts, lints) over
  /// the adapted binary before returning it.
  bool VerifyAdapted = true;

  /// Abort via fatalError when the pipeline reports errors (a tool bug:
  /// the rewriter emitted an unsafe adaptation). CLI frontends set this
  /// false to print the diagnostics and exit with a status code instead;
  /// the findings are in AdaptationReport::VerifyDiags either way.
  bool FatalOnVerifyError = true;

  /// Optional metrics sink: adapt() reports per-stage wall times
  /// ("adapt.<stage>_ms") and summary counters ("adapt.*") into it, and
  /// forwards it to the verification pipeline ("verify.<pass>_ms").
  /// Null (the default) disables all metric collection; the adaptation
  /// output is identical either way (`ssp-adapt --metrics out.json`).
  obs::Registry *Metrics = nullptr;

  /// Optional external worker pool. When set, adapt() fans candidate
  /// generation out on it instead of constructing a private pool (and
  /// Jobs is ignored). The serving daemon points every request at one
  /// process-wide pool; parallelFor's cooperative wait makes the nested
  /// use (requests over loads) safe. Results are unchanged either way.
  support::ThreadPool *Pool = nullptr;

  slicer::SliceOptions Slicing;
};

/// Per-slice entry of the adaptation report (the rows behind Table 2).
struct SliceReport {
  std::string FunctionName;
  analysis::InstRef Load;
  unsigned Size = 0;       ///< Slice instructions.
  unsigned LiveIns = 0;
  bool Interprocedural = false;
  sched::SPModel Model = sched::SPModel::Chaining;
  bool PredictedCondition = false;
  unsigned RegionDepth = 0; ///< Outward steps taken from the innermost.
  uint64_t SlackPerIteration = 0;
  double AvailableILP = 1.0;
  uint64_t HeuristicTriggerCost = 0;
  uint64_t MinCutTriggerCost = 0;
  unsigned Targets = 1; ///< Delinquent loads covered after combining.
};

/// Aggregate adaptation results (Table 2).
struct AdaptationReport {
  std::vector<SliceReport> Slices;
  unsigned DelinquentLoads = 0;
  codegen::RewriteInfo Rewrite;

  /// The rewrite plan handed to the verification pipeline.
  verify::AdaptationManifest Manifest;
  /// Verification findings over the adapted binary (empty when
  /// ToolOptions::VerifyAdapted is off).
  std::vector<verify::Diagnostic> VerifyDiags;
  unsigned VerifyErrors = 0;
  unsigned VerifyWarnings = 0;

  unsigned numSlices() const {
    return static_cast<unsigned>(Slices.size());
  }
  unsigned numInterprocedural() const {
    unsigned N = 0;
    for (const SliceReport &S : Slices)
      N += S.Interprocedural;
    return N;
  }
  double averageSize() const {
    if (Slices.empty())
      return 0.0;
    double Sum = 0;
    for (const SliceReport &S : Slices)
      Sum += S.Size;
    return Sum / static_cast<double>(Slices.size());
  }
  double averageLiveIns() const {
    if (Slices.empty())
      return 0.0;
    double Sum = 0;
    for (const SliceReport &S : Slices)
      Sum += S.LiveIns;
    return Sum / static_cast<double>(Slices.size());
  }
};

/// The post-pass tool. Holds references to the original binary and its
/// profile for the duration of the adaptation.
class PostPassTool {
public:
  PostPassTool(const ir::Program &Orig, const profile::ProfileData &PD,
               ToolOptions Opts = ToolOptions());

  /// Runs the full pipeline and returns the SSP-enhanced binary.
  ir::Program adapt(AdaptationReport *Report = nullptr);

  /// Like adapt(), but reuses a prebuilt AnalysisCache instead of building
  /// one — the serving daemon's warm path, which keeps per-program
  /// analyses alive across requests. \p AC must have been constructed from
  /// this tool's program/profile with sliceOptionsOf/scheduleOptionsOf of
  /// these options; null falls back to building locally.
  ir::Program adaptWith(const AnalysisCache *AC,
                        AdaptationReport *Report = nullptr);

  /// The slicing options adapt() derives from \p Opts — the AnalysisCache
  /// construction parameters, exposed so external caches match exactly.
  static slicer::SliceOptions sliceOptionsOf(const ToolOptions &Opts);
  static sched::ScheduleOptions scheduleOptionsOf(const ToolOptions &Opts);
  static analysis::SpecDepOptions specDepOptionsOf(const ToolOptions &Opts);

private:
  const ir::Program &Orig;
  const profile::ProfileData &PD;
  ToolOptions Opts;
};

/// Convenience: profile \p P by running it (functional pass + baseline
/// in-order timing pass) with memory images produced by \p BuildMemory.
profile::ProfileData
profileProgram(const ir::Program &P,
               const std::function<void(mem::SimMemory &)> &BuildMemory);

} // namespace ssp::core

#endif // SSP_CORE_POSTPASSTOOL_H
