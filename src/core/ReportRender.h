//===- core/ReportRender.h - Canonical adaptation-report text -------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one canonical text rendering of an adaptation run's outcome,
/// shared by the `ssp-adapt` CLI (stdout) and the `ssp-adaptd` daemon
/// (the `report` payload of a response). Serving correctness is defined
/// as byte-identity against the one-shot tool for any job count and any
/// cache hit/miss interleaving; routing both front ends through this
/// single renderer is what makes that a structural property instead of
/// two printf sequences kept in sync by hand.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_CORE_REPORTRENDER_H
#define SSP_CORE_REPORTRENDER_H

#include <cstdint>
#include <string>

namespace ssp::core {

struct AdaptationReport;

/// Renders the adaptation outcome exactly as `ssp-adapt` prints it:
///
///   profiled: <BaselineCycles> baseline in-order cycles
///   delinquent loads: <N>   slices: <N> (interprocedural <N>)   triggers: <N>
///     <func> @ <ref>: <N> insts, <N> live-ins, <model> SP, slack <N>
///   verified: <E> error(s), <W> warning(s)
///
/// \p BaselineCycles is the profile's baseline timing-run cycle count.
std::string renderReportText(uint64_t BaselineCycles,
                             const AdaptationReport &Rep);

} // namespace ssp::core

#endif // SSP_CORE_REPORTRENDER_H
