//===- core/ReportRender.h - Canonical adaptation-report text -------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one canonical text rendering of an adaptation run's outcome,
/// shared by the `ssp-adapt` CLI (stdout) and the `ssp-adaptd` daemon
/// (the `report` payload of a response). Serving correctness is defined
/// as byte-identity against the one-shot tool for any job count and any
/// cache hit/miss interleaving; routing both front ends through this
/// single renderer is what makes that a structural property instead of
/// two printf sequences kept in sync by hand.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_CORE_REPORTRENDER_H
#define SSP_CORE_REPORTRENDER_H

#include <cstdint>
#include <string>

namespace ssp::core {

struct AdaptationReport;
struct FeedbackResult;

/// Renders the adaptation outcome exactly as `ssp-adapt` prints it:
///
///   profiled: <BaselineCycles> baseline in-order cycles
///   delinquent loads: <N>   slices: <N> (interprocedural <N>)   triggers: <N>
///     <func> @ <ref>: <N> insts, <N> live-ins, <model> SP, slack <N>
///   verified: <E> error(s), <W> warning(s)
///
/// \p BaselineCycles is the profile's baseline timing-run cycle count.
std::string renderReportText(uint64_t BaselineCycles,
                             const AdaptationReport &Rep);

/// Renders the closed-loop feedback trace appended by `ssp-adapt
/// --feedback` and the daemon's feedback-mode responses — every round with
/// its simulated cycles, speedup, accept/reject outcome, and each policy
/// decision with the fate evidence it was made on:
///
///   feedback: <N> round(s), fixpoint <yes|no>, one-shot x<S>, best x<S>
///     round <K>: <cycles> cycles, speedup x<S>, accepted|rejected
///       load fn<F>:@<I> <action>: <why>
///
/// Like renderReportText, this is the one canonical rendering both front
/// ends share; byte-identity across job counts holds because the result
/// itself is deterministic.
std::string renderFeedbackText(const FeedbackResult &FR);

} // namespace ssp::core

#endif // SSP_CORE_REPORTRENDER_H
