//===- core/AdaptService.h - The adaptation-as-a-service engine -----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine behind `tools/ssp-adaptd`: a persistent service that reads
/// a stream of adaptation requests, executes them batched across one
/// process-wide ThreadPool, memoizes finished adaptations in a
/// content-addressed ServeCache, and keeps per-program analyses warm
/// (parsed Program + ProfileData + AnalysisCache) across requests.
///
/// ## Protocol (stdin-batch)
///
/// Client -> daemon, line-framed with length-prefixed payloads:
///
///   session  := (request | junk)* ["flush\n" ...]      (EOF = final flush)
///   request  := "request " ID "\n" section* "end\n"
///   section  := "program " N "\n" <N bytes> ["\n"]     (.ssp text)
///             | "profile " N "\n" <N bytes> ["\n"]     (.sspprof text)
///             | "option " KEY "=" VALUE "\n"
///
/// The newline after a length-prefixed payload is optional — it is
/// consumed when present, so `cat file` framing (where the file's own
/// trailing newline is inside N) and explicit `<bytes>\n` framing both
/// work.
///
/// `flush` executes every request accumulated since the last flush and
/// writes the responses, in request order:
///
///   response := "response " ID " ok\n"
///               "report " N "\n" <N bytes> "\n"
///               "binary " N "\n" <N bytes> "\n" "end\n"
///             | "response " ID " error\n"
///               "message " N "\n" <N bytes> "\n" "end\n"
///
/// The `report` payload is byte-identical to one-shot `ssp-adapt`
/// console output and `binary` to its `--emit` program text, for any
/// `--jobs` and any cache hit/miss interleaving (hits are invisible in
/// response bytes; only the serve.* counters tell them apart).
///
/// ## Hardening
///
/// Malformed input never kills the daemon: framing errors, truncated
/// payloads, unparsable programs/profiles, and bad options each turn
/// into an `error` response with a located "line N:" message (session-
/// absolute for framing, payload-relative for program/profile text).
/// After a framing error inside a request the reader resynchronizes by
/// skipping to the next lone `end` line.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_CORE_ADAPTSERVICE_H
#define SSP_CORE_ADAPTSERVICE_H

#include "core/ServeCache.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <string>
#include <vector>

namespace ssp::obs {
class Registry;
}

namespace ssp::core {

struct ServeOptions {
  /// Worker threads of the process-wide pool (0 = hardware concurrency).
  /// Requests pipeline across the pool, layered over each request's
  /// per-delinquent-load fan-out; responses are identical for any value.
  unsigned Jobs = 0;

  /// Byte budget of the content-addressed result cache (keys + payloads).
  uint64_t CacheBytes = 64ull << 20;

  /// How many warm (program, profile, analysis-options) analysis states
  /// to keep alive across requests.
  unsigned WarmPrograms = 8;

  /// Optional metrics sink: serve.* counters, per-stage timers, and the
  /// forwarded adapt.*/verify.* stage timings. Null disables collection.
  obs::Registry *Metrics = nullptr;
};

class AdaptService {
public:
  explicit AdaptService(const ServeOptions &Opts);
  ~AdaptService();

  AdaptService(const AdaptService &) = delete;
  AdaptService &operator=(const AdaptService &) = delete;

  /// Runs the protocol loop: reads requests from \p In until EOF,
  /// executing and responding on every `flush` (and at EOF). Returns the
  /// number of requests answered. The cache and warm state persist
  /// across calls — a second session starts warm.
  uint64_t serve(std::istream &In, std::ostream &Out);

  /// Convenience for tests and the bench: one session over strings.
  std::string processBatch(const std::string &Session);

  /// Flushes latency percentiles (serve.latency_p50_us/p95/p99) into the
  /// metrics registry; call once before rendering metrics.
  void flushLatencyMetrics();

  ServeCache &cache() { return Cache; }
  support::ThreadPool &pool() { return Pool; }

private:
  struct Request;
  struct WarmEntry;

  void executeBatch(std::vector<Request> &Batch, std::ostream &Out);
  WarmEntry *findWarm(const std::string &ProgramText,
                      const std::string &ProfileText,
                      const std::string &AnalysisOpts);

  ServeOptions Opts;
  support::ThreadPool Pool;
  ServeCache Cache;
  /// Warm per-program analysis states, most recently used first. Entries
  /// own the parsed Program/ProfileData the AnalysisCache references, so
  /// a result-cache miss on a known program skips parsing and analysis.
  std::list<std::unique_ptr<WarmEntry>> Warm;
  std::vector<double> LatencyUs; ///< Per-request execution wall times.
  uint64_t Served = 0;
};

} // namespace ssp::core

#endif // SSP_CORE_ADAPTSERVICE_H
