//===- core/Feedback.cpp - Closed-loop feedback-directed re-adaptation ----===//

#include "core/Feedback.h"

#include "core/AnalysisCache.h"
#include "sim/Simulator.h"

#include <algorithm>
#include <set>
#include <unordered_map>

using namespace ssp;
using namespace ssp::core;

namespace {

/// Fate rollup aggregated over a set of triggers.
struct FateSum {
  uint64_t Spawns = 0;
  uint64_t Fates[sim::NumPrefetchFates] = {0, 0, 0, 0, 0};
  uint64_t LateCycles = 0;
  uint32_t MaxChainDepth = 0;

  uint64_t at(sim::PrefetchFate F) const {
    return Fates[static_cast<unsigned>(F)];
  }
  uint64_t accesses() const {
    uint64_t N = 0;
    for (uint64_t F : Fates)
      N += F;
    return N;
  }
  uint64_t useful() const {
    return at(sim::PrefetchFate::UsefulTimely) +
           at(sim::PrefetchFate::UsefulLate);
  }
};

void accumulate(FateSum &Sum, const std::vector<uint64_t> &Sids,
                const std::unordered_map<uint64_t,
                                         const sim::PrefetchAttribution *> &ByTrigger) {
  for (uint64_t Sid : Sids) {
    auto It = ByTrigger.find(Sid);
    if (It == ByTrigger.end())
      continue;
    const sim::PrefetchAttribution &A = *It->second;
    Sum.Spawns += A.Spawns;
    for (unsigned F = 0; F < sim::NumPrefetchFates; ++F)
      Sum.Fates[F] += A.Fates[F];
    Sum.LateCycles += A.LateCycles;
    Sum.MaxChainDepth = std::max(Sum.MaxChainDepth, A.MaxChainDepth);
  }
}

double frac(uint64_t Num, uint64_t Den) {
  return Den == 0 ? 0.0
                  : static_cast<double>(Num) / static_cast<double>(Den);
}

std::string pct(double F) {
  return std::to_string(static_cast<int>(F * 100.0 + 0.5)) + "%";
}

/// Canonical text key of an override map (fixpoint/already-tried checks).
std::string renderOverrides(const std::map<uint64_t, LoadOverride> &Ovs) {
  std::string S;
  for (const auto &[Sid, Ov] : Ovs) {
    S += std::to_string(Sid) + ":" + (Ov.Drop ? "d" : "") +
         (Ov.NoRestartTrigger ? "r" : "") + "m" +
         std::to_string(Ov.MinRegionDepth) + "b" +
         std::to_string(Ov.TripBudgetLog2) + "u" +
         std::to_string(Ov.InnerUnroll) + ";";
  }
  return S;
}

} // namespace

std::map<uint64_t, LoadOverride> core::proposeOverrides(
    const FeedbackPolicy &Policy, const verify::AdaptationManifest &Manifest,
    const std::vector<sim::PrefetchAttribution> &Attrib,
    const std::map<uint64_t, LoadOverride> &Current,
    std::vector<FeedbackDecision> *Decisions) {
  std::unordered_map<uint64_t, const sim::PrefetchAttribution *> ByTrigger;
  for (const sim::PrefetchAttribution &A : Attrib)
    ByTrigger.emplace(A.Trigger, &A);

  std::map<uint64_t, LoadOverride> Next = Current;
  for (const verify::SliceManifest &SM : Manifest.Slices) {
    if (SM.PrimaryLoadSid == 0)
      continue; // Pre-PR manifest without the join key: nothing to do.
    FateSum Cut, Restart;
    accumulate(Cut, SM.CutTriggerSids, ByTrigger);
    accumulate(Restart, SM.RestartTriggerSids, ByTrigger);
    FateSum All = Cut;
    accumulate(All, SM.RestartTriggerSids, ByTrigger);

    uint64_t Accesses = All.accesses();
    if (Accesses < Policy.MinSample)
      continue; // Too little evidence to act on.
    double UsefulFrac = frac(All.useful(), Accesses);
    double LateFrac = frac(All.at(sim::PrefetchFate::UsefulLate),
                           All.useful());
    double EvictFrac = frac(All.at(sim::PrefetchFate::EvictedUnused),
                            Accesses);

    LoadOverride Ov;
    if (auto It = Next.find(SM.PrimaryLoadSid); It != Next.end())
      Ov = It->second;
    std::string Action, Why;

    if (UsefulFrac < Policy.DropUsefulMax) {
      // The slice prefetches but almost nothing is ever consumed usefully:
      // pure pollution and trigger overhead.
      Ov.Drop = true;
      Action = "drop";
      Why = "useful " + pct(UsefulFrac) + " < " +
            pct(Policy.DropUsefulMax);
    } else if (EvictFrac > Policy.ThrottleEvictedMin &&
               Ov.TripBudgetLog2 > Policy.MinTripBudgetLog2) {
      // Prefetches mostly lapse before use: the chain runs too far ahead.
      --Ov.TripBudgetLog2;
      Action = "throttle";
      Why = "evicted-unused " + pct(EvictFrac) + " > " +
            pct(Policy.ThrottleEvictedMin);
    } else if (All.useful() > 0 && LateFrac > Policy.HoistLateMin &&
               SM.RegionDepth + 1 <= Policy.MaxHoistDepth &&
               Ov.MinRegionDepth < SM.RegionDepth + 1) {
      // Useful-late dominates: prefetches arrive, but not early enough.
      // Require the next adaptation to pick a region at least one step
      // further out, spawning the slice earlier.
      Ov.MinRegionDepth = SM.RegionDepth + 1;
      Action = "hoist";
      Why = "useful-late " + pct(LateFrac) + " of useful > " +
            pct(Policy.HoistLateMin) + ", late slack " +
            std::to_string(All.LateCycles) + " cycles";
    } else if (!Ov.NoRestartTrigger && !SM.RestartTriggerSids.empty() &&
               Restart.accesses() > 0 &&
               frac(Restart.useful(), Restart.accesses()) <
                   Policy.RestartUsefulMax &&
               Cut.MaxChainDepth >= Policy.RestartMinCutDepth) {
      // The cut-set trigger sustains deep chains on its own while the
      // restart trigger's re-arms are mostly useless re-prefetches.
      Ov.NoRestartTrigger = true;
      Action = "no-restart";
      Why = "restart useful " +
            pct(frac(Restart.useful(), Restart.accesses())) + " < " +
            pct(Policy.RestartUsefulMax) + ", cut chains reach depth " +
            std::to_string(Cut.MaxChainDepth);
    } else if (All.useful() > 0 && LateFrac <= Policy.DeepenLateMax &&
               EvictFrac <= Policy.ThrottleEvictedMin) {
      // Timely-dominated with no eviction pressure: headroom to run the
      // speculation deeper. Inner-loop members deepen via unrolling;
      // otherwise extend the chain budget.
      if (SM.InnerMembers > 0 &&
          SM.InnerUnroll * 2 <= Policy.MaxInnerUnroll) {
        Ov.InnerUnroll = SM.InnerUnroll * 2;
        Action = "deepen-unroll";
        Why = "useful-late " + pct(LateFrac) + " <= " +
              pct(Policy.DeepenLateMax) + ", inner members " +
              std::to_string(SM.InnerMembers) + ": unroll " +
              std::to_string(SM.InnerUnroll) + " -> " +
              std::to_string(Ov.InnerUnroll);
      } else if (SM.InnerMembers == 0 &&
                 Ov.TripBudgetLog2 < Policy.MaxTripBudgetLog2) {
        ++Ov.TripBudgetLog2;
        Action = "deepen-budget";
        Why = "useful-late " + pct(LateFrac) + " <= " +
              pct(Policy.DeepenLateMax) + ": budget x2^" +
              std::to_string(Ov.TripBudgetLog2);
      }
    }

    if (Action.empty())
      continue;
    // The directive must reach every load the combined slice covers:
    // overriding only the primary would let the rest re-slice separately
    // (and shallower) in the next round.
    Next[SM.PrimaryLoadSid] = Ov;
    for (uint64_t Sid : SM.TargetLoadSids)
      Next[Sid] = Ov;
    if (Decisions)
      Decisions->push_back({SM.PrimaryLoadSid, Action, Why, Ov});
  }
  return Next;
}

FeedbackResult core::runFeedbackLoop(
    const ir::Program &Orig, const profile::ProfileData &PD,
    const ToolOptions &Opts, const FeedbackOptions &FO,
    const std::function<void(mem::SimMemory &)> &BuildMemory,
    const AnalysisCache *AC) {
  FeedbackResult Res;

  auto Simulate = [&](const ir::Program &P) -> sim::SimStats {
    ir::LinkedProgram LP = ir::LinkedProgram::link(P);
    mem::SimMemory Mem;
    BuildMemory(Mem);
    sim::MachineConfig Cfg = sim::MachineConfig::inOrder();
    Cfg.Sample = FO.Sample;
    sim::Simulator Sim(Cfg, LP, Mem);
    return Sim.run();
  };

  auto RunRound = [&](const std::map<uint64_t, LoadOverride> &Ovs,
                      AdaptationReport &Rep, ir::Program &Out) {
    ToolOptions RoundOpts = Opts;
    RoundOpts.Overrides = Ovs;
    PostPassTool Tool(Orig, PD, RoundOpts);
    Out = Tool.adaptWith(AC, &Rep);
  };

  unsigned MaxRounds = std::max(1u, FO.MaxRounds);
  std::set<std::string> Tried;

  // Round 1: the one-shot adaptation (with whatever overrides the caller
  // seeded — normally none). Always accepted: it is the baseline the
  // monotonic-accept rule may never regress below.
  std::map<uint64_t, LoadOverride> CurOvs = Opts.Overrides;
  Tried.insert(renderOverrides(CurOvs));
  AdaptationReport Rep;
  ir::Program Prog;
  RunRound(CurOvs, Rep, Prog);
  sim::SimStats Stats = Simulate(Prog);

  uint64_t BestCycles = Stats.Cycles;
  Res.Best = std::move(Prog);
  Res.BestReport = std::move(Rep);
  Res.BestOverrides = CurOvs;
  std::vector<sim::PrefetchAttribution> BestAttrib = Stats.Attribution;
  Res.OneShotSpeedup = frac(PD.BaselineCycles, Stats.Cycles);

  FeedbackRound R1;
  R1.Round = 1;
  R1.Cycles = Stats.Cycles;
  R1.Speedup = Res.OneShotSpeedup;
  R1.Accepted = true;
  Res.Rounds.push_back(std::move(R1));

  while (Res.Rounds.size() < MaxRounds) {
    // Decisions always derive from the best-so-far binary's attribution:
    // a rejected round cannot steer the policy, and an unchanged best
    // state re-proposes identically — which the Tried set turns into
    // convergence.
    std::vector<FeedbackDecision> Decisions;
    std::map<uint64_t, LoadOverride> Proposed = proposeOverrides(
        Opts.Feedback, Res.BestReport.Manifest, BestAttrib,
        Res.BestOverrides, &Decisions);
    if (!Tried.insert(renderOverrides(Proposed)).second) {
      Res.Fixpoint = true;
      break;
    }

    FeedbackRound R;
    R.Round = static_cast<unsigned>(Res.Rounds.size()) + 1;
    R.Decisions = std::move(Decisions);
    RunRound(Proposed, Rep, Prog);
    Stats = Simulate(Prog);
    R.Cycles = Stats.Cycles;
    R.Speedup = frac(PD.BaselineCycles, Stats.Cycles);
    R.Accepted = Stats.Cycles < BestCycles;
    if (R.Accepted) {
      BestCycles = Stats.Cycles;
      Res.Best = std::move(Prog);
      Res.BestReport = std::move(Rep);
      Res.BestOverrides = std::move(Proposed);
      BestAttrib = std::move(Stats.Attribution);
    }
    Res.Rounds.push_back(std::move(R));
  }

  Res.BestSpeedup = frac(PD.BaselineCycles, BestCycles);
  return Res;
}
