//===- core/ServeCache.cpp - Content-addressed adaptation result store ----===//

#include "core/ServeCache.h"

#include "support/Hash.h"

#include <algorithm>

using namespace ssp;
using namespace ssp::core;

uint64_t ServeCache::hashOf(const ServeKey &K) const {
  if (HashFn)
    return HashFn(K);
  // Chain the three sections with their lengths folded in, so
  // ("ab", "c") and ("a", "bc") key differently even at the hash level.
  uint64_t H = support::hashString(K.Program);
  H = support::hashValue(K.Program.size(), H);
  H = support::hashBytes(K.Profile.data(), K.Profile.size(), H);
  H = support::hashValue(K.Profile.size(), H);
  H = support::hashBytes(K.Options.data(), K.Options.size(), H);
  return H;
}

const ServeResult *ServeCache::lookup(const ServeKey &K) {
  uint64_t H = hashOf(K);
  auto BucketIt = Buckets.find(H);
  if (BucketIt != Buckets.end()) {
    for (EntryList::iterator It : BucketIt->second) {
      if (It->Key == K) {
        ++St.Hits;
        Entries.splice(Entries.begin(), Entries, It); // Refresh LRU.
        return &It->Result;
      }
      ++St.Collisions; // Same hash, different bytes: keep scanning.
    }
  }
  ++St.Misses;
  return nullptr;
}

void ServeCache::insert(const ServeKey &K, ServeResult R) {
  uint64_t H = hashOf(K);
  std::vector<EntryList::iterator> &Bucket = Buckets[H];
  for (EntryList::iterator It : Bucket)
    if (It->Key == K)
      return; // Already cached (two identical requests in one batch).
  Entries.push_front(Entry{K, std::move(R), H});
  Bucket.push_back(Entries.begin());
  UsedBytes += K.bytes() + Entries.front().Result.bytes();
  evictToBudget();
}

void ServeCache::evictToBudget() {
  while (UsedBytes > ByteBudget && !Entries.empty()) {
    erase(std::prev(Entries.end()));
    ++St.Evictions;
  }
}

void ServeCache::erase(EntryList::iterator It) {
  auto BucketIt = Buckets.find(It->Hash);
  std::vector<EntryList::iterator> &Bucket = BucketIt->second;
  Bucket.erase(std::find(Bucket.begin(), Bucket.end(), It));
  if (Bucket.empty())
    Buckets.erase(BucketIt);
  UsedBytes -= It->Key.bytes() + It->Result.bytes();
  Entries.erase(It);
}
