//===- core/Feedback.h - Closed-loop feedback-directed re-adaptation ------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The closed-loop driver behind `ssp-adapt --feedback[=N]`: iterate
///
///   adapt -> simulate -> attribute -> re-adapt
///
/// until the proposed per-load override set reaches a fixpoint or the
/// round budget runs out. The paper's tool adapts once from a single
/// profiling run; this loop feeds the simulator's prefetch-lifecycle
/// attribution (sim/SimStats.h: five fates per trigger plus timeliness
/// slack) back into slice construction, in the "forecast slices" spirit
/// of outcome-driven slice tuning.
///
/// The policy maps each adapted slice's aggregated fate distribution to
/// one concrete action per round (first match wins):
///
///   fate signal                                   action
///   --------------------------------------------  -----------------------
///   useful fraction below DropUsefulMax           drop the load
///   evicted-unused fraction over ThrottleEvicted  halve the trip budget
///   useful-late dominates useful (HoistLateMin)   hoist: require a region
///                                                 one step further out
///   restart trigger mostly useless while cut-set  disable the restart
///   chains run deep                               trigger
///   timely-dominated (DeepenLateMax) headroom     deepen: double inner
///                                                 unroll (inner members
///                                                 present) or the trip
///                                                 budget (otherwise)
///
/// Rounds are accepted under *monotonic accept*: the best-so-far binary by
/// simulated speedup is kept, and a regressing round only ever costs the
/// round — never the result. Decisions derive from the best round's
/// attribution, so one rejected proposal re-proposes identically next
/// round and terminates the loop (every action also saturates at a cap).
/// The loop is deterministic for any ToolOptions::Jobs value because
/// PostPassTool::adapt and the simulator both are.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_CORE_FEEDBACK_H
#define SSP_CORE_FEEDBACK_H

#include "core/PostPassTool.h"
#include "sim/Sampling.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace ssp::core {

class AnalysisCache;

/// One per-load policy decision taken in one round (the audit trail shown
/// in the report and consumed by tests).
struct FeedbackDecision {
  uint64_t LoadSid = 0;       ///< Original-binary StaticId of the load.
  std::string Action;         ///< "drop"|"throttle"|"hoist"|"no-restart"|
                              ///< "deepen-unroll"|"deepen-budget"
  std::string Why;            ///< Fate evidence, human-readable.
  LoadOverride Override;      ///< The resulting override for this load.
};

/// One executed adapt+simulate round.
struct FeedbackRound {
  unsigned Round = 0;             ///< 1 = the one-shot baseline round.
  std::vector<FeedbackDecision> Decisions; ///< Empty in round 1.
  uint64_t Cycles = 0;            ///< Simulated cycles of this round's binary.
  double Speedup = 0.0;           ///< BaselineCycles / Cycles.
  bool Accepted = false;          ///< Became the best-so-far binary.
};

/// Options of the loop itself (thresholds live in ToolOptions::Feedback).
struct FeedbackOptions {
  /// Maximum adapt+simulate rounds (including the one-shot round 1).
  unsigned MaxRounds = 4;
  /// Optional sampling plan for the per-round simulations (exact when
  /// disabled). The one-shot baseline and every round use the same plan,
  /// so accept decisions compare like with like.
  sim::SamplingPlan Sample;
};

/// The loop's result: the best-accepted binary plus the full round log.
struct FeedbackResult {
  ir::Program Best;               ///< Best-so-far adapted binary.
  AdaptationReport BestReport;    ///< Its adaptation report.
  std::map<uint64_t, LoadOverride> BestOverrides; ///< Its override set.
  std::vector<FeedbackRound> Rounds;  ///< Executed rounds, in order.
  double OneShotSpeedup = 0.0;    ///< Round 1 simulated speedup.
  double BestSpeedup = 0.0;       ///< Best accepted simulated speedup.
  bool Fixpoint = false;          ///< Converged before MaxRounds ran out.
};

/// Derives the next round's override set from the best round's manifest
/// and attribution. Pure policy — exposed separately so tests can pin the
/// fate-distribution -> action mapping without running simulations.
/// \p Current is the override set the attributed binary was built with;
/// decisions are appended to \p Decisions. Returns the proposed set
/// (== \p Current when no action fires).
std::map<uint64_t, LoadOverride>
proposeOverrides(const FeedbackPolicy &Policy,
                 const verify::AdaptationManifest &Manifest,
                 const std::vector<sim::PrefetchAttribution> &Attrib,
                 const std::map<uint64_t, LoadOverride> &Current,
                 std::vector<FeedbackDecision> *Decisions = nullptr);

/// Runs the closed loop over \p Orig with profile \p PD. \p Opts supplies
/// the tool configuration (Overrides seeds round 1 — normally empty — and
/// Opts.Feedback the policy thresholds). \p BuildMemory recreates the
/// workload's memory image for each simulation. \p AC, when non-null, is
/// a warm analysis cache matching \p Opts (the serving daemon's path);
/// overrides never affect cached analyses, so one cache serves all rounds.
FeedbackResult
runFeedbackLoop(const ir::Program &Orig, const profile::ProfileData &PD,
                const ToolOptions &Opts, const FeedbackOptions &FO,
                const std::function<void(mem::SimMemory &)> &BuildMemory,
                const AnalysisCache *AC = nullptr);

} // namespace ssp::core

#endif // SSP_CORE_FEEDBACK_H
