//===- core/ReportRender.cpp - Canonical adaptation-report text -----------===//

#include "core/ReportRender.h"

#include "core/Feedback.h"
#include "core/PostPassTool.h"

#include <cstdio>

using namespace ssp;
using namespace ssp::core;

namespace {
std::string fmtSpeedup(double S) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "x%.3f", S);
  return Buf;
}
} // namespace

std::string core::renderReportText(uint64_t BaselineCycles,
                                   const AdaptationReport &Rep) {
  std::string S = "profiled: " + std::to_string(BaselineCycles) +
                  " baseline in-order cycles\n";
  S += "delinquent loads: " + std::to_string(Rep.DelinquentLoads) +
       "   slices: " + std::to_string(Rep.numSlices()) +
       " (interprocedural " + std::to_string(Rep.numInterprocedural()) +
       ")   triggers: " + std::to_string(Rep.Rewrite.TriggersInserted) + "\n";
  for (const SliceReport &R : Rep.Slices)
    S += "  " + R.FunctionName + " @ " + R.Load.str() + ": " +
         std::to_string(R.Size) + " insts, " + std::to_string(R.LiveIns) +
         " live-ins, " + std::string(sched::modelName(R.Model)) +
         " SP, slack " + std::to_string(R.SlackPerIteration) + "\n";
  S += "verified: " + std::to_string(Rep.VerifyErrors) + " error(s), " +
       std::to_string(Rep.VerifyWarnings) + " warning(s)\n";
  return S;
}

std::string core::renderFeedbackText(const FeedbackResult &FR) {
  std::string S = "feedback: " + std::to_string(FR.Rounds.size()) +
                  " round(s), fixpoint " + (FR.Fixpoint ? "yes" : "no") +
                  ", one-shot " + fmtSpeedup(FR.OneShotSpeedup) +
                  ", best " + fmtSpeedup(FR.BestSpeedup) + "\n";
  for (const FeedbackRound &R : FR.Rounds) {
    S += "  round " + std::to_string(R.Round) + ": " +
         std::to_string(R.Cycles) + " cycles, speedup " +
         fmtSpeedup(R.Speedup) + (R.Accepted ? ", accepted" : ", rejected") +
         "\n";
    for (const FeedbackDecision &D : R.Decisions)
      S += "    load fn" + std::to_string(ir::staticIdFunc(D.LoadSid)) +
           ":@" + std::to_string(ir::staticIdInst(D.LoadSid)) + " " +
           D.Action + ": " + D.Why + "\n";
  }
  return S;
}
