//===- core/ReportRender.cpp - Canonical adaptation-report text -----------===//

#include "core/ReportRender.h"

#include "core/PostPassTool.h"

using namespace ssp;
using namespace ssp::core;

std::string core::renderReportText(uint64_t BaselineCycles,
                                   const AdaptationReport &Rep) {
  std::string S = "profiled: " + std::to_string(BaselineCycles) +
                  " baseline in-order cycles\n";
  S += "delinquent loads: " + std::to_string(Rep.DelinquentLoads) +
       "   slices: " + std::to_string(Rep.numSlices()) +
       " (interprocedural " + std::to_string(Rep.numInterprocedural()) +
       ")   triggers: " + std::to_string(Rep.Rewrite.TriggersInserted) + "\n";
  for (const SliceReport &R : Rep.Slices)
    S += "  " + R.FunctionName + " @ " + R.Load.str() + ": " +
         std::to_string(R.Size) + " insts, " + std::to_string(R.LiveIns) +
         " live-ins, " + std::string(sched::modelName(R.Model)) +
         " SP, slack " + std::to_string(R.SlackPerIteration) + "\n";
  S += "verified: " + std::to_string(Rep.VerifyErrors) + " error(s), " +
       std::to_string(Rep.VerifyWarnings) + " warning(s)\n";
  return S;
}
