//===- cache/Cache.cpp - Three-level cache hierarchy ----------------------===//

#include "cache/Cache.h"

#include <algorithm>
#include <cassert>

using namespace ssp;
using namespace ssp::cache;

//===----------------------------------------------------------------------===//
// CacheLevel
//===----------------------------------------------------------------------===//

CacheLevel::CacheLevel(const CacheParams &P) : Params(P) {
  assert(P.LineBytes > 0 && P.Assoc > 0 && "degenerate cache geometry");
  assert(P.SizeBytes % (P.LineBytes * P.Assoc) == 0 &&
         "cache size must be divisible by way size");
  NumSets = P.SizeBytes / (P.LineBytes * P.Assoc);
  assert(NumSets > 0 && "cache must have at least one set");
  if ((NumSets & (NumSets - 1)) == 0)
    SetMask = NumSets - 1;
  Ways.resize(static_cast<size_t>(NumSets) * P.Assoc);
}

bool CacheLevel::lookup(uint64_t LineAddr) {
  uint32_t Set = setOf(LineAddr);
  Way *Base = &Ways[static_cast<size_t>(Set) * Params.Assoc];
  for (uint32_t W = 0; W < Params.Assoc; ++W) {
    if (Base[W].Valid && Base[W].Tag == LineAddr) {
      Base[W].LastUse = ++UseClock;
      return true;
    }
  }
  return false;
}

bool CacheLevel::contains(uint64_t LineAddr) const {
  uint32_t Set = setOf(LineAddr);
  const Way *Base = &Ways[static_cast<size_t>(Set) * Params.Assoc];
  for (uint32_t W = 0; W < Params.Assoc; ++W)
    if (Base[W].Valid && Base[W].Tag == LineAddr)
      return true;
  return false;
}

void CacheLevel::insert(uint64_t LineAddr) {
  uint32_t Set = setOf(LineAddr);
  Way *Base = &Ways[static_cast<size_t>(Set) * Params.Assoc];
  Way *Victim = &Base[0];
  for (uint32_t W = 0; W < Params.Assoc; ++W) {
    if (Base[W].Valid && Base[W].Tag == LineAddr) {
      Base[W].LastUse = ++UseClock; // Already present; refresh.
      return;
    }
    if (!Base[W].Valid) {
      Victim = &Base[W];
      break;
    }
    if (Base[W].LastUse < Victim->LastUse)
      Victim = &Base[W];
  }
  Victim->Valid = true;
  Victim->Tag = LineAddr;
  Victim->LastUse = ++UseClock;
}

void CacheLevel::reset() {
  for (Way &W : Ways)
    W.Valid = false;
  UseClock = 0;
}

//===----------------------------------------------------------------------===//
// TLB
//===----------------------------------------------------------------------===//

void TLB::unlink(uint32_t Slot) {
  uint32_t P = PrevS[Slot], N = NextS[Slot];
  if (P != NoSlot)
    NextS[P] = N;
  else
    Head = N;
  if (N != NoSlot)
    PrevS[N] = P;
  else
    Tail = P;
}

void TLB::pushFront(uint32_t Slot) {
  PrevS[Slot] = NoSlot;
  NextS[Slot] = Head;
  if (Head != NoSlot)
    PrevS[Head] = Slot;
  Head = Slot;
  if (Tail == NoSlot)
    Tail = Slot;
}

bool TLB::touch(uint64_t Page, uint32_t Capacity) {
  if (Capacity == 0)
    return false;
  auto It = Map.find(Page);
  if (It != Map.end()) {
    uint32_t Slot = It->second;
    if (Head != Slot) {
      unlink(Slot);
      pushFront(Slot);
    }
    return true;
  }
  uint32_t Slot;
  if (PageOf.size() < Capacity) {
    Slot = static_cast<uint32_t>(PageOf.size());
    PageOf.push_back(Page);
    PrevS.push_back(NoSlot);
    NextS.push_back(NoSlot);
  } else {
    Slot = Tail;
    Map.erase(PageOf[Slot]);
    unlink(Slot);
    PageOf[Slot] = Page;
  }
  Map.emplace(Page, Slot);
  pushFront(Slot);
  return false;
}

void TLB::clear() {
  PageOf.clear();
  PrevS.clear();
  NextS.clear();
  Head = Tail = NoSlot;
  Map.clear();
}

//===----------------------------------------------------------------------===//
// CacheHierarchy
//===----------------------------------------------------------------------===//

CacheHierarchy::CacheHierarchy(const CacheConfig &Cfg, unsigned NumThreads)
    : Cfg(Cfg), L1(Cfg.L1), L2(Cfg.L2), L3(Cfg.L3) {
  if (Cfg.L1.LineBytes > 0 &&
      (Cfg.L1.LineBytes & (Cfg.L1.LineBytes - 1)) == 0) {
    LineShift = 0;
    while ((1u << LineShift) != Cfg.L1.LineBytes)
      ++LineShift;
  }
  Fill.resize(Cfg.FillBufferEntries);
  TLBs.resize(NumThreads);
  TLBLastPage.resize(NumThreads, 0);
  TLBLastValid.resize(NumThreads, 0);
}

CacheHierarchy::FillEntry *CacheHierarchy::findInFlight(uint64_t LineAddr,
                                                        uint64_t Cycle) {
  for (FillEntry &E : Fill) {
    if (!E.Valid)
      continue;
    if (E.ReadyCycle <= Cycle) {
      E.Valid = false; // Fill completed; retire lazily.
      continue;
    }
    if (E.LineAddr == LineAddr)
      return &E;
  }
  return nullptr;
}

uint64_t CacheHierarchy::allocateFill(uint64_t LineAddr, uint64_t ReadyCycle,
                                      Level From, uint64_t Cycle) {
  FillEntry *Victim = nullptr;
  uint64_t EarliestReady = UINT64_MAX;
  for (FillEntry &E : Fill) {
    if (!E.Valid || E.ReadyCycle <= Cycle) {
      E.Valid = false;
      Victim = &E;
      break;
    }
    if (E.ReadyCycle < EarliestReady) {
      EarliestReady = E.ReadyCycle;
      Victim = &E;
    }
  }
  assert(Victim && "fill buffer has no entries at all");
  uint64_t ExtraWait = 0;
  if (Victim->Valid) {
    // All 16 entries busy: the request waits for the earliest completion.
    ExtraWait = EarliestReady - Cycle;
    Tot.FillBufferStallCycles += ExtraWait;
  }
  Victim->Valid = true;
  Victim->LineAddr = LineAddr;
  Victim->ReadyCycle = ReadyCycle + ExtraWait;
  Victim->From = From;
  if (Victim->ReadyCycle > FillLatestReady)
    FillLatestReady = Victim->ReadyCycle;
  return ExtraWait;
}

uint32_t CacheHierarchy::tlbAccess(unsigned Tid, uint64_t Addr) {
  uint64_t Page = Addr >> 12;
  if (TLBLastValid[Tid] && TLBLastPage[Tid] == Page)
    return 0;
  TLBLastPage[Tid] = Page;
  TLBLastValid[Tid] = 1;
  if (TLBs[Tid].touch(Page, Cfg.TLBEntries))
    return 0;
  ++Tot.TLBMisses;
  return Cfg.TLBMissPenalty;
}

AccessResult CacheHierarchy::access(uint64_t Addr, uint64_t Cycle,
                                    ir::StaticId Pc, unsigned Tid,
                                    bool CollectProfile) {
  AccessResult R;
  ++Tot.Accesses;

  // Idealized modes (Figure 2): the access behaves as an L1 hit and leaves
  // the cache state untouched.
  if (PerfectMemory || (!PerfectLoads.empty() && PerfectLoads.count(Pc))) {
    R.ServedBy = Level::L1;
    R.Latency = Cfg.L1.LatencyCycles;
    R.ReadyCycle = Cycle + R.Latency;
    ++Tot.Hits[0];
    if (CollectProfile) {
      PcCacheStats &S = Profile[Pc];
      ++S.Accesses;
      ++S.Hits[0];
    }
    return R;
  }

  uint64_t Line = lineOf(Addr);
  uint32_t TLBPenalty = tlbAccess(Tid, Addr);

  // Once every fill has landed, the 16-entry in-flight scan cannot match:
  // skip it. (Stale Valid flags are harmless — both findInFlight and
  // allocateFill treat ReadyCycle <= Cycle as free.)
  FillEntry *E = Cycle < FillLatestReady ? findInFlight(Line, Cycle) : nullptr;

  // A line already in transit to L1 is a partial hit (Figure 9).
  if (E) {
    R.ServedBy = E->From;
    R.Partial = true;
    R.ReadyCycle = E->ReadyCycle + TLBPenalty;
    R.Latency = static_cast<uint32_t>(R.ReadyCycle - Cycle);
  } else if (L1.lookup(Line)) {
    // Fast path: the overwhelmingly common L1 hit. Bypass the generic
    // level-indexed bookkeeping below; bail out immediately when the access
    // does not feed the per-PC profile (speculative touches and stores).
    R.ServedBy = Level::L1;
    R.Latency = Cfg.L1.LatencyCycles + TLBPenalty;
    R.ReadyCycle = Cycle + R.Latency;
    ++Tot.Hits[0];
    if (CollectProfile) {
      PcCacheStats &S = Profile[Pc];
      ++S.Accesses;
      ++S.Hits[0];
      if (R.Latency > Cfg.L1.LatencyCycles)
        S.MissCycles += R.Latency - Cfg.L1.LatencyCycles;
    }
    return R;
  } else {
    // L1 miss: walk down the hierarchy, then install the line everywhere
    // and occupy a fill-buffer entry until the data arrives at L1.
    if (L2.lookup(Line)) {
      R.ServedBy = Level::L2;
      R.Latency = Cfg.L2.LatencyCycles;
    } else if (L3.lookup(Line)) {
      R.ServedBy = Level::L3;
      R.Latency = Cfg.L3.LatencyCycles;
      L2.insert(Line);
    } else {
      R.ServedBy = Level::Mem;
      R.Latency = Cfg.MemLatency;
      L3.insert(Line);
      L2.insert(Line);
    }
    R.Latency += TLBPenalty;
    uint64_t ExtraWait =
        allocateFill(Line, Cycle + R.Latency, R.ServedBy, Cycle);
    R.Latency += static_cast<uint32_t>(ExtraWait);
    R.ReadyCycle = Cycle + R.Latency;
    L1.insert(Line);
  }

  unsigned LevelIdx = static_cast<unsigned>(R.ServedBy);
  if (R.Partial)
    ++Tot.Partials[LevelIdx];
  else
    ++Tot.Hits[LevelIdx];

  if (CollectProfile) {
    PcCacheStats &S = Profile[Pc];
    ++S.Accesses;
    if (R.Partial)
      ++S.Partials[LevelIdx];
    else
      ++S.Hits[LevelIdx];
    if (R.Latency > Cfg.L1.LatencyCycles)
      S.MissCycles += R.Latency - Cfg.L1.LatencyCycles;
  }
  return R;
}

void CacheHierarchy::warmAccess(uint64_t Addr, ir::StaticId Pc, unsigned Tid) {
  // The idealized modes leave cache state untouched; warming is a no-op.
  if (PerfectMemory || (!PerfectLoads.empty() && PerfectLoads.count(Pc)))
    return;
  uint64_t Line = lineOf(Addr);

  // TLB state evolution, minus the penalty bookkeeping. The one-entry MRU
  // filter makes the repeated-page case (the common one in warmed loops)
  // two compares.
  uint64_t Page = Addr >> 12;
  if (!TLBLastValid[Tid] || TLBLastPage[Tid] != Page) {
    TLBLastPage[Tid] = Page;
    TLBLastValid[Tid] = 1;
    TLBs[Tid].touch(Page, Cfg.TLBEntries);
  }

  if (L1.lookup(Line))
    return;
  if (!L2.lookup(Line)) {
    if (!L3.lookup(Line))
      L3.insert(Line);
    L2.insert(Line);
  }
  L1.insert(Line);
}

void CacheHierarchy::reset() {
  L1.reset();
  L2.reset();
  L3.reset();
  for (FillEntry &E : Fill)
    E.Valid = false;
  FillLatestReady = 0;
  for (TLB &T : TLBs)
    T.clear();
  std::fill(TLBLastValid.begin(), TLBLastValid.end(), 0);
  Profile.clear();
  Tot = Totals();
}
