//===- cache/Cache.h - Three-level cache hierarchy with fill buffer -------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory hierarchy of the research Itanium model (paper, Table 1):
/// separate 16KB 4-way L1 (we model the data side; instruction fetch is
/// modeled as always hitting), a shared 256KB 4-way L2, a shared 3072KB
/// 12-way L3, 64-byte lines everywhere, a 16-entry fill buffer, 230-cycle
/// memory and a 30-cycle TLB miss penalty. The fill buffer tracks lines in
/// transit so that a second access to an in-flight line becomes a *partial*
/// hit, the category Figure 9 of the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_CACHE_CACHE_H
#define SSP_CACHE_CACHE_H

#include "ir/DenseSidMap.h"
#include "ir/Program.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ssp::cache {

/// Where an access was served from.
enum class Level : uint8_t { L1 = 0, L2 = 1, L3 = 2, Mem = 3 };

inline const char *levelName(Level L) {
  switch (L) {
  case Level::L1:
    return "L1";
  case Level::L2:
    return "L2";
  case Level::L3:
    return "L3";
  case Level::Mem:
    return "Mem";
  }
  return "?";
}

/// Geometry and latency of one cache level.
struct CacheParams {
  uint32_t SizeBytes;
  uint32_t Assoc;
  uint32_t LineBytes;
  uint32_t LatencyCycles;
};

/// Full hierarchy configuration. Defaults are the paper's Table 1.
struct CacheConfig {
  CacheParams L1 = {16 * 1024, 4, 64, 2};
  CacheParams L2 = {256 * 1024, 4, 64, 14};
  CacheParams L3 = {3072 * 1024, 12, 64, 30};
  uint32_t MemLatency = 230;
  uint32_t FillBufferEntries = 16;
  uint32_t TLBEntries = 64;
  uint32_t TLBMissPenalty = 30;
};

/// The outcome of one data access.
struct AccessResult {
  Level ServedBy = Level::L1;
  bool Partial = false;        ///< Line was already in transit to L1.
  uint32_t Latency = 0;        ///< Load-to-use latency in cycles.
  uint64_t ReadyCycle = 0;     ///< Cycle the value becomes available.
};

/// One set-associative, LRU, write-allocate cache array.
class CacheLevel {
public:
  explicit CacheLevel(const CacheParams &P);

  /// Returns true and refreshes LRU state if \p LineAddr is present.
  bool lookup(uint64_t LineAddr);

  /// Returns true if \p LineAddr is present, without updating LRU state.
  bool contains(uint64_t LineAddr) const;

  /// Inserts \p LineAddr, evicting the LRU way of its set if needed.
  void insert(uint64_t LineAddr);

  /// Drops every line (used between simulation phases).
  void reset();

  uint32_t latency() const { return Params.LatencyCycles; }

private:
  struct Way {
    uint64_t Tag = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  /// Set index of a *line address* (already divided by the line size). For
  /// the common power-of-two geometries this is a mask; degenerate sweep
  /// configurations fall back to modulo. NumSets > 0 is asserted at
  /// construction.
  uint32_t setOf(uint64_t LineAddr) const {
    if (SetMask != 0)
      return static_cast<uint32_t>(LineAddr & SetMask);
    return static_cast<uint32_t>(LineAddr % NumSets);
  }

  CacheParams Params;
  uint32_t NumSets;
  uint32_t SetMask = 0; ///< NumSets - 1 when NumSets is a power of two.
  std::vector<Way> Ways; ///< NumSets * Assoc, set-major.
  uint64_t UseClock = 0;
};

/// One fully-associative exact-LRU translation buffer in O(1) per touch:
/// a page->slot hash map plus an intrusive LRU list over fixed slots.
/// Eviction picks the list tail — the same entry a least-use-stamp scan
/// would pick — so the resident-page set evolves identically to the
/// classic stamp implementation while costing a hash probe instead of a
/// capacity-long scan (which sat on both the detailed issue path and the
/// functional-warming path for every access).
class TLB {
public:
  /// Touches \p Page: returns true on a hit (refreshing recency), false
  /// on a miss (inserting, evicting the LRU page when full). A
  /// zero-capacity TLB misses every touch and holds nothing.
  bool touch(uint64_t Page, uint32_t Capacity);

  /// Drops every translation.
  void clear();

private:
  static constexpr uint32_t NoSlot = UINT32_MAX;

  void unlink(uint32_t Slot);
  void pushFront(uint32_t Slot);

  std::vector<uint64_t> PageOf; ///< Slot -> resident page.
  std::vector<uint32_t> PrevS, NextS; ///< Intrusive LRU list (MRU at Head).
  uint32_t Head = NoSlot, Tail = NoSlot;
  std::unordered_map<uint64_t, uint32_t> Map; ///< Page -> slot.
};

/// Per-static-load hit/miss statistics, keyed by ir::StaticId. This is both
/// the cache profile the tool's delinquent-load identification consumes
/// (Section 3.1) and the data behind the paper's Figure 9.
struct PcCacheStats {
  uint64_t Accesses = 0;
  uint64_t Hits[4] = {0, 0, 0, 0};     ///< Indexed by Level.
  uint64_t Partials[4] = {0, 0, 0, 0}; ///< Partial hits, by fetch level.
  uint64_t MissCycles = 0; ///< Total latency beyond an L1 hit.

  uint64_t l1Misses() const {
    return Hits[1] + Hits[2] + Hits[3] + Partials[1] + Partials[2] +
           Partials[3];
  }
};

/// Dense (two-array-indexations, no hashing) per-StaticId profile map; the
/// profile update sits on the simulator's issue path for every main-thread
/// load, so lookup cost is visible in end-to-end wall clock.
using CacheProfile = ir::DenseSidMap<PcCacheStats>;

/// The full shared hierarchy, including the fill buffer and per-thread TLBs.
class CacheHierarchy {
public:
  explicit CacheHierarchy(const CacheConfig &Cfg = CacheConfig(),
                          unsigned NumThreads = 4);

  /// Performs one data access at time \p Cycle for static load \p Pc from
  /// hardware thread \p Tid. When \p CollectProfile is set, the access is
  /// recorded in the per-PC profile (main-thread demand loads only).
  AccessResult access(uint64_t Addr, uint64_t Cycle, ir::StaticId Pc,
                      unsigned Tid, bool CollectProfile);

  /// Functional-warming touch: evolves the replacement state (TLB and the
  /// three LRU arrays) exactly as a demand access from thread \p Tid would,
  /// but models no timing — no fill buffer, no latency, no counters, no
  /// profile. An order of magnitude cheaper than access(); this is what
  /// keeps the sampled simulator's functional level fast (see
  /// sim::warmForward). The approximation relative to access(): a warmed
  /// miss installs its line instantly instead of occupying a fill-buffer
  /// entry, so a detailed interval never starts with warm-initiated fills
  /// still in flight.
  void warmAccess(uint64_t Addr, ir::StaticId Pc, unsigned Tid);

  /// When enabled, every access hits in L1 (Figure 2's "perfect memory").
  void setPerfectMemory(bool Enable) { PerfectMemory = Enable; }

  /// Loads in \p Ids always hit L1 (Figure 2's "perfect delinquent loads").
  void setPerfectLoads(std::unordered_set<ir::StaticId> Ids) {
    PerfectLoads = std::move(Ids);
  }

  const CacheProfile &profile() const { return Profile; }
  CacheProfile &profile() { return Profile; }

  const CacheConfig &config() const { return Cfg; }

  /// Global counters (all threads, all accesses).
  struct Totals {
    uint64_t Accesses = 0;
    uint64_t Hits[4] = {0, 0, 0, 0};
    uint64_t Partials[4] = {0, 0, 0, 0};
    uint64_t FillBufferStallCycles = 0;
    uint64_t TLBMisses = 0;
  };
  const Totals &totals() const { return Tot; }

  /// Drops all cached state and statistics.
  void reset();

private:
  struct FillEntry {
    uint64_t LineAddr = 0;
    uint64_t ReadyCycle = 0;
    Level From = Level::Mem;
    bool Valid = false;
  };

  /// Line address of \p Addr. The shift is precomputed at construction for
  /// the (universal) power-of-two line size; LineShift < 0 falls back to
  /// division for degenerate sweep configurations.
  uint64_t lineOf(uint64_t Addr) const {
    if (LineShift >= 0)
      return Addr >> LineShift;
    return Addr / Cfg.L1.LineBytes;
  }

  /// Looks up \p LineAddr in the fill buffer; returns entry or nullptr.
  FillEntry *findInFlight(uint64_t LineAddr, uint64_t Cycle);

  /// Allocates a fill-buffer entry; if all 16 are busy the request waits for
  /// the earliest retirement, and the extra wait is returned.
  uint64_t allocateFill(uint64_t LineAddr, uint64_t ReadyCycle, Level From,
                        uint64_t Cycle);

  /// Simple per-thread fully-associative LRU TLB; returns the penalty.
  uint32_t tlbAccess(unsigned Tid, uint64_t Addr);

  CacheConfig Cfg;
  CacheLevel L1, L2, L3;
  int LineShift = -1; ///< log2(L1.LineBytes) when it is a power of two.
  std::vector<FillEntry> Fill;
  /// Latest ReadyCycle over all fill-buffer allocations: when the current
  /// cycle is past it, no fill can be in flight and the 16-entry scan is
  /// skipped entirely (the common L1-hit fast path).
  uint64_t FillLatestReady = 0;
  std::vector<TLB> TLBs; ///< One per hardware thread.
  /// One-entry MRU filter per thread: consecutive accesses to the same page
  /// skip the TLB probe. Skipping the recency refresh on those hits cannot
  /// change eviction decisions — the filtered entry already sits at the
  /// head of the LRU list until another page is touched.
  std::vector<uint64_t> TLBLastPage;
  std::vector<uint8_t> TLBLastValid;
  CacheProfile Profile;
  Totals Tot;
  bool PerfectMemory = false;
  std::unordered_set<ir::StaticId> PerfectLoads;
};

} // namespace ssp::cache

#endif // SSP_CACHE_CACHE_H
