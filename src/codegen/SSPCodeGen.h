//===- codegen/SSPCodeGen.h - SSP-enabled binary rewriting ----------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary rewriting backend (Section 3.4.2 / Figure 7). For every
/// adapted load the rewriter emits, appended after the trigger's function:
///
///   * a *stub block* — the chk.c recovery code run by the main thread:
///     copy the live-in values into the live-in buffer, spawn the first
///     slice thread, and rfi back to the interrupted instruction; and
///   * *slice blocks* — the p-slice run by the speculative thread: copy
///     live-ins from the LIB, execute the critical sub-slice, stage the
///     next iteration's live-ins, conditionally chain-spawn, execute the
///     non-critical sub-slice, prefetch the delinquent addresses, and
///     kill the thread.
///
/// Triggers are installed by inserting chk.c instructions at the planned
/// positions (the paper replaces an existing nop slot; inserting is
/// equivalent in this IR since bundle padding is implicit).
///
/// Emitted p-slices are if-converted straight-line code: control
/// dependences inside the slice are speculated through (their branches are
/// dropped), in the spirit of control-flow speculative slicing — a wrong
/// speculative path can only produce a useless prefetch, never corrupt
/// state. The spawn gate is the one synthesized branch.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_CODEGEN_SSPCODEGEN_H
#define SSP_CODEGEN_SSPCODEGEN_H

#include "sched/Scheduler.h"
#include "slicer/Slicer.h"
#include "trigger/TriggerPlacer.h"
#include "verify/Manifest.h"

#include <cstdint>
#include <vector>

namespace ssp::codegen {

/// Everything the rewriter needs for one installed slice.
struct AdaptedLoad {
  slicer::Slice Slice;
  sched::ScheduledSlice Sched;
  trigger::TriggerPlan Plan;
  /// Chain budget (iterations) when the spawn condition is predicted or
  /// absent; derived from the profiled trip count.
  uint64_t TripBudget = 64;
  /// Total emission count for inner-loop members (see
  /// ScheduledSlice::InnerLoopMembers).
  unsigned InnerUnroll = 2;
  /// Outward steps the region traversal took to reach the slice's region
  /// (recorded into the manifest for the feedback audit).
  unsigned RegionDepth = 0;
  /// Additional per-calling-context sections (basic SP only): each is
  /// emitted after a fresh live-in reload, so sections may redefine the
  /// same registers (e.g. treeadd's left- and right-child chains).
  std::vector<sched::ScheduledSlice> ExtraSections;
  /// Prefetch targets per extra section (parallel to ExtraSections).
  std::vector<std::vector<analysis::InstRef>> ExtraTargets;
};

/// Statistics about one rewrite.
struct RewriteInfo {
  unsigned TriggersInserted = 0;
  unsigned StubBlocks = 0;
  unsigned SliceBlocks = 0;
  unsigned SliceInsts = 0; ///< Instructions emitted into slice blocks.
  unsigned StreamDescriptors = 0; ///< Slices classified as stream patterns.
};

/// Produces the SSP-enhanced binary: a clone of \p Orig with triggers
/// inserted and stub/slice attachments appended. Static ids of original
/// instructions are preserved. The result is verified structurally; a
/// malformed result aborts (tool bug).
///
/// When \p Manifest is non-null it is filled with the rewrite *plan*
/// (planned prefetch targets, trip budgets, trigger count, block
/// placement), recorded from the AdaptedLoad inputs rather than from the
/// emitted code: the verification pipeline diffs plan against emission, so
/// an emission bug that drops a prefetch or the budget staging is caught.
///
/// With \p EnableStreams, every chained budget-bounded slice is run through
/// analysis::classifyStream; slices matching a regular pattern get a
/// StreamDescriptor attached to the program (and mirrored into the
/// manifest), which the simulator's stream engine executes directly at
/// trigger time. Off by default: the emitted binary is then bit-identical
/// to an adaptation without classification.
ir::Program rewriteWithSlices(const ir::Program &Orig,
                              const std::vector<AdaptedLoad> &Loads,
                              RewriteInfo *Info = nullptr,
                              verify::AdaptationManifest *Manifest = nullptr,
                              bool EnableStreams = false);

} // namespace ssp::codegen

#endif // SSP_CODEGEN_SSPCODEGEN_H
