//===- codegen/SSPCodeGen.cpp - SSP-enabled binary rewriting --------------===//

#include "codegen/SSPCodeGen.h"

#include "analysis/StreamPatterns.h"
#include "ir/IRBuilder.h"
#include "sim/ThreadContext.h"
#include "ir/Verifier.h"
#include "support/Assert.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <set>

using namespace ssp;
using namespace ssp::codegen;
using namespace ssp::analysis;
using namespace ssp::ir;

namespace {

/// Registers referenced anywhere in the emitted slice (sources, dests and
/// live-ins), used to pick scratch registers for the chain budget.
std::set<Reg> collectUsedRegs(const Program &P, const AdaptedLoad &AL) {
  std::set<Reg> Used;
  auto AddInst = [&](const InstRef &I) {
    const Instruction &Inst = I.get(P);
    Inst.forEachUse([&](Reg R) { Used.insert(R); });
    Reg D = Inst.def();
    if (D.isValid())
      Used.insert(D);
  };
  for (const InstRef &I : AL.Sched.Prologue)
    AddInst(I);
  for (const InstRef &I : AL.Sched.Critical)
    AddInst(I);
  for (const InstRef &I : AL.Sched.NonCritical)
    AddInst(I);
  for (const sched::ScheduledSlice &ES : AL.ExtraSections)
    for (const std::vector<InstRef> *Seq :
         {&ES.Prologue, &ES.Critical, &ES.NonCritical})
      for (const InstRef &I : *Seq)
        AddInst(I);
  for (Reg R : AL.Slice.LiveIns)
    Used.insert(R);
  for (const InstRef &T : AL.Slice.TargetLoads)
    AddInst(T);
  return Used;
}

/// True when emitSliceInst would copy this opcode into a slice (control
/// transfers and stores are dropped).
bool sliceEmittable(Opcode Op) {
  switch (Op) {
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Call:
  case Opcode::CallInd:
  case Opcode::Ret:
  case Opcode::Halt:
  case Opcode::ChkC:
  case Opcode::Rfi:
  case Opcode::Spawn:
  case Opcode::KillThread:
  case Opcode::Nop:
  case Opcode::Store:
  case Opcode::StoreF:
    return false;
  default:
    return true;
  }
}

Reg pickScratchInt(const std::set<Reg> &Used) {
  for (int N = NumIntRegs - 1; N > 0; --N) {
    Reg R = ireg(static_cast<unsigned>(N));
    if (!Used.count(R))
      return R;
  }
  ssp_unreachable("no free integer register for the chain budget");
}

Reg pickScratchPred(const std::set<Reg> &Used) {
  for (int N = NumPredRegs - 1; N > 0; --N) {
    Reg R = preg(static_cast<unsigned>(N));
    if (!Used.count(R))
      return R;
  }
  ssp_unreachable("no free predicate register for the chain budget");
}

/// Emits one slice-member instruction into the current block, dropping
/// control transfers (if-conversion; see header comment).
void emitSliceInst(IRBuilder &B, const Program &Src, const InstRef &Ref,
                   unsigned &Count) {
  const Instruction &I = Ref.get(Src);
  // Control transfers are speculated through (if-conversion); stores are
  // the no-store invariant of Section 2 and never enter a p-slice.
  if (!sliceEmittable(I.Op))
    return;
  Instruction Copy = I;
  Copy.Id = 0; // Reassigned by emit().
  B.emit(Copy);
  ++Count;
}

} // namespace

Program ssp::codegen::rewriteWithSlices(const Program &Orig,
                                        const std::vector<AdaptedLoad> &Loads,
                                        RewriteInfo *Info,
                                        verify::AdaptationManifest *Manifest,
                                        bool EnableStreams) {
  Program New = Orig.clone();
  IRBuilder B(New);
  RewriteInfo Stats;
  if (Manifest)
    *Manifest = verify::AdaptationManifest();

  // Trigger insertions are deferred so that block instruction indices from
  // the plans (computed on the original layout) stay valid. Key: (func,
  // block) -> insertions; each remembers which manifest slice it belongs
  // to (and whether it is a restart trigger) so the chk.c static ids
  // assigned at insertion time can be recorded for attribution joins.
  struct PendingTrigger {
    uint32_t Idx = 0;       ///< Instruction index within the block.
    uint32_t Stub = 0;      ///< Stub block the chk.c targets.
    int SliceIdx = -1;      ///< Manifest slice index (-1: no manifest).
    bool Restart = false;   ///< Chain restart trigger (vs cut-set).
  };
  std::map<std::pair<uint32_t, uint32_t>, std::vector<PendingTrigger>>
      PendingTriggers;

  for (const AdaptedLoad &AL : Loads) {
    if (!AL.Slice.Valid || AL.Plan.Triggers.empty())
      continue;
    uint32_t Func = AL.Plan.Triggers.front().Where.Func;
    B.setFunction(Func);

    bool Chaining = AL.Sched.Model == sched::SPModel::Chaining;
    bool HasPrologue = Chaining && !AL.Sched.Prologue.empty();

    // LIB slot layouts. The stub stages the slice live-ins for the first
    // spawned thread (the prologue when present, else the first chain
    // link); the prologue re-stages the chain live-ins for the chain.
    std::vector<Reg> ChainLiveIns = AL.Sched.ChainLiveIns;
    std::vector<Reg> StubLiveIns =
        HasPrologue || !Chaining ? AL.Slice.LiveIns : ChainLiveIns;

    // Widen the live-in lists with uses that are upward-exposed in the
    // straight-line emission order. The slicer resolves a loop-carried use
    // against the in-slice definition from the previous iteration, so the
    // register is not in its live-in set; but once the slice is laid out
    // as a straight line the first use precedes every definition and would
    // read the spawned thread's zeroed register file. The main thread
    // holds the wanted value at trigger time, so such registers are
    // marshalled through the LIB like any other live-in.
    auto AppendExposed = [&](std::vector<Reg> &LiveIns,
                             std::initializer_list<
                                 const std::vector<InstRef> *>
                                 Seqs,
                             const std::vector<InstRef> *PrefTargets,
                             const std::vector<Reg> &TrailingUses) {
      std::set<Reg> Live(LiveIns.begin(), LiveIns.end());
      std::set<Reg> Defined;
      auto Use = [&](Reg R) {
        if (!R.isValid() || Live.count(R) || Defined.count(R))
          return;
        if (R.Num == 0 &&
            (R.Cls == RegClass::Int || R.Cls == RegClass::Pred))
          return; // Hardwired r0/p0 read the same in every thread.
        Live.insert(R);
        LiveIns.push_back(R);
      };
      for (const std::vector<InstRef> *Seq : Seqs)
        for (const InstRef &Ref : *Seq) {
          const Instruction &I = Ref.get(New);
          if (!sliceEmittable(I.Op))
            continue;
          I.forEachUse(Use);
          Reg D = I.def();
          if (D.isValid())
            Defined.insert(D);
        }
      if (PrefTargets)
        for (const InstRef &T : *PrefTargets)
          Use(T.get(New).Src1);
      for (Reg R : TrailingUses)
        Use(R);
    };
    if (Chaining) {
      // Header + fallthrough body run with only ChainLiveIns loaded.
      AppendExposed(ChainLiveIns, {&AL.Sched.Critical, &AL.Sched.NonCritical},
                    &AL.Slice.TargetLoads, {});
      if (HasPrologue)
        // The prologue must produce every chain live-in before its spawn;
        // ones it neither loads nor computes come from the stub.
        AppendExposed(StubLiveIns, {&AL.Sched.Prologue}, nullptr,
                      ChainLiveIns);
      else
        StubLiveIns = ChainLiveIns;
    } else {
      AppendExposed(StubLiveIns, {&AL.Sched.NonCritical},
                    &AL.Slice.TargetLoads, {});
      // Extra sections re-load the full live-in set, so each only needs
      // its own upward-exposed uses covered.
      for (size_t SI = 0; SI < AL.ExtraSections.size(); ++SI)
        AppendExposed(StubLiveIns, {&AL.ExtraSections[SI].NonCritical},
                      SI < AL.ExtraTargets.size() ? &AL.ExtraTargets[SI]
                                                  : &AL.Slice.TargetLoads,
                      {});
    }

    // The LIB is finite; an adaptation whose live-ins cannot be marshalled
    // (plus one slot for the trip budget) is dropped rather than emitted
    // with threads reading unstaged registers.
    if (StubLiveIns.size() + 1 > sim::MaxLIBSlots ||
        ChainLiveIns.size() + 1 > sim::MaxLIBSlots)
      continue;
    const uint32_t BudgetSlot = static_cast<uint32_t>(ChainLiveIns.size());

    // A chain must be bounded: gate on the slice's own condition when it
    // was scheduled, otherwise on the LIB trip budget.
    bool UseBudget =
        Chaining && (AL.Sched.PredictCondition || !AL.Sched.HasConditionBranch);

    std::set<Reg> Used = collectUsedRegs(New, AL);
    Reg BudgetReg, BudgetPred;
    if (UseBudget) {
      BudgetReg = pickScratchInt(Used);
      BudgetPred = pickScratchPred(Used);
    }

    // Emits the non-critical body: scheduled instructions, inner-loop
    // members unrolled InnerUnroll times total (the speculative thread
    // walks several inner-loop steps, e.g. a collision chain), then one
    // prefetch per targeted delinquent address.
    auto EmitBodyAndPrefetches = [&]() {
      std::set<InstRef> Inner(AL.Sched.InnerLoopMembers.begin(),
                              AL.Sched.InnerLoopMembers.end());
      for (const InstRef &I : AL.Sched.NonCritical)
        emitSliceInst(B, New, I, Stats.SliceInsts);
      if (!Inner.empty() && AL.InnerUnroll > 1) {
        for (unsigned U = 1; U < AL.InnerUnroll; ++U)
          for (const InstRef &I : AL.Sched.NonCritical)
            if (Inner.count(I))
              emitSliceInst(B, New, I, Stats.SliceInsts);
      }
      std::set<std::pair<Reg, int64_t>> Prefetched;
      for (const InstRef &T : AL.Slice.TargetLoads) {
        const Instruction &L = T.get(New);
        if (Prefetched.insert({L.Src1, L.Imm}).second)
          B.prefetch(L.Src1, L.Imm);
      }
      B.killThread();
    };

    // --- Slice blocks (appended attachments) ---
    uint32_t Hdr = B.createBlock("ssp.slice.hdr", BlockKind::Slice);
    uint32_t Body = 0, SpawnBlk = 0, Pro = 0;
    if (Chaining) {
      Body = B.createBlock("ssp.slice.body", BlockKind::Slice);
      SpawnBlk = B.createBlock("ssp.slice.spawn", BlockKind::Slice);
      Stats.SliceBlocks += 2;
      if (HasPrologue) {
        Pro = B.createBlock("ssp.slice.prologue", BlockKind::Slice);
        ++Stats.SliceBlocks;
      }
    }
    ++Stats.SliceBlocks;

    B.setInsertPoint(Hdr);
    if (Chaining) {
      for (uint32_t I = 0; I < ChainLiveIns.size(); ++I)
        B.copyFromLIB(ChainLiveIns[I], I);
      if (UseBudget)
        B.copyFromLIB(BudgetReg, BudgetSlot);
    } else {
      for (uint32_t I = 0; I < StubLiveIns.size(); ++I)
        B.copyFromLIB(StubLiveIns[I], I);
    }

    for (const InstRef &I : AL.Sched.Critical)
      emitSliceInst(B, New, I, Stats.SliceInsts);

    if (Chaining) {
      // Stage the next thread's live-ins (carried values were just
      // updated by the critical sub-slice; invariants pass through).
      for (uint32_t I = 0; I < ChainLiveIns.size(); ++I)
        B.copyToLIB(I, ChainLiveIns[I]);
      if (UseBudget) {
        B.addI(BudgetReg, BudgetReg, -1);
        B.copyToLIB(BudgetSlot, BudgetReg);
        B.cmpI(CondCode::GT, BudgetPred, BudgetReg, 0);
        B.br(BudgetPred, SpawnBlk);
      } else {
        // Gate on the computed spawn condition (the loop latch predicate).
        const Instruction &CondBr = AL.Sched.ConditionBranch.get(New);
        assert(CondBr.Op == Opcode::Br);
        B.br(CondBr.Src1, SpawnBlk);
      }

      B.setInsertPoint(Body);
      EmitBodyAndPrefetches();

      B.setInsertPoint(SpawnBlk);
      B.spawn(Hdr);
      B.jmp(Body);

      if (HasPrologue) {
        // The prologue thread: compute the chain's initial live-ins from
        // the trigger-point live-ins, then launch the first chain link.
        B.setInsertPoint(Pro);
        for (uint32_t I = 0; I < StubLiveIns.size(); ++I)
          B.copyFromLIB(StubLiveIns[I], I);
        for (const InstRef &I : AL.Sched.Prologue)
          emitSliceInst(B, New, I, Stats.SliceInsts);
        for (uint32_t I = 0; I < ChainLiveIns.size(); ++I)
          B.copyToLIB(I, ChainLiveIns[I]);
        if (UseBudget)
          B.copyToLIBI(BudgetSlot, static_cast<int64_t>(AL.TripBudget));
        B.spawn(Hdr);
        B.killThread();
      }
    } else {
      // Basic SP: one straight-line thread per trigger firing. The list
      // schedule already orders prologue producers first. Extra sections
      // (other calling contexts) follow, each after a fresh live-in
      // reload so register redefinitions cannot cross-contaminate.
      std::set<InstRef> Inner(AL.Sched.InnerLoopMembers.begin(),
                              AL.Sched.InnerLoopMembers.end());
      auto EmitSection = [&](const std::vector<InstRef> &Body2,
                             const std::vector<InstRef> &Targets) {
        for (const InstRef &I : Body2)
          emitSliceInst(B, New, I, Stats.SliceInsts);
        std::set<std::pair<Reg, int64_t>> Prefetched;
        for (const InstRef &T : Targets) {
          const Instruction &L = T.get(New);
          if (Prefetched.insert({L.Src1, L.Imm}).second)
            B.prefetch(L.Src1, L.Imm);
        }
      };
      EmitSection(AL.Sched.NonCritical, AL.Slice.TargetLoads);
      if (!Inner.empty() && AL.InnerUnroll > 1) {
        std::vector<InstRef> InnerSeq;
        for (const InstRef &I : AL.Sched.NonCritical)
          if (Inner.count(I))
            InnerSeq.push_back(I);
        for (unsigned U = 1; U < AL.InnerUnroll; ++U)
          EmitSection(InnerSeq, AL.Slice.TargetLoads);
      }
      for (size_t SI = 0; SI < AL.ExtraSections.size(); ++SI) {
        for (uint32_t I = 0; I < StubLiveIns.size(); ++I)
          B.copyFromLIB(StubLiveIns[I], I);
        EmitSection(AL.ExtraSections[SI].NonCritical,
                    SI < AL.ExtraTargets.size() ? AL.ExtraTargets[SI]
                                                : AL.Slice.TargetLoads);
      }
      B.killThread();
    }

    // --- Stub block ---
    uint32_t Stub = B.createBlock("ssp.stub", BlockKind::Stub);
    ++Stats.StubBlocks;
    B.setInsertPoint(Stub);
    for (uint32_t I = 0; I < StubLiveIns.size(); ++I)
      B.copyToLIB(I, StubLiveIns[I]);
    if (UseBudget && !HasPrologue)
      B.copyToLIBI(BudgetSlot, static_cast<int64_t>(AL.TripBudget));
    B.spawn(HasPrologue ? Pro : Hdr);
    B.rfi();

    // --- Stream classification (regular patterns only) ---
    // Only the plain chained shape is classified: one section, no
    // prologue, gated on either the LIB trip budget or the slice's own
    // latch condition (a condition cmp in the critical sub-slice defines
    // only a predicate, which the classifier ignores). The classifier
    // sees exactly the instruction sequences the emitters above produced
    // (same sliceEmittable filter, same inner-unroll expansion, same
    // prefetch dedup), so the attached descriptor describes the emitted
    // slice, not merely the plan; the stream.* verify pass re-derives it
    // from the emitted blocks and any disagreement is fatal.
    std::optional<StreamDescriptor> StreamD;
    if (EnableStreams && Chaining && !HasPrologue &&
        AL.ExtraSections.empty()) {
      StreamClassifyInput SIn;
      for (const InstRef &I : AL.Sched.Critical) {
        const Instruction &Inst = I.get(New);
        if (sliceEmittable(Inst.Op))
          SIn.Critical.push_back(Inst);
      }
      std::set<InstRef> Inner(AL.Sched.InnerLoopMembers.begin(),
                              AL.Sched.InnerLoopMembers.end());
      auto AppendBody = [&](bool InnerOnly) {
        for (const InstRef &I : AL.Sched.NonCritical) {
          if (InnerOnly && !Inner.count(I))
            continue;
          const Instruction &Inst = I.get(New);
          if (sliceEmittable(Inst.Op))
            SIn.Body.push_back(Inst);
        }
      };
      AppendBody(false);
      if (!Inner.empty() && AL.InnerUnroll > 1)
        for (unsigned U = 1; U < AL.InnerUnroll; ++U)
          AppendBody(true);
      std::set<std::pair<Reg, int64_t>> Seen;
      for (const InstRef &T : AL.Slice.TargetLoads) {
        const Instruction &L = T.get(New);
        if (Seen.insert({L.Src1, L.Imm}).second)
          SIn.Targets.push_back({L.Src1, L.Imm});
      }
      SIn.Depth = static_cast<uint32_t>(
          std::min<uint64_t>(AL.TripBudget, UINT32_MAX));
      StreamD = classifyStream(SIn);
      if (StreamD) {
        StreamD->Func = Func;
        StreamD->StubBlock = Stub;
        New.addStream(*StreamD);
        ++Stats.StreamDescriptors;
      }
    }

    // --- Triggers (cut-set triggers plus chain restart triggers) ---
    int SliceIdx = Manifest ? static_cast<int>(Manifest->Slices.size()) : -1;
    for (const trigger::TriggerPlacement &T : AL.Plan.Triggers)
      PendingTriggers[{T.Where.Func, T.Where.Block}].push_back(
          {T.Where.Inst, Stub, SliceIdx, /*Restart=*/false});
    for (const trigger::TriggerPlacement &T : AL.Plan.RestartTriggers)
      PendingTriggers[{T.Where.Func, T.Where.Block}].push_back(
          {T.Where.Inst, Stub, SliceIdx, /*Restart=*/true});

    // --- Rewrite plan record for the verification pipeline ---
    // Planned prefetches mirror the emission dedup above exactly: the
    // verifier re-finds them in the emitted slice, so drift between this
    // record and the emitters is itself a detectable bug.
    if (Manifest) {
      verify::SliceManifest SM;
      SM.Func = Func;
      SM.StubBlock = Stub;
      SM.HeaderBlock = Hdr;
      SM.UsesBudget = UseBudget;
      SM.TripBudget = AL.TripBudget;
      SM.PrimaryLoadSid = ir::makeStaticId(
          AL.Slice.PrimaryLoad.Func, AL.Slice.PrimaryLoad.get(New).Id);
      {
        std::set<uint64_t> TargetSids;
        for (const InstRef &T : AL.Slice.TargetLoads)
          TargetSids.insert(ir::makeStaticId(T.Func, T.get(New).Id));
        for (const std::vector<InstRef> &Ts : AL.ExtraTargets)
          for (const InstRef &T : Ts)
            TargetSids.insert(ir::makeStaticId(T.Func, T.get(New).Id));
        SM.TargetLoadSids.assign(TargetSids.begin(), TargetSids.end());
      }
      SM.RegionDepth = AL.RegionDepth;
      SM.InnerUnroll = AL.InnerUnroll;
      SM.InnerMembers =
          static_cast<unsigned>(AL.Sched.InnerLoopMembers.size());
      std::set<std::pair<Reg, int64_t>> Planned;
      for (const InstRef &T : AL.Slice.TargetLoads) {
        const Instruction &L = T.get(New);
        Planned.insert({L.Src1, L.Imm});
      }
      if (!Chaining)
        for (size_t SI = 0; SI < AL.ExtraSections.size(); ++SI) {
          const std::vector<InstRef> &Targets =
              SI < AL.ExtraTargets.size() ? AL.ExtraTargets[SI]
                                          : AL.Slice.TargetLoads;
          for (const InstRef &T : Targets) {
            const Instruction &L = T.get(New);
            Planned.insert({L.Src1, L.Imm});
          }
        }
      SM.PrefetchTargets.assign(Planned.begin(), Planned.end());
      SM.SpecDrops = AL.Slice.SpecDrops;
      SM.SpecDrops.insert(SM.SpecDrops.end(), AL.Sched.SpecDrops.begin(),
                          AL.Sched.SpecDrops.end());
      for (const sched::ScheduledSlice &Extra : AL.ExtraSections)
        SM.SpecDrops.insert(SM.SpecDrops.end(), Extra.SpecDrops.begin(),
                            Extra.SpecDrops.end());
      std::sort(SM.SpecDrops.begin(), SM.SpecDrops.end());
      SM.SpecDrops.erase(
          std::unique(SM.SpecDrops.begin(), SM.SpecDrops.end()),
          SM.SpecDrops.end());
      if (StreamD) {
        SM.HasStream = true;
        SM.Stream = *StreamD;
      }
      Manifest->Slices.push_back(std::move(SM));
      Manifest->PlannedTriggers += static_cast<unsigned>(
          AL.Plan.Triggers.size() + AL.Plan.RestartTriggers.size());
    }
  }

  // Insert chk.c instructions, highest index first so indices stay valid.
  for (auto &[Loc, Inserts] : PendingTriggers) {
    auto [Func, Block] = Loc;
    std::sort(Inserts.begin(), Inserts.end(),
              [](const PendingTrigger &A, const PendingTrigger &B2) {
                return A.Idx > B2.Idx;
              });
    Function &F = New.func(Func);
    for (const PendingTrigger &PT : Inserts) {
      Instruction I;
      I.Op = Opcode::ChkC;
      I.Target = PT.Stub;
      I.Id = F.nextInstId();
      BasicBlock &BB = F.block(Block);
      assert(PT.Idx <= BB.Insts.size() && "trigger index out of range");
      BB.Insts.insert(BB.Insts.begin() + PT.Idx, I);
      ++Stats.TriggersInserted;
      // Record the freshly assigned static id for the attribution join.
      if (Manifest && PT.SliceIdx >= 0) {
        verify::SliceManifest &SM = Manifest->Slices[PT.SliceIdx];
        (PT.Restart ? SM.RestartTriggerSids : SM.CutTriggerSids)
            .push_back(ir::makeStaticId(Func, I.Id));
      }
    }
  }
  if (Manifest)
    for (verify::SliceManifest &SM : Manifest->Slices) {
      std::sort(SM.CutTriggerSids.begin(), SM.CutTriggerSids.end());
      std::sort(SM.RestartTriggerSids.begin(), SM.RestartTriggerSids.end());
    }

  std::vector<std::string> Diags = ir::verify(New);
  if (!Diags.empty()) {
    for (const std::string &D : Diags)
      std::fprintf(stderr, "rewriter produced invalid IR: %s\n", D.c_str());
    fatalError("SSP rewriter verification failed");
  }
  if (Info)
    *Info = Stats;
  return New;
}
