//===- obs/TraceSink.h - Lock-free per-context event trace rings ----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-trace half of the observability layer: a set of single-writer
/// ring buffers (one per hardware context) recording prefetch-lifecycle
/// events with cycle timestamps. The simulator writes to at most one ring
/// per event from its single driving thread, so the rings need no locks;
/// the layout (one writer per ring, monotonic head, drop-oldest overwrite
/// with a dropped counter) also stays correct if rings are ever written
/// from one OS thread each.
///
/// Tracing is off by default: the simulator holds a null TraceSink pointer
/// unless a sink is attached, and every emission site is guarded by that
/// pointer, so a run without a sink executes no observability code beyond
/// the null checks.
///
/// The recorded stream can be exported as Chrome trace_event JSON
/// (`ssp-sim --trace out.json`), viewable in Perfetto / chrome://tracing;
/// cycle timestamps are emitted in the "ts" microsecond field one-to-one
/// (1 cycle == 1 us on the viewer's axis). Instant events use ph:"i";
/// the event-driven simulator's idle-cycle skips are emitted as ph:"X"
/// spans covering the whole skipped range, never as per-cycle events.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_OBS_TRACESINK_H
#define SSP_OBS_TRACESINK_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ssp::obs {

/// Event vocabulary of the prefetch lifecycle (the schema is documented in
/// DESIGN.md "Observability architecture").
enum class EventKind : uint8_t {
  Trigger = 0,  ///< chk.c fired. A = trigger StaticId.
  Spawn = 1,    ///< Context spawned. A = trigger sid, B = slice sid,
                ///< Extra = spawn chain depth.
  Prefetch = 2, ///< Speculative access moved a line up. A = line number,
                ///< B = trigger sid, Extra = serving cache level.
  Retire = 3,   ///< Main thread consumed a tracked line. A = line number,
                ///< B = trigger sid, Extra = PrefetchFate.
  IdleSpan = 4, ///< Skipped idle cycles. A = CycleCat, Dur = span length.
};

inline constexpr unsigned NumEventKinds = 5;

const char *eventKindName(EventKind K);

/// One recorded event. A/B/Extra are kind-specific payloads (see
/// EventKind); keeping them as raw integers keeps obs below every other
/// library in the dependency order.
struct TraceEvent {
  uint64_t Ts = 0;   ///< Cycle timestamp.
  uint64_t Dur = 0;  ///< Span length in cycles (IdleSpan only).
  uint64_t A = 0;
  uint64_t B = 0;
  uint32_t Tid = 0;  ///< Hardware context id.
  uint32_t Extra = 0;
  EventKind Kind = EventKind::Trigger;
};

/// Bounded multi-ring event sink. Each ring holds the most recent
/// `capacity()` events written to it; older events are overwritten and
/// counted as dropped rather than blocking or reallocating.
class TraceSink {
public:
  /// \p NumRings is one per hardware context (events with Tid beyond the
  /// last ring land in the last ring). \p LogCapacity is the per-ring
  /// power-of-two capacity; ring storage is allocated on first use.
  explicit TraceSink(unsigned NumRings = 8, unsigned LogCapacity = 16);

  size_t capacity() const { return Cap; }

  /// Records one event into \p Tid's ring. Hot path: one store and a head
  /// increment once the ring storage exists.
  void record(uint32_t Tid, EventKind Kind, uint64_t Ts, uint64_t Dur,
              uint64_t A, uint64_t B, uint32_t Extra = 0) {
    Ring &R = Rings[Tid < Rings.size() ? Tid : Rings.size() - 1];
    if (R.Buf.empty())
      R.Buf.resize(Cap);
    TraceEvent &E = R.Buf[R.Head & Mask];
    E.Ts = Ts;
    E.Dur = Dur;
    E.A = A;
    E.B = B;
    E.Tid = Tid;
    E.Extra = Extra;
    E.Kind = Kind;
    ++R.Head;
  }

  /// Total events ever recorded across all rings.
  uint64_t recorded() const;
  /// Events overwritten before export (recorded minus retained).
  uint64_t dropped() const;

  /// All retained events, merged across rings and sorted by (Ts, Tid,
  /// ring order) — deterministic for a deterministic simulation.
  std::vector<TraceEvent> drain() const;

  /// Chrome trace_event JSON ("traceEvents" array plus sink metadata).
  std::string renderChromeJSON() const;
  /// Writes renderChromeJSON() to \p Path; false on I/O failure.
  bool writeChromeJSON(const std::string &Path) const;

private:
  struct Ring {
    std::vector<TraceEvent> Buf; ///< Allocated lazily, size Cap.
    uint64_t Head = 0;           ///< Monotonic write index.
  };

  std::vector<Ring> Rings;
  size_t Cap;
  size_t Mask;
};

} // namespace ssp::obs

#endif // SSP_OBS_TRACESINK_H
