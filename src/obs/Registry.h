//===- obs/Registry.h - Named counters and wall-time metrics --------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer: a registry of named
/// uint64 counters and wall-time accumulators (milliseconds) that the
/// post-pass tool and the verification pipeline report into. Like the
/// TraceSink, it is off by default — producers hold a `Registry *` that
/// is null unless the caller asked for metrics (`ssp-adapt --metrics`),
/// and every producer site is null-guarded, so a run without a registry
/// does no timing calls at all.
///
/// The registry is mutex-protected (the tool's candidate generation is
/// parallel) and keyed by std::map, so the rendered JSON is byte-stable
/// for a deterministic run.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_OBS_REGISTRY_H
#define SSP_OBS_REGISTRY_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace ssp::obs {

/// Named counter + timer store.
class Registry {
public:
  /// Adds \p Delta to counter \p Name (created at zero).
  void addCounter(const std::string &Name, uint64_t Delta = 1);
  /// Sets counter \p Name to \p Value.
  void setCounter(const std::string &Name, uint64_t Value);
  /// Adds \p Ms to timer \p Name (created at zero).
  void addTimeMs(const std::string &Name, double Ms);

  uint64_t counter(const std::string &Name) const;
  double timeMs(const std::string &Name) const;
  size_t numCounters() const;
  size_t numTimers() const;

  /// `{"counters": {...}, "timers_ms": {...}}`, keys sorted.
  std::string renderJSON() const;
  /// Writes renderJSON() to \p Path; false on I/O failure.
  bool writeJSON(const std::string &Path) const;

private:
  mutable std::mutex M;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> TimersMs;
};

/// RAII wall-clock timer: accumulates the scope's duration into
/// \p Name on destruction. A null registry makes it a no-op, so producer
/// code can time scopes unconditionally.
class ScopedTimerMs {
public:
  ScopedTimerMs(Registry *R, std::string Name)
      : R(R), Name(std::move(Name)),
        Start(R ? std::chrono::steady_clock::now()
                : std::chrono::steady_clock::time_point()) {}
  ~ScopedTimerMs() {
    if (!R)
      return;
    R->addTimeMs(Name,
                 std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - Start)
                     .count());
  }
  ScopedTimerMs(const ScopedTimerMs &) = delete;
  ScopedTimerMs &operator=(const ScopedTimerMs &) = delete;

private:
  Registry *R;
  std::string Name;
  std::chrono::steady_clock::time_point Start;
};

} // namespace ssp::obs

#endif // SSP_OBS_REGISTRY_H
