//===- obs/TraceSink.cpp - Lock-free per-context event trace rings --------===//

#include "obs/TraceSink.h"

#include <algorithm>
#include <cstdio>

using namespace ssp;
using namespace ssp::obs;

const char *ssp::obs::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Trigger:
    return "trigger";
  case EventKind::Spawn:
    return "spawn";
  case EventKind::Prefetch:
    return "prefetch";
  case EventKind::Retire:
    return "retire";
  case EventKind::IdleSpan:
    return "idle";
  }
  return "?";
}

TraceSink::TraceSink(unsigned NumRings, unsigned LogCapacity)
    : Rings(NumRings == 0 ? 1 : NumRings),
      Cap(size_t(1) << LogCapacity), Mask(Cap - 1) {}

uint64_t TraceSink::recorded() const {
  uint64_t N = 0;
  for (const Ring &R : Rings)
    N += R.Head;
  return N;
}

uint64_t TraceSink::dropped() const {
  uint64_t N = 0;
  for (const Ring &R : Rings)
    if (R.Head > Cap)
      N += R.Head - Cap;
  return N;
}

std::vector<TraceEvent> TraceSink::drain() const {
  std::vector<TraceEvent> Out;
  Out.reserve(static_cast<size_t>(recorded() - dropped()));
  for (const Ring &R : Rings) {
    uint64_t Retained = std::min<uint64_t>(R.Head, Cap);
    for (uint64_t I = R.Head - Retained; I < R.Head; ++I)
      Out.push_back(R.Buf[I & Mask]);
  }
  // Rings are appended in ring order, each internally oldest-first;
  // stable_sort on (Ts, Tid) keeps that order among equals, so the merged
  // stream is deterministic.
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.Ts != B.Ts)
                       return A.Ts < B.Ts;
                     return A.Tid < B.Tid;
                   });
  return Out;
}

namespace {

void appendU64(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)V);
  Out += Buf;
}

void appendHex(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "\"0x%llx\"", (unsigned long long)V);
  Out += Buf;
}

/// One trace_event object. Instants carry "s":"t" (thread scope); spans
/// carry "dur". Cycle timestamps map one-to-one onto the viewer's
/// microsecond axis.
void appendEvent(std::string &Out, const TraceEvent &E) {
  Out += "    {\"name\": \"";
  Out += eventKindName(E.Kind);
  Out += "\", \"ph\": \"";
  Out += E.Kind == EventKind::IdleSpan ? "X" : "i";
  Out += "\", \"pid\": 0, \"tid\": ";
  appendU64(Out, E.Tid);
  Out += ", \"ts\": ";
  appendU64(Out, E.Ts);
  if (E.Kind == EventKind::IdleSpan) {
    Out += ", \"dur\": ";
    appendU64(Out, E.Dur);
  } else {
    Out += ", \"s\": \"t\"";
  }
  Out += ", \"args\": {";
  switch (E.Kind) {
  case EventKind::Trigger:
    Out += "\"trigger\": ";
    appendHex(Out, E.A);
    break;
  case EventKind::Spawn:
    Out += "\"trigger\": ";
    appendHex(Out, E.A);
    Out += ", \"slice\": ";
    appendHex(Out, E.B);
    Out += ", \"depth\": ";
    appendU64(Out, E.Extra);
    break;
  case EventKind::Prefetch:
    Out += "\"line\": ";
    appendHex(Out, E.A);
    Out += ", \"trigger\": ";
    appendHex(Out, E.B);
    Out += ", \"served_by\": ";
    appendU64(Out, E.Extra);
    break;
  case EventKind::Retire:
    Out += "\"line\": ";
    appendHex(Out, E.A);
    Out += ", \"trigger\": ";
    appendHex(Out, E.B);
    Out += ", \"fate\": ";
    appendU64(Out, E.Extra);
    break;
  case EventKind::IdleSpan:
    Out += "\"cat\": ";
    appendU64(Out, E.A);
    break;
  }
  Out += "}}";
}

} // namespace

std::string TraceSink::renderChromeJSON() const {
  std::vector<TraceEvent> Events = drain();
  std::string Out;
  Out.reserve(Events.size() * 96 + 256);
  Out += "{\n  \"displayTimeUnit\": \"ns\",\n  \"recorded\": ";
  appendU64(Out, recorded());
  Out += ",\n  \"dropped\": ";
  appendU64(Out, dropped());
  Out += ",\n  \"traceEvents\": [\n";
  for (size_t I = 0; I < Events.size(); ++I) {
    appendEvent(Out, Events[I]);
    if (I + 1 != Events.size())
      Out += ",";
    Out += "\n";
  }
  Out += "  ]\n}\n";
  return Out;
}

bool TraceSink::writeChromeJSON(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string S = renderChromeJSON();
  bool Ok = std::fwrite(S.data(), 1, S.size(), F) == S.size();
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}
