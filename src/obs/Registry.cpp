//===- obs/Registry.cpp - Named counters and wall-time metrics ------------===//

#include "obs/Registry.h"

#include <cstdio>

using namespace ssp;
using namespace ssp::obs;

void Registry::addCounter(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(M);
  Counters[Name] += Delta;
}

void Registry::setCounter(const std::string &Name, uint64_t Value) {
  std::lock_guard<std::mutex> Lock(M);
  Counters[Name] = Value;
}

void Registry::addTimeMs(const std::string &Name, double Ms) {
  std::lock_guard<std::mutex> Lock(M);
  TimersMs[Name] += Ms;
}

uint64_t Registry::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

double Registry::timeMs(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = TimersMs.find(Name);
  return It == TimersMs.end() ? 0.0 : It->second;
}

size_t Registry::numCounters() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters.size();
}

size_t Registry::numTimers() const {
  std::lock_guard<std::mutex> Lock(M);
  return TimersMs.size();
}

namespace {

/// Keys are dotted stage names produced by this codebase (no exotic
/// characters), but escape the JSON-critical ones anyway.
void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

} // namespace

std::string Registry::renderJSON() const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, V] : Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"";
    appendEscaped(Out, Name);
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "\": %llu", (unsigned long long)V);
    Out += Buf;
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"timers_ms\": {";
  First = true;
  for (const auto &[Name, Ms] : TimersMs) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"";
    appendEscaped(Out, Name);
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), "\": %.4f", Ms);
    Out += Buf;
  }
  Out += First ? "}\n" : "\n  }\n";
  Out += "}\n";
  return Out;
}

bool Registry::writeJSON(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string S = renderJSON();
  bool Ok = std::fwrite(S.data(), 1, S.size(), F) == S.size();
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}
