//===- obs/Percentile.h - Latency sample sets with percentiles ------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small latency-sample accumulator for the serving layer: collect
/// per-request wall times, then read p50/p95/p99 (nearest-rank) and the
/// mean. Used by bench_serve for its BENCH_serve.json latency block and
/// by `ssp-adaptd --metrics`, which flushes the percentiles into the
/// Registry as integer microsecond counters (serve.latency_p50_us etc.)
/// so they survive the counters/timers JSON shape.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_OBS_PERCENTILE_H
#define SSP_OBS_PERCENTILE_H

#include <algorithm>
#include <cstddef>
#include <vector>

namespace ssp::obs {

/// Accumulates double-valued samples (unit chosen by the producer) and
/// answers nearest-rank percentile queries. Not thread-safe; producers
/// record into per-thread sets or under their own lock.
class PercentileSet {
public:
  void record(double Sample) { Samples.push_back(Sample); }

  size_t count() const { return Samples.size(); }
  bool empty() const { return Samples.empty(); }

  /// Nearest-rank percentile of \p P in [0, 100]; 0 when empty.
  double percentile(double P) const {
    if (Samples.empty())
      return 0.0;
    std::vector<double> Sorted = Samples;
    std::sort(Sorted.begin(), Sorted.end());
    double Rank = P / 100.0 * static_cast<double>(Sorted.size());
    size_t Idx = Rank <= 1.0 ? 0 : static_cast<size_t>(Rank + 0.5) - 1;
    return Sorted[std::min(Idx, Sorted.size() - 1)];
  }

  double mean() const {
    if (Samples.empty())
      return 0.0;
    double Sum = 0;
    for (double S : Samples)
      Sum += S;
    return Sum / static_cast<double>(Samples.size());
  }

private:
  std::vector<double> Samples;
};

} // namespace ssp::obs

#endif // SSP_OBS_PERCENTILE_H
