//===- ir/DenseSidMap.h - Dense map keyed by StaticId ---------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense two-level map keyed by ir::StaticId, replacing the hash maps that
/// used to sit on the simulator's per-cycle hot paths (the per-PC cache
/// profile and the per-trigger prefetch-health table). A StaticId packs
/// (function index, function-unique instruction id); both components are
/// small and compact for any one program, so a vector-of-vectors slot table
/// gives O(1) lookup with two array indexations and no hashing. Entries are
/// additionally kept in a flat insertion-order vector, so iteration visits
/// only occupied keys, in a deterministic order.
///
/// The map intentionally mirrors the subset of the std::unordered_map API
/// its former users relied on: operator[], find/at/count, empty/size/clear,
/// and iteration over (StaticId, T) pairs. There is no erase — neither user
/// removes entries.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_IR_DENSESIDMAP_H
#define SSP_IR_DENSESIDMAP_H

#include "ir/Program.h"

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace ssp::ir {

template <typename T> class DenseSidMap {
  using EntryVec = std::vector<std::pair<StaticId, T>>;

public:
  using iterator = typename EntryVec::iterator;
  using const_iterator = typename EntryVec::const_iterator;

  /// Returns the value for \p Sid, default-constructing it on first use.
  /// The reference is invalidated by the next insertion (like vector).
  T &operator[](StaticId Sid) {
    int32_t &Slot = slotOf(Sid);
    if (Slot < 0) {
      Slot = static_cast<int32_t>(Entries.size());
      Entries.emplace_back(Sid, T());
    }
    return Entries[static_cast<size_t>(Slot)].second;
  }

  const_iterator find(StaticId Sid) const {
    int32_t Slot = peekSlot(Sid);
    return Slot < 0 ? Entries.end() : Entries.begin() + Slot;
  }
  iterator find(StaticId Sid) {
    int32_t Slot = peekSlot(Sid);
    return Slot < 0 ? Entries.end() : Entries.begin() + Slot;
  }

  const T &at(StaticId Sid) const {
    int32_t Slot = peekSlot(Sid);
    assert(Slot >= 0 && "DenseSidMap::at on absent key");
    return Entries[static_cast<size_t>(Slot)].second;
  }

  size_t count(StaticId Sid) const { return peekSlot(Sid) < 0 ? 0 : 1; }

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }

  void clear() {
    Entries.clear();
    Slots.clear();
  }

  iterator begin() { return Entries.begin(); }
  iterator end() { return Entries.end(); }
  const_iterator begin() const { return Entries.begin(); }
  const_iterator end() const { return Entries.end(); }

private:
  /// Slot reference for \p Sid, growing the table as needed (-1 = absent).
  int32_t &slotOf(StaticId Sid) {
    uint32_t Func = staticIdFunc(Sid);
    uint32_t Inst = staticIdInst(Sid);
    if (Func >= Slots.size())
      Slots.resize(Func + 1);
    std::vector<int32_t> &Row = Slots[Func];
    if (Inst >= Row.size())
      Row.resize(Inst + 1, -1);
    return Row[Inst];
  }

  /// Slot for \p Sid without growing (-1 = absent).
  int32_t peekSlot(StaticId Sid) const {
    uint32_t Func = staticIdFunc(Sid);
    uint32_t Inst = staticIdInst(Sid);
    if (Func >= Slots.size() || Inst >= Slots[Func].size())
      return -1;
    return Slots[Func][Inst];
  }

  std::vector<std::vector<int32_t>> Slots; ///< [func][inst] -> entry index.
  EntryVec Entries;                        ///< Occupied keys, insertion order.
};

} // namespace ssp::ir

#endif // SSP_IR_DENSESIDMAP_H
