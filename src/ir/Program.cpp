//===- ir/Program.cpp - Linking and printing ------------------------------===//

#include "ir/Program.h"

#include "support/Assert.h"

#include <cassert>

using namespace ssp;
using namespace ssp::ir;

LinkedProgram LinkedProgram::link(const Program &P) {
  LinkedProgram LP;
  LP.Prog = &P;
  LP.FuncEntries.resize(P.numFuncs(), 0);
  LP.BlockStarts.resize(P.numFuncs());

  // First pass: assign addresses to every instruction in layout order
  // (functions in index order; blocks in index order, which places SSP
  // attachments after the function body per Figure 7).
  uint32_t Addr = 0;
  uint32_t BundleId = 0;
  for (uint32_t FI = 0; FI < P.numFuncs(); ++FI) {
    const Function &F = P.func(FI);
    LP.FuncEntries[FI] = Addr;
    LP.BlockStarts[FI].resize(F.numBlocks(), 0);
    for (uint32_t BI = 0; BI < F.numBlocks(); ++BI) {
      const BasicBlock &BB = F.block(BI);
      assert(!BB.Insts.empty() && "cannot link an empty basic block");
      LP.BlockStarts[FI][BI] = Addr;
      unsigned InBundle = 0;
      for (const Instruction &I : BB.Insts) {
        LinkedInst LI;
        LI.I = &I;
        LI.Func = FI;
        LI.Block = BI;
        LI.BundleId = BundleId;
        LI.Sid = makeStaticId(FI, I.Id);
        LP.Code.push_back(LI);
        ++Addr;
        if (++InBundle == 3) {
          InBundle = 0;
          ++BundleId;
        }
      }
      // A bundle never spans a block boundary.
      if (InBundle != 0)
        ++BundleId;
    }
  }

  // Second pass: resolve control transfer targets to global addresses.
  for (LinkedInst &LI : LP.Code) {
    const Instruction &I = *LI.I;
    if (hasBlockTarget(I.Op)) {
      assert(I.Target < LP.BlockStarts[LI.Func].size() &&
             "branch target block out of range");
      LI.TargetAddr = LP.BlockStarts[LI.Func][I.Target];
    } else if (I.Op == Opcode::Call) {
      assert(I.Target < LP.FuncEntries.size() &&
             "call target function out of range");
      LI.TargetAddr = LP.FuncEntries[I.Target];
    }
  }

  // Third pass: predecode. Everything the executor and the timing cores
  // consult per dynamic instance — dense operand indices, function unit,
  // latency, final targets — is resolved here, once per static instruction.
  LP.Decoded.reserve(LP.Code.size());
  for (const LinkedInst &LI : LP.Code) {
    const Instruction &I = *LI.I;
    DecodedInst D;
    D.Op = I.Op;
    D.Cond = I.Cond;
    D.FU = funcUnitOf(I.Op);
    D.Latency = static_cast<uint8_t>(latencyOf(I.Op));
    D.Imm = I.Imm;
    D.Src1 = I.Src1.isValid() ? static_cast<uint16_t>(I.Src1.denseIndex())
                              : uint16_t(0);
    D.Src2 = I.Src2.isValid() ? static_cast<uint16_t>(I.Src2.denseIndex())
                              : uint16_t(0);
    I.forEachUse([&](Reg R) {
      assert(D.NumUses < 2 && "more than two register uses");
      D.Uses[D.NumUses++] = static_cast<uint16_t>(R.denseIndex());
    });
    Reg Def = I.def();
    if (Def.isValid()) {
      D.Def = static_cast<uint16_t>(Def.denseIndex());
      D.DstIsPred = Def.isPred();
      // r0 and p0 are hardwired: the timing def slot exists, the
      // architectural write is dropped.
      bool Hardwired =
          Def.Num == 0 && (Def.isInt() || Def.isPred());
      D.WDst = Hardwired ? DecodedInst::NoReg : D.Def;
    }
    D.Target = (hasBlockTarget(I.Op) || I.Op == Opcode::Call) ? LI.TargetAddr
                                                              : I.Target;
    LP.Decoded.push_back(D);
  }
  return LP;
}

std::string Instruction::str() const {
  std::string S = opcodeName(Op);
  if (Op == Opcode::Cmp || Op == Opcode::CmpI) {
    S += '.';
    S += condName(Cond);
  }
  auto Append = [&S](const std::string &Part) {
    S += S.back() == ' ' ? "" : " ";
    S += Part;
  };
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Ret:
  case Opcode::Halt:
  case Opcode::Rfi:
  case Opcode::KillThread:
    break;
  case Opcode::MovI:
    Append(Dst.str() + " = " + std::to_string(Imm));
    break;
  case Opcode::Mov:
  case Opcode::XToF:
  case Opcode::FToX:
    Append(Dst.str() + " = " + Src1.str());
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Cmp:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
    Append(Dst.str() + " = " + Src1.str() + ", " + Src2.str());
    break;
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::ShlI:
  case Opcode::AndI:
  case Opcode::OrI:
  case Opcode::CmpI:
    Append(Dst.str() + " = " + Src1.str() + ", " + std::to_string(Imm));
    break;
  case Opcode::Load:
  case Opcode::LoadF:
    Append(Dst.str() + " = [" + Src1.str() + " + " + std::to_string(Imm) +
           "]");
    break;
  case Opcode::Store:
  case Opcode::StoreF:
    Append("[" + Src1.str() + " + " + std::to_string(Imm) + "] = " +
           Src2.str());
    break;
  case Opcode::Prefetch:
    Append("[" + Src1.str() + " + " + std::to_string(Imm) + "]");
    break;
  case Opcode::Br:
    Append("(" + Src1.str() + ") bb" + std::to_string(Target));
    break;
  case Opcode::Jmp:
  case Opcode::ChkC:
  case Opcode::Spawn:
    Append("bb" + std::to_string(Target));
    break;
  case Opcode::Call:
    Append("fn" + std::to_string(Target));
    break;
  case Opcode::CallInd:
    Append("[" + Src1.str() + "]");
    break;
  case Opcode::CopyToLIB:
    Append("lib[" + std::to_string(Target) + "] = " + Src1.str());
    break;
  case Opcode::CopyToLIBI:
    Append("lib[" + std::to_string(Target) + "] = " + std::to_string(Imm));
    break;
  case Opcode::CopyFromLIB:
    Append(Dst.str() + " = lib[" + std::to_string(Target) + "]");
    break;
  }
  return S;
}

Program Program::clone() const {
  Program New;
  for (uint32_t FI = 0; FI < numFuncs(); ++FI) {
    const Function &F = func(FI);
    Function &NF = New.addFunction(F.getName());
    NF.blocks() = F.blocks();
    NF.setInstIdWatermark(F.numInstIds());
  }
  New.StreamTable = StreamTable;
  New.setEntry(EntryFunc);
  return New;
}

namespace {

std::string streamReg(const Reg &R) {
  return R.isValid() ? R.str() : std::string("none");
}

/// One `stream` directive line; fixed key order so emission is canonical
/// and the parser can consume keys positionally.
std::string streamLine(const StreamDescriptor &D) {
  std::string S = "stream fn" + std::to_string(D.Func) + " bb" +
                  std::to_string(D.StubBlock) + " " +
                  streamKindName(D.Kind);
  S += " abase=" + streamReg(D.AddrBase);
  S += " aind=" + streamReg(D.AddrInd);
  S += " amul=" + std::to_string(D.AddrMul);
  S += " aadd=" + std::to_string(D.AddrAdd);
  S += " stride=" + std::to_string(D.Stride);
  S += " coff=" + std::to_string(D.ChaseOff);
  S += " vbase=" + streamReg(D.ValBase);
  S += " vmul=" + std::to_string(D.ValMul);
  // The all-ones default mask round-trips as signed -1.
  S += " vmask=" + std::to_string(static_cast<int64_t>(D.ValMask));
  S += " vshift=" + std::to_string(D.ValShift);
  S += " vadd=" + std::to_string(D.ValAdd);
  S += " elem=" + std::to_string(D.ElemBytes);
  S += " depth=" + std::to_string(D.Depth);
  S += " pf=";
  for (size_t I = 0; I < D.PrefetchOffsets.size(); ++I)
    S += (I ? "," : "") + std::to_string(D.PrefetchOffsets[I]);
  S += " ipf=";
  if (!D.PrefetchIndex)
    S += "none";
  else
    for (size_t I = 0; I < D.IdxPrefetchOffsets.size(); ++I)
      S += (I ? "," : "") + std::to_string(D.IdxPrefetchOffsets[I]);
  return S;
}

} // namespace

std::string Program::str() const {
  std::string S;
  for (uint32_t FI = 0; FI < numFuncs(); ++FI) {
    const Function &F = func(FI);
    S += "function " + F.getName() + " (fn" + std::to_string(FI) + ")";
    if (FI == EntryFunc)
      S += " [entry]";
    S += ":\n";
    // Static instruction ids are carried by the text format only where
    // they deviate from the parser's default numbering (one counter of
    // *unannotated* instructions per function). A builder-produced
    // function whose ids follow layout order prints without any
    // annotations; an adapted function prints a compact `@id` suffix on
    // exactly the out-of-order instructions (the inserted chk.c triggers,
    // whose ids are allocated after the attachment blocks'). Reparsing
    // then reconstructs every id — sid-keyed data (cache profiles,
    // prefetch attribution) survives the text round trip bit-identically.
    uint32_t DefaultId = 0;
    for (const BasicBlock &BB : F.blocks()) {
      S += "  bb" + std::to_string(BB.Index) + " <" + BB.Name + ">";
      if (BB.Kind == BlockKind::Stub)
        S += " [stub]";
      else if (BB.Kind == BlockKind::Slice)
        S += " [slice]";
      S += ":\n";
      for (const Instruction &I : BB.Insts) {
        S += "    " + I.str();
        if (I.Id == DefaultId)
          ++DefaultId;
        else
          S += " @" + std::to_string(I.Id);
        S += "\n";
      }
    }
  }
  for (const StreamDescriptor &D : StreamTable)
    S += streamLine(D) + "\n";
  return S;
}
