//===- ir/Parser.h - Assembly-text parser for the IR ----------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the assembly-like text format that Program::str() prints, so
/// programs round-trip through text. This is the convenient way to author
/// workloads or golden-test the rewriter: write the binary as text, parse,
/// adapt, print.
///
/// Grammar (one instruction per line; '#' starts a comment):
///
///   program   := function+
///   function  := "function" NAME "(fn" N ")" ["[entry]"] ":" block+
///   block     := "bb" N "<" NAME ">" ["[stub]"|"[slice]"] ":" inst*
///   inst      := mnemonic operands ["@" N]   (exactly the printer's syntax)
///
/// The optional `@N` suffix pins the instruction's static id. Without it,
/// ids count up over the function's unannotated instructions — the same
/// default Program::str() assumes, which emits `@N` exactly where an id
/// deviates (in practice: the chk.c triggers a rewrite inserts mid-block
/// after allocating attachment ids). Ids must be unique per function.
/// Profiles have their own text format (`.sspprof`, see
/// profile/ProfileIO.h) keyed by these ids, so a (program, profile) pair
/// round-trips through text with sid-keyed data intact.
///
/// Examples of instruction syntax accepted (and printed):
///
///   movi r1 = 1048576          add r2 = r2, r6      cmp.lt p1 = r1, r4
///   ld8 r3 = [r1 + 8]          st8 [r11 + 0] = r2   lfetch [r3 + 0]
///   br (p1) bb1                jmp bb2              call fn1
///   calli [r5]                 ret                  halt
///   chk.c bb6                  rfi                  spawn bb3
///   lib.st lib[0] = r1         lib.sti lib[2] = 42  lib.ld r1 = lib[0]
///   kill                       nop
///
//===----------------------------------------------------------------------===//

#ifndef SSP_IR_PARSER_H
#define SSP_IR_PARSER_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ssp::ir {

class Program;

/// Initial data-image words parsed from `data:` sections:
/// (address, value) pairs in file order.
using DataImage = std::vector<std::pair<uint64_t, uint64_t>>;

/// Parses \p Text into \p Out (which must be empty). On failure returns
/// false and sets \p Error to "line N: message".
///
/// Besides functions, the text may contain `data:` sections assigning
/// initial memory words (collected into \p Data when non-null):
///
///   data:
///     0x8000: 0
///     0x100000: 12 34 -5     # consecutive 64-bit words
bool parseProgram(const std::string &Text, Program &Out, std::string &Error,
                  DataImage *Data = nullptr);

} // namespace ssp::ir

#endif // SSP_IR_PARSER_H
