//===- ir/Reg.h - Register operands ---------------------------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register operands of the Itanium-like IR. The modeled machine follows the
/// per-thread register files of the paper's Table 1: 128 integer registers,
/// 128 FP registers and 64 predicate registers per hardware thread context.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_IR_REG_H
#define SSP_IR_REG_H

#include <cassert>
#include <cstdint>
#include <string>

namespace ssp::ir {

/// Register file sizes per hardware thread context (paper, Table 1).
enum : unsigned {
  NumIntRegs = 128,
  NumFPRegs = 128,
  NumPredRegs = 64
};

/// The register file a register operand names.
enum class RegClass : uint8_t {
  None, ///< Operand slot unused.
  Int,  ///< r0..r127. r0 is hardwired to zero, as on Itanium.
  FP,   ///< f0..f127.
  Pred  ///< p0..p63. p0 is hardwired to true, as on Itanium.
};

/// A register operand: a register file plus a register number.
struct Reg {
  RegClass Cls = RegClass::None;
  uint8_t Num = 0;

  constexpr Reg() = default;
  constexpr Reg(RegClass Cls, uint8_t Num) : Cls(Cls), Num(Num) {}

  bool isValid() const { return Cls != RegClass::None; }
  bool isInt() const { return Cls == RegClass::Int; }
  bool isFP() const { return Cls == RegClass::FP; }
  bool isPred() const { return Cls == RegClass::Pred; }

  friend bool operator==(const Reg &A, const Reg &B) {
    return A.Cls == B.Cls && A.Num == B.Num;
  }
  friend bool operator!=(const Reg &A, const Reg &B) { return !(A == B); }
  friend bool operator<(const Reg &A, const Reg &B) {
    if (A.Cls != B.Cls)
      return static_cast<uint8_t>(A.Cls) < static_cast<uint8_t>(B.Cls);
    return A.Num < B.Num;
  }

  /// A dense index usable as a key across all register files of one thread.
  unsigned denseIndex() const {
    switch (Cls) {
    case RegClass::None:
      assert(false && "denseIndex of invalid register");
      return 0;
    case RegClass::Int:
      return Num;
    case RegClass::FP:
      return NumIntRegs + Num;
    case RegClass::Pred:
      return NumIntRegs + NumFPRegs + Num;
    }
    return 0;
  }

  /// Total number of dense register indices per thread.
  static constexpr unsigned NumDenseIndices =
      NumIntRegs + NumFPRegs + NumPredRegs;

  std::string str() const {
    switch (Cls) {
    case RegClass::None:
      return "<none>";
    case RegClass::Int:
      return "r" + std::to_string(Num);
    case RegClass::FP:
      return "f" + std::to_string(Num);
    case RegClass::Pred:
      return "p" + std::to_string(Num);
    }
    return "<bad>";
  }
};

/// Inverse of Reg::denseIndex.
inline constexpr Reg regFromDenseIndex(unsigned Dense) {
  if (Dense < NumIntRegs)
    return Reg(RegClass::Int, static_cast<uint8_t>(Dense));
  if (Dense < NumIntRegs + NumFPRegs)
    return Reg(RegClass::FP, static_cast<uint8_t>(Dense - NumIntRegs));
  return Reg(RegClass::Pred,
             static_cast<uint8_t>(Dense - NumIntRegs - NumFPRegs));
}

/// Shorthand constructors used pervasively by the workload builders.
inline constexpr Reg ireg(unsigned N) {
  return Reg(RegClass::Int, static_cast<uint8_t>(N));
}
inline constexpr Reg freg(unsigned N) {
  return Reg(RegClass::FP, static_cast<uint8_t>(N));
}
inline constexpr Reg preg(unsigned N) {
  return Reg(RegClass::Pred, static_cast<uint8_t>(N));
}

} // namespace ssp::ir

#endif // SSP_IR_REG_H
