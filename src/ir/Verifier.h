//===- ir/Verifier.h - Structural well-formedness checks ------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies structural invariants of a Program before linking/simulation,
/// including the SSP-specific ones from the paper: p-slice blocks contain no
/// stores (speculative threads never modify the main thread's architectural
/// state, Section 2), chk.c targets stub blocks, spawn targets slice blocks,
/// and stub blocks end with rfi.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_IR_VERIFIER_H
#define SSP_IR_VERIFIER_H

#include <string>
#include <vector>

namespace ssp::ir {

class Program;

/// Checks all functions of \p P and returns a list of human-readable
/// diagnostics; empty means the program is well formed.
std::vector<std::string> verify(const Program &P);

/// Convenience wrapper: returns true iff verify() reports no diagnostics.
bool isWellFormed(const Program &P);

} // namespace ssp::ir

#endif // SSP_IR_VERIFIER_H
