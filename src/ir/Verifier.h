//===- ir/Verifier.h - Structural well-formedness checks ------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies structural invariants of a Program before linking/simulation,
/// including the SSP-specific ones from the paper: p-slice blocks contain no
/// stores (speculative threads never modify the main thread's architectural
/// state, Section 2), chk.c targets stub blocks, spawn targets slice blocks,
/// and stub blocks end with rfi.
///
/// The checker emits structured verify::Diagnostics (check ids prefixed
/// "structural."); the legacy verify() entry point renders them to strings.
/// The full semantic pipeline (translation validation, slice dataflow,
/// lints) lives in src/verify/ and runs this checker as its first pass.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_IR_VERIFIER_H
#define SSP_IR_VERIFIER_H

#include <string>
#include <vector>

namespace ssp::verify {
class DiagnosticEngine;
} // namespace ssp::verify

namespace ssp::ir {

class Program;

/// Checks all functions of \p P, reporting structured diagnostics (severity
/// error, check ids "structural.*") into \p DE.
void verifyStructural(const Program &P, verify::DiagnosticEngine &DE);

/// Checks all functions of \p P and returns a list of human-readable
/// diagnostics; empty means the program is well formed.
std::vector<std::string> verify(const Program &P);

/// Convenience wrapper: returns true iff verify() reports no diagnostics.
bool isWellFormed(const Program &P);

} // namespace ssp::ir

#endif // SSP_IR_VERIFIER_H
