//===- ir/Program.h - Whole-binary container and linking ------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program holds all functions of the binary. LinkedProgram is the flat,
/// address-indexed view the simulator executes: functions laid out in order,
/// each function's body blocks first and its SSP attachments appended after
/// the function, exactly as the paper's Figure 7 lays out the enhanced
/// binary. Linking resolves block targets to global addresses and assigns
/// bundle boundaries (three instructions per bundle, reset at block entry).
///
//===----------------------------------------------------------------------===//

#ifndef SSP_IR_PROGRAM_H
#define SSP_IR_PROGRAM_H

#include "ir/Function.h"
#include "ir/Stream.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ssp::ir {

/// Key identifying a static instruction across simulation and rewriting:
/// (function index, function-unique instruction id).
using StaticId = uint64_t;

inline StaticId makeStaticId(uint32_t Func, uint32_t InstId) {
  return (static_cast<uint64_t>(Func) << 32) | InstId;
}
inline uint32_t staticIdFunc(StaticId Id) {
  return static_cast<uint32_t>(Id >> 32);
}
inline uint32_t staticIdInst(StaticId Id) {
  return static_cast<uint32_t>(Id);
}

/// A whole binary: a list of functions plus the entry function.
class Program {
public:
  /// Creates a new empty function and returns a reference to it.
  Function &addFunction(const std::string &Name) {
    uint32_t Idx = static_cast<uint32_t>(Funcs.size());
    Funcs.push_back(std::make_unique<Function>(Name, Idx));
    return *Funcs.back();
  }

  Function &func(uint32_t Idx) { return *Funcs[Idx]; }
  const Function &func(uint32_t Idx) const { return *Funcs[Idx]; }
  size_t numFuncs() const { return Funcs.size(); }

  void setEntry(uint32_t FuncIdx) { EntryFunc = FuncIdx; }
  uint32_t getEntry() const { return EntryFunc; }

  /// Total instruction count over all functions.
  size_t numInsts() const {
    size_t N = 0;
    for (const auto &F : Funcs)
      N += F->numInsts();
    return N;
  }

  /// Stream descriptors attached to classified slices (empty unless the
  /// adaptation ran with streams enabled). Keyed by (Func, StubBlock);
  /// kept in emission order. Part of the binary: they round-trip through
  /// str()/parseProgram and survive clone().
  void addStream(const StreamDescriptor &S) { StreamTable.push_back(S); }
  const std::vector<StreamDescriptor> &streams() const { return StreamTable; }
  std::vector<StreamDescriptor> &streams() { return StreamTable; }

  /// Renders the whole program as assembly-like text.
  std::string str() const;

  /// Deep-copies the program, preserving every instruction's static id (so
  /// profiles collected on the original remain valid for the copy). The
  /// rewriter adapts a clone and leaves the original untouched.
  Program clone() const;

private:
  std::vector<std::unique_ptr<Function>> Funcs;
  std::vector<StreamDescriptor> StreamTable;
  uint32_t EntryFunc = 0;
};

/// One instruction slot of the linked (flat) binary image.
struct LinkedInst {
  const Instruction *I = nullptr;
  uint32_t Func = 0;      ///< Owning function index.
  uint32_t Block = 0;     ///< Owning block index within the function.
  uint32_t TargetAddr = 0; ///< Resolved address for block-target opcodes and
                           ///< direct calls; unused otherwise.
  uint32_t BundleId = 0;  ///< Global bundle number (3 instructions/bundle).
  StaticId Sid = 0;       ///< Stable static id for profiles.
};

/// The predecoded form of one linked instruction: everything the executor
/// and the timing cores consult per dynamic instance, resolved once at link
/// time. Register operands are dense per-thread indices (Reg::denseIndex),
/// the function unit and latency are pre-looked-up, and control/LIB targets
/// are final (a branch target is a global address, not a block index).
struct DecodedInst {
  /// Sentinel dense register index: "no register" / hardwired write target.
  static constexpr uint16_t NoReg = 0xFFFF;

  Opcode Op = Opcode::Nop;
  CondCode Cond = CondCode::EQ;
  FuncUnit FU = FuncUnit::None;
  uint8_t Latency = 1;   ///< Execution latency (latencyOf), sans cache.
  uint8_t NumUses = 0;   ///< Number of entries in Uses[].
  bool DstIsPred = false; ///< Writes a predicate (writes normalize to 0/1).

  uint16_t Src1 = 0;     ///< Dense index of Src1 (0 if the slot is unused;
                         ///< never read by opcodes without that operand).
  uint16_t Src2 = 0;     ///< Dense index of Src2 (same convention).
  /// Register reads in Instruction::forEachUse order — the order the
  /// scoreboard checks and the Figure-10 attribution depend on.
  uint16_t Uses[2] = {0, 0};
  /// Timing def: dense index the scoreboard/rename map tracks for this
  /// instruction (Instruction::def), or NoReg if it writes no register.
  /// Includes hardwired destinations — a def of r0 still occupies the
  /// scoreboard slot, exactly as the non-decoded path behaved.
  uint16_t Def = NoReg;
  /// Functional write target: like Def but NoReg also for the hardwired
  /// r0/p0, whose architectural writes are dropped.
  uint16_t WDst = NoReg;

  /// Pre-resolved target: a global address for block-target opcodes and
  /// direct calls, the LIB slot for lib.st/lib.sti/lib.ld, and the raw
  /// Instruction::Target otherwise.
  uint32_t Target = 0;
  int64_t Imm = 0;
};

/// The executable image: a flat array of instructions with resolved control
/// transfer targets. Immutable snapshot of a Program; relink after rewriting.
class LinkedProgram {
public:
  /// Lays out and links \p P. The Program must outlive the result and must
  /// not be mutated while the LinkedProgram is in use.
  static LinkedProgram link(const Program &P);

  const LinkedInst &at(uint32_t Addr) const { return Code[Addr]; }
  uint32_t size() const { return static_cast<uint32_t>(Code.size()); }

  /// The predecoded form of the instruction at \p Addr (parallel to Code).
  const DecodedInst &decoded(uint32_t Addr) const { return Decoded[Addr]; }

  /// Address of the first instruction of \p FuncIdx.
  uint32_t funcEntry(uint32_t FuncIdx) const { return FuncEntries[FuncIdx]; }

  /// Address of the first instruction of block \p BlockIdx in \p FuncIdx.
  uint32_t blockStart(uint32_t FuncIdx, uint32_t BlockIdx) const {
    return BlockStarts[FuncIdx][BlockIdx];
  }

  /// Address of the program entry point.
  uint32_t entry() const { return FuncEntries[Prog->getEntry()]; }

  const Program &program() const { return *Prog; }

private:
  const Program *Prog = nullptr;
  std::vector<LinkedInst> Code;
  std::vector<DecodedInst> Decoded;
  std::vector<uint32_t> FuncEntries;
  std::vector<std::vector<uint32_t>> BlockStarts;
};

} // namespace ssp::ir

#endif // SSP_IR_PROGRAM_H
