//===- ir/Instruction.h - Machine-level IR instructions -------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Instruction is one machine operation of the binary being adapted. The
/// representation matches the paper's setting where "the IR exactly matches
/// the hardware instructions in the binary": the post-pass tool reads this
/// IR, computes slices over it, and rewrites it.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_IR_INSTRUCTION_H
#define SSP_IR_INSTRUCTION_H

#include "ir/Opcode.h"
#include "ir/Reg.h"

#include <cstdint>
#include <string>

namespace ssp::ir {

/// One instruction of the Itanium-like binary IR.
///
/// Field usage by opcode family:
///  * ALU reg-reg:   Dst := Src1 op Src2
///  * ALU reg-imm:   Dst := Src1 op Imm
///  * Cmp/CmpI:      Dst(pred) := Src1 <Cond> (Src2 | Imm)
///  * Load/LoadF:    Dst := mem[Src1 + Imm]
///  * Store/StoreF:  mem[Src1 + Imm] := Src2
///  * Prefetch:      touch mem[Src1 + Imm]
///  * Br:            if Src1(pred) goto block Target
///  * Jmp/ChkC/Spawn: block Target
///  * Call:          function Target;  CallInd: function index in Src1
///  * CopyToLIB:     LIB[Target] := Src1;  CopyFromLIB: Dst := LIB[Target]
struct Instruction {
  Opcode Op = Opcode::Nop;
  CondCode Cond = CondCode::EQ;
  Reg Dst;
  Reg Src1;
  Reg Src2;
  int64_t Imm = 0;
  uint32_t Target = 0;

  /// Function-unique static instruction id. Assigned by the IRBuilder and
  /// preserved verbatim by the rewriter so that cache profiles collected on
  /// the original binary stay valid for the SSP-enhanced binary.
  uint32_t Id = 0;

  /// Returns the register this instruction defines, or an invalid Reg.
  Reg def() const {
    return writesDst() ? Dst : Reg();
  }

  /// Returns true if the instruction writes its Dst register.
  bool writesDst() const {
    switch (Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::AddI:
    case Opcode::MulI:
    case Opcode::ShlI:
    case Opcode::AndI:
    case Opcode::OrI:
    case Opcode::Mov:
    case Opcode::MovI:
    case Opcode::Cmp:
    case Opcode::CmpI:
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::XToF:
    case Opcode::FToX:
    case Opcode::Load:
    case Opcode::LoadF:
    case Opcode::CopyFromLIB:
      return true;
    default:
      return false;
    }
  }

  /// Calls \p Fn for every register this instruction reads.
  template <typename CallableT> void forEachUse(CallableT Fn) const {
    switch (Op) {
    case Opcode::Nop:
    case Opcode::MovI:
    case Opcode::Jmp:
    case Opcode::Call:
    case Opcode::Ret:
    case Opcode::Halt:
    case Opcode::ChkC:
    case Opcode::Rfi:
    case Opcode::Spawn:
    case Opcode::KillThread:
    case Opcode::CopyFromLIB:
    case Opcode::CopyToLIBI:
      return;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Cmp:
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
      Fn(Src1);
      Fn(Src2);
      return;
    case Opcode::AddI:
    case Opcode::MulI:
    case Opcode::ShlI:
    case Opcode::AndI:
    case Opcode::OrI:
    case Opcode::Mov:
    case Opcode::CmpI:
    case Opcode::XToF:
    case Opcode::FToX:
    case Opcode::Load:
    case Opcode::LoadF:
    case Opcode::Prefetch:
    case Opcode::Br:
    case Opcode::CallInd:
    case Opcode::CopyToLIB:
      Fn(Src1);
      return;
    case Opcode::Store:
    case Opcode::StoreF:
      Fn(Src1); // Address base.
      Fn(Src2); // Stored value.
      return;
    }
  }

  /// Renders the instruction as assembly-like text.
  std::string str() const;
};

} // namespace ssp::ir

#endif // SSP_IR_INSTRUCTION_H
