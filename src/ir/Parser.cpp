//===- ir/Parser.cpp - Assembly-text parser for the IR --------------------===//

#include "ir/Parser.h"

#include "ir/Program.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <unordered_set>
#include <vector>

using namespace ssp;
using namespace ssp::ir;

namespace {

/// A tiny cursor over one line of text.
class LineCursor {
public:
  explicit LineCursor(const std::string &Line) : Text(Line) {}

  void skipSpace() {
    // Cast through unsigned char first: passing a sign-extended negative
    // char (a high-bit byte in a corrupted input) to the ctype functions
    // is undefined behaviour.
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size() || Text[Pos] == '#';
  }

  /// Consumes \p Literal (after whitespace); returns false if absent.
  bool eat(const std::string &Literal) {
    skipSpace();
    if (Text.compare(Pos, Literal.size(), Literal) != 0)
      return false;
    Pos += Literal.size();
    return true;
  }

  /// Peeks whether \p Literal comes next.
  bool peek(const std::string &Literal) {
    skipSpace();
    return Text.compare(Pos, Literal.size(), Literal) == 0;
  }

  /// Reads a token of [A-Za-z0-9_.<>-] characters.
  std::string word() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_' || Text[Pos] == '.' || Text[Pos] == '-'))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  /// Reads a signed integer; returns false on failure (including a bare
  /// sign with no digits, which strtoll would silently read as 0).
  bool integer(int64_t &Out) {
    skipSpace();
    size_t Start = Pos;
    size_t Digits = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      Digits = ++Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Digits) {
      Pos = Start;
      return false;
    }
    Out = std::strtoll(Text.substr(Start, Pos - Start).c_str(), nullptr,
                       10);
    return true;
  }

private:
  const std::string &Text;
  size_t Pos = 0;
};

class Parser {
public:
  Parser(const std::string &Text, Program &Out, DataImage *Data)
      : Out(Out), Data(Data) {
    std::istringstream In(Text);
    std::string Line;
    while (std::getline(In, Line))
      Lines.push_back(Line);
  }

  bool run(std::string &Error) {
    // Pass 1: collect function headers so calls can be resolved by index
    // even before the callee is parsed (indices appear literally as fnN,
    // so a single pass suffices; we only validate block counts at the
    // end via the verifier-style checks the caller runs).
    for (LineNo = 0; LineNo < Lines.size(); ++LineNo) {
      LineCursor C(Lines[LineNo]);
      if (C.atEnd())
        continue;
      if (C.peek("function")) {
        InDataSection = false;
        if (!parseFunctionHeader(C))
          return fail(Error);
        continue;
      }
      if (C.peek("stream ")) {
        InDataSection = false;
        if (!parseStreamLine(C))
          return fail(Error);
        continue;
      }
      if (C.eat("data:")) {
        if (!C.atEnd()) {
          Msg = "trailing junk after 'data:'";
          return fail(Error);
        }
        InDataSection = true;
        continue;
      }
      if (InDataSection) {
        if (!parseDataLine(C))
          return fail(Error);
        continue;
      }
      if (C.peek("bb")) {
        if (!parseBlockHeader(C))
          return fail(Error);
        continue;
      }
      if (!parseInstruction(C))
        return fail(Error);
    }
    if (Out.numFuncs() == 0) {
      Msg = "no functions in input";
      return fail(Error);
    }
    return true;
  }

private:
  bool fail(std::string &Error) {
    Error = "line " + std::to_string(LineNo + 1) + ": " + Msg;
    return false;
  }

  bool error(const std::string &M) {
    Msg = M;
    return false;
  }

  bool parseDataLine(LineCursor &C) {
    // ADDR ':' value+   (ADDR may be hex 0x... or decimal).
    uint64_t Addr = 0;
    if (!parseAddress(C, Addr))
      return false;
    if (!C.eat(":"))
      return error("expected ':' after data address");
    if ((Addr & 7) != 0)
      return error("data address must be 8-byte aligned");
    bool Any = false;
    while (!C.atEnd()) {
      int64_t V = 0;
      if (!C.integer(V))
        return error("expected data word");
      if (Data)
        Data->push_back({Addr, static_cast<uint64_t>(V)});
      Addr += 8;
      Any = true;
    }
    if (!Any)
      return error("data line has no words");
    return true;
  }

  bool parseAddress(LineCursor &C, uint64_t &Addr) {
    C.skipSpace();
    if (C.eat("0x")) {
      std::string Hex = C.word();
      if (Hex.empty())
        return error("expected hex address");
      // word() accepts identifier characters; insist on actual hex digits
      // so "0xzz" is rejected instead of silently reading as 0.
      if (Hex.size() > 16)
        return error("hex address too wide: 0x" + Hex);
      for (char Ch : Hex)
        if (!std::isxdigit(static_cast<unsigned char>(Ch)))
          return error("bad hex digit in address: 0x" + Hex);
      Addr = std::strtoull(Hex.c_str(), nullptr, 16);
      return true;
    }
    int64_t V = 0;
    if (!C.integer(V))
      return error("expected data address");
    Addr = static_cast<uint64_t>(V);
    return true;
  }

  bool parseFunctionHeader(LineCursor &C) {
    C.eat("function");
    std::string Name = C.word();
    if (Name.empty())
      return error("expected function name");
    if (!C.eat("(fn"))
      return error("expected (fnN) after function name");
    int64_t Idx = 0;
    if (!C.integer(Idx))
      return error("expected function index");
    if (!C.eat(")"))
      return error("expected ')'");
    if (static_cast<uint64_t>(Idx) != Out.numFuncs())
      return error("function index " + std::to_string(Idx) +
                   " out of order (expected fn" +
                   std::to_string(Out.numFuncs()) + ")");
    bool IsEntry = C.eat("[entry]");
    if (!C.eat(":"))
      return error("expected ':' after function header");
    CurFunc = &Out.addFunction(Name);
    CurBlock = ~0u;
    UnannotatedId = 0;
    UsedIds.clear();
    if (IsEntry)
      Out.setEntry(CurFunc->getIndex());
    return true;
  }

  bool parseBlockHeader(LineCursor &C) {
    if (!CurFunc)
      return error("block outside a function");
    C.eat("bb");
    int64_t Idx = 0;
    if (!C.integer(Idx))
      return error("expected block index");
    if (!C.eat("<"))
      return error("expected '<name>' after block index");
    std::string Name = C.word();
    if (!C.eat(">"))
      return error("expected '>' after block name");
    BlockKind Kind = BlockKind::Body;
    if (C.eat("[stub]"))
      Kind = BlockKind::Stub;
    else if (C.eat("[slice]"))
      Kind = BlockKind::Slice;
    if (!C.eat(":"))
      return error("expected ':' after block header");
    if (static_cast<uint64_t>(Idx) != CurFunc->numBlocks())
      return error("block index out of order");
    CurBlock = CurFunc->addBlock(Name, Kind);
    return true;
  }

  bool parseReg(LineCursor &C, Reg &Out2) {
    std::string W = C.word();
    if (W.size() < 2)
      return error("expected register, got '" + W + "'");
    char Cls = W[0];
    // The number must be all digits: strtol would quietly read "rx" as
    // r0 otherwise.
    for (size_t P = 1; P < W.size(); ++P)
      if (!std::isdigit(static_cast<unsigned char>(W[P])))
        return error("bad register '" + W + "'");
    long N = std::strtol(W.c_str() + 1, nullptr, 10);
    if (Cls == 'r' && N >= 0 && N < int(NumIntRegs))
      Out2 = ireg(unsigned(N));
    else if (Cls == 'f' && N >= 0 && N < int(NumFPRegs))
      Out2 = freg(unsigned(N));
    else if (Cls == 'p' && N >= 0 && N < int(NumPredRegs))
      Out2 = preg(unsigned(N));
    else
      return error("bad register '" + W + "'");
    return true;
  }

  /// Parses "[rB + imm]" into \p Base and \p Off.
  bool parseMemRef(LineCursor &C, Reg &Base, int64_t &Off) {
    if (!C.eat("["))
      return error("expected '['");
    if (!parseReg(C, Base))
      return false;
    if (!C.eat("+"))
      return error("expected '+' in memory operand");
    if (!C.integer(Off))
      return error("expected displacement");
    if (!C.eat("]"))
      return error("expected ']'");
    return true;
  }

  bool parseBlockRef(LineCursor &C, uint32_t &Target) {
    if (!C.eat("bb"))
      return error("expected block reference");
    int64_t N = 0;
    if (!C.integer(N))
      return error("expected block number");
    if (N < 0 || N > int64_t(~0u))
      return error("block number out of range");
    Target = static_cast<uint32_t>(N);
    return true;
  }

  bool parseCond(const std::string &Name, CondCode &CC) {
    if (Name == "eq")
      CC = CondCode::EQ;
    else if (Name == "ne")
      CC = CondCode::NE;
    else if (Name == "lt")
      CC = CondCode::LT;
    else if (Name == "le")
      CC = CondCode::LE;
    else if (Name == "gt")
      CC = CondCode::GT;
    else if (Name == "ge")
      CC = CondCode::GE;
    else
      return error("bad condition code '" + Name + "'");
    return true;
  }

  /// Assigns \p I its static id and appends it to the current block. An
  /// explicit `@N` annotation wins; otherwise ids count up over the
  /// function's *unannotated* instructions, mirroring Program::str(),
  /// which emits an annotation exactly when an id deviates from this
  /// default. Ids must be unique within the function (the same invariant
  /// ir::verify enforces); rejecting the collision here gives the error a
  /// line number.
  bool emit(Instruction I, int64_t AnnotatedId) {
    I.Id = AnnotatedId >= 0 ? static_cast<uint32_t>(AnnotatedId)
                            : UnannotatedId++;
    if (!UsedIds.insert(I.Id).second)
      return error("duplicate instruction id @" + std::to_string(I.Id));
    CurFunc->setInstIdWatermark(I.Id + 1);
    CurFunc->block(CurBlock).Insts.push_back(I);
    return true;
  }

  bool parseInstruction(LineCursor &C) {
    if (!CurFunc || CurBlock == ~0u)
      return error("instruction outside a block");
    std::string Mn = C.word();
    Instruction I;

    // Split "cmp.lt" / "cmpi.ge" / "chk.c" / "lib.st" style mnemonics.
    std::string Base = Mn, Suffix;
    if (size_t Dot = Mn.find('.'); Dot != std::string::npos) {
      Base = Mn.substr(0, Dot);
      Suffix = Mn.substr(Dot + 1);
    }

    auto RRR = [&](Opcode Op) {
      I.Op = Op;
      return parseReg(C, I.Dst) && C.eat("=") && parseReg(C, I.Src1) &&
             C.eat(",") && parseReg(C, I.Src2);
    };
    auto RRI = [&](Opcode Op) {
      I.Op = Op;
      return parseReg(C, I.Dst) && C.eat("=") && parseReg(C, I.Src1) &&
             C.eat(",") && C.integer(I.Imm);
    };
    auto RR = [&](Opcode Op) {
      I.Op = Op;
      return parseReg(C, I.Dst) && C.eat("=") && parseReg(C, I.Src1);
    };
    auto Bare = [&](Opcode Op) {
      I.Op = Op;
      return true;
    };
    auto BlockOp = [&](Opcode Op) {
      I.Op = Op;
      return parseBlockRef(C, I.Target);
    };

    bool Ok;
    if (Mn == "nop")
      Ok = Bare(Opcode::Nop);
    else if (Mn == "add")
      Ok = RRR(Opcode::Add);
    else if (Mn == "sub")
      Ok = RRR(Opcode::Sub);
    else if (Mn == "mul")
      Ok = RRR(Opcode::Mul);
    else if (Mn == "and")
      Ok = RRR(Opcode::And);
    else if (Mn == "or")
      Ok = RRR(Opcode::Or);
    else if (Mn == "xor")
      Ok = RRR(Opcode::Xor);
    else if (Mn == "shl")
      Ok = RRR(Opcode::Shl);
    else if (Mn == "shr")
      Ok = RRR(Opcode::Shr);
    else if (Mn == "addi")
      Ok = RRI(Opcode::AddI);
    else if (Mn == "muli")
      Ok = RRI(Opcode::MulI);
    else if (Mn == "shli")
      Ok = RRI(Opcode::ShlI);
    else if (Mn == "andi")
      Ok = RRI(Opcode::AndI);
    else if (Mn == "ori")
      Ok = RRI(Opcode::OrI);
    else if (Mn == "mov")
      Ok = RR(Opcode::Mov);
    else if (Mn == "movi") {
      I.Op = Opcode::MovI;
      Ok = parseReg(C, I.Dst) && C.eat("=") && C.integer(I.Imm);
    } else if (Base == "cmp" && !Suffix.empty()) {
      Ok = parseCond(Suffix, I.Cond) && RRR(Opcode::Cmp);
    } else if (Base == "cmpi" && !Suffix.empty()) {
      Ok = parseCond(Suffix, I.Cond) && RRI(Opcode::CmpI);
    } else if (Mn == "fadd")
      Ok = RRR(Opcode::FAdd);
    else if (Mn == "fsub")
      Ok = RRR(Opcode::FSub);
    else if (Mn == "fmul")
      Ok = RRR(Opcode::FMul);
    else if (Mn == "xtof")
      Ok = RR(Opcode::XToF);
    else if (Mn == "ftox")
      Ok = RR(Opcode::FToX);
    else if (Mn == "ld8" || Mn == "ldf") {
      I.Op = Mn == "ld8" ? Opcode::Load : Opcode::LoadF;
      Ok = parseReg(C, I.Dst) && C.eat("=") &&
           parseMemRef(C, I.Src1, I.Imm);
    } else if (Mn == "st8" || Mn == "stf") {
      I.Op = Mn == "st8" ? Opcode::Store : Opcode::StoreF;
      Ok = parseMemRef(C, I.Src1, I.Imm) && C.eat("=") &&
           parseReg(C, I.Src2);
    } else if (Mn == "lfetch") {
      I.Op = Opcode::Prefetch;
      Ok = parseMemRef(C, I.Src1, I.Imm);
    } else if (Mn == "br") {
      I.Op = Opcode::Br;
      Ok = C.eat("(") && parseReg(C, I.Src1) && C.eat(")") &&
           parseBlockRef(C, I.Target);
    } else if (Mn == "jmp")
      Ok = BlockOp(Opcode::Jmp);
    else if (Mn == "call") {
      I.Op = Opcode::Call;
      int64_t N = 0;
      Ok = C.eat("fn") && C.integer(N) && N >= 0 && N <= int64_t(~0u);
      I.Target = static_cast<uint32_t>(N);
    } else if (Mn == "calli") {
      I.Op = Opcode::CallInd;
      Ok = C.eat("[") && parseReg(C, I.Src1) && C.eat("]");
    } else if (Mn == "ret")
      Ok = Bare(Opcode::Ret);
    else if (Mn == "halt")
      Ok = Bare(Opcode::Halt);
    else if (Base == "chk" && Suffix == "c")
      Ok = BlockOp(Opcode::ChkC);
    else if (Mn == "rfi")
      Ok = Bare(Opcode::Rfi);
    else if (Mn == "spawn")
      Ok = BlockOp(Opcode::Spawn);
    else if (Mn == "kill")
      Ok = Bare(Opcode::KillThread);
    else if (Base == "lib" && suffixIsLib(Suffix)) {
      int64_t Slot = 0;
      if (Suffix == "ld") {
        I.Op = Opcode::CopyFromLIB;
        Ok = parseReg(C, I.Dst) && C.eat("=") && C.eat("lib[") &&
             C.integer(Slot) && C.eat("]");
      } else {
        I.Op = Suffix == "st" ? Opcode::CopyToLIB : Opcode::CopyToLIBI;
        Ok = C.eat("lib[") && C.integer(Slot) && C.eat("]") && C.eat("=");
        if (Ok) {
          if (I.Op == Opcode::CopyToLIB)
            Ok = parseReg(C, I.Src1);
          else
            Ok = C.integer(I.Imm);
        }
      }
      I.Target = static_cast<uint32_t>(Slot);
    } else {
      return error("unknown mnemonic '" + Mn + "'");
    }

    if (!Ok)
      return Msg.empty() ? error("malformed operands for '" + Mn + "'")
                         : false;
    // Optional static-id annotation: `@N` pins this instruction's id (see
    // emit()). Strict like every other number: digits only, in range.
    int64_t AnnotatedId = -1;
    if (C.eat("@")) {
      if (!C.integer(AnnotatedId) || AnnotatedId < 0 ||
          AnnotatedId > int64_t(~0u))
        return error("bad instruction id annotation");
    }
    if (!C.atEnd())
      return error("trailing junk after instruction");
    return emit(I, AnnotatedId);
  }

  static bool suffixIsLib(const std::string &S) {
    return S == "st" || S == "sti" || S == "ld";
  }

  /// "none" or a register; D keeps the invalid default for "none".
  bool parseStreamReg(LineCursor &C, Reg &R) {
    if (C.eat("none")) {
      R = Reg();
      return true;
    }
    return parseReg(C, R);
  }

  bool parseOffsetList(LineCursor &C, std::vector<int64_t> &Offs) {
    int64_t V = 0;
    if (!C.integer(V))
      return error("expected prefetch offset");
    Offs.push_back(V);
    while (C.eat(",")) {
      if (!C.integer(V))
        return error("expected prefetch offset after ','");
      Offs.push_back(V);
    }
    return true;
  }

  /// One `stream` directive (the canonical key order Program::str()
  /// emits; see ir/Stream.h for the descriptor semantics).
  bool parseStreamLine(LineCursor &C) {
    C.eat("stream");
    StreamDescriptor D;
    int64_t N = 0;
    if (!C.eat("fn") || !C.integer(N) || N < 0 || N > int64_t(~0u))
      return error("expected 'fnN' in stream directive");
    D.Func = static_cast<uint32_t>(N);
    if (!C.eat("bb") || !C.integer(N) || N < 0 || N > int64_t(~0u))
      return error("expected 'bbN' in stream directive");
    D.StubBlock = static_cast<uint32_t>(N);
    std::string K = C.word();
    if (K == "affine")
      D.Kind = StreamKind::Affine;
    else if (K == "chase")
      D.Kind = StreamKind::Chase;
    else if (K == "indirect")
      D.Kind = StreamKind::Indirect;
    else
      return error("bad stream kind '" + K + "'");
    auto Int = [&](const char *Key, int64_t &V) {
      if (!C.eat(std::string(Key) + "="))
        return error(std::string("expected '") + Key +
                     "=' in stream directive");
      if (!C.integer(V))
        return error(std::string("expected integer for '") + Key + "'");
      return true;
    };
    auto RegKey = [&](const char *Key, Reg &R) {
      if (!C.eat(std::string(Key) + "="))
        return error(std::string("expected '") + Key +
                     "=' in stream directive");
      return parseStreamReg(C, R);
    };
    int64_t Mask = 0, Elem = 0, Depth = 0;
    if (!RegKey("abase", D.AddrBase) || !RegKey("aind", D.AddrInd) ||
        !Int("amul", D.AddrMul) || !Int("aadd", D.AddrAdd) ||
        !Int("stride", D.Stride) || !Int("coff", D.ChaseOff) ||
        !RegKey("vbase", D.ValBase) || !Int("vmul", D.ValMul) ||
        !Int("vmask", Mask) || !Int("vshift", D.ValShift) ||
        !Int("vadd", D.ValAdd) || !Int("elem", Elem) ||
        !Int("depth", Depth))
      return false;
    D.ValMask = static_cast<uint64_t>(Mask);
    if (Elem <= 0 || Elem > 64)
      return error("bad stream element size");
    D.ElemBytes = static_cast<uint32_t>(Elem);
    if (Depth < 0 || Depth > int64_t(~0u))
      return error("bad stream depth");
    D.Depth = static_cast<uint32_t>(Depth);
    if (!C.eat("pf="))
      return error("expected 'pf=' in stream directive");
    if (!parseOffsetList(C, D.PrefetchOffsets))
      return false;
    if (!C.eat("ipf="))
      return error("expected 'ipf=' in stream directive");
    if (C.eat("none")) {
      D.PrefetchIndex = false;
    } else {
      D.PrefetchIndex = true;
      if (!parseOffsetList(C, D.IdxPrefetchOffsets))
        return false;
    }
    if (!C.atEnd())
      return error("trailing junk after stream directive");
    Out.addStream(D);
    return true;
  }

  Program &Out;
  DataImage *Data = nullptr;
  bool InDataSection = false;
  std::vector<std::string> Lines;
  size_t LineNo = 0;
  std::string Msg;
  Function *CurFunc = nullptr;
  uint32_t CurBlock = ~0u;
  uint32_t UnannotatedId = 0; ///< Default-id counter of the current function.
  std::unordered_set<uint32_t> UsedIds; ///< Ids taken in the current function.
};

} // namespace

bool ssp::ir::parseProgram(const std::string &Text, Program &Out,
                           std::string &Error, DataImage *Data) {
  return Parser(Text, Out, Data).run(Error);
}
