//===- ir/Function.h - Basic blocks and functions --------------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock and Function: the structured view of the binary. Blocks are
/// laid out in vector order; control falls through from one block to the
/// next unless the block ends with an unconditional terminator. Attachment
/// blocks (SSP stub and slice blocks, Figure 7 of the paper) are appended
/// after the function body and are only reachable via chk.c exceptions and
/// thread spawns.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_IR_FUNCTION_H
#define SSP_IR_FUNCTION_H

#include "ir/Instruction.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ssp::ir {

/// The role a block plays in the SSP-enhanced binary layout (Figure 7).
enum class BlockKind : uint8_t {
  Body,  ///< Part of the original function body.
  Stub,  ///< chk.c recovery code: copies live-ins to the LIB and spawns.
  Slice  ///< p-slice body executed by a speculative thread.
};

/// A straight-line sequence of instructions with a single entry point.
struct BasicBlock {
  std::string Name;
  uint32_t Index = 0; ///< Position within the parent function.
  BlockKind Kind = BlockKind::Body;
  std::vector<Instruction> Insts;

  bool isAttachment() const { return Kind != BlockKind::Body; }

  /// Returns true if the block ends with an opcode after which control never
  /// falls through to the next block in layout order.
  bool endsWithUnconditionalExit() const {
    if (Insts.empty())
      return false;
    return isTerminator(Insts.back().Op);
  }
};

/// A procedure of the binary: an entry block followed by body blocks, then
/// (after adaptation) any stub/slice attachments.
class Function {
public:
  Function(std::string Name, uint32_t Index)
      : Name(std::move(Name)), Index(Index) {}

  const std::string &getName() const { return Name; }
  uint32_t getIndex() const { return Index; }

  /// Appends a new block and returns its index.
  uint32_t addBlock(std::string BlockName,
                    BlockKind Kind = BlockKind::Body) {
    uint32_t Idx = static_cast<uint32_t>(Blocks.size());
    Blocks.push_back(BasicBlock());
    Blocks.back().Name = std::move(BlockName);
    Blocks.back().Index = Idx;
    Blocks.back().Kind = Kind;
    return Idx;
  }

  BasicBlock &block(uint32_t Idx) { return Blocks[Idx]; }
  const BasicBlock &block(uint32_t Idx) const { return Blocks[Idx]; }
  size_t numBlocks() const { return Blocks.size(); }

  std::vector<BasicBlock> &blocks() { return Blocks; }
  const std::vector<BasicBlock> &blocks() const { return Blocks; }

  /// Allocates the next function-unique static instruction id.
  uint32_t nextInstId() { return NextId++; }

  /// Raises the id watermark (used when cloning so fresh ids never collide
  /// with preserved ones).
  void setInstIdWatermark(uint32_t V) {
    if (V > NextId)
      NextId = V;
  }

  /// Number of instruction ids handed out so far (upper bound for id-indexed
  /// side tables).
  uint32_t numInstIds() const { return NextId; }

  /// Total instruction count over all blocks.
  size_t numInsts() const {
    size_t N = 0;
    for (const BasicBlock &BB : Blocks)
      N += BB.Insts.size();
    return N;
  }

private:
  std::string Name;
  uint32_t Index;
  std::vector<BasicBlock> Blocks;
  uint32_t NextId = 0;
};

} // namespace ssp::ir

#endif // SSP_IR_FUNCTION_H
