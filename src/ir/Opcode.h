//===- ir/Opcode.h - Instruction opcodes of the Itanium-like IR -----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcodes of the machine-level IR the post-pass tool operates on. The set
/// mirrors the subset of the Itanium ISA the paper's tool manipulates: plain
/// integer/FP computation, loads/stores, compares into predicate registers,
/// predicated branches, calls — plus the SSP extensions of Section 3.4.2:
/// the `chk.c` trigger check, live-in buffer copies, thread spawn and
/// thread-kill, and the `rfi`-style return from the stub block.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_IR_OPCODE_H
#define SSP_IR_OPCODE_H

#include <cstdint>

namespace ssp::ir {

enum class Opcode : uint8_t {
  Nop,

  // Integer ALU (reg, reg).
  Add,
  Sub,
  Mul,
  And,
  Or,
  Xor,
  Shl,
  Shr,

  // Integer ALU (reg, immediate).
  AddI,
  MulI,
  ShlI,
  AndI,
  OrI,

  // Moves.
  Mov,  ///< Dst := Src1 (same class, Int or FP).
  MovI, ///< Dst := Imm (Int).

  // Compares into a predicate register. The condition is Instruction::Cond.
  Cmp,  ///< Dst.p := Src1 <cond> Src2.
  CmpI, ///< Dst.p := Src1 <cond> Imm.

  // Floating point (operating on FP registers).
  FAdd,
  FSub,
  FMul,
  XToF, ///< Dst.f := double(Src1.int).
  FToX, ///< Dst.int := int64(Src1.f).

  // Memory. Effective address is Src1 + Imm.
  Load,     ///< Dst.int := mem64[Src1 + Imm].
  LoadF,    ///< Dst.f := mem64[Src1 + Imm] (bits as double).
  Store,    ///< mem64[Src1 + Imm] := Src2.int.
  StoreF,   ///< mem64[Src1 + Imm] := Src2.f (bits).
  Prefetch, ///< Touch line at Src1 + Imm; no register write, never faults.

  // Control flow. Branch targets are block indices in Instruction::Target.
  Br,      ///< If Src1.pred, jump to block Target, else fall through.
  Jmp,     ///< Unconditional jump to block Target.
  Call,    ///< Call function index Target; pushes the return address.
  CallInd, ///< Call the function whose index is in Src1.int.
  Ret,     ///< Return to the pushed address.
  Halt,    ///< Terminates the program (main thread only).

  // SSP extensions (Section 3.4.2 of the paper).
  ChkC,        ///< Trigger: if a free hardware context exists, raise the
               ///< lightweight exception and run stub block Target; else nop.
  Rfi,         ///< Return from the stub block to the interrupted PC.
  CopyToLIB,   ///< LIB[slot Target] := Src1 (stub/slice live-in marshalling).
  CopyToLIBI,  ///< LIB[slot Target] := Imm (stage a constant, e.g. a trip
               ///< budget, without touching any register).
  CopyFromLIB, ///< Dst := LIB[slot Target] (slice prologue).
  Spawn,       ///< Spawn a speculative thread at block Target if a context is
               ///< free, handing it the staged live-in values; else ignored.
  KillThread,  ///< Speculative thread terminates, freeing its context.
};

/// Condition codes for Cmp/CmpI (signed comparisons).
enum class CondCode : uint8_t { EQ, NE, LT, LE, GT, GE };

/// The function-unit class an opcode executes on (paper, Table 1: 4 integer
/// units, 2 FP units, 3 branch units, 2 memory ports).
enum class FuncUnit : uint8_t { None, Int, FP, Mem, Br };

/// Returns the function unit \p Op executes on.
FuncUnit funcUnitOf(Opcode Op);

/// Returns the execution latency in cycles of \p Op, excluding memory
/// hierarchy latency for loads (added by the cache model).
unsigned latencyOf(Opcode Op);

/// Returns true for opcodes that read or write the memory hierarchy.
bool isMemoryOp(Opcode Op);

/// Returns true for loads (Load, LoadF).
bool isLoad(Opcode Op);

/// Returns true for stores (Store, StoreF).
bool isStore(Opcode Op);

/// Returns true for opcodes that may transfer control (branches, calls,
/// returns, rfi, halt, chk.c when it fires).
bool isControlFlow(Opcode Op);

/// Returns true for opcodes that must terminate a basic block.
bool isTerminator(Opcode Op);

/// Returns true if \p Op's Target field names a basic block.
bool hasBlockTarget(Opcode Op);

/// Returns the mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Returns the mnemonic for \p CC.
const char *condName(CondCode CC);

/// Evaluates \p CC over two signed 64-bit values.
bool evalCond(CondCode CC, int64_t A, int64_t B);

} // namespace ssp::ir

#endif // SSP_IR_OPCODE_H
