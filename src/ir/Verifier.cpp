//===- ir/Verifier.cpp - Structural well-formedness checks ----------------===//

#include "ir/Verifier.h"

#include "ir/Program.h"

#include <set>

using namespace ssp;
using namespace ssp::ir;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Program &P) : P(P) {}

  std::vector<std::string> run() {
    for (uint32_t FI = 0; FI < P.numFuncs(); ++FI)
      verifyFunction(P.func(FI));
    if (P.numFuncs() == 0)
      error("program has no functions");
    else if (P.getEntry() >= P.numFuncs())
      error("entry function index out of range");
    return std::move(Diags);
  }

private:
  void error(const std::string &Msg) { Diags.push_back(Msg); }

  void errorIn(const Function &F, const BasicBlock &BB,
               const std::string &Msg) {
    error("in " + F.getName() + " bb" + std::to_string(BB.Index) + ": " +
          Msg);
  }

  void verifyFunction(const Function &F) {
    if (F.numBlocks() == 0) {
      error("function " + F.getName() + " has no blocks");
      return;
    }
    // Attachments must come after all body blocks, so body fallthrough never
    // runs into a stub or slice (Figure 7 layout).
    bool SeenAttachment = false;
    uint32_t LastBodyIdx = 0;
    for (const BasicBlock &BB : F.blocks()) {
      if (BB.isAttachment()) {
        SeenAttachment = true;
      } else {
        if (SeenAttachment)
          errorIn(F, BB, "body block after attachment blocks");
        LastBodyIdx = BB.Index;
      }
    }
    for (const BasicBlock &BB : F.blocks())
      verifyBlock(F, BB, BB.Index == LastBodyIdx);
    verifyUniqueIds(F);
  }

  void verifyUniqueIds(const Function &F) {
    std::set<uint32_t> Seen;
    for (const BasicBlock &BB : F.blocks())
      for (const Instruction &I : BB.Insts)
        if (!Seen.insert(I.Id).second)
          errorIn(F, BB,
                  "duplicate static instruction id " + std::to_string(I.Id));
  }

  void verifyBlock(const Function &F, const BasicBlock &BB,
                   bool IsLastBody) {
    if (BB.Insts.empty()) {
      errorIn(F, BB, "empty basic block");
      return;
    }
    for (size_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
      const Instruction &I = BB.Insts[Idx];
      bool IsLast = Idx + 1 == BB.Insts.size();
      verifyInst(F, BB, I, IsLast);
    }
    // The last body block must not fall off the end of the function.
    const Instruction &Last = BB.Insts.back();
    bool Exits = isTerminator(Last.Op) || Last.Op == Opcode::Br;
    if (IsLastBody && BB.Kind == BlockKind::Body &&
        !BB.endsWithUnconditionalExit())
      errorIn(F, BB, "last body block may fall through past the function");
    (void)Exits;
    switch (BB.Kind) {
    case BlockKind::Body:
      break;
    case BlockKind::Stub:
      if (Last.Op != Opcode::Rfi)
        errorIn(F, BB, "stub block must end with rfi");
      break;
    case BlockKind::Slice:
      if (!isTerminator(Last.Op) && Last.Op != Opcode::Br)
        errorIn(F, BB, "slice block must end with control flow");
      break;
    }
  }

  void verifyInst(const Function &F, const BasicBlock &BB,
                  const Instruction &I, bool IsLast) {
    // Register class constraints.
    auto WantClass = [&](Reg R, RegClass C, const char *What) {
      if (R.Cls != C)
        errorIn(F, BB, std::string(What) + " has wrong register class in '" +
                           I.str() + "'");
    };
    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
      WantClass(I.Dst, RegClass::Int, "dst");
      WantClass(I.Src1, RegClass::Int, "src1");
      WantClass(I.Src2, RegClass::Int, "src2");
      break;
    case Opcode::AddI:
    case Opcode::MulI:
    case Opcode::ShlI:
    case Opcode::AndI:
    case Opcode::OrI:
    case Opcode::MovI:
      WantClass(I.Dst, RegClass::Int, "dst");
      if (I.Op != Opcode::MovI)
        WantClass(I.Src1, RegClass::Int, "src1");
      break;
    case Opcode::Mov:
      if (I.Dst.Cls != I.Src1.Cls || (!I.Dst.isInt() && !I.Dst.isFP()))
        errorIn(F, BB, "mov operands must be same Int/FP class");
      break;
    case Opcode::Cmp:
      WantClass(I.Dst, RegClass::Pred, "dst");
      WantClass(I.Src1, RegClass::Int, "src1");
      WantClass(I.Src2, RegClass::Int, "src2");
      break;
    case Opcode::CmpI:
      WantClass(I.Dst, RegClass::Pred, "dst");
      WantClass(I.Src1, RegClass::Int, "src1");
      break;
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
      WantClass(I.Dst, RegClass::FP, "dst");
      WantClass(I.Src1, RegClass::FP, "src1");
      WantClass(I.Src2, RegClass::FP, "src2");
      break;
    case Opcode::XToF:
      WantClass(I.Dst, RegClass::FP, "dst");
      WantClass(I.Src1, RegClass::Int, "src1");
      break;
    case Opcode::FToX:
      WantClass(I.Dst, RegClass::Int, "dst");
      WantClass(I.Src1, RegClass::FP, "src1");
      break;
    case Opcode::Load:
      WantClass(I.Dst, RegClass::Int, "dst");
      WantClass(I.Src1, RegClass::Int, "base");
      break;
    case Opcode::LoadF:
      WantClass(I.Dst, RegClass::FP, "dst");
      WantClass(I.Src1, RegClass::Int, "base");
      break;
    case Opcode::Store:
      WantClass(I.Src1, RegClass::Int, "base");
      WantClass(I.Src2, RegClass::Int, "value");
      break;
    case Opcode::StoreF:
      WantClass(I.Src1, RegClass::Int, "base");
      WantClass(I.Src2, RegClass::FP, "value");
      break;
    case Opcode::Prefetch:
      WantClass(I.Src1, RegClass::Int, "base");
      break;
    case Opcode::Br:
      WantClass(I.Src1, RegClass::Pred, "predicate");
      break;
    case Opcode::CallInd:
      WantClass(I.Src1, RegClass::Int, "target");
      break;
    case Opcode::CopyToLIB:
      if (!I.Src1.isValid())
        errorIn(F, BB, "lib.st needs a source register");
      break;
    case Opcode::CopyFromLIB:
      if (!I.Dst.isValid())
        errorIn(F, BB, "lib.ld needs a destination register");
      break;
    default:
      break;
    }

    // Hardwired registers are read-only: r0 == 0 and p0 == true.
    Reg D = I.def();
    if (D.isValid() && D.Num == 0 &&
        (D.Cls == RegClass::Int || D.Cls == RegClass::Pred))
      errorIn(F, BB, "write to hardwired register " + D.str());

    // Control transfer target validity.
    if (hasBlockTarget(I.Op)) {
      if (I.Target >= F.numBlocks()) {
        errorIn(F, BB, "block target out of range in '" + I.str() + "'");
      } else {
        const BasicBlock &TargetBB = F.block(I.Target);
        if (I.Op == Opcode::ChkC && TargetBB.Kind != BlockKind::Stub)
          errorIn(F, BB, "chk.c must target a stub block");
        if (I.Op == Opcode::Spawn && TargetBB.Kind != BlockKind::Slice)
          errorIn(F, BB, "spawn must target a slice block");
        if ((I.Op == Opcode::Br || I.Op == Opcode::Jmp) &&
            TargetBB.isAttachment() != BB.isAttachment())
          errorIn(F, BB, "branch crosses body/attachment boundary");
      }
    }
    if (I.Op == Opcode::Call && I.Target >= P.numFuncs())
      errorIn(F, BB, "call target function out of range");

    // Br/Jmp/terminators must end the block; Call/ChkC/Spawn may be inline.
    bool MustBeLast = I.Op == Opcode::Br || isTerminator(I.Op);
    if (MustBeLast && !IsLast)
      errorIn(F, BB, "'" + I.str() + "' must be the last instruction");

    // SSP invariants (paper Section 2): speculative code never stores to
    // program memory and never invokes procedures or halts the machine.
    if (BB.Kind == BlockKind::Slice) {
      if (isStore(I.Op))
        errorIn(F, BB, "p-slice contains a store: '" + I.str() + "'");
      switch (I.Op) {
      case Opcode::Call:
      case Opcode::CallInd:
      case Opcode::Ret:
      case Opcode::Halt:
      case Opcode::ChkC:
      case Opcode::Rfi:
        errorIn(F, BB, "illegal opcode in p-slice: '" + I.str() + "'");
        break;
      default:
        break;
      }
    }
    if (BB.Kind == BlockKind::Stub && isStore(I.Op))
      errorIn(F, BB, "stub block contains a program-memory store");
  }

  const Program &P;
  std::vector<std::string> Diags;
};

} // namespace

std::vector<std::string> ssp::ir::verify(const Program &P) {
  return VerifierImpl(P).run();
}

bool ssp::ir::isWellFormed(const Program &P) { return verify(P).empty(); }
