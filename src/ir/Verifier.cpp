//===- ir/Verifier.cpp - Structural well-formedness checks ----------------===//

#include "ir/Verifier.h"

#include "ir/Program.h"
#include "verify/Diagnostic.h"

#include <set>

using namespace ssp;
using namespace ssp::ir;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Program &P, verify::DiagnosticEngine &DE)
      : P(P), DE(DE) {}

  void run() {
    for (uint32_t FI = 0; FI < P.numFuncs(); ++FI)
      verifyFunction(P.func(FI));
    if (P.numFuncs() == 0)
      DE.errorInProgram("structural.no-functions",
                        "program has no functions");
    else if (P.getEntry() >= P.numFuncs())
      DE.errorInProgram("structural.entry-range",
                        "entry function index out of range");
  }

private:
  void errorIn(const Function &F, const BasicBlock &BB, uint32_t Inst,
               const char *CheckId, const std::string &Msg,
               std::string Hint = "") {
    DE.error(CheckId, {F.getIndex(), BB.Index, Inst},
             "in " + F.getName() + " bb" + std::to_string(BB.Index) + ": " +
                 Msg,
             std::move(Hint));
  }

  void errorInBlock(const Function &F, const BasicBlock &BB,
                    const char *CheckId, const std::string &Msg) {
    DE.errorInBlock(CheckId, F.getIndex(), BB.Index,
                    "in " + F.getName() + " bb" + std::to_string(BB.Index) +
                        ": " + Msg);
  }

  void verifyFunction(const Function &F) {
    if (F.numBlocks() == 0) {
      DE.errorInFunc("structural.empty-function", F.getIndex(),
                     "function " + F.getName() + " has no blocks");
      return;
    }
    // Attachments must come after all body blocks, so body fallthrough never
    // runs into a stub or slice (Figure 7 layout).
    bool SeenAttachment = false;
    uint32_t LastBodyIdx = 0;
    for (const BasicBlock &BB : F.blocks()) {
      if (BB.isAttachment()) {
        SeenAttachment = true;
      } else {
        if (SeenAttachment)
          errorInBlock(F, BB, "structural.block-order",
                       "body block after attachment blocks");
        LastBodyIdx = BB.Index;
      }
    }
    for (const BasicBlock &BB : F.blocks())
      verifyBlock(F, BB, BB.Index == LastBodyIdx);
    verifyUniqueIds(F);
  }

  void verifyUniqueIds(const Function &F) {
    std::set<uint32_t> Seen;
    for (const BasicBlock &BB : F.blocks())
      for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx)
        if (!Seen.insert(BB.Insts[Idx].Id).second)
          errorIn(F, BB, Idx, "structural.dup-id",
                  "duplicate static instruction id " +
                      std::to_string(BB.Insts[Idx].Id));
  }

  void verifyBlock(const Function &F, const BasicBlock &BB,
                   bool IsLastBody) {
    if (BB.Insts.empty()) {
      errorInBlock(F, BB, "structural.empty-block", "empty basic block");
      return;
    }
    for (size_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
      const Instruction &I = BB.Insts[Idx];
      bool IsLast = Idx + 1 == BB.Insts.size();
      verifyInst(F, BB, static_cast<uint32_t>(Idx), I, IsLast);
    }
    // The last body block must not fall off the end of the function.
    const Instruction &Last = BB.Insts.back();
    if (IsLastBody && BB.Kind == BlockKind::Body &&
        !BB.endsWithUnconditionalExit())
      errorInBlock(F, BB, "structural.fallthrough",
                   "last body block may fall through past the function");
    switch (BB.Kind) {
    case BlockKind::Body:
      break;
    case BlockKind::Stub:
      if (Last.Op != Opcode::Rfi)
        errorIn(F, BB, static_cast<uint32_t>(BB.Insts.size() - 1),
                "structural.stub-rfi", "stub block must end with rfi",
                "end the chk.c recovery code with rfi so the main thread "
                "resumes at the interrupted instruction");
      break;
    case BlockKind::Slice:
      if (!isTerminator(Last.Op) && Last.Op != Opcode::Br)
        errorIn(F, BB, static_cast<uint32_t>(BB.Insts.size() - 1),
                "structural.slice-terminator",
                "slice block must end with control flow");
      break;
    }
  }

  void verifyInst(const Function &F, const BasicBlock &BB, uint32_t Idx,
                  const Instruction &I, bool IsLast) {
    // Register class constraints.
    auto WantClass = [&](Reg R, RegClass C, const char *What) {
      if (R.Cls != C)
        errorIn(F, BB, Idx, "structural.regclass",
                std::string(What) + " has wrong register class in '" +
                    I.str() + "'");
    };
    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
      WantClass(I.Dst, RegClass::Int, "dst");
      WantClass(I.Src1, RegClass::Int, "src1");
      WantClass(I.Src2, RegClass::Int, "src2");
      break;
    case Opcode::AddI:
    case Opcode::MulI:
    case Opcode::ShlI:
    case Opcode::AndI:
    case Opcode::OrI:
    case Opcode::MovI:
      WantClass(I.Dst, RegClass::Int, "dst");
      if (I.Op != Opcode::MovI)
        WantClass(I.Src1, RegClass::Int, "src1");
      break;
    case Opcode::Mov:
      if (I.Dst.Cls != I.Src1.Cls || (!I.Dst.isInt() && !I.Dst.isFP()))
        errorIn(F, BB, Idx, "structural.regclass",
                "mov operands must be same Int/FP class");
      break;
    case Opcode::Cmp:
      WantClass(I.Dst, RegClass::Pred, "dst");
      WantClass(I.Src1, RegClass::Int, "src1");
      WantClass(I.Src2, RegClass::Int, "src2");
      break;
    case Opcode::CmpI:
      WantClass(I.Dst, RegClass::Pred, "dst");
      WantClass(I.Src1, RegClass::Int, "src1");
      break;
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
      WantClass(I.Dst, RegClass::FP, "dst");
      WantClass(I.Src1, RegClass::FP, "src1");
      WantClass(I.Src2, RegClass::FP, "src2");
      break;
    case Opcode::XToF:
      WantClass(I.Dst, RegClass::FP, "dst");
      WantClass(I.Src1, RegClass::Int, "src1");
      break;
    case Opcode::FToX:
      WantClass(I.Dst, RegClass::Int, "dst");
      WantClass(I.Src1, RegClass::FP, "src1");
      break;
    case Opcode::Load:
      WantClass(I.Dst, RegClass::Int, "dst");
      WantClass(I.Src1, RegClass::Int, "base");
      break;
    case Opcode::LoadF:
      WantClass(I.Dst, RegClass::FP, "dst");
      WantClass(I.Src1, RegClass::Int, "base");
      break;
    case Opcode::Store:
      WantClass(I.Src1, RegClass::Int, "base");
      WantClass(I.Src2, RegClass::Int, "value");
      break;
    case Opcode::StoreF:
      WantClass(I.Src1, RegClass::Int, "base");
      WantClass(I.Src2, RegClass::FP, "value");
      break;
    case Opcode::Prefetch:
      WantClass(I.Src1, RegClass::Int, "base");
      break;
    case Opcode::Br:
      WantClass(I.Src1, RegClass::Pred, "predicate");
      break;
    case Opcode::CallInd:
      WantClass(I.Src1, RegClass::Int, "target");
      break;
    case Opcode::CopyToLIB:
      if (!I.Src1.isValid())
        errorIn(F, BB, Idx, "structural.regclass",
                "lib.st needs a source register");
      break;
    case Opcode::CopyFromLIB:
      if (!I.Dst.isValid())
        errorIn(F, BB, Idx, "structural.regclass",
                "lib.ld needs a destination register");
      break;
    default:
      break;
    }

    // Hardwired registers are read-only: r0 == 0 and p0 == true.
    Reg D = I.def();
    if (D.isValid() && D.Num == 0 &&
        (D.Cls == RegClass::Int || D.Cls == RegClass::Pred))
      errorIn(F, BB, Idx, "structural.hardwired-write",
              "write to hardwired register " + D.str());

    // Control transfer target validity.
    if (hasBlockTarget(I.Op)) {
      if (I.Target >= F.numBlocks()) {
        errorIn(F, BB, Idx, "structural.target-range",
                "block target out of range in '" + I.str() + "'");
      } else {
        const BasicBlock &TargetBB = F.block(I.Target);
        if (I.Op == Opcode::ChkC && TargetBB.Kind != BlockKind::Stub)
          errorIn(F, BB, Idx, "structural.chkc-target",
                  "chk.c must target a stub block",
                  "point the trigger at the chk.c recovery stub");
        if (I.Op == Opcode::Spawn && TargetBB.Kind != BlockKind::Slice)
          errorIn(F, BB, Idx, "structural.spawn-target",
                  "spawn must target a slice block",
                  "speculative threads may only execute p-slice code");
        if ((I.Op == Opcode::Br || I.Op == Opcode::Jmp) &&
            TargetBB.isAttachment() != BB.isAttachment())
          errorIn(F, BB, Idx, "structural.branch-crossing",
                  "branch crosses body/attachment boundary");
      }
    }
    if (I.Op == Opcode::Call && I.Target >= P.numFuncs())
      errorIn(F, BB, Idx, "structural.call-range",
              "call target function out of range");

    // Br/Jmp/terminators must end the block; Call/ChkC/Spawn may be inline.
    bool MustBeLast = I.Op == Opcode::Br || isTerminator(I.Op);
    if (MustBeLast && !IsLast)
      errorIn(F, BB, Idx, "structural.terminator-position",
              "'" + I.str() + "' must be the last instruction");

    // SSP invariants (paper Section 2): speculative code never stores to
    // program memory and never invokes procedures or halts the machine.
    if (BB.Kind == BlockKind::Slice) {
      if (isStore(I.Op))
        errorIn(F, BB, Idx, "structural.slice-store",
                "p-slice contains a store: '" + I.str() + "'",
                "p-slices must be store-free; drop the store or convert "
                "its value into a live-in");
      switch (I.Op) {
      case Opcode::Call:
      case Opcode::CallInd:
      case Opcode::Ret:
      case Opcode::Halt:
      case Opcode::ChkC:
      case Opcode::Rfi:
        errorIn(F, BB, Idx, "structural.slice-opcode",
                "illegal opcode in p-slice: '" + I.str() + "'");
        break;
      default:
        break;
      }
    }
    if (BB.Kind == BlockKind::Stub && isStore(I.Op))
      errorIn(F, BB, Idx, "structural.stub-store",
              "stub block contains a program-memory store");
  }

  const Program &P;
  verify::DiagnosticEngine &DE;
};

} // namespace

void ssp::ir::verifyStructural(const Program &P,
                               verify::DiagnosticEngine &DE) {
  VerifierImpl(P, DE).run();
}

std::vector<std::string> ssp::ir::verify(const Program &P) {
  verify::DiagnosticEngine DE;
  verifyStructural(P, DE);
  std::vector<std::string> Out;
  for (const verify::Diagnostic &D : DE.diagnostics())
    Out.push_back(D.Message);
  return Out;
}

bool ssp::ir::isWellFormed(const Program &P) { return verify(P).empty(); }
