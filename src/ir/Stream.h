//===- ir/Stream.h - Stream descriptors for classified p-slices -----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A StreamDescriptor is the compact, directly-executable form of a
/// classified p-slice: instead of fetching slice instructions through a
/// spare hardware context, the simulator's stream engine advances the
/// descriptor's address recurrence at trigger time (gem-forge style; see
/// DESIGN.md "Stream descriptors"). Three pattern kinds cover the regular
/// cases:
///
///   Affine    addr_i = R[AddrBase] + R[AddrInd]*AddrMul + AddrAdd
///                      + i*Stride          (induction-affine)
///   Chase     p_{i+1} = mem[p_i + ChaseOff]; prefetch p_{i+1}+off_j
///                                           (recurrence pointer-chase)
///   Indirect  idx_i affine as above; v_i = mem[idx_i];
///             gather_i = R[ValBase] + (((v_i*ValMul)&ValMask)<<ValShift)
///                        + ValAdd          (a[b[i]]-style gather)
///
/// Register operands are *live-in captures*: the engine snapshots them from
/// the triggering thread's register file when the descriptor activates.
/// Irregular slices carry no descriptor and fall back to full p-slice
/// replay, so attaching descriptors never loses coverage.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_IR_STREAM_H
#define SSP_IR_STREAM_H

#include "ir/Reg.h"

#include <cstdint>
#include <vector>

namespace ssp::ir {

/// The access-pattern taxonomy of classified slices.
enum class StreamKind : uint8_t { Affine, Chase, Indirect };

inline const char *streamKindName(StreamKind K) {
  switch (K) {
  case StreamKind::Affine:
    return "affine";
  case StreamKind::Chase:
    return "chase";
  case StreamKind::Indirect:
    return "indirect";
  }
  return "?";
}

/// One classified slice, bound to its trigger stub. The (Func, StubBlock)
/// pair keys the descriptor to the chk.c stub whose firing activates it —
/// the same key SliceManifest uses, so the verify pass can join them.
struct StreamDescriptor {
  StreamKind Kind = StreamKind::Affine;
  uint32_t Func = 0;
  uint32_t StubBlock = 0;

  /// Address recurrence (Affine/Indirect first address; Chase seed
  /// pointer). AddrBase/AddrInd are captured registers (AddrInd optional).
  Reg AddrBase;
  Reg AddrInd;
  int64_t AddrMul = 0;
  int64_t AddrAdd = 0;
  /// Per-step address advance (Affine/Indirect index stream).
  int64_t Stride = 0;
  /// Chase: the link-pointer load offset (p' = mem[p + ChaseOff]).
  int64_t ChaseOff = 0;

  /// Indirect gather value mapping: gather = R[ValBase] +
  /// (((v * ValMul) & ValMask) << ValShift) + ValAdd.
  Reg ValBase;
  int64_t ValMul = 1;
  uint64_t ValMask = ~0ull;
  int64_t ValShift = 0;
  int64_t ValAdd = 0;

  /// Access granularity of one element (this IR's loads are 8-byte).
  uint32_t ElemBytes = 8;
  /// Steps the engine runs per activation (the slice chain's trip budget,
  /// clamped by the machine's MaxStreamDepth at activation).
  uint32_t Depth = 0;

  /// Prefetch offsets relative to the per-step element address (Affine:
  /// the affine address; Chase: the freshly chased pointer; Indirect: the
  /// gather address), in the slice's emission order.
  std::vector<int64_t> PrefetchOffsets;
  /// Indirect only: also touch the index-stream element (the b[i] load is
  /// itself delinquent), at these offsets.
  bool PrefetchIndex = false;
  std::vector<int64_t> IdxPrefetchOffsets;

  friend bool operator==(const StreamDescriptor &A,
                         const StreamDescriptor &B) {
    return A.Kind == B.Kind && A.Func == B.Func &&
           A.StubBlock == B.StubBlock && A.AddrBase == B.AddrBase &&
           A.AddrInd == B.AddrInd && A.AddrMul == B.AddrMul &&
           A.AddrAdd == B.AddrAdd && A.Stride == B.Stride &&
           A.ChaseOff == B.ChaseOff && A.ValBase == B.ValBase &&
           A.ValMul == B.ValMul && A.ValMask == B.ValMask &&
           A.ValShift == B.ValShift && A.ValAdd == B.ValAdd &&
           A.ElemBytes == B.ElemBytes && A.Depth == B.Depth &&
           A.PrefetchOffsets == B.PrefetchOffsets &&
           A.PrefetchIndex == B.PrefetchIndex &&
           A.IdxPrefetchOffsets == B.IdxPrefetchOffsets;
  }
  friend bool operator!=(const StreamDescriptor &A,
                         const StreamDescriptor &B) {
    return !(A == B);
  }
};

} // namespace ssp::ir

#endif // SSP_IR_STREAM_H
