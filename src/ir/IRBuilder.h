//===- ir/IRBuilder.h - Convenience construction of IR --------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder assembles functions instruction by instruction. The workload
/// generators use it to hand-write the seven benchmark binaries, and the SSP
/// rewriter uses it to emit stub and slice attachments.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_IR_IRBUILDER_H
#define SSP_IR_IRBUILDER_H

#include "ir/Program.h"

#include <cassert>

namespace ssp::ir {

/// Builds IR into a Program. Holds a current insertion point (function,
/// block); every emit call appends one instruction there and assigns it a
/// fresh function-unique static id.
class IRBuilder {
public:
  explicit IRBuilder(Program &P) : P(P) {}

  /// Creates a function and makes it current (with no current block).
  Function &createFunction(const std::string &Name) {
    Function &F = P.addFunction(Name);
    CurFunc = F.getIndex();
    CurBlock = ~0u;
    return F;
  }

  /// Switches the insertion function (e.g. back to a previously created one).
  void setFunction(uint32_t FuncIdx) {
    assert(FuncIdx < P.numFuncs() && "bad function index");
    CurFunc = FuncIdx;
    CurBlock = ~0u;
  }

  /// Creates a block in the current function and makes it the insert point.
  uint32_t createBlock(const std::string &Name,
                       BlockKind Kind = BlockKind::Body) {
    assert(CurFunc != ~0u && "no current function");
    CurBlock = P.func(CurFunc).addBlock(Name, Kind);
    return CurBlock;
  }

  void setInsertPoint(uint32_t BlockIdx) {
    assert(CurFunc != ~0u && BlockIdx < P.func(CurFunc).numBlocks());
    CurBlock = BlockIdx;
  }

  uint32_t currentFunction() const { return CurFunc; }
  uint32_t currentBlock() const { return CurBlock; }

  /// Emits a fully-formed instruction at the insertion point, assigning a
  /// fresh static id, and returns a reference to the stored instruction.
  Instruction &emit(Instruction I) {
    assert(CurFunc != ~0u && CurBlock != ~0u && "no insertion point");
    Function &F = P.func(CurFunc);
    I.Id = F.nextInstId();
    F.block(CurBlock).Insts.push_back(I);
    return F.block(CurBlock).Insts.back();
  }

  // ALU, reg-reg.
  void add(Reg D, Reg A, Reg B) { emitRRR(Opcode::Add, D, A, B); }
  void sub(Reg D, Reg A, Reg B) { emitRRR(Opcode::Sub, D, A, B); }
  void mul(Reg D, Reg A, Reg B) { emitRRR(Opcode::Mul, D, A, B); }
  void and_(Reg D, Reg A, Reg B) { emitRRR(Opcode::And, D, A, B); }
  void or_(Reg D, Reg A, Reg B) { emitRRR(Opcode::Or, D, A, B); }
  void xor_(Reg D, Reg A, Reg B) { emitRRR(Opcode::Xor, D, A, B); }
  void shl(Reg D, Reg A, Reg B) { emitRRR(Opcode::Shl, D, A, B); }
  void shr(Reg D, Reg A, Reg B) { emitRRR(Opcode::Shr, D, A, B); }

  // ALU, reg-imm.
  void addI(Reg D, Reg A, int64_t Imm) { emitRRI(Opcode::AddI, D, A, Imm); }
  void mulI(Reg D, Reg A, int64_t Imm) { emitRRI(Opcode::MulI, D, A, Imm); }
  void shlI(Reg D, Reg A, int64_t Imm) { emitRRI(Opcode::ShlI, D, A, Imm); }
  void andI(Reg D, Reg A, int64_t Imm) { emitRRI(Opcode::AndI, D, A, Imm); }
  void orI(Reg D, Reg A, int64_t Imm) { emitRRI(Opcode::OrI, D, A, Imm); }

  // Moves.
  void mov(Reg D, Reg S) { emitRRR(Opcode::Mov, D, S, Reg()); }
  void movI(Reg D, int64_t Imm) {
    Instruction I;
    I.Op = Opcode::MovI;
    I.Dst = D;
    I.Imm = Imm;
    emit(I);
  }

  // Compares.
  void cmp(CondCode CC, Reg P_, Reg A, Reg B) {
    Instruction I;
    I.Op = Opcode::Cmp;
    I.Cond = CC;
    I.Dst = P_;
    I.Src1 = A;
    I.Src2 = B;
    emit(I);
  }
  void cmpI(CondCode CC, Reg P_, Reg A, int64_t Imm) {
    Instruction I;
    I.Op = Opcode::CmpI;
    I.Cond = CC;
    I.Dst = P_;
    I.Src1 = A;
    I.Imm = Imm;
    emit(I);
  }

  // Floating point.
  void fadd(Reg D, Reg A, Reg B) { emitRRR(Opcode::FAdd, D, A, B); }
  void fsub(Reg D, Reg A, Reg B) { emitRRR(Opcode::FSub, D, A, B); }
  void fmul(Reg D, Reg A, Reg B) { emitRRR(Opcode::FMul, D, A, B); }
  void xtof(Reg D, Reg S) { emitRRR(Opcode::XToF, D, S, Reg()); }
  void ftox(Reg D, Reg S) { emitRRR(Opcode::FToX, D, S, Reg()); }

  // Memory.
  void load(Reg D, Reg Base, int64_t Off = 0) {
    emitMem(Opcode::Load, D, Base, Reg(), Off);
  }
  void loadF(Reg D, Reg Base, int64_t Off = 0) {
    emitMem(Opcode::LoadF, D, Base, Reg(), Off);
  }
  void store(Reg Base, int64_t Off, Reg Val) {
    emitMem(Opcode::Store, Reg(), Base, Val, Off);
  }
  void storeF(Reg Base, int64_t Off, Reg Val) {
    emitMem(Opcode::StoreF, Reg(), Base, Val, Off);
  }
  void prefetch(Reg Base, int64_t Off = 0) {
    emitMem(Opcode::Prefetch, Reg(), Base, Reg(), Off);
  }

  // Control flow.
  void br(Reg Pred, uint32_t Block) {
    Instruction I;
    I.Op = Opcode::Br;
    I.Src1 = Pred;
    I.Target = Block;
    emit(I);
  }
  void jmp(uint32_t Block) { emitTarget(Opcode::Jmp, Block); }
  void call(uint32_t FuncIdx) { emitTarget(Opcode::Call, FuncIdx); }
  void callInd(Reg FuncIdxReg) {
    Instruction I;
    I.Op = Opcode::CallInd;
    I.Src1 = FuncIdxReg;
    emit(I);
  }
  void ret() { emitTarget(Opcode::Ret, 0); }
  void halt() { emitTarget(Opcode::Halt, 0); }
  void nop() { emitTarget(Opcode::Nop, 0); }

  // SSP extensions (used by the rewriter and by hand-adapted workloads).
  void chkC(uint32_t StubBlock) { emitTarget(Opcode::ChkC, StubBlock); }
  void rfi() { emitTarget(Opcode::Rfi, 0); }
  void spawn(uint32_t SliceBlock) { emitTarget(Opcode::Spawn, SliceBlock); }
  void killThread() { emitTarget(Opcode::KillThread, 0); }
  void copyToLIB(uint32_t Slot, Reg Src) {
    Instruction I;
    I.Op = Opcode::CopyToLIB;
    I.Src1 = Src;
    I.Target = Slot;
    emit(I);
  }
  void copyToLIBI(uint32_t Slot, int64_t Imm) {
    Instruction I;
    I.Op = Opcode::CopyToLIBI;
    I.Imm = Imm;
    I.Target = Slot;
    emit(I);
  }
  void copyFromLIB(Reg Dst, uint32_t Slot) {
    Instruction I;
    I.Op = Opcode::CopyFromLIB;
    I.Dst = Dst;
    I.Target = Slot;
    emit(I);
  }

private:
  void emitRRR(Opcode Op, Reg D, Reg A, Reg B) {
    Instruction I;
    I.Op = Op;
    I.Dst = D;
    I.Src1 = A;
    I.Src2 = B;
    emit(I);
  }
  void emitRRI(Opcode Op, Reg D, Reg A, int64_t Imm) {
    Instruction I;
    I.Op = Op;
    I.Dst = D;
    I.Src1 = A;
    I.Imm = Imm;
    emit(I);
  }
  void emitMem(Opcode Op, Reg D, Reg Base, Reg Val, int64_t Off) {
    Instruction I;
    I.Op = Op;
    I.Dst = D;
    I.Src1 = Base;
    I.Src2 = Val;
    I.Imm = Off;
    emit(I);
  }
  void emitTarget(Opcode Op, uint32_t Target) {
    Instruction I;
    I.Op = Op;
    I.Target = Target;
    emit(I);
  }

  Program &P;
  uint32_t CurFunc = ~0u;
  uint32_t CurBlock = ~0u;
};

} // namespace ssp::ir

#endif // SSP_IR_IRBUILDER_H
