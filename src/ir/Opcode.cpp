//===- ir/Opcode.cpp - Opcode metadata ------------------------------------===//

#include "ir/Opcode.h"

#include "support/Assert.h"

using namespace ssp;
using namespace ssp::ir;

FuncUnit ssp::ir::funcUnitOf(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return FuncUnit::None;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::ShlI:
  case Opcode::AndI:
  case Opcode::OrI:
  case Opcode::Mov:
  case Opcode::MovI:
  case Opcode::Cmp:
  case Opcode::CmpI:
  case Opcode::XToF:
  case Opcode::FToX:
    return FuncUnit::Int;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
    return FuncUnit::FP;
  case Opcode::Load:
  case Opcode::LoadF:
  case Opcode::Store:
  case Opcode::StoreF:
  case Opcode::Prefetch:
  case Opcode::CopyToLIB:
  case Opcode::CopyToLIBI:
  case Opcode::CopyFromLIB:
    return FuncUnit::Mem;
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Call:
  case Opcode::CallInd:
  case Opcode::Ret:
  case Opcode::Halt:
  case Opcode::ChkC:
  case Opcode::Rfi:
  case Opcode::Spawn:
  case Opcode::KillThread:
    return FuncUnit::Br;
  }
  ssp_unreachable("bad opcode");
}

unsigned ssp::ir::latencyOf(Opcode Op) {
  switch (Op) {
  case Opcode::Mul:
  case Opcode::MulI:
    return 3; // Integer multiply on the modeled Itanium pipeline.
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
    return 4; // FMAC latency class.
  case Opcode::XToF:
  case Opcode::FToX:
    return 2;
  case Opcode::CopyToLIB:
  case Opcode::CopyToLIBI:
  case Opcode::CopyFromLIB:
    return 2; // On-chip RSE backing-store buffer: L1-class latency.
  default:
    return 1;
  }
}

bool ssp::ir::isMemoryOp(Opcode Op) {
  switch (Op) {
  case Opcode::Load:
  case Opcode::LoadF:
  case Opcode::Store:
  case Opcode::StoreF:
  case Opcode::Prefetch:
    return true;
  default:
    return false;
  }
}

bool ssp::ir::isLoad(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::LoadF;
}

bool ssp::ir::isStore(Opcode Op) {
  return Op == Opcode::Store || Op == Opcode::StoreF;
}

bool ssp::ir::isControlFlow(Opcode Op) {
  switch (Op) {
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Call:
  case Opcode::CallInd:
  case Opcode::Ret:
  case Opcode::Halt:
  case Opcode::ChkC:
  case Opcode::Rfi:
  case Opcode::KillThread:
    return true;
  default:
    return false;
  }
}

bool ssp::ir::isTerminator(Opcode Op) {
  switch (Op) {
  case Opcode::Jmp:
  case Opcode::Ret:
  case Opcode::Halt:
  case Opcode::Rfi:
  case Opcode::KillThread:
    return true;
  default:
    return false;
  }
}

bool ssp::ir::hasBlockTarget(Opcode Op) {
  switch (Op) {
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::ChkC:
  case Opcode::Spawn:
    return true;
  default:
    return false;
  }
}

const char *ssp::ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::AddI:
    return "addi";
  case Opcode::MulI:
    return "muli";
  case Opcode::ShlI:
    return "shli";
  case Opcode::AndI:
    return "andi";
  case Opcode::OrI:
    return "ori";
  case Opcode::Mov:
    return "mov";
  case Opcode::MovI:
    return "movi";
  case Opcode::Cmp:
    return "cmp";
  case Opcode::CmpI:
    return "cmpi";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::XToF:
    return "xtof";
  case Opcode::FToX:
    return "ftox";
  case Opcode::Load:
    return "ld8";
  case Opcode::LoadF:
    return "ldf";
  case Opcode::Store:
    return "st8";
  case Opcode::StoreF:
    return "stf";
  case Opcode::Prefetch:
    return "lfetch";
  case Opcode::Br:
    return "br";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Call:
    return "call";
  case Opcode::CallInd:
    return "calli";
  case Opcode::Ret:
    return "ret";
  case Opcode::Halt:
    return "halt";
  case Opcode::ChkC:
    return "chk.c";
  case Opcode::Rfi:
    return "rfi";
  case Opcode::CopyToLIB:
    return "lib.st";
  case Opcode::CopyToLIBI:
    return "lib.sti";
  case Opcode::CopyFromLIB:
    return "lib.ld";
  case Opcode::Spawn:
    return "spawn";
  case Opcode::KillThread:
    return "kill";
  }
  ssp_unreachable("bad opcode");
}

const char *ssp::ir::condName(CondCode CC) {
  switch (CC) {
  case CondCode::EQ:
    return "eq";
  case CondCode::NE:
    return "ne";
  case CondCode::LT:
    return "lt";
  case CondCode::LE:
    return "le";
  case CondCode::GT:
    return "gt";
  case CondCode::GE:
    return "ge";
  }
  ssp_unreachable("bad cond code");
}

bool ssp::ir::evalCond(CondCode CC, int64_t A, int64_t B) {
  switch (CC) {
  case CondCode::EQ:
    return A == B;
  case CondCode::NE:
    return A != B;
  case CondCode::LT:
    return A < B;
  case CondCode::LE:
    return A <= B;
  case CondCode::GT:
    return A > B;
  case CondCode::GE:
    return A >= B;
  }
  ssp_unreachable("bad cond code");
}
