//===- workloads/Treeadd.cpp - Olden treeadd (DF and BF variants) ---------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Olden's treeadd sums a balanced binary tree. Following the paper, two
/// traversals are built: treeadd.df performs the classic depth-first
/// recursive sum (locals kept in a simulated memory stack), and treeadd.bf
/// performs a breadth-first sum through an explicit queue. Tree nodes are
/// placed at shuffled 64-byte slots over a region larger than the L3, so
/// the node loads are delinquent. The breadth-first variant is the
/// showcase for long-range chaining prefetch: the queue contents are
/// written long before they are consumed, so a chaining thread can run far
/// ahead of the main thread.
///
/// Node layout: +0 value, +8 left, +16 right.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/RNG.h"

#include <numeric>
#include <vector>

using namespace ssp;
using namespace ssp::workloads;
using namespace ssp::ir;

namespace {

constexpr unsigned TreeDepth = 13; // 2^13 - 1 = 8191 nodes.
constexpr unsigned NumNodes = (1u << TreeDepth) - 1;
constexpr uint64_t NodeRegion = 0x8000000;
constexpr unsigned NodeSlots = 1 << 16; // 64-byte slots over 4 MiB.
constexpr uint64_t StackBase = 0x200000;
constexpr uint64_t QueueBase = 0x600000;

/// Builds the tree image shared by both variants; returns the root address
/// and fills \p Value/\p Left/\p Right keyed by node address.
uint64_t buildTree(mem::SimMemory &Mem, uint64_t &ExpectedSum) {
  RNG Rng(0x7EE);
  std::vector<uint32_t> Slots(NodeSlots);
  std::iota(Slots.begin(), Slots.end(), 0u);
  for (unsigned I = NodeSlots - 1; I > 0; --I)
    std::swap(Slots[I], Slots[static_cast<unsigned>(Rng.nextBelow(I + 1))]);

  // Heap-indexed complete binary tree: node i has children 2i+1, 2i+2.
  std::vector<uint64_t> Addr(NumNodes);
  for (unsigned I = 0; I < NumNodes; ++I)
    Addr[I] = NodeRegion + static_cast<uint64_t>(Slots[I]) * 64;

  ExpectedSum = 0;
  for (unsigned I = 0; I < NumNodes; ++I) {
    uint64_t Value = (I * 2654435761u) % 4093;
    ExpectedSum += Value;
    Mem.write(Addr[I] + 0, Value);
    unsigned L = 2 * I + 1, R = 2 * I + 2;
    Mem.write(Addr[I] + 8, L < NumNodes ? Addr[L] : 0);
    Mem.write(Addr[I] + 16, R < NumNodes ? Addr[R] : 0);
  }
  Mem.write(ResultAddr, 0);
  return Addr[0];
}

/// Root pointer cell, read by both programs at startup.
constexpr uint64_t RootPtrAddr = 0x9100;

} // namespace

Workload ssp::workloads::makeTreeaddDF() {
  Workload W;
  W.Name = "treeadd.df";

  W.Build = []() {
    Program P;
    IRBuilder B(P);

    // fn0: main.
    B.createFunction("main");
    B.createBlock("entry");
    const Reg Sp = ireg(30), Arg = ireg(10), RetV = ireg(8),
              Res = ireg(22), Tmp = ireg(23);
    B.movI(Sp, StackBase + (1 << 20)); // Deep recursion: 1 MiB stack.
    B.movI(Tmp, RootPtrAddr);
    B.load(Arg, Tmp, 0);
    B.call(1); // treeadd(root) -> r8.
    B.movI(Res, ResultAddr);
    B.store(Res, 0, RetV);
    B.halt();

    // fn1: treeadd(node in r10) -> sum in r8. Depth-first recursion with
    // a memory stack frame {node, left-sum}.
    B.createFunction("treeadd");
    uint32_t Entry = B.createBlock("entry");
    uint32_t Body = B.createBlock("body");
    uint32_t NullCase = B.createBlock("null");

    const Reg Node = ireg(10), Val = ireg(11), Sum = ireg(8);
    const Reg IsNull = preg(1);

    B.setInsertPoint(Entry);
    B.cmpI(CondCode::EQ, IsNull, Node, 0);
    B.br(IsNull, NullCase); // Falls through to body.

    B.setInsertPoint(Body);
    B.addI(Sp, Sp, -16);
    B.store(Sp, 0, Node);
    B.load(Val, Node, 0); // Delinquent: scattered node line.
    B.store(Sp, 8, Val);
    B.load(Node, Node, 8); // left.
    B.call(1);
    // Fold the left sum into the saved value.
    B.load(Val, Sp, 8);
    B.add(Val, Val, Sum);
    B.store(Sp, 8, Val);
    B.load(Node, Sp, 0);
    B.load(Node, Node, 16); // right.
    B.call(1);
    B.load(Val, Sp, 8);
    B.add(Sum, Sum, Val);
    B.addI(Sp, Sp, 16);
    B.ret();

    B.setInsertPoint(NullCase);
    B.movI(Sum, 0);
    B.ret();

    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [](mem::SimMemory &Mem) {
    uint64_t Expected = 0;
    uint64_t Root = buildTree(Mem, Expected);
    Mem.write(RootPtrAddr, Root);
    return Expected;
  };
  return W;
}

Workload ssp::workloads::makeTreeaddBF() {
  Workload W;
  W.Name = "treeadd.bf";

  W.Build = []() {
    Program P;
    IRBuilder B(P);

    B.createFunction("main");
    // Layout: loop falls through to enq.left check chain, which falls
    // through back around; exit at the end.
    uint32_t Entry = B.createBlock("entry");
    uint32_t Loop = B.createBlock("bfs.loop");
    uint32_t AfterL = B.createBlock("after.left");
    uint32_t Latch = B.createBlock("latch");
    uint32_t Exit = B.createBlock("exit");
    uint32_t EnqL = B.createBlock("enq.left");
    uint32_t EnqR = B.createBlock("enq.right");

    const Reg Head = ireg(1), Tail = ireg(2), Node = ireg(3),
              Val = ireg(4), Sum = ireg(5), Child = ireg(6),
              Res = ireg(22), Tmp = ireg(23);
    const Reg HasWork = preg(1), HasL = preg(2), HasR = preg(3);

    B.setInsertPoint(Entry);
    B.movI(Head, QueueBase);
    B.movI(Tail, QueueBase + 8);
    B.movI(Tmp, RootPtrAddr);
    B.load(Node, Tmp, 0);
    B.movI(Tmp, QueueBase);
    B.store(Tmp, 0, Node); // queue[0] = root.
    B.movI(Sum, 0);
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.load(Node, Head, 0); // Dequeue: sequential queue line.
    B.addI(Head, Head, 8);
    B.load(Val, Node, 0); // Delinquent: scattered node line.
    B.add(Sum, Sum, Val);
    B.load(Child, Node, 8); // left.
    B.cmpI(CondCode::NE, HasL, Child, 0);
    B.br(HasL, EnqL); // Falls through to after.left.

    B.setInsertPoint(AfterL);
    B.load(Child, Node, 16); // right.
    B.cmpI(CondCode::NE, HasR, Child, 0);
    B.br(HasR, EnqR); // Falls through to the latch.

    B.setInsertPoint(Latch);
    B.cmp(CondCode::LT, HasWork, Head, Tail);
    B.br(HasWork, Loop); // Falls through to exit.

    B.setInsertPoint(Exit);
    B.movI(Res, ResultAddr);
    B.store(Res, 0, Sum);
    B.halt();

    B.setInsertPoint(EnqL);
    B.store(Tail, 0, Child);
    B.addI(Tail, Tail, 8);
    B.jmp(AfterL);

    B.setInsertPoint(EnqR);
    B.store(Tail, 0, Child);
    B.addI(Tail, Tail, 8);
    B.jmp(Latch);

    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [](mem::SimMemory &Mem) {
    uint64_t Expected = 0;
    uint64_t Root = buildTree(Mem, Expected);
    Mem.write(RootPtrAddr, Root);
    // Pre-map the queue region (the program stores into it, mapping pages
    // on demand, but mapping it here keeps the image self-contained).
    for (uint64_t Off = 0; Off <= NumNodes; ++Off)
      Mem.write(QueueBase + Off * 8, 0);
    return Expected;
  };
  return W;
}
