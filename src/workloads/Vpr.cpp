//===- workloads/Vpr.cpp - SPEC CPU2000 vpr (FPGA placement cost) ---------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vpr places and routes FPGA circuits; its placement inner loop computes
/// net bounding-box costs by dereferencing block records through net
/// structures. The reproduction walks a net array (sequential) whose two
/// endpoint block pointers scatter into a block array larger than the L3
/// cache — the block coordinate loads are delinquent. A minority of nets
/// dispatch through an *indirect* call to one of two timing-cost models,
/// exercising the dynamic call graph the profiler captures for the slicer.
///
/// Net layout: +0 blkA, +8 blkB, +16 mode (0 = linear, taken rarely),
///             +24 cost-model function index.
/// Block layout: +0 x, +8 y.
/// Cost functions take (dx in r12, dy in r13) and return r8.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/RNG.h"

using namespace ssp;
using namespace ssp::workloads;
using namespace ssp::ir;

namespace {

constexpr uint64_t NetBase = 0x1000000;
constexpr uint64_t NetStride = 64;
constexpr unsigned NumNets = 3000;
constexpr uint64_t BlockBase = 0x8000000;
constexpr uint64_t BlockStride = 64;
constexpr unsigned NumBlocks = 1 << 16; // 4 MiB of block lines.

// vpr re-derives the net cursor from the affected-nets bookkeeping every
// so often (placement revisits nets after a swap); here that resync fires
// once per pass, at net SyncIter, recomputing the cursor as
// base + i * stride from the net-array base spilled to memory. Rare but
// executed: only the profile-cold carried edge it feeds into the net
// loads can remove it from p-slices (--spec-deps), not block-level
// speculative slicing.
constexpr unsigned SyncIter = 2048;
constexpr uint64_t SyncBase = 0x9300;

int64_t absDiff(int64_t A, int64_t B2) { return A > B2 ? A - B2 : B2 - A; }

} // namespace

Workload ssp::workloads::makeVpr() {
  Workload W;
  W.Name = "vpr";

  W.Build = []() {
    Program P;
    IRBuilder B(P);

    // fn0: main — bounding-box cost over all nets.
    B.createFunction("main");
    // Layout: the hot straight-line path (loop -> have.dx -> have.dy ->
    // latch -> exit) is contiguous; the negation fixups and the timing
    // call are out of line at the end.
    uint32_t Entry = B.createBlock("entry");
    uint32_t Loop = B.createBlock("nets.loop");
    uint32_t HaveDx = B.createBlock("have.dx");
    uint32_t HaveDy = B.createBlock("have.dy");
    uint32_t Latch = B.createBlock("latch");
    uint32_t Latch2 = B.createBlock("latch.cont");
    uint32_t Exit = B.createBlock("exit");
    uint32_t Dx2 = B.createBlock("dx.neg");
    uint32_t Dy2 = B.createBlock("dy.neg");
    uint32_t Timing = B.createBlock("timing.cost");
    uint32_t Resync = B.createBlock("cursor.resync");

    const Reg Net = ireg(1), BlkA = ireg(3), BlkB = ireg(4),
              XA = ireg(5), YA = ireg(6), XB = ireg(7), YB = ireg(9),
              Dx = ireg(12), Dy = ireg(13), Cost = ireg(14),
              Acc = ireg(15), Mode = ireg(16), FnIdx = ireg(17),
              ICnt = ireg(18), SyncPtr = ireg(20), NetT = ireg(21),
              RetV = ireg(8), Res = ireg(22), Area = ireg(10),
              Span = ireg(11), ROfs = ireg(19);
    const Reg Cont = preg(1), DxNeg = preg(2), DyNeg = preg(3),
              UseTiming = preg(5), NeedSync = preg(6);

    B.setInsertPoint(Entry);
    B.movI(Net, NetBase);
    B.movI(Acc, 0);
    B.movI(ICnt, 0);
    B.movI(SyncPtr, SyncBase);
    B.load(NetT, SyncPtr, 0); // Spilled net-array base pointer.
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.load(BlkA, Net, 0);
    B.load(BlkB, Net, 8);
    B.load(XA, BlkA, 0); // Delinquent: scattered block record.
    B.load(YA, BlkA, 8);
    B.load(XB, BlkB, 0); // Delinquent.
    B.load(YB, BlkB, 8);
    B.sub(Dx, XA, XB);
    B.cmpI(CondCode::LT, DxNeg, Dx, 0);
    B.br(DxNeg, Dx2); // Falls through to have.dx.

    B.setInsertPoint(HaveDx);
    B.sub(Dy, YA, YB);
    B.cmpI(CondCode::LT, DyNeg, Dy, 0);
    B.br(DyNeg, Dy2); // Falls through to have.dy.

    B.setInsertPoint(HaveDy);
    B.add(Cost, Dx, Dy);
    // Crossing-count correction: vpr scales the half-perimeter by a
    // fanout factor; model it with a bounding-box area term.
    B.mul(Area, Dx, Dy);
    B.add(Cost, Cost, Area);
    B.mulI(Span, Cost, 3);
    B.xor_(Cost, Span, Dx);
    B.load(Mode, Net, 16);
    B.cmpI(CondCode::EQ, UseTiming, Mode, 1);
    B.br(UseTiming, Timing); // Falls through to the latch.

    B.setInsertPoint(Latch);
    B.add(Acc, Acc, Cost);
    B.addI(Net, Net, NetStride);
    B.addI(ICnt, ICnt, 1);
    B.cmpI(CondCode::EQ, NeedSync, ICnt, SyncIter);
    B.br(NeedSync, Resync); // Falls through to latch.cont.

    B.setInsertPoint(Latch2);
    B.cmpI(CondCode::LT, Cont, ICnt, NumNets);
    B.br(Cont, Loop); // Falls through to exit.

    B.setInsertPoint(Exit);
    B.movI(Res, ResultAddr);
    B.store(Res, 0, Acc);
    B.halt();

    B.setInsertPoint(Dx2);
    B.sub(Dx, XB, XA);
    B.jmp(HaveDx);

    B.setInsertPoint(Dy2);
    B.sub(Dy, YB, YA);
    B.jmp(HaveDy);

    B.setInsertPoint(Timing);
    B.load(FnIdx, Net, 24);
    B.callInd(FnIdx); // cost_model(dx, dy) -> r8.
    B.add(Cost, Cost, RetV);
    B.jmp(Latch);

    // Rare (once per pass): re-derive the cursor from the spilled base —
    // the recomputation is value-identical to the cursor it overwrites,
    // but the carried Net def here reaches the next iteration's net
    // loads, and without --spec-deps the resync (and its control chain)
    // lands in every p-slice.
    B.setInsertPoint(Resync);
    B.mulI(ROfs, ICnt, NetStride);
    B.add(Net, NetT, ROfs);
    B.jmp(Latch2);

    // fn1: cost_linear(dx, dy) = 3*dx + 2*dy.
    B.createFunction("cost_linear");
    B.createBlock("entry");
    {
      const Reg T1 = ireg(24), T2 = ireg(25);
      B.mulI(T1, Dx, 3);
      B.mulI(T2, Dy, 2);
      B.add(RetV, T1, T2);
      B.ret();
    }

    // fn2: cost_quadratic(dx, dy) = dx*dx + dy*dy.
    B.createFunction("cost_quadratic");
    B.createBlock("entry");
    {
      const Reg T1 = ireg(24), T2 = ireg(25);
      B.mul(T1, Dx, Dx);
      B.mul(T2, Dy, Dy);
      B.add(RetV, T1, T2);
      B.ret();
    }

    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [](mem::SimMemory &Mem) {
    RNG Rng(0x7B12);
    struct Blk {
      int64_t X, Y;
    };
    std::vector<Blk> Blocks(NumBlocks);
    for (unsigned I = 0; I < NumBlocks; ++I) {
      Blocks[I] = {static_cast<int64_t>(Rng.nextBelow(512)),
                   static_cast<int64_t>(Rng.nextBelow(512))};
      uint64_t A = BlockBase + static_cast<uint64_t>(I) * BlockStride;
      Mem.write(A + 0, static_cast<uint64_t>(Blocks[I].X));
      Mem.write(A + 8, static_cast<uint64_t>(Blocks[I].Y));
    }

    uint64_t Acc = 0;
    for (unsigned I = 0; I < NumNets; ++I) {
      uint64_t Net = NetBase + static_cast<uint64_t>(I) * NetStride;
      unsigned A = static_cast<unsigned>(Rng.nextBelow(NumBlocks));
      unsigned Bi = static_cast<unsigned>(Rng.nextBelow(NumBlocks));
      uint64_t Mode = (I % 8 == 0) ? 1 : 0; // 1 in 8 nets: timing cost.
      uint64_t FnIdx = (I % 16 == 0) ? 2 : 1;
      Mem.write(Net + 0, BlockBase + static_cast<uint64_t>(A) * BlockStride);
      Mem.write(Net + 8,
                BlockBase + static_cast<uint64_t>(Bi) * BlockStride);
      Mem.write(Net + 16, Mode);
      Mem.write(Net + 24, FnIdx);

      int64_t Dx = absDiff(Blocks[A].X, Blocks[Bi].X);
      int64_t Dy = absDiff(Blocks[A].Y, Blocks[Bi].Y);
      uint64_t Cost = static_cast<uint64_t>(Dx + Dy + Dx * Dy);
      Cost = (Cost * 3) ^ static_cast<uint64_t>(Dx);
      if (Mode == 1) {
        if (FnIdx == 2)
          Cost += static_cast<uint64_t>(Dx * Dx + Dy * Dy);
        else
          Cost += static_cast<uint64_t>(3 * Dx + 2 * Dy);
      }
      Acc += Cost;
    }
    // Spilled net-array base: the resync recomputes net = base + i *
    // stride, which equals the cursor it overwrites — a semantic no-op
    // re-derivation.
    static_assert(SyncIter < NumNets, "resync must fire");
    Mem.write(SyncBase, NetBase);
    Mem.write(ResultAddr, 0);
    return Acc;
  };
  return W;
}
