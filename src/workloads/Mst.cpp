//===- workloads/Mst.cpp - Olden mst (minimum spanning tree) --------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Olden's mst computes a minimum spanning tree; its hot kernel probes a
/// chained hash table of edge weights. The reproduction walks vertices and
/// performs hash lookups whose collision-chain entries are scattered over
/// a region larger than the L3 cache: the ent->key / ent->next loads are
/// delinquent. The lookup lives in its own procedure, giving the
/// interprocedural slice mst shows in the paper's Table 2.
///
/// Bucket array: NumBuckets pointers. Entry: +0 next, +8 key, +16 weight.
/// Calling convention: key in r10, weight returned in r8.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/RNG.h"

#include <numeric>
#include <vector>

using namespace ssp;
using namespace ssp::workloads;
using namespace ssp::ir;

namespace {

constexpr uint64_t BucketBase = 0x400000;
constexpr unsigned NumBuckets = 1024;
constexpr uint64_t EntryRegion = 0x8000000;
constexpr unsigned EntrySlots = 1 << 16; // 64-byte slots over 4 MiB.
constexpr unsigned NumEntries = 4096;
constexpr unsigned NumLookups = 3000;
constexpr uint64_t HashMult = 2654435761u;

uint64_t hashOf(uint64_t Key) { return (Key * HashMult) & (NumBuckets - 1); }

} // namespace

Workload ssp::workloads::makeMst() {
  Workload W;
  W.Name = "mst";

  W.Build = []() {
    Program P;
    IRBuilder B(P);

    // fn0: main — performs NumLookups probes with a deterministic key
    // schedule and accumulates the found weights.
    B.createFunction("main");
    uint32_t MEntry = B.createBlock("entry");
    uint32_t MLoop = B.createBlock("lookups");
    uint32_t MExit = B.createBlock("exit");
    const Reg I = ireg(20), Acc = ireg(21), Res = ireg(22), Key = ireg(10),
              RetW = ireg(8), Tmp = ireg(23);
    const Reg MCont = preg(4);

    B.setInsertPoint(MEntry);
    B.movI(I, 0);
    B.movI(Acc, 0);
    B.jmp(MLoop);

    B.setInsertPoint(MLoop);
    // key = (i * 97 + 13) % NumEntries — hits existing entries.
    B.mulI(Tmp, I, 97);
    B.addI(Tmp, Tmp, 13);
    B.andI(Key, Tmp, NumEntries - 1);
    B.call(1); // hash_lookup(key) -> r8.
    B.add(Acc, Acc, RetW);
    B.addI(I, I, 1);
    B.cmpI(CondCode::LT, MCont, I, NumLookups);
    B.br(MCont, MLoop);

    B.setInsertPoint(MExit);
    B.movI(Res, ResultAddr);
    B.store(Res, 0, Acc);
    B.halt();

    // fn1: hash_lookup(key in r10) -> weight in r8.
    B.createFunction("hash_lookup");
    // Layout: walk falls through to the key check, which falls through
    // to chain.next; found/miss are at the end.
    uint32_t Entry = B.createBlock("entry");
    uint32_t Walk = B.createBlock("chain.walk");
    uint32_t Check = B.createBlock("chain.check");
    uint32_t Next = B.createBlock("chain.next");
    uint32_t Found = B.createBlock("found");
    uint32_t Miss = B.createBlock("miss");

    const Reg H = ireg(11), Ent = ireg(12), EKey = ireg(13);
    const Reg IsNull = preg(1), IsMatch = preg(2);

    B.setInsertPoint(Entry);
    B.mulI(H, Key, static_cast<int64_t>(HashMult));
    B.andI(H, H, NumBuckets - 1); // Power-of-two table.
    B.shlI(H, H, 3);
    B.addI(H, H, static_cast<int64_t>(BucketBase));
    B.load(Ent, H, 0); // Bucket head pointer.

    B.setInsertPoint(Walk);
    B.cmpI(CondCode::EQ, IsNull, Ent, 0);
    B.br(IsNull, Miss); // Falls through to the key check.

    B.setInsertPoint(Check);
    B.load(EKey, Ent, 8); // Delinquent: scattered chain entry.
    B.cmp(CondCode::EQ, IsMatch, EKey, Key);
    B.br(IsMatch, Found); // Falls through to chain.next.

    B.setInsertPoint(Next);
    B.load(Ent, Ent, 0); // Delinquent: ent->next.
    B.jmp(Walk);

    B.setInsertPoint(Found);
    B.load(RetW, Ent, 16);
    B.ret();

    B.setInsertPoint(Miss);
    B.movI(RetW, 0);
    B.ret();

    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [](mem::SimMemory &Mem) {
    RNG Rng(0x357);
    std::vector<uint32_t> Slots(EntrySlots);
    std::iota(Slots.begin(), Slots.end(), 0u);
    for (unsigned K = EntrySlots - 1; K > 0; --K)
      std::swap(Slots[K],
                Slots[static_cast<unsigned>(Rng.nextBelow(K + 1))]);

    std::vector<uint64_t> BucketHead(NumBuckets, 0);
    std::vector<uint64_t> Weight(NumEntries);
    for (unsigned E = 0; E < NumEntries; ++E) {
      uint64_t Addr = EntryRegion + static_cast<uint64_t>(Slots[E]) * 64;
      uint64_t Key = E;
      uint64_t H = hashOf(Key);
      Weight[E] = (E * 37 + 5) % 10007;
      Mem.write(Addr + 0, BucketHead[H]); // next.
      Mem.write(Addr + 8, Key);
      Mem.write(Addr + 16, Weight[E]);
      BucketHead[H] = Addr;
    }
    for (unsigned Bk = 0; Bk < NumBuckets; ++Bk)
      Mem.write(BucketBase + static_cast<uint64_t>(Bk) * 8,
                BucketHead[Bk]);
    Mem.write(ResultAddr, 0);

    uint64_t Acc = 0;
    for (unsigned I = 0; I < NumLookups; ++I) {
      uint64_t Key = (static_cast<uint64_t>(I) * 97 + 13) &
                     (NumEntries - 1);
      Acc += Weight[Key];
    }
    return Acc;
  };
  return W;
}
