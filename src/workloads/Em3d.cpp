//===- workloads/Em3d.cpp - Olden em3d (EM propagation) --------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Olden's em3d solves electromagnetic propagation in 3D on a bipartite
/// graph of E and H field nodes. The kernel walks a linked list of E-nodes
/// and relaxes each against three dependency H-nodes reached through
/// pointers:   e->value -= coeff * dep_k->value.
/// The dependency pointers scatter into an H-node array larger than the
/// L3 cache, so the dep->value loads are delinquent; the E-node list is
/// linked in shuffled order, so the list walk itself also misses.
///
/// Node layout (64-byte line per node):
///   +0 value (double bits), +8 next, +16/+24/+32 dependency pointers,
///   +40 coeff (double bits).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/RNG.h"

#include <bit>
#include <numeric>
#include <vector>

using namespace ssp;
using namespace ssp::workloads;
using namespace ssp::ir;

namespace {

constexpr uint64_t EBase = 0x1000000;
constexpr uint64_t HBase = 0x8000000;
constexpr uint64_t Stride = 64;
constexpr unsigned NumE = 4096;
constexpr unsigned NumH = 1 << 16; // 4 MiB of H-node lines.

uint64_t eAddr(unsigned I) { return EBase + static_cast<uint64_t>(I) * Stride; }
uint64_t hAddr(unsigned I) { return HBase + static_cast<uint64_t>(I) * Stride; }

} // namespace

Workload ssp::workloads::makeEm3d() {
  Workload W;
  W.Name = "em3d";

  W.Build = []() {
    Program P;
    IRBuilder B(P);
    B.createFunction("main");
    uint32_t Entry = B.createBlock("entry");
    uint32_t Loop = B.createBlock("relax");
    uint32_t Exit = B.createBlock("exit");

    const Reg Node = ireg(1), Dep1 = ireg(3), Dep2 = ireg(4),
              Dep3 = ireg(5), Res = ireg(11), Chk = ireg(12);
    const Reg Val = freg(1), D1 = freg(3), D2 = freg(4), D3 = freg(5),
              Coef = freg(6), FSum = freg(7);
    const Reg Cont = preg(1);

    B.setInsertPoint(Entry);
    B.movI(Node, eAddr(0)); // List head: E-node 0.
    B.movI(Res, ResultAddr);
    B.xtof(FSum, ireg(0)); // FSum = 0.0.
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.loadF(Val, Node, 0);
    B.load(Dep1, Node, 16);
    B.load(Dep2, Node, 24);
    B.load(Dep3, Node, 32);
    B.loadF(Coef, Node, 40);
    B.loadF(D1, Dep1, 0); // Delinquent: H-node values.
    B.loadF(D2, Dep2, 0);
    B.loadF(D3, Dep3, 0);
    B.fmul(D1, D1, Coef);
    B.fsub(Val, Val, D1);
    B.fmul(D2, D2, Coef);
    B.fsub(Val, Val, D2);
    B.fmul(D3, D3, Coef);
    B.fsub(Val, Val, D3);
    B.storeF(Node, 0, Val);
    B.fadd(FSum, FSum, Val);
    B.load(Node, Node, 8); // Shuffled next pointer.
    B.cmpI(CondCode::NE, Cont, Node, 0);
    B.br(Cont, Loop);

    B.setInsertPoint(Exit);
    B.ftox(Chk, FSum);
    B.store(Res, 0, Chk);
    B.halt();
    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [](mem::SimMemory &Mem) {
    RNG Rng(0xE3D);
    auto Bits = [](double D) { return std::bit_cast<uint64_t>(D); };

    // H-nodes: values only.
    std::vector<double> HVal(NumH);
    for (unsigned I = 0; I < NumH; ++I) {
      HVal[I] = 0.25 + static_cast<double>((I * 2654435761u) % 1024) / 512.0;
      Mem.write(hAddr(I), Bits(HVal[I]));
    }

    // E-node list order: a shuffled permutation so the walk misses.
    std::vector<unsigned> Order(NumE);
    std::iota(Order.begin(), Order.end(), 0u);
    for (unsigned I = NumE - 1; I > 0; --I)
      std::swap(Order[I],
                Order[static_cast<unsigned>(Rng.nextBelow(I + 1))]);
    // The program starts at E-node 0, so make it first in the walk.
    for (unsigned I = 0; I < NumE; ++I)
      if (Order[I] == 0) {
        std::swap(Order[0], Order[I]);
        break;
      }

    struct ENode {
      double Value, Coeff;
      unsigned Dep[3];
    };
    std::vector<ENode> E(NumE);
    for (unsigned I = 0; I < NumE; ++I) {
      ENode &N = E[I];
      N.Value = 1.0 + static_cast<double>(I % 97) / 7.0;
      N.Coeff = 0.125 + static_cast<double>(I % 13) / 64.0;
      for (unsigned K = 0; K < 3; ++K)
        N.Dep[K] = static_cast<unsigned>(Rng.nextBelow(NumH));
      Mem.write(eAddr(I) + 0, Bits(N.Value));
      Mem.write(eAddr(I) + 40, Bits(N.Coeff));
      for (unsigned K = 0; K < 3; ++K)
        Mem.write(eAddr(I) + 16 + 8 * K, hAddr(N.Dep[K]));
    }
    for (unsigned I = 0; I + 1 < NumE; ++I)
      Mem.write(eAddr(Order[I]) + 8, eAddr(Order[I + 1]));
    Mem.write(eAddr(Order[NumE - 1]) + 8, 0);
    Mem.write(ResultAddr, 0);

    // Mirror the relaxation in walk order for the expected checksum.
    double FSum = 0.0;
    for (unsigned I = 0; I < NumE; ++I) {
      ENode &N = E[Order[I]];
      double V = N.Value;
      V -= HVal[N.Dep[0]] * N.Coeff;
      V -= HVal[N.Dep[1]] * N.Coeff;
      V -= HVal[N.Dep[2]] * N.Coeff;
      N.Value = V;
      FSum += V;
    }
    return static_cast<uint64_t>(static_cast<int64_t>(FSum));
  };
  return W;
}
