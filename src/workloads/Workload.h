//===- workloads/Workload.h - Benchmark workload interface ----------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite of the paper's evaluation (Section 4.1): the
/// pointer-intensive Olden programs em3d, health, mst and treeadd (in both
/// depth-first and breadth-first variants) plus the SPEC CPU2000 programs
/// mcf and vpr. Each workload is an IR program (built with IRBuilder) and
/// a deterministic data-image generator reproducing the memory behaviour
/// the paper exploits: delinquent pointer-chasing loads whose working set
/// exceeds the 3 MiB L3. Every program writes a checksum so runs can be
/// validated against the analytically computed expected value.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_WORKLOADS_WORKLOAD_H
#define SSP_WORKLOADS_WORKLOAD_H

#include "ir/Program.h"
#include "mem/SimMemory.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ssp::workloads {

/// Address every workload writes its checksum to before halting.
inline constexpr uint64_t ResultAddr = 0x8000;

/// One benchmark: program builder + data-image builder.
struct Workload {
  std::string Name;
  /// Builds the original (pre-adaptation) binary.
  std::function<ir::Program()> Build;
  /// Populates the data image; returns the expected checksum the program
  /// must store at ResultAddr.
  std::function<uint64_t(mem::SimMemory &)> BuildMemory;
};

// The seven benchmarks of the paper's evaluation.
Workload makeEm3d();
Workload makeHealth();
Workload makeMst();
Workload makeTreeaddDF();
Workload makeTreeaddBF();
Workload makeMcf();
Workload makeVpr();

/// All seven, in the paper's reporting order.
std::vector<Workload> paperSuite();

/// Hand-adapted SSP binaries (Section 4.5): the manually tuned mcf and
/// health from Wang et al., including the aggressive recursion inlining
/// the automated tool cannot perform. They share the data-image builders
/// of their automatic counterparts.
Workload makeMcfHandAdapted();
Workload makeHealthHandAdapted();

/// Indirect-access stream workloads (DESIGN.md "Stream descriptors"):
/// a[b[i]]-shaped kernels whose affine index stream feeds a dependent
/// gather over a table sized past the 3 MiB L3 — the patterns
/// `ssp-adapt --streams` classifies as Indirect descriptors.
Workload makeHashJoin();  ///< Hash-join probe into a 4 MiB build table.
Workload makePagerank();  ///< Edge-centric rank gather through CSR col[].
Workload makeOaHash();    ///< Open-addressing 4-slot linear-probe sweep.

/// The three indirect stream workloads, in reporting order. Kept separate
/// from paperSuite() (whose membership several tests pin); the benches
/// append it explicitly.
std::vector<Workload> streamSuite();

/// paperSuite() followed by streamSuite(): the combined reporting set the
/// figure and ablation benches iterate.
std::vector<Workload> fullSuite();

/// A small arc-scan kernel (the paper's Figure 3 example) used by tests
/// and the quickstart example; \p NumArcs and \p NumNodes scale it.
Workload makeArcKernel(unsigned NumArcs = 800, unsigned NumNodes = 1 << 16);

/// A phase-changing kernel: the same arc array is scanned \p NumPasses
/// times over a node array small enough to become cache resident after
/// the first pass. SSP prefetching is profitable only during pass one;
/// afterwards the chains churn uselessly — the scenario motivating the
/// paper's Section 4.4.1 dynamic-throttling idea.
Workload makePhasedKernel(unsigned NumPasses = 6, unsigned NumArcs = 800,
                          unsigned NumNodes = 1 << 10);

/// A parameterized synthetic stress program for tool-throughput
/// benchmarking: \p Funcs worker functions of \p BlocksPerFunc loop-body
/// blocks, each issuing \p LoadsPerBlock pointer-chasing (delinquent) load
/// pairs, with the loop induction routed through a shared helper call.
/// Scales the *static* program 10-100x beyond the paper kernels while the
/// dynamic run stays small enough to profile quickly.
Workload makeStress(unsigned Funcs = 32, unsigned BlocksPerFunc = 8,
                    unsigned LoadsPerBlock = 2);

} // namespace ssp::workloads

#endif // SSP_WORKLOADS_WORKLOAD_H
