//===- workloads/Mcf.cpp - SPEC CPU2000 mcf (primal_bea_mpp arc scan) -----===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reproduction of mcf's dominant loop, the arc scan of primal_bea_mpp
/// that the paper uses as its running example (Figure 3):
///
///   do { t = arc; u = t->tail; red_cost = cost - u->potential; if best
///        basket update; arc += nr_group; } while (arc < K);
///
/// Arcs are scanned with a stride (nr_group), and each arc dereferences
/// its tail node's potential — a dependent load into a node array larger
/// than the L3 cache. The basket update is a data-dependent branch.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/RNG.h"

using namespace ssp;
using namespace ssp::workloads;
using namespace ssp::ir;

namespace {

constexpr uint64_t ArcBase = 0x100000;
constexpr uint64_t ArcSize = 64;        // One cache line per arc.
constexpr unsigned NumArcs = 4096;
constexpr uint64_t NrGroup = 3;         // Stride in arcs, as in mcf.
constexpr uint64_t NodeBase = 0x8000000;
constexpr uint64_t NodeStride = 64;
constexpr unsigned NumNodes = 1 << 16;  // 4 MiB of node lines.
constexpr unsigned NumPasses = 2;       // Outer pricing iterations.
constexpr unsigned ArcsPerPass = (NumArcs + NrGroup - 1) / NrGroup;

// mcf re-derives the scan pointer from the group bookkeeping when a group
// boundary is crossed ("arc = arcs + group_pos"); here that resync fires
// once per pass, at iteration SyncIter, recomputing the pointer as
// base + i * stride from the arcs base spilled to memory. It is rare but
// *executed* — block-level speculative slicing cannot filter it, only the
// profile-cold carried edge it feeds can be pruned (--spec-deps).
constexpr unsigned SyncIter = 1024;
constexpr uint64_t SyncBase = 0x9200;

// Arc layout: +0 cost, +8 tail pointer.
// Node layout: +0 potential.

} // namespace

Workload ssp::workloads::makeMcf() {
  Workload W;
  W.Name = "mcf";

  W.Build = []() {
    Program P;
    IRBuilder B(P);

    // fn0: main — runs NumPasses pricing passes over the arc array.
    B.createFunction("main");
    uint32_t MEntry = B.createBlock("entry");
    uint32_t MLoop = B.createBlock("passes");
    uint32_t MExit = B.createBlock("exit");
    const Reg PassCnt = ireg(20), Acc = ireg(21), Res = ireg(22),
              RetVal = ireg(8);
    const Reg MCont = preg(4);

    B.setInsertPoint(MEntry);
    B.movI(PassCnt, NumPasses);
    B.movI(Acc, 0);
    B.movI(Res, ResultAddr);
    B.jmp(MLoop);

    B.setInsertPoint(MLoop);
    B.call(1); // arc_scan -> r8.
    B.add(Acc, Acc, RetVal);
    B.addI(PassCnt, PassCnt, -1);
    B.cmpI(CondCode::GT, MCont, PassCnt, 0);
    B.br(MCont, MLoop);

    B.setInsertPoint(MExit);
    B.store(Res, 0, Acc);
    B.halt();

    // fn1: arc_scan — the primal_bea_mpp inner loop of Figure 3, with
    // mcf's cold repricing path: when a sentinel cost is seen (never, in
    // these inputs), the tail pointer is refreshed from a secondary slot.
    // The cold path exists to exercise control-flow speculative slicing:
    // a static slicer must include the refresh producers; the speculative
    // slicer filters the never-executed block.
    B.createFunction("primal_bea_mpp");
    // Layout: loop falls through to loop.body, which falls through to the
    // latch, which falls through to done; the basket update and the cold
    // refresh are out of line at the end.
    uint32_t Entry = B.createBlock("entry");
    uint32_t Loop = B.createBlock("loop");
    uint32_t LoopBody = B.createBlock("loop.body");
    uint32_t Latch = B.createBlock("latch");
    uint32_t Latch2 = B.createBlock("latch.cont");
    uint32_t Done = B.createBlock("done");
    uint32_t Update = B.createBlock("basket_update");
    uint32_t Refresh = B.createBlock("refresh.tail");
    uint32_t Resync = B.createBlock("group.resync");

    const Reg Arc = ireg(1), Sum = ireg(2), Tail = ireg(3), K = ireg(4),
              Cost = ireg(5), Pot = ireg(6), RedCost = ireg(7),
              BestCost = ireg(9), BestArc = ireg(10), Tail2 = ireg(11),
              ICnt = ireg(12), SyncPtr = ireg(13), GrpArc = ireg(14),
              Wgt = ireg(15), WSum = ireg(16), ROfs = ireg(17);
    const Reg Cont = preg(1), IsBetter = preg(2), NeedRefresh = preg(3),
              NeedSync = preg(5);

    B.setInsertPoint(Entry);
    B.movI(Arc, ArcBase);
    B.movI(K, ArcBase + static_cast<uint64_t>(NumArcs) * ArcSize);
    B.movI(Sum, 0);
    B.movI(BestCost, 1 << 30);
    B.movI(BestArc, 0);
    B.movI(ICnt, 0);
    B.movI(SyncPtr, SyncBase);
    B.load(GrpArc, SyncPtr, 0); // Spilled arcs base ("arcs" pointer).
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.load(Cost, Arc, 0);      // t->cost (streams through the arc array).
    B.load(Tail, Arc, 8);      // t->tail.
    B.cmpI(CondCode::EQ, NeedRefresh, Cost, -999999); // Sentinel: never.
    B.br(NeedRefresh, Refresh); // Falls through to loop.body.

    B.setInsertPoint(LoopBody);
    B.load(Pot, Tail, 0);      // tail->potential: the delinquent load.
    B.sub(RedCost, Cost, Pot); // red_cost = cost - potential.
    // Degeneracy-weighted accumulation (mcf scales reduced costs by the
    // per-arc flow weight before summing into the pricing total).
    B.mulI(Wgt, RedCost, 5);
    B.xor_(WSum, Wgt, Cost);
    B.add(Sum, Sum, WSum);
    B.cmp(CondCode::LT, IsBetter, RedCost, BestCost);
    B.br(IsBetter, Update);

    B.setInsertPoint(Latch);
    B.addI(Arc, Arc, ArcSize * NrGroup);
    B.addI(ICnt, ICnt, 1);
    B.cmpI(CondCode::EQ, NeedSync, ICnt, SyncIter);
    B.br(NeedSync, Resync); // Falls through to latch.cont.

    B.setInsertPoint(Latch2);
    B.cmpI(CondCode::LT, Cont, ICnt, ArcsPerPass);
    B.br(Cont, Loop);

    B.setInsertPoint(Update); // Basket update: remember the best arc.
    B.mov(BestCost, RedCost);
    B.mov(BestArc, Arc);
    B.jmp(Latch);

    B.setInsertPoint(Refresh); // Cold: re-derive the tail pointer.
    B.load(Tail2, Arc, 16);    // Secondary tail slot.
    B.mov(Tail, Tail2);
    B.jmp(LoopBody);

    // Rare (once per pass): re-derive the scan pointer from the spilled
    // base, mcf's "arc = arcs + group_pos". The recomputation yields
    // exactly the address the scan already holds, so semantics do not
    // change — but the carried Arc def here reaches the next iteration's
    // arc loads, and a static slicer must drag the resync (and its
    // control chain) into every p-slice. The profile shows the edge
    // activates on ~1/SyncIter of trips; --spec-deps prunes it and the
    // chain falls out.
    B.setInsertPoint(Resync);
    B.mulI(ROfs, ICnt, ArcSize * NrGroup);
    B.add(Arc, GrpArc, ROfs);
    B.jmp(Latch2);

    B.setInsertPoint(Done);
    B.add(RetVal, Sum, BestCost);
    B.xor_(RetVal, RetVal, BestArc);
    B.ret();

    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [](mem::SimMemory &Mem) {
    RNG Rng(20020617);
    for (unsigned I = 0; I < NumNodes; ++I)
      Mem.write(NodeBase + static_cast<uint64_t>(I) * NodeStride,
                (I * 7 + 11) % 50021);
    std::vector<uint64_t> Tails(NumArcs), Costs(NumArcs);
    for (unsigned I = 0; I < NumArcs; ++I) {
      uint64_t Arc = ArcBase + static_cast<uint64_t>(I) * ArcSize;
      Costs[I] = Rng.nextBelow(100000);
      Tails[I] = NodeBase + Rng.nextBelow(NumNodes) * NodeStride;
      Mem.write(Arc + 0, Costs[I]);
      Mem.write(Arc + 8, Tails[I]);
      Mem.write(Arc + 16, Tails[I]); // Secondary tail (cold refresh path).
    }
    // Spilled arcs base: the resync recomputes arc = base + i * stride,
    // which equals the address the scan already holds — a semantic no-op
    // re-derivation.
    static_assert(SyncIter < ArcsPerPass, "resync must fire");
    Mem.write(SyncBase, ArcBase);
    Mem.write(ResultAddr, 0);

    // Mirror the program to compute the expected checksum.
    uint64_t Acc = 0;
    for (unsigned Pass = 0; Pass < NumPasses; ++Pass) {
      uint64_t Sum = 0;
      int64_t BestCost = 1 << 30;
      uint64_t BestArc = 0;
      for (uint64_t A = 0; A < NumArcs; A += NrGroup) {
        int64_t Red = static_cast<int64_t>(Costs[A]) -
                      static_cast<int64_t>(Mem.read(Tails[A]));
        Sum += (static_cast<uint64_t>(Red) * 5) ^ Costs[A];
        if (Red < BestCost) {
          BestCost = Red;
          BestArc = ArcBase + A * ArcSize;
        }
      }
      Acc += (Sum + static_cast<uint64_t>(BestCost)) ^ BestArc;
    }
    return Acc;
  };
  return W;
}

//===----------------------------------------------------------------------===//
// Hand-adapted mcf (Section 4.5): the manually tuned SSP binary. The hand
// slice is leaner than the automated one — two scan iterations per chaining
// thread (halving spawn overhead) and prefetches of both the arc line and
// the tail-node line — matching how the hand adaptation of Wang et al.
// outperforms the tool on mcf.
//===----------------------------------------------------------------------===//

Workload ssp::workloads::makeMcfHandAdapted() {
  Workload Base = makeMcf();
  Workload W;
  W.Name = "mcf.hand";
  W.BuildMemory = Base.BuildMemory;

  W.Build = [Base]() {
    Program P = Base.Build();
    IRBuilder B(P);
    B.setFunction(1); // primal_bea_mpp.

    const Reg Arc = ireg(1), K = ireg(4);
    // Slice-private registers (fresh context, any numbering works).
    const Reg SArc = ireg(40), SK = ireg(41), SNext = ireg(42),
              STail = ireg(43), STail2 = ireg(44), SArc2 = ireg(45);
    const Reg SCont = preg(6);

    uint32_t Hdr = B.createBlock("hand.slice.hdr", BlockKind::Slice);
    uint32_t Body = B.createBlock("hand.slice.body", BlockKind::Slice);
    uint32_t SpawnB = B.createBlock("hand.slice.spawn", BlockKind::Slice);
    uint32_t Stub = B.createBlock("hand.stub", BlockKind::Stub);

    B.setInsertPoint(Hdr);
    B.copyFromLIB(SArc, 0);
    B.copyFromLIB(SK, 1);
    // Two iterations per thread: advance by 2 strides before chaining.
    B.addI(SNext, SArc, ArcSize * NrGroup * 2);
    B.copyToLIB(0, SNext);
    B.copyToLIB(1, SK);
    B.cmp(CondCode::LT, SCont, SNext, SK);
    B.br(SCont, SpawnB); // Falls through to the body.

    B.setInsertPoint(Body);
    B.addI(SArc2, SArc, ArcSize * NrGroup);
    B.load(STail, SArc, 8);  // Prefetches the arc line as a side effect.
    B.load(STail2, SArc2, 8);
    B.prefetch(STail, 0);    // tail->potential, iteration i.
    B.prefetch(STail2, 0);   // tail->potential, iteration i+1.
    B.killThread();

    B.setInsertPoint(SpawnB);
    B.spawn(Hdr);
    B.jmp(Body);

    B.setInsertPoint(Stub);
    B.copyToLIB(0, Arc);
    B.copyToLIB(1, K);
    B.spawn(Hdr);
    B.rfi();

    // Trigger: at the top of the scan loop (block 1 = "loop").
    Function &F = P.func(1);
    Instruction Chk;
    Chk.Op = Opcode::ChkC;
    Chk.Target = Stub;
    Chk.Id = F.nextInstId();
    F.block(1).Insts.insert(F.block(1).Insts.begin(), Chk);
    return P;
  };
  return W;
}
