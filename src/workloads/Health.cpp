//===- workloads/Health.cpp - Olden health (hospital simulation) ----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Olden's health models the Colombian health-care system: a four-ary tree
/// of villages, each holding a linked list of patients. The simulation
/// recursively visits every village and walks its patient list,
/// accumulating waiting times. Patients are scattered across a region much
/// larger than the L3 cache, so the list-walk loads are delinquent; the
/// walk lives in a procedure reached through recursion, which is what
/// makes health's slice interprocedural in the paper's Table 2.
///
/// Village layout: +8..+32 four child pointers (null at leaves),
///                 +40 patient-list head.
/// Patient layout: +0 next, +8 time.
/// The recursive visitor keeps its locals in a simulated memory stack.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/RNG.h"

#include <numeric>
#include <vector>

using namespace ssp;
using namespace ssp::workloads;
using namespace ssp::ir;

namespace {

constexpr uint64_t VillageBase = 0x1000000;
constexpr uint64_t VillageStride = 64;
constexpr unsigned Fanout = 4;
constexpr unsigned Depth = 3; // 1 + 4 + 16 + 64 = 85 villages.
constexpr unsigned NumVillages = 1 + 4 + 16 + 64;
/// Patients are referred up the hierarchy, so higher-level villages treat
/// more of them (as in Olden's health): leaves hold PatientsLeaf and each
/// level up doubles the list length.
constexpr unsigned PatientsLeaf = 12;

constexpr uint64_t PatientRegion = 0x8000000;
constexpr unsigned PatientSlots = 1 << 16; // 64-byte slots over 4 MiB.

constexpr uint64_t StackBase = 0x200000;
constexpr uint64_t AccAddr = 0x9000; ///< Global waiting-time accumulator.

uint64_t villageAddr(unsigned I) {
  return VillageBase + static_cast<uint64_t>(I) * VillageStride;
}

} // namespace

Workload ssp::workloads::makeHealth() {
  Workload W;
  W.Name = "health";

  W.Build = []() {
    Program P;
    IRBuilder B(P);

    // fn0: main.
    B.createFunction("main");
    uint32_t MEntry = B.createBlock("entry");
    const Reg Sp = ireg(30), Arg = ireg(10), Res = ireg(22),
              Acc = ireg(23);
    B.setInsertPoint(MEntry);
    B.movI(Sp, StackBase + 65536); // Stack grows down.
    B.movI(Arg, AccAddr);
    B.store(Arg, 0, ireg(0)); // Acc = 0.
    B.movI(Arg, villageAddr(0));
    B.call(1); // visit(root).
    B.movI(Arg, AccAddr);
    B.load(Acc, Arg, 0);
    B.movI(Res, ResultAddr);
    B.store(Res, 0, Acc);
    B.halt();

    // fn1: visit(village in r10) — recursive. Layout: child.loop falls
    // through to child.next, which falls through to patients; the
    // recursion block is out of line at the end.
    B.createFunction("visit");
    uint32_t Entry = B.createBlock("entry");
    uint32_t ChildLoop = B.createBlock("child.loop");
    uint32_t ChildNext = B.createBlock("child.next");
    uint32_t Patients = B.createBlock("patients");
    uint32_t PLoop = B.createBlock("plist.loop");
    uint32_t PBody = B.createBlock("plist.body");
    uint32_t Done = B.createBlock("done");
    uint32_t Recurse = B.createBlock("child.recurse");

    const Reg V = ireg(10), Idx = ireg(11), Slot = ireg(12),
              Child = ireg(13), Pat = ireg(14), Time = ireg(15),
              AccPtr = ireg(16), AccVal = ireg(17);
    const Reg HasChild = preg(1), MoreKids = preg(2), PatNull = preg(3);

    B.setInsertPoint(Entry);
    B.addI(Sp, Sp, -16);
    B.store(Sp, 0, V);
    B.movI(Idx, 0);
    B.jmp(ChildLoop);

    B.setInsertPoint(ChildLoop);
    B.store(Sp, 8, Idx);
    B.load(V, Sp, 0);
    B.shlI(Slot, Idx, 3);
    B.add(Slot, Slot, V);
    B.load(Child, Slot, 8); // children at +8..+32.
    B.cmpI(CondCode::NE, HasChild, Child, 0);
    B.br(HasChild, Recurse);

    B.setInsertPoint(ChildNext);
    B.load(Idx, Sp, 8);
    B.addI(Idx, Idx, 1);
    B.cmpI(CondCode::LT, MoreKids, Idx, Fanout);
    B.br(MoreKids, ChildLoop); // Falls through to patients.

    B.setInsertPoint(Patients);
    B.load(V, Sp, 0);
    B.load(Pat, V, 40); // Patient-list head; falls through to the loop.

    B.setInsertPoint(PLoop);
    B.cmpI(CondCode::EQ, PatNull, Pat, 0);
    B.br(PatNull, Done); // Falls through to the body.

    B.setInsertPoint(PBody);
    B.load(Time, Pat, 8); // Delinquent: scattered patient record.
    B.movI(AccPtr, AccAddr);
    B.load(AccVal, AccPtr, 0);
    B.add(AccVal, AccVal, Time);
    B.store(AccPtr, 0, AccVal);
    B.load(Pat, Pat, 0); // Delinquent: p->next walk.
    B.jmp(PLoop);

    B.setInsertPoint(Done);
    B.addI(Sp, Sp, 16);
    B.ret();

    B.setInsertPoint(Recurse);
    B.mov(V, Child);
    B.call(1); // visit(child).
    B.jmp(ChildNext);

    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [](mem::SimMemory &Mem) {
    RNG Rng(0x4EA17);
    // Shuffled patient slots over the 4 MiB region.
    std::vector<uint32_t> Slots(PatientSlots);
    std::iota(Slots.begin(), Slots.end(), 0u);
    for (unsigned I = PatientSlots - 1; I > 0; --I)
      std::swap(Slots[I],
                Slots[static_cast<unsigned>(Rng.nextBelow(I + 1))]);
    unsigned NextSlot = 0;
    auto AllocPatient = [&]() {
      return PatientRegion + static_cast<uint64_t>(Slots[NextSlot++]) * 64;
    };

    // Village tree: children of village i (level order).
    uint64_t Expected = 0;
    for (unsigned I = 0; I < NumVillages; ++I) {
      uint64_t VA = villageAddr(I);
      for (unsigned K = 0; K < Fanout; ++K) {
        unsigned Child = I * Fanout + 1 + K;
        Mem.write(VA + 8 + 8 * K,
                  Child < NumVillages ? villageAddr(Child) : 0);
      }
      // Patient list, scaled by level (root = level 0 treats the most).
      unsigned Level = 0;
      for (unsigned V = I; V != 0; V = (V - 1) / Fanout)
        ++Level;
      unsigned NumPatients = PatientsLeaf << (Depth - Level);
      uint64_t Head = 0;
      for (unsigned J = 0; J < NumPatients; ++J) {
        uint64_t Pa = AllocPatient();
        uint64_t Time = (I * 131 + J * 17) % 1000;
        Mem.write(Pa + 0, Head);
        Mem.write(Pa + 8, Time);
        Head = Pa;
        Expected += Time;
      }
      Mem.write(VA + 40, Head);
    }
    Mem.write(ResultAddr, 0);
    Mem.write(AccAddr, 0);
    (void)Depth;
    return Expected;
  };
  return W;
}

//===----------------------------------------------------------------------===//
// Hand-adapted health (Section 4.5). The hand version encodes what the
// paper says the tool cannot do: it "inlines" a level of the village
// recursion into the slice, so a single speculative thread spawned at
// visit() entry prefetches this village's patient chain AND the four child
// villages' patient-list heads — creating slack across the whole recursive
// descent rather than one list walk.
//===----------------------------------------------------------------------===//

Workload ssp::workloads::makeHealthHandAdapted() {
  Workload Base = makeHealth();
  Workload W;
  W.Name = "health.hand";
  W.BuildMemory = Base.BuildMemory;

  W.Build = [Base]() {
    Program P = Base.Build();
    IRBuilder B(P);
    B.setFunction(1); // visit.

    const Reg V = ireg(10);
    // Slice-private registers.
    const Reg SV = ireg(40), SP = ireg(41), SC = ireg(42), SH = ireg(43);

    uint32_t Slice = B.createBlock("hand.slice", BlockKind::Slice);
    uint32_t Stub = B.createBlock("hand.stub", BlockKind::Stub);

    B.setInsertPoint(Slice);
    B.copyFromLIB(SV, 0);
    // Prefetch this village's patient chain, speculatively walking it
    // straight-line (wild loads past the list end are harmless); sized
    // for the level-weighted lists of the workload.
    B.load(SP, SV, 40);
    for (int I = 0; I < 24; ++I) {
      B.prefetch(SP, 8);
      B.load(SP, SP, 0);
    }
    // Inlined recursion level: walk into each child village's list too —
    // the aggressive inlining the paper credits the hand adaptation with.
    for (int K = 0; K < 4; ++K) {
      B.load(SC, SV, 8 + 8 * K);
      B.load(SH, SC, 40);
      for (int I = 0; I < 6; ++I) {
        B.prefetch(SH, 8);
        B.load(SH, SH, 0);
      }
    }
    B.killThread();

    B.setInsertPoint(Stub);
    B.copyToLIB(0, V);
    B.spawn(Slice);
    B.rfi();

    // Trigger at visit() entry, before the frame setup (r10 is live-in).
    Function &F = P.func(1);
    Instruction Chk;
    Chk.Op = Opcode::ChkC;
    Chk.Target = Stub;
    Chk.Id = F.nextInstId();
    F.block(0).Insts.insert(F.block(0).Insts.begin(), Chk);
    return P;
  };
  return W;
}
