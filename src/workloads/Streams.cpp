//===- workloads/Streams.cpp - Indirect-access stream workloads -----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three indirect-access kernels sized past the 3 MiB L3, exercising the
/// stream-descriptor path (`ssp-adapt --streams`): a hash-join probe whose
/// probe keys hash into a 4 MiB build-side entry table, an edge-centric
/// pagerank step gathering ranks through a CSR column array, and an
/// open-addressing hash-table sweep probing a four-slot window. All three
/// have the a[b[i]] shape — an affine, cache-friendly index stream feeding
/// a dependent scatter-gather over a table larger than the L3 — so the
/// classifier attaches an Indirect StreamDescriptor, while the delinquent
/// gathers themselves defeat a plain affine prefetcher. Checksums are
/// computed analytically by the data-image builders, exactly as the paper
/// suite does.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/RNG.h"

#include <vector>

using namespace ssp;
using namespace ssp::workloads;
using namespace ssp::ir;

namespace {

/// Probe/edge counts: enough trips to dominate the run, few enough that
/// the 4 MiB tables stay cold (nearly every gather is an L3 miss).
constexpr unsigned NumProbes = 3000;

constexpr uint64_t KeyBase = 0x200000; ///< Probe-key / column arrays.

constexpr uint64_t HashMult = 2654435761u; ///< Knuth multiplicative hash.

} // namespace

//===----------------------------------------------------------------------===//
// hashjoin: probe phase of a hash join
//===----------------------------------------------------------------------===//
//
// Build side: 2^18 16-byte entries (4 MiB) at EntBase, slot s holding two
// payload words. Probe side: NumProbes keys; each probe hashes its key and
// sums both payload words of the hashed entry. The entry loads (+0, +8)
// are the delinquent gathers.

namespace {
constexpr uint64_t JoinEntBase = 0x4000000;
constexpr unsigned JoinEntries = 1 << 18; // 16 B each: 4 MiB.

uint64_t joinKey(unsigned I) {
  return (static_cast<uint64_t>(I) * 2654435761u + 12345) & 0xFFFFF;
}
uint64_t joinSlot(uint64_t Key) {
  return (Key * HashMult) & (JoinEntries - 1);
}
} // namespace

Workload ssp::workloads::makeHashJoin() {
  Workload W;
  W.Name = "hashjoin";

  W.Build = []() {
    Program P;
    IRBuilder B(P);
    B.createFunction("main");
    uint32_t Entry = B.createBlock("entry");
    uint32_t Loop = B.createBlock("probe");
    uint32_t Exit = B.createBlock("exit");

    const Reg KPtr = ireg(1), Sum = ireg(2), End = ireg(3), K = ireg(4),
              H = ireg(5), EA = ireg(6), V0 = ireg(7), V1 = ireg(8),
              Res = ireg(11);
    const Reg Cont = preg(1);

    B.setInsertPoint(Entry);
    B.movI(KPtr, KeyBase);
    B.movI(Sum, 0);
    B.movI(End, KeyBase + static_cast<uint64_t>(NumProbes) * 8);
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.load(K, KPtr, 0); // Probe key: sequential, cache-friendly.
    B.mulI(H, K, static_cast<int64_t>(HashMult));
    B.andI(H, H, JoinEntries - 1);
    B.shlI(H, H, 4); // 16-byte entries.
    B.addI(EA, H, static_cast<int64_t>(JoinEntBase));
    B.load(V0, EA, 0); // Delinquent gather: build-side payload.
    B.load(V1, EA, 8); // Delinquent gather: second payload word.
    B.add(Sum, Sum, V0);
    B.add(Sum, Sum, V1);
    B.addI(KPtr, KPtr, 8);
    B.cmp(CondCode::LT, Cont, KPtr, End);
    B.br(Cont, Loop);

    B.setInsertPoint(Exit);
    B.movI(Res, ResultAddr);
    B.store(Res, 0, Sum);
    B.halt();
    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [](mem::SimMemory &Mem) {
    for (unsigned S = 0; S < JoinEntries; ++S) {
      uint64_t Addr = JoinEntBase + static_cast<uint64_t>(S) * 16;
      Mem.write(Addr + 0, static_cast<uint64_t>(S) * 13 + 7);
      Mem.write(Addr + 8, static_cast<uint64_t>(S) * 31 + 3);
    }
    uint64_t Sum = 0;
    for (unsigned I = 0; I < NumProbes; ++I) {
      uint64_t Key = joinKey(I);
      Mem.write(KeyBase + static_cast<uint64_t>(I) * 8, Key);
      uint64_t S = joinSlot(Key);
      Sum += S * 13 + 7;
      Sum += S * 31 + 3;
    }
    Mem.write(ResultAddr, 0);
    return Sum;
  };
  return W;
}

//===----------------------------------------------------------------------===//
// pagerank: edge-centric rank gather over CSR
//===----------------------------------------------------------------------===//
//
// One edge-centric step of pagerank: for every edge e, gather the source
// vertex's rank through the CSR column array, rank[col[e]]. The column
// array is sequential; the 2^19-entry rank array (4 MiB) is indexed by
// effectively random vertex ids, so the rank load is the delinquent
// gather.

namespace {
constexpr uint64_t RankBase = 0x4800000;
constexpr unsigned NumVerts = 1 << 19; // 8 B each: 4 MiB.

uint64_t rankOf(uint64_t V) { return V * 7 + 1; }
} // namespace

Workload ssp::workloads::makePagerank() {
  Workload W;
  W.Name = "pagerank";

  W.Build = []() {
    Program P;
    IRBuilder B(P);
    B.createFunction("main");
    uint32_t Entry = B.createBlock("entry");
    uint32_t Loop = B.createBlock("edges");
    uint32_t Exit = B.createBlock("exit");

    const Reg CPtr = ireg(1), Sum = ireg(2), End = ireg(3), V = ireg(4),
              RA = ireg(5), R = ireg(6), Res = ireg(11);
    const Reg Cont = preg(1);

    B.setInsertPoint(Entry);
    B.movI(CPtr, KeyBase);
    B.movI(Sum, 0);
    B.movI(End, KeyBase + static_cast<uint64_t>(NumProbes) * 8);
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.load(V, CPtr, 0); // col[e]: sequential, cache-friendly.
    B.shlI(RA, V, 3);
    B.addI(RA, RA, static_cast<int64_t>(RankBase));
    B.load(R, RA, 0); // rank[col[e]]: the delinquent gather.
    B.add(Sum, Sum, R);
    B.addI(CPtr, CPtr, 8);
    B.cmp(CondCode::LT, Cont, CPtr, End);
    B.br(Cont, Loop);

    B.setInsertPoint(Exit);
    B.movI(Res, ResultAddr);
    B.store(Res, 0, Sum);
    B.halt();
    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [](mem::SimMemory &Mem) {
    RNG Rng(0x9A6E);
    for (unsigned V = 0; V < NumVerts; ++V)
      Mem.write(RankBase + static_cast<uint64_t>(V) * 8, rankOf(V));
    uint64_t Sum = 0;
    for (unsigned E = 0; E < NumProbes; ++E) {
      uint64_t V = Rng.nextBelow(NumVerts);
      Mem.write(KeyBase + static_cast<uint64_t>(E) * 8, V);
      Sum += rankOf(V);
    }
    Mem.write(ResultAddr, 0);
    return Sum;
  };
  return W;
}

//===----------------------------------------------------------------------===//
// oahash: open-addressing table sweep
//===----------------------------------------------------------------------===//
//
// Probes an open-addressing hash table of 2^18 16-byte slots (4 MiB),
// summing the keys of the four-slot linear-probe window starting at the
// hashed slot. The table is tail-padded with three extra slots so the
// window never wraps — the whole probe is the affine window {0,16,32,48}
// around one gathered slot address.

namespace {
constexpr uint64_t OaTabBase = 0x5000000;
constexpr unsigned OaSlots = 1 << 18; // 16 B each: 4 MiB (+3 pad slots).

uint64_t oaKey(unsigned I) {
  return (static_cast<uint64_t>(I) * 40503 + 977) & 0x3FFFF;
}
uint64_t oaSlot(uint64_t Key) { return (Key * HashMult) & (OaSlots - 1); }
uint64_t oaSlotKey(uint64_t S) { return S * 11 + 29; }
} // namespace

Workload ssp::workloads::makeOaHash() {
  Workload W;
  W.Name = "oahash";

  W.Build = []() {
    Program P;
    IRBuilder B(P);
    B.createFunction("main");
    uint32_t Entry = B.createBlock("entry");
    uint32_t Loop = B.createBlock("sweep");
    uint32_t Exit = B.createBlock("exit");

    const Reg KPtr = ireg(1), Sum = ireg(2), End = ireg(3), K = ireg(4),
              H = ireg(5), EA = ireg(6), S0 = ireg(7), S1 = ireg(8),
              S2 = ireg(9), S3 = ireg(10), Res = ireg(11);
    const Reg Cont = preg(1);

    B.setInsertPoint(Entry);
    B.movI(KPtr, KeyBase);
    B.movI(Sum, 0);
    B.movI(End, KeyBase + static_cast<uint64_t>(NumProbes) * 8);
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.load(K, KPtr, 0); // Probe key: sequential, cache-friendly.
    B.mulI(H, K, static_cast<int64_t>(HashMult));
    B.andI(H, H, OaSlots - 1);
    B.shlI(H, H, 4); // 16-byte slots.
    B.addI(EA, H, static_cast<int64_t>(OaTabBase));
    B.load(S0, EA, 0);  // Delinquent gathers: the linear-probe window.
    B.load(S1, EA, 16);
    B.load(S2, EA, 32);
    B.load(S3, EA, 48);
    B.add(Sum, Sum, S0);
    B.add(Sum, Sum, S1);
    B.add(Sum, Sum, S2);
    B.add(Sum, Sum, S3);
    B.addI(KPtr, KPtr, 8);
    B.cmp(CondCode::LT, Cont, KPtr, End);
    B.br(Cont, Loop);

    B.setInsertPoint(Exit);
    B.movI(Res, ResultAddr);
    B.store(Res, 0, Sum);
    B.halt();
    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [](mem::SimMemory &Mem) {
    for (unsigned S = 0; S < OaSlots + 3; ++S)
      Mem.write(OaTabBase + static_cast<uint64_t>(S) * 16, oaSlotKey(S));
    uint64_t Sum = 0;
    for (unsigned I = 0; I < NumProbes; ++I) {
      uint64_t Key = oaKey(I);
      Mem.write(KeyBase + static_cast<uint64_t>(I) * 8, Key);
      uint64_t S = oaSlot(Key);
      for (unsigned P = 0; P < 4; ++P)
        Sum += oaSlotKey(S + P);
    }
    Mem.write(ResultAddr, 0);
    return Sum;
  };
  return W;
}
