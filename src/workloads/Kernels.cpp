//===- workloads/Kernels.cpp - Small kernels for tests and examples -------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/RNG.h"

using namespace ssp;
using namespace ssp::workloads;
using namespace ssp::ir;

namespace {
constexpr uint64_t KernelArcBase = 0x100000;
constexpr uint64_t KernelNodeBase = 0x4000000;
} // namespace

Workload ssp::workloads::makePhasedKernel(unsigned NumPasses,
                                          unsigned NumArcs,
                                          unsigned NumNodes) {
  constexpr uint64_t ArcSize = 64;
  constexpr uint64_t NodeStride = 64;
  Workload W;
  W.Name = "phased-kernel";

  W.Build = [NumPasses, NumArcs]() {
    Program P;
    IRBuilder B(P);
    B.createFunction("main");
    uint32_t Entry = B.createBlock("entry");
    uint32_t Pass = B.createBlock("pass");
    uint32_t Loop = B.createBlock("scan");
    uint32_t PassLatch = B.createBlock("pass.latch");
    uint32_t Exit = B.createBlock("exit");

    const Reg Arc = ireg(1), Sum = ireg(2), Tail = ireg(3), K = ireg(4),
              Val = ireg(6), PassNo = ireg(9), Res = ireg(11);
    const Reg Cont = preg(1), More = preg(2);

    B.setInsertPoint(Entry);
    B.movI(Sum, 0);
    B.movI(PassNo, NumPasses);
    B.movI(K, KernelArcBase + static_cast<uint64_t>(NumArcs) * ArcSize);
    // Falls through to the pass header.

    B.setInsertPoint(Pass);
    B.movI(Arc, KernelArcBase);
    // Falls through to the scan loop.

    B.setInsertPoint(Loop);
    B.load(Tail, Arc, 8);
    B.load(Val, Tail, 0);
    B.add(Sum, Sum, Val);
    B.addI(Arc, Arc, ArcSize);
    B.cmp(CondCode::LT, Cont, Arc, K);
    B.br(Cont, Loop); // Falls through to the pass latch.

    B.setInsertPoint(PassLatch);
    B.addI(PassNo, PassNo, -1);
    B.cmpI(CondCode::GT, More, PassNo, 0);
    B.br(More, Pass); // Falls through to exit.

    B.setInsertPoint(Exit);
    B.movI(Res, ResultAddr);
    B.store(Res, 0, Sum);
    B.halt();
    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [NumPasses, NumArcs, NumNodes](mem::SimMemory &Mem) {
    RNG Rng(0xFA5E);
    uint64_t PassSum = 0;
    for (unsigned I = 0; I < NumNodes; ++I)
      Mem.write(KernelNodeBase + static_cast<uint64_t>(I) * NodeStride,
                I * 11 + 5);
    for (unsigned I = 0; I < NumArcs; ++I) {
      uint64_t Arc = KernelArcBase + static_cast<uint64_t>(I) * ArcSize;
      uint64_t Node =
          KernelNodeBase + Rng.nextBelow(NumNodes) * NodeStride;
      Mem.write(Arc + 8, Node);
      PassSum += Mem.read(Node);
    }
    Mem.write(ResultAddr, 0);
    return PassSum * NumPasses;
  };
  return W;
}

Workload ssp::workloads::makeArcKernel(unsigned NumArcs, unsigned NumNodes) {
  constexpr uint64_t ArcBase = 0x100000;
  constexpr uint64_t ArcSize = 64;
  constexpr uint64_t NodeBase = 0x4000000;
  constexpr uint64_t NodeStride = 64;

  Workload W;
  W.Name = "arc-kernel";

  W.Build = [NumArcs]() {
    Program P;
    IRBuilder B(P);
    B.createFunction("main");
    uint32_t Entry = B.createBlock("entry");
    uint32_t Loop = B.createBlock("loop");
    uint32_t Exit = B.createBlock("exit");

    const Reg Arc = ireg(1), Sum = ireg(2), Tail = ireg(3), K = ireg(4),
              Val = ireg(6), Tmp = ireg(10), ResBase = ireg(11);
    const Reg Cont = preg(1);

    B.setInsertPoint(Entry);
    B.movI(Arc, ArcBase);
    B.movI(Sum, 0);
    B.movI(K, ArcBase + static_cast<uint64_t>(NumArcs) * ArcSize);
    B.movI(ResBase, ResultAddr);
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.load(Tail, Arc, 8);  // t->tail.
    B.load(Val, Tail, 0);  // tail->potential: the delinquent load.
    B.add(Sum, Sum, Val);
    B.movI(Tmp, 1);
    for (int I = 0; I < 10; ++I)
      B.add(Tmp, Tmp, Val);
    B.xor_(Tmp, Tmp, Sum);
    B.addI(Arc, Arc, ArcSize);
    B.cmp(CondCode::LT, Cont, Arc, K);
    B.br(Cont, Loop);

    B.setInsertPoint(Exit);
    B.store(ResBase, 0, Sum);
    B.halt();
    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [NumArcs, NumNodes](mem::SimMemory &Mem) {
    RNG Rng(1234);
    uint64_t Expected = 0;
    for (unsigned I = 0; I < NumNodes; ++I)
      Mem.write(NodeBase + static_cast<uint64_t>(I) * NodeStride,
                I * 3 + 1);
    for (unsigned I = 0; I < NumArcs; ++I) {
      uint64_t Arc = ArcBase + static_cast<uint64_t>(I) * ArcSize;
      uint64_t Node = NodeBase + Rng.nextBelow(NumNodes) * NodeStride;
      Mem.write(Arc + 8, Node);
      Expected += Mem.read(Node);
    }
    Mem.write(ResultAddr, 0);
    return Expected;
  };
  return W;
}
