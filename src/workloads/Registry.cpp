//===- workloads/Registry.cpp - Benchmark suite registry -------------------===//

#include "workloads/Workload.h"

using namespace ssp::workloads;

std::vector<Workload> ssp::workloads::paperSuite() {
  return {makeEm3d(),      makeHealth(), makeMst(), makeTreeaddDF(),
          makeTreeaddBF(), makeMcf(),    makeVpr()};
}
