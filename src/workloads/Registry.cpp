//===- workloads/Registry.cpp - Benchmark suite registry -------------------===//

#include "workloads/Workload.h"

using namespace ssp::workloads;

std::vector<Workload> ssp::workloads::paperSuite() {
  return {makeEm3d(),      makeHealth(), makeMst(), makeTreeaddDF(),
          makeTreeaddBF(), makeMcf(),    makeVpr()};
}

std::vector<Workload> ssp::workloads::streamSuite() {
  return {makeHashJoin(), makePagerank(), makeOaHash()};
}

std::vector<Workload> ssp::workloads::fullSuite() {
  std::vector<Workload> All = paperSuite();
  std::vector<Workload> S = streamSuite();
  All.insert(All.end(), S.begin(), S.end());
  return All;
}
