//===- workloads/Stress.cpp - Synthetic tool-scalability stress workload --===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parameterized synthetic program generator for measuring *tool*
/// throughput (analysis, slicing, scheduling, full adaptation) on binaries
/// 10-100x larger than the hand-written paper kernels. Every function runs
/// the same shape of pointer-chasing scan the paper's workloads exercise --
/// per-block delinquent loads through a scattered node region larger than
/// the L3 -- so the adaptation pipeline does representative work on every
/// scale point: delinquent-load selection, region traversal, callee
/// summaries (the arc stride runs through a shared helper call), chaining
/// and basic SP scheduling, trigger placement, and rewriting.
///
/// Layout of one generated binary:
///   fn0           main: calls every worker once, stores the checksum.
///   fn1           stride helper: arc += ArcRecordBytes; ret.
///   fn2..fn1+F    workers: a loop of `BlocksPerFunc` fall-through body
///                 blocks, each issuing `LoadsPerBlock` pointer->node load
///                 pairs; the latch advances the arc cursor via fn1.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/IRBuilder.h"
#include "support/RNG.h"

using namespace ssp;
using namespace ssp::workloads;
using namespace ssp::ir;

namespace {

constexpr uint64_t StressArcBase = 0x1000000;
constexpr uint64_t StressNodeBase = 0x10000000;
constexpr uint64_t NodeStride = 64;
/// 4 MiB of 64-byte nodes: larger than the 3 MiB L3, so node loads miss.
constexpr unsigned NumNodes = 1 << 16;
/// Loop trips per worker function (fixed: the knobs scale the *static*
/// program, which is what tool-throughput benchmarking needs).
constexpr unsigned ArcsPerFunc = 48;

/// Bytes of one arc record: one 8-byte slot per (block, load) pair plus a
/// header word, rounded up to whole cache lines.
uint64_t arcRecordBytes(unsigned BlocksPerFunc, unsigned LoadsPerBlock) {
  uint64_t Slots = 1 + static_cast<uint64_t>(BlocksPerFunc) * LoadsPerBlock;
  return (Slots * 8 + 63) / 64 * 64;
}

} // namespace

Workload ssp::workloads::makeStress(unsigned Funcs, unsigned BlocksPerFunc,
                                    unsigned LoadsPerBlock) {
  if (Funcs == 0)
    Funcs = 1;
  if (BlocksPerFunc == 0)
    BlocksPerFunc = 1;
  if (LoadsPerBlock == 0)
    LoadsPerBlock = 1;
  const uint64_t ArcBytes = arcRecordBytes(BlocksPerFunc, LoadsPerBlock);
  const uint64_t SliceBytes = ArcBytes * ArcsPerFunc;

  Workload W;
  W.Name = "stress(" + std::to_string(Funcs) + "x" +
           std::to_string(BlocksPerFunc) + "x" +
           std::to_string(LoadsPerBlock) + ")";

  W.Build = [Funcs, BlocksPerFunc, LoadsPerBlock, ArcBytes, SliceBytes]() {
    Program P;
    IRBuilder B(P);

    const Reg Arc = ireg(1), Sum = ireg(2), Ptr = ireg(3), End = ireg(4),
              Val = ireg(5), Tmp = ireg(6), Res = ireg(22);
    const Reg Cont = preg(1);

    // fn0: main.
    B.createFunction("main");
    B.createBlock("entry");
    B.movI(Sum, 0);
    for (unsigned F = 0; F < Funcs; ++F)
      B.call(2 + F);
    B.movI(Res, ResultAddr);
    B.store(Res, 0, Sum);
    B.halt();

    // fn1: stride(arc in r1) -> r1 += ArcBytes. Routing the induction
    // update through a call forces the slicer to expand a callee summary
    // for every worker slice.
    B.createFunction("stride");
    B.createBlock("entry");
    B.addI(Arc, Arc, static_cast<int64_t>(ArcBytes));
    B.ret();

    // fn2..: workers.
    for (unsigned F = 0; F < Funcs; ++F) {
      B.createFunction("work" + std::to_string(F));
      uint32_t Entry = B.createBlock("entry");
      std::vector<uint32_t> Bodies;
      for (unsigned Blk = 0; Blk < BlocksPerFunc; ++Blk)
        Bodies.push_back(B.createBlock("body" + std::to_string(Blk)));
      uint32_t Latch = B.createBlock("latch");
      uint32_t Exit = B.createBlock("exit");

      uint64_t Base = StressArcBase + static_cast<uint64_t>(F) * SliceBytes;
      B.setInsertPoint(Entry);
      B.movI(Arc, static_cast<int64_t>(Base));
      B.movI(End, static_cast<int64_t>(Base + SliceBytes));
      B.jmp(Bodies.front());

      for (unsigned Blk = 0; Blk < BlocksPerFunc; ++Blk) {
        B.setInsertPoint(Bodies[Blk]);
        for (unsigned L = 0; L < LoadsPerBlock; ++L) {
          int64_t Slot = 8 * (1 + static_cast<int64_t>(Blk) * LoadsPerBlock +
                              L);
          B.load(Ptr, Arc, Slot);  // Arc slot: sequential line.
          B.load(Val, Ptr, 0);     // Node line: delinquent.
          B.add(Sum, Sum, Val);
        }
        // Filler arithmetic off the slice (the slicer must skip it).
        B.addI(Tmp, Sum, 7);
        B.xor_(Tmp, Tmp, Sum);
        // Falls through to the next body block (or the latch).
      }

      B.setInsertPoint(Latch);
      B.call(1); // arc += ArcBytes via the stride helper.
      B.cmp(CondCode::LT, Cont, Arc, End);
      B.br(Cont, Bodies.front()); // Falls through to exit.

      B.setInsertPoint(Exit);
      B.ret();
      (void)Latch;
    }

    P.setEntry(0);
    return P;
  };

  W.BuildMemory = [Funcs, BlocksPerFunc, LoadsPerBlock, ArcBytes,
                   SliceBytes](mem::SimMemory &Mem) {
    RNG Rng(0x57E55);
    for (unsigned I = 0; I < NumNodes; ++I)
      Mem.write(StressNodeBase + static_cast<uint64_t>(I) * NodeStride,
                I * 7 + 3);
    uint64_t Expected = 0;
    for (unsigned F = 0; F < Funcs; ++F) {
      uint64_t Base = StressArcBase + static_cast<uint64_t>(F) * SliceBytes;
      for (unsigned A = 0; A < ArcsPerFunc; ++A) {
        uint64_t Arc = Base + static_cast<uint64_t>(A) * ArcBytes;
        for (unsigned Blk = 0; Blk < BlocksPerFunc; ++Blk)
          for (unsigned L = 0; L < LoadsPerBlock; ++L) {
            uint64_t Slot =
                Arc + 8 * (1 + static_cast<uint64_t>(Blk) * LoadsPerBlock +
                           L);
            uint64_t Node =
                StressNodeBase + Rng.nextBelow(NumNodes) * NodeStride;
            Mem.write(Slot, Node);
            Expected += Mem.read(Node);
          }
      }
    }
    Mem.write(ResultAddr, 0);
    return Expected;
  };
  return W;
}
