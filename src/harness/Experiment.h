//===- harness/Experiment.h - Shared experiment harness -------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment harness shared by every bench binary: it profiles a
/// workload, runs the post-pass tool, simulates the baseline and the
/// SSP-enhanced binary on both research Itanium models (and the idealized
/// memory modes of Figure 2), validates checksums, and caches results so
/// one bench binary never simulates the same configuration twice.
///
/// Parallel experiment engine: SuiteRunner's caches are mutex-guarded with
/// per-key once-initialization, so independent jobs may share one runner
/// without ever simulating the same key twice; each simulation job owns its
/// SimMemory image, CacheHierarchy and BranchPredictor (all private to its
/// Simulator), so Simulator itself needs no locking and results are
/// bit-identical to the serial path regardless of thread count.
/// ParallelSuiteRunner couples a runner to a support::ThreadPool and fans
/// the four simulations of a BenchResult — and, via runAll, independent
/// workloads — out across it.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_HARNESS_EXPERIMENT_H
#define SSP_HARNESS_EXPERIMENT_H

#include "core/PostPassTool.h"
#include "sim/Simulator.h"
#include "support/ThreadPool.h"
#include "workloads/Workload.h"

#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace ssp::harness {

/// All simulation results for one workload under one tool configuration.
struct BenchResult {
  std::string Name;
  core::AdaptationReport Report;

  sim::SimStats BaseIO;  ///< Original binary, in-order.
  sim::SimStats SspIO;   ///< Enhanced binary, in-order.
  sim::SimStats BaseOOO; ///< Original binary, out-of-order.
  sim::SimStats SspOOO;  ///< Enhanced binary, out-of-order.

  bool ChecksumsOk = true; ///< Every run stored the expected checksum.

  double speedupIO() const {
    return static_cast<double>(BaseIO.Cycles) /
           static_cast<double>(SspIO.Cycles);
  }
  double speedupOOOOverIO() const {
    return static_cast<double>(BaseIO.Cycles) /
           static_cast<double>(BaseOOO.Cycles);
  }
  double speedupSspOOOOverIO() const {
    return static_cast<double>(BaseIO.Cycles) /
           static_cast<double>(SspOOO.Cycles);
  }
};

/// Runs workloads through the full pipeline with caching. Thread-safe: all
/// public methods may be called concurrently; each cache key is computed
/// exactly once (other callers block until it is ready) and references
/// returned from the caches are stable for the runner's lifetime.
class SuiteRunner {
public:
  explicit SuiteRunner(core::ToolOptions Opts = core::ToolOptions())
      : Opts(std::move(Opts)) {}

  /// Full result for \p W (profile -> adapt -> 4 simulations). Cached.
  /// When \p Pool is non-null (and has real workers), the four simulations
  /// run concurrently on it; pass a pool only from a thread that is not
  /// itself a pool worker, or the nested wait can deadlock.
  const BenchResult &run(const workloads::Workload &W,
                         support::ThreadPool *Pool = nullptr);

  /// Simulates \p W's original binary under \p Cfg (Figure 2's idealized
  /// modes are reached through Cfg.PerfectMemory / Cfg.PerfectLoads).
  sim::SimStats simulateOriginal(const workloads::Workload &W,
                                 sim::MachineConfig Cfg);

  /// The profile of \p W's original binary. Cached.
  const profile::ProfileData &profileOf(const workloads::Workload &W);

  /// \p W's original (pre-adaptation) binary. Cached.
  const ir::Program &originalOf(const workloads::Workload &W);

  /// StaticIds of the delinquent loads the tool would select for \p W.
  std::unordered_set<ir::StaticId>
  delinquentIdsOf(const workloads::Workload &W);

  const core::ToolOptions &options() const { return Opts; }

  /// Controls event-driven idle-cycle skipping for the runner's own
  /// simulations (run/computeResult). Stats are bit-identical either way;
  /// `--no-skip` in the tools routes here. Set before the first run() —
  /// cached results are not invalidated. Configs passed explicitly to
  /// simulate/simulateOriginal carry their own SkipIdleCycles flag.
  void setSkipIdleCycles(bool Skip) { SkipIdle = Skip; }

  /// Applies a sampled-simulation plan (`--sample` in the benches) to the
  /// runner's own simulations. Profiling always runs exactly — the plan
  /// affects the four timing simulations only. Same caveats as
  /// setSkipIdleCycles: set before the first run().
  void setSamplingPlan(const sim::SamplingPlan &Plan) { SamplePlan = Plan; }

  /// Simulates \p P on \p W's data image; checks the checksum when
  /// \p ChecksumOk is provided.
  static sim::SimStats simulate(const ir::Program &P,
                                const workloads::Workload &W,
                                sim::MachineConfig Cfg,
                                bool *ChecksumOk = nullptr);

private:
  /// A cache node: the once-flag serializes computation of the payload;
  /// the std::map guarantees node stability across concurrent insertions.
  template <typename T> struct CacheEntry {
    std::once_flag Once;
    T Value;
  };

  /// Finds or creates the node for \p Key under the cache mutex. The lock
  /// covers only the map operation, never a simulation.
  template <typename T>
  CacheEntry<T> &entryFor(std::map<std::string, CacheEntry<T>> &M,
                          const std::string &Key) {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    return M[Key];
  }

  void computeResult(const workloads::Workload &W, BenchResult &R,
                     support::ThreadPool *Pool);

  /// Table 1 machine configs with the runner's skip/sampling settings
  /// applied.
  sim::MachineConfig ioCfg() const {
    sim::MachineConfig C = sim::MachineConfig::inOrder();
    C.SkipIdleCycles = SkipIdle;
    C.Sample = SamplePlan;
    return C;
  }
  sim::MachineConfig oooCfg() const {
    sim::MachineConfig C = sim::MachineConfig::outOfOrder();
    C.SkipIdleCycles = SkipIdle;
    C.Sample = SamplePlan;
    return C;
  }

  core::ToolOptions Opts;
  bool SkipIdle = true;
  sim::SamplingPlan SamplePlan;
  std::mutex CacheMutex;
  std::map<std::string, CacheEntry<BenchResult>> Cache;
  std::map<std::string, CacheEntry<profile::ProfileData>> Profiles;
  std::map<std::string, CacheEntry<ir::Program>> Originals;
};

/// A SuiteRunner bound to a thread pool: the parallel experiment engine the
/// bench binaries use. `run` fans the four simulations of one workload out
/// across the pool; `runAll` additionally overlaps independent workloads
/// (profiles first, then whole-workload pipelines). Sweep-style benches use
/// `pool().parallelFor` directly over their (workload x config) points.
class ParallelSuiteRunner {
public:
  /// \p Jobs = 0 selects hardware_concurrency; 1 is the exact serial path.
  explicit ParallelSuiteRunner(core::ToolOptions Opts = core::ToolOptions(),
                               unsigned Jobs = 0)
      : Inner(std::move(Opts)), Pool(Jobs) {}

  /// Full result for \p W, its four simulations running concurrently.
  /// Call from the orchestrating thread only (not from pool jobs).
  const BenchResult &run(const workloads::Workload &W) {
    return Inner.run(W, &Pool);
  }

  /// Warms the cache for all of \p Ws with maximal overlap: all profiles
  /// in parallel, then one pipeline job per workload. Subsequent run()
  /// calls return the cached results instantly.
  void runAll(const std::vector<workloads::Workload> &Ws);

  sim::SimStats simulateOriginal(const workloads::Workload &W,
                                 sim::MachineConfig Cfg) {
    return Inner.simulateOriginal(W, std::move(Cfg));
  }
  const profile::ProfileData &profileOf(const workloads::Workload &W) {
    return Inner.profileOf(W);
  }
  const ir::Program &originalOf(const workloads::Workload &W) {
    return Inner.originalOf(W);
  }
  std::unordered_set<ir::StaticId>
  delinquentIdsOf(const workloads::Workload &W) {
    return Inner.delinquentIdsOf(W);
  }
  const core::ToolOptions &options() const { return Inner.options(); }
  void setSkipIdleCycles(bool Skip) { Inner.setSkipIdleCycles(Skip); }
  void setSamplingPlan(const sim::SamplingPlan &Plan) {
    Inner.setSamplingPlan(Plan);
  }

  static sim::SimStats simulate(const ir::Program &P,
                                const workloads::Workload &W,
                                sim::MachineConfig Cfg,
                                bool *ChecksumOk = nullptr) {
    return SuiteRunner::simulate(P, W, std::move(Cfg), ChecksumOk);
  }

  support::ThreadPool &pool() { return Pool; }
  SuiteRunner &inner() { return Inner; }

private:
  SuiteRunner Inner;
  support::ThreadPool Pool;
};

/// Parses a `--jobs N` argument from the command line (for the bench
/// binaries and tools). Returns 0 — "use hardware_concurrency" — when the
/// flag is absent or given as the explicit auto spelling `--jobs 0`;
/// exits with a usage error on a malformed value.
unsigned jobsFromArgs(int argc, char **argv);

/// Parses a `--no-skip` argument (disable event-driven idle-cycle
/// skipping; see MachineConfig::SkipIdleCycles). Returns true when present.
bool noSkipFromArgs(int argc, char **argv);

/// Parses a `--sample[=W:D:F[:R]]` argument: bare `--sample` selects
/// SamplingPlan::defaults(), `--sample=W:D:F[:R]` an explicit plan. Returns a
/// disabled plan when the flag is absent; exits with a usage error on a
/// malformed plan. Scan-style like jobsFromArgs so the google-benchmark
/// binaries can mix it with --benchmark_* flags.
sim::SamplingPlan sampleFromArgs(int argc, char **argv);

/// The shared command line of the JSON-emitting bench binaries:
///   [--jobs N] [--no-skip] [--out FILE] [--sample[=W:D:F[:R]]]
/// Parsed strictly with support::FlagParser (unknown flags are an error);
/// exits non-zero on malformed input.
struct BenchArgs {
  unsigned Jobs = 0; ///< 0 = hardware concurrency.
  bool NoSkip = false;
  const char *OutPath = nullptr;
  sim::SamplingPlan Sample; ///< Disabled unless --sample was given.
};
BenchArgs parseBenchArgs(int argc, char **argv);

/// Prints the Table 1 machine-model banner every bench emits.
void printMachineBanner();

} // namespace ssp::harness

#endif // SSP_HARNESS_EXPERIMENT_H
