//===- harness/Experiment.h - Shared experiment harness -------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment harness shared by every bench binary: it profiles a
/// workload, runs the post-pass tool, simulates the baseline and the
/// SSP-enhanced binary on both research Itanium models (and the idealized
/// memory modes of Figure 2), validates checksums, and caches results so
/// one bench binary never simulates the same configuration twice.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_HARNESS_EXPERIMENT_H
#define SSP_HARNESS_EXPERIMENT_H

#include "core/PostPassTool.h"
#include "sim/Simulator.h"
#include "workloads/Workload.h"

#include <map>
#include <optional>
#include <string>

namespace ssp::harness {

/// All simulation results for one workload under one tool configuration.
struct BenchResult {
  std::string Name;
  core::AdaptationReport Report;

  sim::SimStats BaseIO;  ///< Original binary, in-order.
  sim::SimStats SspIO;   ///< Enhanced binary, in-order.
  sim::SimStats BaseOOO; ///< Original binary, out-of-order.
  sim::SimStats SspOOO;  ///< Enhanced binary, out-of-order.

  bool ChecksumsOk = true; ///< Every run stored the expected checksum.

  double speedupIO() const {
    return static_cast<double>(BaseIO.Cycles) /
           static_cast<double>(SspIO.Cycles);
  }
  double speedupOOOOverIO() const {
    return static_cast<double>(BaseIO.Cycles) /
           static_cast<double>(BaseOOO.Cycles);
  }
  double speedupSspOOOOverIO() const {
    return static_cast<double>(BaseIO.Cycles) /
           static_cast<double>(SspOOO.Cycles);
  }
};

/// Runs workloads through the full pipeline with caching.
class SuiteRunner {
public:
  explicit SuiteRunner(core::ToolOptions Opts = core::ToolOptions())
      : Opts(std::move(Opts)) {}

  /// Full result for \p W (profile -> adapt -> 4 simulations). Cached.
  const BenchResult &run(const workloads::Workload &W);

  /// Simulates \p W's original binary under \p Cfg (Figure 2's idealized
  /// modes are reached through Cfg.PerfectMemory / Cfg.PerfectLoads).
  sim::SimStats simulateOriginal(const workloads::Workload &W,
                                 sim::MachineConfig Cfg);

  /// The profile of \p W's original binary. Cached.
  const profile::ProfileData &profileOf(const workloads::Workload &W);

  /// StaticIds of the delinquent loads the tool would select for \p W.
  std::unordered_set<ir::StaticId>
  delinquentIdsOf(const workloads::Workload &W);

  const core::ToolOptions &options() const { return Opts; }

  /// Simulates \p P on \p W's data image; checks the checksum when
  /// \p ChecksumOk is provided.
  static sim::SimStats simulate(const ir::Program &P,
                                const workloads::Workload &W,
                                sim::MachineConfig Cfg,
                                bool *ChecksumOk = nullptr);

private:
  core::ToolOptions Opts;
  std::map<std::string, BenchResult> Cache;
  std::map<std::string, profile::ProfileData> Profiles;
  std::map<std::string, ir::Program> Originals;
};

/// Prints the Table 1 machine-model banner every bench emits.
void printMachineBanner();

} // namespace ssp::harness

#endif // SSP_HARNESS_EXPERIMENT_H
