//===- harness/Experiment.cpp - Shared experiment harness -----------------===//

#include "harness/Experiment.h"

#include "support/Assert.h"

#include <cstdio>

using namespace ssp;
using namespace ssp::harness;

sim::SimStats SuiteRunner::simulate(const ir::Program &P,
                                    const workloads::Workload &W,
                                    sim::MachineConfig Cfg,
                                    bool *ChecksumOk) {
  ir::LinkedProgram LP = ir::LinkedProgram::link(P);
  mem::SimMemory Mem;
  uint64_t Expected = W.BuildMemory(Mem);
  sim::Simulator Sim(Cfg, LP, Mem);
  sim::SimStats Stats = Sim.run();
  if (ChecksumOk)
    *ChecksumOk = Mem.read(workloads::ResultAddr) == Expected;
  return Stats;
}

const profile::ProfileData &
SuiteRunner::profileOf(const workloads::Workload &W) {
  auto It = Profiles.find(W.Name);
  if (It != Profiles.end())
    return It->second;
  auto OrigIt = Originals.find(W.Name);
  if (OrigIt == Originals.end())
    OrigIt = Originals.emplace(W.Name, W.Build()).first;
  profile::ProfileData PD =
      core::profileProgram(OrigIt->second, W.BuildMemory);
  return Profiles.emplace(W.Name, std::move(PD)).first->second;
}

std::unordered_set<ir::StaticId>
SuiteRunner::delinquentIdsOf(const workloads::Workload &W) {
  const profile::ProfileData &PD = profileOf(W);
  const ir::Program &P = Originals.at(W.Name);
  std::unordered_set<ir::StaticId> Ids;
  for (const profile::DelinquentLoad &D : profile::selectDelinquentLoads(
           P, PD, Opts.DelinquentCoverage, Opts.MaxDelinquentLoads))
    Ids.insert(D.Sid);
  return Ids;
}

sim::SimStats SuiteRunner::simulateOriginal(const workloads::Workload &W,
                                            sim::MachineConfig Cfg) {
  auto OrigIt = Originals.find(W.Name);
  if (OrigIt == Originals.end())
    OrigIt = Originals.emplace(W.Name, W.Build()).first;
  return simulate(OrigIt->second, W, Cfg);
}

const BenchResult &SuiteRunner::run(const workloads::Workload &W) {
  auto It = Cache.find(W.Name);
  if (It != Cache.end())
    return It->second;

  BenchResult R;
  R.Name = W.Name;

  auto OrigIt = Originals.find(W.Name);
  if (OrigIt == Originals.end())
    OrigIt = Originals.emplace(W.Name, W.Build()).first;
  const ir::Program &Orig = OrigIt->second;

  const profile::ProfileData &PD = profileOf(W);
  core::PostPassTool Tool(Orig, PD, Opts);
  ir::Program Enhanced = Tool.adapt(&R.Report);

  bool Ok = true;
  R.BaseIO = simulate(Orig, W, sim::MachineConfig::inOrder(), &Ok);
  R.ChecksumsOk &= Ok;
  R.SspIO = simulate(Enhanced, W, sim::MachineConfig::inOrder(), &Ok);
  R.ChecksumsOk &= Ok;
  R.BaseOOO = simulate(Orig, W, sim::MachineConfig::outOfOrder(), &Ok);
  R.ChecksumsOk &= Ok;
  R.SspOOO = simulate(Enhanced, W, sim::MachineConfig::outOfOrder(), &Ok);
  R.ChecksumsOk &= Ok;
  if (!R.ChecksumsOk)
    fatalError("workload checksum mismatch: adaptation corrupted results");

  return Cache.emplace(W.Name, std::move(R)).first->second;
}

void ssp::harness::printMachineBanner() {
  std::printf(
      "machine model (paper Table 1): SMT x4 contexts | in-order 12-stage / "
      "OOO 16-stage (ROB 255, RS 18)\n"
      "fetch/issue 2 bundles from 1 thread or 1+1 from 2 | 4 int, 2 FP, 3 "
      "br, 2 mem ports | GSHARE 2k + BTB 256\n"
      "L1 16KB/4w/2cyc, L2 256KB/4w/14cyc, L3 3MB/12w/30cyc, 64B lines, "
      "16-entry fill buffer, mem 230cyc, TLB miss 30cyc\n\n");
}
