//===- harness/Experiment.cpp - Shared experiment harness -----------------===//

#include "harness/Experiment.h"

#include "support/Args.h"
#include "support/Assert.h"
#include "support/FlagParser.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ssp;
using namespace ssp::harness;

sim::SimStats SuiteRunner::simulate(const ir::Program &P,
                                    const workloads::Workload &W,
                                    sim::MachineConfig Cfg,
                                    bool *ChecksumOk) {
  ir::LinkedProgram LP = ir::LinkedProgram::link(P);
  mem::SimMemory Mem;
  uint64_t Expected = W.BuildMemory(Mem);
  sim::Simulator Sim(Cfg, LP, Mem);
  sim::SimStats Stats = Sim.run();
  if (ChecksumOk)
    *ChecksumOk = Mem.read(workloads::ResultAddr) == Expected;
  return Stats;
}

const ir::Program &SuiteRunner::originalOf(const workloads::Workload &W) {
  CacheEntry<ir::Program> &E = entryFor(Originals, W.Name);
  std::call_once(E.Once, [&] { E.Value = W.Build(); });
  return E.Value;
}

const profile::ProfileData &
SuiteRunner::profileOf(const workloads::Workload &W) {
  CacheEntry<profile::ProfileData> &E = entryFor(Profiles, W.Name);
  std::call_once(E.Once, [&] {
    E.Value = core::profileProgram(originalOf(W), W.BuildMemory);
  });
  return E.Value;
}

std::unordered_set<ir::StaticId>
SuiteRunner::delinquentIdsOf(const workloads::Workload &W) {
  const profile::ProfileData &PD = profileOf(W);
  const ir::Program &P = originalOf(W);
  std::unordered_set<ir::StaticId> Ids;
  for (const profile::DelinquentLoad &D : profile::selectDelinquentLoads(
           P, PD, Opts.DelinquentCoverage, Opts.MaxDelinquentLoads))
    Ids.insert(D.Sid);
  return Ids;
}

sim::SimStats SuiteRunner::simulateOriginal(const workloads::Workload &W,
                                            sim::MachineConfig Cfg) {
  return simulate(originalOf(W), W, std::move(Cfg));
}

void SuiteRunner::computeResult(const workloads::Workload &W, BenchResult &R,
                                support::ThreadPool *Pool) {
  R.Name = W.Name;
  const ir::Program &Orig = originalOf(W);

  bool OkBaseIO = true, OkSspIO = true, OkBaseOOO = true, OkSspOOO = true;
  if (Pool && Pool->numThreads() > 1) {
    // The baseline simulations need no profile: start them immediately so
    // they overlap the profiling run and the adaptation.
    std::future<void> FBaseIO = Pool->submit([&] {
      R.BaseIO = simulate(Orig, W, ioCfg(), &OkBaseIO);
    });
    std::future<void> FBaseOOO = Pool->submit([&] {
      R.BaseOOO =
          simulate(Orig, W, oooCfg(), &OkBaseOOO);
    });
    const profile::ProfileData &PD = profileOf(W);
    core::PostPassTool Tool(Orig, PD, Opts);
    ir::Program Enhanced = Tool.adapt(&R.Report);
    std::future<void> FSspIO = Pool->submit([&] {
      R.SspIO =
          simulate(Enhanced, W, ioCfg(), &OkSspIO);
    });
    // Run the fourth simulation here instead of idling on the futures.
    R.SspOOO =
        simulate(Enhanced, W, oooCfg(), &OkSspOOO);
    FBaseIO.get();
    FBaseOOO.get();
    FSspIO.get();
  } else {
    const profile::ProfileData &PD = profileOf(W);
    core::PostPassTool Tool(Orig, PD, Opts);
    ir::Program Enhanced = Tool.adapt(&R.Report);
    R.BaseIO = simulate(Orig, W, ioCfg(), &OkBaseIO);
    R.SspIO =
        simulate(Enhanced, W, ioCfg(), &OkSspIO);
    R.BaseOOO =
        simulate(Orig, W, oooCfg(), &OkBaseOOO);
    R.SspOOO =
        simulate(Enhanced, W, oooCfg(), &OkSspOOO);
  }
  R.ChecksumsOk = OkBaseIO && OkSspIO && OkBaseOOO && OkSspOOO;
  if (!R.ChecksumsOk)
    fatalError("workload checksum mismatch: adaptation corrupted results");
}

const BenchResult &SuiteRunner::run(const workloads::Workload &W,
                                    support::ThreadPool *Pool) {
  CacheEntry<BenchResult> &E = entryFor(Cache, W.Name);
  std::call_once(E.Once, [&] { computeResult(W, E.Value, Pool); });
  return E.Value;
}

void ParallelSuiteRunner::runAll(const std::vector<workloads::Workload> &Ws) {
  // Phase 1: every profile (one full functional + one timing run each) in
  // parallel. Phase 2: one pipeline job per workload; each runs its four
  // simulations serially inside the job, so pool workers never block on
  // nested submissions. call_once makes both phases idempotent.
  Pool.parallelFor(Ws.size(), [&](size_t I) { Inner.profileOf(Ws[I]); });
  Pool.parallelFor(Ws.size(), [&](size_t I) { Inner.run(Ws[I], nullptr); });
}

unsigned ssp::harness::jobsFromArgs(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--jobs") == 0) {
      uint64_t N = 0;
      if (!support::parseUnsignedFlag(argc, argv, I, 0, 512, N))
        std::exit(1);
      return static_cast<unsigned>(N);
    }
  }
  return 0; // Default: hardware_concurrency.
}

bool ssp::harness::noSkipFromArgs(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--no-skip") == 0)
      return true;
  return false;
}

sim::SamplingPlan ssp::harness::sampleFromArgs(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--sample") == 0)
      return sim::SamplingPlan::defaults();
    if (std::strncmp(argv[I], "--sample=", 9) == 0) {
      sim::SamplingPlan Plan;
      if (!sim::parseSamplingPlan(argv[I] + 9, Plan)) {
        std::fprintf(stderr, "error: invalid --sample plan '%s' "
                             "(expected W:D:F[:R] instruction counts)\n",
                     argv[I] + 9);
        std::exit(1);
      }
      return Plan;
    }
  }
  return sim::SamplingPlan(); // Disabled: exact simulation.
}

BenchArgs ssp::harness::parseBenchArgs(int argc, char **argv) {
  BenchArgs A;
  support::FlagParser P(argc, argv);
  P.flag("--jobs", A.Jobs, 0, 512);
  P.flag("--no-skip", A.NoSkip);
  P.flag("--out", A.OutPath);
  P.flagEq("--sample", [&A](const char *V) {
    return V ? sim::parseSamplingPlan(V, A.Sample)
             : (A.Sample = sim::SamplingPlan::defaults(), true);
  });
  if (!P.parse()) {
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--no-skip] [--out FILE] "
                 "[--sample[=W:D:F[:R]]]\n",
                 argv[0]);
    std::exit(1);
  }
  return A;
}

void ssp::harness::printMachineBanner() {
  std::printf(
      "machine model (paper Table 1): SMT x4 contexts | in-order 12-stage / "
      "OOO 16-stage (ROB 255, RS 18)\n"
      "fetch/issue 2 bundles from 1 thread or 1+1 from 2 | 4 int, 2 FP, 3 "
      "br, 2 mem ports | GSHARE 2k + BTB 256\n"
      "L1 16KB/4w/2cyc, L2 256KB/4w/14cyc, L3 3MB/12w/30cyc, 64B lines, "
      "16-entry fill buffer, mem 230cyc, TLB miss 30cyc\n\n");
}
