//===- profile/ProfileIO.cpp - Text serialization for ProfileData ---------===//

#include "profile/ProfileIO.h"

#include "profile/Profile.h"

#include <algorithm>
#include <cctype>
#include <sstream>

using namespace ssp;
using namespace ssp::profile;

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

std::string profile::writeProfileText(const ProfileData &PD) {
  std::string S = "sspprof v1\n";
  S += "baseline " + std::to_string(PD.BaselineCycles) + "\n";
  S += "funcs " + std::to_string(PD.BlockCounts.size()) + "\n";
  for (size_t F = 0; F < PD.BlockCounts.size(); ++F) {
    const std::vector<uint64_t> &Row = PD.BlockCounts[F];
    S += "blockcounts " + std::to_string(F) + " " +
         std::to_string(Row.size()) + ":";
    for (uint64_t C : Row)
      S += " " + std::to_string(C);
    S += "\n";
  }
  for (size_t F = 0; F < PD.EdgeCounts.size(); ++F)
    for (const auto &[Edge, Count] : PD.EdgeCounts[F])
      S += "edge " + std::to_string(F) + " " + std::to_string(Edge.first) +
           " " + std::to_string(Edge.second) + " " + std::to_string(Count) +
           "\n";
  for (const analysis::DirectCallCount &C : PD.CallSiteCounts)
    S += "call " + std::to_string(C.Site.Func) + " " +
         std::to_string(C.Site.Block) + " " + std::to_string(C.Site.Inst) +
         " " + std::to_string(C.Count) + "\n";
  for (const analysis::IndirectCallTarget &T : PD.IndirectTargets)
    S += "icall " + std::to_string(T.Site.Func) + " " +
         std::to_string(T.Site.Block) + " " + std::to_string(T.Site.Inst) +
         " " + std::to_string(T.Callee) + " " + std::to_string(T.Count) +
         "\n";
  // File order of `load` records is the cache profile's insertion order —
  // meaningful, and preserved by the parser.
  for (const auto &[Sid, St] : PD.Loads) {
    S += "load " + std::to_string(ir::staticIdFunc(Sid)) + " " +
         std::to_string(ir::staticIdInst(Sid)) + " " +
         std::to_string(St.Accesses);
    for (uint64_t H : St.Hits)
      S += " " + std::to_string(H);
    for (uint64_t P : St.Partials)
      S += " " + std::to_string(P);
    S += " " + std::to_string(St.MissCycles) + "\n";
  }
  // Dependence evidence (PR 8): the marker record distinguishes "measured,
  // possibly empty" from legacy profiles with no evidence at all.
  if (PD.HasDepEvidence) {
    S += "depevidence 1\n";
    for (size_t F = 0; F < PD.InstCounts.size(); ++F)
      for (size_t Id = 0; Id < PD.InstCounts[F].size(); ++Id)
        if (uint64_t C = PD.InstCounts[F][Id])
          S += "instcount " + std::to_string(F) + " " + std::to_string(Id) +
               " " + std::to_string(C) + "\n";
    for (const analysis::DepEdgeCount &D : PD.MemDepCounts)
      S += "memdep " + std::to_string(ir::staticIdFunc(D.From)) + " " +
           std::to_string(ir::staticIdInst(D.From)) + " " +
           std::to_string(ir::staticIdInst(D.To)) + " " +
           std::to_string(D.Count) + "\n";
    for (const analysis::DepEdgeCount &D : PD.RegDepCounts)
      S += "regdep " + std::to_string(ir::staticIdFunc(D.From)) + " " +
           std::to_string(ir::staticIdInst(D.From)) + " " +
           std::to_string(ir::staticIdInst(D.To)) + " " +
           std::to_string(D.Count) + "\n";
  }
  // Attribution evidence (PR 9): per-trigger prefetch-lifecycle rollups
  // from simulating an adapted binary. The marker distinguishes
  // "simulated, possibly zero triggers" from legacy profiles. The writer
  // sorts a copy by trigger sid, so any in-memory order renders as the
  // one canonical form the parser enforces.
  if (PD.HasAttrib) {
    S += "attrib 1\n";
    std::vector<sim::PrefetchAttribution> Sorted = PD.Attrib;
    std::sort(Sorted.begin(), Sorted.end(),
              [](const sim::PrefetchAttribution &A,
                 const sim::PrefetchAttribution &B) {
                return A.Trigger < B.Trigger;
              });
    for (const sim::PrefetchAttribution &A : Sorted) {
      S += "fates " + std::to_string(ir::staticIdFunc(A.Trigger)) + " " +
           std::to_string(ir::staticIdInst(A.Trigger)) + " " +
           std::to_string(ir::staticIdFunc(A.Slice)) + " " +
           std::to_string(ir::staticIdInst(A.Slice)) + " " +
           std::to_string(A.Spawns) + " " + std::to_string(A.MaxChainDepth);
      for (uint64_t F : A.Fates)
        S += " " + std::to_string(F);
      S += " " + std::to_string(A.LateCycles) + "\n";
    }
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// A cursor over one `.sspprof` line: lower-case keywords and strict
/// unsigned decimal numbers (no sign, no hex, overflow rejected).
class Cursor {
public:
  explicit Cursor(const std::string &Line) : Text(Line) {}

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size() || Text[Pos] == '#';
  }

  std::string word() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           std::isalpha(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  bool eat(char C) {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool number(uint64_t &Out) {
    skipSpace();
    if (Pos >= Text.size() ||
        !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return false;
    Out = 0;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      uint64_t Digit = static_cast<uint64_t>(Text[Pos] - '0');
      if (Out > (~0ULL - Digit) / 10)
        return false; // overflow
      Out = Out * 10 + Digit;
      ++Pos;
    }
    return true;
  }

private:
  const std::string &Text;
  size_t Pos = 0;
};

class ProfParser {
public:
  ProfParser(const std::string &Text, ProfileData &PD) : PD(PD) {
    std::istringstream In(Text);
    std::string Line;
    while (std::getline(In, Line))
      Lines.push_back(Line);
  }

  bool run(std::string &Error) {
    bool SawHeader = false;
    for (LineNo = 0; LineNo < Lines.size(); ++LineNo) {
      Cursor C(Lines[LineNo]);
      if (C.atEnd())
        continue;
      if (!SawHeader) {
        if (C.word() != "sspprof" || C.word() != "v" || !expect(C, Version) ||
            Version != 1 || !end(C))
          return error(Error, "expected 'sspprof v1' header");
        SawHeader = true;
        continue;
      }
      std::string Kw = C.word();
      bool Ok;
      if (Kw == "baseline")
        Ok = parseBaseline(C);
      else if (Kw == "funcs")
        Ok = parseFuncs(C);
      else if (Kw == "blockcounts")
        Ok = parseBlockCounts(C);
      else if (Kw == "edge")
        Ok = parseEdge(C);
      else if (Kw == "call")
        Ok = parseCall(C);
      else if (Kw == "icall")
        Ok = parseICall(C);
      else if (Kw == "load")
        Ok = parseLoad(C);
      else if (Kw == "depevidence")
        Ok = parseDepEvidence(C);
      else if (Kw == "instcount")
        Ok = parseInstCount(C);
      else if (Kw == "memdep")
        Ok = parseDep(C, "memdep", PD.MemDepCounts);
      else if (Kw == "regdep")
        Ok = parseDep(C, "regdep", PD.RegDepCounts);
      else if (Kw == "attrib")
        Ok = parseAttrib(C);
      else if (Kw == "fates")
        Ok = parseFates(C);
      else
        return error(Error, "unknown record '" + Kw + "'");
      if (!Ok)
        return error(Error, Msg.empty() ? "malformed '" + Kw + "' record"
                                        : Msg);
    }
    if (!SawHeader)
      return error(Error, "empty profile: missing 'sspprof v1' header");
    return true;
  }

private:
  bool parseBaseline(Cursor &C) {
    if (SawBaseline)
      return failed("duplicate 'baseline' record");
    if (!C.number(PD.BaselineCycles) || !end(C))
      return false;
    SawBaseline = true;
    return true;
  }

  bool parseFuncs(Cursor &C) {
    if (SawFuncs)
      return failed("duplicate 'funcs' record");
    uint64_t N;
    if (!expect(C, N) || !end(C) || !fits32(N))
      return false;
    PD.BlockCounts.resize(N);
    PD.EdgeCounts.resize(N);
    SawFuncs = true;
    return true;
  }

  bool parseBlockCounts(Cursor &C) {
    uint64_t F, N;
    if (!func(C, F) || !expect(C, N) || !C.eat(':'))
      return false;
    std::vector<uint64_t> &Row = PD.BlockCounts[F];
    if (!Row.empty())
      return failed("duplicate 'blockcounts' for fn" + std::to_string(F));
    Row.resize(N);
    for (uint64_t I = 0; I < N; ++I)
      if (!C.number(Row[I]))
        return failed("expected " + std::to_string(N) + " counts");
    return end(C);
  }

  bool parseEdge(Cursor &C) {
    uint64_t F, From, To, Count;
    if (!func(C, F) || !expect(C, From) || !expect(C, To) ||
        !expect(C, Count) || !end(C) || !fits32(From) || !fits32(To))
      return false;
    if (!PD.EdgeCounts[F]
             .emplace(std::make_pair(uint32_t(From), uint32_t(To)), Count)
             .second)
      return failed("duplicate 'edge' record");
    return true;
  }

  bool parseCall(Cursor &C) {
    analysis::DirectCallCount R;
    uint64_t F, B, I, Count;
    if (!func(C, F) || !expect(C, B) || !expect(C, I) || !expect(C, Count) ||
        !end(C) || !fits32(B) || !fits32(I))
      return false;
    R.Site = {uint32_t(F), uint32_t(B), uint32_t(I)};
    R.Count = Count;
    // CallGraph::build requires the vector sorted by Site; demanding the
    // canonical order here keeps the precondition a parse-time error
    // instead of a downstream assertion.
    if (!PD.CallSiteCounts.empty() && !(PD.CallSiteCounts.back().Site < R.Site))
      return failed("'call' records out of order");
    PD.CallSiteCounts.push_back(R);
    return true;
  }

  bool parseICall(Cursor &C) {
    analysis::IndirectCallTarget R;
    uint64_t F, B, I, Callee, Count;
    if (!func(C, F) || !expect(C, B) || !expect(C, I) || !expect(C, Callee) ||
        !expect(C, Count) || !end(C) || !fits32(B) || !fits32(I) ||
        !fits32(Callee))
      return false;
    R.Site = {uint32_t(F), uint32_t(B), uint32_t(I)};
    R.Callee = uint32_t(Callee);
    R.Count = Count;
    if (!PD.IndirectTargets.empty()) {
      const analysis::IndirectCallTarget &Prev = PD.IndirectTargets.back();
      if (!(Prev.Site < R.Site ||
            (Prev.Site == R.Site && Prev.Callee < R.Callee)))
        return failed("'icall' records out of order");
    }
    PD.IndirectTargets.push_back(R);
    return true;
  }

  bool parseLoad(Cursor &C) {
    uint64_t F, Id;
    cache::PcCacheStats St;
    if (!func(C, F) || !expect(C, Id) || !fits32(Id) || !C.number(St.Accesses))
      return false;
    for (uint64_t &H : St.Hits)
      if (!C.number(H))
        return false;
    for (uint64_t &P : St.Partials)
      if (!C.number(P))
        return false;
    if (!C.number(St.MissCycles) || !end(C))
      return false;
    ir::StaticId Sid = ir::makeStaticId(uint32_t(F), uint32_t(Id));
    if (PD.Loads.count(Sid))
      return failed("duplicate 'load' record");
    PD.Loads[Sid] = St;
    return true;
  }

  bool parseDepEvidence(Cursor &C) {
    if (PD.HasDepEvidence)
      return failed("duplicate 'depevidence' record");
    uint64_t V;
    if (!expect(C, V) || !end(C))
      return false;
    if (V != 1)
      return failed("unsupported 'depevidence' version");
    PD.HasDepEvidence = true;
    return true;
  }

  /// Per-instruction execution counts: the classifier's trip denominator.
  /// Zero counts are never written, so they are rejected on read too; the
  /// strict (FUNC, INSTID) order makes parse(write(PD)) canonical.
  bool parseInstCount(Cursor &C) {
    if (!PD.HasDepEvidence)
      return failed("'instcount' before 'depevidence'");
    uint64_t F, Id, Count;
    if (!func(C, F) || !expect(C, Id) || !expect(C, Count) || !end(C) ||
        !fits32(Id))
      return false;
    if (Count == 0)
      return failed("zero 'instcount' record");
    PD.InstCounts.resize(PD.BlockCounts.size());
    if (std::make_pair(F, Id) <= LastInstCount && SawInstCount)
      return failed("'instcount' records out of order");
    SawInstCount = true;
    LastInstCount = {F, Id};
    std::vector<uint64_t> &Row = PD.InstCounts[F];
    if (Row.size() <= Id)
      Row.resize(Id + 1);
    Row[Id] = Count;
    return true;
  }

  /// Shared body of 'memdep' and 'regdep': both endpoints live in one
  /// function and records arrive strictly sorted by (From, To) — the
  /// canonical order the writer emits.
  bool parseDep(Cursor &C, const char *Kw,
                std::vector<analysis::DepEdgeCount> &Out) {
    if (!PD.HasDepEvidence)
      return failed("'" + std::string(Kw) + "' before 'depevidence'");
    uint64_t F, FromId, ToId, Count;
    if (!func(C, F) || !expect(C, FromId) || !expect(C, ToId) ||
        !expect(C, Count) || !end(C) || !fits32(FromId) || !fits32(ToId))
      return false;
    analysis::DepEdgeCount R;
    R.From = ir::makeStaticId(uint32_t(F), uint32_t(FromId));
    R.To = ir::makeStaticId(uint32_t(F), uint32_t(ToId));
    R.Count = Count;
    if (!Out.empty() && !(Out.back() < R))
      return failed("'" + std::string(Kw) + "' records out of order");
    Out.push_back(R);
    return true;
  }

  bool parseAttrib(Cursor &C) {
    if (PD.HasAttrib)
      return failed("duplicate 'attrib' record");
    uint64_t V;
    if (!expect(C, V) || !end(C))
      return false;
    if (V != 1)
      return failed("unsupported 'attrib' version");
    PD.HasAttrib = true;
    return true;
  }

  /// One per-trigger fate rollup. Strictly sorted by trigger (FUNC, ID) —
  /// the canonical order the writer emits — which also rejects duplicate
  /// triggers. The slice sid may be (0, 0): the simulator's "origin slice
  /// unknown" sentinel.
  bool parseFates(Cursor &C) {
    if (!PD.HasAttrib)
      return failed("'fates' before 'attrib'");
    uint64_t TF, TId, SF, SId, Depth;
    sim::PrefetchAttribution A;
    if (!func(C, TF) || !expect(C, TId) || !fits32(TId) || !expect(C, SF) ||
        !fits32(SF) || !expect(C, SId) || !fits32(SId) ||
        !C.number(A.Spawns) || !expect(C, Depth) || !fits32(Depth))
      return false;
    if (SF >= PD.BlockCounts.size() && !(SF == 0 && SId == 0))
      return failed("function index " + std::to_string(SF) +
                    " out of range");
    for (unsigned F = 0; F < sim::NumPrefetchFates; ++F)
      if (!C.number(A.Fates[F]))
        return false;
    if (!C.number(A.LateCycles) || !end(C))
      return false;
    A.Trigger = ir::makeStaticId(uint32_t(TF), uint32_t(TId));
    A.Slice = ir::makeStaticId(uint32_t(SF), uint32_t(SId));
    A.MaxChainDepth = uint32_t(Depth);
    if (!PD.Attrib.empty() && !(PD.Attrib.back().Trigger < A.Trigger))
      return failed("'fates' records out of order");
    PD.Attrib.push_back(A);
    return true;
  }

  /// Parses a function index and bounds it against the 'funcs' record
  /// (which must therefore come first).
  bool func(Cursor &C, uint64_t &F) {
    if (!SawFuncs)
      return failed("record before 'funcs'");
    if (!expect(C, F))
      return false;
    if (F >= PD.BlockCounts.size())
      return failed("function index " + std::to_string(F) + " out of range");
    return true;
  }

  bool expect(Cursor &C, uint64_t &Out) { return C.number(Out); }

  bool end(Cursor &C) {
    return C.atEnd() ? true : failed("trailing junk after record");
  }

  bool fits32(uint64_t V) {
    return V <= ~0u ? true : failed("value out of 32-bit range");
  }

  bool failed(std::string M) {
    if (Msg.empty())
      Msg = std::move(M);
    return false;
  }

  bool error(std::string &Error, const std::string &M) {
    Error = "line " + std::to_string(LineNo + 1) + ": " + M;
    return false;
  }

  ProfileData &PD;
  std::vector<std::string> Lines;
  size_t LineNo = 0;
  uint64_t Version = 0;
  std::string Msg;
  std::pair<uint64_t, uint64_t> LastInstCount = {0, 0};
  bool SawHeader = false, SawBaseline = false, SawFuncs = false;
  bool SawInstCount = false;
};

} // namespace

bool profile::parseProfileText(const std::string &Text, ProfileData &PD,
                               std::string &Error) {
  return ProfParser(Text, PD).run(Error);
}
