//===- profile/Profile.cpp - Profiling feedback ----------------------------===//

#include "profile/Profile.h"

#include "sim/Executor.h"
#include "sim/ThreadContext.h"
#include "support/Assert.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

using namespace ssp;
using namespace ssp::profile;
using namespace ssp::analysis;
using namespace ssp::ir;

double ProfileData::tripCountOf(uint32_t Func, const Loop &L,
                                double Fallback) const {
  uint64_t HeaderCount = blockCount(Func, L.Header);
  if (HeaderCount == 0)
    return Fallback;
  // Entries = executions of edges into the header from outside the loop.
  uint64_t Entries = 0;
  if (Func < EdgeCounts.size()) {
    for (const auto &[Edge, Count] : EdgeCounts[Func]) {
      if (Edge.second != L.Header)
        continue;
      if (!L.contains(Edge.first))
        Entries += Count;
    }
  }
  if (Entries == 0)
    return static_cast<double>(HeaderCount);
  return static_cast<double>(HeaderCount) / static_cast<double>(Entries);
}

ProfileData
ssp::profile::collectControlFlowProfile(const LinkedProgram &LP,
                                        mem::SimMemory &Mem,
                                        uint64_t MaxInsts) {
  const Program &P = LP.program();
  ProfileData PD;
  PD.BlockCounts.resize(P.numFuncs());
  PD.EdgeCounts.resize(P.numFuncs());
  PD.InstCounts.resize(P.numFuncs());
  for (uint32_t FI = 0; FI < P.numFuncs(); ++FI) {
    const Function &F = P.func(FI);
    PD.BlockCounts[FI].assign(F.numBlocks(), 0);
    uint32_t MaxId = 0;
    for (uint32_t BI = 0; BI < F.numBlocks(); ++BI)
      for (const Instruction &I : F.block(BI).Insts)
        MaxId = std::max(MaxId, I.Id + 1);
    PD.InstCounts[FI].assign(MaxId, 0);
  }

  // Accumulate call-site counts in ordered maps while the run is live,
  // then flatten into the sorted vectors ProfileData carries.
  std::map<InstRef, uint64_t> DirectCounts;
  std::map<std::pair<InstRef, uint32_t>, uint64_t> IndirectCounts;

  // Dependence evidence for speculation-aware slicing: the last writer of
  // each register and of each memory address, and per static-edge
  // activation counts. The ordered maps' (From, To) iteration order is the
  // canonical record order the .sspprof writer emits.
  struct LastWrite {
    uint32_t Func = 0;
    uint32_t Block = 0;
    uint32_t Inst = 0;
    uint32_t Id = 0;
    bool Valid = false;
  };
  LastWrite LastReg[Reg::NumDenseIndices];
  std::unordered_map<uint64_t, std::pair<uint32_t, uint32_t>> LastStore;
  std::map<std::pair<StaticId, StaticId>, uint64_t> RegPairs;
  std::map<std::pair<StaticId, StaticId>, uint64_t> MemPairs;
  auto IsHardwired = [](Reg R) {
    return (R.isInt() || R.isPred()) && R.Num == 0;
  };

  sim::ThreadContext Ctx;
  Ctx.PC = LP.entry();

  // Count the entry block.
  {
    const LinkedInst &First = LP.at(Ctx.PC);
    PD.BlockCounts[First.Func][First.Block]++;
  }

  uint32_t PrevFunc = LP.at(Ctx.PC).Func;
  uint32_t PrevBlock = LP.at(Ctx.PC).Block;

  uint64_t Insts = 0;
  while (true) {
    if (++Insts > MaxInsts)
      fatalError("functional profiling exceeded MaxInsts");
    const LinkedInst &LI = LP.at(Ctx.PC);
    uint32_t InstIdx = Ctx.PC - LP.blockStart(LI.Func, LI.Block);
    InstRef Ref{LI.Func, LI.Block, InstIdx};
    PD.InstCounts[LI.Func][LI.I->Id]++;

    if (LI.I->Op == Opcode::Call)
      DirectCounts[Ref]++;

    // Register-use reads happen before the step so self-edges (r = f(r))
    // see the previous writer. Intra-block forward flows are skipped:
    // those are must-dependences regardless of evidence, and they are the
    // overwhelming majority of dynamic flows.
    LI.I->forEachUse([&](Reg R) {
      if (IsHardwired(R))
        return;
      const LastWrite &W = LastReg[R.denseIndex()];
      if (!W.Valid || W.Func != LI.Func)
        return;
      if (W.Block == LI.Block && W.Inst < InstIdx)
        return;
      RegPairs[{makeStaticId(W.Func, W.Id),
                makeStaticId(LI.Func, LI.I->Id)}]++;
    });

    sim::ExecOutcome Out;
    // The original binary has no chk.c; if one is present (profiling an
    // already-enhanced binary), treat it as a nop by reporting no free
    // context.
    executeStep(Ctx, LP, Mem, /*Speculative=*/false,
                /*FreeContextAvailable=*/false, Out);

    if (Out.Kind == sim::CtrlKind::Halt)
      break;

    // Def and memory updates happen after the step (the effective address
    // is an outcome). Only same-function store->load flows are recorded;
    // cross-function pairs are must-deps to the classifier anyway.
    if (Out.IsLoad) {
      auto It = LastStore.find(Out.MemAddr);
      if (It != LastStore.end() && It->second.first == LI.Func)
        MemPairs[{makeStaticId(LI.Func, It->second.second),
                  makeStaticId(LI.Func, LI.I->Id)}]++;
    } else if (Out.IsStore) {
      LastStore[Out.MemAddr] = {LI.Func, LI.I->Id};
    }
    if (LI.I->writesDst()) {
      Reg D = LI.I->def();
      if (!IsHardwired(D)) {
        LastWrite &W = LastReg[D.denseIndex()];
        W.Func = LI.Func;
        W.Block = LI.Block;
        W.Inst = InstIdx;
        W.Id = LI.I->Id;
        W.Valid = true;
      }
    }

    if (LI.I->Op == Opcode::CallInd)
      IndirectCounts[{Ref, LP.at(Ctx.PC).Func}]++;

    const LinkedInst &Next = LP.at(Ctx.PC);
    // A block is re-entered either when control moves to a different
    // block, or when a taken transfer lands back at the start of the same
    // block (a self-loop back edge).
    bool TookTransfer = Out.Kind == sim::CtrlKind::DirectJump ||
                        Out.Kind == sim::CtrlKind::IndirectJump ||
                        (Out.Kind == sim::CtrlKind::Branch && Out.Taken);
    bool SelfLoop = TookTransfer && Next.Func == PrevFunc &&
                    Next.Block == PrevBlock &&
                    Ctx.PC == LP.blockStart(Next.Func, Next.Block);
    if (Next.Func != PrevFunc || Next.Block != PrevBlock || SelfLoop) {
      PD.BlockCounts[Next.Func][Next.Block]++;
      // Record intra-function transitions as CFG edges (branch taken /
      // not taken / jmp); call/ret transitions are not CFG edges.
      if (Next.Func == PrevFunc && LI.I->Op != Opcode::Call &&
          LI.I->Op != Opcode::CallInd && LI.I->Op != Opcode::Ret)
        PD.EdgeCounts[Next.Func][{PrevBlock, Next.Block}]++;
      PrevFunc = Next.Func;
      PrevBlock = Next.Block;
    }
  }

  // Map iteration order is (Site) resp. (Site, Callee) ascending: exactly
  // the sorted order CallGraph::build requires.
  PD.CallSiteCounts.reserve(DirectCounts.size());
  for (const auto &[Site, Count] : DirectCounts)
    PD.CallSiteCounts.push_back({Site, Count});
  PD.IndirectTargets.reserve(IndirectCounts.size());
  for (const auto &[Key, Count] : IndirectCounts)
    PD.IndirectTargets.push_back({Key.first, Key.second, Count});
  PD.MemDepCounts.reserve(MemPairs.size());
  for (const auto &[Edge, Count] : MemPairs)
    PD.MemDepCounts.push_back({Edge.first, Edge.second, Count});
  PD.RegDepCounts.reserve(RegPairs.size());
  for (const auto &[Edge, Count] : RegPairs)
    PD.RegDepCounts.push_back({Edge.first, Edge.second, Count});
  PD.HasDepEvidence = true;
  return PD;
}

void ssp::profile::addCacheProfile(ProfileData &PD,
                                   const sim::SimStats &Stats) {
  PD.Loads = Stats.LoadProfile;
  PD.BaselineCycles = Stats.Cycles;
}

std::unordered_map<StaticId, InstRef>
ssp::profile::buildStaticIdIndex(const Program &P) {
  std::unordered_map<StaticId, InstRef> Index;
  for (uint32_t FI = 0; FI < P.numFuncs(); ++FI) {
    const Function &F = P.func(FI);
    for (uint32_t BI = 0; BI < F.numBlocks(); ++BI) {
      const BasicBlock &BB = F.block(BI);
      for (uint32_t II = 0; II < BB.Insts.size(); ++II)
        Index[makeStaticId(FI, BB.Insts[II].Id)] = {FI, BI, II};
    }
  }
  return Index;
}

std::vector<DelinquentLoad>
ssp::profile::selectDelinquentLoads(const Program &P, const ProfileData &PD,
                                    double Coverage, unsigned MaxLoads) {
  auto Index = buildStaticIdIndex(P);

  std::vector<DelinquentLoad> All;
  uint64_t TotalMissCycles = 0;
  for (const auto &[Sid, Stats] : PD.Loads) {
    if (Stats.MissCycles == 0)
      continue;
    auto It = Index.find(Sid);
    if (It == Index.end())
      continue; // Load vanished across rewriting; ignore.
    DelinquentLoad D;
    D.Ref = It->second;
    D.Sid = Sid;
    D.MissCycles = Stats.MissCycles;
    D.L1Misses = Stats.l1Misses();
    D.AvgLatency = Stats.Accesses == 0
                       ? 0.0
                       : static_cast<double>(Stats.MissCycles) /
                             static_cast<double>(Stats.Accesses);
    All.push_back(D);
    TotalMissCycles += Stats.MissCycles;
  }
  std::sort(All.begin(), All.end(),
            [](const DelinquentLoad &A, const DelinquentLoad &B) {
              if (A.MissCycles != B.MissCycles)
                return A.MissCycles > B.MissCycles;
              return A.Ref < B.Ref;
            });

  std::vector<DelinquentLoad> Selected;
  uint64_t Covered = 0;
  for (const DelinquentLoad &D : All) {
    if (Selected.size() >= MaxLoads)
      break;
    if (TotalMissCycles > 0 &&
        static_cast<double>(Covered) >=
            Coverage * static_cast<double>(TotalMissCycles))
      break;
    Selected.push_back(D);
    Covered += D.MissCycles;
  }
  return Selected;
}
