//===- profile/ProfileIO.h - Text serialization for ProfileData -----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `.sspprof` text format: a printer + strict parser for ProfileData,
/// symmetric with ir::Parser the way Program::str() is. Together the two
/// formats let a complete adaptation request — program text plus profile
/// text — arrive as bytes over a pipe (the `ssp-adaptd` protocol) instead
/// of being assembled programmatically.
///
/// Grammar (one record per line; '#' starts a comment; all counts are
/// unsigned decimal):
///
///   profile     := "sspprof v1" record*
///   record      := "baseline" CYCLES
///                | "funcs" NFUNCS
///                | "blockcounts" FUNC N ":" COUNT{N}
///                | "edge" FUNC FROM TO COUNT
///                | "call" FUNC BLOCK INST COUNT
///                | "icall" FUNC BLOCK INST CALLEE COUNT
///                | "load" FUNC INSTID ACCESSES H0 H1 H2 H3 P0 P1 P2 P3
///                         MISSCYCLES
///                | "depevidence" 1
///                | "instcount" FUNC INSTID COUNT
///                | "memdep" FUNC FROMID TOID COUNT
///                | "regdep" FUNC FROMID TOID COUNT
///                | "attrib" 1
///                | "fates" TFUNC TID SFUNC SID SPAWNS MAXDEPTH
///                          TIMELY LATE EVICTED REDUNDANT WILD LATECYCLES
///
/// `load` is keyed by (function index, static instruction id) — the same
/// ids the program text pins with `@N` annotations (ir/Parser.h) — and
/// file order is meaningful: it is the cache profile's insertion order,
/// which downstream consumers iterate deterministically.
///
/// `instcount`/`memdep`/`regdep` carry the dynamic dependence evidence
/// that backs speculation-aware slicing (analysis/SpecDeps.h): per-static-
/// instruction execution counts (the classifier's trip denominator; zero
/// counts are omitted) and per (producer id, consumer id) activation
/// counts for store->load flows resp. candidate loop-carried register
/// flows, both endpoints in FUNC. All three require a preceding
/// `depevidence 1` marker (absent in legacy profiles, which therefore
/// disable may-dep pruning) and must arrive strictly sorted — `instcount`
/// by (FUNC, INSTID), the dep kinds by (FROMID, TOID) within each kind.
///
/// `attrib`/`fates` carry prefetch-lifecycle attribution from simulating
/// an *adapted* binary (`ssp-sim --emit-attrib`): per chk.c trigger, the
/// origin slice's static id (or 0 0 when unknown), spawn count, deepest
/// chain, the five fate counters (sim/SimStats.h order), and the
/// timeliness slack shortfall in cycles. This is the evidence the
/// closed-loop feedback policy (core/Feedback.h) consumes. `fates`
/// requires a preceding `attrib 1` marker (absent in legacy profiles) and
/// must arrive strictly sorted by trigger (TFUNC, TID).
///
/// writeProfileText emits records in a canonical order (header, baseline,
/// funcs, blockcounts by function, edges, calls, icalls, loads,
/// depevidence, instcounts, memdeps, regdeps, attrib, fates sorted by
/// trigger), so write(parse(write(PD))) is byte-identical to write(PD).
///
//===----------------------------------------------------------------------===//

#ifndef SSP_PROFILE_PROFILEIO_H
#define SSP_PROFILE_PROFILEIO_H

#include <string>

namespace ssp::profile {

struct ProfileData;

/// Renders \p PD in the `.sspprof` text format (canonical record order).
std::string writeProfileText(const ProfileData &PD);

/// Parses `.sspprof` text into \p PD (which must be default-constructed).
/// Strict: unknown records, missing fields, trailing junk, out-of-range
/// numbers, and out-of-order sorted records all fail. On failure returns
/// false and sets \p Error to "line N: message".
bool parseProfileText(const std::string &Text, ProfileData &PD,
                      std::string &Error);

} // namespace ssp::profile

#endif // SSP_PROFILE_PROFILEIO_H
