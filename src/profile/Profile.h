//===- profile/Profile.h - Profiling feedback for the post-pass tool ------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiling feedback of the paper's two-pass flow (Figure 1): the
/// original binary is run once to collect (a) block and edge frequencies
/// and the dynamic call graph for indirect calls (a fast functional pass),
/// and (b) the cache profile of every static load plus the baseline cycle
/// count (a timing pass on the baseline in-order model). The tool consumes
/// this ProfileData to identify delinquent loads, filter unexecuted paths
/// during speculative slicing, estimate trip counts, and weigh trigger
/// placements.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_PROFILE_PROFILE_H
#define SSP_PROFILE_PROFILE_H

#include "analysis/CallGraph.h"
#include "analysis/InstRef.h"
#include "analysis/Loops.h"
#include "analysis/SpecDeps.h"
#include "cache/Cache.h"
#include "ir/Program.h"
#include "mem/SimMemory.h"
#include "sim/SimStats.h"

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace ssp::profile {

/// All profiling feedback for one program.
struct ProfileData {
  /// Dynamic execution count per (function, block).
  std::vector<std::vector<uint64_t>> BlockCounts;

  /// Dynamic count per intra-function CFG edge (from, to), per function.
  std::vector<std::map<std::pair<uint32_t, uint32_t>, uint64_t>> EdgeCounts;

  /// Dynamic call graph for indirect call sites: flat records sorted by
  /// (Site, Callee), as CallGraph::build consumes them.
  std::vector<analysis::IndirectCallTarget> IndirectTargets;

  /// Dynamic counts of direct call sites, sorted by Site.
  std::vector<analysis::DirectCallCount> CallSiteCounts;

  /// Per-static-load cache behaviour from the baseline timing run.
  cache::CacheProfile Loads;

  /// Baseline cycles of the timing run that produced `Loads`.
  uint64_t BaselineCycles = 0;

  /// Observed dynamic memory flow edges: (store sid, load sid) with the
  /// number of executions in which the load read that store's last write
  /// to its address. Sorted by (From, To); same-function pairs only.
  std::vector<analysis::DepEdgeCount> MemDepCounts;

  /// Observed dynamic register flow edges that are candidates for
  /// loop-carried speculation: (def sid, use sid) activation counts for
  /// flows that cross a block boundary or wrap around within one block.
  /// Intra-block forward flows are omitted (always must-dependences).
  /// Sorted by (From, To); same-function pairs only.
  std::vector<analysis::DepEdgeCount> RegDepCounts;

  /// Per (function, instruction Id) dynamic execution counts — the trip
  /// denominator of the dependence classifier. Block counts cannot serve
  /// that role: a block containing a call is counted again when the return
  /// resumes it, so an every-iteration edge would look half-activated.
  /// Collected together with the dependence evidence below.
  std::vector<std::vector<uint64_t>> InstCounts;

  /// True once a functional run collected the dependence evidence above.
  /// Profiles predating the evidence records parse with this false, which
  /// disables may-dep pruning (analysis::SpecDeps::enabled).
  bool HasDepEvidence = false;

  /// Per-trigger prefetch-lifecycle rollups from simulating an *adapted*
  /// binary (`ssp-sim --emit-attrib`, `fates` records) — the evidence the
  /// closed-loop feedback policy consumes (core/Feedback.h). Keyed by the
  /// chk.c trigger's StaticId in the adapted binary; sorted by Trigger.
  std::vector<sim::PrefetchAttribution> Attrib;

  /// True once an `attrib 1` marker declared attribution records (possibly
  /// zero of them). Absent in legacy profiles, which simply carry no
  /// feedback evidence.
  bool HasAttrib = false;

  /// The flat evidence view analysis::SpecDeps consumes.
  analysis::DepEvidence depEvidence() const {
    analysis::DepEvidence Ev;
    Ev.MemDeps = &MemDepCounts;
    Ev.RegDeps = &RegDepCounts;
    Ev.InstCounts = &InstCounts;
    Ev.Collected = HasDepEvidence;
    return Ev;
  }

  uint64_t blockCount(uint32_t Func, uint32_t Block) const {
    if (Func >= BlockCounts.size() || Block >= BlockCounts[Func].size())
      return 0;
    return BlockCounts[Func][Block];
  }

  uint64_t edgeCount(uint32_t Func, uint32_t From, uint32_t To) const {
    if (Func >= EdgeCounts.size())
      return 0;
    auto It = EdgeCounts[Func].find({From, To});
    return It == EdgeCounts[Func].end() ? 0 : It->second;
  }

  /// Average iterations per entry of \p L, from header and entry-edge
  /// counts; returns \p Fallback when the loop never ran.
  double tripCountOf(uint32_t Func, const analysis::Loop &L,
                     double Fallback = 1.0) const;
};

/// Runs the program functionally (no timing) on \p Mem and returns the
/// control-flow portion of the profile. \p MaxInsts bounds the run.
ProfileData collectControlFlowProfile(const ir::LinkedProgram &LP,
                                      mem::SimMemory &Mem,
                                      uint64_t MaxInsts = 1ULL << 32);

/// Folds the cache profile and cycle count of a baseline timing run into
/// \p PD.
void addCacheProfile(ProfileData &PD, const sim::SimStats &Stats);

/// One load selected for speculative precomputation.
struct DelinquentLoad {
  analysis::InstRef Ref;
  ir::StaticId Sid = 0;
  uint64_t MissCycles = 0;
  uint64_t L1Misses = 0;
  double AvgLatency = 0.0;
};

/// Ranks static loads by miss cycles and returns the smallest prefix that
/// covers at least \p Coverage of all miss cycles (paper: the top loads
/// contributing >= 90% of cache misses), capped at \p MaxLoads.
std::vector<DelinquentLoad>
selectDelinquentLoads(const ir::Program &P, const ProfileData &PD,
                      double Coverage = 0.90, unsigned MaxLoads = 10);

/// Maps every StaticId of \p P to its position (needed to translate cache
/// profiles, which are keyed by StaticId, back into instruction positions).
std::unordered_map<ir::StaticId, analysis::InstRef>
buildStaticIdIndex(const ir::Program &P);

} // namespace ssp::profile

#endif // SSP_PROFILE_PROFILE_H
