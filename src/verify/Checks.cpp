//===- verify/Checks.cpp - The SSP verification passes --------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
//
// Implements the semantic verification passes over adapted programs:
// translation validation, the stub contract, slice dataflow (live-in
// completeness, LIB staging, chain termination, prefetch coverage) and the
// lints. The slice checks run over a dedicated attachment-flow graph: the
// analysis::CFG deliberately excludes stub/slice blocks (they are reached
// via chk.c and spawn, not fallthrough), so the passes here rebuild the
// speculative thread's view of control flow, in which a spawn is a thread
// *entry point* with a zeroed register file rather than a dataflow edge.
//
//===----------------------------------------------------------------------===//

#include "verify/Checks.h"

#include "analysis/CFG.h"
#include "analysis/ReachingDefs.h"
#include "ir/Program.h"
#include "ir/Verifier.h"
#include "sim/ThreadContext.h"

#include <algorithm>
#include <bitset>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace ssp;
using namespace ssp::ir;
using namespace ssp::verify;

namespace {

/// Registers defined for sure at a program point of a speculative thread.
using RegSet = std::bitset<Reg::NumDenseIndices>;
/// LIB slots staged for sure by the current thread.
using SlotSet = std::bitset<sim::MaxLIBSlots>;

/// Dense index of p0 (hardwired true, like r0 is hardwired zero).
constexpr unsigned P0Dense = NumIntRegs + NumFPRegs;

std::string blockName(const Function &F, uint32_t B) {
  const std::string &N = F.block(B).Name;
  return N.empty() ? ("bb" + std::to_string(B)) : N;
}

//===----------------------------------------------------------------------===//
// Attachment flow graph
//===----------------------------------------------------------------------===//

/// The speculative thread's control flow within one function: intra-thread
/// edges between slice blocks (branch, jump, fallthrough) plus the set of
/// spawn sites. Spawn targets are thread entry points, not edges.
struct SliceGraph {
  const Function &F;
  std::vector<uint32_t> SliceBlocks;
  /// Intra-thread successors per slice block (only valid slice targets).
  std::map<uint32_t, std::vector<uint32_t>> Succ;
  /// Every spawn site in the function (stub, slice or body blocks).
  std::vector<analysis::InstRef> Spawns;
  /// Slice blocks some spawn targets.
  std::set<uint32_t> Entries;
  /// Slice blocks reachable intra-thread from some entry.
  std::set<uint32_t> Reachable;

  explicit SliceGraph(const Function &F) : F(F) {}
};

/// Builds the graph and reports structural slice-exit violations: a slice
/// block whose control flow leaves p-slice code would let a speculative
/// thread execute (and corrupt state through) main-thread code.
SliceGraph buildSliceGraph(const Function &F, DiagnosticEngine &DE) {
  SliceGraph G(F);
  for (const BasicBlock &BB : F.blocks()) {
    for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx)
      if (BB.Insts[Idx].Op == Opcode::Spawn) {
        G.Spawns.push_back({F.getIndex(), BB.Index, Idx});
        G.Entries.insert(BB.Insts[Idx].Target);
      }
    if (BB.Kind != BlockKind::Slice)
      continue;
    G.SliceBlocks.push_back(BB.Index);
    auto &Out = G.Succ[BB.Index];
    auto AddSucc = [&](uint32_t T, const char *How) {
      if (T >= F.numBlocks() ||
          F.block(T).Kind != BlockKind::Slice) {
        DE.errorInBlock(
            "slice.exit", F.getIndex(), BB.Index,
            "in " + F.getName() + ": p-slice block " +
                blockName(F, BB.Index) + " " + How +
                (T < F.numBlocks() ? " non-slice block " + blockName(F, T)
                                   : std::string(" past the function end")),
            "speculative threads must stay inside p-slice code; end the "
            "chain with kill_thread");
        return;
      }
      Out.push_back(T);
    };
    const Instruction &Last = BB.Insts.back();
    if (Last.Op == Opcode::Br) {
      AddSucc(Last.Target, "branches to");
      AddSucc(BB.Index + 1, "falls through to");
    } else if (Last.Op == Opcode::Jmp) {
      AddSucc(Last.Target, "jumps to");
    }
    // KillThread/Ret/Halt/Rfi: no intra-thread successor (and the latter
    // three are already structural.slice-opcode errors).
  }

  // Intra-thread reachability from the spawn entry points.
  std::vector<uint32_t> Work;
  for (uint32_t E : G.Entries)
    if (E < F.numBlocks() && F.block(E).Kind == BlockKind::Slice &&
        G.Reachable.insert(E).second)
      Work.push_back(E);
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    for (uint32_t S : G.Succ[B])
      if (G.Reachable.insert(S).second)
        Work.push_back(S);
  }
  return G;
}

/// LIB slots read (via lib.ld) by the thread started at \p Entry.
SlotSet requiredSlots(const SliceGraph &G, uint32_t Entry) {
  SlotSet Req;
  std::set<uint32_t> Seen;
  std::vector<uint32_t> Work{Entry};
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    if (B >= G.F.numBlocks() || G.F.block(B).Kind != BlockKind::Slice ||
        !Seen.insert(B).second)
      continue;
    for (const Instruction &I : G.F.block(B).Insts)
      if (I.Op == Opcode::CopyFromLIB && I.Target < sim::MaxLIBSlots)
        Req.set(I.Target);
    auto It = G.Succ.find(B);
    if (It != G.Succ.end())
      for (uint32_t S : It->second)
        Work.push_back(S);
  }
  return Req;
}

/// Blocks a thread started at \p Entry executes unconditionally: follows
/// only unconditional jumps. A conditional branch (or kill) means the rest
/// of the chain is guarded and can terminate.
std::set<uint32_t> unconditionalClosure(const SliceGraph &G, uint32_t Entry) {
  std::set<uint32_t> Out;
  uint32_t B = Entry;
  while (B < G.F.numBlocks() && G.F.block(B).Kind == BlockKind::Slice &&
         Out.insert(B).second) {
    const BasicBlock &BB = G.F.block(B);
    if (BB.Insts.empty() || BB.Insts.back().Op != Opcode::Jmp)
      break;
    B = BB.Insts.back().Target;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Translation validation
//===----------------------------------------------------------------------===//

bool instEqual(const Instruction &A, const Instruction &B) {
  return A.Op == B.Op && A.Cond == B.Cond && A.Dst == B.Dst &&
         A.Src1 == B.Src1 && A.Src2 == B.Src2 && A.Imm == B.Imm &&
         A.Target == B.Target && A.Id == B.Id;
}

class TranslationValidationPass : public VerifyPass {
public:
  const char *name() const override { return "translation"; }

  void run(const VerifyContext &Ctx, DiagnosticEngine &DE) override {
    if (!Ctx.Orig)
      return;
    const Program &N = Ctx.P;
    const Program &O = *Ctx.Orig;
    unsigned ErrorsBefore = DE.errorCount();
    if (N.numFuncs() != O.numFuncs()) {
      DE.errorInProgram("tv.func-count",
                        "adapted program has " +
                            std::to_string(N.numFuncs()) +
                            " functions, the original has " +
                            std::to_string(O.numFuncs()));
      return;
    }
    if (N.getEntry() != O.getEntry())
      DE.errorInProgram("tv.entry-changed",
                        "adaptation changed the entry function from fn" +
                            std::to_string(O.getEntry()) + " to fn" +
                            std::to_string(N.getEntry()));
    unsigned InsertedTriggers = 0;
    for (uint32_t FI = 0; FI < N.numFuncs(); ++FI)
      validateFunction(N.func(FI), O.func(FI), DE, InsertedTriggers);
    // Only compare against the plan when the diff itself was clean;
    // otherwise the count is meaningless.
    if (Ctx.Manifest && DE.errorCount() == ErrorsBefore &&
        InsertedTriggers != Ctx.Manifest->PlannedTriggers)
      DE.errorInProgram(
          "tv.trigger-count",
          "rewriter planned " +
              std::to_string(Ctx.Manifest->PlannedTriggers) +
              " chk.c trigger insertions but " +
              std::to_string(InsertedTriggers) + " were found",
          "the rewrite plan and the emitted binary disagree; the "
          "adaptation must be regenerated");
  }

private:
  void validateFunction(const Function &NF, const Function &OF,
                        DiagnosticEngine &DE, unsigned &InsertedTriggers) {
    uint32_t FI = NF.getIndex();
    if (NF.getName() != OF.getName()) {
      DE.errorInFunc("tv.func-renamed", FI,
                     "function fn" + std::to_string(FI) + " renamed from " +
                         OF.getName() + " to " + NF.getName());
      return;
    }
    if (NF.numBlocks() < OF.numBlocks()) {
      DE.errorInFunc("tv.block-removed", FI,
                     "adaptation removed blocks from " + OF.getName() +
                         " (" + std::to_string(OF.numBlocks()) + " -> " +
                         std::to_string(NF.numBlocks()) + ")");
      return;
    }
    for (uint32_t BI = 0; BI < OF.numBlocks(); ++BI)
      validateBlock(NF, NF.block(BI), OF.block(BI), DE, InsertedTriggers);
    // Anything appended beyond the original layout must be SSP attachment
    // code; new body blocks would change main-thread control flow.
    for (uint32_t BI = static_cast<uint32_t>(OF.numBlocks());
         BI < NF.numBlocks(); ++BI)
      if (!NF.block(BI).isAttachment())
        DE.errorInBlock("tv.new-body-block", FI, BI,
                        "in " + NF.getName() +
                            ": adaptation appended body block " +
                            blockName(NF, BI),
                        "appended blocks must be chk.c stubs or p-slices");
  }

  void validateBlock(const Function &NF, const BasicBlock &NB,
                     const BasicBlock &OB, DiagnosticEngine &DE,
                     unsigned &InsertedTriggers) {
    uint32_t FI = NF.getIndex();
    if (NB.Kind != OB.Kind) {
      DE.errorInBlock("tv.block-kind", FI, NB.Index,
                      "in " + NF.getName() + ": block " +
                          blockName(NF, NB.Index) +
                          " changed kind during adaptation");
      return;
    }
    if (OB.isAttachment()) {
      // Pre-existing attachments (already-adapted inputs) are opaque to
      // the rewriter and must survive verbatim.
      bool Same = NB.Insts.size() == OB.Insts.size();
      for (size_t Idx = 0; Same && Idx < OB.Insts.size(); ++Idx)
        Same = instEqual(NB.Insts[Idx], OB.Insts[Idx]);
      if (!Same)
        DE.errorInBlock("tv.attachment-modified", FI, NB.Index,
                        "in " + NF.getName() +
                            ": pre-existing attachment block " +
                            blockName(NF, NB.Index) + " was modified");
      return;
    }
    // Body block: the adapted block must be the original instruction
    // sequence with zero or more chk.c triggers spliced in.
    size_t OI = 0, NI = 0;
    while (OI < OB.Insts.size() && NI < NB.Insts.size()) {
      if (instEqual(NB.Insts[NI], OB.Insts[OI])) {
        ++OI;
        ++NI;
        continue;
      }
      if (NB.Insts[NI].Op == Opcode::ChkC) {
        ++InsertedTriggers;
        ++NI;
        continue;
      }
      DE.error("tv.inst-changed",
               {FI, NB.Index, static_cast<uint32_t>(NI)},
               "in " + NF.getName() + " bb" + std::to_string(NB.Index) +
                   ": adapted code diverges from the original: expected '" +
                   OB.Insts[OI].str() + "', found '" + NB.Insts[NI].str() +
                   "'",
               "the rewriter may only insert chk.c triggers into body "
               "blocks; every original instruction must be preserved");
      return;
    }
    if (OI < OB.Insts.size()) {
      DE.error("tv.inst-changed",
               {FI, NB.Index, static_cast<uint32_t>(NI ? NI - 1 : 0)},
               "in " + NF.getName() + " bb" + std::to_string(NB.Index) +
                   ": original instruction '" + OB.Insts[OI].str() +
                   "' is missing from the adapted block");
      return;
    }
    for (; NI < NB.Insts.size(); ++NI) {
      if (NB.Insts[NI].Op == Opcode::ChkC) {
        ++InsertedTriggers;
        continue;
      }
      DE.error("tv.inst-changed",
               {FI, NB.Index, static_cast<uint32_t>(NI)},
               "in " + NF.getName() + " bb" + std::to_string(NB.Index) +
                   ": adaptation appended non-trigger instruction '" +
                   NB.Insts[NI].str() + "'");
      return;
    }
  }
};

//===----------------------------------------------------------------------===//
// Stub contract
//===----------------------------------------------------------------------===//

class StubContractPass : public VerifyPass {
public:
  const char *name() const override { return "stub-contract"; }

  void run(const VerifyContext &Ctx, DiagnosticEngine &DE) override {
    for (uint32_t FI = 0; FI < Ctx.P.numFuncs(); ++FI) {
      const Function &F = Ctx.P.func(FI);
      for (const BasicBlock &BB : F.blocks())
        if (BB.Kind == BlockKind::Stub)
          checkStub(F, BB, DE);
    }
  }

private:
  void checkStub(const Function &F, const BasicBlock &BB,
                 DiagnosticEngine &DE) {
    bool HasSpawn = false;
    for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
      const Instruction &I = BB.Insts[Idx];
      analysis::InstRef Ref{F.getIndex(), BB.Index, Idx};
      switch (I.Op) {
      case Opcode::Br:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::CallInd:
      case Opcode::Ret:
      case Opcode::Halt:
      case Opcode::ChkC:
      case Opcode::KillThread:
        DE.error("stub.opcode", Ref,
                 "in " + F.getName() + " bb" + std::to_string(BB.Index) +
                     ": control transfer '" + I.str() +
                     "' inside a chk.c recovery stub",
                 "a stub only marshals live-ins to the LIB, spawns, and "
                 "returns with rfi");
        continue;
      case Opcode::Spawn:
        HasSpawn = true;
        continue;
      case Opcode::CopyToLIB:
      case Opcode::CopyToLIBI:
        if (I.Target >= sim::MaxLIBSlots)
          DE.error("stub.lib-slot", Ref,
                   "in " + F.getName() + " bb" + std::to_string(BB.Index) +
                       ": LIB slot " + std::to_string(I.Target) +
                       " out of range (" +
                       std::to_string(sim::MaxLIBSlots) + " slots)");
        continue;
      default:
        break;
      }
      // Any architectural register write would survive the rfi and corrupt
      // the interrupted thread: the chk.c recovery path must be
      // transparent. (There is no save/restore in this IR; lib.st is the
      // register-free staging primitive.)
      Reg D = I.def();
      if (D.isValid())
        DE.error("stub.clobber", Ref,
                 "in " + F.getName() + " bb" + std::to_string(BB.Index) +
                     ": stub clobbers " + D.str() + " ('" + I.str() +
                     "'); the interrupted thread resumes with a corrupted "
                     "register",
                 "move the computation into the p-slice and pass its "
                 "inputs through the LIB instead");
    }
    if (!HasSpawn)
      DE.warningInBlock("stub.no-spawn", F.getIndex(), BB.Index,
                        "in " + F.getName() + ": stub block " +
                            blockName(F, BB.Index) +
                            " never spawns a speculative thread");
  }
};

//===----------------------------------------------------------------------===//
// Slice dataflow
//===----------------------------------------------------------------------===//

class SliceDataflowPass : public VerifyPass {
public:
  const char *name() const override { return "slice-dataflow"; }

  void run(const VerifyContext &Ctx, DiagnosticEngine &DE) override {
    for (uint32_t FI = 0; FI < Ctx.P.numFuncs(); ++FI) {
      const Function &F = Ctx.P.func(FI);
      SliceGraph G = buildSliceGraph(F, DE);
      if (G.SliceBlocks.empty() && G.Spawns.empty())
        continue;
      checkUnreachable(G, DE);
      checkLoops(G, DE);
      checkDataflow(G, DE);
      checkChainTermination(G, DE);
      checkPrefetchCoverage(G, Ctx, DE);
    }
    if (Ctx.Manifest)
      checkManifestBudgets(Ctx, DE);
  }

private:
  void checkUnreachable(const SliceGraph &G, DiagnosticEngine &DE) {
    for (uint32_t B : G.SliceBlocks)
      if (!G.Reachable.count(B))
        DE.warningInBlock("slice.unreachable", G.F.getIndex(), B,
                          "in " + G.F.getName() + ": p-slice block " +
                              blockName(G.F, B) +
                              " is not reachable from any spawn");
  }

  /// A cycle in the intra-thread flow means one speculative thread loops.
  /// SSP slices are straight-line chains: far-ahead runahead comes from
  /// chained spawns (each bounded by the trip budget), never from a thread
  /// that iterates privately and can run away from its context.
  void checkLoops(const SliceGraph &G, DiagnosticEngine &DE) {
    std::map<uint32_t, int> Color; // 0 white, 1 grey, 2 black
    for (uint32_t B : G.SliceBlocks)
      if (Color[B] == 0)
        dfsLoop(G, B, Color, DE);
  }

  void dfsLoop(const SliceGraph &G, uint32_t B,
               std::map<uint32_t, int> &Color, DiagnosticEngine &DE) {
    Color[B] = 1;
    auto It = G.Succ.find(B);
    if (It != G.Succ.end())
      for (uint32_t S : It->second) {
        if (Color[S] == 1) {
          DE.errorInBlock("slice.loop", G.F.getIndex(), B,
                          "in " + G.F.getName() +
                              ": p-slice control flow loops through " +
                              blockName(G.F, S),
                          "unroll the loop into a chained spawn so each "
                          "thread stays bounded");
          continue;
        }
        if (Color[S] == 0)
          dfsLoop(G, S, Color, DE);
      }
    Color[B] = 2;
  }

  struct FlowState {
    bool Known = false;
    RegSet Defined;
    SlotSet Staged;
  };

  static FlowState entryState() {
    FlowState S;
    S.Known = true;
    S.Defined.set(0);       // r0 hardwired to zero.
    S.Defined.set(P0Dense); // p0 hardwired to true.
    return S;
  }

  static void meet(FlowState &Into, const FlowState &From) {
    if (!From.Known)
      return;
    if (!Into.Known) {
      Into = From;
      return;
    }
    Into.Defined &= From.Defined;
    Into.Staged &= From.Staged;
  }

  /// Applies one instruction's effect on the must-defined/must-staged
  /// state (no diagnostics).
  static void transfer(const Instruction &I, FlowState &S) {
    if ((I.Op == Opcode::CopyToLIB || I.Op == Opcode::CopyToLIBI) &&
        I.Target < sim::MaxLIBSlots)
      S.Staged.set(I.Target);
    Reg D = I.def();
    if (D.isValid())
      S.Defined.set(D.denseIndex());
  }

  /// Forward must-analysis over the slice graph, then one reporting walk.
  /// A speculative thread starts at a spawn target with a *zeroed* register
  /// file (the simulator's resetForSpawn), so the only defined values at
  /// entry are the hardwired r0/p0; everything else must be computed
  /// in-slice or loaded from the LIB. The staged-slot component powers the
  /// spawn-site staging check: at every spawn, the LIB slots the spawned
  /// thread will read must have been staged by this thread on every path.
  void checkDataflow(const SliceGraph &G, DiagnosticEngine &DE) {
    std::map<uint32_t, FlowState> In;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t B : G.SliceBlocks) {
        if (!G.Reachable.count(B))
          continue;
        FlowState NewIn;
        if (G.Entries.count(B))
          NewIn = entryState();
        else
          for (uint32_t P : predsOf(G, B))
            meet(NewIn, outOf(G, P, In));
        if (!NewIn.Known)
          continue;
        FlowState &Cur = In[B];
        if (!Cur.Known || Cur.Defined != NewIn.Defined ||
            Cur.Staged != NewIn.Staged) {
          Cur = NewIn;
          Changed = true;
        }
      }
    }
    // Reporting walk.
    for (uint32_t B : G.SliceBlocks) {
      auto It = In.find(B);
      if (It == In.end() || !It->second.Known)
        continue;
      FlowState S = It->second;
      const BasicBlock &BB = G.F.block(B);
      for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
        const Instruction &I = BB.Insts[Idx];
        analysis::InstRef Ref{G.F.getIndex(), B, Idx};
        if (I.Op == Opcode::CopyFromLIB && I.Target >= sim::MaxLIBSlots)
          DE.error("slice.lib-slot", Ref,
                   "in " + G.F.getName() + " bb" + std::to_string(B) +
                       ": LIB slot " + std::to_string(I.Target) +
                       " out of range (" +
                       std::to_string(sim::MaxLIBSlots) + " slots)");
        if ((I.Op == Opcode::CopyToLIB || I.Op == Opcode::CopyToLIBI) &&
            I.Target >= sim::MaxLIBSlots)
          DE.error("slice.lib-slot", Ref,
                   "in " + G.F.getName() + " bb" + std::to_string(B) +
                       ": LIB slot " + std::to_string(I.Target) +
                       " out of range (" +
                       std::to_string(sim::MaxLIBSlots) + " slots)");
        I.forEachUse([&](Reg R) {
          if (!R.isValid() || S.Defined.test(R.denseIndex()))
            return;
          DE.error("slice.livein", Ref,
                   "in " + G.F.getName() + " bb" + std::to_string(B) +
                       ": " + R.str() + " read in p-slice ('" + I.str() +
                       "') but neither computed in the slice nor loaded "
                       "from the live-in buffer",
                   "stage the value in the stub with lib.st and load it "
                   "with lib.ld at the top of the slice");
          // Suppress cascading reports of the same register.
          S.Defined.set(R.denseIndex());
        });
        if (I.Op == Opcode::Spawn)
          checkSpawnStaging(G, Ref, I, S.Staged, DE);
        transfer(I, S);
      }
    }
    // Stub spawns: the main thread stages within the stub block itself
    // (block-local scan; chk.c can fire anywhere, so earlier main-thread
    // LIBStage contents are not dependable).
    for (const analysis::InstRef &Ref : G.Spawns) {
      const BasicBlock &BB = G.F.block(Ref.Block);
      if (BB.Kind == BlockKind::Slice)
        continue; // Handled with full dataflow above.
      SlotSet Staged;
      for (uint32_t Idx = 0; Idx < Ref.Inst; ++Idx) {
        const Instruction &I = BB.Insts[Idx];
        if ((I.Op == Opcode::CopyToLIB || I.Op == Opcode::CopyToLIBI) &&
            I.Target < sim::MaxLIBSlots)
          Staged.set(I.Target);
      }
      checkSpawnStaging(G, Ref, BB.Insts[Ref.Inst], Staged, DE);
    }
  }

  void checkSpawnStaging(const SliceGraph &G, const analysis::InstRef &Ref,
                         const Instruction &Spawn, const SlotSet &Staged,
                         DiagnosticEngine &DE) {
    SlotSet Req = requiredSlots(G, Spawn.Target);
    SlotSet Missing = Req & ~Staged;
    if (Missing.none())
      return;
    std::string Slots;
    for (unsigned S = 0; S < sim::MaxLIBSlots; ++S)
      if (Missing.test(S))
        Slots += (Slots.empty() ? "" : ", ") + std::to_string(S);
    DE.error("slice.livein-staging", Ref,
             "in " + G.F.getName() + " bb" + std::to_string(Ref.Block) +
                 ": spawn of " + blockName(G.F, Spawn.Target) +
                 " but LIB slot" + (Missing.count() > 1 ? "s " : " ") +
                 Slots + (Missing.count() > 1 ? " are" : " is") +
                 " not staged on every path to the spawn",
             "add lib.st/lib.sti for the missing slot before the spawn; "
             "the spawned thread reads them via lib.ld");
  }

  /// A chained spawn whose target unconditionally re-executes the spawn
  /// re-arms forever: nothing bounds the chain. The guard must be a
  /// conditional branch (computed spawn condition or trip-budget compare)
  /// between the chain entry and the spawn.
  void checkChainTermination(const SliceGraph &G, DiagnosticEngine &DE) {
    for (const analysis::InstRef &Ref : G.Spawns) {
      if (G.F.block(Ref.Block).Kind != BlockKind::Slice)
        continue;
      uint32_t Target = G.F.block(Ref.Block).Insts[Ref.Inst].Target;
      // Cycle at all?
      std::set<uint32_t> FromTarget;
      std::vector<uint32_t> Work{Target};
      while (!Work.empty()) {
        uint32_t B = Work.back();
        Work.pop_back();
        if (!FromTarget.insert(B).second)
          continue;
        auto It = G.Succ.find(B);
        if (It != G.Succ.end())
          for (uint32_t S : It->second)
            Work.push_back(S);
      }
      if (!FromTarget.count(Ref.Block))
        continue; // Not a chain (e.g. prologue spawning the header once).
      if (unconditionalClosure(G, Target).count(Ref.Block))
        DE.error("slice.chain-budget", Ref,
                 "in " + G.F.getName() + " bb" + std::to_string(Ref.Block) +
                     ": chained spawn of " + blockName(G.F, Target) +
                     " re-arms unconditionally; the chain never "
                     "terminates",
                 "guard the spawn with a trip budget (lib.sti, addi -1, "
                 "cmpi, br) or a computed spawn condition");
    }
  }

  void checkPrefetchCoverage(const SliceGraph &G, const VerifyContext &Ctx,
                             DiagnosticEngine &DE) {
    if (Ctx.Manifest) {
      for (const SliceManifest &M : Ctx.Manifest->Slices) {
        if (M.Func != G.F.getIndex())
          continue;
        // Emitted prefetches anywhere in the thread started at the header.
        std::set<std::pair<unsigned, int64_t>> Emitted;
        std::set<uint32_t> Seen;
        std::vector<uint32_t> Work{M.HeaderBlock};
        while (!Work.empty()) {
          uint32_t B = Work.back();
          Work.pop_back();
          if (B >= G.F.numBlocks() ||
              G.F.block(B).Kind != BlockKind::Slice ||
              !Seen.insert(B).second)
            continue;
          for (const Instruction &I : G.F.block(B).Insts)
            if (I.Op == Opcode::Prefetch)
              Emitted.insert({I.Src1.denseIndex(), I.Imm});
          auto It = G.Succ.find(B);
          if (It != G.Succ.end())
            for (uint32_t S : It->second)
              Work.push_back(S);
        }
        for (const auto &[Base, Off] : M.PrefetchTargets)
          if (!Emitted.count({Base.denseIndex(), Off}))
            DE.errorInBlock(
                "slice.prefetch-coverage", M.Func, M.HeaderBlock,
                "in " + G.F.getName() + ": planned prefetch [" +
                    Base.str() + (Off >= 0 ? "+" : "") +
                    std::to_string(Off) +
                    "] for the delinquent load is missing from the "
                    "emitted p-slice",
                "the rewrite plan and the emitted slice disagree; the "
                "adaptation must be regenerated");
      }
      return;
    }
    // No manifest: a spawn entry whose whole thread neither prefetches nor
    // loads cannot warm the cache — it burns a thread context for nothing.
    for (uint32_t E : G.Entries) {
      if (E >= G.F.numBlocks() || G.F.block(E).Kind != BlockKind::Slice)
        continue;
      bool Touches = false;
      std::set<uint32_t> Seen;
      std::vector<uint32_t> Work{E};
      while (!Work.empty() && !Touches) {
        uint32_t B = Work.back();
        Work.pop_back();
        if (!Seen.insert(B).second)
          continue;
        for (const Instruction &I : G.F.block(B).Insts)
          if (I.Op == Opcode::Prefetch || I.Op == Opcode::Load ||
              I.Op == Opcode::LoadF)
            Touches = true;
        auto It = G.Succ.find(B);
        if (It != G.Succ.end())
          for (uint32_t S : It->second)
            Work.push_back(S);
      }
      if (!Touches)
        DE.warningInBlock("slice.prefetch-coverage", G.F.getIndex(), E,
                          "in " + G.F.getName() + ": p-slice at " +
                              blockName(G.F, E) +
                              " performs no prefetch or load; it cannot "
                              "warm the cache");
    }
  }

  void checkManifestBudgets(const VerifyContext &Ctx, DiagnosticEngine &DE) {
    for (const SliceManifest &M : Ctx.Manifest->Slices) {
      if (!M.UsesBudget || M.Func >= Ctx.P.numFuncs())
        continue;
      const Function &F = Ctx.P.func(M.Func);
      bool Found = false;
      for (const BasicBlock &BB : F.blocks()) {
        if (!BB.isAttachment())
          continue;
        for (const Instruction &I : BB.Insts)
          if (I.Op == Opcode::CopyToLIBI &&
              I.Imm == static_cast<int64_t>(M.TripBudget))
            Found = true;
      }
      if (!Found)
        DE.errorInBlock("slice.chain-budget", M.Func, M.StubBlock,
                        "in " + F.getName() +
                            ": rewrite plan bounds the chain with a trip "
                            "budget of " +
                            std::to_string(M.TripBudget) +
                            " but no lib.sti stages it");
    }
  }

  // Helpers for the must-analysis.
  std::vector<uint32_t> predsOf(const SliceGraph &G, uint32_t B) const {
    std::vector<uint32_t> Out;
    for (const auto &[P, Ss] : G.Succ)
      if (std::find(Ss.begin(), Ss.end(), B) != Ss.end())
        Out.push_back(P);
    return Out;
  }

  FlowState outOf(const SliceGraph &G, uint32_t B,
                  std::map<uint32_t, FlowState> &In) const {
    auto It = In.find(B);
    if (It == In.end() || !It->second.Known)
      return FlowState();
    FlowState S = It->second;
    for (const Instruction &I : G.F.block(B).Insts)
      transfer(I, S);
    return S;
  }
};

//===----------------------------------------------------------------------===//
// Lints
//===----------------------------------------------------------------------===//

class LintPass : public VerifyPass {
public:
  const char *name() const override { return "lint"; }

  void run(const VerifyContext &Ctx, DiagnosticEngine &DE) override {
    for (uint32_t FI = 0; FI < Ctx.P.numFuncs(); ++FI) {
      const Function &F = Ctx.P.func(FI);
      lintSliceLiveness(F, DE);
      lintStagingOrder(F, DE);
      lintBundles(F, DE);
      lintStubPressure(F, DE);
      lintTriggers(Ctx.P, F, DE);
    }
  }

private:
  /// Backward may-liveness over the attachment flow graph: a slice
  /// instruction whose result no path ever reads is dead weight in the
  /// speculative thread — it delays the prefetches it rides with.
  void lintSliceLiveness(const Function &F, DiagnosticEngine &DE) {
    DiagnosticEngine Scratch; // slice.exit re-reported by the dataflow pass.
    SliceGraph G = buildSliceGraph(F, Scratch);
    if (G.SliceBlocks.empty())
      return;
    std::map<uint32_t, RegSet> LiveIn;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (auto RIt = G.SliceBlocks.rbegin(); RIt != G.SliceBlocks.rend();
           ++RIt) {
        uint32_t B = *RIt;
        RegSet Live;
        auto SIt = G.Succ.find(B);
        if (SIt != G.Succ.end())
          for (uint32_t S : SIt->second)
            Live |= LiveIn[S];
        const BasicBlock &BB = F.block(B);
        for (auto IIt = BB.Insts.rbegin(); IIt != BB.Insts.rend(); ++IIt) {
          Reg D = IIt->def();
          if (D.isValid())
            Live.reset(D.denseIndex());
          IIt->forEachUse([&](Reg R) {
            if (R.isValid())
              Live.set(R.denseIndex());
          });
        }
        if (LiveIn[B] != Live) {
          LiveIn[B] = Live;
          Changed = true;
        }
      }
    }
    for (uint32_t B : G.SliceBlocks) {
      RegSet Live;
      auto SIt = G.Succ.find(B);
      if (SIt != G.Succ.end())
        for (uint32_t S : SIt->second)
          Live |= LiveIn[S];
      const BasicBlock &BB = F.block(B);
      // Walk backwards so "dead" means dead w.r.t. everything after.
      std::vector<uint32_t> Dead;
      for (uint32_t Idx = static_cast<uint32_t>(BB.Insts.size()); Idx-- > 0;) {
        const Instruction &I = BB.Insts[Idx];
        Reg D = I.def();
        if (D.isValid()) {
          // Loads still prefetch their line even when the value is unread,
          // which is the whole point of a p-slice, so they are never dead.
          if (!Live.test(D.denseIndex()) && I.Op != Opcode::Load &&
              I.Op != Opcode::LoadF)
            Dead.push_back(Idx);
          Live.reset(D.denseIndex());
        }
        I.forEachUse([&](Reg R) {
          if (R.isValid())
            Live.set(R.denseIndex());
        });
      }
      for (auto It = Dead.rbegin(); It != Dead.rend(); ++It)
        DE.warning("lint.dead-slice", {F.getIndex(), B, *It},
                   "in " + F.getName() + " bb" + std::to_string(B) +
                       ": p-slice result of '" + BB.Insts[*It].str() +
                       "' is never used by the slice",
                   "the slicer can drop this instruction to shorten the "
                   "speculative thread");
    }
  }

  /// lib.st after the last spawn of a block stages a value no spawn in
  /// this block will deliver: the thread already captured its frame.
  void lintStagingOrder(const Function &F, DiagnosticEngine &DE) {
    for (const BasicBlock &BB : F.blocks()) {
      if (!BB.isAttachment())
        continue;
      uint32_t LastSpawn = ~0u;
      for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx)
        if (BB.Insts[Idx].Op == Opcode::Spawn)
          LastSpawn = Idx;
      if (LastSpawn == ~0u)
        continue;
      for (uint32_t Idx = LastSpawn + 1; Idx < BB.Insts.size(); ++Idx) {
        const Instruction &I = BB.Insts[Idx];
        if (I.Op == Opcode::CopyToLIB || I.Op == Opcode::CopyToLIBI)
          DE.warning("lint.spawn-staging", {F.getIndex(), BB.Index, Idx},
                     "in " + F.getName() + " bb" +
                         std::to_string(BB.Index) + ": live-in staged "
                         "after the spawn; the spawned thread captured "
                         "its frame at the spawn and sees the old value",
                     "move the lib.st above the spawn");
      }
    }
  }

  /// Issue bundles are 3 slots wide and reset at block entry; the Table 1
  /// machine has 2 memory ports and 2 FP units, so a bundle with 3 memory
  /// or 3 FP operations can never issue in one cycle.
  void lintBundles(const Function &F, DiagnosticEngine &DE) {
    constexpr unsigned BundleSlots = 3;
    constexpr unsigned MemPorts = 2; // sim::MachineConfig Table 1 default.
    constexpr unsigned FPUnits = 2;  // sim::MachineConfig Table 1 default.
    for (const BasicBlock &BB : F.blocks()) {
      for (uint32_t Start = 0; Start < BB.Insts.size();
           Start += BundleSlots) {
        unsigned MemOps = 0, FPOps = 0;
        uint32_t End = std::min<uint32_t>(
            Start + BundleSlots, static_cast<uint32_t>(BB.Insts.size()));
        for (uint32_t Idx = Start; Idx < End; ++Idx) {
          FuncUnit U = funcUnitOf(BB.Insts[Idx].Op);
          MemOps += U == FuncUnit::Mem;
          FPOps += U == FuncUnit::FP;
        }
        if (MemOps > MemPorts)
          DE.warning("lint.bundle", {F.getIndex(), BB.Index, Start},
                     "in " + F.getName() + " bb" +
                         std::to_string(BB.Index) + ": bundle needs " +
                         std::to_string(MemOps) +
                         " memory ports but the machine has " +
                         std::to_string(MemPorts),
                     "interleave the memory operations with ALU work so "
                     "the bundle can issue in one cycle");
        if (FPOps > FPUnits)
          DE.warning("lint.bundle", {F.getIndex(), BB.Index, Start},
                     "in " + F.getName() + " bb" +
                         std::to_string(BB.Index) + ": bundle needs " +
                         std::to_string(FPOps) +
                         " FP units but the machine has " +
                         std::to_string(FPUnits));
      }
    }
  }

  void lintStubPressure(const Function &F, DiagnosticEngine &DE) {
    for (const BasicBlock &BB : F.blocks()) {
      if (BB.Kind != BlockKind::Stub)
        continue;
      std::set<uint32_t> Slots;
      for (const Instruction &I : BB.Insts)
        if (I.Op == Opcode::CopyToLIB || I.Op == Opcode::CopyToLIBI)
          Slots.insert(I.Target);
      if (Slots.size() > sim::MaxLIBSlots - 2)
        DE.warningInBlock(
            "lint.stub-pressure", F.getIndex(), BB.Index,
            "in " + F.getName() + ": stub stages " +
                std::to_string(Slots.size()) + " of " +
                std::to_string(sim::MaxLIBSlots) +
                " LIB slots; chained re-staging has almost no headroom",
            "trim the slice live-in set or split the slice");
    }
  }

  /// Trigger placement lints need main-thread dataflow: the body CFG and
  /// reaching definitions (attachments excluded, as in all post-pass
  /// analyses).
  void lintTriggers(const Program &P, const Function &F,
                    DiagnosticEngine &DE) {
    bool HasTrigger = false;
    for (const BasicBlock &BB : F.blocks())
      for (const Instruction &I : BB.Insts)
        HasTrigger |= I.Op == Opcode::ChkC;
    if (!HasTrigger)
      return;
    analysis::CFG G = analysis::CFG::build(F);
    analysis::ReachingDefs RD =
        analysis::ReachingDefs::build(P, F.getIndex(), G);
    for (const BasicBlock &BB : F.blocks()) {
      if (BB.isAttachment())
        continue;
      bool Unreachable = G.rpoIndex(BB.Index) == ~0u;
      for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
        const Instruction &I = BB.Insts[Idx];
        if (I.Op != Opcode::ChkC)
          continue;
        analysis::InstRef Ref{F.getIndex(), BB.Index, Idx};
        if (Unreachable) {
          DE.warning("lint.dead-trigger", Ref,
                     "in " + F.getName() + " bb" +
                         std::to_string(BB.Index) +
                         ": trigger is in unreachable code and can never "
                         "fire");
          continue;
        }
        // Values the stub stages must be initialized wherever the trigger
        // can fire. In non-entry functions a live-in value legitimately
        // comes from the caller, so only the entry function is checked.
        if (F.getIndex() != P.getEntry() || I.Target >= F.numBlocks())
          continue;
        const BasicBlock &Stub = F.block(I.Target);
        if (Stub.Kind != BlockKind::Stub)
          continue;
        for (const Instruction &S : Stub.Insts) {
          if (S.Op != Opcode::CopyToLIB || !S.Src1.isValid() ||
              S.Src1.Num == 0)
            continue;
          if (RD.mayBeLiveIn(BB.Index, Idx, S.Src1))
            DE.warning("lint.uninit-livein", Ref,
                       "in " + F.getName() + " bb" +
                           std::to_string(BB.Index) + ": trigger's stub "
                           "stages " +
                           S.Src1.str() +
                           " which may be uninitialized when the trigger "
                           "fires",
                       "move the trigger below the definition of " +
                           S.Src1.str());
        }
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Speculation audit (speculation.*)
//===----------------------------------------------------------------------===//

/// Audits the manifest's speculatively dropped may-dependence edges. The
/// adaptation was *built* trusting analysis::SpecDeps; this pass replays
/// the decision independently per recorded drop: the edge must
/// re-classify as cold (never a must-dep), must have nonzero trip
/// coverage, and the recorded evidence must match the classifier's. Each
/// accepted drop becomes a `speculation.dropped-edge` note so the full
/// audit trail reaches text and JSON output.
class SpeculationPass : public VerifyPass {
public:
  const char *name() const override { return "speculation"; }
  void run(const VerifyContext &Ctx, DiagnosticEngine &DE) override {
    if (!Ctx.Manifest)
      return; // Standalone ssp-verify without a plan: nothing to audit.
    size_t NumDrops = 0;
    for (const SliceManifest &SM : Ctx.Manifest->Slices)
      NumDrops += SM.SpecDrops.size();
    if (NumDrops == 0)
      return;

    if (!Ctx.Spec || !Ctx.Spec->enabled()) {
      DE.errorInProgram(
          "speculation.unsupported-drop",
          std::to_string(NumDrops) +
              " dropped dependence edges recorded but the speculation "
              "classifier is " +
              (Ctx.Spec ? "disabled (no profile evidence or --spec-deps "
                          "off)"
                        : "unavailable"),
          "rebuild the adaptation without pruning, or supply the profile "
          "evidence it was pruned with");
      return;
    }
    if (!Ctx.Orig) {
      DE.errorInProgram("speculation.unsupported-drop",
                        "dropped dependence edges recorded but no original "
                        "program to re-derive them against");
      return;
    }

    // The drops name producer/consumer by static id in the *original*
    // program (attachment code is never speculated on).
    std::map<StaticId, analysis::InstRef> Index;
    for (uint32_t FI = 0; FI < Ctx.Orig->numFuncs(); ++FI) {
      const Function &F = Ctx.Orig->func(FI);
      for (uint32_t BI = 0; BI < F.numBlocks(); ++BI) {
        const BasicBlock &BB = F.block(BI);
        for (uint32_t II = 0; II < BB.Insts.size(); ++II)
          Index[makeStaticId(FI, BB.Insts[II].Id)] = {FI, BI, II};
      }
    }

    for (const SliceManifest &SM : Ctx.Manifest->Slices)
      for (const analysis::SpecDrop &D : SM.SpecDrops)
        auditDrop(Ctx, DE, SM, D, Index);
  }

private:
  static std::string describeEdge(const analysis::SpecDrop &D) {
    return std::string(analysis::depKindName(D.Kind)) + " edge fn" +
           std::to_string(staticIdFunc(D.From)) + ":@" +
           std::to_string(staticIdInst(D.From)) + " -> fn" +
           std::to_string(staticIdFunc(D.To)) + ":@" +
           std::to_string(staticIdInst(D.To));
  }

  void auditDrop(const VerifyContext &Ctx, DiagnosticEngine &DE,
                 const SliceManifest &SM, const analysis::SpecDrop &D,
                 const std::map<StaticId, analysis::InstRef> &Index) {
    auto FromIt = Index.find(D.From);
    auto ToIt = Index.find(D.To);
    if (FromIt == Index.end() || ToIt == Index.end()) {
      DE.errorInFunc("speculation.unsupported-drop", SM.Func,
                     "dropped " + describeEdge(D) +
                         " names an instruction the original program does "
                         "not contain");
      return;
    }
    const analysis::InstRef &From = FromIt->second;
    const analysis::InstRef &To = ToIt->second;

    // Zero profile coverage means there was no evidence either way:
    // dropping such an edge is never supported.
    if (D.Trips == 0) {
      DE.error("speculation.unsupported-drop", To,
               "dropped " + describeEdge(D) +
                   " has zero profile coverage (consumer never executed "
                   "under the profile)");
      return;
    }

    // Independent re-derivation of the classification and evidence.
    analysis::DepClass C =
        D.Kind == analysis::DepKind::Memory
            ? Ctx.Spec->classifyMemEdge(From, To)
            : Ctx.Spec->classifyRegEdge(From, To);
    if (C != analysis::DepClass::Cold) {
      DE.error("speculation.unsupported-drop", To,
               "dropped " + describeEdge(D) + " re-classifies as " +
                   analysis::depClassName(C) +
                   ", not cold (observed " + std::to_string(D.Observed) +
                   "/" + std::to_string(D.Trips) + " trips, threshold " +
                   std::to_string(D.Threshold) + ")");
      return;
    }
    uint64_t Observed = 0, Trips = 0;
    Ctx.Spec->evidenceFor(D.Kind, From, To, Observed, Trips);
    if (Observed != D.Observed || Trips != D.Trips ||
        D.Threshold != Ctx.Spec->threshold()) {
      DE.error("speculation.evidence-mismatch", To,
               "dropped " + describeEdge(D) + " records evidence " +
                   std::to_string(D.Observed) + "/" +
                   std::to_string(D.Trips) + " @ " +
                   std::to_string(D.Threshold) +
                   " but the profile says " + std::to_string(Observed) +
                   "/" + std::to_string(Trips) + " @ " +
                   std::to_string(Ctx.Spec->threshold()));
      return;
    }

    DE.note("speculation.dropped-edge", To,
            "dropped " + describeEdge(D) + ": observed " +
                std::to_string(D.Observed) + " of " +
                std::to_string(D.Trips) + " trips (threshold " +
                std::to_string(D.Threshold) + ")");
  }
};

//===----------------------------------------------------------------------===//
// Feedback audit (feedback.*)
//===----------------------------------------------------------------------===//

/// Audits closed-loop re-adaptation rounds. The manifest records the
/// per-load feedback directives the tool ran with
/// (AdaptationManifest::FeedbackOverrides) plus, per slice, the join keys
/// the feedback policy uses (primary/target load sids, region depth,
/// unroll, and the inserted trigger sids). This pass cross-checks plan
/// against directives: a dropped load must not be adapted, region-depth /
/// restart / unroll directives must be honored by every covering slice,
/// and every recorded trigger sid must name a real chk.c in the adapted
/// program that targets the slice's stub block (otherwise the
/// attribution->slice join the next round decides from is garbage).
/// Honored directives become `feedback.applied-override` notes — the
/// audit trail `ssp-adapt --feedback` rounds are checked by.
class FeedbackPass : public VerifyPass {
public:
  const char *name() const override { return "feedback"; }

  void run(const VerifyContext &Ctx, DiagnosticEngine &DE) override {
    if (!Ctx.Manifest || Ctx.Manifest->FeedbackOverrides.empty())
      return; // Not a closed-loop round: nothing to audit.

    // Index every instruction of the adapted program by static id once.
    std::map<StaticId, analysis::InstRef> Index;
    for (uint32_t FI = 0; FI < Ctx.P.numFuncs(); ++FI) {
      const Function &F = Ctx.P.func(FI);
      for (uint32_t BI = 0; BI < F.numBlocks(); ++BI) {
        const BasicBlock &BB = F.block(BI);
        for (uint32_t II = 0; II < BB.Insts.size(); ++II)
          Index[makeStaticId(FI, BB.Insts[II].Id)] = {FI, BI, II};
      }
    }

    // The feedback join (per-trigger fates -> slice) is only sound when
    // every recorded trigger sid resolves to a chk.c aimed at the slice's
    // stub; validate that before auditing the directives.
    for (const SliceManifest &SM : Ctx.Manifest->Slices) {
      checkTriggerSids(Ctx, DE, SM, SM.CutTriggerSids, "cut", Index);
      checkTriggerSids(Ctx, DE, SM, SM.RestartTriggerSids, "restart",
                       Index);
    }

    for (const FeedbackOverrideRecord &R : Ctx.Manifest->FeedbackOverrides)
      auditOverride(Ctx, DE, R);
  }

private:
  static std::string describeLoad(uint64_t Sid) {
    return "load fn" + std::to_string(staticIdFunc(Sid)) + ":@" +
           std::to_string(staticIdInst(Sid));
  }

  static std::string describeOverride(const FeedbackOverrideRecord &R) {
    std::string S;
    auto Add = [&](const std::string &Part) {
      if (!S.empty())
        S += ", ";
      S += Part;
    };
    if (R.Drop)
      Add("drop");
    if (R.NoRestartTrigger)
      Add("no-restart-trigger");
    if (R.MinRegionDepth)
      Add("min-region-depth " + std::to_string(R.MinRegionDepth));
    if (R.TripBudgetLog2)
      Add("trip-budget x2^" + std::to_string(R.TripBudgetLog2));
    if (R.InnerUnroll)
      Add("inner-unroll " + std::to_string(R.InnerUnroll));
    return S.empty() ? std::string("no-op") : S;
  }

  void checkTriggerSids(const VerifyContext &Ctx, DiagnosticEngine &DE,
                        const SliceManifest &SM,
                        const std::vector<uint64_t> &Sids, const char *Role,
                        const std::map<StaticId, analysis::InstRef> &Index) {
    for (uint64_t Sid : Sids) {
      auto It = Index.find(Sid);
      if (It == Index.end()) {
        DE.errorInBlock("feedback.bad-trigger-record", SM.Func,
                        SM.StubBlock,
                        std::string("recorded ") + Role + " trigger sid fn" +
                            std::to_string(staticIdFunc(Sid)) + ":@" +
                            std::to_string(staticIdInst(Sid)) +
                            " names no instruction in the adapted program");
        continue;
      }
      const analysis::InstRef &Ref = It->second;
      const Instruction &I =
          Ctx.P.func(Ref.Func).block(Ref.Block).Insts[Ref.Inst];
      if (I.Op != Opcode::ChkC || Ref.Func != SM.Func ||
          I.Target != SM.StubBlock) {
        DE.error("feedback.bad-trigger-record", Ref,
                 std::string("recorded ") + Role + " trigger sid resolves "
                     "to '" + I.str() + "' which is not a chk.c targeting "
                     "this slice's stub bb" + std::to_string(SM.StubBlock),
                 "per-trigger attribution would be folded onto the wrong "
                 "slice; the trigger-sid recording in codegen is broken");
      }
    }
  }

  void auditOverride(const VerifyContext &Ctx, DiagnosticEngine &DE,
                     const FeedbackOverrideRecord &R) {
    // Every slice covering the directed load, and whether the load is the
    // slice's primary (codegen honors the primary candidate's override
    // when a combined slice merges loads with different directives).
    bool Covered = false;
    for (const SliceManifest &SM : Ctx.Manifest->Slices) {
      bool Primary = SM.PrimaryLoadSid == R.LoadSid;
      bool Target = std::find(SM.TargetLoadSids.begin(),
                              SM.TargetLoadSids.end(),
                              R.LoadSid) != SM.TargetLoadSids.end();
      if (!Primary && !Target)
        continue;
      Covered = true;
      auditAgainstSlice(DE, R, SM, Primary);
    }
    if (!Covered)
      DE.noteInProgram("feedback.inactive-override",
                       describeLoad(R.LoadSid) + " directive (" +
                           describeOverride(R) + ") matched no emitted "
                           "slice" +
                           (R.Drop ? ": drop honored"
                                   : " (load not selected this round)"));
  }

  void auditAgainstSlice(DiagnosticEngine &DE,
                         const FeedbackOverrideRecord &R,
                         const SliceManifest &SM, bool Primary) {
    if (R.Drop) {
      DE.errorInBlock("feedback.dropped-load-adapted", SM.Func,
                      SM.StubBlock,
                      describeLoad(R.LoadSid) + " carries a drop directive "
                          "but a slice was emitted for it",
                      "the candidate generator must skip dropped loads "
                      "before region selection");
      return;
    }
    bool Violated = false;
    if (SM.RegionDepth < R.MinRegionDepth) {
      Violated = true;
      diagnose(DE, SM, Primary,
               describeLoad(R.LoadSid) + ": hoist directive requires "
                   "region depth >= " + std::to_string(R.MinRegionDepth) +
                   " but the slice was planned at depth " +
                   std::to_string(SM.RegionDepth));
    }
    if (R.NoRestartTrigger && !SM.RestartTriggerSids.empty()) {
      Violated = true;
      diagnose(DE, SM, Primary,
               describeLoad(R.LoadSid) + ": no-restart directive but " +
                   std::to_string(SM.RestartTriggerSids.size()) +
                   " restart triggers were inserted");
    }
    if (R.InnerUnroll && SM.InnerMembers > 0 &&
        SM.InnerUnroll != R.InnerUnroll) {
      Violated = true;
      diagnose(DE, SM, Primary,
               describeLoad(R.LoadSid) + ": deepen directive requires "
                   "inner unroll " + std::to_string(R.InnerUnroll) +
                   " but the slice was planned with " +
                   std::to_string(SM.InnerUnroll));
    }
    // TripBudgetLog2 is not re-checked here: the directive scales a base
    // budget this pass cannot re-derive, and slice.chain-budget already
    // pins the emitted staging to the manifest's final TripBudget.
    if (!Violated)
      DE.noteInFunc("feedback.applied-override", SM.Func,
                    describeLoad(R.LoadSid) + " directive (" +
                        describeOverride(R) + ") honored by slice at bb" +
                        std::to_string(SM.StubBlock) + " (depth " +
                        std::to_string(SM.RegionDepth) + ", unroll " +
                        std::to_string(SM.InnerUnroll) + ")");
  }

  /// A directive the covering slice did not honor. Fatal when the load is
  /// the slice's primary (codegen takes the plan from the primary
  /// candidate, so a mismatch there is a tool bug); a warning when the
  /// load was merely absorbed into another load's slice, whose own
  /// directive legitimately won.
  void diagnose(DiagnosticEngine &DE, const SliceManifest &SM, bool Primary,
                const std::string &Msg) {
    if (Primary)
      DE.errorInBlock("feedback.unapplied-override", SM.Func, SM.StubBlock,
                      Msg);
    else
      DE.warningInBlock("feedback.override-conflict", SM.Func,
                        SM.StubBlock,
                        Msg + " (covered by " +
                            describeLoad(SM.PrimaryLoadSid) +
                            "'s slice, whose directive took precedence)");
  }
};

//===----------------------------------------------------------------------===//
// Structural wrapper
//===----------------------------------------------------------------------===//

class StructuralPass : public VerifyPass {
public:
  const char *name() const override { return "structural"; }
  bool requiresWellFormed() const override { return false; }
  void run(const VerifyContext &Ctx, DiagnosticEngine &DE) override {
    ir::verifyStructural(Ctx.P, DE);
    if (Ctx.Orig) {
      // An ill-formed *original* makes translation validation
      // meaningless; surface it as a distinct diagnostic.
      DiagnosticEngine OrigDE;
      ir::verifyStructural(*Ctx.Orig, OrigDE);
      if (OrigDE.hasErrors())
        DE.errorInProgram("structural.orig-ill-formed",
                          "the original (pre-adaptation) program is "
                          "ill-formed: " +
                              std::to_string(OrigDE.errorCount()) +
                              " structural errors");
    }
  }
};

} // namespace

std::unique_ptr<VerifyPass> ssp::verify::createStructuralPass() {
  return std::make_unique<StructuralPass>();
}
std::unique_ptr<VerifyPass> ssp::verify::createTranslationValidationPass() {
  return std::make_unique<TranslationValidationPass>();
}
std::unique_ptr<VerifyPass> ssp::verify::createStubContractPass() {
  return std::make_unique<StubContractPass>();
}
std::unique_ptr<VerifyPass> ssp::verify::createSliceDataflowPass() {
  return std::make_unique<SliceDataflowPass>();
}
std::unique_ptr<VerifyPass> ssp::verify::createLintPass() {
  return std::make_unique<LintPass>();
}
std::unique_ptr<VerifyPass> ssp::verify::createSpeculationPass() {
  return std::make_unique<SpeculationPass>();
}
std::unique_ptr<VerifyPass> ssp::verify::createFeedbackPass() {
  return std::make_unique<FeedbackPass>();
}
