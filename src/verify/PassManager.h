//===- verify/PassManager.h - Verification pass pipeline ------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs an ordered pipeline of VerifyPasses over one VerifyContext and
/// collects their diagnostics. Passes that assume structural validity are
/// skipped once an earlier pass reported errors, so the dataflow checks
/// never walk out-of-range block targets.
///
/// The standard pipeline (standardPipeline) is what `ssp-verify`, the
/// post-pass tool and the tests run:
///
///   1. structural        — ir::verifyStructural (well-formedness + the
///                          basic SSP opcode/placement invariants)
///   2. translation       — original-vs-adapted diff (needs Ctx.Orig)
///   3. stub-contract     — stub blocks marshal and spawn, clobber nothing
///   4. slice-dataflow    — live-in completeness, LIB staging, chain
///                          budget/termination, prefetch coverage
///   5. lint              — dead slice code, staging-order hazards, bundle
///                          slot pressure, trigger reachability
///
//===----------------------------------------------------------------------===//

#ifndef SSP_VERIFY_PASSMANAGER_H
#define SSP_VERIFY_PASSMANAGER_H

#include "verify/Pass.h"

#include <memory>
#include <string>
#include <vector>

namespace ssp::verify {

class PassManager {
public:
  PassManager() = default;
  PassManager(PassManager &&) = default;
  PassManager &operator=(PassManager &&) = default;

  /// Appends \p P to the pipeline.
  void add(std::unique_ptr<VerifyPass> P) {
    Passes.push_back(std::move(P));
  }

  /// Runs every pass in order over \p Ctx. Passes with requiresWellFormed()
  /// are skipped once errors have been reported by earlier passes.
  DiagnosticEngine run(const VerifyContext &Ctx) const;

  /// Pass names in pipeline order.
  std::vector<std::string> passNames() const;

  /// The full check pipeline described in the header comment.
  static PassManager standardPipeline();

private:
  std::vector<std::unique_ptr<VerifyPass>> Passes;
};

/// Convenience: builds the standard pipeline and runs it over \p Ctx.
DiagnosticEngine runStandardPipeline(const VerifyContext &Ctx);

} // namespace ssp::verify

#endif // SSP_VERIFY_PASSMANAGER_H
