//===- verify/Manifest.h - Adaptation metadata for validation -------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AdaptationManifest records what the rewriter *planned* to emit for
/// each adapted load: the prefetch address expressions that must appear in
/// the slice, the chain trip budget, and the stub/slice block placement.
/// The verification pipeline diffs this plan against the adapted program,
/// so a codegen bug that silently drops a prefetch or the budget staging is
/// caught even though the emitted program is otherwise well formed.
///
/// The manifest is filled by codegen::rewriteWithSlices from AdaptedLoad
/// data *before* emission and consumed by the verify passes, which re-derive
/// the facts from the emitted instructions independently.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_VERIFY_MANIFEST_H
#define SSP_VERIFY_MANIFEST_H

#include "analysis/SpecDeps.h"
#include "ir/Reg.h"
#include "ir/Stream.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace ssp::verify {

/// The plan for one installed slice (one codegen::AdaptedLoad).
struct SliceManifest {
  /// Function the attachments were appended to.
  uint32_t Func = 0;
  /// Block index of the stub block.
  uint32_t StubBlock = 0;
  /// Block index of the first slice block (the spawn header).
  uint32_t HeaderBlock = 0;
  /// (base register, offset) of every prefetch the slice must emit,
  /// deduplicated exactly as the code generator deduplicates emissions.
  std::vector<std::pair<ir::Reg, int64_t>> PrefetchTargets;
  /// True when the chain is bounded by a LIB-staged trip budget rather
  /// than by the slice's own computed spawn condition.
  bool UsesBudget = false;
  /// The budget value staged via lib.sti when UsesBudget.
  uint64_t TripBudget = 0;
  /// May-dependence edges speculatively dropped for this slice (slicer
  /// membership drops plus scheduler carried-edge drops, sorted and
  /// deduplicated), each with the profile evidence that justified it. The
  /// `speculation.*` verify pass re-derives every entry and rejects drops
  /// without evidence.
  std::vector<analysis::SpecDrop> SpecDrops;

  /// StaticId of the primary delinquent load this slice covers (in the
  /// original binary; preserved in the clone). Joins the slice with
  /// profile attribution records and feedback overrides.
  uint64_t PrimaryLoadSid = 0;
  /// StaticIds of *all* target loads the (combined) slice covers,
  /// sorted and deduplicated — feedback decisions must reach every one,
  /// or a re-adaptation would split the non-directed loads back out into
  /// their own shallow slices.
  std::vector<uint64_t> TargetLoadSids;
  /// Outward steps the region traversal took from the innermost region.
  unsigned RegionDepth = 0;
  /// Inner-loop member emission count the plan was built with, and how
  /// many slice members sit in an inner loop (0: unrolling is a no-op —
  /// the feedback policy's deepen action falls back to the trip budget).
  unsigned InnerUnroll = 0;
  unsigned InnerMembers = 0;
  /// StaticIds of the inserted chk.c instructions, split by role: the
  /// cut-set triggers versus the chain-loop-header restart triggers.
  /// Sorted. These are the keys simulation attribution reports under, so
  /// the feedback loop can fold per-trigger fates back onto this slice.
  std::vector<uint64_t> CutTriggerSids;
  std::vector<uint64_t> RestartTriggerSids;
  /// When the adaptation ran with streams enabled and the slice classified
  /// as a regular pattern, the descriptor the rewriter attached to the
  /// binary. The `stream.*` verify pass re-derives it from the emitted
  /// slice blocks and fails on any disagreement.
  bool HasStream = false;
  ir::StreamDescriptor Stream;
};

/// One ToolOptions::Overrides entry the adaptation ran with, recorded
/// verbatim (a plain mirror of core::LoadOverride — verify/ sits below
/// core/ in the dependency order). The `feedback.*` verify pass audits
/// the emitted plan against these.
struct FeedbackOverrideRecord {
  uint64_t LoadSid = 0;
  bool Drop = false;
  bool NoRestartTrigger = false;
  unsigned MinRegionDepth = 0;
  int TripBudgetLog2 = 0;
  unsigned InnerUnroll = 0;
};

/// Everything the rewriter planned, for one whole adaptation.
struct AdaptationManifest {
  std::vector<SliceManifest> Slices;
  /// Number of chk.c trigger insertions planned.
  unsigned PlannedTriggers = 0;
  /// Feedback directives the tool ran with, sorted by LoadSid (empty
  /// outside closed-loop re-adaptation rounds).
  std::vector<FeedbackOverrideRecord> FeedbackOverrides;
};

} // namespace ssp::verify

#endif // SSP_VERIFY_MANIFEST_H
