//===- verify/Manifest.h - Adaptation metadata for validation -------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AdaptationManifest records what the rewriter *planned* to emit for
/// each adapted load: the prefetch address expressions that must appear in
/// the slice, the chain trip budget, and the stub/slice block placement.
/// The verification pipeline diffs this plan against the adapted program,
/// so a codegen bug that silently drops a prefetch or the budget staging is
/// caught even though the emitted program is otherwise well formed.
///
/// The manifest is filled by codegen::rewriteWithSlices from AdaptedLoad
/// data *before* emission and consumed by the verify passes, which re-derive
/// the facts from the emitted instructions independently.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_VERIFY_MANIFEST_H
#define SSP_VERIFY_MANIFEST_H

#include "analysis/SpecDeps.h"
#include "ir/Reg.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace ssp::verify {

/// The plan for one installed slice (one codegen::AdaptedLoad).
struct SliceManifest {
  /// Function the attachments were appended to.
  uint32_t Func = 0;
  /// Block index of the stub block.
  uint32_t StubBlock = 0;
  /// Block index of the first slice block (the spawn header).
  uint32_t HeaderBlock = 0;
  /// (base register, offset) of every prefetch the slice must emit,
  /// deduplicated exactly as the code generator deduplicates emissions.
  std::vector<std::pair<ir::Reg, int64_t>> PrefetchTargets;
  /// True when the chain is bounded by a LIB-staged trip budget rather
  /// than by the slice's own computed spawn condition.
  bool UsesBudget = false;
  /// The budget value staged via lib.sti when UsesBudget.
  uint64_t TripBudget = 0;
  /// May-dependence edges speculatively dropped for this slice (slicer
  /// membership drops plus scheduler carried-edge drops, sorted and
  /// deduplicated), each with the profile evidence that justified it. The
  /// `speculation.*` verify pass re-derives every entry and rejects drops
  /// without evidence.
  std::vector<analysis::SpecDrop> SpecDrops;
};

/// Everything the rewriter planned, for one whole adaptation.
struct AdaptationManifest {
  std::vector<SliceManifest> Slices;
  /// Number of chk.c trigger insertions planned.
  unsigned PlannedTriggers = 0;
};

} // namespace ssp::verify

#endif // SSP_VERIFY_MANIFEST_H
