//===- verify/Pass.h - Analysis-pass interface for verification -----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VerifyPass is one static check (or family of checks) over an adapted
/// program plus its adaptation metadata. Passes are composed by the
/// PassManager into the standard pipeline: structural well-formedness,
/// translation validation against the original binary, the stub and slice
/// speculation contracts, and the lints.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_VERIFY_PASS_H
#define SSP_VERIFY_PASS_H

#include "verify/Diagnostic.h"
#include "verify/Manifest.h"

namespace ssp::obs {
class Registry;
} // namespace ssp::obs

namespace ssp::verify {

/// Everything a pass may look at. Orig and Manifest are optional: when
/// absent, passes that need them (translation validation, plan diffing)
/// skip silently, so the same pipeline serves `ssp-verify prog.ssp` and
/// the in-tool post-rewrite validation. Metrics, when set, receives
/// per-pass wall times from the PassManager (keys "verify.<pass>_ms").
struct VerifyContext {
  const ir::Program &P;                       ///< The (adapted) program.
  const ir::Program *Orig = nullptr;          ///< Pre-adaptation binary.
  const AdaptationManifest *Manifest = nullptr; ///< Rewriter's plan.
  obs::Registry *Metrics = nullptr;           ///< Optional metrics sink.
  /// The speculation classifier the adaptation pruned with (over the
  /// *original* program's dependence graph). Required by the speculation
  /// pass whenever the manifest records dropped edges; null otherwise.
  const analysis::SpecDeps *Spec = nullptr;
};

/// One verification pass.
class VerifyPass {
public:
  virtual ~VerifyPass() = default;

  /// Stable pass name (shown by `ssp-verify --verbose`).
  virtual const char *name() const = 0;

  /// Runs the pass, reporting findings into \p DE.
  virtual void run(const VerifyContext &Ctx, DiagnosticEngine &DE) = 0;

  /// Passes that walk semantic structure (dataflow, CFG successors) assume
  /// a structurally well-formed program; the manager skips them once an
  /// earlier pass reported errors. The structural pass itself returns
  /// false.
  virtual bool requiresWellFormed() const { return true; }
};

} // namespace ssp::verify

#endif // SSP_VERIFY_PASS_H
