//===- verify/Diagnostic.h - Structured verification diagnostics ----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic vocabulary of the verification subsystem: a Diagnostic is
/// one finding of one check (severity, stable check id, InstRef location,
/// message, optional fix hint), and a DiagnosticEngine accumulates them
/// across the pass pipeline. Text and JSON renderers turn the collected
/// diagnostics into `ssp-verify` output.
///
/// This header is intentionally header-only and depends only on ir/ plus
/// the header-only analysis/InstRef.h, so the structural checker in ssp_ir
/// can emit through the same engine without a library cycle (ssp_verify's
/// compiled passes depend on ssp_analysis which depends on ssp_ir).
///
//===----------------------------------------------------------------------===//

#ifndef SSP_VERIFY_DIAGNOSTIC_H
#define SSP_VERIFY_DIAGNOSTIC_H

#include "analysis/InstRef.h"
#include "ir/Program.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace ssp::verify {

enum class Severity : uint8_t { Error, Warning, Note };

inline const char *severityName(Severity S) {
  switch (S) {
  case Severity::Error:
    return "error";
  case Severity::Warning:
    return "warning";
  case Severity::Note:
    return "note";
  }
  return "unknown";
}

/// Where a diagnostic points. Granularity narrows from program-level (no
/// location) through function and block down to one instruction.
enum class LocKind : uint8_t { Program, Function, Block, Inst };

/// One finding of one check.
struct Diagnostic {
  Severity Sev = Severity::Error;
  /// Stable check identifier (e.g. "slice.livein", "tv.inst-changed").
  /// The catalogue lives in DESIGN.md's "Verification architecture".
  std::string CheckId;
  LocKind Kind = LocKind::Program;
  /// Location; fields beyond the granularity of Kind are zero.
  analysis::InstRef Loc;
  std::string Message;
  /// Optional suggestion for fixing the finding.
  std::string FixHint;

  bool isError() const { return Sev == Severity::Error; }

  /// "fn1:bb5:2"-style location string, trimmed to the location kind.
  std::string locStr() const {
    switch (Kind) {
    case LocKind::Program:
      return "<program>";
    case LocKind::Function:
      return "fn" + std::to_string(Loc.Func);
    case LocKind::Block:
      return "fn" + std::to_string(Loc.Func) + ":bb" +
             std::to_string(Loc.Block);
    case LocKind::Inst:
      return Loc.str();
    }
    return "<?>";
  }
};

/// Accumulates diagnostics across a pass pipeline.
class DiagnosticEngine {
public:
  void report(Diagnostic D) {
    if (D.Sev == Severity::Error)
      ++Errors;
    else if (D.Sev == Severity::Warning)
      ++Warnings;
    Diags.push_back(std::move(D));
  }

  void error(std::string CheckId, const analysis::InstRef &Loc,
             std::string Msg, std::string Hint = "") {
    report({Severity::Error, std::move(CheckId), LocKind::Inst, Loc,
            std::move(Msg), std::move(Hint)});
  }
  void errorInBlock(std::string CheckId, uint32_t Func, uint32_t Block,
                    std::string Msg, std::string Hint = "") {
    report({Severity::Error, std::move(CheckId), LocKind::Block,
            {Func, Block, 0}, std::move(Msg), std::move(Hint)});
  }
  void errorInFunc(std::string CheckId, uint32_t Func, std::string Msg,
                   std::string Hint = "") {
    report({Severity::Error, std::move(CheckId), LocKind::Function,
            {Func, 0, 0}, std::move(Msg), std::move(Hint)});
  }
  void errorInProgram(std::string CheckId, std::string Msg,
                      std::string Hint = "") {
    report({Severity::Error, std::move(CheckId), LocKind::Program, {},
            std::move(Msg), std::move(Hint)});
  }
  void warning(std::string CheckId, const analysis::InstRef &Loc,
               std::string Msg, std::string Hint = "") {
    report({Severity::Warning, std::move(CheckId), LocKind::Inst, Loc,
            std::move(Msg), std::move(Hint)});
  }
  void warningInBlock(std::string CheckId, uint32_t Func, uint32_t Block,
                      std::string Msg, std::string Hint = "") {
    report({Severity::Warning, std::move(CheckId), LocKind::Block,
            {Func, Block, 0}, std::move(Msg), std::move(Hint)});
  }
  void note(std::string CheckId, const analysis::InstRef &Loc,
            std::string Msg) {
    report({Severity::Note, std::move(CheckId), LocKind::Inst, Loc,
            std::move(Msg), ""});
  }
  void noteInFunc(std::string CheckId, uint32_t Func, std::string Msg) {
    report({Severity::Note, std::move(CheckId), LocKind::Function,
            {Func, 0, 0}, std::move(Msg), ""});
  }
  void noteInProgram(std::string CheckId, std::string Msg) {
    report({Severity::Note, std::move(CheckId), LocKind::Program, {},
            std::move(Msg), ""});
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  unsigned errorCount() const { return Errors; }
  unsigned warningCount() const { return Warnings; }
  bool hasErrors() const { return Errors != 0; }

  /// All diagnostics of one severity.
  std::vector<Diagnostic> bySeverity(Severity S) const {
    std::vector<Diagnostic> Out;
    for (const Diagnostic &D : Diags)
      if (D.Sev == S)
        Out.push_back(D);
    return Out;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned Errors = 0;
  unsigned Warnings = 0;
};

/// Renders one diagnostic as a single text line:
///   error[slice.livein] fn1:bb5:2 (in primal_bea_mpp): r7 read before ...
/// When \p P is non-null, the owning function's name is appended.
inline std::string renderText(const Diagnostic &D,
                              const ir::Program *P = nullptr) {
  std::string Out = std::string(severityName(D.Sev)) + "[" + D.CheckId +
                    "] " + D.locStr();
  if (P && D.Kind != LocKind::Program && D.Loc.Func < P->numFuncs())
    Out += " (in " + P->func(D.Loc.Func).getName() + ")";
  Out += ": " + D.Message;
  if (!D.FixHint.empty())
    Out += " [hint: " + D.FixHint + "]";
  return Out;
}

/// Renders every diagnostic, one per line.
inline std::string renderTextAll(const DiagnosticEngine &DE,
                                 const ir::Program *P = nullptr) {
  std::string Out;
  for (const Diagnostic &D : DE.diagnostics())
    Out += renderText(D, P) + "\n";
  return Out;
}

namespace detail {
inline void jsonEscape(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}
} // namespace detail

/// Renders the engine's contents as a JSON document:
///   {"errors":1,"warnings":0,"diagnostics":[{"severity":"error", ...}]}
inline std::string renderJSON(const DiagnosticEngine &DE,
                              const ir::Program *P = nullptr) {
  std::string Out = "{\"errors\":" + std::to_string(DE.errorCount()) +
                    ",\"warnings\":" + std::to_string(DE.warningCount()) +
                    ",\"diagnostics\":[";
  bool First = true;
  for (const Diagnostic &D : DE.diagnostics()) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"severity\":\"";
    Out += severityName(D.Sev);
    Out += "\",\"check\":\"";
    detail::jsonEscape(Out, D.CheckId);
    Out += "\"";
    if (D.Kind != LocKind::Program) {
      Out += ",\"func\":" + std::to_string(D.Loc.Func);
      if (P && D.Loc.Func < P->numFuncs()) {
        Out += ",\"function\":\"";
        detail::jsonEscape(Out, P->func(D.Loc.Func).getName());
        Out += "\"";
      }
    }
    if (D.Kind == LocKind::Block || D.Kind == LocKind::Inst)
      Out += ",\"block\":" + std::to_string(D.Loc.Block);
    if (D.Kind == LocKind::Inst)
      Out += ",\"inst\":" + std::to_string(D.Loc.Inst);
    Out += ",\"message\":\"";
    detail::jsonEscape(Out, D.Message);
    Out += "\"";
    if (!D.FixHint.empty()) {
      Out += ",\"hint\":\"";
      detail::jsonEscape(Out, D.FixHint);
      Out += "\"";
    }
    Out += "}";
  }
  Out += "]}";
  return Out;
}

} // namespace ssp::verify

#endif // SSP_VERIFY_DIAGNOSTIC_H
