//===- verify/Checks.h - The SSP verification passes ----------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factories for the concrete verification passes. Check-id catalogue:
///
///   structural.*          ir::verifyStructural (well-formedness)
///   tv.*                  translation validation against the original
///   stub.*                chk.c recovery-stub contract
///   slice.*               p-slice dataflow: live-ins, LIB staging, chain
///                         termination, prefetch coverage
///   lint.*                warnings: dead slice code, staging order,
///                         bundle slot pressure, trigger reachability
///   speculation.*         speculation-aware dependence drops: every
///                         manifest-recorded dropped may-edge re-derived
///                         against the profile evidence (notes), with
///                         evidence-free or must-dep drops fatal
///   feedback.*            closed-loop re-adaptation directives: drops,
///                         hoists, restart suppression, and unroll
///                         deepening cross-checked against the emitted
///                         plan; trigger-sid records validated so the
///                         attribution->slice join is sound
///   stream.*              attached StreamDescriptors re-derived from the
///                         emitted slice blocks via the same classifier
///                         codegen used; wrong-kind / wrong-stride /
///                         non-covering disagreements are fatal
///
/// The full list with rationale is documented in DESIGN.md under
/// "Verification architecture".
///
//===----------------------------------------------------------------------===//

#ifndef SSP_VERIFY_CHECKS_H
#define SSP_VERIFY_CHECKS_H

#include "verify/Pass.h"

#include <memory>

namespace ssp::verify {

/// Wraps ir::verifyStructural. Runs even on ill-formed programs (it is the
/// pass that decides ill-formedness).
std::unique_ptr<VerifyPass> createStructuralPass();

/// Diffs the adapted program against Ctx.Orig: every original instruction
/// must be preserved in order, and the only permitted body edit is the
/// insertion of chk.c triggers. Skips silently when Ctx.Orig is null.
std::unique_ptr<VerifyPass> createTranslationValidationPass();

/// Stub blocks may only marshal live-ins into the LIB and spawn: any
/// register write would corrupt the interrupted thread across the rfi.
std::unique_ptr<VerifyPass> createStubContractPass();

/// Slice dataflow: every register a p-slice reads is computed in the slice
/// or loaded from the LIB; every LIB slot a spawn target reads is staged on
/// every path to the spawn; chains terminate; planned prefetches are
/// actually emitted.
std::unique_ptr<VerifyPass> createSliceDataflowPass();

/// Warnings-only lints: dead slice results, live-ins staged after the
/// spawn, over-subscribed issue bundles, LIB pressure, unreachable or
/// possibly-uninitialized triggers.
std::unique_ptr<VerifyPass> createLintPass();

/// Audits the manifest's speculatively dropped dependence edges: each one
/// is re-classified via Ctx.Spec and must come out cold with nonzero trip
/// coverage and matching recorded evidence. Every accepted drop is emitted
/// as a `speculation.dropped-edge` note (the speculation audit trail in
/// text and JSON); a drop that is a must-dep, has zero profile coverage,
/// exceeds the threshold, or lacks a classifier is a fatal
/// `speculation.unsupported-drop`. Skips silently when no manifest is
/// present or it records no drops.
std::unique_ptr<VerifyPass> createSpeculationPass();

/// Audits closed-loop feedback directives (ToolOptions::Overrides as
/// recorded in AdaptationManifest::FeedbackOverrides) against the emitted
/// plan: a dropped load must not have a slice, covering slices must honor
/// min-region-depth / no-restart / inner-unroll directives
/// (`feedback.unapplied-override`; a `feedback.override-conflict` warning
/// when a merged slice's primary directive legitimately won), and every
/// recorded trigger sid must resolve to a chk.c aimed at its slice's stub
/// (`feedback.bad-trigger-record`). Honored directives become
/// `feedback.applied-override` notes; directives matching no slice become
/// `feedback.inactive-override` notes. Skips silently when the manifest
/// records no overrides.
std::unique_ptr<VerifyPass> createFeedbackPass();

/// Audits every stream descriptor the adaptation attached (manifest
/// SliceManifest::Stream and the binary's stream directives): the
/// descriptor is re-derived from the emitted slice blocks through
/// analysis::classifyStream, and any disagreement — wrong kind, wrong
/// recurrence, non-covering prefetch set — is a fatal `stream.*` error.
/// With no manifest, the binary's own directives are still checked (the
/// stub's spawn target and lib.sti budget staging recover the inputs).
/// Skips silently when neither records any descriptor.
std::unique_ptr<VerifyPass> createStreamPass();

} // namespace ssp::verify

#endif // SSP_VERIFY_CHECKS_H
