//===- verify/PassManager.cpp - Verification pass pipeline ----------------===//

#include "verify/PassManager.h"

#include "obs/Registry.h"
#include "verify/Checks.h"

using namespace ssp;
using namespace ssp::verify;

DiagnosticEngine PassManager::run(const VerifyContext &Ctx) const {
  DiagnosticEngine DE;
  for (const std::unique_ptr<VerifyPass> &P : Passes) {
    // Semantic passes walk block targets and dataflow; on a structurally
    // broken program they would chase out-of-range indices, so they are
    // skipped once errors exist. The structural pass itself (and any other
    // pass declaring requiresWellFormed() == false) always runs.
    if (P->requiresWellFormed() && DE.hasErrors())
      continue;
    obs::ScopedTimerMs Timer(
        Ctx.Metrics, std::string("verify.") + P->name() + "_ms");
    P->run(Ctx, DE);
  }
  return DE;
}

std::vector<std::string> PassManager::passNames() const {
  std::vector<std::string> Out;
  Out.reserve(Passes.size());
  for (const std::unique_ptr<VerifyPass> &P : Passes)
    Out.push_back(P->name());
  return Out;
}

PassManager PassManager::standardPipeline() {
  PassManager PM;
  PM.add(createStructuralPass());
  PM.add(createTranslationValidationPass());
  PM.add(createStubContractPass());
  PM.add(createSliceDataflowPass());
  PM.add(createLintPass());
  PM.add(createSpeculationPass());
  PM.add(createFeedbackPass());
  PM.add(createStreamPass());
  return PM;
}

DiagnosticEngine ssp::verify::runStandardPipeline(const VerifyContext &Ctx) {
  return PassManager::standardPipeline().run(Ctx);
}
