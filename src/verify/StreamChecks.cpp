//===- verify/StreamChecks.cpp - Stream-descriptor verification -----------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
//
// The `stream.*` pass audits every StreamDescriptor an adaptation attached:
// it rebuilds the classifier input from the *emitted* slice blocks (the
// header's critical sub-slice, the body's compute and prefetch targets),
// re-runs analysis::classifyStream, and fails on any disagreement with the
// attached descriptor — a descriptor that prefetches the wrong stream is
// strictly worse than the full p-slice it replaced. The manifest's copy and
// the binary's stream directive are also cross-checked both ways, so a
// descriptor cannot be silently dropped from (or smuggled into) the binary.
//
// Check ids:
//   stream.wrong-kind        descriptor kind != re-derived kind (fatal)
//   stream.wrong-stride      recurrence fields disagree (fatal)
//   stream.non-covering      slice does not classify, or the prefetch
//                            offsets differ (fatal)
//   stream.missing-descriptor manifest plans a descriptor the binary lacks
//   stream.orphan-descriptor  binary carries a descriptor the plan disowns
//   stream.descriptor         note: one verified descriptor (audit trail)
//
//===----------------------------------------------------------------------===//

#include "verify/Checks.h"

#include "analysis/StreamPatterns.h"
#include "ir/Program.h"

#include <cstdint>
#include <string>

using namespace ssp;
using namespace ssp::ir;
using namespace ssp::verify;

namespace {

std::string describeDescriptor(const StreamDescriptor &D) {
  std::string S = streamKindName(D.Kind);
  switch (D.Kind) {
  case StreamKind::Affine:
    S += " stride=" + std::to_string(D.Stride);
    break;
  case StreamKind::Chase:
    S += " coff=" + std::to_string(D.ChaseOff);
    break;
  case StreamKind::Indirect:
    S += " stride=" + std::to_string(D.Stride) +
         " vshift=" + std::to_string(D.ValShift);
    break;
  }
  S += " depth=" + std::to_string(D.Depth) + " pf=" +
       std::to_string(D.PrefetchOffsets.size());
  return S;
}

/// Classifies the difference between two descriptors bound to the same
/// stub into the check-id taxonomy. Precondition: A != B.
const char *diffCheckId(const StreamDescriptor &A, const StreamDescriptor &B) {
  if (A.Kind != B.Kind)
    return "stream.wrong-kind";
  if (A.PrefetchOffsets != B.PrefetchOffsets ||
      A.PrefetchIndex != B.PrefetchIndex ||
      A.IdxPrefetchOffsets != B.IdxPrefetchOffsets)
    return "stream.non-covering";
  return "stream.wrong-stride";
}

class StreamPass : public VerifyPass {
public:
  const char *name() const override { return "stream"; }

  void run(const VerifyContext &Ctx, DiagnosticEngine &DE) override {
    const Program &P = Ctx.P;
    if (Ctx.Manifest) {
      // Binary descriptors the plan does not claim are smuggled code.
      for (const StreamDescriptor &D : P.streams()) {
        bool Claimed = false;
        for (const SliceManifest &SM : Ctx.Manifest->Slices)
          if (SM.HasStream && SM.Func == D.Func &&
              SM.StubBlock == D.StubBlock) {
            Claimed = true;
            break;
          }
        if (!Claimed)
          DE.errorInBlock("stream.orphan-descriptor", D.Func, D.StubBlock,
                          "binary carries a " + describeDescriptor(D) +
                              " stream descriptor the adaptation manifest "
                              "does not record");
      }
      for (const SliceManifest &SM : Ctx.Manifest->Slices) {
        if (!SM.HasStream)
          continue;
        checkDescriptor(P, SM.Stream, SM.HeaderBlock,
                        clampDepth(SM.TripBudget), /*HaveManifest=*/true,
                        DE);
      }
      return;
    }
    // Standalone `ssp-verify prog.ssp`: no plan, but the binary's own
    // directives are still re-derivable — the header block and the trip
    // budget are read back from the stub (its spawn target and its
    // lib.sti staging).
    for (const StreamDescriptor &D : P.streams())
      checkFromBinary(P, D, DE);
  }

private:
  static uint32_t clampDepth(uint64_t TripBudget) {
    return static_cast<uint32_t>(
        TripBudget > UINT32_MAX ? UINT32_MAX : TripBudget);
  }

  void checkFromBinary(const Program &P, const StreamDescriptor &D,
                       DiagnosticEngine &DE) {
    if (D.Func >= P.numFuncs() ||
        D.StubBlock >= P.func(D.Func).numBlocks()) {
      DE.errorInProgram("stream.orphan-descriptor",
                        "stream descriptor names fn" +
                            std::to_string(D.Func) + ":bb" +
                            std::to_string(D.StubBlock) +
                            ", which does not exist");
      return;
    }
    const Function &F = P.func(D.Func);
    const BasicBlock &Stub = F.block(D.StubBlock);
    uint32_t Header = 0;
    bool HaveHeader = false;
    uint64_t Budget = 0;
    for (const Instruction &I : Stub.Insts) {
      if (I.Op == Opcode::Spawn) {
        Header = I.Target;
        HaveHeader = true;
      } else if (I.Op == Opcode::CopyToLIBI) {
        Budget = static_cast<uint64_t>(I.Imm);
      }
    }
    if (!HaveHeader) {
      DE.errorInBlock("stream.orphan-descriptor", D.Func, D.StubBlock,
                      "stream descriptor's stub block contains no spawn");
      return;
    }
    // Condition-gated chains carry no lib.sti trip budget in the stub;
    // the depth then has no binary-side witness, so the descriptor's own
    // value is used (kind/stride/offsets are still fully re-derived). The
    // manifest path cross-checks depth against the planned trip budget.
    if (Budget == 0)
      Budget = D.Depth;
    checkDescriptor(P, D, Header, clampDepth(Budget),
                    /*HaveManifest=*/false, DE);
  }

  /// Re-derives the descriptor from the emitted slice at (Desc.Func,
  /// header block \p Header) and diffs it against \p Desc. When a manifest
  /// supplied Desc, also diffs the binary's own directive against it.
  void checkDescriptor(const Program &P, const StreamDescriptor &Desc,
                       uint32_t Header, uint32_t Depth, bool HaveManifest,
                       DiagnosticEngine &DE) {
    if (HaveManifest) {
      const StreamDescriptor *BinD = nullptr;
      for (const StreamDescriptor &D : P.streams())
        if (D.Func == Desc.Func && D.StubBlock == Desc.StubBlock) {
          BinD = &D;
          break;
        }
      if (!BinD)
        DE.errorInBlock("stream.missing-descriptor", Desc.Func,
                        Desc.StubBlock,
                        "manifest plans a " + describeDescriptor(Desc) +
                            " stream descriptor but the binary carries "
                            "none for this stub");
      else if (*BinD != Desc)
        DE.errorInBlock(diffCheckId(Desc, *BinD), Desc.Func, Desc.StubBlock,
                        "binary stream directive (" +
                            describeDescriptor(*BinD) +
                            ") disagrees with the manifest descriptor (" +
                            describeDescriptor(Desc) + ")");
    }

    const Function &F = P.func(Desc.Func);
    if (Header + 1 >= F.numBlocks()) {
      DE.errorInBlock("stream.non-covering", Desc.Func, Desc.StubBlock,
                      "descriptor's slice header bb" +
                          std::to_string(Header) +
                          " has no body block to re-derive from");
      return;
    }

    // Rebuild the classifier input exactly as codegen fed it: the header's
    // instructions between the LIB live-in loads and the chain re-staging
    // are the critical sub-slice; the body block's non-prefetch compute is
    // the body; its prefetches are the targets, in emission order.
    analysis::StreamClassifyInput In;
    const BasicBlock &Hdr = F.block(Header);
    size_t Idx = 0;
    while (Idx < Hdr.Insts.size() &&
           Hdr.Insts[Idx].Op == Opcode::CopyFromLIB)
      ++Idx;
    for (; Idx < Hdr.Insts.size(); ++Idx) {
      const Instruction &I = Hdr.Insts[Idx];
      if (I.Op == Opcode::CopyToLIB || I.Op == Opcode::CopyToLIBI ||
          I.Op == Opcode::Br || I.Op == Opcode::Jmp)
        break;
      In.Critical.push_back(I);
    }
    const BasicBlock &Body = F.block(Header + 1);
    for (const Instruction &I : Body.Insts) {
      if (I.Op == Opcode::Prefetch)
        In.Targets.push_back({I.Src1, I.Imm});
      else if (I.Op != Opcode::KillThread && I.Op != Opcode::Jmp &&
               I.Op != Opcode::Br)
        In.Body.push_back(I);
    }
    In.Depth = Depth;

    std::optional<StreamDescriptor> Rederived = analysis::classifyStream(In);
    if (!Rederived) {
      DE.errorInBlock("stream.non-covering", Desc.Func, Desc.StubBlock,
                      "emitted slice does not re-classify as any stream "
                      "pattern, but a " +
                          describeDescriptor(Desc) +
                          " descriptor is attached",
                      "the descriptor would prefetch a stream the slice "
                      "does not compute; fall back to full p-slice replay");
      return;
    }
    Rederived->Func = Desc.Func;
    Rederived->StubBlock = Desc.StubBlock;
    if (*Rederived != Desc) {
      DE.errorInBlock(diffCheckId(*Rederived, Desc), Desc.Func,
                      Desc.StubBlock,
                      "attached descriptor (" + describeDescriptor(Desc) +
                          ") disagrees with the slice's re-derived "
                          "pattern (" + describeDescriptor(*Rederived) +
                          ")");
      return;
    }
    DE.report({Severity::Note, "stream.descriptor", LocKind::Block,
               {Desc.Func, Desc.StubBlock, 0},
               "verified " + describeDescriptor(Desc) +
                   " stream descriptor against the emitted slice",
               ""});
  }
};

} // namespace

std::unique_ptr<VerifyPass> ssp::verify::createStreamPass() {
  return std::make_unique<StreamPass>();
}
