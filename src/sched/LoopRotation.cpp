//===- sched/LoopRotation.cpp - Dependence reduction by loop rotation -----===//

#include "sched/LoopRotation.h"

#include <cassert>

using namespace ssp;
using namespace ssp::sched;

RotationResult
ssp::sched::rotateForMinimalCarried(const SliceDepGraph &G,
                                    const std::vector<unsigned> &Order) {
  unsigned N = static_cast<unsigned>(Order.size());
  RotationResult R;
  R.Order = Order;
  if (N == 0)
    return R;

  // Position of each node in the iteration order.
  std::vector<unsigned> Pos(G.size(), 0);
  for (unsigned I = 0; I < N; ++I)
    Pos[Order[I]] = I;

  // Gather edges as position pairs.
  struct Edge {
    unsigned From, To;
  };
  std::vector<Edge> IntraEdges, CarriedEdges;
  for (unsigned V = 0; V < G.size(); ++V) {
    for (unsigned W : G.intraSuccs()[V])
      IntraEdges.push_back({Pos[V], Pos[W]});
    for (unsigned W : G.carriedSuccs()[V])
      CarriedEdges.push_back({Pos[V], Pos[W]});
  }
  R.CarriedBefore = static_cast<unsigned>(CarriedEdges.size());
  R.CarriedAfter = R.CarriedBefore;

  unsigned BestK = 0;
  unsigned BestConverted = 0;
  for (unsigned K = 1; K < N; ++K) {
    // Legality: no intra edge (a before b) may be split by the boundary,
    // since splitting would turn it into a new loop-carried dependence.
    bool Legal = true;
    for (const Edge &E : IntraEdges) {
      if (E.From < K && K <= E.To) {
        Legal = false;
        break;
      }
    }
    if (!Legal)
      continue;
    // Profit: carried edge (a -> next-iteration b) becomes intra when the
    // rotation places a before b within one iteration: a in the tail part
    // (>= K) and b in the head part (< K).
    unsigned Converted = 0;
    for (const Edge &E : CarriedEdges)
      if (E.From >= K && E.To < K)
        ++Converted;
    if (Converted > BestConverted) {
      BestConverted = Converted;
      BestK = K;
    }
  }

  if (BestK == 0)
    return R; // No profitable legal rotation.

  R.Boundary = BestK;
  R.CarriedAfter = R.CarriedBefore - BestConverted;
  R.Order.clear();
  for (unsigned I = BestK; I < N; ++I)
    R.Order.push_back(Order[I]);
  for (unsigned I = 0; I < BestK; ++I)
    R.Order.push_back(Order[I]);
  return R;
}
