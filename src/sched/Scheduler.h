//===- sched/Scheduler.h - Scheduling slices for SP ------------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The slice scheduling algorithms of Section 3.2. For chaining SP the
/// two-phase scheme of 3.2.1.2 is used: (1) partition the slice dependence
/// graph into strongly connected components, scheduling all instructions
/// of non-degenerate SCCs (dependence cycles, which compute next-iteration
/// live-ins) before the spawn point; (2) list-schedule each part with the
/// forward max-cumulative-cost heuristic, using maximum node height as the
/// priority and lower instruction address as the tie breaker. Dependence
/// reduction (3.2.1.1) runs first: loop rotation and spawn-condition
/// prediction. Basic SP (3.2.2) list-schedules the whole slice ignoring
/// loop-carried dependences.
///
/// The module also implements the slack model:
///   slack_csp(i) = (height(region) - height(critical) - latency(copy+spawn)) * i
///   slack_bsp(i) = (height(region) - height(slice)) * i
/// and the reduced-miss-cycle objective of Section 3.4.1:
///   reduced = sum_i min(miss_cycles_per_iteration, slack(i)).
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SCHED_SCHEDULER_H
#define SSP_SCHED_SCHEDULER_H

#include "sched/SliceDepGraph.h"
#include "slicer/Slicer.h"

#include <cstdint>
#include <vector>

namespace ssp::sched {

/// The two precomputation models of Section 3.2.
enum class SPModel : uint8_t { Chaining, Basic };

inline const char *modelName(SPModel M) {
  return M == SPModel::Chaining ? "chaining" : "basic";
}

struct ScheduleOptions {
  bool EnableLoopRotation = true;
  bool EnableConditionPrediction = true;
  /// Estimated cycles for the spawn itself (context allocation + restart).
  unsigned SpawnOverheadBase = 4;
  /// Estimated cycles per live-in LIB copy.
  unsigned CopyLatency = 2;
  /// Estimated main-thread cost of one chk.c exception (pipeline flush +
  /// stub + rfi). Basic SP inside a loop pays it every iteration.
  unsigned TriggerOverhead = 24;
};

/// A fully scheduled slice ready for code generation.
struct ScheduledSlice {
  SPModel Model = SPModel::Chaining;

  /// Chaining: instructions before the spawn point (the critical
  /// sub-slice), in issue order. Empty for basic SP.
  std::vector<analysis::InstRef> Critical;

  /// Instructions after the spawn point (chaining) or the whole slice
  /// body (basic), in issue order.
  std::vector<analysis::InstRef> NonCritical;

  /// Slice members outside the chain loop (region-based slicing climbed
  /// past the loop): executed once by a prologue thread that computes the
  /// chain's initial live-ins and spawns the first chain link. Example:
  /// health's `head = village->patients` runs in the prologue; the chain
  /// then walks the list. Empty when the region is the loop itself.
  std::vector<analysis::InstRef> Prologue;

  /// Chain members that belong to a loop nested inside the chain loop (or
  /// to a loop in a callee): the code generator unrolls these within the
  /// emitted straight-line slice so the speculative thread walks several
  /// inner-loop steps (e.g. mst's collision chain) per chain link.
  std::vector<analysis::InstRef> InnerLoopMembers;

  /// Live-in registers that the chain redefines: the chaining thread must
  /// pass their updated values to the next thread through the LIB.
  std::vector<ir::Reg> CarriedRegs;

  /// Registers live into the slice as a whole (copied to the LIB by the
  /// stub at the trigger).
  std::vector<ir::Reg> LiveIns;

  /// Registers live into one chain link (== LiveIns when there is no
  /// prologue; otherwise the prologue stages these).
  std::vector<ir::Reg> ChainLiveIns;

  /// Spawn-condition handling. When a condition branch exists and is not
  /// predicted, the next chaining thread is spawned only if the predicate
  /// holds. When predicted (its computation is load-dependent or too
  /// deep), the chain instead runs on a trip-count budget passed through
  /// the LIB (the concrete realization of Section 3.2.1.1's condition
  /// prediction: the predictable "loop continues" outcome replaces the
  /// computed condition, with the profile-derived budget bounding the
  /// speculation).
  bool HasConditionBranch = false;
  analysis::InstRef ConditionBranch;
  bool PredictCondition = false;

  /// Average trips of the chain loop per region entry (profile-derived);
  /// 1.0 when there is no chain loop.
  double ChainTripCount = 1.0;

  uint64_t RegionHeight = 0;
  uint64_t SliceHeight = 0;
  uint64_t CriticalHeight = 0;
  uint64_t SlackPerIteration = 0;
  double AvailableILP = 1.0;
  unsigned RotationBoundary = 0;
  unsigned CarriedEdgesBefore = 0;
  unsigned CarriedEdgesAfter = 0;

  /// Loop-carried data edges the scheduler's dependence graphs dropped on
  /// profile evidence (sorted, deduplicated). Unioned with the slice's own
  /// drops in the adaptation manifest for the `speculation.*` verify pass.
  std::vector<analysis::SpecDrop> SpecDrops;
};

/// Schedules slices against a region and model.
class SliceScheduler {
public:
  /// \p Spec, when non-null and enabled, drops cold loop-carried data
  /// edges from the slice dependence graphs (never from region graphs).
  SliceScheduler(const analysis::ProgramDeps &Deps,
                 const analysis::RegionGraph &RG,
                 const profile::ProfileData &PD,
                 ScheduleOptions Opts = ScheduleOptions(),
                 const analysis::SpecDeps *Spec = nullptr);

  /// Produces the schedule of \p S under \p Model. The region must be the
  /// slice's region. Chaining on a non-loop region degrades to basic.
  ScheduledSlice schedule(const slicer::Slice &S, SPModel Model);

  /// Section 3.4.1: reduced miss cycles over \p TripCount iterations with
  /// linear slack growth \p SlackPerIter and per-iteration miss cost
  /// \p MissPerIter.
  static uint64_t reducedMissCycles(uint64_t SlackPerIter,
                                    uint64_t MissPerIter, double TripCount);

  /// The expected execution length of one region instance on the main
  /// thread (per loop iteration for loop regions, per invocation for
  /// procedure regions), from profile-weighted instruction latencies. The
  /// slack model uses max(dependence height, schedule length), matching
  /// Section 3.3's "length of program schedule in the main thread".
  uint64_t regionScheduleLength(int RegionIdx);

  /// Forces the per-function call-cost table now. Call once before handing
  /// copies of this scheduler to worker threads: copies share the warmed
  /// table and never race to build it.
  void ensureCallCosts() { (void)callCosts(); }

private:
  std::vector<unsigned>
  listSchedule(const SliceDepGraph &G, const std::vector<uint64_t> &Heights,
               const std::vector<unsigned> &Subset) const;

  /// Profile-derived per-invocation length of each function (one
  /// refinement pass over the flat call estimate), used as the call cost
  /// in region heights/lengths.
  const std::vector<uint32_t> &callCosts();
  std::vector<uint32_t> CallCostCache;
  bool CallCostsReady = false;

  const analysis::ProgramDeps &Deps;
  const analysis::RegionGraph &RG;
  const profile::ProfileData &PD;
  ScheduleOptions Opts;
  const analysis::SpecDeps *Spec;
};

} // namespace ssp::sched

#endif // SSP_SCHED_SCHEDULER_H
