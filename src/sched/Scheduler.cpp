//===- sched/Scheduler.cpp - Scheduling slices for SP ----------------------===//

#include "sched/Scheduler.h"

#include "analysis/SCC.h"
#include "sched/LoopRotation.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace ssp;
using namespace ssp::sched;
using namespace ssp::analysis;
using namespace ssp::ir;

SliceScheduler::SliceScheduler(const ProgramDeps &Deps, const RegionGraph &RG,
                               const profile::ProfileData &PD,
                               ScheduleOptions Opts, const SpecDeps *Spec)
    : Deps(Deps), RG(RG), PD(PD), Opts(Opts), Spec(Spec) {}

uint64_t SliceScheduler::reducedMissCycles(uint64_t SlackPerIter,
                                           uint64_t MissPerIter,
                                           double TripCount) {
  if (MissPerIter == 0 || TripCount <= 0)
    return 0;
  uint64_t T = static_cast<uint64_t>(TripCount);
  if (T == 0)
    T = 1;
  if (SlackPerIter == 0)
    return 0;
  // slack(i) = SlackPerIter * i saturates at MissPerIter once
  // i >= MissPerIter / SlackPerIter.
  uint64_t K = std::min<uint64_t>(T, MissPerIter / SlackPerIter);
  uint64_t Ramp = SlackPerIter * (K * (K + 1) / 2);
  uint64_t Flat = (T - K) * MissPerIter;
  return Ramp + Flat;
}

std::vector<unsigned>
SliceScheduler::listSchedule(const SliceDepGraph &G,
                             const std::vector<uint64_t> &Heights,
                             const std::vector<unsigned> &Subset) const {
  // Forward cycle scheduling with the maximum-cumulative-cost heuristic:
  // repeatedly issue the ready node of greatest height; ties go to the
  // lower instruction address (Section 3.2.1.2.2). Loop-carried edges are
  // ignored ("instructions within each non-degenerate SCC are list
  // scheduled by ignoring all the loop-carried dependence edges").
  std::set<unsigned> Remaining(Subset.begin(), Subset.end());
  std::vector<unsigned> Order;
  Order.reserve(Subset.size());

  // Predecessor counts restricted to the subset, intra edges only.
  std::vector<unsigned> PredCount(G.size(), 0);
  for (unsigned V : Subset)
    for (unsigned W : G.intraSuccs()[V])
      if (Remaining.count(W))
        ++PredCount[W];

  std::vector<unsigned> Ready;
  for (unsigned V : Subset)
    if (PredCount[V] == 0)
      Ready.push_back(V);

  while (!Ready.empty()) {
    // Pick max height; tie-break on InstRef (lower address first).
    unsigned BestIdx = 0;
    for (unsigned I = 1; I < Ready.size(); ++I) {
      unsigned A = Ready[I], B = Ready[BestIdx];
      if (Heights[A] > Heights[B] ||
          (Heights[A] == Heights[B] && G.node(A).Ref < G.node(B).Ref))
        BestIdx = I;
    }
    unsigned V = Ready[BestIdx];
    Ready.erase(Ready.begin() + BestIdx);
    Remaining.erase(V);
    Order.push_back(V);
    for (unsigned W : G.intraSuccs()[V]) {
      if (!Remaining.count(W))
        continue;
      if (--PredCount[W] == 0)
        Ready.push_back(W);
    }
  }
  // Any nodes left unscheduled would indicate an intra cycle; append them
  // in reference order as a safety net.
  for (unsigned V : Remaining)
    Order.push_back(V);
  return Order;
}

const std::vector<uint32_t> &SliceScheduler::callCosts() {
  if (CallCostsReady)
    return CallCostCache;
  const Program &P = Deps.program();
  // Pass 1 uses the flat estimate (CallCostCache empty); pass 2 refines
  // call costs with the pass-1 per-invocation lengths. Clamped so that
  // deep recursion cannot blow the estimates up.
  for (int Pass = 0; Pass < 2; ++Pass) {
    std::vector<uint32_t> Next(P.numFuncs(), 0);
    for (uint32_t FI = 0; FI < P.numFuncs(); ++FI) {
      uint64_t Len =
          regionScheduleLength(RG.procedureRegion(FI));
      Next[FI] = static_cast<uint32_t>(
          std::min<uint64_t>(Len, 5000));
    }
    CallCostCache = std::move(Next);
  }
  CallCostsReady = true;
  return CallCostCache;
}

uint64_t SliceScheduler::regionScheduleLength(int RegionIdx) {
  const Region &R = RG.region(RegionIdx);
  const Program &P = Deps.program();
  uint64_t Invocations;
  if (R.Kind == RegionKind::Loop) {
    const Loop &L = Deps.forFunction(R.Func).loops().loop(R.LoopIdx);
    Invocations = PD.blockCount(R.Func, L.Header);
  } else {
    Invocations = PD.blockCount(R.Func, Deps.forFunction(R.Func)
                                            .cfg()
                                            .entry());
  }
  if (Invocations == 0)
    return 0;
  uint64_t Total = 0;
  for (const InstRef &I : regionInstructions(RG, RegionIdx, Deps)) {
    const Instruction &Inst = I.get(P);
    uint64_t Lat;
    if (isLoad(Inst.Op))
      Lat = profiledLoadLatency(P, I, PD);
    else if (Inst.Op == Opcode::Call || Inst.Op == Opcode::CallInd) {
      Lat = CallLatencyEstimate;
      if (Inst.Op == Opcode::Call && Inst.Target < CallCostCache.size() &&
          CallCostCache[Inst.Target] > 0)
        Lat = CallCostCache[Inst.Target];
    } else
      Lat = latencyOf(Inst.Op);
    Total += PD.blockCount(I.Func, I.Block) * Lat;
  }
  return Total / Invocations;
}

ScheduledSlice SliceScheduler::schedule(const slicer::Slice &S,
                                        SPModel Model) {
  ScheduledSlice Out;
  Out.LiveIns = S.LiveIns;
  const Program &P = Deps.program();
  const Region &R = RG.region(S.RegionIdx);

  // The chain loop: the iteration structure the do-across prefetching loop
  // follows. For loop regions it is the region itself; for procedure
  // regions (region-based slicing climbed past the loop) it is the
  // innermost loop containing the delinquent load.
  const Loop *ChainLoop = nullptr;
  uint32_t ChainFunc = 0;
  if (R.Kind == RegionKind::Loop) {
    ChainLoop = &Deps.forFunction(R.Func).loops().loop(R.LoopIdx);
    ChainFunc = R.Func;
  } else {
    const FunctionDeps &LFD = Deps.forFunction(S.PrimaryLoad.Func);
    int LI = LFD.loops().innermostLoopOf(S.PrimaryLoad.Block);
    if (LI >= 0) {
      ChainLoop = &LFD.loops().loop(LI);
      ChainFunc = S.PrimaryLoad.Func;
    }
  }
  if (!ChainLoop && Model == SPModel::Chaining)
    Model = SPModel::Basic; // Chaining needs an iteration structure.
  Out.Model = Model;

  // Region height/schedule length for the slack model.
  const Loop *RegionLoop =
      R.Kind == RegionKind::Loop
          ? &Deps.forFunction(R.Func).loops().loop(R.LoopIdx)
          : nullptr;
  const std::vector<uint32_t> &Costs = callCosts();
  SliceDepGraph RegionG =
      SliceDepGraph::build(Deps, regionInstructions(RG, S.RegionIdx, Deps),
                           RegionLoop, R.Func, PD, /*PessimisticLoads=*/false,
                           &Costs);
  Out.RegionHeight =
      std::max(RegionG.height(), regionScheduleLength(S.RegionIdx));

  if (ChainLoop)
    Out.ChainTripCount = PD.tripCountOf(
        ChainFunc, *ChainLoop, /*Fallback=*/1.0);

  // The working member set (may shrink under condition prediction).
  std::vector<InstRef> Members = S.Insts;
  SliceDepGraph G = SliceDepGraph::build(Deps, Members, ChainLoop,
                                         ChainFunc, PD,
                                         /*PessimisticLoads=*/true,
                                         /*CallCosts=*/nullptr, Spec,
                                         &Out.SpecDrops);

  auto FindConditionBranch = [&]() {
    Out.HasConditionBranch = false;
    if (!ChainLoop)
      return;
    for (unsigned V = 0; V < G.size(); ++V) {
      const InstRef &Ref = G.node(V).Ref;
      const Instruction &I = Ref.get(P);
      if (I.Op == Opcode::Br && Ref.Func == ChainFunc &&
          I.Target == ChainLoop->Header) {
        Out.HasConditionBranch = true;
        Out.ConditionBranch = Ref;
        return;
      }
    }
  };
  FindConditionBranch();

  // --- Dependence reduction 2 (Section 3.2.1.1): condition prediction. ---
  // When the spawn condition's computation is load-dependent, predict it:
  // the chain runs on a LIB trip budget and the condition-only chain is
  // pruned from the slice (keeping only what the prefetch addresses need).
  if (Model == SPModel::Chaining && Out.HasConditionBranch &&
      Opts.EnableConditionPrediction) {
    int BranchIdx = G.indexOf(Out.ConditionBranch);
    assert(BranchIdx >= 0);
    std::vector<std::vector<unsigned>> RevAll(G.size());
    for (unsigned V = 0; V < G.size(); ++V) {
      for (unsigned W : G.intraSuccs()[V])
        RevAll[W].push_back(V);
      for (unsigned W : G.carriedSuccs()[V])
        RevAll[W].push_back(V);
    }
    std::set<unsigned> CondChain;
    std::vector<unsigned> Work{static_cast<unsigned>(BranchIdx)};
    while (!Work.empty()) {
      unsigned V = Work.back();
      Work.pop_back();
      if (!CondChain.insert(V).second)
        continue;
      for (unsigned W : RevAll[V])
        Work.push_back(W);
    }
    bool LoadDependent = false;
    for (unsigned V : CondChain)
      if (isLoad(G.node(V).Ref.get(P).Op))
        LoadDependent = true;

    if (LoadDependent) {
      Out.PredictCondition = true;
      // Keep-closure over *data* producers only, seeded by the slice's
      // loads (they are the prefetch engine) and by the producers of the
      // target addresses; everything else existed only to compute the
      // now-predicted condition.
      std::set<InstRef> MemberSet(Members.begin(), Members.end());
      std::set<Reg> TargetBases;
      for (const InstRef &T : S.TargetLoads)
        TargetBases.insert(T.get(P).Src1);
      std::set<InstRef> Keep;
      std::vector<InstRef> KWork;
      for (const InstRef &M : Members) {
        const Instruction &I = M.get(P);
        Reg D = I.def();
        if (isLoad(I.Op) || (D.isValid() && TargetBases.count(D)))
          KWork.push_back(M);
      }
      while (!KWork.empty()) {
        InstRef M = KWork.back();
        KWork.pop_back();
        if (!Keep.insert(M).second)
          continue;
        const FunctionDeps &FD = Deps.forFunction(M.Func);
        for (const InstRef &Prod : FD.dataSources(M))
          if (MemberSet.count(Prod))
            KWork.push_back(Prod);
      }
      // Prologue members always survive (they seed the chain live-ins).
      for (const InstRef &M : Members)
        if (ChainLoop && M.Func == ChainFunc &&
            !ChainLoop->contains(M.Block))
          Keep.insert(M);

      if (Keep.size() < Members.size()) {
        std::vector<InstRef> Pruned;
        for (const InstRef &M : Members)
          if (Keep.count(M))
            Pruned.push_back(M);
        Members = std::move(Pruned);
        G = SliceDepGraph::build(Deps, Members, ChainLoop, ChainFunc, PD,
                                 /*PessimisticLoads=*/true,
                                 /*CallCosts=*/nullptr, Spec,
                                 &Out.SpecDrops);
      }
    }
  }

  // Both graph builds above may have recorded the same dropped edge.
  std::sort(Out.SpecDrops.begin(), Out.SpecDrops.end());
  Out.SpecDrops.erase(
      std::unique(Out.SpecDrops.begin(), Out.SpecDrops.end()),
      Out.SpecDrops.end());

  Out.SliceHeight = G.height();
  Out.AvailableILP = G.availableILP();
  std::vector<uint64_t> Heights = G.nodeHeights();

  // Partition: prologue = members in the chain function but outside the
  // chain loop; chain = members in the loop plus members reached through
  // calls (other functions, dynamically inside the iteration).
  std::vector<unsigned> ChainIdx, PrologueIdx;
  std::vector<uint8_t> IsChain(G.size(), 1);
  for (unsigned V = 0; V < G.size(); ++V) {
    const InstRef &Ref = G.node(V).Ref;
    if (ChainLoop && Ref.Func == ChainFunc &&
        !ChainLoop->contains(Ref.Block))
      IsChain[V] = 0;
    (IsChain[V] ? ChainIdx : PrologueIdx).push_back(V);
  }

  // Chain live-ins: registers chain members read whose values come from
  // the prologue or from outside the slice.
  {
    std::set<Reg> DefsPro, SliceLive(S.LiveIns.begin(), S.LiveIns.end());
    for (unsigned V : PrologueIdx) {
      Reg D = G.node(V).Ref.get(P).def();
      if (D.isValid())
        DefsPro.insert(D);
    }
    std::set<Reg> ChainLive;
    for (unsigned V : ChainIdx) {
      G.node(V).Ref.get(P).forEachUse([&](Reg U) {
        if (DefsPro.count(U) || SliceLive.count(U))
          ChainLive.insert(U);
      });
    }
    // The prefetch targets' base registers must also flow to the chain.
    for (const InstRef &T : S.TargetLoads) {
      Reg Base = T.get(P).Src1;
      if (DefsPro.count(Base) || SliceLive.count(Base))
        ChainLive.insert(Base);
    }
    Out.ChainLiveIns.assign(ChainLive.begin(), ChainLive.end());
  }

  // Carried registers: chain live-ins the chain itself redefines (their
  // updated values are the next chaining thread's live-ins).
  {
    std::set<Reg> ChainLive(Out.ChainLiveIns.begin(),
                            Out.ChainLiveIns.end());
    std::set<Reg> Defined;
    for (unsigned V : ChainIdx) {
      Reg D = G.node(V).Ref.get(P).def();
      if (D.isValid() && ChainLive.count(D))
        Defined.insert(D);
    }
    Out.CarriedRegs.assign(Defined.begin(), Defined.end());
  }

  // Inner-loop members: chain members sitting in a loop that is not the
  // chain loop (a nested loop, or any loop of a callee function).
  {
    std::set<InstRef> Inner;
    for (unsigned V : ChainIdx) {
      const InstRef &Ref = G.node(V).Ref;
      const FunctionDeps &FD = Deps.forFunction(Ref.Func);
      int LI = FD.loops().innermostLoopOf(Ref.Block);
      if (LI < 0)
        continue;
      const Loop *L = &FD.loops().loop(LI);
      if (ChainLoop && Ref.Func == ChainFunc &&
          L->Header == ChainLoop->Header)
        continue;
      Inner.insert(Ref);
    }
    Out.InnerLoopMembers.assign(Inner.begin(), Inner.end());
  }

  if (Model == SPModel::Basic) {
    // Whole slice list-scheduled, carried edges ignored. Producers are
    // ordered before consumers, so the prologue naturally comes first.
    std::vector<unsigned> All(G.size());
    for (unsigned I = 0; I < G.size(); ++I)
      All[I] = I;
    for (unsigned V : listSchedule(G, Heights, All))
      Out.NonCritical.push_back(G.node(V).Ref);
    if (Out.ChainLiveIns.empty())
      Out.ChainLiveIns = S.LiveIns;
    uint64_t H = Out.SliceHeight;
    // Basic SP on a loop region triggers every iteration: the chk.c
    // exception cost lands on the main thread and eats into the slack.
    if (R.Kind == RegionKind::Loop)
      H += Opts.TriggerOverhead;
    Out.SlackPerIteration = Out.RegionHeight > H ? Out.RegionHeight - H : 0;
    return Out;
  }

  // --- Chaining SP ---
  // Dependence reduction 1: loop rotation over the chain iteration order.
  if (Opts.EnableLoopRotation && !ChainIdx.empty()) {
    RotationResult Rot = rotateForMinimalCarried(G, ChainIdx);
    ChainIdx = Rot.Order;
    Out.RotationBoundary = Rot.Boundary;
    Out.CarriedEdgesBefore = Rot.CarriedBefore;
    Out.CarriedEdgesAfter = Rot.CarriedAfter;
  }

  // SCC partition over intra + carried edges among chain members
  // (Section 3.2.1.2.1).
  std::vector<std::vector<unsigned>> AllEdges(G.size());
  for (unsigned V = 0; V < G.size(); ++V) {
    if (!IsChain[V])
      continue;
    for (unsigned W : G.intraSuccs()[V])
      if (IsChain[W])
        AllEdges[V].push_back(W);
    for (unsigned W : G.carriedSuccs()[V])
      if (IsChain[W])
        AllEdges[V].push_back(W);
  }
  std::vector<std::vector<unsigned>> Comps =
      stronglyConnectedComponents(static_cast<unsigned>(G.size()), AllEdges);

  // Seed the critical sub-slice from the non-degenerate SCCs that carry
  // next-iteration live-ins. Dependence cycles internal to a *nested*
  // loop (e.g. a collision-chain walk inside the chain iteration) form
  // SCCs too, but they produce nothing the next chaining thread consumes,
  // so including them would serialize the chain for no benefit.
  std::set<Reg> CarriedSet(Out.CarriedRegs.begin(), Out.CarriedRegs.end());
  auto DefinesCarried = [&](unsigned V) {
    Reg D = G.node(V).Ref.get(P).def();
    return D.isValid() && CarriedSet.count(D);
  };
  std::set<unsigned> CriticalSet;
  for (const std::vector<unsigned> &C : Comps) {
    if (C.size() == 1 && !IsChain[C[0]])
      continue;
    bool NonDegenerate = C.size() > 1;
    if (C.size() == 1) {
      unsigned V = C[0];
      for (unsigned W : G.carriedSuccs()[V])
        if (W == V)
          NonDegenerate = true; // Self cycle, e.g. arc = arc + k.
    }
    if (!NonDegenerate)
      continue;
    bool CarriesLiveIns = false;
    for (unsigned V : C)
      if (DefinesCarried(V))
        CarriesLiveIns = true;
    if (CarriesLiveIns)
      CriticalSet.insert(C.begin(), C.end());
  }

  // The defs of carried registers must reach the spawn point.
  for (unsigned V : ChainIdx)
    if (DefinesCarried(V))
      CriticalSet.insert(V);

  // An unpredicted spawn condition must be computed before the spawn.
  std::vector<std::vector<unsigned>> RevIntra(G.size());
  for (unsigned V = 0; V < G.size(); ++V)
    for (unsigned W : G.intraSuccs()[V])
      RevIntra[W].push_back(V);

  if (Out.HasConditionBranch && !Out.PredictCondition) {
    int BranchIdx = G.indexOf(Out.ConditionBranch);
    if (BranchIdx >= 0) {
      std::set<unsigned> Chain;
      std::vector<unsigned> Work{static_cast<unsigned>(BranchIdx)};
      while (!Work.empty()) {
        unsigned V = Work.back();
        Work.pop_back();
        if (!Chain.insert(V).second)
          continue;
        for (unsigned W : RevIntra[V])
          if (IsChain[W])
            Work.push_back(W);
      }
      CriticalSet.insert(Chain.begin(), Chain.end());
    }
  }

  // Close the critical set backward over intra edges within the chain.
  {
    std::vector<unsigned> Work(CriticalSet.begin(), CriticalSet.end());
    while (!Work.empty()) {
      unsigned V = Work.back();
      Work.pop_back();
      for (unsigned W : RevIntra[V])
        if (IsChain[W] && CriticalSet.insert(W).second)
          Work.push_back(W);
    }
  }

  std::vector<unsigned> CriticalVec, Rest;
  for (unsigned V : ChainIdx) {
    if (CriticalSet.count(V))
      CriticalVec.push_back(V);
    else
      Rest.push_back(V);
  }

  for (unsigned V : listSchedule(G, Heights, PrologueIdx))
    Out.Prologue.push_back(G.node(V).Ref);
  for (unsigned V : listSchedule(G, Heights, CriticalVec))
    Out.Critical.push_back(G.node(V).Ref);
  for (unsigned V : listSchedule(G, Heights, Rest))
    Out.NonCritical.push_back(G.node(V).Ref);

  // Critical height: longest intra path within the critical subgraph.
  {
    std::vector<uint64_t> H(G.size(), 0);
    std::vector<unsigned> SchedOrder = listSchedule(G, Heights, CriticalVec);
    for (auto It = SchedOrder.rbegin(); It != SchedOrder.rend(); ++It) {
      unsigned V = *It;
      uint64_t Best = 0;
      for (unsigned W : G.intraSuccs()[V])
        if (CriticalSet.count(W))
          Best = std::max(Best, H[W]);
      H[V] = Best + G.node(V).Latency;
    }
    for (unsigned V : CriticalVec)
      Out.CriticalHeight = std::max(Out.CriticalHeight, H[V]);
  }

  uint64_t Overhead =
      Opts.SpawnOverheadBase +
      Opts.CopyLatency * static_cast<unsigned>(Out.ChainLiveIns.size());
  uint64_t Consumed = Out.CriticalHeight + Overhead;
  Out.SlackPerIteration =
      Out.RegionHeight > Consumed ? Out.RegionHeight - Consumed : 0;
  return Out;
}
