//===- sched/LoopRotation.h - Dependence reduction by loop rotation -------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop rotation for dependence reduction (Section 3.2.1.1): shifting the
/// slice loop's boundary converts backward loop-carried dependences (from
/// the bottom of one iteration to the top of the next) into true
/// intra-iteration dependences, exposing parallelism across chaining
/// threads. The greedy algorithm picks the boundary converting the most
/// carried edges, subject to the paper's constraint that the new boundary
/// introduces no new loop-carried dependences.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SCHED_LOOPROTATION_H
#define SSP_SCHED_LOOPROTATION_H

#include "sched/SliceDepGraph.h"

#include <cstdint>
#include <vector>

namespace ssp::sched {

/// Result of a rotation search over a dependence graph whose nodes are in
/// iteration order.
struct RotationResult {
  unsigned Boundary = 0; ///< New first node (0 = no rotation).
  unsigned CarriedBefore = 0;
  unsigned CarriedAfter = 0;
  std::vector<unsigned> Order; ///< Node indices in the rotated order.
};

/// Finds the best rotation boundary for \p G given iteration order
/// \p Order (node indices, original boundary first). A boundary k is legal
/// iff it splits no intra edge (that would create a new carried
/// dependence); among legal boundaries the one converting the most carried
/// edges into intra edges wins.
RotationResult rotateForMinimalCarried(const SliceDepGraph &G,
                                       const std::vector<unsigned> &Order);

} // namespace ssp::sched

#endif // SSP_SCHED_LOOPROTATION_H
