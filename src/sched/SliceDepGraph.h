//===- sched/SliceDepGraph.h - Latency-annotated dependence graphs --------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The latency-annotated dependence graph the scheduling algorithms of
/// Section 3.2 operate on: nodes are instructions (of a slice or of a whole
/// region), annotated with latencies (cache-profiled average latency for
/// loads, machine-model latency otherwise; "the latency of a memory
/// operation is determined by cache profiling, and the machine model
/// provides latency estimates for other instructions"). Edges are flow and
/// control dependences classified as intra-iteration or loop-carried with
/// respect to a loop region.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SCHED_SLICEDEPGRAPH_H
#define SSP_SCHED_SLICEDEPGRAPH_H

#include "analysis/DependenceGraph.h"
#include "analysis/RegionGraph.h"
#include "analysis/SpecDeps.h"
#include "profile/Profile.h"

#include <cstdint>
#include <vector>

namespace ssp::sched {

/// Latency charged to call instructions when computing region heights (a
/// stand-in for interprocedural height analysis; see SliceDepGraph::build).
inline constexpr uint32_t CallLatencyEstimate = 100;

/// Latency assumed for loads inside a *slice* graph: a p-slice runs ahead
/// of the main thread, so its loads miss even where the profiled (main
/// thread) latency was a hit — the profile reflects lines already fetched
/// by earlier main-thread work that the speculative thread will not have.
inline constexpr uint32_t AssumedColdLoadLatency = 232;

/// One node of the dependence graph.
struct DepNode {
  analysis::InstRef Ref;
  uint32_t Latency = 1;
};

/// A dependence graph over an instruction set, with intra-iteration and
/// loop-carried adjacency kept separately.
class SliceDepGraph {
public:
  /// Builds the graph over \p Insts. \p L (nullable) is the loop used for
  /// carried/intra classification; without it every edge is intra. With
  /// \p PessimisticLoads, load latencies are at least
  /// AssumedColdLoadLatency (used for slice graphs; region graphs model
  /// the main thread and use profiled latencies).
  /// \p CallCosts (nullable) gives a per-callee latency estimate for call
  /// instructions, overriding the flat CallLatencyEstimate.
  /// \p Spec (nullable) enables speculation-aware classification: a
  /// loop-carried *data* edge the classifier calls cold is omitted from
  /// the graph entirely (shrinking the critical pre-spawn partition) and
  /// recorded in \p Drops. Control and intra-iteration edges are never
  /// pruned. Region graphs must pass null — they model the main thread.
  static SliceDepGraph build(const analysis::ProgramDeps &Deps,
                             const std::vector<analysis::InstRef> &Insts,
                             const analysis::Loop *L, uint32_t LoopFunc,
                             const profile::ProfileData &PD,
                             bool PessimisticLoads = false,
                             const std::vector<uint32_t> *CallCosts =
                                 nullptr,
                             const analysis::SpecDeps *Spec = nullptr,
                             std::vector<analysis::SpecDrop> *Drops =
                                 nullptr);

  size_t size() const { return Nodes.size(); }
  const DepNode &node(unsigned I) const { return Nodes[I]; }
  const std::vector<DepNode> &nodes() const { return Nodes; }

  /// Forward intra-iteration adjacency (producer -> consumer).
  const std::vector<std::vector<unsigned>> &intraSuccs() const {
    return Intra;
  }
  /// Forward loop-carried adjacency (producer -> next-iteration consumer).
  const std::vector<std::vector<unsigned>> &carriedSuccs() const {
    return Carried;
  }

  /// Index of \p Ref in the node table, or -1.
  int indexOf(const analysis::InstRef &Ref) const;

  /// Longest latency path from each node to any leaf over intra edges
  /// (the "maximum node height" priority of Section 3.2.1.2.2).
  std::vector<uint64_t> nodeHeights() const;

  /// Height of the whole graph: max over node heights.
  uint64_t height() const;

  /// Sum of all node latencies.
  uint64_t totalLatency() const;

  /// Available ILP as defined in Section 3.2.1.2.2: total latency divided
  /// by the critical path length (1.0 when empty).
  double availableILP() const;

private:
  std::vector<DepNode> Nodes;
  std::vector<std::vector<unsigned>> Intra;
  std::vector<std::vector<unsigned>> Carried;
};

/// All instructions of a region (the loop body, or the whole function for
/// procedure regions), in layout order.
std::vector<analysis::InstRef>
regionInstructions(const analysis::RegionGraph &RG, int RegionIdx,
                   const analysis::ProgramDeps &Deps);

/// Average access latency of the static load at \p Ref according to the
/// cache profile, or the L1 latency if unprofiled.
uint32_t profiledLoadLatency(const ir::Program &P,
                             const analysis::InstRef &Ref,
                             const profile::ProfileData &PD);

} // namespace ssp::sched

#endif // SSP_SCHED_SLICEDEPGRAPH_H
