//===- sched/SliceDepGraph.cpp - Latency-annotated dependence graphs ------===//

#include "sched/SliceDepGraph.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace ssp;
using namespace ssp::sched;
using namespace ssp::analysis;
using namespace ssp::ir;

uint32_t ssp::sched::profiledLoadLatency(const Program &P, const InstRef &Ref,
                                         const profile::ProfileData &PD) {
  const Instruction &I = Ref.get(P);
  StaticId Sid = makeStaticId(Ref.Func, I.Id);
  auto It = PD.Loads.find(Sid);
  if (It == PD.Loads.end() || It->second.Accesses == 0)
    return 2; // Unprofiled: assume an L1 hit.
  const cache::PcCacheStats &S = It->second;
  return static_cast<uint32_t>(
      2 + S.MissCycles / S.Accesses); // L1 latency + average miss penalty.
}

SliceDepGraph SliceDepGraph::build(const ProgramDeps &Deps,
                                   const std::vector<InstRef> &Insts,
                                   const Loop *L, uint32_t LoopFunc,
                                   const profile::ProfileData &PD,
                                   bool PessimisticLoads,
                                   const std::vector<uint32_t> *CallCosts,
                                   const SpecDeps *Spec,
                                   std::vector<SpecDrop> *Drops) {
  SliceDepGraph G;
  const Program &P = Deps.program();
  std::map<InstRef, unsigned> Index;
  for (const InstRef &I : Insts) {
    Index[I] = static_cast<unsigned>(G.Nodes.size());
    DepNode N;
    N.Ref = I;
    const Instruction &Inst = I.get(P);
    if (isLoad(Inst.Op)) {
      N.Latency = profiledLoadLatency(P, I, PD);
      if (PessimisticLoads)
        N.Latency = std::max(N.Latency, AssumedColdLoadLatency);
    }
    else if (Inst.Op == Opcode::Call || Inst.Op == Opcode::CallInd) {
      // Region heights must account for time spent inside callees (e.g.
      // the recursive subtree calls that give treeadd its slack).
      N.Latency = CallLatencyEstimate;
      if (CallCosts && Inst.Op == Opcode::Call &&
          Inst.Target < CallCosts->size() && (*CallCosts)[Inst.Target] > 0)
        N.Latency = (*CallCosts)[Inst.Target];
    }
    else
      N.Latency = latencyOf(Inst.Op);
    G.Nodes.push_back(N);
  }
  G.Intra.resize(G.Nodes.size());
  G.Carried.resize(G.Nodes.size());

  for (unsigned UI = 0; UI < G.Nodes.size(); ++UI) {
    const InstRef &Use = G.Nodes[UI].Ref;
    const FunctionDeps &FD = Deps.forFunction(Use.Func);

    auto Classify = [&](const InstRef &Def, unsigned DI, bool IsData) {
      bool SameLoopFunc = L && Def.Func == LoopFunc && Use.Func == LoopFunc &&
                          L->contains(Def.Block) && L->contains(Use.Block);
      if (SameLoopFunc) {
        if (FD.reachesWithoutBackedge(Def, Use, *L)) {
          G.Intra[DI].push_back(UI);
        } else {
          // Purely loop-carried data edge: the speculation candidate.
          analysis::SpecDrop Drop;
          if (IsData && Spec &&
              Spec->shouldPrune(analysis::DepKind::Register, Def, Use,
                                &Drop)) {
            if (Drops)
              Drops->push_back(Drop);
            return;
          }
          G.Carried[DI].push_back(UI);
        }
      } else {
        // Interprocedural members or no loop: order by layout as intra.
        G.Intra[DI].push_back(UI);
      }
    };

    for (const InstRef &Def : FD.dataSources(Use)) {
      auto It = Index.find(Def);
      if (It != Index.end() && It->second != UI)
        Classify(Def, It->second, /*IsData=*/true);
    }
    for (const InstRef &Ctrl : FD.controlSources(Use)) {
      auto It = Index.find(Ctrl);
      if (It != Index.end() && It->second != UI)
        Classify(Ctrl, It->second, /*IsData=*/false);
    }

    // Cross-function flow edges: a use whose value may come from outside
    // its function (live-in at that point) depends on any member of a
    // *different* function defining that register — the caller computing
    // an argument the callee consumes, or a callee computing a value its
    // caller reads after the call. Reaching definitions are per-function
    // and cannot see these.
    Use.get(P).forEachUse([&](Reg R2) {
      if ((R2.isInt() || R2.isPred()) && R2.Num == 0)
        return;
      if (!FD.reachingDefs().mayBeLiveIn(Use.Block, Use.Inst, R2))
        return;
      for (unsigned DI = 0; DI < G.Nodes.size(); ++DI) {
        if (DI == UI || G.Nodes[DI].Ref.Func == Use.Func)
          continue;
        if (G.Nodes[DI].Ref.get(P).def() == R2)
          G.Intra[DI].push_back(UI);
      }
    });
  }

  // Deduplicate adjacency.
  for (auto *Adj : {&G.Intra, &G.Carried})
    for (auto &Edges : *Adj) {
      std::sort(Edges.begin(), Edges.end());
      Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
    }
  return G;
}

int SliceDepGraph::indexOf(const InstRef &Ref) const {
  for (unsigned I = 0; I < Nodes.size(); ++I)
    if (Nodes[I].Ref == Ref)
      return static_cast<int>(I);
  return -1;
}

std::vector<uint64_t> SliceDepGraph::nodeHeights() const {
  // Longest path over the intra DAG; the intra subgraph is acyclic by
  // construction (acyclic reaching order), so reverse topological
  // processing via repeated relaxation converges in |V| rounds; we use a
  // DFS-based memoized computation instead.
  std::vector<uint64_t> Height(Nodes.size(), 0);
  std::vector<uint8_t> State(Nodes.size(), 0); // 0 new, 1 visiting, 2 done.
  struct Frame {
    unsigned Node;
    size_t Next;
  };
  std::vector<Frame> Stack;
  for (unsigned Root = 0; Root < Nodes.size(); ++Root) {
    if (State[Root] == 2)
      continue;
    Stack.push_back({Root, 0});
    State[Root] = 1;
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      unsigned V = F.Node;
      if (F.Next < Intra[V].size()) {
        unsigned W = Intra[V][F.Next++];
        if (State[W] == 0) {
          State[W] = 1;
          Stack.push_back({W, 0});
        }
        // A back edge here would mean a cycle in the intra subgraph; the
        // classification forbids it, and ignoring it keeps heights finite.
      } else {
        uint64_t Best = 0;
        for (unsigned W : Intra[V])
          if (State[W] == 2)
            Best = std::max(Best, Height[W]);
        Height[V] = Best + Nodes[V].Latency;
        State[V] = 2;
        Stack.pop_back();
      }
    }
  }
  return Height;
}

uint64_t SliceDepGraph::height() const {
  uint64_t Max = 0;
  for (uint64_t H : nodeHeights())
    Max = std::max(Max, H);
  return Max;
}

uint64_t SliceDepGraph::totalLatency() const {
  uint64_t Sum = 0;
  for (const DepNode &N : Nodes)
    Sum += N.Latency;
  return Sum;
}

double SliceDepGraph::availableILP() const {
  uint64_t H = height();
  if (H == 0)
    return 1.0;
  return static_cast<double>(totalLatency()) / static_cast<double>(H);
}

std::vector<InstRef> ssp::sched::regionInstructions(const RegionGraph &RG,
                                                    int RegionIdx,
                                                    const ProgramDeps &Deps) {
  const Region &R = RG.region(RegionIdx);
  const Program &P = Deps.program();
  const Function &F = P.func(R.Func);
  std::vector<InstRef> Insts;

  auto AddBlock = [&](uint32_t BI) {
    const BasicBlock &BB = F.block(BI);
    if (BB.isAttachment())
      return;
    for (uint32_t II = 0; II < BB.Insts.size(); ++II)
      Insts.push_back({R.Func, BI, II});
  };

  if (R.Kind == RegionKind::Procedure) {
    for (uint32_t BI = 0; BI < F.numBlocks(); ++BI)
      AddBlock(BI);
  } else {
    const FunctionDeps &FD = Deps.forFunction(R.Func);
    for (uint32_t BI : FD.loops().loop(R.LoopIdx).Blocks)
      AddBlock(BI);
  }
  return Insts;
}
