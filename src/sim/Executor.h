//===- sim/Executor.h - Functional instruction execution ------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The functional executor advances a thread's architectural state by one
/// instruction. The timing cores run it at fetch time (functional-first
/// simulation): fetch therefore always follows the true execution path, and
/// front-end penalties for mispredictions and exceptions are modeled as
/// fetch-blocking intervals rather than wrong-path execution.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SIM_EXECUTOR_H
#define SSP_SIM_EXECUTOR_H

#include "ir/Program.h"
#include "mem/SimMemory.h"
#include "sim/ThreadContext.h"

namespace ssp::branch {
class BranchPredictor;
} // namespace ssp::branch
namespace ssp::cache {
class CacheHierarchy;
} // namespace ssp::cache

namespace ssp::sim {

/// Control effect of one functionally executed instruction.
enum class CtrlKind : uint8_t {
  Fall,         ///< Fall through to PC+1.
  Branch,       ///< Conditional branch; see ExecOutcome::Taken.
  DirectJump,   ///< jmp / call: statically known target.
  IndirectJump, ///< ret / calli: target from stack or register.
  ChkCFired,    ///< chk.c raised the spawn exception; redirect to the stub.
  ChkCNop,      ///< chk.c saw no free context; falls through.
  RfiReturn,    ///< rfi back to the interrupted PC.
  SpawnPoint,   ///< spawn executed; request payload captured.
  Halt,         ///< Program finished (main thread).
  Kill          ///< Speculative thread terminated itself.
};

/// Everything the timing model needs to know about one executed instruction.
struct ExecOutcome {
  CtrlKind Kind = CtrlKind::Fall;
  bool Taken = false; ///< For Kind == Branch.

  bool IsMem = false;   ///< Accesses the data cache (load/store/prefetch).
  bool IsLoad = false;  ///< Writes a register from memory.
  bool IsStore = false;
  bool WildLoad = false; ///< Speculative load touched unmapped memory.
  uint64_t MemAddr = 0;

  bool HasSpawn = false; ///< Spawn payload captured below.
  uint32_t SpawnTargetAddr = 0;
  uint64_t SpawnFrame[MaxLIBSlots] = {};
};

/// Executes the instruction at \p Ctx.PC, updating \p Ctx (including PC).
///
/// \param Speculative  thread is a prefetch thread: loads never fault and
///                     stores are forbidden.
/// \param FreeContextAvailable  consulted by chk.c to decide whether the
///                     spawn exception fires.
/// \param Out          filled with the control/memory effects.
void executeStep(ThreadContext &Ctx, const ir::LinkedProgram &LP,
                 mem::SimMemory &Mem, bool Speculative,
                 bool FreeContextAvailable, ExecOutcome &Out);

/// Result of one batched functional interval (fastForward / warmForward).
struct FunctionalResult {
  uint64_t Insts = 0; ///< Instructions executed (including a final halt).
  bool Halted = false; ///< The program's halt was reached in this interval.
};

/// Executes up to \p MaxInsts instructions of the (main, non-speculative)
/// thread purely architecturally: registers, memory and control flow
/// advance, but no cache, TLB or branch-predictor state is touched and no
/// timing exists. chk.c never fires (functionally it behaves as if no
/// context were free), so no speculative work happens. Stops early at
/// halt, leaving \p Ctx parked on the halt instruction.
FunctionalResult fastForward(ThreadContext &Ctx, const ir::LinkedProgram &LP,
                             mem::SimMemory &Mem, uint64_t MaxInsts);

/// fastForward plus functional warming: every memory access goes through
/// \p Cache (filling lines, the TLB and the fill buffer) and every
/// conditional branch / indirect transfer trains \p Bpred, so the next
/// detailed interval starts from warm microarchitectural state. \p Now
/// advances one (nominal) cycle per instruction so the cache's
/// time-based structures age plausibly.
FunctionalResult warmForward(ThreadContext &Ctx, const ir::LinkedProgram &LP,
                             mem::SimMemory &Mem,
                             cache::CacheHierarchy &Cache,
                             branch::BranchPredictor &Bpred, uint64_t &Now,
                             uint64_t MaxInsts);

} // namespace ssp::sim

#endif // SSP_SIM_EXECUTOR_H
