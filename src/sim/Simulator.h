//===- sim/Simulator.h - Cycle-level SMT Itanium simulator ----------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-driven, cycle-level SMT simulator standing in for the
/// paper's SMTSIM/IPFsim infrastructure. It models both research Itanium
/// pipelines of Table 1 over the shared cache hierarchy, the GSHARE/BTB
/// front end, the four hardware thread contexts, the chk.c lightweight
/// exception spawning mechanism and the RSE-backing-store live-in buffer.
///
/// Simulation style: functional-first. Instructions execute architecturally
/// at fetch, so fetch always follows the true path; front-end costs of
/// mispredictions, chk.c exceptions and rfi returns are modeled as
/// fetch-blocking intervals that resolve when the blocking instruction
/// issues (in-order) or retires (out-of-order), naturally charging the
/// pipeline-refill penalty of the 12/16-stage pipes.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SIM_SIMULATOR_H
#define SSP_SIM_SIMULATOR_H

#include "branch/BranchPredictor.h"
#include "cache/Cache.h"
#include "ir/DenseSidMap.h"
#include "ir/Program.h"
#include "mem/SimMemory.h"
#include "sim/Executor.h"
#include "sim/MachineConfig.h"
#include "sim/PrefetchTable.h"
#include "sim/SimStats.h"
#include "sim/ThreadContext.h"

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace ssp::obs {
class TraceSink;
} // namespace ssp::obs

namespace ssp::sim {

/// Runs one program to completion on one machine configuration.
class Simulator {
public:
  /// \p Mem is the initial data image; it is mutated by the run.
  Simulator(const MachineConfig &Cfg, const ir::LinkedProgram &LP,
            mem::SimMemory &Mem);

  /// Simulates until the main thread halts and returns the statistics.
  /// With Cfg.Sample enabled this is the two-level sampled run (detailed
  /// intervals alternating with functional fast-forward/warming, stats
  /// extrapolated); otherwise the exact detailed simulation.
  SimStats run();

  /// Attaches an event-trace sink (null detaches). Off by default: with no
  /// sink attached the simulator executes no tracing code beyond the null
  /// checks at the emission sites, and the architectural statistics are
  /// identical either way.
  void setTraceSink(obs::TraceSink *Sink) { Trace = Sink; }

private:
  /// What event re-enables fetch for a thread blocked on this instruction.
  enum class ResumeEvent : uint8_t { None, AtIssue, AtRetire };

  /// One fetched instruction flowing through the pipeline.
  struct InstSlot {
    const ir::LinkedInst *LI = nullptr;
    const ir::DecodedInst *DI = nullptr; ///< Predecoded form of *LI.
    ExecOutcome Out;
    uint64_t FetchCycle = 0;
    uint64_t EligibleCycle = 0; ///< Earliest issue/dispatch cycle.
    bool Mispredicted = false;

    ResumeEvent Resume = ResumeEvent::None;
    uint32_t ResumeDelay = 0;

    // Timing state.
    bool Dispatched = false; ///< OOO: moved into the ROB/RS.
    bool Issued = false;
    bool Completed = false;
    uint64_t IssueCycle = 0;
    uint64_t CompleteCycle = 0;

    // OOO operand tracking: producers still in flight at dispatch.
    InstSlot *Prod[2] = {nullptr, nullptr};
    unsigned NumProd = 0;
    uint64_t OperandReadyCycle = 0;

    // Load service classification (set at issue).
    cache::Level ServedBy = cache::Level::L1;
    bool Partial = false;
  };

  /// Per-hardware-context simulation state.
  struct Thread {
    bool Active = false;
    bool Speculative = false;
    bool FetchStopped = false; ///< Saw halt/kill; no further fetch.
    /// The chk.c whose firing (transitively) created this speculative
    /// thread; used for per-trigger prefetch health (throttling).
    ir::StaticId OriginTrigger = 0;
    /// Main thread only: the most recently fired chk.c (the stub's spawn
    /// attributes its thread to it).
    ir::StaticId LastFiredTrigger = 0;
    /// Speculative threads: the StaticId of the spawn target's first
    /// instruction (which slice this thread runs) and how many spawns deep
    /// in the chain it is (a directly-spawned thread has depth 1). Both
    /// feed the prefetch-lifecycle attribution.
    ir::StaticId SliceSid = 0;
    uint32_t SpawnDepth = 0;
    ThreadContext Ctx;

    std::deque<InstSlot> FrontQ; ///< Expansion queue / decode queue.
    std::deque<InstSlot> Rob;    ///< OOO only.
    unsigned RsCount = 0;        ///< OOO: dispatched but not issued.

    // OOO completion watermark: earliest CompleteCycle among issued,
    // not-yet-completed ROB entries, and how many there are. Lets
    // writeback, RS resolution and the next-event computation skip
    // threads with nothing due instead of rescanning the full ROB.
    uint64_t MinPendingComplete = UINT64_MAX;
    unsigned PendingCompletions = 0;
    bool CompletedThisCycle = false; ///< Writeback completed something now.

    uint64_t FetchResumeCycle = 0;
    bool FetchWaitingOnEvent = false;

    uint64_t LastFetchCycle = 0;
    uint64_t LastIssueCycle = 0;
    uint64_t SeqCounter = 0;

    // In-order scoreboard: cycle each register becomes available, plus the
    // cache level that produced it (for Figure 10 stall classification).
    uint64_t RegReady[ir::Reg::NumDenseIndices] = {};
    uint8_t RegSrcLevel[ir::Reg::NumDenseIndices] = {};

    // OOO rename map: in-flight producer of each register, if any.
    InstSlot *RegProd[ir::Reg::NumDenseIndices] = {};

    void resetForSpawn() {
      Ctx.reset();
      FrontQ.clear();
      Rob.clear();
      RsCount = 0;
      FetchResumeCycle = 0;
      FetchWaitingOnEvent = false;
      FetchStopped = false;
      SeqCounter = 0;
      MinPendingComplete = UINT64_MAX;
      PendingCompletions = 0;
      CompletedThisCycle = false;
      for (unsigned I = 0; I < ir::Reg::NumDenseIndices; ++I) {
        RegReady[I] = 0;
        RegSrcLevel[I] = 0;
        RegProd[I] = nullptr;
      }
    }
  };

  // Pipeline phases.
  void fetchCycle();
  unsigned fetchThread(unsigned Tid, unsigned MaxBundles);
  void issueCycleInOrder();
  unsigned issueFromThreadInOrder(unsigned Tid, unsigned MaxBundles,
                                  unsigned FUUsed[]);
  void oooWriteback();
  void oooResolveRS();
  void oooRetire();
  void oooIssue();
  void oooDispatch();
  unsigned oooDispatchThread(unsigned Tid, unsigned MaxBundles);
  CycleCat classifyCycle() const;
  /// Earliest cycle after Now at which any pipeline state can change:
  /// min over fetch-resume cycles, head eligibility, the scoreboard
  /// ready-cycles a stalled in-order head waits on, pending completions,
  /// RS operand-ready cycles, outstanding main-thread misses, and the
  /// next throttle-evaluation boundary. Returns Now + 1 if nothing is
  /// pending (the livelock guard in run() then fires as in serial mode).
  uint64_t nextEventCycle() const;

  // Helpers.
  void applyIssueTiming(unsigned Tid, InstSlot &S);
  void fireResume(unsigned Tid, const InstSlot &S);
  void trySpawn(const ExecOutcome &Out, unsigned SpawnerTid);
  bool hasFreeContext() const;
  /// chk.c availability check: a free context exists and the trigger is
  /// not dynamically throttled.
  bool chkCWouldFire(const ir::LinkedInst &LI) const;
  /// Prefetch health bookkeeping around one data access.
  void noteDataAccess(unsigned Tid, const InstSlot &S,
                      const cache::AccessResult &R);
  /// The speculative-touch half of noteDataAccess, shared with the stream
  /// engine: prefetch-health and attribution bookkeeping for one
  /// speculative touch of \p Line.
  void notePrefetchTouch(unsigned Tid, uint64_t Line,
                         const PrefetchOrigin &O,
                         const cache::AccessResult &R);
  /// Records one resolved prefetch fate in \p Origin's per-trigger rollup.
  void countFate(const PrefetchOrigin &Origin, PrefetchFate Fate,
                 uint64_t LateCycles = 0);
  /// Resolves every still-pending tracked line as evicted-unused (wild
  /// entries as wild); used before overflow clears and at end of run.
  void drainPendingFates();
  /// Periodic per-trigger usefulness verdicts (dynamic throttling).
  void evaluateThrottle();
  unsigned fuLimit(ir::FuncUnit FU) const;
  bool mainMissOutstanding() const;
  void pruneMainOutstanding();

  // Main-loop structure. stepCycle is one full simulated cycle (all
  // pipeline phases plus Figure 10 accounting and idle-span skipping);
  // runDetailedLoop steps until the main thread halts or its issued
  // instruction count reaches \p StopMainInsts (UINT64_MAX = run to
  // completion, the exact unsampled path).
  void stepCycle();
  void runDetailedLoop(uint64_t StopMainInsts);
  /// Steps with fetch disabled until every thread's front queue and ROB
  /// are empty: the end-of-detail-interval drain, after which only
  /// architectural state (plus caches/predictor) carries forward.
  void drainPipeline();
  bool pipelineEmpty() const;
  /// End-of-run bookkeeping for the exact path: pending prefetch fates,
  /// attribution copy-out, final counter snapshots.
  void finalizeExact();
  /// The two-level sampled run (Cfg.Sample enabled); see DESIGN.md.
  SimStats runSampled();

  // Owned by value: callers routinely pass a temporary (e.g.
  // MachineConfig::inOrder()) whose lifetime ends before run().
  const MachineConfig Cfg;
  const ir::LinkedProgram &LP;
  mem::SimMemory &Mem;
  cache::CacheHierarchy Cache;
  branch::BranchPredictor Bpred;
  std::vector<Thread> Threads;
  SimStats Stats;

  uint64_t Now = 0;
  bool MainDone = false;
  /// Set during drainPipeline: fetch stops so in-flight instructions
  /// retire without new ones entering (sampled interval boundaries).
  bool FetchDisabled = false;
  /// Whether the current cycle fetched, issued, dispatched, completed or
  /// retired anything; an idle (false) cycle is a candidate for skipping.
  bool ActivityThisCycle = false;
  /// Strength-reduction flag: ThrottleEvalPeriod is a nonzero power of two.
  bool ThrottlePow2 = false;
  unsigned IssuedThisCycle[8] = {};
  std::vector<std::pair<uint64_t, cache::Level>> MainOutstanding;

  /// Reused issue-candidate buffer for oooIssue (hoisted out of the
  /// per-cycle hot path; cleared, never shrunk).
  struct Cand {
    InstSlot *S;
    unsigned Tid;
  };
  std::vector<Cand> ReadyBuf;

  // Per-trigger prefetch health (Section 4.4.1's dynamic throttling).
  struct TriggerHealth {
    uint64_t Prefetches = 0; ///< Speculative touches this period.
    uint64_t Tracked = 0;    ///< Touches that moved a line from L3/mem.
    uint64_t Useful = 0;     ///< Timely consumptions credited this period.
    uint64_t InFlight = 0;   ///< Tracked lines not yet consumed (a chain
                             ///< may legitimately run far ahead; its
                             ///< pending lines count as presumed useful).
    uint64_t DisabledUntil = 0;
  };
  /// Dense per-trigger health map: consulted on every chk.c fetch and
  /// updated on every speculative data access — no hashing on either path.
  ir::DenseSidMap<TriggerHealth> TriggerStats;
  PrefetchedLineTable PrefetchedLines;

  /// Prefetch-lifecycle rollup per origin trigger, keyed by trigger
  /// StaticId in first-spawn order; copied into SimStats::Attribution at
  /// the end of the run. Unlike TriggerStats (whose period counters the
  /// throttle resets), these only accumulate.
  ir::DenseSidMap<PrefetchAttribution> Attrib;

  /// Event-trace sink; null (the default) disables tracing entirely.
  obs::TraceSink *Trace = nullptr;

  // --- Stream engine (descriptor-executed slices; see ir/Stream.h) ---

  /// A descriptor bound to its stub, resolved at construction.
  struct StreamInfo {
    const ir::StreamDescriptor *Desc = nullptr;
    /// StaticId of the first slice instruction the stub would have
    /// spawned; tags attribution records like Thread::SliceSid does.
    ir::StaticId SliceSid = 0;
  };
  /// One running activation.
  struct ActiveStream {
    const ir::StreamDescriptor *Desc = nullptr;
    ir::StaticId Trigger = 0; ///< chk.c that activated this stream.
    ir::StaticId Slice = 0;
    unsigned Tid = 0;         ///< Triggering thread (trace/cache tagging).
    uint64_t Addr = 0;        ///< Affine/Indirect: next index address;
                              ///< Chase: current pointer.
    uint64_t VBaseVal = 0;    ///< Captured gather base value (Indirect).
    uint32_t StepsDone = 0;
    uint32_t Depth = 0;       ///< Steps this activation runs.
    uint64_t ReadyCycle = 0;  ///< Next step not before this cycle.
    /// Indirect: gathers whose index load is still in flight, as
    /// (ready cycle, gather address).
    std::vector<std::pair<uint64_t, uint64_t>> Pending;
  };

  /// Fires when a stream-covered chk.c executes (it took the ChkCNop
  /// path): activates the descriptor, capturing live-ins from \p Tid.
  void noteStreamTrigger(const StreamInfo &SI, unsigned Tid,
                         ir::StaticId TriggerSid);
  /// Advances every active stream by up to StreamIssueWidth steps and
  /// services due gathers; runs once per simulated cycle.
  void stepStreams();
  /// One speculative cache touch on behalf of stream \p AS.
  void streamTouch(const ActiveStream &AS, uint64_t Addr,
                   cache::AccessResult *ROut = nullptr);

  /// Stub start address -> descriptor, built at construction (empty
  /// unless the binary carries descriptors and Cfg.EnableStreamEngine).
  std::unordered_map<uint32_t, StreamInfo> StreamByStubAddr;
  std::vector<ActiveStream> ActiveStreams;
};

} // namespace ssp::sim

#endif // SSP_SIM_SIMULATOR_H
