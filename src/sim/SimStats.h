//===- sim/SimStats.h - Simulation statistics ------------------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistics collected by one simulation run. CycleCat reproduces the six
/// cycle-accounting categories of the paper's Figure 10: L3/L2/L1 denote
/// stall cycles attributed to misses *of* that cache level (e.g. the "L3"
/// category counts cycles stalled on loads that missed in L3 and were
/// served by memory) while no instruction issued; Cache+Exec counts cycles
/// where the main thread issued while a demand miss was outstanding; Exec
/// counts issue cycles with no outstanding miss; Other covers branch
/// bubbles, spawn flushes and every remaining stall.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SIM_SIMSTATS_H
#define SSP_SIM_SIMSTATS_H

#include "cache/Cache.h"

#include <cstdint>
#include <vector>

namespace ssp::sim {

/// Figure 10 cycle categories.
enum class CycleCat : uint8_t {
  L3 = 0,        ///< Stalled on a load served by memory (missed L3).
  L2 = 1,        ///< Stalled on a load served by L3 (missed L2).
  L1 = 2,        ///< Stalled on a load served by L2 (missed L1).
  CacheExec = 3, ///< Issued while a demand miss was outstanding.
  Exec = 4,      ///< Issued with no outstanding miss.
  Other = 5      ///< Branch bubbles, spawn flushes, other stalls.
};
inline constexpr unsigned NumCycleCats = 6;

inline const char *cycleCatName(CycleCat C) {
  switch (C) {
  case CycleCat::L3:
    return "L3";
  case CycleCat::L2:
    return "L2";
  case CycleCat::L1:
    return "L1";
  case CycleCat::CacheExec:
    return "Cache+Exec";
  case CycleCat::Exec:
    return "Exec";
  case CycleCat::Other:
    return "Other";
  }
  return "?";
}

/// Lifecycle fate of one attributed speculative prefetch (one fate per
/// speculative data access whose thread has a known origin trigger).
enum class PrefetchFate : uint8_t {
  UsefulTimely = 0,  ///< Consumed while fully present (no memory trip).
  UsefulLate = 1,    ///< Consumed while still in flight (partial overlap).
  EvictedUnused = 2, ///< Tracked but evicted/lapsed before any use.
  Redundant = 3,     ///< Line was already near (L1/L2) or re-prefetched.
  Wild = 4,          ///< Speculative access of an unmapped address.
};
inline constexpr unsigned NumPrefetchFates = 5;

inline const char *prefetchFateName(PrefetchFate F) {
  switch (F) {
  case PrefetchFate::UsefulTimely:
    return "useful-timely";
  case PrefetchFate::UsefulLate:
    return "useful-late";
  case PrefetchFate::EvictedUnused:
    return "evicted-unused";
  case PrefetchFate::Redundant:
    return "redundant";
  case PrefetchFate::Wild:
    return "wild";
  }
  return "?";
}

/// Per-trigger rollup of the prefetch lifecycle (the rows behind
/// `ssp-sim --report=attrib`, mirroring Figure 9 / Table 2). Trigger and
/// Slice are ir::StaticId values kept as raw uint64 so this header stays
/// below ir/ in the dependency order.
struct PrefetchAttribution {
  uint64_t Trigger = 0;      ///< StaticId of the chk.c trigger.
  uint64_t Slice = 0;        ///< StaticId of the spawned slice's first inst.
  uint64_t Spawns = 0;       ///< Speculative threads this trigger spawned.
  uint32_t MaxChainDepth = 0; ///< Deepest spawn chain observed.
  uint64_t Fates[NumPrefetchFates] = {0, 0, 0, 0, 0};
  /// Timeliness slack shortfall: cycles the main thread still paid on
  /// useful-late consumptions (the residual latency of the in-flight
  /// line). 0 when every useful prefetch was fully timely; large values
  /// mean the trigger fires too close to the consumption — the signal
  /// the feedback policy's hoist action keys on.
  uint64_t LateCycles = 0;

  uint64_t prefetches() const {
    uint64_t N = 0;
    for (uint64_t F : Fates)
      N += F;
    return N;
  }
  uint64_t useful() const {
    return Fates[static_cast<unsigned>(PrefetchFate::UsefulTimely)] +
           Fates[static_cast<unsigned>(PrefetchFate::UsefulLate)];
  }
};

/// All counters produced by Simulator::run().
struct SimStats {
  uint64_t Cycles = 0;          ///< Cycles until the main thread halted.
  uint64_t MainInsts = 0;       ///< Instructions issued by the main thread.
  uint64_t SpecInsts = 0;       ///< Instructions issued by prefetch threads.
  uint64_t CatCycles[NumCycleCats] = {0, 0, 0, 0, 0, 0};

  // SSP event counters.
  uint64_t TriggersFired = 0;   ///< chk.c raised the spawn exception.
  uint64_t TriggersIgnored = 0; ///< chk.c saw no free context (acted as nop).
  uint64_t SpawnsSucceeded = 0; ///< Spawn found a free context.
  uint64_t SpawnsDropped = 0;   ///< Spawn request ignored (no free context).
  uint64_t SpecWildLoads = 0;   ///< Speculative loads of unmapped addresses.
  uint64_t SpecPrefetches = 0;  ///< Lines touched by speculative threads.
  uint64_t UsefulPrefetches = 0; ///< ... later consumed timely by main.
  uint64_t ThrottleEvents = 0;  ///< Triggers dynamically disabled.
  uint64_t StreamActivations = 0; ///< Triggers served by the stream engine.
  uint64_t StreamSteps = 0;       ///< Descriptor steps the engine advanced.

  // Branch prediction.
  uint64_t Branches = 0;
  uint64_t BranchMispredicts = 0;

  // Simulator diagnostics (NOT architectural: these describe how the
  // simulator ran, differ between skip and --no-skip modes by design, and
  // are excluded from the skip_test differential comparison).
  uint64_t SkippedCycles = 0; ///< Idle cycles accounted in bulk, not ticked.
  uint64_t SkipEvents = 0;    ///< Number of idle spans jumped over.

  // Sampled-simulation diagnostics (also non-architectural; zero on
  // unsampled runs). When Sampled is set, Cycles, CatCycles, the SSP/
  // branch/cache counters and Attribution are extrapolated from the
  // detailed intervals; MainInsts is exact and LoadProfile covers the
  // detailed intervals only.
  bool Sampled = false;           ///< Run used a SamplingPlan.
  uint64_t SampleIntervals = 0;   ///< Measured detailed intervals executed.
  uint64_t SampleDetailInsts = 0; ///< Main insts in measured detail.
  uint64_t SampleFunctionalInsts = 0; ///< Main insts executed functionally.
  uint64_t SampleRampInsts = 0; ///< Main insts in unmeasured detailed ramp.

  // Memory system (global + per-static-load).
  cache::CacheHierarchy::Totals CacheTotals;
  cache::CacheProfile LoadProfile;

  // Prefetch-lifecycle attribution: one entry per origin trigger, in
  // first-spawn order (deterministic). Every attributed speculative
  // access lands in exactly one fate bucket, so
  //   UsefulPrefetches == sum over entries of useful()
  // holds by construction (pinned in tests/sim_test.cpp).
  std::vector<PrefetchAttribution> Attribution;

  uint64_t attributedPrefetches() const {
    uint64_t N = 0;
    for (const PrefetchAttribution &A : Attribution)
      N += A.prefetches();
    return N;
  }

  double ipc() const {
    return Cycles == 0 ? 0.0
                       : static_cast<double>(MainInsts) /
                             static_cast<double>(Cycles);
  }
};

} // namespace ssp::sim

#endif // SSP_SIM_SIMSTATS_H
