//===- sim/Simulator.cpp - Cycle-level SMT Itanium simulator --------------===//

#include "sim/Simulator.h"

#include "obs/TraceSink.h"
#include "support/Assert.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

using namespace ssp;
using namespace ssp::sim;
using namespace ssp::ir;

namespace {

/// Insertion sort for the tiny (<= NumThreads) arbitration arrays; avoids
/// std::sort's codegen on fixed-size buffers.
template <typename LessT>
void sortSmall(unsigned *Begin, unsigned N, LessT Less) {
  for (unsigned I = 1; I < N; ++I) {
    unsigned V = Begin[I];
    unsigned J = I;
    while (J > 0 && Less(V, Begin[J - 1])) {
      Begin[J] = Begin[J - 1];
      --J;
    }
    Begin[J] = V;
  }
}

} // namespace

Simulator::Simulator(const MachineConfig &Cfg, const LinkedProgram &LP,
                     mem::SimMemory &Mem)
    : Cfg(Cfg), LP(LP), Mem(Mem), Cache(Cfg.Cache, Cfg.NumThreads),
      Bpred(Cfg.NumThreads), Threads(Cfg.NumThreads) {
  Cache.setPerfectMemory(Cfg.PerfectMemory);
  Cache.setPerfectLoads(Cfg.PerfectLoads);
  ThrottlePow2 = Cfg.ThrottleEvalPeriod != 0 &&
                 (Cfg.ThrottleEvalPeriod & (Cfg.ThrottleEvalPeriod - 1)) == 0;
  Threads[0].Active = true;
  Threads[0].Speculative = false;
  Threads[0].Ctx.PC = LP.entry();

  // Bind stream descriptors to their stub addresses. A chk.c targeting a
  // covered stub is served by the stream engine instead of raising the
  // spawn exception. Binaries without descriptors leave the map empty and
  // every simulation path bit-identical to pre-stream builds.
  if (Cfg.EnableStreamEngine) {
    for (const StreamDescriptor &D : LP.program().streams()) {
      StreamInfo SI;
      SI.Desc = &D;
      // The slice sid is what the stub's spawn would have tagged threads
      // with: the first instruction of the spawn target block.
      uint32_t Addr = LP.blockStart(D.Func, D.StubBlock);
      for (uint32_t A = Addr;
           A < LP.size() && LP.at(A).Func == D.Func &&
           LP.at(A).Block == D.StubBlock;
           ++A)
        if (LP.at(A).I->Op == Opcode::Spawn) {
          SI.SliceSid = LP.at(LP.at(A).TargetAddr).Sid;
          break;
        }
      StreamByStubAddr.emplace(Addr, SI);
    }
  }
}

unsigned Simulator::fuLimit(FuncUnit FU) const {
  switch (FU) {
  case FuncUnit::None:
    return ~0u;
  case FuncUnit::Int:
    return Cfg.IntUnits;
  case FuncUnit::FP:
    return Cfg.FPUnits;
  case FuncUnit::Mem:
    return Cfg.MemPorts;
  case FuncUnit::Br:
    return Cfg.BranchUnits;
  }
  ssp_unreachable("bad func unit");
}

bool Simulator::hasFreeContext() const {
  for (const Thread &T : Threads)
    if (!T.Active)
      return true;
  return false;
}

bool Simulator::chkCWouldFire(const LinkedInst &LI) const {
  if (!hasFreeContext())
    return false;
  if (LI.I->Op != Opcode::ChkC || !Cfg.EnableSSPThrottle)
    return true;
  auto It = TriggerStats.find(LI.Sid);
  return It == TriggerStats.end() || It->second.DisabledUntil <= Now;
}

void Simulator::evaluateThrottle() {
  // Periodic verdicts: in steady state, a healthy chain's per-period
  // consumption credits keep pace with its prefetches; a useless one
  // (cache-resident data) accumulates touches without credits.
  for (auto &[Sid, H] : TriggerStats) {
    // Two failure signatures: (a) the trigger's threads touch memory but
    // almost never move a line up from L3/memory (the data is cached
    // anyway), or (b) the lines they do move are neither consumed timely
    // nor still awaiting consumption (a healthy long-range chain is
    // *supposed* to be far ahead, so pending lines count as presumed
    // useful).
    if (std::getenv("SSP_THROTTLE_TRACE"))
      std::fprintf(stderr,
                   "[throttle] now=%llu sid=%llx pre=%llu trk=%llu use=%llu "
                   "inflight=%llu\n",
                   (unsigned long long)Now, (unsigned long long)Sid,
                   (unsigned long long)H.Prefetches,
                   (unsigned long long)H.Tracked,
                   (unsigned long long)H.Useful,
                   (unsigned long long)H.InFlight);
    if (H.Prefetches < Cfg.ThrottleMinSample)
      continue; // Too small a sample; let it accumulate.
    // Credits (timely consumptions plus lines still pending) must keep
    // pace with the work: the demand is the tracked lines, but a trigger
    // whose threads touch plenty while moving almost nothing is judged
    // against its touch volume instead (cache-resident data).
    double Demand = std::max<double>(static_cast<double>(H.Tracked),
                                     static_cast<double>(H.Prefetches) / 8);
    bool Useless = static_cast<double>(H.Useful + H.InFlight) <
                   Cfg.ThrottleMinUseful * Demand;
    if (Cfg.EnableSSPThrottle && Useless) {
      H.DisabledUntil = Now + Cfg.ThrottlePenalty;
      ++Stats.ThrottleEvents;
    }
    H.Prefetches = 0;
    H.Tracked = 0;
    H.Useful = 0;
  }
}

void Simulator::countFate(const PrefetchOrigin &Origin, PrefetchFate Fate,
                          uint64_t LateCycles) {
  PrefetchAttribution &A = Attrib[Origin.Trigger];
  if (A.Slice == 0)
    A.Slice = Origin.Slice;
  if (Origin.Depth > A.MaxChainDepth)
    A.MaxChainDepth = Origin.Depth;
  ++A.Fates[static_cast<unsigned>(Fate)];
  A.LateCycles += LateCycles;
}

void Simulator::drainPendingFates() {
  PrefetchedLines.forEach([this](uint64_t, const PrefetchOrigin &O) {
    countFate(O, O.Wild ? PrefetchFate::Wild : PrefetchFate::EvictedUnused);
  });
}

void Simulator::notePrefetchTouch(unsigned Tid, uint64_t Line,
                                  const PrefetchOrigin &O,
                                  const cache::AccessResult &R) {
  // A speculative touch is a prefetch on behalf of its trigger.
  ++Stats.SpecPrefetches;
  if (O.Trigger == 0)
    return;
  // Only a touch that actually moved the line up from L3/memory can be
  // credited later: touching an already-near line is the signature of
  // a useless prefetch (the data was cached anyway).
  bool MovedLine = R.ServedBy == cache::Level::L3 ||
                   R.ServedBy == cache::Level::Mem;
  if (MovedLine) {
    if (PrefetchedLines.size() > (1u << 16)) {
      drainPendingFates(); // Lapsing entries were never consumed.
      PrefetchedLines.clear(); // Bound the table; stale entries lapse.
      for (auto &[Sid2, H2] : TriggerStats)
        H2.InFlight = 0;
    }
    PrefetchOrigin Prev;
    if (PrefetchedLines.insertOrAssign(Line, O, &Prev))
      ++TriggerStats[O.Trigger].InFlight;
    else
      // The earlier prefetch of this line was superseded before any
      // consumption: a redundant re-prefetch.
      countFate(Prev, Prev.Wild ? PrefetchFate::Wild
                                : PrefetchFate::Redundant);
    ++TriggerStats[O.Trigger].Tracked;
    if (Trace)
      Trace->record(Tid, obs::EventKind::Prefetch, Now, 0, Line, O.Trigger,
                    static_cast<uint32_t>(R.ServedBy));
  } else {
    // The line was already near: this access resolves immediately.
    countFate(O, O.Wild ? PrefetchFate::Wild : PrefetchFate::Redundant);
  }
  ++TriggerStats[O.Trigger].Prefetches;
}

void Simulator::noteDataAccess(unsigned Tid, const InstSlot &S,
                               const cache::AccessResult &R) {
  uint64_t Line = S.Out.MemAddr / Cfg.Cache.L1.LineBytes;
  Thread &T = Threads[Tid];
  if (T.Speculative) {
    notePrefetchTouch(Tid, Line,
                      PrefetchOrigin{T.OriginTrigger, T.SliceSid,
                                     T.SpawnDepth, S.Out.WildLoad},
                      R);
    return;
  }
  if (!S.Out.IsLoad)
    return;
  // Main-thread consumption: a prefetched line consumed quickly counts as
  // a timely ("useful") prefetch for its trigger.
  PrefetchOrigin *Origin = PrefetchedLines.find(Line);
  if (!Origin)
    return;
  // Timely enough, or still in flight (the prefetch overlapped part of
  // the miss): either way the thread reduced latency.
  TriggerHealth &H = TriggerStats[Origin->Trigger];
  if (H.InFlight > 0)
    --H.InFlight;
  // The prefetch helped if the main thread did not pay a full memory
  // access for the line: it was still cached at some level (TLB penalties
  // are the main thread's own) or the fetch was at least in flight.
  PrefetchFate Fate;
  if (R.Partial)
    Fate = PrefetchFate::UsefulLate;
  else if (R.ServedBy != cache::Level::Mem)
    Fate = PrefetchFate::UsefulTimely;
  else
    Fate = Origin->Wild ? PrefetchFate::Wild : PrefetchFate::EvictedUnused;
  if (Fate == PrefetchFate::UsefulTimely ||
      Fate == PrefetchFate::UsefulLate) {
    ++Stats.UsefulPrefetches;
    ++H.Useful;
  }
  // Useful-late consumptions record the residual latency the main thread
  // still paid as timeliness slack shortfall.
  countFate(*Origin, Fate,
            Fate == PrefetchFate::UsefulLate ? R.Latency : 0);
  if (Trace)
    Trace->record(Tid, obs::EventKind::Retire, Now, 0, Line,
                  Origin->Trigger, static_cast<uint32_t>(Fate));
  PrefetchedLines.erase(Line);
}

void Simulator::trySpawn(const ExecOutcome &Out, unsigned SpawnerTid) {
  const Thread &Spawner = Threads[SpawnerTid];
  ir::StaticId Origin = Spawner.Speculative ? Spawner.OriginTrigger
                                            : Spawner.LastFiredTrigger;
  for (unsigned NewTid = 0; NewTid < Threads.size(); ++NewTid) {
    Thread &T = Threads[NewTid];
    if (T.Active)
      continue;
    T.resetForSpawn();
    T.Active = true;
    T.Speculative = true;
    T.OriginTrigger = Origin;
    // Attribution tags: which slice this context runs and how deep in the
    // spawn chain it sits (a chained slice re-spawning itself deepens it).
    T.SliceSid = LP.at(Out.SpawnTargetAddr).Sid;
    T.SpawnDepth = Spawner.Speculative ? Spawner.SpawnDepth + 1 : 1;
    T.Ctx.PC = Out.SpawnTargetAddr;
    std::memcpy(T.Ctx.LIBIn, Out.SpawnFrame, sizeof(T.Ctx.LIBIn));
    // The new context begins fetching next cycle.
    T.FetchResumeCycle = Now + 1;
    if (Origin != 0) {
      PrefetchAttribution &A = Attrib[Origin];
      ++A.Spawns;
      if (A.Slice == 0)
        A.Slice = T.SliceSid;
      if (T.SpawnDepth > A.MaxChainDepth)
        A.MaxChainDepth = T.SpawnDepth;
    }
    if (Trace)
      Trace->record(NewTid, obs::EventKind::Spawn, Now, 0, Origin,
                    T.SliceSid, T.SpawnDepth);
    ++Stats.SpawnsSucceeded;
    return;
  }
  ++Stats.SpawnsDropped;
}

//===----------------------------------------------------------------------===//
// Stream engine (descriptor-executed slices)
//===----------------------------------------------------------------------===//

void Simulator::noteStreamTrigger(const StreamInfo &SI, unsigned Tid,
                                  ir::StaticId TriggerSid) {
  // Dynamic throttling covers stream triggers exactly like spawning ones:
  // the engine's touches feed the same per-trigger health ledger.
  if (Cfg.EnableSSPThrottle) {
    auto It = TriggerStats.find(TriggerSid);
    if (It != TriggerStats.end() && It->second.DisabledUntil > Now) {
      ++Stats.TriggersIgnored;
      return;
    }
  }
  // One activation per descriptor at a time: re-triggering while the
  // stream still runs means the chain is already ahead.
  for (const ActiveStream &AS : ActiveStreams)
    if (AS.Desc == SI.Desc)
      return;
  if (ActiveStreams.size() >= Cfg.MaxActiveStreams) {
    ++Stats.TriggersIgnored; // Like a chk.c with no free context.
    return;
  }
  const StreamDescriptor &D = *SI.Desc;
  const ThreadContext &Ctx = Threads[Tid].Ctx;
  auto RegVal = [&](Reg R) -> uint64_t {
    return R.isValid() ? Ctx.Regs[R.denseIndex()] : 0;
  };
  ActiveStream AS;
  AS.Desc = SI.Desc;
  AS.Trigger = TriggerSid;
  AS.Slice = SI.SliceSid;
  AS.Tid = Tid;
  AS.Addr = RegVal(D.AddrBase) +
            RegVal(D.AddrInd) * static_cast<uint64_t>(D.AddrMul) +
            static_cast<uint64_t>(D.AddrAdd);
  AS.VBaseVal = RegVal(D.ValBase);
  AS.Depth = std::min(D.Depth, Cfg.MaxStreamDepth);
  AS.ReadyCycle = Now + 1;
  ActiveStreams.push_back(std::move(AS));
  ++Stats.TriggersFired;
  ++Stats.StreamActivations;
  PrefetchAttribution &A = Attrib[TriggerSid];
  if (A.Slice == 0)
    A.Slice = SI.SliceSid;
  if (A.MaxChainDepth < 1)
    A.MaxChainDepth = 1;
  if (Trace)
    Trace->record(Tid, obs::EventKind::Trigger, Now, 0, TriggerSid, 1);
}

void Simulator::streamTouch(const ActiveStream &AS, uint64_t Addr,
                            cache::AccessResult *ROut) {
  cache::AccessResult R =
      Cache.access(Addr, Now, AS.Slice, AS.Tid, /*CollectProfile=*/false);
  notePrefetchTouch(AS.Tid, Addr / Cfg.Cache.L1.LineBytes,
                    PrefetchOrigin{AS.Trigger, AS.Slice, /*Depth=*/1,
                                   /*Wild=*/false},
                    R);
  if (ROut)
    *ROut = R;
}

void Simulator::stepStreams() {
  if (ActiveStreams.empty())
    return;
  unsigned Budget = Cfg.StreamIssueWidth;
  for (size_t I = 0; I < ActiveStreams.size();) {
    ActiveStream &AS = ActiveStreams[I];
    const StreamDescriptor &D = *AS.Desc;
    // Service gathers whose index load has arrived (completions: these do
    // not consume issue budget).
    for (size_t P = 0; P < AS.Pending.size();) {
      if (AS.Pending[P].first <= Now) {
        uint64_t G = AS.Pending[P].second;
        for (int64_t Off : D.PrefetchOffsets)
          streamTouch(AS, G + static_cast<uint64_t>(Off));
        AS.Pending.erase(AS.Pending.begin() +
                         static_cast<ptrdiff_t>(P));
      } else {
        ++P;
      }
    }
    // Advance the recurrence while budget and readiness allow.
    while (Budget > 0 && AS.StepsDone < AS.Depth && AS.ReadyCycle <= Now) {
      --Budget;
      ++AS.StepsDone;
      ++Stats.StreamSteps;
      switch (D.Kind) {
      case StreamKind::Affine:
        for (int64_t Off : D.PrefetchOffsets)
          streamTouch(AS, AS.Addr + static_cast<uint64_t>(Off));
        AS.Addr += static_cast<uint64_t>(D.Stride);
        AS.ReadyCycle = Now + 1;
        break;
      case StreamKind::Chase: {
        uint64_t La = AS.Addr + static_cast<uint64_t>(D.ChaseOff);
        cache::AccessResult R;
        streamTouch(AS, La, &R);
        bool Mapped = false;
        uint64_t V = Mem.readMaybe(La, Mapped);
        if (!Mapped || V == 0) {
          AS.StepsDone = AS.Depth; // End of the chain.
          break;
        }
        for (int64_t Off : D.PrefetchOffsets)
          streamTouch(AS, V + static_cast<uint64_t>(Off));
        AS.Addr = V;
        // The next link dereferences this one's result: the chase is
        // serialized on the link load's latency.
        AS.ReadyCycle = std::max(R.ReadyCycle, Now + 1);
        break;
      }
      case StreamKind::Indirect: {
        cache::AccessResult R;
        streamTouch(AS, AS.Addr, &R);
        if (D.PrefetchIndex)
          for (int64_t Off : D.IdxPrefetchOffsets)
            if (Off != 0)
              streamTouch(AS, AS.Addr + static_cast<uint64_t>(Off));
        bool Mapped = false;
        uint64_t V = Mem.readMaybe(AS.Addr, Mapped);
        if (!Mapped) {
          AS.StepsDone = AS.Depth;
          break;
        }
        uint64_t G = AS.VBaseVal +
                     (((V * static_cast<uint64_t>(D.ValMul)) & D.ValMask)
                      << D.ValShift) +
                     static_cast<uint64_t>(D.ValAdd);
        // The gather address depends on the index value: its touches wait
        // until the index load would have returned.
        AS.Pending.push_back({std::max(R.ReadyCycle, Now + 1), G});
        AS.Addr += static_cast<uint64_t>(D.Stride);
        AS.ReadyCycle = Now + 1;
        break;
      }
      }
    }
    if (AS.StepsDone >= AS.Depth && AS.Pending.empty())
      ActiveStreams.erase(ActiveStreams.begin() + static_cast<ptrdiff_t>(I));
    else
      ++I;
  }
}

//===----------------------------------------------------------------------===//
// Fetch (shared by both pipelines)
//===----------------------------------------------------------------------===//

void Simulator::fetchCycle() {
  if (FetchDisabled)
    return; // Draining an interval boundary: no new instructions enter.
  // Candidate threads, least-recently-fetched first.
  unsigned Order[8];
  unsigned N = 0;
  for (unsigned Tid = 0; Tid < Threads.size(); ++Tid) {
    Thread &T = Threads[Tid];
    if (!T.Active || T.FetchStopped || T.FetchWaitingOnEvent)
      continue;
    if (Now < T.FetchResumeCycle)
      continue;
    if (T.FrontQ.size() >= Cfg.ExpansionQueueBundles * 3)
      continue;
    Order[N++] = Tid;
  }
  if (Cfg.Fetch == FetchPolicy::ICount) {
    // ICOUNT: fewest in-flight pre-issue instructions first.
    sortSmall(Order, N, [this](unsigned A, unsigned B) {
      size_t IA = Threads[A].FrontQ.size() + Threads[A].RsCount;
      size_t IB = Threads[B].FrontQ.size() + Threads[B].RsCount;
      if (IA != IB)
        return IA < IB;
      return Threads[A].LastFetchCycle < Threads[B].LastFetchCycle;
    });
  } else {
    sortSmall(Order, N, [this](unsigned A, unsigned B) {
      if (Threads[A].LastFetchCycle != Threads[B].LastFetchCycle)
        return Threads[A].LastFetchCycle < Threads[B].LastFetchCycle;
      return A < B;
    });
  }

  unsigned BundlesLeft = Cfg.FetchBundlesPerCycle;
  unsigned ThreadsUsed = 0;
  for (unsigned I = 0; I < N && BundlesLeft > 0 && ThreadsUsed < 2; ++I) {
    unsigned Cap = ThreadsUsed == 0 ? BundlesLeft : 1;
    unsigned Got = fetchThread(Order[I], Cap);
    if (Got > 0) {
      ++ThreadsUsed;
      BundlesLeft -= Got;
      Threads[Order[I]].LastFetchCycle = Now;
      ActivityThisCycle = true;
    }
  }
}

unsigned Simulator::fetchThread(unsigned Tid, unsigned MaxBundles) {
  Thread &T = Threads[Tid];
  const size_t QueueCap = static_cast<size_t>(Cfg.ExpansionQueueBundles) * 3;
  unsigned Bundles = 0;

  while (Bundles < MaxBundles) {
    if (T.FrontQ.size() >= QueueCap || T.FetchStopped ||
        T.FetchWaitingOnEvent)
      break;
    uint32_t CurBundle = LP.at(T.Ctx.PC).BundleId;
    bool FetchedAny = false;
    bool EndCycle = false;

    while (T.FrontQ.size() < QueueCap) {
      if (LP.at(T.Ctx.PC).BundleId != CurBundle)
        break; // Bundle boundary.

      InstSlot S;
      S.LI = &LP.at(T.Ctx.PC);
      S.DI = &LP.decoded(T.Ctx.PC); // Before executeStep advances the PC.
      S.FetchCycle = Now;
      S.EligibleCycle = Now + Cfg.frontLatency();
      uint64_t FetchPC = T.Ctx.PC;

      // A chk.c whose stub is covered by a stream descriptor never raises
      // the spawn exception: the descriptor is activated directly (below,
      // on the nop path), skipping the flush/refill the exception costs.
      const StreamInfo *SI = nullptr;
      bool Fire = chkCWouldFire(*S.LI);
      if (!StreamByStubAddr.empty() && S.LI->I->Op == Opcode::ChkC) {
        auto StreamIt = StreamByStubAddr.find(S.LI->TargetAddr);
        if (StreamIt != StreamByStubAddr.end()) {
          SI = &StreamIt->second;
          Fire = false;
        }
      }
      executeStep(T.Ctx, LP, Mem, T.Speculative, Fire, S.Out);
      FetchedAny = true;

      bool InOrder = Cfg.Pipeline == PipelineKind::InOrder;
      switch (S.Out.Kind) {
      case CtrlKind::Fall:
      case CtrlKind::SpawnPoint:
      case CtrlKind::ChkCNop:
        if (S.Out.Kind == CtrlKind::ChkCNop) {
          if (SI)
            noteStreamTrigger(*SI, Tid, S.LI->Sid);
          else
            ++Stats.TriggersIgnored;
        }
        break;
      case CtrlKind::Branch: {
        bool Correct =
            Bpred.predictAndTrainDirection(FetchPC, Tid, S.Out.Taken);
        if (!Correct) {
          S.Mispredicted = true;
          S.Resume = ResumeEvent::AtIssue; // Resolves at execute.
          S.ResumeDelay = 1;
          T.FetchWaitingOnEvent = true;
        }
        if (S.Out.Taken)
          EndCycle = true; // Taken transfers end the cycle's fetch.
        break;
      }
      case CtrlKind::DirectJump:
        EndCycle = true; // Statically known target: no bubble beyond this.
        break;
      case CtrlKind::IndirectJump: {
        bool Correct = Bpred.predictAndTrainTarget(FetchPC, T.Ctx.PC);
        if (!Correct) {
          S.Mispredicted = true;
          S.Resume = ResumeEvent::AtIssue;
          S.ResumeDelay = 1;
          T.FetchWaitingOnEvent = true;
        }
        EndCycle = true;
        break;
      }
      case CtrlKind::ChkCFired:
        T.LastFiredTrigger = S.LI->Sid;
        if (Trace)
          Trace->record(Tid, obs::EventKind::Trigger, Now, 0, S.LI->Sid, 0);
        // The spawn exception is taken at retirement; the hardware
        // predicts "no exception" so fetch is not stalled until then —
        // the cost is a full pipeline flush and refill when it fires.
        // Modeled as a redirect charged at issue, deepened by the
        // pipeline depth on the OOO model.
        ++Stats.TriggersFired;
        S.Resume = ResumeEvent::AtIssue;
        S.ResumeDelay = Cfg.ExceptionRestartDelay +
                        (InOrder ? 0 : Cfg.pipelineDepth());
        T.FetchWaitingOnEvent = true;
        break;
      case CtrlKind::RfiReturn:
        S.Resume = ResumeEvent::AtIssue;
        S.ResumeDelay = InOrder ? 1 : Cfg.pipelineDepth();
        T.FetchWaitingOnEvent = true;
        break;
      case CtrlKind::Halt:
      case CtrlKind::Kill:
        T.FetchStopped = true;
        break;
      }

      T.FrontQ.push_back(std::move(S));
      if (T.FetchWaitingOnEvent || T.FetchStopped) {
        EndCycle = true;
        break;
      }
      if (EndCycle)
        break;
    }

    if (FetchedAny)
      ++Bundles;
    if (EndCycle || T.FetchStopped || T.FetchWaitingOnEvent)
      break;
    if (!FetchedAny)
      break; // Queue full.
  }
  return Bundles;
}

//===----------------------------------------------------------------------===//
// Issue-time effects (shared)
//===----------------------------------------------------------------------===//

void Simulator::applyIssueTiming(unsigned Tid, InstSlot &S) {
  Thread &T = Threads[Tid];
  const DecodedInst &D = *S.DI;
  S.Issued = true;
  S.IssueCycle = Now;
  uint64_t Complete = Now + D.Latency;

  if (S.Out.IsMem) {
    bool Collect = !T.Speculative && S.Out.IsLoad;
    cache::AccessResult R =
        Cache.access(S.Out.MemAddr, Now, S.LI->Sid, Tid, Collect);
    S.ServedBy = R.ServedBy;
    S.Partial = R.Partial;
    noteDataAccess(Tid, S, R);
    if (S.Out.IsLoad) {
      Complete = R.ReadyCycle;
      if (!T.Speculative && R.ServedBy != cache::Level::L1)
        MainOutstanding.push_back({R.ReadyCycle, R.ServedBy});
    } else {
      // Stores and prefetches occupy the port but never block the thread.
      Complete = Now + 1;
    }
    if (S.Out.WildLoad)
      ++Stats.SpecWildLoads;
  }

  S.CompleteCycle = Complete;
  if (Cfg.Pipeline == PipelineKind::OutOfOrder) {
    // Completion is always in the future (latencies and store/prefetch
    // port occupancy are >= 1), so the new entry joins the pending set.
    ++T.PendingCompletions;
    if (Complete < T.MinPendingComplete)
      T.MinPendingComplete = Complete;
  }

  // In-order scoreboard update (harmless for OOO; its consumers use the
  // rename map instead).
  if (D.Def != DecodedInst::NoReg) {
    T.RegReady[D.Def] = Complete;
    T.RegSrcLevel[D.Def] =
        S.Out.IsLoad ? static_cast<uint8_t>(1 + static_cast<unsigned>(
                                                    S.ServedBy))
                     : 0;
  }

  if (S.Out.HasSpawn)
    trySpawn(S.Out, Tid);

  if (S.Resume == ResumeEvent::AtIssue)
    fireResume(Tid, S);

  if (S.Out.Kind == CtrlKind::Halt && !T.Speculative)
    MainDone = true;

  if (T.Speculative)
    ++Stats.SpecInsts;
  else
    ++Stats.MainInsts;
  ++IssuedThisCycle[Tid];
  ActivityThisCycle = true;
}

void Simulator::fireResume(unsigned Tid, const InstSlot &S) {
  Thread &T = Threads[Tid];
  T.FetchWaitingOnEvent = false;
  T.FetchResumeCycle = Now + S.ResumeDelay;
}

//===----------------------------------------------------------------------===//
// In-order issue
//===----------------------------------------------------------------------===//

void Simulator::issueCycleInOrder() {
  unsigned FUUsed[5] = {0, 0, 0, 0, 0};

  unsigned Order[8];
  unsigned N = 0;
  for (unsigned Tid = 0; Tid < Threads.size(); ++Tid)
    if (Threads[Tid].Active && !Threads[Tid].FrontQ.empty())
      Order[N++] = Tid;
  sortSmall(Order, N, [this](unsigned A, unsigned B) {
    if (Threads[A].LastIssueCycle != Threads[B].LastIssueCycle)
      return Threads[A].LastIssueCycle < Threads[B].LastIssueCycle;
    return A < B;
  });

  unsigned BundlesLeft = Cfg.IssueBundlesPerCycle;
  unsigned ThreadsUsed = 0;
  for (unsigned I = 0; I < N && BundlesLeft > 0 && ThreadsUsed < 2; ++I) {
    unsigned Cap = ThreadsUsed == 0 ? BundlesLeft : 1;
    unsigned Got = issueFromThreadInOrder(Order[I], Cap, FUUsed);
    if (Got > 0) {
      ++ThreadsUsed;
      BundlesLeft -= Got;
      Threads[Order[I]].LastIssueCycle = Now;
    }
  }
}

unsigned Simulator::issueFromThreadInOrder(unsigned Tid, unsigned MaxBundles,
                                           unsigned FUUsed[]) {
  Thread &T = Threads[Tid];
  unsigned Bundles = 0;
  uint64_t CurBundle = UINT64_MAX;

  while (!T.FrontQ.empty()) {
    InstSlot &S = T.FrontQ.front();
    if (S.EligibleCycle > Now)
      break;

    // Starting a new bundle requires budget.
    if (S.LI->BundleId != CurBundle && Bundles == MaxBundles)
      break;

    // In-order stall-on-use: the head blocks until its operands are ready.
    const DecodedInst &D = *S.DI;
    bool Ready = true;
    for (unsigned U = 0; U < D.NumUses; ++U)
      if (T.RegReady[D.Uses[U]] > Now) {
        Ready = false;
        break;
      }
    if (!Ready)
      break;

    FuncUnit FU = D.FU;
    if (FU != FuncUnit::None &&
        FUUsed[static_cast<unsigned>(FU)] >= fuLimit(FU))
      break;

    if (S.LI->BundleId != CurBundle) {
      CurBundle = S.LI->BundleId;
      ++Bundles;
    }
    if (FU != FuncUnit::None)
      ++FUUsed[static_cast<unsigned>(FU)];

    applyIssueTiming(Tid, S);
    bool WasKill = S.Out.Kind == CtrlKind::Kill;
    T.FrontQ.pop_front();
    if (WasKill) {
      T.Active = false;
      break;
    }
  }
  return Bundles;
}

//===----------------------------------------------------------------------===//
// Out-of-order pipeline phases
//===----------------------------------------------------------------------===//

void Simulator::oooWriteback() {
  for (Thread &T : Threads) {
    T.CompletedThisCycle = false;
    if (!T.Active && T.Rob.empty())
      continue;
    // Watermark short-circuit: nothing in this thread's ROB completes
    // before MinPendingComplete, so skip the scan until it is due.
    if (T.PendingCompletions == 0 || T.MinPendingComplete > Now)
      continue;
    uint64_t NewMin = UINT64_MAX;
    unsigned Pending = 0;
    for (InstSlot &S : T.Rob) {
      if (!S.Issued || S.Completed)
        continue;
      if (S.CompleteCycle > Now) {
        if (S.CompleteCycle < NewMin)
          NewMin = S.CompleteCycle;
        ++Pending;
        continue;
      }
      S.Completed = true;
      T.CompletedThisCycle = true;
      ActivityThisCycle = true;
      const DecodedInst &D = *S.DI;
      if (D.Def != DecodedInst::NoReg && T.RegProd[D.Def] == &S) {
        T.RegProd[D.Def] = nullptr;
        T.RegReady[D.Def] = S.CompleteCycle;
      }
    }
    T.MinPendingComplete = NewMin;
    T.PendingCompletions = Pending;
  }
}

void Simulator::oooResolveRS() {
  for (Thread &T : Threads) {
    // An RS entry's producers are same-thread ROB entries that were still
    // in flight at dispatch, so a resolution can only happen on a cycle
    // where this thread's writeback completed something.
    if (!T.CompletedThisCycle)
      continue;
    for (InstSlot &S : T.Rob) {
      if (!S.Dispatched || S.Issued || S.NumProd == 0)
        continue;
      unsigned Keep = 0;
      for (unsigned I = 0; I < S.NumProd; ++I) {
        InstSlot *P = S.Prod[I];
        if (P->Completed) {
          S.OperandReadyCycle =
              std::max(S.OperandReadyCycle, P->CompleteCycle);
        } else {
          S.Prod[Keep++] = P;
        }
      }
      S.NumProd = Keep;
    }
  }
}

void Simulator::oooRetire() {
  for (unsigned Tid = 0; Tid < Threads.size(); ++Tid) {
    Thread &T = Threads[Tid];
    unsigned Retired = 0;
    while (!T.Rob.empty() && Retired < 6) {
      InstSlot &S = T.Rob.front();
      if (!S.Completed || S.CompleteCycle > Now)
        break;
      if (S.Resume == ResumeEvent::AtRetire)
        fireResume(Tid, S);
      bool WasKill = S.Out.Kind == CtrlKind::Kill;
      bool WasHalt = S.Out.Kind == CtrlKind::Halt;
      // Clear any rename-map entry still pointing at this slot before the
      // storage is reclaimed.
      const DecodedInst &D = *S.DI;
      if (D.Def != DecodedInst::NoReg && T.RegProd[D.Def] == &S)
        T.RegProd[D.Def] = nullptr;
      T.Rob.pop_front();
      ++Retired;
      ActivityThisCycle = true;
      if (WasKill) {
        T.Active = false;
        break;
      }
      if (WasHalt && !T.Speculative)
        MainDone = true;
    }
  }
}

void Simulator::oooIssue() {
  // Gather ready reservation-station entries, oldest first, into the
  // reused candidate buffer.
  ReadyBuf.clear();
  for (unsigned Tid = 0; Tid < Threads.size(); ++Tid) {
    Thread &T = Threads[Tid];
    if (T.RsCount == 0)
      continue;
    // RsCount entries are dispatched-but-unissued; stop once all seen.
    unsigned Left = T.RsCount;
    for (InstSlot &S : T.Rob) {
      if (!S.Dispatched || S.Issued)
        continue;
      if (S.NumProd == 0 && S.OperandReadyCycle <= Now)
        ReadyBuf.push_back({&S, Tid});
      if (--Left == 0)
        break;
    }
  }
  std::sort(ReadyBuf.begin(), ReadyBuf.end(),
            [](const Cand &A, const Cand &B) {
              if (A.S->FetchCycle != B.S->FetchCycle)
                return A.S->FetchCycle < B.S->FetchCycle;
              return A.Tid < B.Tid;
            });

  unsigned FUUsed[5] = {0, 0, 0, 0, 0};
  unsigned IssuedCount = 0;
  const unsigned IssueWidth = Cfg.IssueBundlesPerCycle * 3;
  for (Cand &C : ReadyBuf) {
    if (IssuedCount >= IssueWidth)
      break;
    FuncUnit FU = C.S->DI->FU;
    if (FU != FuncUnit::None &&
        FUUsed[static_cast<unsigned>(FU)] >= fuLimit(FU))
      continue;
    if (FU != FuncUnit::None)
      ++FUUsed[static_cast<unsigned>(FU)];
    applyIssueTiming(C.Tid, *C.S);
    assert(Threads[C.Tid].RsCount > 0);
    --Threads[C.Tid].RsCount;
    ++IssuedCount;
  }
}

void Simulator::oooDispatch() {
  unsigned Order[8];
  unsigned N = 0;
  for (unsigned Tid = 0; Tid < Threads.size(); ++Tid)
    if (Threads[Tid].Active && !Threads[Tid].FrontQ.empty())
      Order[N++] = Tid;
  sortSmall(Order, N, [this](unsigned A, unsigned B) {
    if (Threads[A].LastIssueCycle != Threads[B].LastIssueCycle)
      return Threads[A].LastIssueCycle < Threads[B].LastIssueCycle;
    return A < B;
  });

  unsigned BundlesLeft = Cfg.IssueBundlesPerCycle;
  unsigned ThreadsUsed = 0;
  for (unsigned I = 0; I < N && BundlesLeft > 0 && ThreadsUsed < 2; ++I) {
    unsigned Cap = ThreadsUsed == 0 ? BundlesLeft : 1;
    unsigned Got = oooDispatchThread(Order[I], Cap);
    if (Got > 0) {
      ++ThreadsUsed;
      BundlesLeft -= Got;
      Threads[Order[I]].LastIssueCycle = Now;
      ActivityThisCycle = true;
    }
  }
}

unsigned Simulator::oooDispatchThread(unsigned Tid, unsigned MaxBundles) {
  Thread &T = Threads[Tid];
  unsigned Bundles = 0;
  uint64_t CurBundle = UINT64_MAX;

  while (!T.FrontQ.empty()) {
    InstSlot &Head = T.FrontQ.front();
    if (Head.EligibleCycle > Now)
      break;
    if (T.Rob.size() >= Cfg.RobEntries || T.RsCount >= Cfg.RsEntries)
      break;
    if (Head.LI->BundleId != CurBundle && Bundles == MaxBundles)
      break;
    if (Head.LI->BundleId != CurBundle) {
      CurBundle = Head.LI->BundleId;
      ++Bundles;
    }

    T.Rob.push_back(std::move(Head));
    T.FrontQ.pop_front();
    InstSlot &S = T.Rob.back();
    S.Dispatched = true;
    ++T.RsCount;

    // Capture operand producers (register renaming happens here: each use
    // binds to the latest prior writer of that register).
    const DecodedInst &D = *S.DI;
    S.NumProd = 0;
    S.OperandReadyCycle = 0;
    for (unsigned U = 0; U < D.NumUses; ++U) {
      unsigned Dense = D.Uses[U];
      if (InstSlot *P = T.RegProd[Dense]) {
        if (S.NumProd < 2)
          S.Prod[S.NumProd++] = P;
      } else {
        S.OperandReadyCycle =
            std::max(S.OperandReadyCycle, T.RegReady[Dense]);
      }
    }
    if (D.Def != DecodedInst::NoReg)
      T.RegProd[D.Def] = &S;
  }
  return Bundles;
}

//===----------------------------------------------------------------------===//
// Cycle accounting (Figure 10)
//===----------------------------------------------------------------------===//

void Simulator::pruneMainOutstanding() {
  size_t Keep = 0;
  for (size_t I = 0; I < MainOutstanding.size(); ++I)
    if (MainOutstanding[I].first > Now)
      MainOutstanding[Keep++] = MainOutstanding[I];
  MainOutstanding.resize(Keep);
}

bool Simulator::mainMissOutstanding() const {
  return !MainOutstanding.empty();
}

CycleCat Simulator::classifyCycle() const {
  const Thread &M = Threads[0];
  CycleCat Cat;

  auto CatOfLevel = [](cache::Level L) {
    switch (L) {
    case cache::Level::L2:
      return CycleCat::L1; // Missed L1, served by L2.
    case cache::Level::L3:
      return CycleCat::L2; // Missed L2, served by L3.
    case cache::Level::Mem:
      return CycleCat::L3; // Missed L3, served by memory.
    case cache::Level::L1:
      break;
    }
    return CycleCat::Other;
  };

  if (IssuedThisCycle[0] > 0) {
    Cat = mainMissOutstanding() ? CycleCat::CacheExec : CycleCat::Exec;
  } else if (Cfg.Pipeline == PipelineKind::InOrder) {
    Cat = CycleCat::Other;
    if (!M.FrontQ.empty() && M.FrontQ.front().EligibleCycle <= Now) {
      // Head is present but stalled: attribute to the first unready operand
      // if it was produced by a load miss.
      const InstSlot &S = M.FrontQ.front();
      const DecodedInst &D = *S.DI;
      CycleCat Found = CycleCat::Other;
      for (unsigned U = 0; U < D.NumUses; ++U) {
        unsigned Dense = D.Uses[U];
        if (M.RegReady[Dense] > Now) {
          uint8_t Lvl = M.RegSrcLevel[Dense];
          if (Lvl != 0)
            Found = CatOfLevel(static_cast<cache::Level>(Lvl - 1));
          break;
        }
      }
      Cat = Found;
    }
  } else {
    // OOO: attribute no-issue cycles to the deepest outstanding main-thread
    // demand miss, if any.
    Cat = CycleCat::Other;
    cache::Level Deepest = cache::Level::L1;
    bool Any = false;
    for (const auto &Miss : MainOutstanding) {
      Any = true;
      if (static_cast<unsigned>(Miss.second) >
          static_cast<unsigned>(Deepest))
        Deepest = Miss.second;
    }
    if (Any)
      Cat = CatOfLevel(Deepest);
  }

  return Cat;
}

//===----------------------------------------------------------------------===//
// Main loop
//===----------------------------------------------------------------------===//

uint64_t Simulator::nextEventCycle() const {
  uint64_t Next = UINT64_MAX;
  auto Consider = [&](uint64_t C) {
    if (C > Now && C < Next)
      Next = C;
  };

  const size_t QueueCap = static_cast<size_t>(Cfg.ExpansionQueueBundles) * 3;
  const bool InOrder = Cfg.Pipeline == PipelineKind::InOrder;
  for (const Thread &T : Threads) {
    if (!T.Active)
      continue;
    // A fetch-capable thread fetches as soon as its resume cycle arrives
    // (a fetch candidate always fetches at least one bundle).
    if (!FetchDisabled && !T.FetchStopped && !T.FetchWaitingOnEvent &&
        T.FrontQ.size() < QueueCap)
      Consider(std::max(T.FetchResumeCycle, Now + 1));
    if (!T.FrontQ.empty()) {
      const InstSlot &S = T.FrontQ.front();
      if (S.EligibleCycle > Now) {
        Consider(S.EligibleCycle);
      } else if (InOrder) {
        // Eligible head stalled on operands: each unready operand's ready
        // cycle is an event — issue enabling aside, the Figure 10
        // first-unready-operand attribution can change at each of them.
        const DecodedInst &D = *S.DI;
        bool AnyUnready = false;
        for (unsigned U = 0; U < D.NumUses; ++U)
          if (T.RegReady[D.Uses[U]] > Now) {
            Consider(T.RegReady[D.Uses[U]]);
            AnyUnready = true;
          }
        if (!AnyUnready)
          Consider(Now + 1); // Ready head: issues next tick (defensive).
      } else if (T.Rob.size() < Cfg.RobEntries && T.RsCount < Cfg.RsEntries) {
        Consider(Now + 1); // Eligible head with ROB/RS space: dispatches.
      }
    }
    if (!InOrder) {
      if (T.PendingCompletions > 0)
        Consider(std::max(T.MinPendingComplete, Now + 1));
      if (!T.Rob.empty() && T.Rob.front().Completed)
        Consider(Now + 1); // Retirement backlog (the 6-per-cycle cap).
      // Dispatched entries whose operands are (or become) ready.
      unsigned Left = T.RsCount;
      if (Left > 0)
        for (const InstSlot &S : T.Rob) {
          if (!S.Dispatched || S.Issued)
            continue;
          if (S.NumProd == 0)
            Consider(std::max(S.OperandReadyCycle, Now + 1));
          if (--Left == 0)
            break;
        }
    }
  }

  // An outstanding main-thread miss expiring changes the Figure 10
  // classification (CacheExec / deepest-level attribution).
  for (const auto &Miss : MainOutstanding)
    Consider(Miss.first);

  // Active descriptor streams step (or complete pending gathers) at their
  // own ready cycles; a skipped span must not jump over them.
  for (const ActiveStream &AS : ActiveStreams) {
    if (AS.StepsDone < AS.Depth)
      Consider(std::max(AS.ReadyCycle, Now + 1));
    for (const auto &P : AS.Pending)
      Consider(std::max(P.first, Now + 1));
  }

  // Throttle-evaluation boundaries are always events: evaluateThrottle
  // mutates trigger health there, so a skipped span never crosses one.
  if (Cfg.ThrottleEvalPeriod != 0) {
    uint64_t Phase = ThrottlePow2 ? (Now & (Cfg.ThrottleEvalPeriod - 1))
                                  : Now % Cfg.ThrottleEvalPeriod;
    Consider(Now + Cfg.ThrottleEvalPeriod - Phase);
  }

  // Nothing pending: tick serially so the livelock guard fires exactly as
  // it would without skipping.
  return Next == UINT64_MAX ? Now + 1 : Next;
}

void Simulator::stepCycle() {
  ++Now;
  if (Now > Cfg.MaxCycles)
    fatalError("simulation exceeded MaxCycles (livelock?)");
  pruneMainOutstanding();
  // Boundary test handles any period: strength-reduced mask for powers
  // of two, modulo otherwise, never for a zero period.
  if (Cfg.ThrottleEvalPeriod != 0 &&
      (ThrottlePow2 ? (Now & (Cfg.ThrottleEvalPeriod - 1)) == 0
                    : Now % Cfg.ThrottleEvalPeriod == 0))
    evaluateThrottle();
  std::memset(IssuedThisCycle, 0, sizeof(IssuedThisCycle));
  ActivityThisCycle = false;

  if (Cfg.Pipeline == PipelineKind::InOrder) {
    issueCycleInOrder();
    fetchCycle();
  } else {
    oooWriteback();
    oooResolveRS();
    oooRetire();
    if (MainDone)
      return;
    oooIssue();
    oooDispatch();
    fetchCycle();
  }
  if (!ActiveStreams.empty())
    stepStreams();
  CycleCat Cat = classifyCycle();
  ++Stats.CatCycles[static_cast<unsigned>(Cat)];

  // Event-driven idle skipping: nothing fetched, issued, dispatched,
  // completed or retired this cycle, so every cycle before the next
  // event repeats this one's (in)activity and classification exactly —
  // account the whole span at once and jump.
  if (Cfg.SkipIdleCycles && !ActivityThisCycle) {
    uint64_t Next = nextEventCycle();
    // Keep the livelock guard firing at the same cycle as serial mode.
    if (Next > Cfg.MaxCycles + 1)
      Next = Cfg.MaxCycles + 1;
    if (Next > Now + 1) {
      uint64_t Span = Next - 1 - Now;
      Stats.CatCycles[static_cast<unsigned>(Cat)] += Span;
      Stats.SkippedCycles += Span;
      ++Stats.SkipEvents;
      // One span event for the whole jumped range — the skip path never
      // emits per-cycle events.
      if (Trace)
        Trace->record(0, obs::EventKind::IdleSpan, Now + 1, Span,
                      static_cast<uint64_t>(Cat), 0);
      Now = Next - 1;
    }
  }
}

void Simulator::runDetailedLoop(uint64_t StopMainInsts) {
  while (!MainDone && Stats.MainInsts < StopMainInsts)
    stepCycle();
}

bool Simulator::pipelineEmpty() const {
  for (const Thread &T : Threads)
    if (!T.FrontQ.empty() || !T.Rob.empty())
      return false;
  return true;
}

void Simulator::drainPipeline() {
  FetchDisabled = true;
  while (!MainDone && !pipelineEmpty())
    stepCycle();
  FetchDisabled = false;
}

void Simulator::finalizeExact() {
  // Lines still tracked when the main thread halts were never consumed.
  drainPendingFates();
  Stats.Attribution.clear();
  Stats.Attribution.reserve(Attrib.size());
  for (const auto &[Sid, A] : Attrib) {
    Stats.Attribution.push_back(A);
    Stats.Attribution.back().Trigger = Sid;
  }

  Stats.Cycles = Now;
  Stats.Branches = Bpred.numBranches();
  Stats.BranchMispredicts = Bpred.numMispredicts();
  Stats.CacheTotals = Cache.totals();
  Stats.LoadProfile = Cache.profile();
}

SimStats Simulator::run() {
  if (Cfg.Sample.enabled())
    return runSampled();
  runDetailedLoop(UINT64_MAX);
  finalizeExact();
  return Stats;
}

//===----------------------------------------------------------------------===//
// Two-level sampled simulation
//===----------------------------------------------------------------------===//

namespace {

/// Accumulates (After - Before) into \p Acc, field by field.
void addTotalsDelta(cache::CacheHierarchy::Totals &Acc,
                    const cache::CacheHierarchy::Totals &Before,
                    const cache::CacheHierarchy::Totals &After) {
  Acc.Accesses += After.Accesses - Before.Accesses;
  for (unsigned L = 0; L < 4; ++L) {
    Acc.Hits[L] += After.Hits[L] - Before.Hits[L];
    Acc.Partials[L] += After.Partials[L] - Before.Partials[L];
  }
  Acc.FillBufferStallCycles +=
      After.FillBufferStallCycles - Before.FillBufferStallCycles;
  Acc.TLBMisses += After.TLBMisses - Before.TLBMisses;
}

} // namespace

SimStats Simulator::runSampled() {
  const SamplingPlan Plan = Cfg.Sample;
  assert(Plan.DetailInsts > 0 && "enabled plan requires a detail interval");
  // The obs contract under sampling: attribution stays exact *within*
  // measured detailed intervals (and is extrapolated like every other
  // counter), but event tracing is disabled — an extrapolated run cannot
  // emit a faithful per-event stream. Pinned in tests/sample_test.cpp.
  Trace = nullptr;

  // Everything extrapolated is accumulated as *measured-window deltas*:
  // the detailed ramp (unmeasured detail that re-populates the pipeline
  // and the speculative-thread contexts after a functional gap) runs
  // through the same counters, so wholesale scaling of Stats would charge
  // the windows for work done outside them.
  struct SspCounters {
    uint64_t SpecInsts, TriggersFired, TriggersIgnored, SpawnsSucceeded,
        SpawnsDropped, SpecWildLoads, SpecPrefetches, ThrottleEvents,
        StreamActivations, StreamSteps;
  };
  auto snapCounters = [this]() -> SspCounters {
    return {Stats.SpecInsts,     Stats.TriggersFired, Stats.TriggersIgnored,
            Stats.SpawnsSucceeded, Stats.SpawnsDropped, Stats.SpecWildLoads,
            Stats.SpecPrefetches, Stats.ThrottleEvents,
            Stats.StreamActivations, Stats.StreamSteps};
  };

  uint64_t DetailCycles = 0;
  uint64_t DetailMainInsts = 0;
  uint64_t FunctionalInsts = 0;
  uint64_t RampInsts = 0;
  uint64_t DetailBranches = 0;
  uint64_t DetailMispredicts = 0;
  uint64_t DetailCat[NumCycleCats] = {};
  SspCounters Meas = {};
  cache::CacheHierarchy::Totals DetailTotals;
  ir::DenseSidMap<PrefetchAttribution> MeasAttrib;
  ir::DenseSidMap<PrefetchAttribution> AttribBefore;

  bool First = true;
  while (!MainDone) {
    // Detailed ramp before every measured window except the first: the
    // run itself starts detailed (cold-start exact), so the first window
    // needs no lead-in.
    if (!First && Plan.RampInsts > 0) {
      const uint64_t RampStart = Stats.MainInsts;
      runDetailedLoop(Stats.MainInsts + Plan.RampInsts);
      RampInsts += Stats.MainInsts - RampStart;
      if (MainDone)
        break;
    }
    First = false;

    const uint64_t StartCycle = Now;
    const uint64_t StartMain = Stats.MainInsts;
    const uint64_t StartBranches = Bpred.numBranches();
    const uint64_t StartMispredicts = Bpred.numMispredicts();
    const cache::CacheHierarchy::Totals StartTotals = Cache.totals();
    const SspCounters C0 = snapCounters();
    uint64_t StartCat[NumCycleCats];
    std::memcpy(StartCat, Stats.CatCycles, sizeof(StartCat));
    AttribBefore = Attrib;

    runDetailedLoop(Stats.MainInsts + Plan.DetailInsts);
    drainPipeline();
    // Interval close, inside the measurement: speculative work does not
    // survive a functional gap (the functional levels execute the main
    // thread only). Contexts are freed — the ramp before the next window
    // re-populates them — and every still-pending prefetched line
    // resolves its fate now, so fates are measured per detail interval.
    for (Thread &T : Threads)
      if (T.Speculative)
        T.Active = false;
    ActiveStreams.clear();
    drainPendingFates();
    PrefetchedLines.clear();
    for (auto &[Sid, H] : TriggerStats)
      H.InFlight = 0;

    ++Stats.SampleIntervals;
    DetailCycles += Now - StartCycle;
    DetailMainInsts += Stats.MainInsts - StartMain;
    DetailBranches += Bpred.numBranches() - StartBranches;
    DetailMispredicts += Bpred.numMispredicts() - StartMispredicts;
    addTotalsDelta(DetailTotals, StartTotals, Cache.totals());
    for (unsigned C = 0; C < NumCycleCats; ++C)
      DetailCat[C] += Stats.CatCycles[C] - StartCat[C];
    const SspCounters C1 = snapCounters();
    Meas.SpecInsts += C1.SpecInsts - C0.SpecInsts;
    Meas.TriggersFired += C1.TriggersFired - C0.TriggersFired;
    Meas.TriggersIgnored += C1.TriggersIgnored - C0.TriggersIgnored;
    Meas.SpawnsSucceeded += C1.SpawnsSucceeded - C0.SpawnsSucceeded;
    Meas.SpawnsDropped += C1.SpawnsDropped - C0.SpawnsDropped;
    Meas.SpecWildLoads += C1.SpecWildLoads - C0.SpecWildLoads;
    Meas.SpecPrefetches += C1.SpecPrefetches - C0.SpecPrefetches;
    Meas.ThrottleEvents += C1.ThrottleEvents - C0.ThrottleEvents;
    Meas.StreamActivations += C1.StreamActivations - C0.StreamActivations;
    Meas.StreamSteps += C1.StreamSteps - C0.StreamSteps;
    for (const auto &[Sid, A] : Attrib) {
      PrefetchAttribution &M = MeasAttrib[Sid];
      M.Slice = A.Slice;
      if (A.MaxChainDepth > M.MaxChainDepth)
        M.MaxChainDepth = A.MaxChainDepth;
      auto It = AttribBefore.find(Sid);
      const PrefetchAttribution *B =
          It != AttribBefore.end() ? &It->second : nullptr;
      M.Spawns += A.Spawns - (B ? B->Spawns : 0);
      for (unsigned F = 0; F < NumPrefetchFates; ++F)
        M.Fates[F] += A.Fates[F] - (B ? B->Fates[F] : 0);
      M.LateCycles += A.LateCycles - (B ? B->LateCycles : 0);
    }
    if (MainDone)
      break;

    // Functional fast-forward: architectural state only.
    if (Plan.FastForwardInsts > 0) {
      FunctionalResult R =
          fastForward(Threads[0].Ctx, LP, Mem, Plan.FastForwardInsts);
      FunctionalInsts += R.Insts;
      Now += R.Insts; // One nominal cycle per instruction.
      if (R.Halted) {
        MainDone = true;
        break;
      }
    }
    // Functional warming immediately before the ramp and the next
    // measured window: caches, TLB and predictor reach steady state again
    // so the measurement does not pay (or enjoy) a cold
    // microarchitecture.
    if (Plan.WarmupInsts > 0) {
      FunctionalResult R = warmForward(Threads[0].Ctx, LP, Mem, Cache, Bpred,
                                       Now, Plan.WarmupInsts);
      FunctionalInsts += R.Insts;
      if (R.Halted) {
        MainDone = true;
        break;
      }
    }
  }

  // Fates still pending when the run ended outside a measured window
  // (e.g. during the ramp) resolve into the exact Attrib but not into the
  // extrapolated stats — like any other unmeasured work.
  drainPendingFates();

  // Extrapolation: every rate-like counter scales by the ratio of total
  // main-thread instructions to *measured* detailed main-thread
  // instructions. MainInsts itself is exact (detail-issued plus
  // functional).
  const uint64_t DetailMain = DetailMainInsts;
  const uint64_t TotalMain = Stats.MainInsts + FunctionalInsts;
  const double Ratio = DetailMain == 0 ? 1.0
                                       : static_cast<double>(TotalMain) /
                                             static_cast<double>(DetailMain);
  auto Scale = [Ratio](uint64_t V) {
    return static_cast<uint64_t>(
        std::llround(static_cast<double>(V) * Ratio));
  };

  Stats.Sampled = true;
  Stats.SampleDetailInsts = DetailMain;
  Stats.SampleFunctionalInsts = FunctionalInsts;
  Stats.SampleRampInsts = RampInsts;
  Stats.MainInsts = TotalMain;

  Stats.Cycles = Scale(DetailCycles);
  for (unsigned C = 0; C < NumCycleCats; ++C)
    Stats.CatCycles[C] = Scale(DetailCat[C]);
  Stats.SpecInsts = Scale(Meas.SpecInsts);
  Stats.TriggersFired = Scale(Meas.TriggersFired);
  Stats.TriggersIgnored = Scale(Meas.TriggersIgnored);
  Stats.SpawnsSucceeded = Scale(Meas.SpawnsSucceeded);
  Stats.SpawnsDropped = Scale(Meas.SpawnsDropped);
  Stats.SpecWildLoads = Scale(Meas.SpecWildLoads);
  Stats.SpecPrefetches = Scale(Meas.SpecPrefetches);
  Stats.ThrottleEvents = Scale(Meas.ThrottleEvents);
  Stats.StreamActivations = Scale(Meas.StreamActivations);
  Stats.StreamSteps = Scale(Meas.StreamSteps);
  Stats.Branches = Scale(DetailBranches);
  Stats.BranchMispredicts = Scale(DetailMispredicts);

  cache::CacheHierarchy::Totals ScaledTotals = DetailTotals;
  ScaledTotals.Accesses = Scale(ScaledTotals.Accesses);
  for (unsigned L = 0; L < 4; ++L) {
    ScaledTotals.Hits[L] = Scale(ScaledTotals.Hits[L]);
    ScaledTotals.Partials[L] = Scale(ScaledTotals.Partials[L]);
  }
  ScaledTotals.FillBufferStallCycles = Scale(ScaledTotals.FillBufferStallCycles);
  ScaledTotals.TLBMisses = Scale(ScaledTotals.TLBMisses);
  Stats.CacheTotals = ScaledTotals;

  // Attribution: per-trigger measured fates scale like the global
  // counters; UsefulPrefetches is re-derived from the scaled fates so the
  //   UsefulPrefetches == sum of useful()
  // invariant (tests/sim_test.cpp) survives rounding. MaxChainDepth is a
  // high-water mark, not a rate, and stays unscaled.
  Stats.Attribution.clear();
  Stats.Attribution.reserve(MeasAttrib.size());
  uint64_t UsefulScaled = 0;
  for (const auto &[Sid, A] : MeasAttrib) {
    PrefetchAttribution Scaled = A;
    Scaled.Trigger = Sid;
    Scaled.Spawns = Scale(Scaled.Spawns);
    for (unsigned F = 0; F < NumPrefetchFates; ++F)
      Scaled.Fates[F] = Scale(Scaled.Fates[F]);
    Scaled.LateCycles = Scale(Scaled.LateCycles);
    UsefulScaled += Scaled.useful();
    Stats.Attribution.push_back(Scaled);
  }
  Stats.UsefulPrefetches = UsefulScaled;

  // The load profile covers the detailed stretches (measured and ramp)
  // exactly and is not extrapolated: its consumers (delinquent-load
  // selection) rank loads by relative miss volume, which systematic
  // sampling preserves.
  Stats.LoadProfile = Cache.profile();
  return Stats;
}
