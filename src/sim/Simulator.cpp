//===- sim/Simulator.cpp - Cycle-level SMT Itanium simulator --------------===//

#include "sim/Simulator.h"

#include "support/Assert.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace ssp;
using namespace ssp::sim;
using namespace ssp::ir;

namespace {

/// Insertion sort for the tiny (<= NumThreads) arbitration arrays; avoids
/// std::sort's codegen on fixed-size buffers.
template <typename LessT>
void sortSmall(unsigned *Begin, unsigned N, LessT Less) {
  for (unsigned I = 1; I < N; ++I) {
    unsigned V = Begin[I];
    unsigned J = I;
    while (J > 0 && Less(V, Begin[J - 1])) {
      Begin[J] = Begin[J - 1];
      --J;
    }
    Begin[J] = V;
  }
}

} // namespace

Simulator::Simulator(const MachineConfig &Cfg, const LinkedProgram &LP,
                     mem::SimMemory &Mem)
    : Cfg(Cfg), LP(LP), Mem(Mem), Cache(Cfg.Cache, Cfg.NumThreads),
      Bpred(Cfg.NumThreads), Threads(Cfg.NumThreads) {
  Cache.setPerfectMemory(Cfg.PerfectMemory);
  Cache.setPerfectLoads(Cfg.PerfectLoads);
  Threads[0].Active = true;
  Threads[0].Speculative = false;
  Threads[0].Ctx.PC = LP.entry();
}

unsigned Simulator::fuLimit(FuncUnit FU) const {
  switch (FU) {
  case FuncUnit::None:
    return ~0u;
  case FuncUnit::Int:
    return Cfg.IntUnits;
  case FuncUnit::FP:
    return Cfg.FPUnits;
  case FuncUnit::Mem:
    return Cfg.MemPorts;
  case FuncUnit::Br:
    return Cfg.BranchUnits;
  }
  ssp_unreachable("bad func unit");
}

bool Simulator::hasFreeContext() const {
  for (const Thread &T : Threads)
    if (!T.Active)
      return true;
  return false;
}

bool Simulator::chkCWouldFire(const LinkedInst &LI) const {
  if (!hasFreeContext())
    return false;
  if (LI.I->Op != Opcode::ChkC || !Cfg.EnableSSPThrottle)
    return true;
  auto It = TriggerStats.find(LI.Sid);
  return It == TriggerStats.end() || It->second.DisabledUntil <= Now;
}

void Simulator::evaluateThrottle() {
  // Periodic verdicts: in steady state, a healthy chain's per-period
  // consumption credits keep pace with its prefetches; a useless one
  // (cache-resident data) accumulates touches without credits.
  for (auto &[Sid, H] : TriggerStats) {
    // Two failure signatures: (a) the trigger's threads touch memory but
    // almost never move a line up from L3/memory (the data is cached
    // anyway), or (b) the lines they do move are neither consumed timely
    // nor still awaiting consumption (a healthy long-range chain is
    // *supposed* to be far ahead, so pending lines count as presumed
    // useful).
    if (std::getenv("SSP_THROTTLE_TRACE"))
      std::fprintf(stderr,
                   "[throttle] now=%llu sid=%llx pre=%llu trk=%llu use=%llu "
                   "inflight=%llu\n",
                   (unsigned long long)Now, (unsigned long long)Sid,
                   (unsigned long long)H.Prefetches,
                   (unsigned long long)H.Tracked,
                   (unsigned long long)H.Useful,
                   (unsigned long long)H.InFlight);
    if (H.Prefetches < Cfg.ThrottleMinSample)
      continue; // Too small a sample; let it accumulate.
    // Credits (timely consumptions plus lines still pending) must keep
    // pace with the work: the demand is the tracked lines, but a trigger
    // whose threads touch plenty while moving almost nothing is judged
    // against its touch volume instead (cache-resident data).
    double Demand = std::max<double>(static_cast<double>(H.Tracked),
                                     static_cast<double>(H.Prefetches) / 8);
    bool Useless = static_cast<double>(H.Useful + H.InFlight) <
                   Cfg.ThrottleMinUseful * Demand;
    if (Cfg.EnableSSPThrottle && Useless) {
      H.DisabledUntil = Now + Cfg.ThrottlePenalty;
      ++Stats.ThrottleEvents;
    }
    H.Prefetches = 0;
    H.Tracked = 0;
    H.Useful = 0;
  }
}

void Simulator::noteDataAccess(unsigned Tid, const InstSlot &S,
                               const cache::AccessResult &R) {
  uint64_t Line = S.Out.MemAddr / Cfg.Cache.L1.LineBytes;
  Thread &T = Threads[Tid];
  if (T.Speculative) {
    // A speculative touch is a prefetch on behalf of its trigger.
    ++Stats.SpecPrefetches;
    if (T.OriginTrigger == 0)
      return;
    // Only a touch that actually moved the line up from L3/memory can be
    // credited later: touching an already-near line is the signature of
    // a useless prefetch (the data was cached anyway).
    bool MovedLine = R.ServedBy == cache::Level::L3 ||
                     R.ServedBy == cache::Level::Mem;
    if (MovedLine) {
      if (PrefetchedLines.size() > (1u << 16)) {
        PrefetchedLines.clear(); // Bound the table; stale entries lapse.
        for (auto &[Sid2, H2] : TriggerStats)
          H2.InFlight = 0;
      }
      if (PrefetchedLines.insertOrAssign(Line, T.OriginTrigger))
        ++TriggerStats[T.OriginTrigger].InFlight;
      ++TriggerStats[T.OriginTrigger].Tracked;
    }
    ++TriggerStats[T.OriginTrigger].Prefetches;
    return;
  }
  if (!S.Out.IsLoad)
    return;
  // Main-thread consumption: a prefetched line consumed quickly counts as
  // a timely ("useful") prefetch for its trigger.
  ir::StaticId *Origin = PrefetchedLines.find(Line);
  if (!Origin)
    return;
  // Timely enough, or still in flight (the prefetch overlapped part of
  // the miss): either way the thread reduced latency.
  TriggerHealth &H = TriggerStats[*Origin];
  if (H.InFlight > 0)
    --H.InFlight;
  // The prefetch helped if the main thread did not pay a full memory
  // access for the line: it was still cached at some level (TLB penalties
  // are the main thread's own) or the fetch was at least in flight.
  if (R.Partial || R.ServedBy != cache::Level::Mem) {
    ++Stats.UsefulPrefetches;
    ++H.Useful;
  }
  PrefetchedLines.erase(Line);
}

void Simulator::trySpawn(const ExecOutcome &Out, unsigned SpawnerTid) {
  const Thread &Spawner = Threads[SpawnerTid];
  ir::StaticId Origin = Spawner.Speculative ? Spawner.OriginTrigger
                                            : Spawner.LastFiredTrigger;
  for (Thread &T : Threads) {
    if (T.Active)
      continue;
    T.resetForSpawn();
    T.Active = true;
    T.Speculative = true;
    T.OriginTrigger = Origin;
    T.Ctx.PC = Out.SpawnTargetAddr;
    std::memcpy(T.Ctx.LIBIn, Out.SpawnFrame, sizeof(T.Ctx.LIBIn));
    // The new context begins fetching next cycle.
    T.FetchResumeCycle = Now + 1;
    ++Stats.SpawnsSucceeded;
    return;
  }
  ++Stats.SpawnsDropped;
}

//===----------------------------------------------------------------------===//
// Fetch (shared by both pipelines)
//===----------------------------------------------------------------------===//

void Simulator::fetchCycle() {
  // Candidate threads, least-recently-fetched first.
  unsigned Order[8];
  unsigned N = 0;
  for (unsigned Tid = 0; Tid < Threads.size(); ++Tid) {
    Thread &T = Threads[Tid];
    if (!T.Active || T.FetchStopped || T.FetchWaitingOnEvent)
      continue;
    if (Now < T.FetchResumeCycle)
      continue;
    if (T.FrontQ.size() >= Cfg.ExpansionQueueBundles * 3)
      continue;
    Order[N++] = Tid;
  }
  if (Cfg.Fetch == FetchPolicy::ICount) {
    // ICOUNT: fewest in-flight pre-issue instructions first.
    sortSmall(Order, N, [this](unsigned A, unsigned B) {
      size_t IA = Threads[A].FrontQ.size() + Threads[A].RsCount;
      size_t IB = Threads[B].FrontQ.size() + Threads[B].RsCount;
      if (IA != IB)
        return IA < IB;
      return Threads[A].LastFetchCycle < Threads[B].LastFetchCycle;
    });
  } else {
    sortSmall(Order, N, [this](unsigned A, unsigned B) {
      if (Threads[A].LastFetchCycle != Threads[B].LastFetchCycle)
        return Threads[A].LastFetchCycle < Threads[B].LastFetchCycle;
      return A < B;
    });
  }

  unsigned BundlesLeft = Cfg.FetchBundlesPerCycle;
  unsigned ThreadsUsed = 0;
  for (unsigned I = 0; I < N && BundlesLeft > 0 && ThreadsUsed < 2; ++I) {
    unsigned Cap = ThreadsUsed == 0 ? BundlesLeft : 1;
    unsigned Got = fetchThread(Order[I], Cap);
    if (Got > 0) {
      ++ThreadsUsed;
      BundlesLeft -= Got;
      Threads[Order[I]].LastFetchCycle = Now;
    }
  }
}

unsigned Simulator::fetchThread(unsigned Tid, unsigned MaxBundles) {
  Thread &T = Threads[Tid];
  const size_t QueueCap = static_cast<size_t>(Cfg.ExpansionQueueBundles) * 3;
  unsigned Bundles = 0;

  while (Bundles < MaxBundles) {
    if (T.FrontQ.size() >= QueueCap || T.FetchStopped ||
        T.FetchWaitingOnEvent)
      break;
    uint32_t CurBundle = LP.at(T.Ctx.PC).BundleId;
    bool FetchedAny = false;
    bool EndCycle = false;

    while (T.FrontQ.size() < QueueCap) {
      if (LP.at(T.Ctx.PC).BundleId != CurBundle)
        break; // Bundle boundary.

      InstSlot S;
      S.LI = &LP.at(T.Ctx.PC);
      S.FetchCycle = Now;
      S.EligibleCycle = Now + Cfg.frontLatency();
      uint64_t FetchPC = T.Ctx.PC;

      executeStep(T.Ctx, LP, Mem, T.Speculative, chkCWouldFire(*S.LI),
                  S.Out);
      FetchedAny = true;

      bool InOrder = Cfg.Pipeline == PipelineKind::InOrder;
      switch (S.Out.Kind) {
      case CtrlKind::Fall:
      case CtrlKind::SpawnPoint:
      case CtrlKind::ChkCNop:
        if (S.Out.Kind == CtrlKind::ChkCNop)
          ++Stats.TriggersIgnored;
        break;
      case CtrlKind::Branch: {
        bool Correct =
            Bpred.predictAndTrainDirection(FetchPC, Tid, S.Out.Taken);
        if (!Correct) {
          S.Mispredicted = true;
          S.Resume = ResumeEvent::AtIssue; // Resolves at execute.
          S.ResumeDelay = 1;
          T.FetchWaitingOnEvent = true;
        }
        if (S.Out.Taken)
          EndCycle = true; // Taken transfers end the cycle's fetch.
        break;
      }
      case CtrlKind::DirectJump:
        EndCycle = true; // Statically known target: no bubble beyond this.
        break;
      case CtrlKind::IndirectJump: {
        bool Correct = Bpred.predictAndTrainTarget(FetchPC, T.Ctx.PC);
        if (!Correct) {
          S.Mispredicted = true;
          S.Resume = ResumeEvent::AtIssue;
          S.ResumeDelay = 1;
          T.FetchWaitingOnEvent = true;
        }
        EndCycle = true;
        break;
      }
      case CtrlKind::ChkCFired:
        T.LastFiredTrigger = S.LI->Sid;
        // The spawn exception is taken at retirement; the hardware
        // predicts "no exception" so fetch is not stalled until then —
        // the cost is a full pipeline flush and refill when it fires.
        // Modeled as a redirect charged at issue, deepened by the
        // pipeline depth on the OOO model.
        ++Stats.TriggersFired;
        S.Resume = ResumeEvent::AtIssue;
        S.ResumeDelay = Cfg.ExceptionRestartDelay +
                        (InOrder ? 0 : Cfg.pipelineDepth());
        T.FetchWaitingOnEvent = true;
        break;
      case CtrlKind::RfiReturn:
        S.Resume = ResumeEvent::AtIssue;
        S.ResumeDelay = InOrder ? 1 : Cfg.pipelineDepth();
        T.FetchWaitingOnEvent = true;
        break;
      case CtrlKind::Halt:
      case CtrlKind::Kill:
        T.FetchStopped = true;
        break;
      }

      T.FrontQ.push_back(std::move(S));
      if (T.FetchWaitingOnEvent || T.FetchStopped) {
        EndCycle = true;
        break;
      }
      if (EndCycle)
        break;
    }

    if (FetchedAny)
      ++Bundles;
    if (EndCycle || T.FetchStopped || T.FetchWaitingOnEvent)
      break;
    if (!FetchedAny)
      break; // Queue full.
  }
  return Bundles;
}

//===----------------------------------------------------------------------===//
// Issue-time effects (shared)
//===----------------------------------------------------------------------===//

void Simulator::applyIssueTiming(unsigned Tid, InstSlot &S) {
  Thread &T = Threads[Tid];
  const Instruction &I = *S.LI->I;
  S.Issued = true;
  S.IssueCycle = Now;
  uint64_t Complete = Now + latencyOf(I.Op);

  if (S.Out.IsMem) {
    bool Collect = !T.Speculative && S.Out.IsLoad;
    cache::AccessResult R =
        Cache.access(S.Out.MemAddr, Now, S.LI->Sid, Tid, Collect);
    S.ServedBy = R.ServedBy;
    S.Partial = R.Partial;
    noteDataAccess(Tid, S, R);
    if (S.Out.IsLoad) {
      Complete = R.ReadyCycle;
      if (!T.Speculative && R.ServedBy != cache::Level::L1)
        MainOutstanding.push_back({R.ReadyCycle, R.ServedBy});
    } else {
      // Stores and prefetches occupy the port but never block the thread.
      Complete = Now + 1;
    }
    if (S.Out.WildLoad)
      ++Stats.SpecWildLoads;
  }

  S.CompleteCycle = Complete;

  // In-order scoreboard update (harmless for OOO; its consumers use the
  // rename map instead).
  Reg D = I.def();
  if (D.isValid()) {
    unsigned Dense = D.denseIndex();
    T.RegReady[Dense] = Complete;
    T.RegSrcLevel[Dense] =
        S.Out.IsLoad ? static_cast<uint8_t>(1 + static_cast<unsigned>(
                                                    S.ServedBy))
                     : 0;
  }

  if (S.Out.HasSpawn)
    trySpawn(S.Out, Tid);

  if (S.Resume == ResumeEvent::AtIssue)
    fireResume(Tid, S);

  if (S.Out.Kind == CtrlKind::Halt && !T.Speculative)
    MainDone = true;

  if (T.Speculative)
    ++Stats.SpecInsts;
  else
    ++Stats.MainInsts;
  ++IssuedThisCycle[Tid];
}

void Simulator::fireResume(unsigned Tid, const InstSlot &S) {
  Thread &T = Threads[Tid];
  T.FetchWaitingOnEvent = false;
  T.FetchResumeCycle = Now + S.ResumeDelay;
}

//===----------------------------------------------------------------------===//
// In-order issue
//===----------------------------------------------------------------------===//

void Simulator::issueCycleInOrder() {
  unsigned FUUsed[5] = {0, 0, 0, 0, 0};

  unsigned Order[8];
  unsigned N = 0;
  for (unsigned Tid = 0; Tid < Threads.size(); ++Tid)
    if (Threads[Tid].Active && !Threads[Tid].FrontQ.empty())
      Order[N++] = Tid;
  sortSmall(Order, N, [this](unsigned A, unsigned B) {
    if (Threads[A].LastIssueCycle != Threads[B].LastIssueCycle)
      return Threads[A].LastIssueCycle < Threads[B].LastIssueCycle;
    return A < B;
  });

  unsigned BundlesLeft = Cfg.IssueBundlesPerCycle;
  unsigned ThreadsUsed = 0;
  for (unsigned I = 0; I < N && BundlesLeft > 0 && ThreadsUsed < 2; ++I) {
    unsigned Cap = ThreadsUsed == 0 ? BundlesLeft : 1;
    unsigned Got = issueFromThreadInOrder(Order[I], Cap, FUUsed);
    if (Got > 0) {
      ++ThreadsUsed;
      BundlesLeft -= Got;
      Threads[Order[I]].LastIssueCycle = Now;
    }
  }
}

unsigned Simulator::issueFromThreadInOrder(unsigned Tid, unsigned MaxBundles,
                                           unsigned FUUsed[]) {
  Thread &T = Threads[Tid];
  unsigned Bundles = 0;
  uint64_t CurBundle = UINT64_MAX;

  while (!T.FrontQ.empty()) {
    InstSlot &S = T.FrontQ.front();
    if (S.EligibleCycle > Now)
      break;

    // Starting a new bundle requires budget.
    if (S.LI->BundleId != CurBundle && Bundles == MaxBundles)
      break;

    // In-order stall-on-use: the head blocks until its operands are ready.
    bool Ready = true;
    S.LI->I->forEachUse([&](Reg R) {
      if (T.RegReady[R.denseIndex()] > Now)
        Ready = false;
    });
    if (!Ready)
      break;

    FuncUnit FU = funcUnitOf(S.LI->I->Op);
    if (FU != FuncUnit::None &&
        FUUsed[static_cast<unsigned>(FU)] >= fuLimit(FU))
      break;

    if (S.LI->BundleId != CurBundle) {
      CurBundle = S.LI->BundleId;
      ++Bundles;
    }
    if (FU != FuncUnit::None)
      ++FUUsed[static_cast<unsigned>(FU)];

    applyIssueTiming(Tid, S);
    bool WasKill = S.Out.Kind == CtrlKind::Kill;
    T.FrontQ.pop_front();
    if (WasKill) {
      T.Active = false;
      break;
    }
  }
  return Bundles;
}

//===----------------------------------------------------------------------===//
// Out-of-order pipeline phases
//===----------------------------------------------------------------------===//

void Simulator::oooWriteback() {
  for (Thread &T : Threads) {
    if (!T.Active && T.Rob.empty())
      continue;
    for (InstSlot &S : T.Rob) {
      if (!S.Issued || S.Completed || S.CompleteCycle > Now)
        continue;
      S.Completed = true;
      Reg D = S.LI->I->def();
      if (D.isValid()) {
        unsigned Dense = D.denseIndex();
        if (T.RegProd[Dense] == &S) {
          T.RegProd[Dense] = nullptr;
          T.RegReady[Dense] = S.CompleteCycle;
        }
      }
    }
  }
}

void Simulator::oooResolveRS() {
  for (Thread &T : Threads) {
    for (InstSlot &S : T.Rob) {
      if (!S.Dispatched || S.Issued || S.NumProd == 0)
        continue;
      unsigned Keep = 0;
      for (unsigned I = 0; I < S.NumProd; ++I) {
        InstSlot *P = S.Prod[I];
        if (P->Completed) {
          S.OperandReadyCycle =
              std::max(S.OperandReadyCycle, P->CompleteCycle);
        } else {
          S.Prod[Keep++] = P;
        }
      }
      S.NumProd = Keep;
    }
  }
}

void Simulator::oooRetire() {
  for (unsigned Tid = 0; Tid < Threads.size(); ++Tid) {
    Thread &T = Threads[Tid];
    unsigned Retired = 0;
    while (!T.Rob.empty() && Retired < 6) {
      InstSlot &S = T.Rob.front();
      if (!S.Completed || S.CompleteCycle > Now)
        break;
      if (S.Resume == ResumeEvent::AtRetire)
        fireResume(Tid, S);
      bool WasKill = S.Out.Kind == CtrlKind::Kill;
      bool WasHalt = S.Out.Kind == CtrlKind::Halt;
      // Clear any rename-map entry still pointing at this slot before the
      // storage is reclaimed.
      Reg D = S.LI->I->def();
      if (D.isValid() && T.RegProd[D.denseIndex()] == &S)
        T.RegProd[D.denseIndex()] = nullptr;
      T.Rob.pop_front();
      ++Retired;
      if (WasKill) {
        T.Active = false;
        break;
      }
      if (WasHalt && !T.Speculative)
        MainDone = true;
    }
  }
}

void Simulator::oooIssue() {
  // Gather ready reservation-station entries, oldest first.
  struct Cand {
    InstSlot *S;
    unsigned Tid;
  };
  std::vector<Cand> Ready;
  for (unsigned Tid = 0; Tid < Threads.size(); ++Tid) {
    Thread &T = Threads[Tid];
    for (InstSlot &S : T.Rob) {
      if (!S.Dispatched || S.Issued)
        continue;
      if (S.NumProd != 0 || S.OperandReadyCycle > Now)
        continue;
      Ready.push_back({&S, Tid});
    }
  }
  std::sort(Ready.begin(), Ready.end(), [](const Cand &A, const Cand &B) {
    if (A.S->FetchCycle != B.S->FetchCycle)
      return A.S->FetchCycle < B.S->FetchCycle;
    return A.Tid < B.Tid;
  });

  unsigned FUUsed[5] = {0, 0, 0, 0, 0};
  unsigned IssuedCount = 0;
  const unsigned IssueWidth = Cfg.IssueBundlesPerCycle * 3;
  for (Cand &C : Ready) {
    if (IssuedCount >= IssueWidth)
      break;
    FuncUnit FU = funcUnitOf(C.S->LI->I->Op);
    if (FU != FuncUnit::None &&
        FUUsed[static_cast<unsigned>(FU)] >= fuLimit(FU))
      continue;
    if (FU != FuncUnit::None)
      ++FUUsed[static_cast<unsigned>(FU)];
    applyIssueTiming(C.Tid, *C.S);
    assert(Threads[C.Tid].RsCount > 0);
    --Threads[C.Tid].RsCount;
    ++IssuedCount;
  }
}

void Simulator::oooDispatch() {
  unsigned Order[8];
  unsigned N = 0;
  for (unsigned Tid = 0; Tid < Threads.size(); ++Tid)
    if (Threads[Tid].Active && !Threads[Tid].FrontQ.empty())
      Order[N++] = Tid;
  sortSmall(Order, N, [this](unsigned A, unsigned B) {
    if (Threads[A].LastIssueCycle != Threads[B].LastIssueCycle)
      return Threads[A].LastIssueCycle < Threads[B].LastIssueCycle;
    return A < B;
  });

  unsigned BundlesLeft = Cfg.IssueBundlesPerCycle;
  unsigned ThreadsUsed = 0;
  for (unsigned I = 0; I < N && BundlesLeft > 0 && ThreadsUsed < 2; ++I) {
    unsigned Cap = ThreadsUsed == 0 ? BundlesLeft : 1;
    unsigned Got = oooDispatchThread(Order[I], Cap);
    if (Got > 0) {
      ++ThreadsUsed;
      BundlesLeft -= Got;
      Threads[Order[I]].LastIssueCycle = Now;
    }
  }
}

unsigned Simulator::oooDispatchThread(unsigned Tid, unsigned MaxBundles) {
  Thread &T = Threads[Tid];
  unsigned Bundles = 0;
  uint64_t CurBundle = UINT64_MAX;

  while (!T.FrontQ.empty()) {
    InstSlot &Head = T.FrontQ.front();
    if (Head.EligibleCycle > Now)
      break;
    if (T.Rob.size() >= Cfg.RobEntries || T.RsCount >= Cfg.RsEntries)
      break;
    if (Head.LI->BundleId != CurBundle && Bundles == MaxBundles)
      break;
    if (Head.LI->BundleId != CurBundle) {
      CurBundle = Head.LI->BundleId;
      ++Bundles;
    }

    T.Rob.push_back(std::move(Head));
    T.FrontQ.pop_front();
    InstSlot &S = T.Rob.back();
    S.Dispatched = true;
    ++T.RsCount;

    // Capture operand producers (register renaming happens here: each use
    // binds to the latest prior writer of that register).
    S.NumProd = 0;
    S.OperandReadyCycle = 0;
    S.LI->I->forEachUse([&](Reg R) {
      unsigned Dense = R.denseIndex();
      if (InstSlot *P = T.RegProd[Dense]) {
        if (S.NumProd < 2)
          S.Prod[S.NumProd++] = P;
      } else {
        S.OperandReadyCycle =
            std::max(S.OperandReadyCycle, T.RegReady[Dense]);
      }
    });
    Reg D = S.LI->I->def();
    if (D.isValid())
      T.RegProd[D.denseIndex()] = &S;
  }
  return Bundles;
}

//===----------------------------------------------------------------------===//
// Cycle accounting (Figure 10)
//===----------------------------------------------------------------------===//

void Simulator::pruneMainOutstanding() {
  size_t Keep = 0;
  for (size_t I = 0; I < MainOutstanding.size(); ++I)
    if (MainOutstanding[I].first > Now)
      MainOutstanding[Keep++] = MainOutstanding[I];
  MainOutstanding.resize(Keep);
}

bool Simulator::mainMissOutstanding() { return !MainOutstanding.empty(); }

void Simulator::classifyCycle() {
  Thread &M = Threads[0];
  CycleCat Cat;

  auto CatOfLevel = [](cache::Level L) {
    switch (L) {
    case cache::Level::L2:
      return CycleCat::L1; // Missed L1, served by L2.
    case cache::Level::L3:
      return CycleCat::L2; // Missed L2, served by L3.
    case cache::Level::Mem:
      return CycleCat::L3; // Missed L3, served by memory.
    case cache::Level::L1:
      break;
    }
    return CycleCat::Other;
  };

  if (IssuedThisCycle[0] > 0) {
    Cat = mainMissOutstanding() ? CycleCat::CacheExec : CycleCat::Exec;
  } else if (Cfg.Pipeline == PipelineKind::InOrder) {
    Cat = CycleCat::Other;
    if (!M.FrontQ.empty() && M.FrontQ.front().EligibleCycle <= Now) {
      // Head is present but stalled: attribute to the first unready operand
      // if it was produced by a load miss.
      const InstSlot &S = M.FrontQ.front();
      CycleCat Found = CycleCat::Other;
      bool Done = false;
      S.LI->I->forEachUse([&](Reg R) {
        if (Done)
          return;
        unsigned Dense = R.denseIndex();
        if (M.RegReady[Dense] > Now) {
          uint8_t Lvl = M.RegSrcLevel[Dense];
          if (Lvl != 0)
            Found = CatOfLevel(static_cast<cache::Level>(Lvl - 1));
          Done = true;
        }
      });
      Cat = Found;
    }
  } else {
    // OOO: attribute no-issue cycles to the deepest outstanding main-thread
    // demand miss, if any.
    Cat = CycleCat::Other;
    cache::Level Deepest = cache::Level::L1;
    bool Any = false;
    for (const auto &Miss : MainOutstanding) {
      Any = true;
      if (static_cast<unsigned>(Miss.second) >
          static_cast<unsigned>(Deepest))
        Deepest = Miss.second;
    }
    if (Any)
      Cat = CatOfLevel(Deepest);
  }

  ++Stats.CatCycles[static_cast<unsigned>(Cat)];
}

//===----------------------------------------------------------------------===//
// Main loop
//===----------------------------------------------------------------------===//

SimStats Simulator::run() {
  while (!MainDone) {
    ++Now;
    if (Now > Cfg.MaxCycles)
      fatalError("simulation exceeded MaxCycles (livelock?)");
    pruneMainOutstanding();
    if ((Now & (Cfg.ThrottleEvalPeriod - 1)) == 0)
      evaluateThrottle();
    std::memset(IssuedThisCycle, 0, sizeof(IssuedThisCycle));

    if (Cfg.Pipeline == PipelineKind::InOrder) {
      issueCycleInOrder();
      fetchCycle();
    } else {
      oooWriteback();
      oooResolveRS();
      oooRetire();
      if (MainDone)
        break;
      oooIssue();
      oooDispatch();
      fetchCycle();
    }
    classifyCycle();
  }

  Stats.Cycles = Now;
  Stats.Branches = Bpred.numBranches();
  Stats.BranchMispredicts = Bpred.numMispredicts();
  Stats.CacheTotals = Cache.totals();
  Stats.LoadProfile = Cache.profile();
  return Stats;
}
