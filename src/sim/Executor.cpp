//===- sim/Executor.cpp - Functional instruction execution ----------------===//
//
// One execution core, three modes:
//
//   Timing       one instruction per call, reporting control/memory effects
//                through ExecOutcome (the timing pipelines run this at
//                fetch).
//   FastForward  batched, purely architectural: no cache, predictor or
//                timing side effects (sampled simulation's skip level).
//   Warm         batched architectural execution that also pushes every
//                memory access through the cache/TLB hierarchy and trains
//                the branch predictor (sampled simulation's functional-
//                warming level).
//
// Dispatch is direct-threaded where the compiler supports computed goto
// (GCC/Clang's &&label extension): the opcode indexes a label table and
// control jumps straight to the handler, with no range check. On other
// compilers — or with SSP_FORCE_SWITCH_DISPATCH defined — the same handler
// bodies compile as a plain switch, which also keeps -Wswitch coverage
// checking alive for the Opcode enum.
//
//===----------------------------------------------------------------------===//

#include "sim/Executor.h"

#include "branch/BranchPredictor.h"
#include "cache/Cache.h"
#include "support/Assert.h"

#include <bit>
#include <cassert>
#include <cstring>

#if !defined(SSP_FORCE_SWITCH_DISPATCH) &&                                    \
    (defined(__GNUC__) || defined(__clang__))
#define SSP_COMPUTED_GOTO 1
#else
#define SSP_COMPUTED_GOTO 0
#endif

using namespace ssp;
using namespace ssp::sim;
using namespace ssp::ir;

namespace {

double asDouble(uint64_t Bits) { return std::bit_cast<double>(Bits); }
uint64_t asBits(double D) { return std::bit_cast<uint64_t>(D); }

enum class ExecMode { Timing, FastForward, Warm };

#if SSP_COMPUTED_GOTO
#define SSP_CASE(Name) H_##Name:
#define SSP_END goto EndOfInst
#else
#define SSP_CASE(Name) case Opcode::Name:
#define SSP_END break
#endif

/// The shared execution core. In Timing mode it executes exactly one
/// instruction and fills \p Out; in the batch modes it loops until
/// \p MaxInsts instructions have executed or the program halts (setting
/// \p Halted), and returns the number executed. The batch modes run only
/// the non-speculative main thread: chk.c is always passed
/// FreeContextAvailable == false by the wrappers, so triggers never fire
/// and no speculative state exists — though a batch interval may start
/// mid-stub (the detailed level can hand over between chk.c and rfi), so
/// the stub opcodes still execute architecturally.
template <ExecMode M>
uint64_t execCore(ThreadContext &Ctx, const LinkedProgram &LP,
                  mem::SimMemory &Mem, bool Speculative,
                  bool FreeContextAvailable, ExecOutcome *Out,
                  cache::CacheHierarchy *Cache, branch::BranchPredictor *Bpred,
                  uint64_t *Now, uint64_t MaxInsts, bool *Halted) {
  constexpr bool Timing = M == ExecMode::Timing;
  constexpr bool Warm = M == ExecMode::Warm;
  assert((Timing || (!Speculative && Halted)) &&
         "batch modes run the main thread only");

  uint64_t *Regs = Ctx.Regs;
  uint64_t N = 0;

  assert(Ctx.PC < LP.size() && "PC out of range");
  const DecodedInst *D = &LP.decoded(Ctx.PC);
  uint32_t NextPC = Ctx.PC + 1;

  // All register reads and writes go through the predecoded dense indices:
  // one array access, no RegClass dispatch. Predicates are stored as 0/1
  // and the hardwired r0/p0 slots hold their constants, so reads need no
  // special cases; writes to hardwired destinations were stripped at
  // decode (WDst == NoReg).
  auto S1 = [&] { return Regs[D->Src1]; };
  auto S2 = [&] { return Regs[D->Src2]; };
  auto WR = [&](uint64_t V) {
    if (D->WDst != DecodedInst::NoReg)
      Regs[D->WDst] = D->DstIsPred ? (V != 0 ? 1 : 0) : V;
  };
  // Functional warming: evolve replacement state (LRU arrays, TLB) through
  // the state-only fast path. No latency is modeled and the load profile is
  // not collected — per-PC miss statistics stay exact-per-detail-interval
  // under sampling. Warming behaves as a serial reference trace: each access
  // completes (its line installed) before the next starts, so no line is
  // still in flight when the next detailed interval begins.
  auto Touch = [&](uint64_t Addr) {
    if constexpr (Warm)
      Cache->warmAccess(Addr, LP.at(Ctx.PC).Sid, /*Tid=*/0);
    else
      (void)Addr;
  };

#if SSP_COMPUTED_GOTO
  // Direct-threaded dispatch table, one entry per Opcode in declaration
  // order (checked against the enum's size below).
  static const void *const DispatchTable[] = {
      &&H_Nop,    &&H_Add,        &&H_Sub,         &&H_Mul,
      &&H_And,    &&H_Or,         &&H_Xor,         &&H_Shl,
      &&H_Shr,    &&H_AddI,       &&H_MulI,        &&H_ShlI,
      &&H_AndI,   &&H_OrI,        &&H_Mov,         &&H_MovI,
      &&H_Cmp,    &&H_CmpI,       &&H_FAdd,        &&H_FSub,
      &&H_FMul,   &&H_XToF,       &&H_FToX,        &&H_Load,
      &&H_LoadF,  &&H_Store,      &&H_StoreF,      &&H_Prefetch,
      &&H_Br,     &&H_Jmp,        &&H_Call,        &&H_CallInd,
      &&H_Ret,    &&H_Halt,       &&H_ChkC,        &&H_Rfi,
      &&H_CopyToLIB, &&H_CopyToLIBI, &&H_CopyFromLIB, &&H_Spawn,
      &&H_KillThread};
  static_assert(sizeof(DispatchTable) / sizeof(DispatchTable[0]) ==
                    static_cast<unsigned>(Opcode::KillThread) + 1,
                "dispatch table out of sync with the Opcode enum");
#endif

  for (;;) {
#if SSP_COMPUTED_GOTO
    goto *DispatchTable[static_cast<unsigned>(D->Op)];
#else
    switch (D->Op) {
#endif

    SSP_CASE(Nop)
      SSP_END;

    SSP_CASE(Add)
      WR(S1() + S2());
      SSP_END;
    SSP_CASE(Sub)
      WR(S1() - S2());
      SSP_END;
    SSP_CASE(Mul)
      WR(S1() * S2());
      SSP_END;
    SSP_CASE(And)
      WR(S1() & S2());
      SSP_END;
    SSP_CASE(Or)
      WR(S1() | S2());
      SSP_END;
    SSP_CASE(Xor)
      WR(S1() ^ S2());
      SSP_END;
    SSP_CASE(Shl)
      WR(S1() << (S2() & 63));
      SSP_END;
    SSP_CASE(Shr)
      WR(S1() >> (S2() & 63));
      SSP_END;

    SSP_CASE(AddI)
      WR(S1() + static_cast<uint64_t>(D->Imm));
      SSP_END;
    SSP_CASE(MulI)
      WR(S1() * static_cast<uint64_t>(D->Imm));
      SSP_END;
    SSP_CASE(ShlI)
      WR(S1() << (static_cast<uint64_t>(D->Imm) & 63));
      SSP_END;
    SSP_CASE(AndI)
      WR(S1() & static_cast<uint64_t>(D->Imm));
      SSP_END;
    SSP_CASE(OrI)
      WR(S1() | static_cast<uint64_t>(D->Imm));
      SSP_END;

    SSP_CASE(Mov)
      WR(S1());
      SSP_END;
    SSP_CASE(MovI)
      WR(static_cast<uint64_t>(D->Imm));
      SSP_END;

    SSP_CASE(Cmp)
      WR(evalCond(D->Cond, static_cast<int64_t>(S1()),
                  static_cast<int64_t>(S2()))
             ? 1
             : 0);
      SSP_END;
    SSP_CASE(CmpI)
      WR(evalCond(D->Cond, static_cast<int64_t>(S1()), D->Imm) ? 1 : 0);
      SSP_END;

    SSP_CASE(FAdd)
      WR(asBits(asDouble(S1()) + asDouble(S2())));
      SSP_END;
    SSP_CASE(FSub)
      WR(asBits(asDouble(S1()) - asDouble(S2())));
      SSP_END;
    SSP_CASE(FMul)
      WR(asBits(asDouble(S1()) * asDouble(S2())));
      SSP_END;
    SSP_CASE(XToF)
      WR(asBits(static_cast<double>(static_cast<int64_t>(S1()))));
      SSP_END;
    SSP_CASE(FToX)
      WR(static_cast<uint64_t>(static_cast<int64_t>(asDouble(S1()))));
      SSP_END;

    SSP_CASE(Load)
    SSP_CASE(LoadF) {
      uint64_t Addr = S1() + static_cast<uint64_t>(D->Imm);
      uint64_t Value;
      if constexpr (Timing) {
        Out->IsMem = true;
        Out->IsLoad = true;
        Out->MemAddr = Addr;
        if (Speculative) {
          bool Mapped = false;
          Value = Mem.readMaybe(Addr, Mapped);
          Out->WildLoad = !Mapped;
        } else {
          Value = Mem.read(Addr);
        }
      } else {
        Value = Mem.read(Addr);
        Touch(Addr);
      }
      WR(Value);
      SSP_END;
    }
    SSP_CASE(Store)
    SSP_CASE(StoreF) {
      assert(!Speculative && "speculative thread attempted a store");
      uint64_t Addr = S1() + static_cast<uint64_t>(D->Imm);
      if constexpr (Timing) {
        Out->IsMem = true;
        Out->IsStore = true;
        Out->MemAddr = Addr;
      } else {
        Touch(Addr);
      }
      Mem.write(Addr, S2());
      SSP_END;
    }
    SSP_CASE(Prefetch) {
      // Non-binding, non-faulting touch: affects only cache state.
      uint64_t Addr = S1() + static_cast<uint64_t>(D->Imm);
      if constexpr (Timing) {
        Out->IsMem = true;
        Out->MemAddr = Addr;
      } else {
        Touch(Addr);
      }
      SSP_END;
    }

    SSP_CASE(Br) {
      bool Taken = S1() != 0;
      if constexpr (Timing) {
        Out->Kind = CtrlKind::Branch;
        Out->Taken = Taken;
      }
      if constexpr (Warm)
        Bpred->predictAndTrainDirection(Ctx.PC, /*Tid=*/0, Taken);
      if (Taken)
        NextPC = D->Target;
      SSP_END;
    }
    SSP_CASE(Jmp)
      if constexpr (Timing)
        Out->Kind = CtrlKind::DirectJump;
      NextPC = D->Target;
      SSP_END;
    SSP_CASE(Call)
      if constexpr (Timing)
        Out->Kind = CtrlKind::DirectJump;
      Ctx.CallStack.push_back(Ctx.PC + 1);
      NextPC = D->Target;
      SSP_END;
    SSP_CASE(CallInd) {
      uint64_t FuncIdx = S1();
      assert(FuncIdx < LP.program().numFuncs() && "bad indirect call target");
      Ctx.CallStack.push_back(Ctx.PC + 1);
      NextPC = LP.funcEntry(static_cast<uint32_t>(FuncIdx));
      if constexpr (Timing)
        Out->Kind = CtrlKind::IndirectJump;
      if constexpr (Warm)
        Bpred->predictAndTrainTarget(Ctx.PC, NextPC);
      SSP_END;
    }
    SSP_CASE(Ret)
      assert(!Ctx.CallStack.empty() && "ret with empty call stack");
      NextPC = Ctx.CallStack.back();
      Ctx.CallStack.pop_back();
      if constexpr (Timing)
        Out->Kind = CtrlKind::IndirectJump;
      if constexpr (Warm)
        Bpred->predictAndTrainTarget(Ctx.PC, NextPC);
      SSP_END;
    SSP_CASE(Halt)
      if constexpr (Timing) {
        Out->Kind = CtrlKind::Halt;
        NextPC = Ctx.PC; // Parked.
        SSP_END;
      } else {
        // The halt counts as executed; the PC parks on it, exactly as the
        // detailed level leaves it.
        *Halted = true;
        return N + 1;
      }

    SSP_CASE(ChkC)
      if (FreeContextAvailable) {
        if constexpr (Timing)
          Out->Kind = CtrlKind::ChkCFired;
        Ctx.ResumeStack.push_back(Ctx.PC + 1);
        NextPC = D->Target;
      } else if constexpr (Timing) {
        Out->Kind = CtrlKind::ChkCNop;
      }
      SSP_END;
    SSP_CASE(Rfi)
      // Reachable in batch mode when a detail interval hands over inside
      // a stub: the resume address pushed by the (detailed) chk.c is
      // still on the architectural resume stack.
      assert(!Ctx.ResumeStack.empty() && "rfi with empty resume stack");
      NextPC = Ctx.ResumeStack.back();
      Ctx.ResumeStack.pop_back();
      if constexpr (Timing)
        Out->Kind = CtrlKind::RfiReturn;
      SSP_END;
    SSP_CASE(CopyToLIB)
      assert(D->Target < MaxLIBSlots && "LIB slot out of range");
      Ctx.LIBStage[D->Target] = S1();
      SSP_END;
    SSP_CASE(CopyToLIBI)
      assert(D->Target < MaxLIBSlots && "LIB slot out of range");
      Ctx.LIBStage[D->Target] = static_cast<uint64_t>(D->Imm);
      SSP_END;
    SSP_CASE(CopyFromLIB)
      assert(D->Target < MaxLIBSlots && "LIB slot out of range");
      WR(Ctx.LIBIn[D->Target]);
      SSP_END;
    SSP_CASE(Spawn)
      // Batch modes drop the request (functionally equivalent to finding
      // no free context); only the timing level materializes threads.
      if constexpr (Timing) {
        Out->Kind = CtrlKind::SpawnPoint;
        Out->HasSpawn = true;
        Out->SpawnTargetAddr = D->Target;
        std::memcpy(Out->SpawnFrame, Ctx.LIBStage, sizeof(Out->SpawnFrame));
      }
      SSP_END;
    SSP_CASE(KillThread)
      assert(Timing && "kill.thread outside a speculative timing thread");
      if constexpr (Timing) {
        Out->Kind = CtrlKind::Kill;
        NextPC = Ctx.PC; // Parked.
      }
      SSP_END;

#if !SSP_COMPUTED_GOTO
    }
#else
  EndOfInst:;
#endif

    // Shared per-instruction epilogue.
    Ctx.PC = NextPC;
    ++N;
    if constexpr (Timing)
      return N;
    if constexpr (Warm)
      ++*Now; // One nominal cycle per instruction.
    if (N >= MaxInsts)
      return N;
    assert(Ctx.PC < LP.size() && "PC out of range");
    D = &LP.decoded(Ctx.PC);
    NextPC = Ctx.PC + 1;
  }
}

} // namespace

void ssp::sim::executeStep(ThreadContext &Ctx, const LinkedProgram &LP,
                           mem::SimMemory &Mem, bool Speculative,
                           bool FreeContextAvailable, ExecOutcome &Out) {
  // Cheap per-step reset: scalar fields only. SpawnFrame is written and
  // read only under HasSpawn, so the 128-byte frame need not be cleared
  // on every instruction.
  Out.Kind = CtrlKind::Fall;
  Out.Taken = false;
  Out.IsMem = false;
  Out.IsLoad = false;
  Out.IsStore = false;
  Out.WildLoad = false;
  Out.MemAddr = 0;
  Out.HasSpawn = false;
  Out.SpawnTargetAddr = 0;
  execCore<ExecMode::Timing>(Ctx, LP, Mem, Speculative, FreeContextAvailable,
                             &Out, nullptr, nullptr, nullptr, /*MaxInsts=*/1,
                             nullptr);
}

FunctionalResult ssp::sim::fastForward(ThreadContext &Ctx,
                                       const LinkedProgram &LP,
                                       mem::SimMemory &Mem,
                                       uint64_t MaxInsts) {
  FunctionalResult R;
  if (MaxInsts == 0)
    return R;
  R.Insts = execCore<ExecMode::FastForward>(
      Ctx, LP, Mem, /*Speculative=*/false, /*FreeContextAvailable=*/false,
      nullptr, nullptr, nullptr, nullptr, MaxInsts, &R.Halted);
  return R;
}

FunctionalResult ssp::sim::warmForward(ThreadContext &Ctx,
                                       const LinkedProgram &LP,
                                       mem::SimMemory &Mem,
                                       cache::CacheHierarchy &Cache,
                                       branch::BranchPredictor &Bpred,
                                       uint64_t &Now, uint64_t MaxInsts) {
  FunctionalResult R;
  if (MaxInsts == 0)
    return R;
  R.Insts = execCore<ExecMode::Warm>(
      Ctx, LP, Mem, /*Speculative=*/false, /*FreeContextAvailable=*/false,
      nullptr, &Cache, &Bpred, &Now, MaxInsts, &R.Halted);
  return R;
}
