//===- sim/Executor.cpp - Functional instruction execution ----------------===//

#include "sim/Executor.h"

#include "support/Assert.h"

#include <bit>
#include <cassert>
#include <cstring>

using namespace ssp;
using namespace ssp::sim;
using namespace ssp::ir;

namespace {

double asDouble(uint64_t Bits) { return std::bit_cast<double>(Bits); }
uint64_t asBits(double D) { return std::bit_cast<uint64_t>(D); }

} // namespace

void ssp::sim::executeStep(ThreadContext &Ctx, const LinkedProgram &LP,
                           mem::SimMemory &Mem, bool Speculative,
                           bool FreeContextAvailable, ExecOutcome &Out) {
  assert(Ctx.PC < LP.size() && "PC out of range");
  const DecodedInst &D = LP.decoded(Ctx.PC);
  Out = ExecOutcome();

  // All register reads and writes go through the predecoded dense indices:
  // one array access, no RegClass dispatch. Predicates are stored as 0/1
  // and the hardwired r0/p0 slots hold their constants, so reads need no
  // special cases; writes to hardwired destinations were stripped at
  // decode (WDst == NoReg).
  uint64_t *Regs = Ctx.Regs;
  uint32_t NextPC = Ctx.PC + 1;
  auto S1 = [&] { return Regs[D.Src1]; };
  auto S2 = [&] { return Regs[D.Src2]; };
  auto WR = [&](uint64_t V) {
    if (D.WDst != DecodedInst::NoReg)
      Regs[D.WDst] = D.DstIsPred ? (V != 0 ? 1 : 0) : V;
  };

  switch (D.Op) {
  case Opcode::Nop:
    break;

  case Opcode::Add:
    WR(S1() + S2());
    break;
  case Opcode::Sub:
    WR(S1() - S2());
    break;
  case Opcode::Mul:
    WR(S1() * S2());
    break;
  case Opcode::And:
    WR(S1() & S2());
    break;
  case Opcode::Or:
    WR(S1() | S2());
    break;
  case Opcode::Xor:
    WR(S1() ^ S2());
    break;
  case Opcode::Shl:
    WR(S1() << (S2() & 63));
    break;
  case Opcode::Shr:
    WR(S1() >> (S2() & 63));
    break;

  case Opcode::AddI:
    WR(S1() + static_cast<uint64_t>(D.Imm));
    break;
  case Opcode::MulI:
    WR(S1() * static_cast<uint64_t>(D.Imm));
    break;
  case Opcode::ShlI:
    WR(S1() << (static_cast<uint64_t>(D.Imm) & 63));
    break;
  case Opcode::AndI:
    WR(S1() & static_cast<uint64_t>(D.Imm));
    break;
  case Opcode::OrI:
    WR(S1() | static_cast<uint64_t>(D.Imm));
    break;

  case Opcode::Mov:
    WR(S1());
    break;
  case Opcode::MovI:
    WR(static_cast<uint64_t>(D.Imm));
    break;

  case Opcode::Cmp:
    WR(evalCond(D.Cond, static_cast<int64_t>(S1()),
                static_cast<int64_t>(S2()))
           ? 1
           : 0);
    break;
  case Opcode::CmpI:
    WR(evalCond(D.Cond, static_cast<int64_t>(S1()), D.Imm) ? 1 : 0);
    break;

  case Opcode::FAdd:
    WR(asBits(asDouble(S1()) + asDouble(S2())));
    break;
  case Opcode::FSub:
    WR(asBits(asDouble(S1()) - asDouble(S2())));
    break;
  case Opcode::FMul:
    WR(asBits(asDouble(S1()) * asDouble(S2())));
    break;
  case Opcode::XToF:
    WR(asBits(static_cast<double>(static_cast<int64_t>(S1()))));
    break;
  case Opcode::FToX:
    WR(static_cast<uint64_t>(static_cast<int64_t>(asDouble(S1()))));
    break;

  case Opcode::Load:
  case Opcode::LoadF: {
    uint64_t Addr = S1() + static_cast<uint64_t>(D.Imm);
    Out.IsMem = true;
    Out.IsLoad = true;
    Out.MemAddr = Addr;
    uint64_t Value;
    if (Speculative) {
      bool Mapped = false;
      Value = Mem.readMaybe(Addr, Mapped);
      Out.WildLoad = !Mapped;
    } else {
      Value = Mem.read(Addr);
    }
    WR(Value);
    break;
  }
  case Opcode::Store:
  case Opcode::StoreF: {
    assert(!Speculative && "speculative thread attempted a store");
    uint64_t Addr = S1() + static_cast<uint64_t>(D.Imm);
    Out.IsMem = true;
    Out.IsStore = true;
    Out.MemAddr = Addr;
    Mem.write(Addr, S2());
    break;
  }
  case Opcode::Prefetch: {
    // Non-binding, non-faulting touch: affects only cache state.
    Out.IsMem = true;
    Out.MemAddr = S1() + static_cast<uint64_t>(D.Imm);
    break;
  }

  case Opcode::Br: {
    Out.Kind = CtrlKind::Branch;
    Out.Taken = S1() != 0;
    if (Out.Taken)
      NextPC = D.Target;
    break;
  }
  case Opcode::Jmp:
    Out.Kind = CtrlKind::DirectJump;
    NextPC = D.Target;
    break;
  case Opcode::Call:
    Out.Kind = CtrlKind::DirectJump;
    Ctx.CallStack.push_back(Ctx.PC + 1);
    NextPC = D.Target;
    break;
  case Opcode::CallInd: {
    Out.Kind = CtrlKind::IndirectJump;
    uint64_t FuncIdx = S1();
    assert(FuncIdx < LP.program().numFuncs() && "bad indirect call target");
    Ctx.CallStack.push_back(Ctx.PC + 1);
    NextPC = LP.funcEntry(static_cast<uint32_t>(FuncIdx));
    break;
  }
  case Opcode::Ret:
    Out.Kind = CtrlKind::IndirectJump;
    assert(!Ctx.CallStack.empty() && "ret with empty call stack");
    NextPC = Ctx.CallStack.back();
    Ctx.CallStack.pop_back();
    break;
  case Opcode::Halt:
    Out.Kind = CtrlKind::Halt;
    NextPC = Ctx.PC; // Parked.
    break;

  case Opcode::ChkC:
    if (FreeContextAvailable) {
      Out.Kind = CtrlKind::ChkCFired;
      Ctx.ResumeStack.push_back(Ctx.PC + 1);
      NextPC = D.Target;
    } else {
      Out.Kind = CtrlKind::ChkCNop;
    }
    break;
  case Opcode::Rfi:
    Out.Kind = CtrlKind::RfiReturn;
    assert(!Ctx.ResumeStack.empty() && "rfi with empty resume stack");
    NextPC = Ctx.ResumeStack.back();
    Ctx.ResumeStack.pop_back();
    break;
  case Opcode::CopyToLIB:
    assert(D.Target < MaxLIBSlots && "LIB slot out of range");
    Ctx.LIBStage[D.Target] = S1();
    break;
  case Opcode::CopyToLIBI:
    assert(D.Target < MaxLIBSlots && "LIB slot out of range");
    Ctx.LIBStage[D.Target] = static_cast<uint64_t>(D.Imm);
    break;
  case Opcode::CopyFromLIB:
    assert(D.Target < MaxLIBSlots && "LIB slot out of range");
    WR(Ctx.LIBIn[D.Target]);
    break;
  case Opcode::Spawn:
    Out.Kind = CtrlKind::SpawnPoint;
    Out.HasSpawn = true;
    Out.SpawnTargetAddr = D.Target;
    std::memcpy(Out.SpawnFrame, Ctx.LIBStage, sizeof(Out.SpawnFrame));
    break;
  case Opcode::KillThread:
    Out.Kind = CtrlKind::Kill;
    NextPC = Ctx.PC; // Parked.
    break;
  }

  Ctx.PC = NextPC;
}
