//===- sim/Executor.cpp - Functional instruction execution ----------------===//

#include "sim/Executor.h"

#include "support/Assert.h"

#include <bit>
#include <cassert>
#include <cstring>

using namespace ssp;
using namespace ssp::sim;
using namespace ssp::ir;

namespace {

double asDouble(uint64_t Bits) { return std::bit_cast<double>(Bits); }
uint64_t asBits(double D) { return std::bit_cast<uint64_t>(D); }

uint64_t readReg(const ThreadContext &Ctx, Reg R) {
  switch (R.Cls) {
  case RegClass::Int:
    return Ctx.readInt(R.Num);
  case RegClass::FP:
    return Ctx.F[R.Num];
  case RegClass::Pred:
    return Ctx.readPred(R.Num) ? 1 : 0;
  case RegClass::None:
    break;
  }
  ssp_unreachable("read of invalid register operand");
}

void writeReg(ThreadContext &Ctx, Reg R, uint64_t V) {
  switch (R.Cls) {
  case RegClass::Int:
    Ctx.writeInt(R.Num, V);
    return;
  case RegClass::FP:
    Ctx.F[R.Num] = V;
    return;
  case RegClass::Pred:
    Ctx.writePred(R.Num, V != 0);
    return;
  case RegClass::None:
    break;
  }
  ssp_unreachable("write of invalid register operand");
}

} // namespace

void ssp::sim::executeStep(ThreadContext &Ctx, const LinkedProgram &LP,
                           mem::SimMemory &Mem, bool Speculative,
                           bool FreeContextAvailable, ExecOutcome &Out) {
  assert(Ctx.PC < LP.size() && "PC out of range");
  const LinkedInst &LI = LP.at(Ctx.PC);
  const Instruction &I = *LI.I;
  Out = ExecOutcome();

  uint32_t NextPC = Ctx.PC + 1;
  auto S1 = [&] { return readReg(Ctx, I.Src1); };
  auto S2 = [&] { return readReg(Ctx, I.Src2); };

  switch (I.Op) {
  case Opcode::Nop:
    break;

  case Opcode::Add:
    writeReg(Ctx, I.Dst, S1() + S2());
    break;
  case Opcode::Sub:
    writeReg(Ctx, I.Dst, S1() - S2());
    break;
  case Opcode::Mul:
    writeReg(Ctx, I.Dst, S1() * S2());
    break;
  case Opcode::And:
    writeReg(Ctx, I.Dst, S1() & S2());
    break;
  case Opcode::Or:
    writeReg(Ctx, I.Dst, S1() | S2());
    break;
  case Opcode::Xor:
    writeReg(Ctx, I.Dst, S1() ^ S2());
    break;
  case Opcode::Shl:
    writeReg(Ctx, I.Dst, S1() << (S2() & 63));
    break;
  case Opcode::Shr:
    writeReg(Ctx, I.Dst, S1() >> (S2() & 63));
    break;

  case Opcode::AddI:
    writeReg(Ctx, I.Dst, S1() + static_cast<uint64_t>(I.Imm));
    break;
  case Opcode::MulI:
    writeReg(Ctx, I.Dst, S1() * static_cast<uint64_t>(I.Imm));
    break;
  case Opcode::ShlI:
    writeReg(Ctx, I.Dst, S1() << (static_cast<uint64_t>(I.Imm) & 63));
    break;
  case Opcode::AndI:
    writeReg(Ctx, I.Dst, S1() & static_cast<uint64_t>(I.Imm));
    break;
  case Opcode::OrI:
    writeReg(Ctx, I.Dst, S1() | static_cast<uint64_t>(I.Imm));
    break;

  case Opcode::Mov:
    writeReg(Ctx, I.Dst, readReg(Ctx, I.Src1));
    break;
  case Opcode::MovI:
    writeReg(Ctx, I.Dst, static_cast<uint64_t>(I.Imm));
    break;

  case Opcode::Cmp:
    writeReg(Ctx, I.Dst,
             evalCond(I.Cond, static_cast<int64_t>(S1()),
                      static_cast<int64_t>(S2()))
                 ? 1
                 : 0);
    break;
  case Opcode::CmpI:
    writeReg(Ctx, I.Dst,
             evalCond(I.Cond, static_cast<int64_t>(S1()), I.Imm) ? 1 : 0);
    break;

  case Opcode::FAdd:
    writeReg(Ctx, I.Dst, asBits(asDouble(S1()) + asDouble(S2())));
    break;
  case Opcode::FSub:
    writeReg(Ctx, I.Dst, asBits(asDouble(S1()) - asDouble(S2())));
    break;
  case Opcode::FMul:
    writeReg(Ctx, I.Dst, asBits(asDouble(S1()) * asDouble(S2())));
    break;
  case Opcode::XToF:
    writeReg(Ctx, I.Dst,
             asBits(static_cast<double>(static_cast<int64_t>(S1()))));
    break;
  case Opcode::FToX:
    writeReg(Ctx, I.Dst,
             static_cast<uint64_t>(static_cast<int64_t>(asDouble(S1()))));
    break;

  case Opcode::Load:
  case Opcode::LoadF: {
    uint64_t Addr = S1() + static_cast<uint64_t>(I.Imm);
    Out.IsMem = true;
    Out.IsLoad = true;
    Out.MemAddr = Addr;
    uint64_t Value;
    if (Speculative) {
      bool Mapped = false;
      Value = Mem.readMaybe(Addr, Mapped);
      Out.WildLoad = !Mapped;
    } else {
      Value = Mem.read(Addr);
    }
    writeReg(Ctx, I.Dst, Value);
    break;
  }
  case Opcode::Store:
  case Opcode::StoreF: {
    assert(!Speculative && "speculative thread attempted a store");
    uint64_t Addr = S1() + static_cast<uint64_t>(I.Imm);
    Out.IsMem = true;
    Out.IsStore = true;
    Out.MemAddr = Addr;
    Mem.write(Addr, S2());
    break;
  }
  case Opcode::Prefetch: {
    // Non-binding, non-faulting touch: affects only cache state.
    Out.IsMem = true;
    Out.MemAddr = S1() + static_cast<uint64_t>(I.Imm);
    break;
  }

  case Opcode::Br: {
    Out.Kind = CtrlKind::Branch;
    Out.Taken = readReg(Ctx, I.Src1) != 0;
    if (Out.Taken)
      NextPC = LI.TargetAddr;
    break;
  }
  case Opcode::Jmp:
    Out.Kind = CtrlKind::DirectJump;
    NextPC = LI.TargetAddr;
    break;
  case Opcode::Call:
    Out.Kind = CtrlKind::DirectJump;
    Ctx.CallStack.push_back(Ctx.PC + 1);
    NextPC = LI.TargetAddr;
    break;
  case Opcode::CallInd: {
    Out.Kind = CtrlKind::IndirectJump;
    uint64_t FuncIdx = S1();
    assert(FuncIdx < LP.program().numFuncs() && "bad indirect call target");
    Ctx.CallStack.push_back(Ctx.PC + 1);
    NextPC = LP.funcEntry(static_cast<uint32_t>(FuncIdx));
    break;
  }
  case Opcode::Ret:
    Out.Kind = CtrlKind::IndirectJump;
    assert(!Ctx.CallStack.empty() && "ret with empty call stack");
    NextPC = Ctx.CallStack.back();
    Ctx.CallStack.pop_back();
    break;
  case Opcode::Halt:
    Out.Kind = CtrlKind::Halt;
    NextPC = Ctx.PC; // Parked.
    break;

  case Opcode::ChkC:
    if (FreeContextAvailable) {
      Out.Kind = CtrlKind::ChkCFired;
      Ctx.ResumeStack.push_back(Ctx.PC + 1);
      NextPC = LI.TargetAddr;
    } else {
      Out.Kind = CtrlKind::ChkCNop;
    }
    break;
  case Opcode::Rfi:
    Out.Kind = CtrlKind::RfiReturn;
    assert(!Ctx.ResumeStack.empty() && "rfi with empty resume stack");
    NextPC = Ctx.ResumeStack.back();
    Ctx.ResumeStack.pop_back();
    break;
  case Opcode::CopyToLIB:
    assert(I.Target < MaxLIBSlots && "LIB slot out of range");
    Ctx.LIBStage[I.Target] = readReg(Ctx, I.Src1);
    break;
  case Opcode::CopyToLIBI:
    assert(I.Target < MaxLIBSlots && "LIB slot out of range");
    Ctx.LIBStage[I.Target] = static_cast<uint64_t>(I.Imm);
    break;
  case Opcode::CopyFromLIB:
    assert(I.Target < MaxLIBSlots && "LIB slot out of range");
    writeReg(Ctx, I.Dst, Ctx.LIBIn[I.Target]);
    break;
  case Opcode::Spawn:
    Out.Kind = CtrlKind::SpawnPoint;
    Out.HasSpawn = true;
    Out.SpawnTargetAddr = LI.TargetAddr;
    std::memcpy(Out.SpawnFrame, Ctx.LIBStage, sizeof(Out.SpawnFrame));
    break;
  case Opcode::KillThread:
    Out.Kind = CtrlKind::Kill;
    NextPC = Ctx.PC; // Parked.
    break;
  }

  Ctx.PC = NextPC;
}
