//===- sim/Sampling.h - Sampled-simulation interval plan ------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interval plan for two-level sampled simulation (SMARTS-style
/// systematic sampling): the run alternates a detailed interval (the full
/// timing pipelines), a functional fast-forward interval (architectural
/// state only) and a functional-warming interval (architectural state plus
/// cache/TLB fills and branch-predictor training) so the next detailed
/// interval starts from warm microarchitectural state. Interval lengths
/// are measured in retired main-thread instructions — the one clock that
/// is identical across the levels. Whole-run statistics are extrapolated
/// from the detailed intervals; see DESIGN.md "Sampled simulation".
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SIM_SAMPLING_H
#define SSP_SIM_SAMPLING_H

#include <cstdint>
#include <string>

namespace ssp::sim {

/// Interval lengths for one sampling period, in main-thread instructions.
/// Each period runs DetailInsts detailed-and-measured, then
/// FastForwardInsts at the fast functional level, then WarmupInsts at the
/// functional-warming level, then RampInsts detailed-but-unmeasured
/// (immediately before the next measured interval). Ordering the detail
/// interval first means the run starts detailed — cold-start exact — and
/// a program shorter than one detail interval is simulated entirely in
/// detail.
///
/// The ramp exists because functional warming cannot reproduce state the
/// detailed level creates as a side effect of *timing*: pipeline
/// occupancy, lines in flight in the fill buffer, and — on SSP-enhanced
/// binaries — the population of speculative threads (triggers fire only
/// in the detailed level). Measuring from the first post-warm cycle would
/// charge every interval a systematic ramp-up transient; running a short
/// detailed prefix outside the measurement window lets the machine reach
/// steady state first.
struct SamplingPlan {
  uint64_t WarmupInsts = 0;
  uint64_t DetailInsts = 0;
  uint64_t FastForwardInsts = 0;
  uint64_t RampInsts = 0;

  /// A plan with no functional instructions is the plain detailed
  /// simulator: run() takes the exact unsampled path, so a 100%-detail
  /// plan is bit-identical to no plan by construction.
  bool enabled() const { return WarmupInsts > 0 || FastForwardInsts > 0; }

  /// Fraction of each period simulated in detail (measured or ramp).
  double detailFraction() const {
    uint64_t Period =
        WarmupInsts + DetailInsts + FastForwardInsts + RampInsts;
    return Period == 0 ? 1.0
                       : static_cast<double>(DetailInsts + RampInsts) /
                             static_cast<double>(Period);
  }

  /// The default plan behind a bare `--sample`: ~2% measured detail, a
  /// mostly-fast-forward gap with a warmup long enough to rebuild the
  /// cache/TLB/predictor working state, and a one-detail-interval ramp so
  /// measurement starts from a steady-state pipeline and speculative-
  /// thread population (tuned against the error bounds pinned in
  /// tests/sample_test.cpp).
  static SamplingPlan defaults() { return {30000, 2000, 66000, 2000}; }

  std::string str() const {
    std::string S = std::to_string(WarmupInsts) + ":" +
                    std::to_string(DetailInsts) + ":" +
                    std::to_string(FastForwardInsts);
    if (RampInsts > 0)
      S += ":" + std::to_string(RampInsts);
    return S;
  }
};

/// Parses "W:D:F" or "W:D:F:R" (warmup:detail:fastforward[:ramp], all
/// base-10 instruction counts) into \p Out. Rejects malformed text and
/// enabled plans with a zero detail interval (nothing to extrapolate
/// from). Self-contained so sim/ keeps no dependency on the CLI support
/// library.
inline bool parseSamplingPlan(const char *Text, SamplingPlan &Out) {
  if (!Text)
    return false;
  uint64_t Vals[4] = {0, 0, 0, 0};
  const char *P = Text;
  int Field = 0;
  for (; Field < 4; ++Field) {
    if (*P < '0' || *P > '9')
      return false;
    uint64_t V = 0;
    while (*P >= '0' && *P <= '9') {
      uint64_t Digit = static_cast<uint64_t>(*P - '0');
      if (V > (UINT64_MAX - Digit) / 10)
        return false; // Overflow.
      V = V * 10 + Digit;
      ++P;
    }
    Vals[Field] = V;
    if (*P == '\0')
      break;
    if (*P != ':' || Field == 3)
      return false;
    ++P;
  }
  if (Field < 2) // Fewer than the three mandatory fields.
    return false;
  SamplingPlan Plan{Vals[0], Vals[1], Vals[2], Vals[3]};
  if (Plan.enabled() && Plan.DetailInsts == 0)
    return false;
  Out = Plan;
  return true;
}

} // namespace ssp::sim

#endif // SSP_SIM_SAMPLING_H
