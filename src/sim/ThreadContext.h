//===- sim/ThreadContext.h - Architectural state of one HW context --------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The architectural state of one hardware thread context: the per-thread
/// register files of Table 1, the PC, the call/return stacks, and this
/// thread's view of the live-in buffer (the spill area of the Register
/// Stack Engine backing store that the paper uses for inter-thread live-in
/// transfer, Section 3.4.2).
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SIM_THREADCONTEXT_H
#define SSP_SIM_THREADCONTEXT_H

#include "ir/Reg.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace ssp::sim {

/// Maximum live-in slots per spawn frame.
inline constexpr unsigned MaxLIBSlots = 16;

/// Architectural state of one hardware thread context.
struct ThreadContext {
  /// Dense index of p0 within Regs (the first predicate register).
  static constexpr unsigned P0Index = ir::NumIntRegs + ir::NumFPRegs;

  /// All register files of Table 1 in one dense array, indexed by
  /// ir::Reg::denseIndex(): r0..r127, then f0..f127 (raw bits), then
  /// p0..p63 (stored as 0/1). Invariants: Regs[0] == 0 (r0 hardwired to
  /// zero) and Regs[P0Index] == 1 (p0 hardwired true) — writes to the
  /// hardwired slots are dropped, so reads never need to special-case.
  uint64_t Regs[ir::Reg::NumDenseIndices];
  uint32_t PC = 0;

  std::vector<uint32_t> CallStack;   ///< Return addresses for call/ret.
  std::vector<uint32_t> ResumeStack; ///< Resume addresses for chk.c/rfi.

  /// Live-in frame handed to this thread when it was spawned.
  uint64_t LIBIn[MaxLIBSlots];
  /// Staged outgoing live-ins, written by CopyToLIB, snapshotted by Spawn.
  uint64_t LIBStage[MaxLIBSlots];

  ThreadContext() { reset(); }

  void reset() {
    std::memset(Regs, 0, sizeof(Regs));
    Regs[P0Index] = 1; // p0 is hardwired true.
    PC = 0;
    CallStack.clear();
    ResumeStack.clear();
    std::memset(LIBIn, 0, sizeof(LIBIn));
    std::memset(LIBStage, 0, sizeof(LIBStage));
  }

  uint64_t readInt(unsigned N) const { return Regs[N]; }
  void writeInt(unsigned N, uint64_t V) {
    if (N != 0)
      Regs[N] = V;
  }
  uint64_t readFP(unsigned N) const { return Regs[ir::NumIntRegs + N]; }
  void writeFP(unsigned N, uint64_t V) { Regs[ir::NumIntRegs + N] = V; }
  bool readPred(unsigned N) const { return Regs[P0Index + N] != 0; }
  void writePred(unsigned N, bool V) {
    if (N != 0)
      Regs[P0Index + N] = V ? 1 : 0;
  }
};

} // namespace ssp::sim

#endif // SSP_SIM_THREADCONTEXT_H
