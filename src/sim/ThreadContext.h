//===- sim/ThreadContext.h - Architectural state of one HW context --------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The architectural state of one hardware thread context: the per-thread
/// register files of Table 1, the PC, the call/return stacks, and this
/// thread's view of the live-in buffer (the spill area of the Register
/// Stack Engine backing store that the paper uses for inter-thread live-in
/// transfer, Section 3.4.2).
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SIM_THREADCONTEXT_H
#define SSP_SIM_THREADCONTEXT_H

#include "ir/Reg.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace ssp::sim {

/// Maximum live-in slots per spawn frame.
inline constexpr unsigned MaxLIBSlots = 16;

/// Architectural state of one hardware thread context.
struct ThreadContext {
  uint64_t R[ir::NumIntRegs];  ///< Integer registers; r0 hardwired to 0.
  uint64_t F[ir::NumFPRegs];   ///< FP registers, stored as raw bits.
  bool P[ir::NumPredRegs];     ///< Predicates; p0 hardwired to true.
  uint32_t PC = 0;

  std::vector<uint32_t> CallStack;   ///< Return addresses for call/ret.
  std::vector<uint32_t> ResumeStack; ///< Resume addresses for chk.c/rfi.

  /// Live-in frame handed to this thread when it was spawned.
  uint64_t LIBIn[MaxLIBSlots];
  /// Staged outgoing live-ins, written by CopyToLIB, snapshotted by Spawn.
  uint64_t LIBStage[MaxLIBSlots];

  ThreadContext() { reset(); }

  void reset() {
    std::memset(R, 0, sizeof(R));
    std::memset(F, 0, sizeof(F));
    std::memset(P, 0, sizeof(P));
    P[0] = true; // p0 is hardwired true.
    PC = 0;
    CallStack.clear();
    ResumeStack.clear();
    std::memset(LIBIn, 0, sizeof(LIBIn));
    std::memset(LIBStage, 0, sizeof(LIBStage));
  }

  uint64_t readInt(unsigned N) const { return N == 0 ? 0 : R[N]; }
  void writeInt(unsigned N, uint64_t V) {
    if (N != 0)
      R[N] = V;
  }
  bool readPred(unsigned N) const { return N == 0 ? true : P[N]; }
  void writePred(unsigned N, bool V) {
    if (N != 0)
      P[N] = V;
  }
};

} // namespace ssp::sim

#endif // SSP_SIM_THREADCONTEXT_H
