//===- sim/PrefetchTable.h - Open-addressed prefetched-line table ---------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-address -> origin table behind the simulator's prefetch
/// usefulness accounting (Section 4.4.1 dynamic throttling) and the
/// prefetch-lifecycle attribution. It is touched on every speculative
/// line-moving access and on every main-thread load, so it is an
/// open-addressed flat table instead of a node-based hash map: one
/// multiplicative hash, a short linear probe over three parallel arrays,
/// no allocation on the hot path.
///
/// Capacity is fixed at 2^17 slots so that the historical overflow policy
/// is preserved exactly: the simulator clears the table when the live count
/// exceeds 2^16 entries ("stale entries lapse"), which keeps the load
/// factor at or below one half. Tombstones left by erasures are reclaimed
/// by an in-place deterministic rebuild when they accumulate.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SIM_PREFETCHTABLE_H
#define SSP_SIM_PREFETCHTABLE_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace ssp::sim {

/// Everything the simulator remembers about a tracked (line-moving)
/// speculative prefetch until its fate resolves: the chk.c trigger whose
/// thread moved the line, the slice it was executing, how deep in the
/// spawn chain that thread was, and whether the access was a wild load.
struct PrefetchOrigin {
  ir::StaticId Trigger = 0;
  ir::StaticId Slice = 0;
  uint32_t Depth = 0;
  bool Wild = false;
};

/// Maps 64-bit line addresses to the PrefetchOrigin of the speculative
/// access that moved the line up the hierarchy.
class PrefetchedLineTable {
  enum : uint8_t { Empty = 0, Full = 1, Tomb = 2 };
  static constexpr unsigned LogCap = 17;
  static constexpr size_t Cap = size_t(1) << LogCap;

public:
  /// Storage is allocated on first insert: baseline and profiling runs
  /// never touch the table, and a Simulator is built per run, so paying
  /// several MB of zeroed arrays up front would tax exactly the runs that
  /// cannot use them.
  PrefetchedLineTable() = default;

  size_t size() const { return Live; }

  /// Pointer to the value stored for \p Line, or nullptr if absent.
  PrefetchOrigin *find(uint64_t Line) {
    if (State.empty())
      return nullptr;
    size_t I = slotOf(Line);
    while (State[I] != Empty) {
      if (State[I] == Full && Keys[I] == Line)
        return &Vals[I];
      I = (I + 1) & (Cap - 1);
    }
    return nullptr;
  }

  /// Inserts (Line, Origin); returns true when the key was absent. An
  /// existing entry's value is overwritten (matching map::insert +
  /// assignment in the original simulator code); when \p Replaced is
  /// non-null it receives the overwritten value so the caller can resolve
  /// the superseded prefetch's fate.
  bool insertOrAssign(uint64_t Line, const PrefetchOrigin &Origin,
                      PrefetchOrigin *Replaced = nullptr) {
    if (State.empty()) {
      Keys.assign(Cap, 0);
      Vals.assign(Cap, PrefetchOrigin());
      State.assign(Cap, Empty);
    }
    if (Live + Tombs >= Cap - (Cap >> 2))
      rebuild(); // Reclaim tombstones before probes can degenerate.
    size_t I = slotOf(Line);
    size_t FirstFree = Cap;
    while (State[I] != Empty) {
      if (State[I] == Full && Keys[I] == Line) {
        if (Replaced)
          *Replaced = Vals[I];
        Vals[I] = Origin;
        return false;
      }
      if (State[I] == Tomb && FirstFree == Cap)
        FirstFree = I;
      I = (I + 1) & (Cap - 1);
    }
    if (FirstFree != Cap) {
      I = FirstFree;
      --Tombs;
    }
    State[I] = Full;
    Keys[I] = Line;
    Vals[I] = Origin;
    ++Live;
    return true;
  }

  /// Erases \p Line if present.
  void erase(uint64_t Line) {
    if (State.empty())
      return;
    size_t I = slotOf(Line);
    while (State[I] != Empty) {
      if (State[I] == Full && Keys[I] == Line) {
        State[I] = Tomb;
        --Live;
        ++Tombs;
        return;
      }
      I = (I + 1) & (Cap - 1);
    }
  }

  /// Visits every live entry (slot order; used to drain still-pending
  /// entries' fates at overflow clears and at end of run — the visit
  /// order does not affect the resulting counts).
  template <typename Fn> void forEach(Fn &&Visit) const {
    for (size_t I = 0; I < State.size(); ++I)
      if (State[I] == Full)
        Visit(Keys[I], Vals[I]);
  }

  void clear() {
    std::fill(State.begin(), State.end(), uint8_t(Empty));
    Live = 0;
    Tombs = 0;
  }

private:
  size_t slotOf(uint64_t Line) const {
    return size_t((Line * 0x9E3779B97F4A7C15ULL) >> (64 - LogCap));
  }

  /// Rehashes live entries in place, dropping tombstones. Deterministic and
  /// invisible to callers (no entry is added or removed).
  void rebuild() {
    std::vector<std::pair<uint64_t, PrefetchOrigin>> Entries;
    Entries.reserve(Live);
    for (size_t I = 0; I < Cap; ++I)
      if (State[I] == Full)
        Entries.push_back({Keys[I], Vals[I]});
    clear();
    for (const auto &[Line, Origin] : Entries)
      insertOrAssign(Line, Origin);
  }

  std::vector<uint64_t> Keys;
  std::vector<PrefetchOrigin> Vals;
  std::vector<uint8_t> State;
  size_t Live = 0;
  size_t Tombs = 0;
};

} // namespace ssp::sim

#endif // SSP_SIM_PREFETCHTABLE_H
