//===- sim/PrefetchTable.h - Open-addressed prefetched-line table ---------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-address -> origin-trigger table behind the simulator's prefetch
/// usefulness accounting (Section 4.4.1 dynamic throttling). It is touched
/// on every speculative line-moving access and on every main-thread load,
/// so it is an open-addressed flat table instead of a node-based hash map:
/// one multiplicative hash, a short linear probe over three parallel
/// arrays, no allocation on the hot path.
///
/// Capacity is fixed at 2^17 slots so that the historical overflow policy
/// is preserved exactly: the simulator clears the table when the live count
/// exceeds 2^16 entries ("stale entries lapse"), which keeps the load
/// factor at or below one half. Tombstones left by erasures are reclaimed
/// by an in-place deterministic rebuild when they accumulate.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SIM_PREFETCHTABLE_H
#define SSP_SIM_PREFETCHTABLE_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace ssp::sim {

/// Maps 64-bit line addresses to the StaticId of the chk.c trigger whose
/// speculative thread moved the line up the hierarchy.
class PrefetchedLineTable {
  enum : uint8_t { Empty = 0, Full = 1, Tomb = 2 };
  static constexpr unsigned LogCap = 17;
  static constexpr size_t Cap = size_t(1) << LogCap;

public:
  /// Storage is allocated on first insert: baseline and profiling runs
  /// never touch the table, and a Simulator is built per run, so paying
  /// ~2 MB of zeroed arrays up front would tax exactly the runs that
  /// cannot use them.
  PrefetchedLineTable() = default;

  size_t size() const { return Live; }

  /// Pointer to the value stored for \p Line, or nullptr if absent.
  ir::StaticId *find(uint64_t Line) {
    if (State.empty())
      return nullptr;
    size_t I = slotOf(Line);
    while (State[I] != Empty) {
      if (State[I] == Full && Keys[I] == Line)
        return &Vals[I];
      I = (I + 1) & (Cap - 1);
    }
    return nullptr;
  }

  /// Inserts (Line, Sid); returns true when the key was absent. An existing
  /// entry's value is overwritten (matching map::insert + assignment in the
  /// original simulator code).
  bool insertOrAssign(uint64_t Line, ir::StaticId Sid) {
    if (State.empty()) {
      Keys.assign(Cap, 0);
      Vals.assign(Cap, 0);
      State.assign(Cap, Empty);
    }
    if (Live + Tombs >= Cap - (Cap >> 2))
      rebuild(); // Reclaim tombstones before probes can degenerate.
    size_t I = slotOf(Line);
    size_t FirstFree = Cap;
    while (State[I] != Empty) {
      if (State[I] == Full && Keys[I] == Line) {
        Vals[I] = Sid;
        return false;
      }
      if (State[I] == Tomb && FirstFree == Cap)
        FirstFree = I;
      I = (I + 1) & (Cap - 1);
    }
    if (FirstFree != Cap) {
      I = FirstFree;
      --Tombs;
    }
    State[I] = Full;
    Keys[I] = Line;
    Vals[I] = Sid;
    ++Live;
    return true;
  }

  /// Erases \p Line if present.
  void erase(uint64_t Line) {
    if (State.empty())
      return;
    size_t I = slotOf(Line);
    while (State[I] != Empty) {
      if (State[I] == Full && Keys[I] == Line) {
        State[I] = Tomb;
        --Live;
        ++Tombs;
        return;
      }
      I = (I + 1) & (Cap - 1);
    }
  }

  void clear() {
    std::fill(State.begin(), State.end(), uint8_t(Empty));
    Live = 0;
    Tombs = 0;
  }

private:
  size_t slotOf(uint64_t Line) const {
    return size_t((Line * 0x9E3779B97F4A7C15ULL) >> (64 - LogCap));
  }

  /// Rehashes live entries in place, dropping tombstones. Deterministic and
  /// invisible to callers (no entry is added or removed).
  void rebuild() {
    std::vector<std::pair<uint64_t, ir::StaticId>> Entries;
    Entries.reserve(Live);
    for (size_t I = 0; I < Cap; ++I)
      if (State[I] == Full)
        Entries.push_back({Keys[I], Vals[I]});
    clear();
    for (const auto &[Line, Sid] : Entries)
      insertOrAssign(Line, Sid);
  }

  std::vector<uint64_t> Keys;
  std::vector<ir::StaticId> Vals;
  std::vector<uint8_t> State;
  size_t Live = 0;
  size_t Tombs = 0;
};

} // namespace ssp::sim

#endif // SSP_SIM_PREFETCHTABLE_H
