//===- sim/MachineConfig.h - Research Itanium machine models --------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two research Itanium machine models of the paper (Table 1): an
/// in-order 12-stage SMT pipeline and an out-of-order 16-stage SMT pipeline,
/// both with four hardware thread contexts, fetching and issuing two bundles
/// per cycle from one thread or one bundle each from two threads.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_SIM_MACHINECONFIG_H
#define SSP_SIM_MACHINECONFIG_H

#include "cache/Cache.h"
#include "sim/Sampling.h"

#include <cstdint>
#include <unordered_set>

namespace ssp::sim {

enum class PipelineKind : uint8_t { InOrder, OutOfOrder };

/// SMT fetch arbitration policy. RoundRobin rotates among ready threads;
/// ICount (Tullsen et al., the policy of the SMTSIM lineage the paper's
/// simulator derives from) prioritizes the thread with the fewest
/// instructions in the pre-issue stages, which starves stalled threads of
/// fetch bandwidth.
enum class FetchPolicy : uint8_t { RoundRobin, ICount };

/// Full machine configuration. Defaults reproduce the paper's Table 1.
struct MachineConfig {
  PipelineKind Pipeline = PipelineKind::InOrder;

  unsigned NumThreads = 4;

  /// Fetch/issue policy: 2 bundles from 1 thread, or 1 each from 2 threads.
  unsigned FetchBundlesPerCycle = 2;
  FetchPolicy Fetch = FetchPolicy::RoundRobin;
  unsigned IssueBundlesPerCycle = 2;

  /// Function units: 4 integer, 2 FP, 3 branch, 2 memory ports.
  unsigned IntUnits = 4;
  unsigned FPUnits = 2;
  unsigned BranchUnits = 3;
  unsigned MemPorts = 2;

  /// In-order: per-thread 16-bundle expansion queue.
  unsigned ExpansionQueueBundles = 16;

  /// OOO: per-thread 255-entry reorder buffer, 18-entry reservation station.
  unsigned RobEntries = 255;
  unsigned RsEntries = 18;

  /// Extra restart delay after a chk.c exception or rfi redirect, on top of
  /// the natural pipeline-refill cost.
  unsigned ExceptionRestartDelay = 4;

  /// Number of live-in slots in the RSE-backing-store live-in buffer.
  unsigned LIBSlots = 16;

  /// Dynamic SSP throttling (the paper's Section 4.4.1 future-work idea:
  /// monitor the coverage and timeliness of each trigger's prefetch
  /// threads; a trigger whose threads do not reduce latency makes future
  /// chk.c checks report no available context). Disabled by default, as
  /// in the paper.
  bool EnableSSPThrottle = false;
  /// Evaluate trigger health every this many cycles (any period; powers of
  /// two take a cheaper strength-reduced path, 0 disables evaluation). The
  /// evaluation is time-based so consumption credits — which trail the
  /// prefetches of far-ahead chains — have a full period to arrive.
  uint64_t ThrottleEvalPeriod = 16384;
  /// Minimum speculative touches in a period for a verdict.
  unsigned ThrottleMinSample = 64;
  /// Minimum fraction of timely prefetches to stay enabled.
  double ThrottleMinUseful = 0.25;
  /// How long a throttled trigger stays disabled (cycles).
  uint64_t ThrottlePenalty = 100000;
  /// A prefetch counts as timely if the main thread's subsequent access
  /// completes within this latency (cycles).
  uint32_t ThrottleTimelyLatency = 30;

  /// Stream engine: when the adapted binary carries StreamDescriptors
  /// (ssp-adapt --streams), a chk.c whose stub is covered by a descriptor
  /// activates the descriptor directly instead of raising the spawn
  /// exception — no pipeline flush, no context occupied, no slice
  /// fetch/decode. A binary without descriptors behaves bit-identically
  /// whatever these knobs say.
  bool EnableStreamEngine = true;
  /// Concurrently active descriptor activations; activations beyond this
  /// are ignored like a chk.c with no free context.
  unsigned MaxActiveStreams = 8;
  /// Descriptor steps advanced per cycle across all active streams.
  unsigned StreamIssueWidth = 2;
  /// Per-activation bound on steps (clamps the descriptor's Depth).
  uint32_t MaxStreamDepth = 64;

  /// Safety bound on simulated cycles.
  uint64_t MaxCycles = 4000000000ULL;

  /// Event-driven idle-cycle skipping: when a cycle fetches, issues,
  /// dispatches, completes and retires nothing, jump straight to the next
  /// cycle at which anything can happen, bulk-accounting the skipped span.
  /// Produces bit-identical SimStats either way (enforced by skip_test);
  /// disable (`--no-skip` in the tools) to cross-check or to step the
  /// simulator cycle by cycle under a debugger.
  bool SkipIdleCycles = true;

  /// Two-level sampled simulation (`--sample=W:D:F[:R]` in the tools): when
  /// the plan is enabled, detailed intervals alternate with functional
  /// fast-forward/warming intervals and whole-run statistics are
  /// extrapolated from the detailed ones (see sim/Sampling.h and the
  /// DESIGN.md "Sampled simulation" section). The default (disabled)
  /// plan is the plain exact simulator.
  SamplingPlan Sample;

  cache::CacheConfig Cache;

  /// Idealizations for Figure 2.
  bool PerfectMemory = false;
  std::unordered_set<ir::StaticId> PerfectLoads;

  /// Pipeline depth: 12 stages in order, 16 out of order (the OOO model
  /// adds four front-end stages for renaming/scheduling).
  unsigned pipelineDepth() const {
    return Pipeline == PipelineKind::InOrder ? 12 : 16;
  }

  /// Cycles from fetch to issue eligibility: the front-end portion of the
  /// pipeline. This is what a misprediction or exception redirect pays to
  /// refill.
  unsigned frontLatency() const {
    return Pipeline == PipelineKind::InOrder ? 8 : 12;
  }

  static MachineConfig inOrder() { return MachineConfig(); }
  static MachineConfig outOfOrder() {
    MachineConfig C;
    C.Pipeline = PipelineKind::OutOfOrder;
    return C;
  }
};

} // namespace ssp::sim

#endif // SSP_SIM_MACHINECONFIG_H
