//===- trigger/TriggerPlacer.h - Trigger point placement -------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trigger placement (Section 3.3). The trigger set must form a cut set on
/// the CFG: every execution path reaching the delinquent region crosses
/// exactly one trigger. For chaining SP on a loop, triggers go on the loop
/// entry edges, after the instruction producing the last live-in, hoisted
/// to immediate dominators while frequency (and hence slack) is unchanged.
/// For basic SP the trigger sits at the top of the loop body so each
/// iteration spawns the prefetch thread for the next. The module also
/// exposes the cut-set checker used by tests and the weighted heuristic /
/// min-cut costs compared in the ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef SSP_TRIGGER_TRIGGERPLACER_H
#define SSP_TRIGGER_TRIGGERPLACER_H

#include "sched/Scheduler.h"
#include "slicer/Slicer.h"

#include <cstdint>
#include <vector>

namespace ssp::trigger {

/// One trigger: insert a chk.c at index `Where.Inst` of block
/// `Where.Block` in function `Where.Func` (before the instruction
/// currently at that index).
struct TriggerPlacement {
  analysis::InstRef Where;
};

/// The complete triggering decision for one slice.
struct TriggerPlan {
  std::vector<TriggerPlacement> Triggers;
  /// Chaining restart triggers: placed at the chain-loop header so a chain
  /// that died (its spawn found no free context) is re-launched with the
  /// main thread's current live-in values. chk.c acts as a nop while the
  /// chain is alive and holding all contexts, so the steady-state cost is
  /// one branch-unit slot per iteration. These are not part of the cut
  /// set; they exploit chk.c's fire-only-when-idle semantics.
  std::vector<TriggerPlacement> RestartTriggers;
  bool PerIteration = false; ///< Basic SP: trigger fires every iteration.
  uint64_t HeuristicCost = 0; ///< Sum of freq * (1 + #live-ins) at triggers.
};

/// Places triggers for scheduled slices.
class TriggerPlacer {
public:
  TriggerPlacer(const analysis::ProgramDeps &Deps,
                const analysis::RegionGraph &RG,
                const profile::ProfileData &PD)
      : Deps(Deps), RG(RG), PD(PD) {}

  /// Computes the trigger plan for \p S under schedule \p Sched. When
  /// \p RestartTriggers is set, chaining plans on loop regions also get a
  /// header restart trigger.
  TriggerPlan place(const slicer::Slice &S,
                    const sched::ScheduledSlice &Sched,
                    bool RestartTriggers = true);

  /// Verifies the cut-set property: every path from the function entry to
  /// \p TargetBlock crosses at least one trigger, and no path crosses two
  /// (paper: "each execution path leading to the delinquent load has only
  /// one trigger point"). Triggers must all be in \p Func.
  static bool isCutSet(const analysis::CFG &G,
                       const std::vector<TriggerPlacement> &Triggers,
                       uint32_t TargetBlock);

  /// Optimal trigger cost via max-flow min-cut over loop entry edges,
  /// with edge capacity freq * (1 + #live-ins). Reference for ablation.
  uint64_t minCutCost(const slicer::Slice &S);

private:
  const analysis::ProgramDeps &Deps;
  const analysis::RegionGraph &RG;
  const profile::ProfileData &PD;
};

} // namespace ssp::trigger

#endif // SSP_TRIGGER_TRIGGERPLACER_H
