//===- trigger/MinCut.cpp - Edmonds-Karp max flow --------------------------===//

#include "trigger/MinCut.h"

#include <algorithm>
#include <deque>
#include <limits>

using namespace ssp;
using namespace ssp::trigger;

uint64_t ssp::trigger::maxFlowMinCut(unsigned NumNodes, unsigned Source,
                                     unsigned Sink,
                                     const std::vector<FlowEdge> &Edges,
                                     std::vector<size_t> *CutEdges) {
  // Residual representation: forward and backward arcs interleaved.
  struct Arc {
    unsigned To;
    uint64_t Cap;
    size_t Rev; ///< Index of the reverse arc in Adj[To].
  };
  std::vector<std::vector<Arc>> Adj(NumNodes);
  // Remember where each input edge's forward arc lives.
  std::vector<std::pair<unsigned, size_t>> ArcOfEdge;
  ArcOfEdge.reserve(Edges.size());
  for (const FlowEdge &E : Edges) {
    Adj[E.From].push_back({E.To, E.Capacity, Adj[E.To].size()});
    Adj[E.To].push_back({E.From, 0, Adj[E.From].size() - 1});
    ArcOfEdge.push_back({E.From, Adj[E.From].size() - 1});
  }

  uint64_t Flow = 0;
  while (true) {
    // BFS for the shortest augmenting path.
    std::vector<std::pair<unsigned, size_t>> Parent(
        NumNodes, {~0u, 0}); // (node, arc idx in Adj[node]).
    std::deque<unsigned> Queue{Source};
    Parent[Source] = {Source, 0};
    while (!Queue.empty() && Parent[Sink].first == ~0u) {
      unsigned V = Queue.front();
      Queue.pop_front();
      for (size_t AI = 0; AI < Adj[V].size(); ++AI) {
        const Arc &A = Adj[V][AI];
        if (A.Cap == 0 || Parent[A.To].first != ~0u)
          continue;
        Parent[A.To] = {V, AI};
        Queue.push_back(A.To);
      }
    }
    if (Parent[Sink].first == ~0u)
      break;

    // Bottleneck along the path.
    uint64_t Bottleneck = std::numeric_limits<uint64_t>::max();
    for (unsigned V = Sink; V != Source;) {
      auto [U, AI] = Parent[V];
      Bottleneck = std::min(Bottleneck, Adj[U][AI].Cap);
      V = U;
    }
    for (unsigned V = Sink; V != Source;) {
      auto [U, AI] = Parent[V];
      Arc &A = Adj[U][AI];
      A.Cap -= Bottleneck;
      Adj[A.To][A.Rev].Cap += Bottleneck;
      V = U;
    }
    Flow += Bottleneck;
  }

  if (CutEdges) {
    // Source side = nodes reachable in the residual graph.
    std::vector<uint8_t> Reach(NumNodes, 0);
    std::deque<unsigned> Queue{Source};
    Reach[Source] = 1;
    while (!Queue.empty()) {
      unsigned V = Queue.front();
      Queue.pop_front();
      for (const Arc &A : Adj[V]) {
        if (A.Cap == 0 || Reach[A.To])
          continue;
        Reach[A.To] = 1;
        Queue.push_back(A.To);
      }
    }
    CutEdges->clear();
    for (size_t I = 0; I < Edges.size(); ++I)
      if (Reach[Edges[I].From] && !Reach[Edges[I].To])
        CutEdges->push_back(I);
  }
  return Flow;
}
