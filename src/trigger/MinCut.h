//===- trigger/MinCut.h - Max-flow / min-cut on the CFG -------------------===//
//
// Part of the ssp-postpass project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.3 maps optimal trigger placement to the max-flow min-cut
/// problem: edges weighted by frequency times triggering cost, the optimal
/// trigger set is the minimum cut between the program entry and the
/// delinquent region. The tool itself uses a conservative heuristic; this
/// reference implementation (BFS augmenting paths, Edmonds-Karp) exists to
/// quantify how far the heuristic is from optimal (ablation bench).
///
//===----------------------------------------------------------------------===//

#ifndef SSP_TRIGGER_MINCUT_H
#define SSP_TRIGGER_MINCUT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ssp::trigger {

/// One directed edge with capacity.
struct FlowEdge {
  unsigned From = 0;
  unsigned To = 0;
  uint64_t Capacity = 0;
};

/// Computes the max-flow value (== min-cut weight) from \p Source to
/// \p Sink over \p Edges on a graph of \p NumNodes nodes. Also returns,
/// via \p CutEdges, the indices into \p Edges of a minimum cut (edges from
/// the source side to the sink side of the residual graph).
uint64_t maxFlowMinCut(unsigned NumNodes, unsigned Source, unsigned Sink,
                       const std::vector<FlowEdge> &Edges,
                       std::vector<size_t> *CutEdges = nullptr);

} // namespace ssp::trigger

#endif // SSP_TRIGGER_MINCUT_H
