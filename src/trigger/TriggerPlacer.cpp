//===- trigger/TriggerPlacer.cpp - Trigger point placement -----------------===//

#include "trigger/TriggerPlacer.h"

#include "trigger/MinCut.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>

using namespace ssp;
using namespace ssp::trigger;
using namespace ssp::analysis;
using namespace ssp::ir;

namespace {

/// The insertion index at the end of a block, respecting that control
/// transfer instructions must stay last.
uint32_t endInsertionIndex(const BasicBlock &BB) {
  if (BB.Insts.empty())
    return 0;
  const Instruction &Last = BB.Insts.back();
  if (Last.Op == Opcode::Br || isTerminator(Last.Op))
    return static_cast<uint32_t>(BB.Insts.size() - 1);
  return static_cast<uint32_t>(BB.Insts.size());
}

/// Index just after the last instruction in \p BB producing a slice
/// input: a definition of a live-in register, or a store to a location a
/// slice load reads (same base + displacement; the p-slice must observe
/// the stored value, e.g. a spilled argument). Clamped to the legal end
/// position; 0 when none.
uint32_t afterLastLiveInDef(
    const BasicBlock &BB, const std::vector<Reg> &LiveIns,
    const std::vector<std::pair<Reg, int64_t>> &MemFeeds = {}) {
  std::set<Reg> Set(LiveIns.begin(), LiveIns.end());
  std::set<std::pair<Reg, int64_t>> Feeds(MemFeeds.begin(), MemFeeds.end());
  uint32_t Pos = 0;
  for (uint32_t II = 0; II < BB.Insts.size(); ++II) {
    const Instruction &I = BB.Insts[II];
    Reg D = I.def();
    if (D.isValid() && Set.count(D))
      Pos = II + 1;
    if (isStore(I.Op) && Feeds.count({I.Src1, I.Imm}))
      Pos = II + 1;
  }
  return std::min(Pos, endInsertionIndex(BB));
}

/// (Base, displacement) pairs of every load in the slice.
std::vector<std::pair<Reg, int64_t>>
sliceLoadAddresses(const Program &P, const slicer::Slice &S) {
  std::vector<std::pair<Reg, int64_t>> Feeds;
  for (const analysis::InstRef &M : S.Insts) {
    const Instruction &I = M.get(P);
    if (isLoad(I.Op))
      Feeds.push_back({I.Src1, I.Imm});
  }
  return Feeds;
}

} // namespace

TriggerPlan TriggerPlacer::place(const slicer::Slice &S,
                                 const sched::ScheduledSlice &Sched,
                                 bool RestartTriggers) {
  TriggerPlan Plan;
  const Region &R = RG.region(S.RegionIdx);
  const Program &P = Deps.program();
  const Function &F = P.func(R.Func);
  const FunctionDeps &FD = Deps.forFunction(R.Func);

  auto CostOf = [&](uint32_t Block) {
    return PD.blockCount(R.Func, Block) * (1 + S.LiveIns.size());
  };

  if (R.Kind == RegionKind::Loop &&
      Sched.Model == sched::SPModel::Basic) {
    // Basic SP: the main thread triggers the next iteration's prefetch
    // thread inside the loop body.
    const Loop &L = FD.loops().loop(R.LoopIdx);
    Plan.PerIteration = true;
    Plan.Triggers.push_back({{R.Func, L.Header, 0}});
    Plan.HeuristicCost = CostOf(L.Header);
    return Plan;
  }

  if (R.Kind == RegionKind::Loop) {
    // Chaining SP: one trigger per loop entry edge, after the last
    // live-in producing instruction, hoisted to the immediate dominator
    // while it carries the same frequency (slack unchanged) and defines
    // no live-in after the insertion point.
    const Loop &L = FD.loops().loop(R.LoopIdx);
    std::set<std::pair<uint32_t, uint32_t>> Placements;
    for (uint32_t Pred : FD.cfg().preds(L.Header)) {
      if (L.contains(Pred))
        continue; // Back edge.
      uint32_t Block = Pred;
      uint32_t Idx = afterLastLiveInDef(F.block(Block), S.LiveIns,
                                        sliceLoadAddresses(P, S));
      // Hoist: climb the immediate dominators while legal.
      while (Idx == 0) {
        uint32_t IDom = FD.doms().idom(Block);
        if (IDom == ~0u)
          break;
        if (PD.blockCount(R.Func, IDom) != PD.blockCount(R.Func, Block))
          break; // Frequency differs: hoisting would change slack/cost.
        uint32_t NewIdx = afterLastLiveInDef(F.block(IDom), S.LiveIns,
                                             sliceLoadAddresses(P, S));
        Block = IDom;
        Idx = NewIdx;
        if (Idx != 0)
          break;
      }
      // Combining happens naturally: identical placements deduplicate.
      Placements.insert({Block, Idx});
    }
    for (const auto &[Block, Idx] : Placements) {
      Plan.Triggers.push_back({{R.Func, Block, Idx}});
      Plan.HeuristicCost += CostOf(Block);
    }
    if (RestartTriggers)
      Plan.RestartTriggers.push_back({{R.Func, L.Header, 0}});
    return Plan;
  }

  // Procedure region: the function entry dominates everything; place the
  // trigger after the last live-in producing instruction in the entry
  // block (Section 3.3's "after the instruction that produces the last
  // live-in to the slice").
  uint32_t EntryIdx = afterLastLiveInDef(F.block(FD.cfg().entry()),
                                         S.LiveIns, sliceLoadAddresses(P, S));
  Plan.Triggers.push_back({{R.Func, FD.cfg().entry(), EntryIdx}});
  Plan.HeuristicCost = CostOf(FD.cfg().entry());
  return Plan;
}

bool TriggerPlacer::isCutSet(const CFG &G,
                             const std::vector<TriggerPlacement> &Triggers,
                             uint32_t TargetBlock) {
  if (Triggers.empty())
    return false;
  std::set<uint32_t> TriggerBlocks;
  for (const TriggerPlacement &T : Triggers)
    TriggerBlocks.insert(T.Where.Block);

  // Coverage: no trigger-free path from the entry to the target.
  if (!TriggerBlocks.count(G.entry()) && G.entry() != TargetBlock) {
    std::deque<uint32_t> Queue{G.entry()};
    std::vector<uint8_t> Seen(G.numBlocks(), 0);
    Seen[G.entry()] = 1;
    while (!Queue.empty()) {
      uint32_t B = Queue.front();
      Queue.pop_front();
      for (uint32_t Succ : G.succs(B)) {
        if (TriggerBlocks.count(Succ))
          continue; // Path blocked by a trigger.
        if (Succ == TargetBlock)
          return false; // Reached the target without crossing a trigger.
        if (!Seen[Succ]) {
          Seen[Succ] = 1;
          Queue.push_back(Succ);
        }
      }
    }
  } else if (TriggerBlocks.count(G.entry()) && TriggerBlocks.size() > 1) {
    // fallthrough to the double-cross check below.
  }

  // Single crossing: from any trigger, no other trigger is reachable
  // without first passing the target (distinct triggers only; a trigger
  // re-reached around the loop serves the next region entry).
  for (uint32_t T : TriggerBlocks) {
    std::deque<uint32_t> Queue;
    std::vector<uint8_t> Seen(G.numBlocks(), 0);
    for (uint32_t Succ : G.succs(T))
      if (Succ != TargetBlock && !Seen[Succ]) {
        Seen[Succ] = 1;
        Queue.push_back(Succ);
      }
    while (!Queue.empty()) {
      uint32_t B = Queue.front();
      Queue.pop_front();
      if (TriggerBlocks.count(B) && B != T)
        return false;
      for (uint32_t Succ : G.succs(B))
        if (Succ != TargetBlock && !Seen[Succ]) {
          Seen[Succ] = 1;
          Queue.push_back(Succ);
        }
    }
  }
  return true;
}

uint64_t TriggerPlacer::minCutCost(const slicer::Slice &S) {
  const Region &R = RG.region(S.RegionIdx);
  const FunctionDeps &FD = Deps.forFunction(R.Func);
  const CFG &G = FD.cfg();
  if (R.Kind != RegionKind::Loop)
    return 0;
  const Loop &L = FD.loops().loop(R.LoopIdx);

  // Flow network: CFG edges outside the loop, capacity freq * cost.
  // Source = entry, sink = loop header; back edges are excluded so the
  // cut separates region *entries* only.
  std::vector<FlowEdge> Edges;
  uint64_t CostFactor = 1 + S.LiveIns.size();
  for (uint32_t B = 0; B < G.numBlocks(); ++B) {
    for (uint32_t Succ : G.succs(B)) {
      if (L.contains(B))
        continue; // Inside the loop (includes back edges).
      uint64_t Freq = PD.edgeCount(R.Func, B, Succ);
      if (Freq == 0 && PD.blockCount(R.Func, B) > 0 &&
          G.succs(B).size() == 1)
        Freq = PD.blockCount(R.Func, B); // Fallthrough-only edge.
      Edges.push_back({B, Succ, Freq * CostFactor});
    }
  }
  if (G.entry() == L.Header)
    return PD.blockCount(R.Func, L.Header) * CostFactor;
  return maxFlowMinCut(static_cast<unsigned>(G.numBlocks()), G.entry(),
                       L.Header, Edges);
}
