//===- tests/stream_test.cpp - Stream-descriptor pipeline tests -----------===//
//
// The stream-descriptor tentpole, end to end:
//
//  * analysis::classifyStream on hand-built affine / pointer-chase /
//    indirect slices, pinning every descriptor field, plus the
//    irregular-falls-back contract;
//  * the three indirect workloads (hashjoin, pagerank, oahash) compute
//    their analytically pinned checksums, baseline and adapted;
//  * `ssp-adapt --streams` attaches Indirect descriptors to them, is
//    byte-identical for any --jobs value, and off-by-default changes
//    nothing (no descriptors, identical text, bit-identical simulation
//    whatever the engine knob says);
//  * the simulator's stream engine serves triggers without spawning,
//    preserves checksums, and the descriptors survive a text round-trip;
//  * the `stream.*` verify pass accepts a real adaptation (with audit
//    notes) and rejects tampered kinds, strides, offsets, and descriptor
//    presence/absence mismatches.
//
//===----------------------------------------------------------------------===//

#include "analysis/StreamPatterns.h"
#include "core/PostPassTool.h"
#include "ir/Parser.h"
#include "sim/Simulator.h"
#include "verify/PassManager.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace ssp;
using namespace ssp::ir;
using namespace ssp::workloads;

namespace {

//===----------------------------------------------------------------------===//
// Classifier unit tests
//===----------------------------------------------------------------------===//

Instruction mk(Opcode Op, Reg Dst, Reg Src1, int64_t Imm) {
  Instruction I;
  I.Op = Op;
  I.Dst = Dst;
  I.Src1 = Src1;
  I.Imm = Imm;
  return I;
}

analysis::StreamClassifyInput affineInput() {
  // Arc-kernel shape: the running pointer r1 advances by 64 per link and
  // the slice prefetches (r1, 8).
  analysis::StreamClassifyInput In;
  In.Critical.push_back(mk(Opcode::AddI, ireg(1), ireg(1), 64));
  In.Targets = {{ireg(1), 8}};
  In.Depth = 16;
  return In;
}

TEST(StreamClassifier, AffineRunningPointer) {
  auto D = analysis::classifyStream(affineInput());
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Kind, StreamKind::Affine);
  EXPECT_EQ(D->AddrBase, ireg(1));
  EXPECT_FALSE(D->AddrInd.isValid());
  // The prefetch address after one critical step: r1 + 64 + 8.
  EXPECT_EQ(D->AddrAdd, 72);
  EXPECT_EQ(D->Stride, 64);
  EXPECT_EQ(D->Depth, 16u);
  EXPECT_EQ(D->PrefetchOffsets, (std::vector<int64_t>{0}));
}

TEST(StreamClassifier, AffineMultipleOffsets) {
  auto In = affineInput();
  In.Targets = {{ireg(1), 8}, {ireg(1), 24}};
  auto D = analysis::classifyStream(In);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Kind, StreamKind::Affine);
  EXPECT_EQ(D->PrefetchOffsets, (std::vector<int64_t>{0, 16}));
}

TEST(StreamClassifier, PointerChase) {
  // p = load(p + 16): one link per step; prefetch the next node's payload
  // words at +0 and +8.
  analysis::StreamClassifyInput In;
  In.Critical.push_back(mk(Opcode::Load, ireg(2), ireg(2), 16));
  In.Targets = {{ireg(2), 0}, {ireg(2), 8}};
  In.Depth = 8;
  auto D = analysis::classifyStream(In);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Kind, StreamKind::Chase);
  EXPECT_EQ(D->AddrBase, ireg(2));
  EXPECT_EQ(D->ChaseOff, 16);
  EXPECT_EQ(D->PrefetchOffsets, (std::vector<int64_t>{0, 8}));
  EXPECT_EQ(D->Depth, 8u);
}

analysis::StreamClassifyInput indirectInput() {
  // Hash-probe shape: k = keys[i]; ea = Base + ((k*7) & 0x3FFFF) << 4;
  // prefetch (ea, 0) and (ea, 8). The index pointer r1 steps by 8.
  analysis::StreamClassifyInput In;
  In.Critical.push_back(mk(Opcode::AddI, ireg(1), ireg(1), 8));
  In.Body.push_back(mk(Opcode::Load, ireg(4), ireg(1), 0));
  In.Body.push_back(mk(Opcode::MulI, ireg(5), ireg(4), 7));
  In.Body.push_back(mk(Opcode::AndI, ireg(5), ireg(5), 0x3FFFF));
  In.Body.push_back(mk(Opcode::ShlI, ireg(5), ireg(5), 4));
  In.Body.push_back(mk(Opcode::AddI, ireg(6), ireg(5), 0x4000000));
  In.Targets = {{ireg(6), 0}, {ireg(6), 8}};
  In.Depth = 32;
  return In;
}

TEST(StreamClassifier, IndirectGather) {
  auto D = analysis::classifyStream(indirectInput());
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Kind, StreamKind::Indirect);
  EXPECT_EQ(D->AddrBase, ireg(1));
  // The index load runs after the critical step: keys[i+1] is at r1 + 8.
  EXPECT_EQ(D->AddrAdd, 8);
  EXPECT_EQ(D->Stride, 8);
  EXPECT_FALSE(D->ValBase.isValid());
  EXPECT_EQ(D->ValMul, 7);
  EXPECT_EQ(D->ValMask, 0x3FFFFull);
  EXPECT_EQ(D->ValShift, 4);
  EXPECT_EQ(D->ValAdd, 0x4000000);
  EXPECT_EQ(D->PrefetchOffsets, (std::vector<int64_t>{0, 8}));
  EXPECT_FALSE(D->PrefetchIndex);
}

TEST(StreamClassifier, IndirectWithIndexPrefetch) {
  // The index stream's own element is also a target: the descriptor must
  // record an index prefetch rather than losing coverage.
  auto In = indirectInput();
  In.Targets = {{ireg(1), 0}, {ireg(6), 0}};
  auto D = analysis::classifyStream(In);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Kind, StreamKind::Indirect);
  EXPECT_TRUE(D->PrefetchIndex);
  EXPECT_EQ(D->IdxPrefetchOffsets, (std::vector<int64_t>{0}));
  EXPECT_EQ(D->PrefetchOffsets, (std::vector<int64_t>{0}));
}

TEST(StreamClassifier, IrregularFallsBack) {
  // A register-register multiply of a loaded value has no descriptor
  // form; classification must fall back (full p-slice replay).
  auto In = indirectInput();
  Instruction Sq;
  Sq.Op = Opcode::Mul;
  Sq.Dst = ireg(6);
  Sq.Src1 = ireg(4);
  Sq.Src2 = ireg(4);
  In.Body.push_back(Sq);
  EXPECT_FALSE(analysis::classifyStream(In).has_value());
}

TEST(StreamClassifier, EmptyAndZeroDepthFallBack) {
  analysis::StreamClassifyInput In;
  EXPECT_FALSE(analysis::classifyStream(In).has_value());
  In = affineInput();
  In.Depth = 0;
  EXPECT_FALSE(analysis::classifyStream(In).has_value());
}

//===----------------------------------------------------------------------===//
// Workload + adaptation fixtures
//===----------------------------------------------------------------------===//

struct StreamSetup {
  Workload W;
  ir::Program Orig;
  profile::ProfileData PD;

  explicit StreamSetup(Workload Wl) : W(std::move(Wl)), Orig(W.Build()) {
    PD = core::profileProgram(Orig, W.BuildMemory);
  }

  ir::Program adapt(bool Streams, unsigned Jobs = 1,
                    core::AdaptationReport *Rep = nullptr) {
    core::ToolOptions Opts;
    Opts.EnableStreams = Streams;
    Opts.Jobs = Jobs;
    return core::PostPassTool(Orig, PD, Opts).adapt(Rep);
  }

  sim::SimStats run(const ir::Program &P, sim::MachineConfig Cfg) {
    ir::LinkedProgram LP = ir::LinkedProgram::link(P);
    mem::SimMemory Mem;
    uint64_t Expected = W.BuildMemory(Mem);
    sim::Simulator Sim(Cfg, LP, Mem);
    sim::SimStats S = Sim.run();
    EXPECT_EQ(Mem.read(ResultAddr), Expected) << W.Name;
    return S;
  }
};

TEST(StreamWorkloads, BaselineChecksums) {
  for (const Workload &W : streamSuite()) {
    StreamSetup S(W);
    S.run(S.Orig, sim::MachineConfig::inOrder());
  }
}

TEST(StreamWorkloads, AdaptedChecksumsWithAndWithoutStreams) {
  for (const Workload &W : streamSuite()) {
    StreamSetup S(W);
    S.run(S.adapt(false), sim::MachineConfig::inOrder());
    S.run(S.adapt(true), sim::MachineConfig::inOrder());
  }
}

TEST(StreamAdapt, IndirectDescriptorsAttached) {
  for (const Workload &W : streamSuite()) {
    StreamSetup S(W);
    core::AdaptationReport Rep;
    ir::Program E = S.adapt(true, 1, &Rep);
    ASSERT_FALSE(E.streams().empty()) << W.Name;
    unsigned ManifestStreams = 0;
    for (const verify::SliceManifest &SM : Rep.Manifest.Slices)
      ManifestStreams += SM.HasStream;
    EXPECT_EQ(ManifestStreams, E.streams().size()) << W.Name;
    for (const StreamDescriptor &D : E.streams()) {
      EXPECT_EQ(D.Kind, StreamKind::Indirect) << W.Name;
      EXPECT_EQ(D.Stride, 8) << W.Name;
      EXPECT_GT(D.Depth, 0u) << W.Name;
    }
  }
}

TEST(StreamAdapt, OffByDefaultAttachesNothing) {
  StreamSetup S(makeHashJoin());
  core::ToolOptions Defaults;
  ir::Program DefaultAdapted =
      core::PostPassTool(S.Orig, S.PD, Defaults).adapt();
  ir::Program Off = S.adapt(false);
  EXPECT_TRUE(Off.streams().empty());
  EXPECT_EQ(DefaultAdapted.str(), Off.str());
  EXPECT_EQ(Off.str().find("stream "), std::string::npos);
}

TEST(StreamAdapt, ByteIdenticalForAnyJobsValue) {
  StreamSetup S(makePagerank());
  std::string J1 = S.adapt(true, 1).str();
  EXPECT_EQ(J1, S.adapt(true, 4).str());
  EXPECT_EQ(J1, S.adapt(true, 8).str());
  EXPECT_NE(J1.find("stream "), std::string::npos);
}

TEST(StreamAdapt, DescriptorsSurviveTextRoundTrip) {
  StreamSetup S(makeHashJoin());
  ir::Program E = S.adapt(true);
  ASSERT_FALSE(E.streams().empty());
  std::string Text = E.str();
  ir::Program Parsed;
  std::string Err;
  ASSERT_TRUE(ir::parseProgram(Text, Parsed, Err)) << Err;
  ASSERT_EQ(Parsed.streams().size(), E.streams().size());
  for (size_t I = 0; I < E.streams().size(); ++I)
    EXPECT_TRUE(Parsed.streams()[I] == E.streams()[I]);
  EXPECT_EQ(Parsed.str(), Text);
}

//===----------------------------------------------------------------------===//
// Simulator stream engine
//===----------------------------------------------------------------------===//

TEST(StreamEngine, ServesTriggersWithoutSpawning) {
  StreamSetup S(makeHashJoin());
  ir::Program E = S.adapt(true);
  sim::SimStats Stats = S.run(E, sim::MachineConfig::inOrder());
  EXPECT_GT(Stats.StreamActivations, 0u);
  EXPECT_GT(Stats.StreamSteps, Stats.StreamActivations);
}

TEST(StreamEngine, EngineKnobFallsBackToSlices) {
  // The same streamed binary must still be correct — and still prefetch —
  // with the engine disabled: the chk.c then takes the normal spawn path.
  StreamSetup S(makeHashJoin());
  ir::Program E = S.adapt(true);
  sim::MachineConfig Off = sim::MachineConfig::inOrder();
  Off.EnableStreamEngine = false;
  sim::SimStats Stats = S.run(E, Off);
  EXPECT_EQ(Stats.StreamActivations, 0u);
  EXPECT_GT(Stats.SpawnsSucceeded, 0u);
}

TEST(StreamEngine, NoDescriptorsMeansBitIdenticalStats) {
  // Off-by-default contract: on a binary without descriptors the engine
  // knob must not change one counter.
  StreamSetup S(makeOaHash());
  ir::Program E = S.adapt(false);
  sim::MachineConfig On = sim::MachineConfig::inOrder();
  sim::MachineConfig Off = sim::MachineConfig::inOrder();
  Off.EnableStreamEngine = false;
  sim::SimStats A = S.run(E, On);
  sim::SimStats B = S.run(E, Off);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.MainInsts, B.MainInsts);
  EXPECT_EQ(A.SpecInsts, B.SpecInsts);
  EXPECT_EQ(A.TriggersFired, B.TriggersFired);
  EXPECT_EQ(A.SpawnsSucceeded, B.SpawnsSucceeded);
  EXPECT_EQ(A.SpecPrefetches, B.SpecPrefetches);
  EXPECT_EQ(A.UsefulPrefetches, B.UsefulPrefetches);
  EXPECT_EQ(A.StreamActivations, 0u);
  EXPECT_EQ(B.StreamActivations, 0u);
}

TEST(StreamEngine, DescriptorExecutionBeatsSliceReplay) {
  // The structural win the tentpole claims: descriptor execution skips the
  // spawn exception, the context occupancy and the slice fetch/decode.
  // At least two of the three indirect workloads must run faster with the
  // engine than with full p-slice replay of the same streamed binary.
  unsigned Improved = 0;
  for (const Workload &W : streamSuite()) {
    StreamSetup S(W);
    ir::Program E = S.adapt(true);
    sim::MachineConfig On = sim::MachineConfig::inOrder();
    sim::MachineConfig Off = sim::MachineConfig::inOrder();
    Off.EnableStreamEngine = false;
    uint64_t CyclesOn = S.run(E, On).Cycles;
    uint64_t CyclesOff = S.run(E, Off).Cycles;
    Improved += CyclesOn < CyclesOff;
  }
  EXPECT_GE(Improved, 2u);
}

//===----------------------------------------------------------------------===//
// The stream.* verify pass
//===----------------------------------------------------------------------===//

unsigned countCheck(const verify::DiagnosticEngine &DE,
                    const std::string &Id, verify::Severity Sev) {
  unsigned N = 0;
  for (const verify::Diagnostic &D : DE.diagnostics())
    N += D.Sev == Sev && D.CheckId == Id;
  return N;
}

struct VerifiedStream {
  StreamSetup S{makeHashJoin()};
  core::AdaptationReport Rep;
  ir::Program Enhanced;

  VerifiedStream() { Enhanced = S.adapt(true, 1, &Rep); }

  verify::DiagnosticEngine audit(const ir::Program &P) {
    verify::VerifyContext Ctx{P, &S.Orig, &Rep.Manifest};
    return verify::runStandardPipeline(Ctx);
  }
};

TEST(StreamVerify, RealAdaptationAuditsCleanWithNotes) {
  VerifiedStream V;
  ASSERT_FALSE(V.Enhanced.streams().empty());
  verify::DiagnosticEngine DE = V.audit(V.Enhanced);
  EXPECT_EQ(DE.errorCount(), 0u) << renderTextAll(DE, &V.Enhanced);
  EXPECT_GE(countCheck(DE, "stream.descriptor", verify::Severity::Note),
            V.Enhanced.streams().size());
}

TEST(StreamVerify, StandaloneBinaryAuditsWithoutManifest) {
  VerifiedStream V;
  verify::VerifyContext Ctx{V.Enhanced};
  verify::DiagnosticEngine DE = verify::runStandardPipeline(Ctx);
  EXPECT_EQ(DE.errorCount(), 0u) << renderTextAll(DE, &V.Enhanced);
  EXPECT_GE(countCheck(DE, "stream.descriptor", verify::Severity::Note), 1u);
}

TEST(StreamVerify, WrongKindIsFatal) {
  VerifiedStream V;
  ir::Program Bad = V.Enhanced.clone();
  Bad.streams()[0].Kind = StreamKind::Chase;
  // Tamper the manifest copy identically so the binary<->manifest diff
  // stays quiet and the re-derivation check must catch it.
  for (verify::SliceManifest &SM : V.Rep.Manifest.Slices)
    if (SM.HasStream)
      SM.Stream.Kind = StreamKind::Chase;
  verify::DiagnosticEngine DE = V.audit(Bad);
  EXPECT_GE(countCheck(DE, "stream.wrong-kind", verify::Severity::Error), 1u)
      << renderTextAll(DE, &Bad);
}

TEST(StreamVerify, WrongStrideIsFatal) {
  VerifiedStream V;
  ir::Program Bad = V.Enhanced.clone();
  Bad.streams()[0].Stride += 8;
  for (verify::SliceManifest &SM : V.Rep.Manifest.Slices)
    if (SM.HasStream)
      SM.Stream.Stride += 8;
  verify::DiagnosticEngine DE = V.audit(Bad);
  EXPECT_GE(countCheck(DE, "stream.wrong-stride", verify::Severity::Error),
            1u)
      << renderTextAll(DE, &Bad);
}

TEST(StreamVerify, NonCoveringOffsetsAreFatal) {
  VerifiedStream V;
  ir::Program Bad = V.Enhanced.clone();
  Bad.streams()[0].PrefetchOffsets.push_back(128);
  for (verify::SliceManifest &SM : V.Rep.Manifest.Slices)
    if (SM.HasStream)
      SM.Stream.PrefetchOffsets.push_back(128);
  verify::DiagnosticEngine DE = V.audit(Bad);
  EXPECT_GE(countCheck(DE, "stream.non-covering", verify::Severity::Error),
            1u)
      << renderTextAll(DE, &Bad);
}

TEST(StreamVerify, DroppedDescriptorIsFatal) {
  VerifiedStream V;
  ir::Program Bad = V.Enhanced.clone();
  Bad.streams().clear();
  verify::DiagnosticEngine DE = V.audit(Bad);
  EXPECT_GE(
      countCheck(DE, "stream.missing-descriptor", verify::Severity::Error),
      1u)
      << renderTextAll(DE, &Bad);
}

TEST(StreamVerify, SmuggledDescriptorIsFatal) {
  VerifiedStream V;
  ir::Program Bad = V.Enhanced.clone();
  StreamDescriptor Extra = Bad.streams()[0];
  // Key it to a stub the manifest does not claim a stream for.
  Extra.StubBlock += 1;
  Bad.streams().push_back(Extra);
  verify::DiagnosticEngine DE = V.audit(Bad);
  EXPECT_GE(
      countCheck(DE, "stream.orphan-descriptor", verify::Severity::Error),
      1u)
      << renderTextAll(DE, &Bad);
}

} // namespace
