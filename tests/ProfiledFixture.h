//===- tests/ProfiledFixture.h - Process-shared profiled workloads --------===//
//
// Building and profiling a workload (two full simulation passes) dominates
// the wall time of the end-to-end test binaries, and most tests want the
// *same* profiled program. This header shares one profiled copy of each
// workload across every test in the process: the first request builds and
// profiles it, later requests hit the cache. Profiling is deterministic
// and independent of tool options, so sharing cannot couple tests.
//
// profileRuns() counts the actual core::profileProgram invocations, letting
// a test pin the "profiled once per workload per process" contract.
//
//===----------------------------------------------------------------------===//

#ifndef SSP_TESTS_PROFILEDFIXTURE_H
#define SSP_TESTS_PROFILEDFIXTURE_H

#include "core/PostPassTool.h"
#include "workloads/Workload.h"

#include <map>
#include <memory>
#include <string>

namespace ssp::workloads {

/// A workload with its program built and profiled exactly once.
struct ProfiledWorkload {
  Workload W;
  ir::Program P;
  profile::ProfileData PD;
};

/// Number of core::profileProgram runs performed through
/// profiledWorkload() in this process.
inline unsigned &profileRuns() {
  static unsigned N = 0;
  return N;
}

/// The process-wide profiled copy of \p W, keyed by workload name. Note
/// the key: parameterized builders that do not encode their parameters in
/// Workload::Name (e.g. makeArcKernel) must be shared at one scale per
/// process; makeStress encodes its shape, so any mix is safe.
inline const ProfiledWorkload &profiledWorkload(const Workload &W) {
  static std::map<std::string, std::unique_ptr<ProfiledWorkload>> Cache;
  auto It = Cache.find(W.Name);
  if (It == Cache.end()) {
    auto PW = std::make_unique<ProfiledWorkload>();
    PW->W = W;
    PW->P = W.Build();
    PW->PD = core::profileProgram(PW->P, PW->W.BuildMemory);
    ++profileRuns();
    It = Cache.emplace(W.Name, std::move(PW)).first;
  }
  return *It->second;
}

} // namespace ssp::workloads

#endif // SSP_TESTS_PROFILEDFIXTURE_H
