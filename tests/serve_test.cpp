//===- tests/serve_test.cpp - AdaptService protocol and cache behavior ----===//
//
// End-to-end coverage of the adaptation-as-a-service engine: cache hits
// must be byte-identical to cold misses and to the one-shot library
// path, eviction must honor the byte budget, hash collisions must fall
// back to the full-key compare, responses must be deterministic for any
// --jobs, and malformed requests must produce located error responses
// without killing the service.
//
//===----------------------------------------------------------------------===//

#include "ProfiledFixture.h"
#include "core/AdaptService.h"
#include "core/PostPassTool.h"
#include "core/ReportRender.h"
#include "profile/ProfileIO.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace ssp;
using namespace ssp::core;
using namespace ssp::workloads;

namespace {

/// Request/response framing helpers mirroring the protocol grammar in
/// core/AdaptService.h.
std::string frameRequest(const std::string &Id, const std::string &Prog,
                         const std::string &Prof,
                         const std::vector<std::string> &Options = {}) {
  std::string S = "request " + Id + "\n";
  S += "program " + std::to_string(Prog.size()) + "\n" + Prog + "\n";
  S += "profile " + std::to_string(Prof.size()) + "\n" + Prof + "\n";
  for (const std::string &O : Options)
    S += "option " + O + "\n";
  S += "end\n";
  return S;
}

std::string okResponse(const std::string &Id, const std::string &Report,
                       const std::string &Binary) {
  return "response " + Id + " ok\nreport " + std::to_string(Report.size()) +
         "\n" + Report + "\nbinary " + std::to_string(Binary.size()) + "\n" +
         Binary + "\nend\n";
}

/// The texts a client would send for workload \p W, plus the expected
/// one-shot result computed through the library path the `ssp-adapt`
/// tool uses.
struct Job {
  std::string Prog, Prof;     // Request payloads.
  std::string Report, Binary; // Expected response payloads.
};

Job makeJob(const Workload &W) {
  const ProfiledWorkload &PW = profiledWorkload(W);
  Job J;
  J.Prog = PW.P.str();
  J.Prof = profile::writeProfileText(PW.PD);
  ToolOptions TO;
  TO.FatalOnVerifyError = false;
  PostPassTool Tool(PW.P, PW.PD, TO);
  AdaptationReport Rep;
  ir::Program Enhanced = Tool.adapt(&Rep);
  J.Report = renderReportText(PW.PD.BaselineCycles, Rep);
  J.Binary = Enhanced.str();
  return J;
}

TEST(Serve, HitIsByteIdenticalToColdMissAndOneShot) {
  Job J = makeJob(makeMcf());
  AdaptService S(ServeOptions{});

  // Cold miss: the response carries exactly the one-shot library result.
  std::string Cold = S.processBatch(frameRequest("r1", J.Prog, J.Prof));
  EXPECT_EQ(Cold, okResponse("r1", J.Report, J.Binary));
  EXPECT_EQ(S.cache().stats().Misses, 1u);
  EXPECT_EQ(S.cache().stats().Hits, 0u);

  // Warm hit, across a flush boundary: identical bytes modulo the id.
  std::string Warm = S.processBatch(frameRequest("r2", J.Prog, J.Prof));
  EXPECT_EQ(Warm, okResponse("r2", J.Report, J.Binary));
  EXPECT_EQ(S.cache().stats().Hits, 1u);
  EXPECT_EQ(S.cache().stats().Misses, 1u);
  EXPECT_EQ(S.cache().size(), 1u);
}

TEST(Serve, OptionSpellingsShareOneCacheKey) {
  Job J = makeJob(makeTreeaddDF());
  AdaptService S(ServeOptions{});
  std::string A = S.processBatch(
      frameRequest("a", J.Prog, J.Prof, {"speculative=true"}));
  std::string B =
      S.processBatch(frameRequest("b", J.Prog, J.Prof, {"speculative=1"}));
  // Canonicalized options: the second spelling is a hit, not a second
  // entry, and serves the same payload bytes.
  EXPECT_EQ(S.cache().size(), 1u);
  EXPECT_EQ(S.cache().stats().Hits, 1u);
  EXPECT_EQ(A.substr(A.find('\n')), B.substr(B.find('\n')));
}

TEST(Serve, DistinctOptionsGetDistinctEntries) {
  Job J = makeJob(makeTreeaddBF());
  AdaptService S(ServeOptions{});
  S.processBatch(frameRequest("a", J.Prog, J.Prof));
  S.processBatch(frameRequest("b", J.Prog, J.Prof, {"max-loads=1"}));
  EXPECT_EQ(S.cache().size(), 2u);
  EXPECT_EQ(S.cache().stats().Misses, 2u);
}

TEST(Serve, OptionalPayloadNewlineSupportsCatFraming) {
  Job J = makeJob(makeEm3d());
  AdaptService S(ServeOptions{});
  // Shell framing: the payload's own trailing newline is the only one —
  // no separate frame terminator after the length-prefixed bytes.
  ASSERT_FALSE(J.Prog.empty());
  ASSERT_EQ(J.Prog.back(), '\n');
  std::string CatStyle = "request c\n";
  CatStyle += "program " + std::to_string(J.Prog.size()) + "\n" + J.Prog;
  CatStyle += "profile " + std::to_string(J.Prof.size()) + "\n" + J.Prof;
  CatStyle += "end\n";
  EXPECT_EQ(S.processBatch(CatStyle), okResponse("c", J.Report, J.Binary));
  // Explicit framing of the same content is a cache hit on the same key.
  EXPECT_EQ(S.processBatch(frameRequest("d", J.Prog, J.Prof)),
            okResponse("d", J.Report, J.Binary));
  EXPECT_EQ(S.cache().stats().Hits, 1u);
}

TEST(Serve, EvictionHonorsByteBudget) {
  Job A = makeJob(makeMcf());
  Job B = makeJob(makeHealth());
  // Budget sized to hold one adaptation but not two.
  uint64_t OneEntry = A.Prog.size() + A.Prof.size() + A.Report.size() +
                      A.Binary.size() + 1024;
  ServeOptions O;
  O.CacheBytes = OneEntry;
  AdaptService S(O);
  S.processBatch(frameRequest("a", A.Prog, A.Prof));
  EXPECT_EQ(S.cache().size(), 1u);
  S.processBatch(frameRequest("b", B.Prog, B.Prof));
  EXPECT_GE(S.cache().stats().Evictions, 1u);
  EXPECT_LE(S.cache().usedBytes(), O.CacheBytes);
  // The evicted key is truly gone: re-requesting it is a miss again, and
  // still byte-identical.
  EXPECT_EQ(S.processBatch(frameRequest("c", A.Prog, A.Prof)),
            okResponse("c", A.Report, A.Binary));
  EXPECT_EQ(S.cache().stats().Hits, 0u);
  EXPECT_EQ(S.cache().stats().Misses, 3u);
}

TEST(Serve, HashCollisionsFallBackToFullKeyCompare) {
  Job A = makeJob(makeMcf());
  Job B = makeJob(makeEm3d());
  AdaptService S(ServeOptions{});
  // Force every key into one bucket; correctness must now come entirely
  // from the full-key byte compare.
  S.cache().setHashFunction([](const ServeKey &) { return 42u; });
  EXPECT_EQ(S.processBatch(frameRequest("a1", A.Prog, A.Prof)),
            okResponse("a1", A.Report, A.Binary));
  EXPECT_EQ(S.processBatch(frameRequest("b1", B.Prog, B.Prof)),
            okResponse("b1", B.Report, B.Binary));
  EXPECT_EQ(S.processBatch(frameRequest("a2", A.Prog, A.Prof)),
            okResponse("a2", A.Report, A.Binary));
  EXPECT_EQ(S.processBatch(frameRequest("b2", B.Prog, B.Prof)),
            okResponse("b2", B.Report, B.Binary));
  EXPECT_EQ(S.cache().stats().Hits, 2u);
  EXPECT_EQ(S.cache().stats().Misses, 2u);
  EXPECT_GT(S.cache().stats().Collisions, 0u);
}

TEST(Serve, ResponsesAreDeterministicForAnyJobCount) {
  Job A = makeJob(makeMcf());
  Job B = makeJob(makeEm3d());
  Job C = makeJob(makeHealth());
  // One session mixing misses, a batch-duplicate, an option variant, a
  // mid-session flush, and post-flush hits.
  std::string Session;
  Session += frameRequest("m1", A.Prog, A.Prof);
  Session += frameRequest("m2", B.Prog, B.Prof);
  Session += frameRequest("dup", A.Prog, A.Prof);
  Session += frameRequest("opt", A.Prog, A.Prof, {"max-loads=1"});
  Session += "flush\n";
  Session += frameRequest("h1", A.Prog, A.Prof);
  Session += frameRequest("m3", C.Prog, C.Prof);

  std::string Expected;
  for (unsigned Jobs : {1u, 4u, 8u}) {
    SCOPED_TRACE(Jobs);
    ServeOptions O;
    O.Jobs = Jobs;
    AdaptService S(O);
    std::string Out = S.processBatch(Session);
    if (Expected.empty())
      Expected = Out;
    EXPECT_EQ(Out, Expected);
    EXPECT_EQ(S.cache().stats().Hits, 1u);   // h1 only.
    EXPECT_EQ(S.cache().stats().Misses, 5u); // m1 m2 dup opt m3.
    EXPECT_EQ(S.cache().size(), 4u);         // dup shares m1's entry.
  }
  // The duplicate's payload equals the first miss's payload.
  EXPECT_NE(Expected.find(okResponse("dup", A.Report, A.Binary)),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Hardening: malformed input yields located error responses, and the
// service keeps answering afterwards.
//===----------------------------------------------------------------------===//

void expectErrorResponse(const std::string &Out, const std::string &Id,
                         const std::string &MsgSubstring) {
  EXPECT_NE(Out.find("response " + Id + " error\n"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find(MsgSubstring), std::string::npos) << Out;
}

TEST(Serve, MalformedFramingIsRejectedWithLocatedErrors) {
  Job J = makeJob(makeTreeaddDF());
  AdaptService S(ServeOptions{});
  struct Case {
    const char *Name;
    std::string Session;
    const char *Id;
    const char *Msg;
    bool Located = true; ///< Framing errors carry a "line N:" location.
  };
  const Case Cases[] = {
      {"junk top-level line", "hello world\n", "?",
       "expected 'request' or 'flush'"},
      {"request without id", "request\nend\n", "?",
       "'request' needs a single id token"},
      {"bad payload length", "request x\nprogram abc\nend\n", "x",
       "bad payload length"},
      {"truncated payload", "request x\nprogram 4096\nshort", "x",
       "truncated payload (got 5 of 4096 bytes)"},
      {"unknown section",
       "request x\nbogus section\nend\n", "x",
       "expected 'program', 'profile', 'option', or 'end'"},
      {"eof inside request", "request x\nprogram 3\nabc\n", "x",
       "unexpected end of input"},
      {"malformed option", "request x\noption cutoff\nend\n", "x",
       "malformed option (want KEY=VALUE)"},
      {"missing program", "request x\nend\n", "x",
       "missing program section", false},
      {"missing profile",
       "request x\nprogram " + std::to_string(J.Prog.size()) + "\n" +
           J.Prog + "\nend\n",
       "x", "missing profile section", false},
      {"duplicate section",
       "request x\nprogram 3\nabc\nprogram 3\nabc\nend\n", "x",
       "duplicate 'program' section"},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Name);
    std::string Out = S.processBatch(C.Session);
    expectErrorResponse(Out, C.Id, C.Msg);
    if (C.Located)
      EXPECT_NE(Out.find("line "), std::string::npos) << Out;
  }
  // The service is still alive and fully functional.
  EXPECT_EQ(S.processBatch(frameRequest("ok", J.Prog, J.Prof)),
            okResponse("ok", J.Report, J.Binary));
}

TEST(Serve, BadRequestContentIsRejectedWithoutKillingTheBatch) {
  Job J = makeJob(makeTreeaddDF());
  Job Other = makeJob(makeEm3d());
  AdaptService S(ServeOptions{});
  struct Case {
    const char *Name;
    std::string Session;
    const char *Msg;
  };
  const Case Cases[] = {
      {"unparsable program",
       frameRequest("x", "garbage program text\n", J.Prof), "program: "},
      {"unparsable profile",
       frameRequest("x", J.Prog, "garbage profile text\n"),
       "profile: line 1"},
      {"profile/program mismatch",
       frameRequest("x", J.Prog, Other.Prof), "does not match program"},
      {"unknown option", frameRequest("x", J.Prog, J.Prof, {"bogus=1"}),
       "option bogus: unknown option"},
      {"out-of-range option",
       frameRequest("x", J.Prog, J.Prof, {"cutoff=2"}),
       "option cutoff: expected a fraction in [0, 1]"},
      {"bad option value",
       frameRequest("x", J.Prog, J.Prof, {"max-loads=many"}),
       "option max-loads: expected an integer in [1, 4096]"},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Name);
    // The bad request rides in one batch with a good one; only the bad
    // one errors.
    std::string Out = S.processBatch(
        C.Session + frameRequest("good", Other.Prog, Other.Prof));
    expectErrorResponse(Out, "x", C.Msg);
    EXPECT_NE(Out.find(okResponse("good", Other.Report, Other.Binary)),
              std::string::npos);
  }
}

TEST(Serve, ResyncAfterFramingErrorAnswersNextRequest) {
  Job J = makeJob(makeTreeaddDF());
  AdaptService S(ServeOptions{});
  std::string Session = "request bad\nwat is this\nstray line\nend\n" +
                        frameRequest("after", J.Prog, J.Prof);
  std::string Out = S.processBatch(Session);
  expectErrorResponse(Out, "bad", "expected 'program'");
  EXPECT_NE(Out.find(okResponse("after", J.Report, J.Binary)),
            std::string::npos);
}

TEST(Serve, ErrorStateDoesNotPoisonWarmOrCacheState) {
  Job J = makeJob(makeMcf());
  AdaptService S(ServeOptions{});
  // A profile that parses but fails cross-validation leaves a sticky
  // warm-entry error; the same program with the right profile must still
  // be served from a fresh warm entry.
  Job Other = makeJob(makeEm3d());
  std::string Bad =
      S.processBatch(frameRequest("x", J.Prog, Other.Prof));
  expectErrorResponse(Bad, "x", "does not match program");
  EXPECT_EQ(S.processBatch(frameRequest("y", J.Prog, J.Prof)),
            okResponse("y", J.Report, J.Binary));
  // And the failed request was not cached as a success.
  EXPECT_EQ(S.cache().size(), 1u);
}

} // namespace
