//===- tests/codegen_test.cpp - Unit tests for the binary rewriter --------===//

#include "codegen/SSPCodeGen.h"
#include "core/PostPassTool.h"
#include "ir/Verifier.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace ssp;
using namespace ssp::ir;
using namespace ssp::codegen;

namespace {

/// Adapts the arc kernel and returns (original, enhanced, report).
struct Adapted {
  Program Orig;
  Program Enhanced;
  core::AdaptationReport Report;
};

Adapted adaptArcKernel() {
  workloads::Workload W = workloads::makeArcKernel(128, 1 << 12);
  Adapted A{W.Build(), Program(), {}};
  profile::ProfileData PD = core::profileProgram(A.Orig, W.BuildMemory);
  core::PostPassTool Tool(A.Orig, PD);
  A.Enhanced = Tool.adapt(&A.Report);
  return A;
}

} // namespace

TEST(CodeGen, PreservesOriginalStaticIds) {
  Adapted A = adaptArcKernel();
  // Every original (func, id) pair must still exist with the same opcode.
  auto Index = profile::buildStaticIdIndex(A.Enhanced);
  for (uint32_t FI = 0; FI < A.Orig.numFuncs(); ++FI) {
    const Function &F = A.Orig.func(FI);
    for (const BasicBlock &BB : F.blocks())
      for (const Instruction &I : BB.Insts) {
        auto It = Index.find(makeStaticId(FI, I.Id));
        ASSERT_NE(It, Index.end());
        EXPECT_EQ(It->second.get(A.Enhanced).Op, I.Op);
      }
  }
}

TEST(CodeGen, AttachmentsFollowFunctionBody) {
  Adapted A = adaptArcKernel();
  // Figure 7 layout: body blocks first, then stub/slice attachments.
  for (uint32_t FI = 0; FI < A.Enhanced.numFuncs(); ++FI) {
    bool SeenAttachment = false;
    for (const BasicBlock &BB : A.Enhanced.func(FI).blocks()) {
      if (BB.isAttachment())
        SeenAttachment = true;
      else
        EXPECT_FALSE(SeenAttachment);
    }
  }
}

TEST(CodeGen, StubCopiesLiveInsAndReturns) {
  Adapted A = adaptArcKernel();
  bool FoundStub = false;
  for (uint32_t FI = 0; FI < A.Enhanced.numFuncs(); ++FI) {
    for (const BasicBlock &BB : A.Enhanced.func(FI).blocks()) {
      if (BB.Kind != BlockKind::Stub)
        continue;
      FoundStub = true;
      EXPECT_EQ(BB.Insts.back().Op, Opcode::Rfi);
      bool HasCopy = false, HasSpawn = false;
      for (const Instruction &I : BB.Insts) {
        HasCopy |= I.Op == Opcode::CopyToLIB || I.Op == Opcode::CopyToLIBI;
        HasSpawn |= I.Op == Opcode::Spawn;
      }
      EXPECT_TRUE(HasCopy);
      EXPECT_TRUE(HasSpawn);
    }
  }
  EXPECT_TRUE(FoundStub);
}

TEST(CodeGen, SliceBlocksPrefetchTargets) {
  Adapted A = adaptArcKernel();
  unsigned Prefetches = 0, Kills = 0;
  for (uint32_t FI = 0; FI < A.Enhanced.numFuncs(); ++FI) {
    for (const BasicBlock &BB : A.Enhanced.func(FI).blocks()) {
      if (BB.Kind != BlockKind::Slice)
        continue;
      for (const Instruction &I : BB.Insts) {
        Prefetches += I.Op == Opcode::Prefetch;
        Kills += I.Op == Opcode::KillThread;
      }
    }
  }
  EXPECT_GT(Prefetches, 0u);
  EXPECT_GT(Kills, 0u);
}

TEST(CodeGen, ChkCTargetsStubs) {
  Adapted A = adaptArcKernel();
  unsigned Triggers = 0;
  for (uint32_t FI = 0; FI < A.Enhanced.numFuncs(); ++FI) {
    const Function &F = A.Enhanced.func(FI);
    for (const BasicBlock &BB : F.blocks())
      for (const Instruction &I : BB.Insts) {
        if (I.Op != Opcode::ChkC)
          continue;
        ++Triggers;
        EXPECT_EQ(F.block(I.Target).Kind, BlockKind::Stub);
      }
  }
  EXPECT_EQ(Triggers, A.Report.Rewrite.TriggersInserted);
  EXPECT_GT(Triggers, 0u);
}

TEST(CodeGen, EmptyAdaptationIsIdentityModuloClone) {
  Program P = workloads::makeArcKernel(64, 1 << 10).Build();
  RewriteInfo Info;
  Program Copy = rewriteWithSlices(P, {}, &Info);
  EXPECT_EQ(Info.TriggersInserted, 0u);
  EXPECT_EQ(Copy.numInsts(), P.numInsts());
  EXPECT_EQ(Copy.str(), P.str());
}

TEST(CodeGen, RewriteOutputAlwaysVerifies) {
  for (const workloads::Workload &W : workloads::paperSuite()) {
    Program Orig = W.Build();
    profile::ProfileData PD = core::profileProgram(Orig, W.BuildMemory);
    core::PostPassTool Tool(Orig, PD);
    Program Enhanced = Tool.adapt();
    std::vector<std::string> Diags = ir::verify(Enhanced);
    EXPECT_TRUE(Diags.empty())
        << W.Name << ": " << (Diags.empty() ? "" : Diags.front());
  }
}

TEST(CodeGen, InnerUnrollReplicatesInnerLoopMembers) {
  // mst's chain walks its collision chain InnerUnroll times.
  workloads::Workload W = workloads::makeMst();
  Program Orig = W.Build();
  profile::ProfileData PD = core::profileProgram(Orig, W.BuildMemory);

  auto CountSliceLoads = [&](unsigned Unroll) {
    core::ToolOptions Opts;
    Opts.InnerUnroll = Unroll;
    core::PostPassTool Tool(Orig, PD, Opts);
    Program E = Tool.adapt();
    unsigned Loads = 0;
    for (uint32_t FI = 0; FI < E.numFuncs(); ++FI)
      for (const BasicBlock &BB : E.func(FI).blocks())
        if (BB.Kind == BlockKind::Slice)
          for (const Instruction &I : BB.Insts)
            Loads += isLoad(I.Op);
    return Loads;
  };
  EXPECT_GT(CountSliceLoads(3), CountSliceLoads(1));
}
