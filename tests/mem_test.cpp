//===- tests/mem_test.cpp - Unit tests for SimMemory ----------------------===//

#include "mem/SimMemory.h"

#include <gtest/gtest.h>

using namespace ssp::mem;

TEST(SimMemory, ReadBackWrittenValue) {
  SimMemory M;
  M.write(0x1000, 0xDEADBEEFULL);
  EXPECT_EQ(M.read(0x1000), 0xDEADBEEFULL);
}

TEST(SimMemory, DistinctWordsIndependent) {
  SimMemory M;
  M.write(0x1000, 1);
  M.write(0x1008, 2);
  EXPECT_EQ(M.read(0x1000), 1u);
  EXPECT_EQ(M.read(0x1008), 2u);
}

TEST(SimMemory, SparsePagesFarApart) {
  SimMemory M;
  M.write(0x10000, 7);
  M.write(0x7FFFFFFF0000ULL, 9);
  EXPECT_EQ(M.read(0x10000), 7u);
  EXPECT_EQ(M.read(0x7FFFFFFF0000ULL), 9u);
  EXPECT_EQ(M.numPages(), 2u);
}

TEST(SimMemory, ReadMaybeUnmappedReturnsZero) {
  SimMemory M;
  bool Mapped = true;
  EXPECT_EQ(M.readMaybe(0x123450, Mapped), 0u);
  EXPECT_FALSE(Mapped);
}

TEST(SimMemory, ReadMaybeUnalignedIsWild) {
  SimMemory M;
  M.write(0x1000, 42);
  bool Mapped = true;
  EXPECT_EQ(M.readMaybe(0x1003, Mapped), 0u);
  EXPECT_FALSE(Mapped);
}

TEST(SimMemory, ReadMaybeMappedReturnsValue) {
  SimMemory M;
  M.write(0x2000, 55);
  bool Mapped = false;
  EXPECT_EQ(M.readMaybe(0x2000, Mapped), 55u);
  EXPECT_TRUE(Mapped);
}

TEST(SimMemory, ZeroFilledPages) {
  SimMemory M;
  M.write(0x3000, 1);
  // Same page, untouched word.
  EXPECT_EQ(M.read(0x3008), 0u);
}

TEST(BumpAllocator, AlignedDisjointAllocations) {
  SimMemory M;
  BumpAllocator A(M, 0x10000);
  uint64_t P1 = A.alloc(24);
  uint64_t P2 = A.alloc(3); // Rounds up to 8.
  uint64_t P3 = A.alloc(8);
  EXPECT_EQ(P1 % 8, 0u);
  EXPECT_EQ(P2, P1 + 24);
  EXPECT_EQ(P3, P2 + 8);
}

TEST(BumpAllocator, AllocationsAreMappedAndZeroed) {
  SimMemory M;
  BumpAllocator A(M);
  uint64_t P = A.alloc(64);
  for (uint64_t Off = 0; Off < 64; Off += 8) {
    EXPECT_TRUE(M.isMapped(P + Off));
    EXPECT_EQ(M.read(P + Off), 0u);
  }
}

TEST(BumpAllocator, AlignToSkipsForward) {
  SimMemory M;
  BumpAllocator A(M, 0x10000);
  A.alloc(8);
  A.alignTo(256);
  uint64_t P = A.alloc(8);
  EXPECT_EQ(P % 256, 0u);
}
