//===- tests/executor_test.cpp - Functional executor semantics ------------===//
//
// Direct semantics tests for every opcode: each test builds a tiny
// program, steps the functional executor, and checks architectural state
// and the reported control/memory effects.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "sim/Executor.h"

#include <bit>
#include <gtest/gtest.h>

using namespace ssp;
using namespace ssp::ir;
using namespace ssp::sim;

namespace {

/// Harness: a single-block program stepped instruction by instruction.
struct ExecHarness {
  Program P;
  IRBuilder B{P};
  ThreadContext Ctx;
  mem::SimMemory Mem;

  ExecHarness() {
    B.createFunction("t");
    B.createBlock("b");
  }

  /// Finalizes (appends halt), links, and executes \p Steps instructions.
  ExecOutcome run(unsigned Steps, bool Speculative = false,
                  bool FreeCtx = true) {
    B.halt();
    Linked = std::make_unique<LinkedProgram>(LinkedProgram::link(P));
    ExecOutcome Out;
    for (unsigned I = 0; I < Steps; ++I)
      executeStep(Ctx, *Linked, Mem, Speculative, FreeCtx, Out);
    return Out;
  }

  std::unique_ptr<LinkedProgram> Linked;
};

uint64_t bits(double D) { return std::bit_cast<uint64_t>(D); }
double dbl(uint64_t U) { return std::bit_cast<double>(U); }

} // namespace

TEST(Executor, IntegerALU) {
  ExecHarness H;
  H.B.movI(ireg(1), 7);
  H.B.movI(ireg(2), 3);
  H.B.add(ireg(3), ireg(1), ireg(2));
  H.B.sub(ireg(4), ireg(1), ireg(2));
  H.B.mul(ireg(5), ireg(1), ireg(2));
  H.B.and_(ireg(6), ireg(1), ireg(2));
  H.B.or_(ireg(7), ireg(1), ireg(2));
  H.B.xor_(ireg(8), ireg(1), ireg(2));
  H.B.shl(ireg(9), ireg(1), ireg(2));
  H.B.shr(ireg(10), ireg(1), ireg(2));
  H.run(10);
  EXPECT_EQ(H.Ctx.readInt(3), 10u);
  EXPECT_EQ(H.Ctx.readInt(4), 4u);
  EXPECT_EQ(H.Ctx.readInt(5), 21u);
  EXPECT_EQ(H.Ctx.readInt(6), 3u);
  EXPECT_EQ(H.Ctx.readInt(7), 7u);
  EXPECT_EQ(H.Ctx.readInt(8), 4u);
  EXPECT_EQ(H.Ctx.readInt(9), 56u);
  EXPECT_EQ(H.Ctx.readInt(10), 0u);
}

TEST(Executor, ImmediateALUAndWraparound) {
  ExecHarness H;
  H.B.movI(ireg(1), -1); // All ones.
  H.B.addI(ireg(2), ireg(1), 2);
  H.B.mulI(ireg(3), ireg(1), 3);
  H.B.shlI(ireg(4), ireg(1), 60);
  H.B.andI(ireg(5), ireg(1), 0xFF);
  H.B.orI(ireg(6), ireg(0), 0x10);
  H.run(6);
  EXPECT_EQ(H.Ctx.readInt(2), 1u); // Wraps.
  EXPECT_EQ(H.Ctx.readInt(3), static_cast<uint64_t>(-3));
  EXPECT_EQ(H.Ctx.readInt(4), 0xF000000000000000ull);
  EXPECT_EQ(H.Ctx.readInt(5), 0xFFu);
  EXPECT_EQ(H.Ctx.readInt(6), 0x10u);
}

TEST(Executor, HardwiredRegisters) {
  ExecHarness H;
  H.B.addI(ireg(1), ireg(0), 5); // r0 reads as 0.
  H.run(1);
  EXPECT_EQ(H.Ctx.readInt(1), 5u);
  EXPECT_TRUE(H.Ctx.readPred(0)); // p0 reads as true.
}

TEST(Executor, CompareConditions) {
  ExecHarness H;
  H.B.movI(ireg(1), 5);
  H.B.movI(ireg(2), 9);
  H.B.cmp(CondCode::LT, preg(1), ireg(1), ireg(2));
  H.B.cmp(CondCode::GT, preg(2), ireg(1), ireg(2));
  H.B.cmpI(CondCode::EQ, preg(3), ireg(1), 5);
  H.B.cmpI(CondCode::NE, preg(4), ireg(1), 5);
  H.B.cmpI(CondCode::LE, preg(5), ireg(1), 5);
  H.B.cmpI(CondCode::GE, preg(6), ireg(1), 6);
  H.run(8);
  EXPECT_TRUE(H.Ctx.readPred(1));
  EXPECT_FALSE(H.Ctx.readPred(2));
  EXPECT_TRUE(H.Ctx.readPred(3));
  EXPECT_FALSE(H.Ctx.readPred(4));
  EXPECT_TRUE(H.Ctx.readPred(5));
  EXPECT_FALSE(H.Ctx.readPred(6));
}

TEST(Executor, SignedCompare) {
  ExecHarness H;
  H.B.movI(ireg(1), -2);
  H.B.cmpI(CondCode::LT, preg(1), ireg(1), 0);
  H.run(2);
  EXPECT_TRUE(H.Ctx.readPred(1)) << "compares are signed";
}

TEST(Executor, FloatingPoint) {
  ExecHarness H;
  H.B.movI(ireg(1), 3);
  H.B.xtof(freg(1), ireg(1));
  H.B.movI(ireg(2), 4);
  H.B.xtof(freg(2), ireg(2));
  H.B.fadd(freg(3), freg(1), freg(2));
  H.B.fsub(freg(4), freg(1), freg(2));
  H.B.fmul(freg(5), freg(1), freg(2));
  H.B.ftox(ireg(3), freg(5));
  H.run(8);
  EXPECT_EQ(dbl(H.Ctx.readFP(3)), 7.0);
  EXPECT_EQ(dbl(H.Ctx.readFP(4)), -1.0);
  EXPECT_EQ(dbl(H.Ctx.readFP(5)), 12.0);
  EXPECT_EQ(H.Ctx.readInt(3), 12u);
}

TEST(Executor, LoadStoreRoundTrip) {
  ExecHarness H;
  H.Mem.write(0x2000, 0);
  H.B.movI(ireg(1), 0x2000);
  H.B.movI(ireg(2), 77);
  H.B.store(ireg(1), 0, ireg(2));
  H.B.load(ireg(3), ireg(1), 0);
  ExecOutcome Out = H.run(4);
  EXPECT_EQ(H.Ctx.readInt(3), 77u);
  EXPECT_TRUE(Out.IsMem);
  EXPECT_TRUE(Out.IsLoad);
  EXPECT_EQ(Out.MemAddr, 0x2000u);
}

TEST(Executor, LoadFStoresBits) {
  ExecHarness H;
  H.Mem.write(0x2000, bits(2.5));
  H.B.movI(ireg(1), 0x2000);
  H.B.loadF(freg(1), ireg(1), 0);
  H.B.storeF(ireg(1), 8, freg(1));
  H.run(3);
  EXPECT_EQ(dbl(H.Ctx.readFP(1)), 2.5);
  EXPECT_EQ(H.Mem.read(0x2008), bits(2.5));
}

TEST(Executor, PrefetchHasNoArchitecturalEffect) {
  ExecHarness H;
  H.Mem.write(0x2000, 42);
  H.B.movI(ireg(1), 0x2000);
  H.B.prefetch(ireg(1), 0);
  ExecOutcome Out = H.run(2);
  EXPECT_TRUE(Out.IsMem);
  EXPECT_FALSE(Out.IsLoad);
  EXPECT_EQ(H.Mem.read(0x2000), 42u);
}

TEST(Executor, SpeculativeWildLoadReturnsZero) {
  ExecHarness H;
  H.B.movI(ireg(1), 0x123458);
  H.B.load(ireg(2), ireg(1), 0); // Unmapped.
  ExecOutcome Out = H.run(2, /*Speculative=*/true);
  EXPECT_TRUE(Out.WildLoad);
  EXPECT_EQ(H.Ctx.readInt(2), 0u);
}

TEST(Executor, BranchTakenAndNot) {
  // bb0: p1 = (1 < 2); br p1 -> bb1 ... bb1: halt
  Program P;
  IRBuilder B(P);
  B.createFunction("t");
  uint32_t B0 = B.createBlock("b0");
  uint32_t B1 = B.createBlock("b1");
  B.setInsertPoint(B0);
  B.movI(ireg(1), 1);
  B.cmpI(CondCode::LT, preg(1), ireg(1), 2);
  B.br(preg(1), B1);
  B.setInsertPoint(B1);
  B.halt();
  P.setEntry(0);
  LinkedProgram LP = LinkedProgram::link(P);
  ThreadContext Ctx;
  mem::SimMemory Mem;
  ExecOutcome Out;
  executeStep(Ctx, LP, Mem, false, true, Out);
  executeStep(Ctx, LP, Mem, false, true, Out);
  executeStep(Ctx, LP, Mem, false, true, Out);
  EXPECT_EQ(Out.Kind, CtrlKind::Branch);
  EXPECT_TRUE(Out.Taken);
  EXPECT_EQ(Ctx.PC, LP.blockStart(0, B1));
}

TEST(Executor, CallAndReturn) {
  Program P;
  IRBuilder B(P);
  B.createFunction("main");
  B.createBlock("e");
  B.call(1);
  B.movI(ireg(5), 99); // Return lands here.
  B.halt();
  B.createFunction("leaf");
  B.createBlock("e");
  B.movI(ireg(4), 7);
  B.ret();
  P.setEntry(0);
  LinkedProgram LP = LinkedProgram::link(P);
  ThreadContext Ctx;
  mem::SimMemory Mem;
  ExecOutcome Out;
  executeStep(Ctx, LP, Mem, false, true, Out); // call
  EXPECT_EQ(Out.Kind, CtrlKind::DirectJump);
  EXPECT_EQ(Ctx.PC, LP.funcEntry(1));
  EXPECT_EQ(Ctx.CallStack.size(), 1u);
  executeStep(Ctx, LP, Mem, false, true, Out); // movI in leaf
  executeStep(Ctx, LP, Mem, false, true, Out); // ret
  EXPECT_EQ(Out.Kind, CtrlKind::IndirectJump);
  EXPECT_TRUE(Ctx.CallStack.empty());
  executeStep(Ctx, LP, Mem, false, true, Out); // movI r5
  EXPECT_EQ(Ctx.readInt(5), 99u);
  EXPECT_EQ(Ctx.readInt(4), 7u);
}

TEST(Executor, IndirectCallUsesRegister) {
  Program P;
  IRBuilder B(P);
  B.createFunction("main");
  B.createBlock("e");
  B.movI(ireg(1), 1);
  B.callInd(ireg(1));
  B.halt();
  B.createFunction("target");
  B.createBlock("e");
  B.ret();
  P.setEntry(0);
  LinkedProgram LP = LinkedProgram::link(P);
  ThreadContext Ctx;
  mem::SimMemory Mem;
  ExecOutcome Out;
  executeStep(Ctx, LP, Mem, false, true, Out);
  executeStep(Ctx, LP, Mem, false, true, Out);
  EXPECT_EQ(Ctx.PC, LP.funcEntry(1));
}

TEST(Executor, ChkCFiresOnlyWithFreeContext) {
  Program P;
  IRBuilder B(P);
  B.createFunction("main");
  B.createBlock("e");
  B.chkC(1);
  B.halt();
  B.createBlock("stub", BlockKind::Stub);
  B.rfi();
  P.setEntry(0);
  LinkedProgram LP = LinkedProgram::link(P);
  mem::SimMemory Mem;
  ExecOutcome Out;

  ThreadContext Fired;
  executeStep(Fired, LP, Mem, false, /*FreeContextAvailable=*/true, Out);
  EXPECT_EQ(Out.Kind, CtrlKind::ChkCFired);
  EXPECT_EQ(Fired.PC, LP.blockStart(0, 1));
  ASSERT_EQ(Fired.ResumeStack.size(), 1u);

  // rfi returns to the instruction after the chk.c.
  executeStep(Fired, LP, Mem, false, true, Out);
  EXPECT_EQ(Out.Kind, CtrlKind::RfiReturn);
  EXPECT_EQ(Fired.PC, 1u);
  EXPECT_TRUE(Fired.ResumeStack.empty());

  ThreadContext Nop;
  executeStep(Nop, LP, Mem, false, /*FreeContextAvailable=*/false, Out);
  EXPECT_EQ(Out.Kind, CtrlKind::ChkCNop);
  EXPECT_EQ(Nop.PC, 1u);
}

TEST(Executor, LIBStageAndSpawnSnapshot) {
  ExecHarness H;
  H.B.movI(ireg(1), 1111);
  H.B.copyToLIB(0, ireg(1));
  H.B.copyToLIBI(1, 2222);
  H.run(3);
  EXPECT_EQ(H.Ctx.LIBStage[0], 1111u);
  EXPECT_EQ(H.Ctx.LIBStage[1], 2222u);
}

TEST(Executor, SpawnCapturesStagedFrame) {
  Program P;
  IRBuilder B(P);
  B.createFunction("main");
  B.createBlock("e");
  B.movI(ireg(1), 5);
  B.copyToLIB(0, ireg(1));
  B.spawn(1);
  B.movI(ireg(1), 6); // After the snapshot.
  B.halt();
  B.createBlock("sl", BlockKind::Slice);
  B.killThread();
  P.setEntry(0);
  LinkedProgram LP = LinkedProgram::link(P);
  ThreadContext Ctx;
  mem::SimMemory Mem;
  ExecOutcome Out;
  executeStep(Ctx, LP, Mem, false, true, Out);
  executeStep(Ctx, LP, Mem, false, true, Out);
  executeStep(Ctx, LP, Mem, false, true, Out); // spawn
  EXPECT_EQ(Out.Kind, CtrlKind::SpawnPoint);
  EXPECT_TRUE(Out.HasSpawn);
  EXPECT_EQ(Out.SpawnFrame[0], 5u);
  EXPECT_EQ(Out.SpawnTargetAddr, LP.blockStart(0, 1));
}

TEST(Executor, CopyFromLIBReadsIncomingFrame) {
  ExecHarness H;
  H.Ctx.LIBIn[3] = 4242;
  H.B.copyFromLIB(ireg(9), 3);
  H.run(1);
  EXPECT_EQ(H.Ctx.readInt(9), 4242u);
}

TEST(Executor, HaltParksThePC) {
  ExecHarness H;
  ExecOutcome Out = H.run(1); // The appended halt.
  EXPECT_EQ(Out.Kind, CtrlKind::Halt);
  uint32_t PC = H.Ctx.PC;
  executeStep(H.Ctx, *H.Linked, H.Mem, false, true, Out);
  EXPECT_EQ(H.Ctx.PC, PC) << "halt must not advance";
}

TEST(Executor, KillParksSpeculativeThread) {
  Program P;
  IRBuilder B(P);
  B.createFunction("f");
  B.createBlock("e");
  B.halt();
  B.createBlock("sl", BlockKind::Slice);
  B.killThread();
  P.setEntry(0);
  LinkedProgram LP = LinkedProgram::link(P);
  ThreadContext Ctx;
  Ctx.PC = LP.blockStart(0, 1);
  mem::SimMemory Mem;
  ExecOutcome Out;
  executeStep(Ctx, LP, Mem, true, false, Out);
  EXPECT_EQ(Out.Kind, CtrlKind::Kill);
}
