//===- tests/trigger_test.cpp - Unit tests for trigger placement ----------===//

#include "analysis/RegionGraph.h"
#include "ir/IRBuilder.h"
#include "profile/Profile.h"
#include "sim/Simulator.h"
#include "sched/Scheduler.h"
#include "slicer/Slicer.h"
#include "trigger/MinCut.h"
#include "trigger/TriggerPlacer.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace ssp;
using namespace ssp::ir;
using namespace ssp::analysis;
using namespace ssp::trigger;

//===----------------------------------------------------------------------===//
// Max-flow / min-cut reference
//===----------------------------------------------------------------------===//

TEST(MinCut, SingleEdge) {
  std::vector<FlowEdge> E = {{0, 1, 7}};
  EXPECT_EQ(maxFlowMinCut(2, 0, 1, E), 7u);
}

TEST(MinCut, ParallelPathsSum) {
  // 0->1->3 (cap 5,4) and 0->2->3 (cap 3,9): flow = min(5,4)+min(3,9)=7.
  std::vector<FlowEdge> E = {{0, 1, 5}, {1, 3, 4}, {0, 2, 3}, {2, 3, 9}};
  EXPECT_EQ(maxFlowMinCut(4, 0, 3, E), 7u);
}

TEST(MinCut, BottleneckInMiddle) {
  std::vector<FlowEdge> E = {{0, 1, 100}, {1, 2, 1}, {2, 3, 100}};
  std::vector<size_t> Cut;
  EXPECT_EQ(maxFlowMinCut(4, 0, 3, E, &Cut), 1u);
  ASSERT_EQ(Cut.size(), 1u);
  EXPECT_EQ(Cut[0], 1u); // The 1-capacity edge.
}

TEST(MinCut, DisconnectedIsZero) {
  std::vector<FlowEdge> E = {{0, 1, 5}};
  EXPECT_EQ(maxFlowMinCut(3, 0, 2, E), 0u);
}

TEST(MinCut, ClassicCLRSExample) {
  // A 6-node network with known max flow 23.
  std::vector<FlowEdge> E = {{0, 1, 16}, {0, 2, 13}, {1, 2, 10}, {2, 1, 4},
                             {1, 3, 12}, {3, 2, 9},  {2, 4, 14}, {4, 3, 7},
                             {3, 5, 20}, {4, 5, 4}};
  EXPECT_EQ(maxFlowMinCut(6, 0, 5, E), 23u);
}

//===----------------------------------------------------------------------===//
// Cut-set checking
//===----------------------------------------------------------------------===//

namespace {

/// CFG: entry(0) -> {1,2} -> 3(header) loop -> 4 exit.
Program makeTwoEntryLoop() {
  Program P;
  IRBuilder B(P);
  B.createFunction("f");
  uint32_t B0 = B.createBlock("entry");
  uint32_t B1 = B.createBlock("left");
  uint32_t B2 = B.createBlock("right");
  uint32_t B3 = B.createBlock("header");
  uint32_t B4 = B.createBlock("exit");
  B.setInsertPoint(B0);
  B.movI(ireg(1), 0);
  B.cmpI(CondCode::EQ, preg(1), ireg(1), 1);
  B.br(preg(1), B2); // Falls to left.
  B.setInsertPoint(B1);
  B.movI(ireg(2), 1);
  B.jmp(B3);
  B.setInsertPoint(B2);
  B.movI(ireg(2), 2);
  B.jmp(B3);
  B.setInsertPoint(B3);
  B.addI(ireg(1), ireg(1), 1);
  B.cmpI(CondCode::LT, preg(2), ireg(1), 10);
  B.br(preg(2), B3);
  B.setInsertPoint(B4);
  B.ret();
  P.setEntry(0);
  return P;
}

} // namespace

TEST(TriggerPlacer, CutSetAcceptsBothEntryTriggers) {
  Program P = makeTwoEntryLoop();
  CFG G = CFG::build(P.func(0));
  std::vector<TriggerPlacement> Both = {{{0, 1, 0}}, {{0, 2, 0}}};
  EXPECT_TRUE(TriggerPlacer::isCutSet(G, Both, 3));
}

TEST(TriggerPlacer, CutSetRejectsMissingEntry) {
  Program P = makeTwoEntryLoop();
  CFG G = CFG::build(P.func(0));
  std::vector<TriggerPlacement> OnlyLeft = {{{0, 1, 0}}};
  EXPECT_FALSE(TriggerPlacer::isCutSet(G, OnlyLeft, 3))
      << "the right entry path reaches the loop untriggered";
}

TEST(TriggerPlacer, CutSetRejectsDoubleCrossing) {
  Program P = makeTwoEntryLoop();
  CFG G = CFG::build(P.func(0));
  // Entry + left: a path entry->left crosses two triggers.
  std::vector<TriggerPlacement> Doubled = {{{0, 0, 0}}, {{0, 1, 0}}};
  EXPECT_FALSE(TriggerPlacer::isCutSet(G, Doubled, 3));
}

TEST(TriggerPlacer, EntryBlockAloneIsACut) {
  Program P = makeTwoEntryLoop();
  CFG G = CFG::build(P.func(0));
  std::vector<TriggerPlacement> Entry = {{{0, 0, 0}}};
  EXPECT_TRUE(TriggerPlacer::isCutSet(G, Entry, 3));
}

//===----------------------------------------------------------------------===//
// Placement on real workloads
//===----------------------------------------------------------------------===//

namespace {

struct PlaceHarness {
  Program P;
  profile::ProfileData PD;
  ProgramDeps Deps;
  RegionGraph RG;
  CallGraph CG;

  explicit PlaceHarness(const workloads::Workload &W)
      : P(W.Build()), PD(profileIt(P, W)), Deps(P),
        RG(RegionGraph::build(Deps)),
        CG(CallGraph::build(P, PD.IndirectTargets, PD.CallSiteCounts)) {}

  static profile::ProfileData profileIt(const Program &P,
                                        const workloads::Workload &W) {
    LinkedProgram LP = LinkedProgram::link(P);
    mem::SimMemory Mem;
    W.BuildMemory(Mem);
    profile::ProfileData PD = profile::collectControlFlowProfile(LP, Mem);
    // Timing pass for the cache profile (delinquent-load selection).
    mem::SimMemory Mem2;
    W.BuildMemory(Mem2);
    sim::Simulator Sim(sim::MachineConfig::inOrder(), LP, Mem2);
    profile::addCacheProfile(PD, Sim.run());
    return PD;
  }
};

} // namespace

TEST(TriggerPlacer, ChainingTriggerHoistsOutOfLoop) {
  PlaceHarness H(workloads::makeArcKernel(64, 1 << 10));
  slicer::Slicer S(H.Deps, H.RG, H.CG, H.PD);
  InstRef Load{0, 1, 1};
  slicer::Slice Sl =
      S.computeSlice(Load, H.RG.innermostRegionOf(Load, H.Deps));
  ASSERT_TRUE(Sl.Valid);
  sched::SliceScheduler Sched(H.Deps, H.RG, H.PD);
  sched::ScheduledSlice SS = Sched.schedule(Sl, sched::SPModel::Chaining);
  TriggerPlacer Placer(H.Deps, H.RG, H.PD);
  TriggerPlan Plan = Placer.place(Sl, SS);

  ASSERT_EQ(Plan.Triggers.size(), 1u);
  // Outside the loop (the loop is block 1).
  EXPECT_NE(Plan.Triggers[0].Where.Block, 1u);
  EXPECT_FALSE(Plan.PerIteration);
  // Forms a cut over paths into the loop header.
  EXPECT_TRUE(TriggerPlacer::isCutSet(H.Deps.forFunction(0).cfg(),
                                      Plan.Triggers, 1));
  // A restart trigger sits at the header.
  ASSERT_EQ(Plan.RestartTriggers.size(), 1u);
  EXPECT_EQ(Plan.RestartTriggers[0].Where.Block, 1u);
}

TEST(TriggerPlacer, BasicModelTriggersPerIteration) {
  PlaceHarness H(workloads::makeArcKernel(64, 1 << 10));
  slicer::Slicer S(H.Deps, H.RG, H.CG, H.PD);
  InstRef Load{0, 1, 1};
  slicer::Slice Sl =
      S.computeSlice(Load, H.RG.innermostRegionOf(Load, H.Deps));
  sched::SliceScheduler Sched(H.Deps, H.RG, H.PD);
  sched::ScheduledSlice SS = Sched.schedule(Sl, sched::SPModel::Basic);
  TriggerPlacer Placer(H.Deps, H.RG, H.PD);
  TriggerPlan Plan = Placer.place(Sl, SS);
  EXPECT_TRUE(Plan.PerIteration);
  ASSERT_EQ(Plan.Triggers.size(), 1u);
  EXPECT_EQ(Plan.Triggers[0].Where.Block, 1u); // In the loop header.
}

TEST(TriggerPlacer, HeuristicMatchesMinCutOnSingleEntryLoop) {
  PlaceHarness H(workloads::makeArcKernel(64, 1 << 10));
  slicer::Slicer S(H.Deps, H.RG, H.CG, H.PD);
  InstRef Load{0, 1, 1};
  slicer::Slice Sl =
      S.computeSlice(Load, H.RG.innermostRegionOf(Load, H.Deps));
  sched::SliceScheduler Sched(H.Deps, H.RG, H.PD);
  sched::ScheduledSlice SS = Sched.schedule(Sl, sched::SPModel::Chaining);
  TriggerPlacer Placer(H.Deps, H.RG, H.PD);
  TriggerPlan Plan = Placer.place(Sl, SS);
  EXPECT_EQ(Plan.HeuristicCost, Placer.minCutCost(Sl));
}

TEST(TriggerPlacer, ProcedureRegionTriggerAfterLiveInStore) {
  // health: the visit prologue reads the spilled village pointer from the
  // stack; the trigger must be placed after the spilling store.
  PlaceHarness H(workloads::makeHealth());
  slicer::Slicer S(H.Deps, H.RG, H.CG, H.PD);
  std::vector<profile::DelinquentLoad> DL =
      profile::selectDelinquentLoads(H.P, H.PD);
  ASSERT_FALSE(DL.empty());
  int Proc = H.RG.procedureRegion(1);
  slicer::Slice Sl = S.computeSlice(DL.front().Ref, Proc);
  ASSERT_TRUE(Sl.Valid) << Sl.RejectReason;
  sched::SliceScheduler Sched(H.Deps, H.RG, H.PD);
  sched::ScheduledSlice SS = Sched.schedule(Sl, sched::SPModel::Chaining);
  TriggerPlacer Placer(H.Deps, H.RG, H.PD);
  TriggerPlan Plan = Placer.place(Sl, SS);
  ASSERT_EQ(Plan.Triggers.size(), 1u);
  EXPECT_EQ(Plan.Triggers[0].Where.Block, 0u);
  // Entry block: [0]=addI sp, [1]=store V -> trigger at index >= 2.
  EXPECT_GE(Plan.Triggers[0].Where.Inst, 2u);
}
