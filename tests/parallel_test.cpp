//===- tests/parallel_test.cpp - Parallel harness determinism --------------===//
//
// The parallel experiment engine's contract: ParallelSuiteRunner produces
// results bit-identical to the serial SuiteRunner for every thread count.
// Each simulation job owns its SimMemory / CacheHierarchy / BranchPredictor,
// so no schedule can perturb a single counter; these tests pin that down by
// comparing every SimStats field across --jobs 1, 2 and 8 on two workloads
// and both machine models.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace ssp;
using namespace ssp::harness;

namespace {

void expectStatsEqual(const sim::SimStats &A, const sim::SimStats &B,
                      const std::string &What) {
  SCOPED_TRACE(What);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.MainInsts, B.MainInsts);
  EXPECT_EQ(A.SpecInsts, B.SpecInsts);
  for (unsigned C = 0; C < sim::NumCycleCats; ++C)
    EXPECT_EQ(A.CatCycles[C], B.CatCycles[C]) << "category " << C;

  EXPECT_EQ(A.TriggersFired, B.TriggersFired);
  EXPECT_EQ(A.TriggersIgnored, B.TriggersIgnored);
  EXPECT_EQ(A.SpawnsSucceeded, B.SpawnsSucceeded);
  EXPECT_EQ(A.SpawnsDropped, B.SpawnsDropped);
  EXPECT_EQ(A.SpecWildLoads, B.SpecWildLoads);
  EXPECT_EQ(A.SpecPrefetches, B.SpecPrefetches);
  EXPECT_EQ(A.UsefulPrefetches, B.UsefulPrefetches);
  EXPECT_EQ(A.ThrottleEvents, B.ThrottleEvents);

  EXPECT_EQ(A.Branches, B.Branches);
  EXPECT_EQ(A.BranchMispredicts, B.BranchMispredicts);

  EXPECT_EQ(A.CacheTotals.Accesses, B.CacheTotals.Accesses);
  EXPECT_EQ(A.CacheTotals.FillBufferStallCycles,
            B.CacheTotals.FillBufferStallCycles);
  EXPECT_EQ(A.CacheTotals.TLBMisses, B.CacheTotals.TLBMisses);
  for (unsigned L = 0; L < 4; ++L) {
    EXPECT_EQ(A.CacheTotals.Hits[L], B.CacheTotals.Hits[L]) << "level " << L;
    EXPECT_EQ(A.CacheTotals.Partials[L], B.CacheTotals.Partials[L])
        << "level " << L;
  }

  // The per-load profile must match entry for entry, in insertion order
  // (the order loads first execute — a pure function of the program).
  ASSERT_EQ(A.LoadProfile.size(), B.LoadProfile.size());
  auto ItB = B.LoadProfile.begin();
  for (const auto &[Sid, SA] : A.LoadProfile) {
    EXPECT_EQ(Sid, ItB->first);
    const cache::PcCacheStats &SB = ItB->second;
    EXPECT_EQ(SA.Accesses, SB.Accesses);
    EXPECT_EQ(SA.MissCycles, SB.MissCycles);
    for (unsigned L = 0; L < 4; ++L) {
      EXPECT_EQ(SA.Hits[L], SB.Hits[L]);
      EXPECT_EQ(SA.Partials[L], SB.Partials[L]);
    }
    ++ItB;
  }
}

void expectResultsEqual(const BenchResult &A, const BenchResult &B) {
  expectStatsEqual(A.BaseIO, B.BaseIO, "BaseIO");
  expectStatsEqual(A.SspIO, B.SspIO, "SspIO");
  expectStatsEqual(A.BaseOOO, B.BaseOOO, "BaseOOO");
  expectStatsEqual(A.SspOOO, B.SspOOO, "SspOOO");
  EXPECT_EQ(A.ChecksumsOk, B.ChecksumsOk);
}

class ParallelDeterminism
    : public ::testing::TestWithParam<unsigned /*Jobs*/> {};

TEST_P(ParallelDeterminism, MatchesSerialRunner) {
  SuiteRunner Serial;
  ParallelSuiteRunner Parallel(core::ToolOptions(), GetParam());
  for (const workloads::Workload &W :
       {workloads::makeEm3d(), workloads::makeMst()}) {
    SCOPED_TRACE(W.Name);
    expectResultsEqual(Serial.run(W), Parallel.run(W));
  }
}

INSTANTIATE_TEST_SUITE_P(Jobs, ParallelDeterminism,
                         ::testing::Values(1u, 2u, 8u));

TEST(ParallelSuiteRunner, RunAllWarmsIdenticalResults) {
  SuiteRunner Serial;
  ParallelSuiteRunner Parallel(core::ToolOptions(), 4);
  std::vector<workloads::Workload> Ws = {workloads::makeEm3d(),
                                         workloads::makeMst()};
  Parallel.runAll(Ws);
  // run() after runAll must hit the cache (same reference twice) and the
  // warmed results must equal the serial ones.
  for (const workloads::Workload &W : Ws) {
    SCOPED_TRACE(W.Name);
    const BenchResult &R1 = Parallel.run(W);
    const BenchResult &R2 = Parallel.run(W);
    EXPECT_EQ(&R1, &R2);
    expectResultsEqual(Serial.run(W), R1);
  }
}

TEST(ParallelSuiteRunner, JobsOneIsInline) {
  ParallelSuiteRunner Runner(core::ToolOptions(), 1);
  EXPECT_EQ(Runner.pool().numThreads(), 1u);
  const BenchResult &R = Runner.run(workloads::makeEm3d());
  EXPECT_TRUE(R.ChecksumsOk);
  EXPECT_GT(R.BaseIO.Cycles, 0u);
}

} // namespace
