//===- tests/obs_test.cpp - Observability layer tests ---------------------===//
//
// The obs contract has two halves:
//
//  1. Zero overhead when off: a simulation without a TraceSink and an
//     adaptation without a Registry produce bit-identical results to runs
//     with them attached — observability may never perturb what it
//     observes. Pinned over the full paper suite on both pipelines, in
//     both skip modes, in the style of tests/skip_test.cpp.
//
//  2. Faithful when on: recorded event counts must reconcile with the
//     simulator's own counters, the em3d attribution rollup must cover
//     (well over) 90% of speculative accesses, and the ring buffers must
//     drop oldest-first with an exact dropped count.
//
//===----------------------------------------------------------------------===//

#include "core/PostPassTool.h"
#include "harness/Experiment.h"
#include "obs/Registry.h"
#include "obs/TraceSink.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ssp;
using namespace ssp::harness;

namespace {

/// Field-by-field SimStats comparison, including the attribution rollup.
/// Unlike skip_test's variant this one compares SkippedCycles/SkipEvents
/// too: both sides of every diff here run in the same skip mode, so even
/// the diagnostics must match.
void expectStatsIdentical(const sim::SimStats &A, const sim::SimStats &B,
                          const std::string &What) {
  SCOPED_TRACE(What);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.MainInsts, B.MainInsts);
  EXPECT_EQ(A.SpecInsts, B.SpecInsts);
  for (unsigned C = 0; C < sim::NumCycleCats; ++C)
    EXPECT_EQ(A.CatCycles[C], B.CatCycles[C]) << "category " << C;
  EXPECT_EQ(A.SkippedCycles, B.SkippedCycles);
  EXPECT_EQ(A.SkipEvents, B.SkipEvents);

  EXPECT_EQ(A.TriggersFired, B.TriggersFired);
  EXPECT_EQ(A.TriggersIgnored, B.TriggersIgnored);
  EXPECT_EQ(A.SpawnsSucceeded, B.SpawnsSucceeded);
  EXPECT_EQ(A.SpawnsDropped, B.SpawnsDropped);
  EXPECT_EQ(A.SpecWildLoads, B.SpecWildLoads);
  EXPECT_EQ(A.SpecPrefetches, B.SpecPrefetches);
  EXPECT_EQ(A.UsefulPrefetches, B.UsefulPrefetches);
  EXPECT_EQ(A.ThrottleEvents, B.ThrottleEvents);

  EXPECT_EQ(A.Branches, B.Branches);
  EXPECT_EQ(A.BranchMispredicts, B.BranchMispredicts);
  EXPECT_EQ(A.CacheTotals.Accesses, B.CacheTotals.Accesses);
  EXPECT_EQ(A.CacheTotals.TLBMisses, B.CacheTotals.TLBMisses);
  for (unsigned L = 0; L < 4; ++L) {
    EXPECT_EQ(A.CacheTotals.Hits[L], B.CacheTotals.Hits[L]) << "level " << L;
    EXPECT_EQ(A.CacheTotals.Partials[L], B.CacheTotals.Partials[L])
        << "level " << L;
  }

  ASSERT_EQ(A.LoadProfile.size(), B.LoadProfile.size());
  auto ItB = B.LoadProfile.begin();
  for (const auto &[Sid, SA] : A.LoadProfile) {
    EXPECT_EQ(Sid, ItB->first);
    EXPECT_EQ(SA.Accesses, ItB->second.Accesses);
    EXPECT_EQ(SA.MissCycles, ItB->second.MissCycles);
    ++ItB;
  }

  ASSERT_EQ(A.Attribution.size(), B.Attribution.size());
  for (size_t I = 0; I < A.Attribution.size(); ++I) {
    const sim::PrefetchAttribution &X = A.Attribution[I];
    const sim::PrefetchAttribution &Y = B.Attribution[I];
    EXPECT_EQ(X.Trigger, Y.Trigger);
    EXPECT_EQ(X.Slice, Y.Slice);
    EXPECT_EQ(X.Spawns, Y.Spawns);
    EXPECT_EQ(X.MaxChainDepth, Y.MaxChainDepth);
    for (unsigned F = 0; F < sim::NumPrefetchFates; ++F)
      EXPECT_EQ(X.Fates[F], Y.Fates[F])
          << sim::prefetchFateName(static_cast<sim::PrefetchFate>(F));
  }
}

/// Like SuiteRunner::simulate, with an optional trace sink attached.
sim::SimStats simulateTraced(const ir::Program &P,
                             const workloads::Workload &W,
                             sim::MachineConfig Cfg,
                             obs::TraceSink *Sink) {
  ir::LinkedProgram LP = ir::LinkedProgram::link(P);
  mem::SimMemory Mem;
  W.BuildMemory(Mem);
  sim::Simulator Sim(Cfg, LP, Mem);
  if (Sink)
    Sim.setTraceSink(Sink);
  return Sim.run();
}

SuiteRunner &runner() {
  static SuiteRunner R;
  return R;
}

ir::Program enhance(const workloads::Workload &W) {
  core::PostPassTool Tool(runner().originalOf(W), runner().profileOf(W),
                          runner().options());
  return Tool.adapt();
}

sim::MachineConfig cfgFor(sim::PipelineKind Pipe, bool SkipEnabled) {
  sim::MachineConfig Cfg = Pipe == sim::PipelineKind::InOrder
                               ? sim::MachineConfig::inOrder()
                               : sim::MachineConfig::outOfOrder();
  Cfg.SkipIdleCycles = SkipEnabled;
  return Cfg;
}

class TracingOverhead
    : public ::testing::TestWithParam<sim::PipelineKind> {};

// The zero-overhead pin (the PR's acceptance bar): attaching a TraceSink
// must not change a single SimStats field, for every paper workload's
// enhanced binary, in both skip modes.
TEST_P(TracingOverhead, SinkDoesNotPerturbStats) {
  for (const workloads::Workload &W : workloads::paperSuite()) {
    SCOPED_TRACE(W.Name);
    ir::Program Enhanced = enhance(W);
    for (bool Skip : {true, false}) {
      obs::TraceSink Sink;
      sim::SimStats Off =
          simulateTraced(Enhanced, W, cfgFor(GetParam(), Skip), nullptr);
      sim::SimStats On =
          simulateTraced(Enhanced, W, cfgFor(GetParam(), Skip), &Sink);
      expectStatsIdentical(Off, On,
                           W.Name + (Skip ? " skip" : " no-skip"));
      EXPECT_GT(Sink.recorded(), 0u) << W.Name;
    }
  }
}

// Recorded events must reconcile with the simulator's counters: one
// Trigger event per fired trigger, one Spawn per successful spawn, one
// IdleSpan per skip event (and none with skipping off), and Prefetch
// events exactly covering the line-moving speculative accesses.
TEST_P(TracingOverhead, EventCountsMatchCounters) {
  workloads::Workload W = workloads::makeEm3d();
  ir::Program Enhanced = enhance(W);
  for (bool Skip : {true, false}) {
    SCOPED_TRACE(Skip ? "skip" : "no-skip");
    // 2^20-entry rings so nothing drops and counts are exact.
    obs::TraceSink Sink(8, 20);
    sim::SimStats S =
        simulateTraced(Enhanced, W, cfgFor(GetParam(), Skip), &Sink);
    ASSERT_EQ(Sink.dropped(), 0u);
    std::vector<obs::TraceEvent> Events = Sink.drain();
    EXPECT_EQ(Events.size(), Sink.recorded());
    uint64_t Counts[obs::NumEventKinds] = {0, 0, 0, 0, 0};
    uint64_t IdleCycles = 0;
    for (const obs::TraceEvent &E : Events) {
      ++Counts[static_cast<unsigned>(E.Kind)];
      if (E.Kind == obs::EventKind::IdleSpan)
        IdleCycles += E.Dur;
      EXPECT_LE(E.Ts, S.Cycles);
    }
    EXPECT_EQ(Counts[static_cast<unsigned>(obs::EventKind::Trigger)],
              S.TriggersFired);
    EXPECT_EQ(Counts[static_cast<unsigned>(obs::EventKind::Spawn)],
              S.SpawnsSucceeded);
    EXPECT_EQ(Counts[static_cast<unsigned>(obs::EventKind::IdleSpan)],
              S.SkipEvents);
    EXPECT_EQ(IdleCycles, S.SkippedCycles);
    // Retire events are the tracked-line consumptions; every one carries
    // a fate the attribution rollup also counted.
    EXPECT_LE(Counts[static_cast<unsigned>(obs::EventKind::Retire)],
              Counts[static_cast<unsigned>(obs::EventKind::Prefetch)]);
    // The stream is drained in timestamp order.
    EXPECT_TRUE(std::is_sorted(
        Events.begin(), Events.end(),
        [](const obs::TraceEvent &A, const obs::TraceEvent &B) {
          return A.Ts < B.Ts;
        }));
  }
}

// The Figure-9-style attribution table: on em3d at least 90% of
// speculative accesses must resolve to a concrete (slice, trigger) origin
// (the acceptance threshold; the classifier actually attributes every
// access spawned through a chk.c trigger).
TEST_P(TracingOverhead, Em3dAttributionCoverage) {
  workloads::Workload W = workloads::makeEm3d();
  sim::SimStats S = simulateTraced(enhance(W), W,
                                   cfgFor(GetParam(), true), nullptr);
  ASSERT_GT(S.SpecPrefetches, 0u);
  uint64_t Attributed = S.attributedPrefetches();
  EXPECT_GE(Attributed * 10, S.SpecPrefetches * 9)
      << Attributed << " of " << S.SpecPrefetches << " attributed";
  uint64_t Useful = 0;
  for (const sim::PrefetchAttribution &A : S.Attribution)
    Useful += A.useful();
  EXPECT_EQ(Useful, S.UsefulPrefetches);
}

INSTANTIATE_TEST_SUITE_P(Pipelines, TracingOverhead,
                         ::testing::Values(sim::PipelineKind::InOrder,
                                           sim::PipelineKind::OutOfOrder),
                         [](const auto &Info) {
                           return Info.param == sim::PipelineKind::InOrder
                                      ? "InOrder"
                                      : "OutOfOrder";
                         });

// The tool-side zero-overhead pin: adapt() with a Registry attached emits
// the same binary and report as without, and the registry ends up with
// the per-stage timers and counters populated.
TEST(ToolMetrics, RegistryDoesNotPerturbAdaptation) {
  workloads::Workload W = workloads::makeEm3d();
  core::ToolOptions Base = runner().options();

  core::AdaptationReport RepOff, RepOn;
  core::PostPassTool Off(runner().originalOf(W), runner().profileOf(W),
                         Base);
  ir::Program POff = Off.adapt(&RepOff);

  obs::Registry Reg;
  core::ToolOptions WithMetrics = Base;
  WithMetrics.Metrics = &Reg;
  core::PostPassTool On(runner().originalOf(W), runner().profileOf(W),
                        WithMetrics);
  ir::Program POn = On.adapt(&RepOn);

  EXPECT_EQ(POff.str(), POn.str());
  EXPECT_EQ(RepOff.DelinquentLoads, RepOn.DelinquentLoads);
  EXPECT_EQ(RepOff.numSlices(), RepOn.numSlices());
  EXPECT_EQ(RepOff.Rewrite.TriggersInserted, RepOn.Rewrite.TriggersInserted);
  EXPECT_EQ(RepOff.VerifyErrors, RepOn.VerifyErrors);
  EXPECT_EQ(RepOff.VerifyWarnings, RepOn.VerifyWarnings);

  EXPECT_EQ(Reg.counter("adapt.runs"), 1u);
  EXPECT_EQ(Reg.counter("adapt.delinquent_loads"), RepOn.DelinquentLoads);
  EXPECT_EQ(Reg.counter("adapt.slices"), RepOn.numSlices());
  EXPECT_EQ(Reg.counter("adapt.triggers_inserted"),
            RepOn.Rewrite.TriggersInserted);
  // Six adapt stages plus one timer per verification pass.
  EXPECT_GE(Reg.numTimers(), 6u + 5u);
  EXPECT_GT(Reg.timeMs("adapt.candidates_ms"), 0.0);
}

TEST(Registry, CountersTimersAndJSON) {
  obs::Registry R;
  R.addCounter("a.b");
  R.addCounter("a.b", 2);
  R.setCounter("z", 7);
  R.addTimeMs("t1", 1.25);
  R.addTimeMs("t1", 0.75);
  EXPECT_EQ(R.counter("a.b"), 3u);
  EXPECT_EQ(R.counter("z"), 7u);
  EXPECT_EQ(R.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(R.timeMs("t1"), 2.0);
  EXPECT_EQ(R.numCounters(), 2u);
  EXPECT_EQ(R.numTimers(), 1u);
  std::string J = R.renderJSON();
  EXPECT_NE(J.find("\"a.b\": 3"), std::string::npos) << J;
  EXPECT_NE(J.find("\"z\": 7"), std::string::npos) << J;
  EXPECT_NE(J.find("\"t1\": 2.0000"), std::string::npos) << J;
  // Keys render escaped.
  obs::Registry E;
  E.addCounter("we\"ird\\key");
  EXPECT_NE(E.renderJSON().find("we\\\"ird\\\\key"), std::string::npos);
}

TEST(Registry, ScopedTimerNullRegistryIsNoOp) {
  { obs::ScopedTimerMs T(nullptr, "never"); }
  obs::Registry R;
  { obs::ScopedTimerMs T(&R, "scope_ms"); }
  EXPECT_EQ(R.numTimers(), 1u);
  EXPECT_GE(R.timeMs("scope_ms"), 0.0);
}

TEST(TraceSink, DropsOldestAndCountsExactly) {
  // 1 ring of 4 entries.
  obs::TraceSink Sink(1, 2);
  EXPECT_EQ(Sink.capacity(), 4u);
  for (uint64_t I = 0; I < 10; ++I)
    Sink.record(0, obs::EventKind::Trigger, /*Ts=*/I, 0, /*A=*/I, 0);
  EXPECT_EQ(Sink.recorded(), 10u);
  EXPECT_EQ(Sink.dropped(), 6u);
  std::vector<obs::TraceEvent> Events = Sink.drain();
  ASSERT_EQ(Events.size(), 4u);
  // The four newest survive, oldest-first.
  for (uint64_t I = 0; I < 4; ++I)
    EXPECT_EQ(Events[I].A, 6 + I);
}

TEST(TraceSink, OutOfRangeTidLandsInLastRing) {
  obs::TraceSink Sink(2, 2);
  Sink.record(99, obs::EventKind::Spawn, 5, 0, 1, 2, 3);
  Sink.record(1, obs::EventKind::Trigger, 4, 0, 7, 0);
  std::vector<obs::TraceEvent> Events = Sink.drain();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].Ts, 4u);
  EXPECT_EQ(Events[1].Tid, 99u);
  EXPECT_EQ(Events[1].Extra, 3u);
}

TEST(TraceSink, ChromeJSONIsWellFormedAndNamed) {
  obs::TraceSink Sink(1, 4);
  Sink.record(0, obs::EventKind::Trigger, 10, 0, 0x123, 0);
  Sink.record(2, obs::EventKind::IdleSpan, 20, 30, 1, 0);
  std::string J = Sink.renderChromeJSON();
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"trigger\""), std::string::npos);
  EXPECT_NE(J.find("\"idle\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(J.find("\"dur\": 30"), std::string::npos);
  EXPECT_NE(J.find("\"recorded\": 2"), std::string::npos);
  EXPECT_NE(J.find("\"dropped\": 0"), std::string::npos);
}

} // namespace
