//===- tests/skip_test.cpp - Idle-cycle skipping differential --------------===//
//
// The event-driven simulator's contract: SimStats are bit-identical with
// idle-cycle skipping enabled (the default) and disabled (--no-skip). The
// skip logic jumps over spans in which nothing fetches, issues, dispatches,
// completes or retires, bulk-accounting the Figure-10 classification for
// the span; these tests pin every counter — including CatCycles and the
// throttle counters — across both modes, for every registered workload on
// both machine models, in the style of tests/parallel_test.cpp.
//
// SkippedCycles / SkipEvents are simulator diagnostics that differ between
// the modes by design and are deliberately excluded from the comparison.
//
//===----------------------------------------------------------------------===//

#include "core/PostPassTool.h"
#include "harness/Experiment.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace ssp;
using namespace ssp::harness;

namespace {

void expectStatsEqual(const sim::SimStats &Skip, const sim::SimStats &NoSkip,
                      const std::string &What) {
  SCOPED_TRACE(What);
  EXPECT_EQ(Skip.Cycles, NoSkip.Cycles);
  EXPECT_EQ(Skip.MainInsts, NoSkip.MainInsts);
  EXPECT_EQ(Skip.SpecInsts, NoSkip.SpecInsts);
  for (unsigned C = 0; C < sim::NumCycleCats; ++C)
    EXPECT_EQ(Skip.CatCycles[C], NoSkip.CatCycles[C]) << "category " << C;

  EXPECT_EQ(Skip.TriggersFired, NoSkip.TriggersFired);
  EXPECT_EQ(Skip.TriggersIgnored, NoSkip.TriggersIgnored);
  EXPECT_EQ(Skip.SpawnsSucceeded, NoSkip.SpawnsSucceeded);
  EXPECT_EQ(Skip.SpawnsDropped, NoSkip.SpawnsDropped);
  EXPECT_EQ(Skip.SpecWildLoads, NoSkip.SpecWildLoads);
  EXPECT_EQ(Skip.SpecPrefetches, NoSkip.SpecPrefetches);
  EXPECT_EQ(Skip.UsefulPrefetches, NoSkip.UsefulPrefetches);
  EXPECT_EQ(Skip.ThrottleEvents, NoSkip.ThrottleEvents);

  EXPECT_EQ(Skip.Branches, NoSkip.Branches);
  EXPECT_EQ(Skip.BranchMispredicts, NoSkip.BranchMispredicts);

  EXPECT_EQ(Skip.CacheTotals.Accesses, NoSkip.CacheTotals.Accesses);
  EXPECT_EQ(Skip.CacheTotals.FillBufferStallCycles,
            NoSkip.CacheTotals.FillBufferStallCycles);
  EXPECT_EQ(Skip.CacheTotals.TLBMisses, NoSkip.CacheTotals.TLBMisses);
  for (unsigned L = 0; L < 4; ++L) {
    EXPECT_EQ(Skip.CacheTotals.Hits[L], NoSkip.CacheTotals.Hits[L])
        << "level " << L;
    EXPECT_EQ(Skip.CacheTotals.Partials[L], NoSkip.CacheTotals.Partials[L])
        << "level " << L;
  }

  ASSERT_EQ(Skip.LoadProfile.size(), NoSkip.LoadProfile.size());
  auto ItB = NoSkip.LoadProfile.begin();
  for (const auto &[Sid, SA] : Skip.LoadProfile) {
    EXPECT_EQ(Sid, ItB->first);
    const cache::PcCacheStats &SB = ItB->second;
    EXPECT_EQ(SA.Accesses, SB.Accesses);
    EXPECT_EQ(SA.MissCycles, SB.MissCycles);
    for (unsigned L = 0; L < 4; ++L) {
      EXPECT_EQ(SA.Hits[L], SB.Hits[L]);
      EXPECT_EQ(SA.Partials[L], SB.Partials[L]);
    }
    ++ItB;
  }

  // A serial run never skips; the diagnostics must say so.
  EXPECT_EQ(NoSkip.SkippedCycles, 0u);
  EXPECT_EQ(NoSkip.SkipEvents, 0u);
}

sim::MachineConfig cfgFor(sim::PipelineKind Pipe, bool SkipEnabled) {
  sim::MachineConfig Cfg = Pipe == sim::PipelineKind::InOrder
                               ? sim::MachineConfig::inOrder()
                               : sim::MachineConfig::outOfOrder();
  Cfg.SkipIdleCycles = SkipEnabled;
  return Cfg;
}

/// Simulates \p P under both modes on \p Pipe and pins the stats.
void diffOnPipe(const ir::Program &P, const workloads::Workload &W,
                sim::PipelineKind Pipe, const std::string &What) {
  bool OkSkip = true, OkNoSkip = true;
  sim::SimStats Skip =
      SuiteRunner::simulate(P, W, cfgFor(Pipe, true), &OkSkip);
  sim::SimStats NoSkip =
      SuiteRunner::simulate(P, W, cfgFor(Pipe, false), &OkNoSkip);
  expectStatsEqual(Skip, NoSkip, What);
  EXPECT_TRUE(OkSkip);
  EXPECT_TRUE(OkNoSkip);
  // On the in-order model the memory-bound workloads stall for hundreds of
  // cycles at a time: skipping must actually engage, or the test only
  // proves --no-skip equals itself.
  if (Pipe == sim::PipelineKind::InOrder) {
    EXPECT_GT(Skip.SkippedCycles, 0u) << What;
  }
}

/// One shared runner: profiles and original binaries are cached across
/// test cases (skipping does not affect profiling).
SuiteRunner &runner() {
  static SuiteRunner R;
  return R;
}

ir::Program enhance(const workloads::Workload &W) {
  core::PostPassTool Tool(runner().originalOf(W), runner().profileOf(W),
                          runner().options());
  return Tool.adapt();
}

class SkipDifferential
    : public ::testing::TestWithParam<sim::PipelineKind> {};

// Every registered paper workload, enhanced binary (triggers, spawns and
// speculative threads all active), both pipelines, both modes.
TEST_P(SkipDifferential, PaperSuiteEnhanced) {
  for (const workloads::Workload &W : workloads::paperSuite()) {
    SCOPED_TRACE(W.Name);
    diffOnPipe(enhance(W), W, GetParam(), "enhanced " + W.Name);
  }
}

// Unadapted baselines: the no-speculation pipelines must skip-match too.
TEST_P(SkipDifferential, BaselinesUnadapted) {
  for (const workloads::Workload &W :
       {workloads::makeEm3d(), workloads::makeMst(), workloads::makeVpr()}) {
    SCOPED_TRACE(W.Name);
    diffOnPipe(runner().originalOf(W), W, GetParam(),
               "baseline " + W.Name);
  }
}

// The Section 4.5 hand-adapted binaries ship their own chk.c placement.
TEST_P(SkipDifferential, HandAdapted) {
  for (const workloads::Workload &W : {workloads::makeMcfHandAdapted(),
                                       workloads::makeHealthHandAdapted()}) {
    SCOPED_TRACE(W.Name);
    diffOnPipe(W.Build(), W, GetParam(), "hand-adapted " + W.Name);
  }
}

// Dynamic throttling: evaluateThrottle mutates trigger health at period
// boundaries, so skipped spans must never cross one. The phased kernel is
// the workload whose chains go stale, producing nonzero ThrottleEvents.
// A non-power-of-two period additionally exercises the modulo boundary
// path (the mask shortcut only covers powers of two).
TEST_P(SkipDifferential, ThrottleBoundaries) {
  workloads::Workload W = workloads::makePhasedKernel();
  ir::Program Enhanced = enhance(W);
  for (uint64_t Period : {uint64_t(16384), uint64_t(10000)}) {
    SCOPED_TRACE("period " + std::to_string(Period));
    sim::MachineConfig Skip = cfgFor(GetParam(), true);
    sim::MachineConfig NoSkip = cfgFor(GetParam(), false);
    Skip.EnableSSPThrottle = NoSkip.EnableSSPThrottle = true;
    Skip.ThrottleEvalPeriod = NoSkip.ThrottleEvalPeriod = Period;
    sim::SimStats A = SuiteRunner::simulate(Enhanced, W, Skip);
    sim::SimStats B = SuiteRunner::simulate(Enhanced, W, NoSkip);
    expectStatsEqual(A, B, "throttled phased kernel");
  }
}

INSTANTIATE_TEST_SUITE_P(Pipelines, SkipDifferential,
                         ::testing::Values(sim::PipelineKind::InOrder,
                                           sim::PipelineKind::OutOfOrder),
                         [](const auto &Info) {
                           return Info.param == sim::PipelineKind::InOrder
                                      ? "InOrder"
                                      : "OutOfOrder";
                         });

// The harness plumbing: a SuiteRunner with skipping disabled produces the
// same BenchResult as the default runner.
TEST(SkipDifferential, SuiteRunnerFlagMatches) {
  workloads::Workload W = workloads::makeEm3d();
  SuiteRunner Default;
  SuiteRunner NoSkip;
  NoSkip.setSkipIdleCycles(false);
  const BenchResult &A = Default.run(W);
  const BenchResult &B = NoSkip.run(W);
  expectStatsEqual(A.BaseIO, B.BaseIO, "BaseIO");
  expectStatsEqual(A.SspIO, B.SspIO, "SspIO");
  expectStatsEqual(A.BaseOOO, B.BaseOOO, "BaseOOO");
  expectStatsEqual(A.SspOOO, B.SspOOO, "SspOOO");
  EXPECT_EQ(A.ChecksumsOk, B.ChecksumsOk);
  EXPECT_GT(A.BaseIO.SkippedCycles, 0u);
}

} // namespace
