//===- tests/roundtrip_test.cpp - Adapted-program text round trips --------===//
//
// The safety net for serving programs over a text protocol: for every
// paper-suite and stress workload, print the *adapted* program, re-parse
// it with ir::Parser, and pin that the reparse is (a) textually
// idempotent, (b) verifier-clean, and (c) simulates bit-identically to
// the in-memory adapted program — including the sid-keyed per-load cache
// profile and the prefetch attribution, which only survive because the
// text format carries deviating instruction ids as `@id` annotations
// (the chk.c triggers a rewrite inserts out of layout order).
//
//===----------------------------------------------------------------------===//

#include "ProfiledFixture.h"
#include "core/PostPassTool.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "sim/Simulator.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace ssp;
using namespace ssp::workloads;

namespace {

/// Full architectural SimStats comparison (the sample_test idiom plus the
/// sid-keyed maps), excluding only the simulator diagnostics.
void expectStatsIdentical(const sim::SimStats &A, const sim::SimStats &B,
                          const std::string &What) {
  SCOPED_TRACE(What);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.MainInsts, B.MainInsts);
  EXPECT_EQ(A.SpecInsts, B.SpecInsts);
  for (unsigned C = 0; C < sim::NumCycleCats; ++C)
    EXPECT_EQ(A.CatCycles[C], B.CatCycles[C]) << "category " << C;
  EXPECT_EQ(A.TriggersFired, B.TriggersFired);
  EXPECT_EQ(A.TriggersIgnored, B.TriggersIgnored);
  EXPECT_EQ(A.SpawnsSucceeded, B.SpawnsSucceeded);
  EXPECT_EQ(A.SpawnsDropped, B.SpawnsDropped);
  EXPECT_EQ(A.SpecWildLoads, B.SpecWildLoads);
  EXPECT_EQ(A.SpecPrefetches, B.SpecPrefetches);
  EXPECT_EQ(A.UsefulPrefetches, B.UsefulPrefetches);
  EXPECT_EQ(A.ThrottleEvents, B.ThrottleEvents);
  EXPECT_EQ(A.Branches, B.Branches);
  EXPECT_EQ(A.BranchMispredicts, B.BranchMispredicts);
  EXPECT_EQ(A.CacheTotals.Accesses, B.CacheTotals.Accesses);
  EXPECT_EQ(A.CacheTotals.TLBMisses, B.CacheTotals.TLBMisses);
  for (unsigned L = 0; L < 4; ++L) {
    EXPECT_EQ(A.CacheTotals.Hits[L], B.CacheTotals.Hits[L]) << "lvl " << L;
    EXPECT_EQ(A.CacheTotals.Partials[L], B.CacheTotals.Partials[L])
        << "lvl " << L;
  }

  // The sid-keyed cache profile: identical keys, in identical insertion
  // order, with identical counts. This is what breaks if instruction ids
  // are not preserved across print -> parse.
  ASSERT_EQ(A.LoadProfile.size(), B.LoadProfile.size());
  auto BIt = B.LoadProfile.begin();
  for (const auto &[Sid, SA] : A.LoadProfile) {
    const auto &[SidB, SB] = *BIt++;
    EXPECT_EQ(Sid, SidB);
    EXPECT_EQ(SA.Accesses, SB.Accesses);
    EXPECT_EQ(SA.MissCycles, SB.MissCycles);
    for (unsigned L = 0; L < 4; ++L) {
      EXPECT_EQ(SA.Hits[L], SB.Hits[L]) << "lvl " << L;
      EXPECT_EQ(SA.Partials[L], SB.Partials[L]) << "lvl " << L;
    }
  }

  // Trigger/slice attribution is also sid-keyed.
  ASSERT_EQ(A.Attribution.size(), B.Attribution.size());
  for (size_t I = 0; I < A.Attribution.size(); ++I) {
    const sim::PrefetchAttribution &PA = A.Attribution[I];
    const sim::PrefetchAttribution &PB = B.Attribution[I];
    EXPECT_EQ(PA.Trigger, PB.Trigger);
    EXPECT_EQ(PA.Slice, PB.Slice);
    EXPECT_EQ(PA.Spawns, PB.Spawns);
    EXPECT_EQ(PA.MaxChainDepth, PB.MaxChainDepth);
    for (unsigned F = 0; F < sim::NumPrefetchFates; ++F)
      EXPECT_EQ(PA.Fates[F], PB.Fates[F]) << "fate " << F;
  }
}

sim::SimStats simulate(const ir::Program &P, const Workload &W,
                       sim::MachineConfig Cfg) {
  ir::LinkedProgram LP = ir::LinkedProgram::link(P);
  mem::SimMemory Mem;
  W.BuildMemory(Mem);
  sim::Simulator Sim(Cfg, LP, Mem);
  return Sim.run();
}

void roundTripWorkload(const Workload &W) {
  SCOPED_TRACE(W.Name);
  const ProfiledWorkload &PW = profiledWorkload(W);
  core::PostPassTool Tool(PW.P, PW.PD);
  ir::Program Adapted = Tool.adapt();

  // Print, re-parse, re-print: the text is idempotent and the reparse is
  // verifier-clean.
  std::string Text = Adapted.str();
  ir::Program Reparsed;
  std::string Err;
  ASSERT_TRUE(ir::parseProgram(Text, Reparsed, Err)) << Err;
  EXPECT_TRUE(ir::verify(Reparsed).empty());
  EXPECT_EQ(Reparsed.str(), Text);

  // Bit-identical simulation on both pipeline models.
  expectStatsIdentical(simulate(Adapted, W, sim::MachineConfig::inOrder()),
                       simulate(Reparsed, W, sim::MachineConfig::inOrder()),
                       "in-order");
  expectStatsIdentical(
      simulate(Adapted, W, sim::MachineConfig::outOfOrder()),
      simulate(Reparsed, W, sim::MachineConfig::outOfOrder()), "ooo");
}

TEST(AdaptedRoundTrip, PaperSuite) {
  for (const Workload &W : paperSuite())
    roundTripWorkload(W);
}

TEST(AdaptedRoundTrip, Stress) {
  roundTripWorkload(makeStress());
  roundTripWorkload(makeStress(8, 6, 3));
}

// The annotations appear exactly where ids deviate from layout order: a
// freshly parsed unannotated program numbers its instructions in layout
// order and so prints with no `@` at all, while a rewrite that inserts
// triggers mid-block produces out-of-order ids and must annotate. (A
// builder-produced program like mcf, whose blocks were filled out of
// order, legitimately carries annotations from the start.)
TEST(AdaptedRoundTrip, AnnotationsAppearExactlyWhereIdsDeviate) {
  static const char *Src = R"(function main (fn0) [entry]:
  bb0 <entry>:
    movi r1 = 64
  bb1 <loop>:
    ld8 r2 = [r1 + 0]
    add r3 = r3, r2
    cmpi.ne p1 = r2, 0
    br (p1) bb1
  bb2 <exit>:
    halt
)";
  ir::Program P;
  std::string Err;
  ASSERT_TRUE(ir::parseProgram(Src, P, Err)) << Err;
  EXPECT_EQ(P.str().find('@'), std::string::npos)
      << "layout-ordered ids need no annotations";

  const ProfiledWorkload &PW = profiledWorkload(makeMcf());
  core::PostPassTool Tool(PW.P, PW.PD);
  core::AdaptationReport Rep;
  ir::Program Adapted = Tool.adapt(&Rep);
  ASSERT_GT(Rep.Rewrite.TriggersInserted, 0u);
  EXPECT_NE(Adapted.str().find('@'), std::string::npos)
      << "inserted triggers get out-of-order ids and must be annotated";
}

} // namespace
