//===- tests/parser_test.cpp - IR text parser tests -----------------------===//
//
// Round-trip property: for every workload, print -> parse -> print must be
// a fixed point, and the parsed program must behave identically (verified
// functionally). Plus targeted syntax and error-message tests.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Program.h"
#include "ir/Verifier.h"
#include "profile/Profile.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace ssp;
using namespace ssp::ir;

namespace {

Program parseOk(const std::string &Text) {
  Program P;
  std::string Err;
  bool Ok = parseProgram(Text, P, Err);
  EXPECT_TRUE(Ok) << Err;
  return P;
}

std::string parseErr(const std::string &Text) {
  Program P;
  std::string Err;
  EXPECT_FALSE(parseProgram(Text, P, Err));
  return Err;
}

} // namespace

TEST(Parser, MinimalProgram) {
  Program P = parseOk("function main (fn0) [entry]:\n"
                      "  bb0 <entry>:\n"
                      "    movi r1 = 42\n"
                      "    halt\n");
  ASSERT_EQ(P.numFuncs(), 1u);
  EXPECT_EQ(P.getEntry(), 0u);
  ASSERT_EQ(P.func(0).numBlocks(), 1u);
  ASSERT_EQ(P.func(0).block(0).Insts.size(), 2u);
  EXPECT_EQ(P.func(0).block(0).Insts[0].Op, Opcode::MovI);
  EXPECT_EQ(P.func(0).block(0).Insts[0].Imm, 42);
}

TEST(Parser, AllInstructionForms) {
  Program P = parseOk(
      "function f (fn0) [entry]:\n"
      "  bb0 <b>:\n"
      "    add r2 = r2, r6\n"
      "    addi r1 = r1, -64\n"
      "    cmp.lt p1 = r1, r4\n"
      "    cmpi.ne p2 = r14, 0\n"
      "    fadd f1 = f2, f3\n"
      "    xtof f1 = r2\n"
      "    ld8 r3 = [r1 + 8]\n"
      "    ldf f2 = [r3 + 0]\n"
      "    st8 [r11 + 0] = r2\n"
      "    stf [r11 + 8] = f1\n"
      "    lfetch [r3 + 0]\n"
      "    call fn1\n"
      "    calli [r5]\n"
      "    lib.st lib[0] = r1\n"
      "    lib.sti lib[2] = 42\n"
      "    lib.ld r1 = lib[0]\n"
      "    nop\n"
      "    br (p1) bb0\n"
      "function g (fn1):\n"
      "  bb0 <e>:\n"
      "    ret\n");
  const auto &Insts = P.func(0).block(0).Insts;
  ASSERT_EQ(Insts.size(), 18u);
  EXPECT_EQ(Insts[1].Imm, -64);
  EXPECT_EQ(Insts[2].Cond, CondCode::LT);
  EXPECT_EQ(Insts[3].Cond, CondCode::NE);
  EXPECT_EQ(Insts[14].Op, Opcode::CopyToLIBI);
  EXPECT_EQ(Insts[14].Target, 2u);
  EXPECT_EQ(Insts[17].Op, Opcode::Br);
}

TEST(Parser, AttachmentKinds) {
  Program P = parseOk("function f (fn0) [entry]:\n"
                      "  bb0 <entry>:\n"
                      "    chk.c bb2\n"
                      "    halt\n"
                      "  bb1 <sl> [slice]:\n"
                      "    kill\n"
                      "  bb2 <st> [stub]:\n"
                      "    spawn bb1\n"
                      "    rfi\n");
  EXPECT_EQ(P.func(0).block(1).Kind, BlockKind::Slice);
  EXPECT_EQ(P.func(0).block(2).Kind, BlockKind::Stub);
  EXPECT_TRUE(isWellFormed(P));
}

TEST(Parser, CommentsAndBlankLines) {
  Program P = parseOk("# a comment\n"
                      "function f (fn0) [entry]:\n"
                      "\n"
                      "  bb0 <entry>:   # trailing comment\n"
                      "    movi r1 = 1  # another\n"
                      "    halt\n");
  EXPECT_EQ(P.func(0).block(0).Insts.size(), 2u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  std::string Err = parseErr("function f (fn0) [entry]:\n"
                             "  bb0 <entry>:\n"
                             "    frobnicate r1\n");
  EXPECT_NE(Err.find("line 3"), std::string::npos);
  EXPECT_NE(Err.find("frobnicate"), std::string::npos);
}

TEST(Parser, RejectsInstructionOutsideBlock) {
  std::string Err = parseErr("function f (fn0):\n    movi r1 = 1\n");
  EXPECT_NE(Err.find("outside a block"), std::string::npos);
}

TEST(Parser, RejectsOutOfOrderFunctionIndex) {
  std::string Err = parseErr("function f (fn3):\n  bb0 <e>:\n    halt\n");
  EXPECT_NE(Err.find("out of order"), std::string::npos);
}

TEST(Parser, RejectsBadRegister) {
  std::string Err = parseErr("function f (fn0) [entry]:\n"
                             "  bb0 <e>:\n"
                             "    movi r999 = 1\n");
  EXPECT_NE(Err.find("register"), std::string::npos);
}

TEST(Parser, RejectsEmptyInput) {
  std::string Err = parseErr("");
  EXPECT_NE(Err.find("no functions"), std::string::npos);
}

TEST(Parser, DataSections) {
  Program P;
  std::string Err;
  DataImage Data;
  bool Ok = parseProgram("data:\n"
                         "  0x8000: 7\n"
                         "  4096: 1 2 -3   # three consecutive words\n"
                         "function f (fn0) [entry]:\n"
                         "  bb0 <e>:\n"
                         "    halt\n"
                         "data:\n"
                         "  0x10000: 9\n",
                         P, Err, &Data);
  ASSERT_TRUE(Ok) << Err;
  ASSERT_EQ(Data.size(), 5u);
  EXPECT_EQ(Data[0], (std::pair<uint64_t, uint64_t>{0x8000, 7}));
  EXPECT_EQ(Data[1], (std::pair<uint64_t, uint64_t>{4096, 1}));
  EXPECT_EQ(Data[2], (std::pair<uint64_t, uint64_t>{4104, 2}));
  EXPECT_EQ(Data[3].second, static_cast<uint64_t>(-3));
  EXPECT_EQ(Data[4], (std::pair<uint64_t, uint64_t>{0x10000, 9}));
}

TEST(Parser, DataRejectsUnalignedAddress) {
  Program P;
  std::string Err;
  DataImage Data;
  EXPECT_FALSE(parseProgram("data:\n  0x8001: 3\n"
                            "function f (fn0) [entry]:\n  bb0 <e>:\n"
                            "    halt\n",
                            P, Err, &Data));
  EXPECT_NE(Err.find("aligned"), std::string::npos);
}

TEST(Parser, ListsumExampleParsesAndRuns) {
  // Keep the shipped example file working.
  std::ifstream In(SSP_SOURCE_DIR "/examples/listsum.ssp");
  ASSERT_TRUE(In.is_open()) << "examples/listsum.ssp missing";
  std::stringstream Buf;
  Buf << In.rdbuf();
  Program P;
  std::string Err;
  DataImage Data;
  ASSERT_TRUE(parseProgram(Buf.str(), P, Err, &Data)) << Err;
  EXPECT_TRUE(isWellFormed(P));
  EXPECT_GT(Data.size(), 100u);
  LinkedProgram LP = LinkedProgram::link(P);
  mem::SimMemory Mem;
  for (const auto &[Addr, Value] : Data)
    Mem.write(Addr, Value);
  profile::collectControlFlowProfile(LP, Mem);
  EXPECT_NE(Mem.read(0x8000), 0u) << "the list sum must be stored";
}

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

namespace {

class RoundTrip : public ::testing::TestWithParam<const char *> {};

workloads::Workload workloadNamed(const std::string &Name) {
  for (workloads::Workload &W : workloads::paperSuite())
    if (W.Name == Name)
      return W;
  if (Name == "mcf.hand")
    return workloads::makeMcfHandAdapted();
  if (Name == "health.hand")
    return workloads::makeHealthHandAdapted();
  return workloads::makeArcKernel(64, 1 << 10);
}

} // namespace

TEST_P(RoundTrip, PrintParsePrintIsFixedPoint) {
  workloads::Workload W = workloadNamed(GetParam());
  Program P = W.Build();
  std::string Text = P.str();
  Program Q = parseOk(Text);
  EXPECT_EQ(Q.str(), Text);
  EXPECT_EQ(Q.getEntry(), P.getEntry());
  EXPECT_TRUE(isWellFormed(Q));
}

TEST_P(RoundTrip, ParsedProgramBehavesIdentically) {
  workloads::Workload W = workloadNamed(GetParam());
  Program P = W.Build();
  Program Q = parseOk(P.str());
  LinkedProgram LP = LinkedProgram::link(Q);
  mem::SimMemory Mem;
  uint64_t Expected = W.BuildMemory(Mem);
  profile::collectControlFlowProfile(LP, Mem);
  EXPECT_EQ(Mem.read(workloads::ResultAddr), Expected);
}

INSTANTIATE_TEST_SUITE_P(Workloads, RoundTrip,
                         ::testing::Values("em3d", "health", "mst",
                                           "treeadd.df", "treeadd.bf",
                                           "mcf", "vpr", "mcf.hand",
                                           "health.hand", "arc-kernel"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           for (char &C : Name)
                             if (C == '.' || C == '-')
                               C = '_';
                           return Name;
                         });

//===----------------------------------------------------------------------===//
// Negative-path hardening: truncated and garbled inputs must come back as
// parse errors (never a crash, silent misparse, or UB in the ctype calls).
//===----------------------------------------------------------------------===//

TEST(ParserHardening, RejectsBadHexAddress) {
  // word() accepts identifier characters, so "0xzz" used to strtoull to 0.
  std::string Err = parseErr("data:\n  0xzz: 3\n"
                             "function f (fn0) [entry]:\n  bb0 <e>:\n"
                             "    halt\n");
  EXPECT_NE(Err.find("hex"), std::string::npos) << Err;
}

TEST(ParserHardening, RejectsOverwideHexAddress) {
  std::string Err = parseErr("data:\n  0x11112222333344445: 3\n"
                             "function f (fn0) [entry]:\n  bb0 <e>:\n"
                             "    halt\n");
  EXPECT_NE(Err.find("hex"), std::string::npos) << Err;
}

TEST(ParserHardening, RejectsBareSignAsInteger) {
  // strtoll would quietly read a lone '-' as 0.
  std::string Err = parseErr("function f (fn0) [entry]:\n  bb0 <e>:\n"
                             "    movi r1 = -\n"
                             "    halt\n");
  EXPECT_NE(Err.find("line 3"), std::string::npos) << Err;
}

TEST(ParserHardening, RejectsNonNumericRegisterSuffix) {
  // "rx" used to strtol to register 0.
  std::string Err = parseErr("function f (fn0) [entry]:\n  bb0 <e>:\n"
                             "    mov rx = r1\n"
                             "    halt\n");
  EXPECT_NE(Err.find("register"), std::string::npos) << Err;
}

TEST(ParserHardening, RejectsNegativeBlockReference) {
  // bb-2 would wrap to a ~4-billion block index.
  std::string Err = parseErr("function f (fn0) [entry]:\n  bb0 <e>:\n"
                             "    jmp bb-2\n");
  EXPECT_NE(Err.find("block"), std::string::npos) << Err;
}

TEST(ParserHardening, HighBitBytesAreAParseErrorNotUB) {
  // Sign-extended high-bit chars passed to isspace/isalnum are UB; the
  // parser must cast through unsigned char and report a clean error.
  std::string Garbled = "function f (fn0) [entry]:\n  bb0 <e>:\n"
                        "    movi r1 = 1\n    halt\n";
  for (size_t Pos :
       {size_t(0), size_t(10), size_t(30), Garbled.size() - 2}) {
    std::string T = Garbled;
    T[Pos] = static_cast<char>(0xC3);
    Program P;
    std::string Err;
    if (!parseProgram(T, P, Err))
      EXPECT_FALSE(Err.empty());
  }
  SUCCEED();
}

TEST(ParserHardening, TruncatedHeaderFixtures) {
  for (const char *Fixture :
       {"function", "function f", "function f (fn", "function f (fn0",
        "function f (fn0)", "function f (fn0) [entry]:\n  bb0",
        "function f (fn0) [entry]:\n  bb0 <e",
        "function f (fn0) [entry]:\n  bb0 <e>:\n    add r1 = r2,"}) {
    SCOPED_TRACE(Fixture);
    EXPECT_FALSE(parseErr(Fixture).empty());
  }
}

// Deterministic mutation fuzz over the shipped example: every prefix
// truncation and a sweep of single-byte corruptions must either parse
// (and then re-verify clean) or fail with a line-numbered error. This is
// the negative-path mirror of ListsumExampleParsesAndRuns.
TEST(ParserHardening, ListsumMutationsNeverCrash) {
  std::ifstream In(SSP_SOURCE_DIR "/examples/listsum.ssp");
  ASSERT_TRUE(In.is_open()) << "examples/listsum.ssp missing";
  std::stringstream Buf;
  Buf << In.rdbuf();
  const std::string Orig = Buf.str();
  ASSERT_GT(Orig.size(), 512u);

  auto Check = [](const std::string &Text) {
    Program P;
    std::string Err;
    DataImage Data;
    if (parseProgram(Text, P, Err, &Data)) {
      // A mutation may still be syntactically valid; it must then be a
      // program the verifier can inspect without crashing.
      ir::verify(P);
    } else {
      EXPECT_FALSE(Err.empty());
      EXPECT_NE(Err.find("line "), std::string::npos) << Err;
    }
  };

  // Truncations at a stride (every byte would be ~100k parses).
  for (size_t Len = 0; Len < Orig.size(); Len += 97)
    Check(Orig.substr(0, Len));

  // Single-byte corruptions: cycle through bytes that hit the interesting
  // paths (high-bit, NUL-adjacent control, sign, hex-breaking letters).
  const unsigned char Replacements[] = {0xFF, 0x80, 0x01, '-', 'z', '(',
                                        ']',  '0',  ' '};
  size_t R = 0;
  for (size_t Pos = 0; Pos < Orig.size(); Pos += 131) {
    std::string T = Orig;
    T[Pos] = static_cast<char>(Replacements[R++ % sizeof(Replacements)]);
    Check(T);
  }
}
