//===- tests/verify_test.cpp - Verification pipeline tests ------------------===//
//
// Exercises the src/verify/ diagnostics engine and check pipeline:
//
//   * diagnostic construction and the text/JSON renderers;
//   * every registered workload's automatic adaptation verifies with zero
//     error diagnostics (translation validation included);
//   * the hand-adapted binaries pass the standalone pipeline;
//   * five hand-corrupted adaptations are each rejected with exactly the
//     expected check id at the expected location.
//
//===----------------------------------------------------------------------===//

#include "core/PostPassTool.h"
#include "verify/PassManager.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace ssp;
using namespace ssp::ir;

namespace {

struct AdaptedWorkload {
  Program Orig, Enhanced;
  core::AdaptationReport Rep;
};

AdaptedWorkload adaptWorkload(const workloads::Workload &W) {
  AdaptedWorkload A;
  A.Orig = W.Build();
  profile::ProfileData PD = core::profileProgram(
      A.Orig, [&](mem::SimMemory &M) { W.BuildMemory(M); });
  core::ToolOptions Opts;
  Opts.FatalOnVerifyError = false; // Findings land in Rep.VerifyDiags.
  core::PostPassTool Tool(A.Orig, PD, Opts);
  A.Enhanced = Tool.adapt(&A.Rep);
  return A;
}

verify::DiagnosticEngine
runPipeline(const Program &P, const Program *Orig = nullptr,
            const verify::AdaptationManifest *M = nullptr) {
  verify::VerifyContext Ctx{P, Orig, M};
  return verify::runStandardPipeline(Ctx);
}

std::vector<verify::Diagnostic> errorsOf(const verify::DiagnosticEngine &DE) {
  return DE.bySeverity(verify::Severity::Error);
}

std::string renderAll(const std::vector<verify::Diagnostic> &Ds,
                      const Program &P) {
  std::string Out;
  for (const verify::Diagnostic &D : Ds)
    Out += verify::renderText(D, &P) + "\n";
  return Out;
}

/// A function-unique instruction id for hand-inserted corruption (the
/// structural dup-id check would otherwise fire on Id collisions).
uint32_t freshId(const Function &F) {
  uint32_t Max = 0;
  for (uint32_t B = 0; B < F.numBlocks(); ++B)
    for (const Instruction &I : F.block(B).Insts)
      Max = std::max(Max, I.Id);
  return Max + 1;
}

/// The arc kernel's adaptation plus the block indices the negative
/// fixtures corrupt: the chaining header, its spawn block, the fallthrough
/// body and the stub.
struct ArcFixture {
  AdaptedWorkload A;
  uint32_t Stub = 0, Hdr = 0, SpawnBlk = 0, Body = 0;

  ArcFixture() : A(adaptWorkload(workloads::makeArcKernel())) {
    const Function &F = A.Enhanced.func(0);
    EXPECT_EQ(A.Rep.Manifest.Slices.size(), 1u);
    Hdr = A.Rep.Manifest.Slices.front().HeaderBlock;
    Stub = A.Rep.Manifest.Slices.front().StubBlock;
    EXPECT_EQ(F.block(Stub).Kind, BlockKind::Stub);
    // The header's trailing conditional branch targets the spawn block,
    // whose trailing jump targets the body.
    const Instruction &HdrBr = F.block(Hdr).Insts.back();
    EXPECT_EQ(HdrBr.Op, Opcode::Br);
    SpawnBlk = HdrBr.Target;
    EXPECT_EQ(F.block(SpawnBlk).Insts.front().Op, Opcode::Spawn);
    Body = F.block(SpawnBlk).Insts.back().Target;
  }

  verify::DiagnosticEngine verify() const {
    return runPipeline(A.Enhanced, &A.Orig, &A.Rep.Manifest);
  }
};

void expectSingleError(const verify::DiagnosticEngine &DE,
                       const Program &P, const std::string &CheckId,
                       uint32_t Func, uint32_t Block, uint32_t Inst) {
  std::vector<verify::Diagnostic> Errs = errorsOf(DE);
  ASSERT_EQ(Errs.size(), 1u) << renderAll(Errs, P);
  EXPECT_EQ(Errs[0].CheckId, CheckId) << renderAll(Errs, P);
  EXPECT_EQ(Errs[0].Loc.Func, Func);
  EXPECT_EQ(Errs[0].Loc.Block, Block);
  EXPECT_EQ(Errs[0].Loc.Inst, Inst);
}

} // namespace

//===----------------------------------------------------------------------===//
// Diagnostics engine and renderers
//===----------------------------------------------------------------------===//

TEST(DiagnosticEngine, CountsAndFiltersBySeverity) {
  verify::DiagnosticEngine DE;
  DE.error("slice.livein", {1, 5, 2}, "r7 read before staged");
  DE.warning("lint.dead-slice", {1, 5, 3}, "dead");
  DE.warningInBlock("lint.bundle", 0, 2, "over-full bundle");
  EXPECT_EQ(DE.errorCount(), 1u);
  EXPECT_EQ(DE.warningCount(), 2u);
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.bySeverity(verify::Severity::Error).size(), 1u);
  EXPECT_EQ(DE.bySeverity(verify::Severity::Warning).size(), 2u);
  EXPECT_EQ(DE.bySeverity(verify::Severity::Note).size(), 0u);
}

TEST(DiagnosticEngine, RenderTextFormatsLocationAndHint) {
  verify::Diagnostic D;
  D.Sev = verify::Severity::Error;
  D.CheckId = "slice.livein";
  D.Kind = verify::LocKind::Inst;
  D.Loc = {1, 5, 2};
  D.Message = "r7 read before staged";
  D.FixHint = "stage r7 in the stub";
  EXPECT_EQ(verify::renderText(D),
            "error[slice.livein] fn1:bb5:2: r7 read before staged "
            "[hint: stage r7 in the stub]");

  verify::Diagnostic Prog;
  Prog.Sev = verify::Severity::Warning;
  Prog.CheckId = "tv.func-count";
  Prog.Kind = verify::LocKind::Program;
  Prog.Message = "function count changed";
  EXPECT_EQ(verify::renderText(Prog),
            "warning[tv.func-count] <program>: function count changed");
}

TEST(DiagnosticEngine, RenderJSONEscapesAndCounts) {
  verify::DiagnosticEngine DE;
  DE.error("stub.clobber", {0, 3, 1}, "writes \"r1\"");
  std::string J = verify::renderJSON(DE);
  EXPECT_NE(J.find("\"errors\":1"), std::string::npos) << J;
  EXPECT_NE(J.find("\"check\":\"stub.clobber\""), std::string::npos) << J;
  EXPECT_NE(J.find("writes \\\"r1\\\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"block\":3"), std::string::npos) << J;
  EXPECT_NE(J.find("\"inst\":1"), std::string::npos) << J;
}

TEST(PassManagerTest, StandardPipelineHasExpectedOrder) {
  verify::PassManager PM = verify::PassManager::standardPipeline();
  std::vector<std::string> Names = PM.passNames();
  ASSERT_EQ(Names.size(), 8u);
  EXPECT_EQ(Names.front(), "structural");
  EXPECT_EQ(Names[5], "speculation");
  EXPECT_EQ(Names[6], "feedback");
  EXPECT_EQ(Names.back(), "stream");
}

//===----------------------------------------------------------------------===//
// Positive: all registered workloads' adaptations verify clean
//===----------------------------------------------------------------------===//

TEST(VerifyPipeline, PaperSuiteAdaptationsHaveZeroErrors) {
  for (const workloads::Workload &W : workloads::paperSuite()) {
    AdaptedWorkload A = adaptWorkload(W);
    EXPECT_EQ(A.Rep.VerifyErrors, 0u)
        << W.Name << ":\n"
        << renderAll(A.Rep.VerifyDiags, A.Enhanced);
  }
}

TEST(VerifyPipeline, KernelAdaptationsHaveZeroErrors) {
  for (const workloads::Workload &W :
       {workloads::makeArcKernel(), workloads::makePhasedKernel()}) {
    AdaptedWorkload A = adaptWorkload(W);
    EXPECT_EQ(A.Rep.VerifyErrors, 0u)
        << W.Name << ":\n"
        << renderAll(A.Rep.VerifyDiags, A.Enhanced);
  }
}

TEST(VerifyPipeline, HandAdaptedBinariesPassStandalonePipeline) {
  for (auto Mk :
       {workloads::makeMcfHandAdapted, workloads::makeHealthHandAdapted}) {
    workloads::Workload W = Mk();
    Program P = W.Build();
    verify::DiagnosticEngine DE = runPipeline(P);
    EXPECT_EQ(DE.errorCount(), 0u)
        << W.Name << ":\n"
        << renderAll(errorsOf(DE), P);
  }
}

//===----------------------------------------------------------------------===//
// Negative: hand-corrupted adaptations are rejected with pinned check ids
//===----------------------------------------------------------------------===//

TEST(VerifyNegative, StoreInSliceIsRejected) {
  ArcFixture FX;
  Function &F = FX.A.Enhanced.func(0);
  // Smuggle a store into the slice body: breaks Section 2's no-store
  // invariant (a speculative thread must never change architectural state).
  Instruction St;
  St.Op = Opcode::Store;
  St.Src1 = ireg(1);
  St.Src2 = ireg(4);
  St.Id = freshId(F);
  F.block(FX.Body).Insts.insert(F.block(FX.Body).Insts.begin(), St);

  expectSingleError(FX.verify(), FX.A.Enhanced, "structural.slice-store",
                    0, FX.Body, 0);
}

TEST(VerifyNegative, MissingLiveInStagingIsRejected) {
  ArcFixture FX;
  Function &F = FX.A.Enhanced.func(0);
  // Drop the stub's first lib.st: the spawned header still lib.lds that
  // slot, so the speculative thread would read a stale/zero value.
  std::vector<Instruction> &Stub = F.block(FX.Stub).Insts;
  ASSERT_EQ(Stub.front().Op, Opcode::CopyToLIB);
  Stub.erase(Stub.begin());
  uint32_t SpawnIdx = 0;
  while (Stub[SpawnIdx].Op != Opcode::Spawn)
    ++SpawnIdx;

  expectSingleError(FX.verify(), FX.A.Enhanced, "slice.livein-staging",
                    0, FX.Stub, SpawnIdx);
}

TEST(VerifyNegative, SpawnToNonSliceBlockIsRejected) {
  ArcFixture FX;
  Function &F = FX.A.Enhanced.func(0);
  // Retarget the stub's spawn at a main-thread body block: speculative
  // execution would run (and re-run) committed program code.
  std::vector<Instruction> &Stub = F.block(FX.Stub).Insts;
  uint32_t SpawnIdx = 0;
  while (Stub[SpawnIdx].Op != Opcode::Spawn)
    ++SpawnIdx;
  Stub[SpawnIdx].Target = 0; // The function entry block.

  expectSingleError(FX.verify(), FX.A.Enhanced, "structural.spawn-target",
                    0, FX.Stub, SpawnIdx);
}

TEST(VerifyNegative, StubClobberIsRejected) {
  ArcFixture FX;
  Function &F = FX.A.Enhanced.func(0);
  // A stub runs *in* the main thread between trigger and rfi; writing any
  // architectural register corrupts the committed program.
  Instruction Add;
  Add.Op = Opcode::AddI;
  Add.Dst = ireg(1);
  Add.Src1 = ireg(1);
  Add.Imm = 1;
  Add.Id = freshId(F);
  F.block(FX.Stub).Insts.insert(F.block(FX.Stub).Insts.begin(), Add);

  expectSingleError(FX.verify(), FX.A.Enhanced, "stub.clobber",
                    0, FX.Stub, 0);
}

TEST(VerifyNegative, UnboundedChainIsRejected) {
  ArcFixture FX;
  Function &F = FX.A.Enhanced.func(0);
  // Make the header re-spawn unconditionally: the chain loses its only
  // termination gate (the loop latch predicate) and would spawn forever.
  Instruction &HdrBr = F.block(FX.Hdr).Insts.back();
  ASSERT_EQ(HdrBr.Op, Opcode::Br);
  HdrBr.Op = Opcode::Jmp;
  HdrBr.Src1 = Reg();

  expectSingleError(FX.verify(), FX.A.Enhanced, "slice.chain-budget",
                    0, FX.SpawnBlk, 0);
}
