//===- tests/smt_test.cpp - SMT machine-level behaviour tests -------------===//
//
// Tests of the multithreaded machine behaviour the SSP paradigm depends
// on: fetch-policy variants, context exhaustion, fill-buffer pressure,
// and SSP event accounting.
//
//===----------------------------------------------------------------------===//

#include "core/PostPassTool.h"
#include "sim/Simulator.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace ssp;
using namespace ssp::workloads;

namespace {

struct AdaptedArc {
  Workload W = makeArcKernel();
  ir::Program Orig;
  ir::Program Enhanced;

  AdaptedArc() : Orig(W.Build()) {
    profile::ProfileData PD = core::profileProgram(Orig, W.BuildMemory);
    core::PostPassTool Tool(Orig, PD);
    Enhanced = Tool.adapt();
  }

  sim::SimStats run(const ir::Program &P, sim::MachineConfig Cfg) {
    ir::LinkedProgram LP = ir::LinkedProgram::link(P);
    mem::SimMemory Mem;
    uint64_t Expected = W.BuildMemory(Mem);
    sim::Simulator Sim(Cfg, LP, Mem);
    sim::SimStats S = Sim.run();
    EXPECT_EQ(Mem.read(ResultAddr), Expected);
    return S;
  }
};

AdaptedArc &shared() {
  static AdaptedArc A;
  return A;
}

} // namespace

TEST(SMT, ICountPolicyPreservesResultsAndHelps) {
  sim::MachineConfig RR = sim::MachineConfig::inOrder();
  sim::MachineConfig IC = sim::MachineConfig::inOrder();
  IC.Fetch = sim::FetchPolicy::ICount;
  sim::SimStats A = shared().run(shared().Enhanced, RR);
  sim::SimStats B = shared().run(shared().Enhanced, IC);
  // Same architectural result (asserted in run()); both still beat the
  // baseline.
  uint64_t Base = shared().run(shared().Orig, RR).Cycles;
  EXPECT_LT(A.Cycles, Base);
  EXPECT_LT(B.Cycles, Base);
}

TEST(SMT, ICountIsDeterministic) {
  sim::MachineConfig IC = sim::MachineConfig::inOrder();
  IC.Fetch = sim::FetchPolicy::ICount;
  sim::SimStats A = shared().run(shared().Enhanced, IC);
  sim::SimStats B = shared().run(shared().Enhanced, IC);
  EXPECT_EQ(A.Cycles, B.Cycles);
}

TEST(SMT, TwoContextsLimitChaining) {
  // With 2 contexts only one speculative thread lives at a time: far
  // fewer overlapped prefetches than with 4 contexts.
  sim::MachineConfig Two = sim::MachineConfig::inOrder();
  Two.NumThreads = 2;
  sim::MachineConfig Four = sim::MachineConfig::inOrder();
  sim::SimStats S2 = shared().run(shared().Enhanced, Two);
  sim::SimStats S4 = shared().run(shared().Enhanced, Four);
  EXPECT_GT(S2.SpawnsDropped + S2.TriggersIgnored, 0u);
  EXPECT_LT(S4.Cycles, S2.Cycles)
      << "more contexts must help the chaining workload";
}

TEST(SMT, SpawnsDroppedWhenContextsExhausted) {
  sim::SimStats S =
      shared().run(shared().Enhanced, sim::MachineConfig::inOrder());
  // The induction chain spawns faster than threads die: drops happen and
  // are counted rather than queued.
  EXPECT_GT(S.SpawnsDropped, 0u);
  EXPECT_GT(S.TriggersIgnored, 0u)
      << "chk.c must act as a nop while contexts are busy";
}

TEST(SMT, FillBufferPressureIsAccounted) {
  // Shrinking the fill buffer to 2 entries forces allocation stalls on a
  // miss-heavy run; the hierarchy must account them.
  sim::MachineConfig Cfg = sim::MachineConfig::inOrder();
  Cfg.Cache.FillBufferEntries = 2;
  sim::SimStats S = shared().run(shared().Enhanced, Cfg);
  EXPECT_GT(S.CacheTotals.FillBufferStallCycles, 0u);
  // And the tiny fill buffer costs cycles vs. the 16-entry default.
  sim::SimStats Full =
      shared().run(shared().Enhanced, sim::MachineConfig::inOrder());
  EXPECT_GT(S.Cycles, Full.Cycles);
}

TEST(SMT, SpeculativeThreadsShareTheCacheHierarchy) {
  // The mechanism SSP relies on: speculative-thread misses install lines
  // the main thread then hits. Partial hits on the main thread's
  // delinquent load are direct evidence.
  sim::SimStats S =
      shared().run(shared().Enhanced, sim::MachineConfig::inOrder());
  uint64_t Partials = 0;
  for (const auto &[Sid, St] : S.LoadProfile)
    for (int L = 1; L < 4; ++L)
      Partials += St.Partials[L];
  uint64_t L1Hits = 0;
  for (const auto &[Sid, St] : S.LoadProfile)
    L1Hits += St.Hits[0];
  EXPECT_GT(Partials + L1Hits, 0u);
}

TEST(SMT, BaselineUnaffectedByThreadCount) {
  // A single-threaded binary must run identically on 2 or 8 contexts.
  sim::MachineConfig Two = sim::MachineConfig::inOrder();
  Two.NumThreads = 2;
  sim::MachineConfig Eight = sim::MachineConfig::inOrder();
  Eight.NumThreads = 8;
  EXPECT_EQ(shared().run(shared().Orig, Two).Cycles,
            shared().run(shared().Orig, Eight).Cycles);
}

TEST(SMT, MainInstsUnchangedByContextCount) {
  sim::MachineConfig Two = sim::MachineConfig::inOrder();
  Two.NumThreads = 2;
  sim::SimStats A = shared().run(shared().Enhanced, Two);
  sim::SimStats B =
      shared().run(shared().Enhanced, sim::MachineConfig::inOrder());
  // Architectural main-thread work may differ only through chk.c firing
  // counts (stub executions); bound the difference.
  double Ratio = static_cast<double>(A.MainInsts) /
                 static_cast<double>(B.MainInsts);
  EXPECT_GT(Ratio, 0.7);
  EXPECT_LT(Ratio, 1.4);
}
