//===- tests/profile_test.cpp - Unit tests for profiling feedback ---------===//

#include "analysis/DependenceGraph.h"
#include "profile/Profile.h"
#include "sim/Simulator.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <set>

using namespace ssp;
using namespace ssp::ir;
using namespace ssp::profile;

namespace {

struct Profiled {
  Program P;
  ProfileData PD;
};

Profiled profileWorkload(const workloads::Workload &W) {
  Profiled R{W.Build(), {}};
  LinkedProgram LP = LinkedProgram::link(R.P);
  mem::SimMemory Mem;
  W.BuildMemory(Mem);
  R.PD = collectControlFlowProfile(LP, Mem);
  return R;
}

} // namespace

TEST(Profile, BlockCountsMatchArcKernel) {
  unsigned Arcs = 200;
  Profiled R = profileWorkload(workloads::makeArcKernel(Arcs, 1 << 12));
  // Entry once, loop once per arc, exit once.
  EXPECT_EQ(R.PD.blockCount(0, 0), 1u);
  EXPECT_EQ(R.PD.blockCount(0, 1), Arcs);
  EXPECT_EQ(R.PD.blockCount(0, 2), 1u);
}

TEST(Profile, EdgeCountsIncludeSelfLoop) {
  unsigned Arcs = 200;
  Profiled R = profileWorkload(workloads::makeArcKernel(Arcs, 1 << 12));
  // The back edge (loop -> loop) executes Arcs-1 times.
  EXPECT_EQ(R.PD.edgeCount(0, 1, 1), Arcs - 1);
  EXPECT_EQ(R.PD.edgeCount(0, 0, 1), 1u);
}

TEST(Profile, TripCountEstimate) {
  unsigned Arcs = 200;
  Profiled R = profileWorkload(workloads::makeArcKernel(Arcs, 1 << 12));
  analysis::FunctionDeps FD(R.P, 0);
  ASSERT_EQ(FD.loops().numLoops(), 1u);
  double Trips = R.PD.tripCountOf(0, FD.loops().loop(0));
  EXPECT_NEAR(Trips, Arcs, 1.0);
}

TEST(Profile, IndirectCallTargetsCaptured) {
  // vpr dispatches through calli to two cost models.
  Profiled R = profileWorkload(workloads::makeVpr());
  ASSERT_FALSE(R.PD.IndirectTargets.empty());
  uint64_t TotalIndirect = 0;
  std::set<uint32_t> Callees;
  for (const analysis::IndirectCallTarget &T : R.PD.IndirectTargets) {
    TotalIndirect += T.Count;
    Callees.insert(T.Callee);
  }
  EXPECT_EQ(Callees.size(), 2u) << "both cost models must be observed";
  EXPECT_GT(TotalIndirect, 100u);
}

TEST(Profile, DirectCallSiteCounts) {
  Profiled R = profileWorkload(workloads::makeMst());
  // main calls hash_lookup once per lookup.
  uint64_t Calls = 0;
  for (const analysis::DirectCallCount &C : R.PD.CallSiteCounts)
    Calls += C.Count;
  EXPECT_EQ(Calls, 3000u);
}

TEST(Profile, DelinquentSelectionCoversMissCycles) {
  workloads::Workload W = workloads::makeArcKernel(400, 1 << 14);
  Program P = W.Build();
  LinkedProgram LP = LinkedProgram::link(P);
  mem::SimMemory Mem;
  W.BuildMemory(Mem);
  ProfileData PD = collectControlFlowProfile(LP, Mem);
  // Timing pass for the cache profile.
  mem::SimMemory Mem2;
  W.BuildMemory(Mem2);
  sim::Simulator Sim(sim::MachineConfig::inOrder(), LP, Mem2);
  addCacheProfile(PD, Sim.run());

  std::vector<DelinquentLoad> Selected =
      selectDelinquentLoads(P, PD, 0.90, 10);
  ASSERT_FALSE(Selected.empty());
  uint64_t Total = 0, Covered = 0;
  for (const auto &[Sid, St] : PD.Loads)
    Total += St.MissCycles;
  for (const DelinquentLoad &D : Selected)
    Covered += D.MissCycles;
  EXPECT_GE(static_cast<double>(Covered), 0.90 * 0.999 *
                                              static_cast<double>(Total));
  // Sorted by miss cycles, descending.
  for (size_t I = 1; I < Selected.size(); ++I)
    EXPECT_GE(Selected[I - 1].MissCycles, Selected[I].MissCycles);
}

TEST(Profile, MaxLoadsCapRespected) {
  workloads::Workload W = workloads::makeEm3d();
  Program P = W.Build();
  LinkedProgram LP = LinkedProgram::link(P);
  mem::SimMemory Mem;
  W.BuildMemory(Mem);
  ProfileData PD = collectControlFlowProfile(LP, Mem);
  mem::SimMemory Mem2;
  W.BuildMemory(Mem2);
  sim::Simulator Sim(sim::MachineConfig::inOrder(), LP, Mem2);
  addCacheProfile(PD, Sim.run());
  EXPECT_LE(selectDelinquentLoads(P, PD, 0.99, 2).size(), 2u);
}

TEST(Profile, StaticIdIndexRoundTrips) {
  Program P = workloads::makeMcf().Build();
  auto Index = buildStaticIdIndex(P);
  for (const auto &[Sid, Ref] : Index) {
    EXPECT_EQ(staticIdFunc(Sid), Ref.Func);
    EXPECT_EQ(Ref.get(P).Id, staticIdInst(Sid));
  }
  EXPECT_EQ(Index.size(), P.numInsts());
}

TEST(Profile, BaselineCyclesRecorded) {
  workloads::Workload W = workloads::makeArcKernel(100, 1 << 12);
  Program P = W.Build();
  LinkedProgram LP = LinkedProgram::link(P);
  mem::SimMemory Mem;
  W.BuildMemory(Mem);
  ProfileData PD = collectControlFlowProfile(LP, Mem);
  mem::SimMemory Mem2;
  W.BuildMemory(Mem2);
  sim::Simulator Sim(sim::MachineConfig::inOrder(), LP, Mem2);
  addCacheProfile(PD, Sim.run());
  EXPECT_GT(PD.BaselineCycles, 0u);
  EXPECT_FALSE(PD.Loads.empty());
}
