//===- tests/tool_test.cpp - End-to-end post-pass tool tests --------------===//
//
// Drives the full pipeline of the paper on the arc kernel (Figure 3's
// shape): profile -> delinquent loads -> slice -> schedule -> trigger ->
// rewrite -> simulate, checking the SSP invariants and that the enhanced
// binary is faster on the in-order model.
//
//===----------------------------------------------------------------------===//

#include "core/PostPassTool.h"
#include "ir/Verifier.h"
#include "sim/Simulator.h"
#include "workloads/Workload.h"

#include "ProfiledFixture.h"

#include <gtest/gtest.h>

using namespace ssp;
using namespace ssp::workloads;
using namespace ssp::core;

namespace {

struct AdaptedRun {
  ir::Program Orig;
  ir::Program Enhanced;
  AdaptationReport Report;
  Workload W;

  sim::SimStats run(const ir::Program &P, sim::MachineConfig Cfg,
                    uint64_t *Checksum = nullptr) const {
    ir::LinkedProgram LP = ir::LinkedProgram::link(P);
    mem::SimMemory Mem;
    W.BuildMemory(Mem);
    sim::Simulator Sim(Cfg, LP, Mem);
    sim::SimStats S = Sim.run();
    if (Checksum)
      *Checksum = Mem.read(ResultAddr);
    return S;
  }
};

AdaptedRun adaptWorkload(Workload W, ToolOptions Opts = ToolOptions()) {
  // Build + profile once per workload per process (see ProfiledFixture.h);
  // only the adaptation itself reruns per test.
  const ProfiledWorkload &PW = profiledWorkload(W);
  AdaptedRun R;
  R.W = PW.W;
  R.Orig = PW.P.clone();
  PostPassTool Tool(R.Orig, PW.PD, Opts);
  R.Enhanced = Tool.adapt(&R.Report);
  return R;
}

} // namespace

TEST(PostPassTool, ArcKernelProducesSlices) {
  AdaptedRun R = adaptWorkload(makeArcKernel());
  EXPECT_GE(R.Report.DelinquentLoads, 1u);
  ASSERT_GE(R.Report.numSlices(), 1u);
  EXPECT_GT(R.Report.Rewrite.TriggersInserted, 0u);
  EXPECT_GT(R.Report.Rewrite.SliceInsts, 0u);
}

TEST(PostPassTool, EnhancedBinaryIsWellFormed) {
  AdaptedRun R = adaptWorkload(makeArcKernel());
  std::vector<std::string> Diags = ir::verify(R.Enhanced);
  EXPECT_TRUE(Diags.empty()) << Diags.front();
}

TEST(PostPassTool, PreservesArchitecturalState) {
  AdaptedRun R = adaptWorkload(makeArcKernel());
  uint64_t Base = 0, Ssp = 0;
  R.run(R.Orig, sim::MachineConfig::inOrder(), &Base);
  R.run(R.Enhanced, sim::MachineConfig::inOrder(), &Ssp);
  EXPECT_EQ(Base, Ssp)
      << "speculative precomputation must not change program results";
}

TEST(PostPassTool, SpeedsUpInOrderArcKernel) {
  AdaptedRun R = adaptWorkload(makeArcKernel());
  sim::SimStats Base = R.run(R.Orig, sim::MachineConfig::inOrder());
  sim::SimStats Ssp = R.run(R.Enhanced, sim::MachineConfig::inOrder());
  EXPECT_GT(Ssp.TriggersFired, 0u);
  EXPECT_GT(Ssp.SpawnsSucceeded, 0u);
  EXPECT_LT(Ssp.Cycles, Base.Cycles)
      << "automatic SSP adaptation should speed up the in-order model";
}

TEST(PostPassTool, SliceUsesChainingForLoop) {
  AdaptedRun R = adaptWorkload(makeArcKernel());
  ASSERT_GE(R.Report.numSlices(), 1u);
  EXPECT_EQ(R.Report.Slices[0].Model, sched::SPModel::Chaining)
      << "a hot do-across loop should select chaining SP";
}

TEST(PostPassTool, DisablingChainingFallsBackToBasic) {
  ToolOptions Opts;
  Opts.EnableChaining = false;
  AdaptedRun R = adaptWorkload(makeArcKernel(), Opts);
  for (const SliceReport &S : R.Report.Slices)
    EXPECT_EQ(S.Model, sched::SPModel::Basic);
}

TEST(PostPassTool, NoStoresInSliceBlocks) {
  AdaptedRun R = adaptWorkload(makeArcKernel());
  for (uint32_t FI = 0; FI < R.Enhanced.numFuncs(); ++FI) {
    const ir::Function &F = R.Enhanced.func(FI);
    for (const ir::BasicBlock &BB : F.blocks()) {
      if (BB.Kind != ir::BlockKind::Slice)
        continue;
      for (const ir::Instruction &I : BB.Insts)
        EXPECT_FALSE(ir::isStore(I.Op))
            << "p-slice contains store: " << I.str();
    }
  }
}

TEST(PostPassTool, ReportSlackAndILPAreSane) {
  AdaptedRun R = adaptWorkload(makeArcKernel());
  ASSERT_GE(R.Report.numSlices(), 1u);
  const SliceReport &S = R.Report.Slices[0];
  EXPECT_GT(S.SlackPerIteration, 0u)
      << "the selected slice must have positive slack";
  EXPECT_GE(S.AvailableILP, 1.0);
  EXPECT_GT(S.Size, 0u);
  EXPECT_GT(S.LiveIns, 0u);
}

TEST(PostPassTool, HeuristicTriggerCostMatchesMinCutOnSimpleLoop) {
  AdaptedRun R = adaptWorkload(makeArcKernel());
  ASSERT_GE(R.Report.numSlices(), 1u);
  const SliceReport &S = R.Report.Slices[0];
  // A single-entry loop: the heuristic trigger is exactly the min cut.
  EXPECT_EQ(S.HeuristicTriggerCost, S.MinCutTriggerCost);
}

TEST(PostPassTool, IdempotentReportAcrossRuns) {
  AdaptedRun A = adaptWorkload(makeArcKernel());
  AdaptedRun B = adaptWorkload(makeArcKernel());
  ASSERT_EQ(A.Report.numSlices(), B.Report.numSlices());
  for (unsigned I = 0; I < A.Report.numSlices(); ++I) {
    EXPECT_EQ(A.Report.Slices[I].Size, B.Report.Slices[I].Size);
    EXPECT_EQ(A.Report.Slices[I].LiveIns, B.Report.Slices[I].LiveIns);
  }
}

TEST(PostPassTool, MaxRegionDepthZeroDisablesAdaptation) {
  ToolOptions Opts;
  Opts.MaxRegionDepth = 0;
  AdaptedRun R = adaptWorkload(makeArcKernel(), Opts);
  EXPECT_EQ(R.Report.numSlices(), 0u);
  EXPECT_EQ(R.Report.Rewrite.TriggersInserted, 0u);
}

TEST(PostPassTool, HugeMinSlackRejectsEverything) {
  ToolOptions Opts;
  Opts.MinSlackCycles = 1u << 30;
  AdaptedRun R = adaptWorkload(makeArcKernel(), Opts);
  EXPECT_EQ(R.Report.numSlices(), 0u);
}

TEST(PostPassTool, CoverageZeroSelectsNoLoads) {
  ToolOptions Opts;
  Opts.MaxDelinquentLoads = 0;
  AdaptedRun R = adaptWorkload(makeArcKernel(), Opts);
  EXPECT_EQ(R.Report.DelinquentLoads, 0u);
  EXPECT_EQ(R.Report.numSlices(), 0u);
}

TEST(PostPassTool, RestartTriggersCanBeDisabled) {
  ToolOptions Opts;
  Opts.EnableRestartTriggers = false;
  AdaptedRun With = adaptWorkload(makeArcKernel());
  AdaptedRun Without = adaptWorkload(makeArcKernel(), Opts);
  EXPECT_LT(Without.Report.Rewrite.TriggersInserted,
            With.Report.Rewrite.TriggersInserted);
}

TEST(PostPassTool, UnadaptedProgramStillRunsCorrectly) {
  // Even when nothing is adapted, the rewrite path must produce a
  // faithful clone.
  ToolOptions Opts;
  Opts.MaxRegionDepth = 0;
  AdaptedRun R = adaptWorkload(makeArcKernel(), Opts);
  uint64_t Base = 0, Clone = 0;
  R.run(R.Orig, sim::MachineConfig::inOrder(), &Base);
  sim::SimStats S = R.run(R.Enhanced, sim::MachineConfig::inOrder(),
                          &Clone);
  EXPECT_EQ(Base, Clone);
  EXPECT_EQ(S.TriggersFired, 0u);
}

TEST(PostPassTool, ProfilesEachWorkloadOncePerProcess) {
  // The shared fixture contract: every adaptWorkload() above reused one
  // profiled arc kernel; profiling must not have rerun per test.
  adaptWorkload(makeArcKernel());
  adaptWorkload(makeArcKernel());
  EXPECT_EQ(profileRuns(), 1u)
      << "profiledWorkload must build and profile each workload once";
}
