//===- tests/profileio_test.cpp - .sspprof text format round trips --------===//
//
// The profile half of the serving serialization: writeProfileText and
// parseProfileText must round-trip every real profile byte-identically
// (canonical order in, canonical order out) and reconstruct every field
// the adaptation pipeline consumes. The negative fixtures pin the strict
// located-error contract malformed daemon requests rely on.
//
//===----------------------------------------------------------------------===//

#include "ProfiledFixture.h"
#include "profile/ProfileIO.h"
#include "sim/Simulator.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace ssp;
using namespace ssp::profile;
using namespace ssp::workloads;

namespace {

void expectDepEdgesEqual(const std::vector<analysis::DepEdgeCount> &A,
                         const std::vector<analysis::DepEdgeCount> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].From, B[I].From) << "edge " << I;
    EXPECT_EQ(A[I].To, B[I].To) << "edge " << I;
    EXPECT_EQ(A[I].Count, B[I].Count) << "edge " << I;
  }
}

void expectProfilesEqual(const ProfileData &A, const ProfileData &B) {
  EXPECT_EQ(A.BaselineCycles, B.BaselineCycles);
  ASSERT_EQ(A.BlockCounts.size(), B.BlockCounts.size());
  for (size_t F = 0; F < A.BlockCounts.size(); ++F)
    EXPECT_EQ(A.BlockCounts[F], B.BlockCounts[F]) << "fn" << F;
  ASSERT_EQ(A.EdgeCounts.size(), B.EdgeCounts.size());
  for (size_t F = 0; F < A.EdgeCounts.size(); ++F)
    EXPECT_EQ(A.EdgeCounts[F], B.EdgeCounts[F]) << "fn" << F;
  ASSERT_EQ(A.CallSiteCounts.size(), B.CallSiteCounts.size());
  for (size_t I = 0; I < A.CallSiteCounts.size(); ++I) {
    EXPECT_EQ(A.CallSiteCounts[I].Site, B.CallSiteCounts[I].Site);
    EXPECT_EQ(A.CallSiteCounts[I].Count, B.CallSiteCounts[I].Count);
  }
  ASSERT_EQ(A.IndirectTargets.size(), B.IndirectTargets.size());
  for (size_t I = 0; I < A.IndirectTargets.size(); ++I) {
    EXPECT_EQ(A.IndirectTargets[I].Site, B.IndirectTargets[I].Site);
    EXPECT_EQ(A.IndirectTargets[I].Callee, B.IndirectTargets[I].Callee);
    EXPECT_EQ(A.IndirectTargets[I].Count, B.IndirectTargets[I].Count);
  }
  // Loads: identical keys in identical insertion order (the format
  // defines file order as the map's order), identical counters.
  ASSERT_EQ(A.Loads.size(), B.Loads.size());
  auto BIt = B.Loads.begin();
  for (const auto &[Sid, SA] : A.Loads) {
    const auto &[SidB, SB] = *BIt++;
    EXPECT_EQ(Sid, SidB);
    EXPECT_EQ(SA.Accesses, SB.Accesses);
    EXPECT_EQ(SA.MissCycles, SB.MissCycles);
    for (unsigned L = 0; L < 4; ++L) {
      EXPECT_EQ(SA.Hits[L], SB.Hits[L]);
      EXPECT_EQ(SA.Partials[L], SB.Partials[L]);
    }
  }
  // Dependence evidence: the fields analysis::SpecDeps classifies from.
  // Zero inst counts are omitted from the text (absent == zero to the
  // classifier), so rows compare modulo trailing zeros.
  EXPECT_EQ(A.HasDepEvidence, B.HasDepEvidence);
  auto TrimZeros = [](std::vector<uint64_t> Row) {
    while (!Row.empty() && Row.back() == 0)
      Row.pop_back();
    return Row;
  };
  ASSERT_EQ(A.InstCounts.size(), B.InstCounts.size());
  for (size_t F = 0; F < A.InstCounts.size(); ++F)
    EXPECT_EQ(TrimZeros(A.InstCounts[F]), TrimZeros(B.InstCounts[F]))
        << "fn" << F;
  expectDepEdgesEqual(A.MemDepCounts, B.MemDepCounts);
  expectDepEdgesEqual(A.RegDepCounts, B.RegDepCounts);
}

TEST(ProfileIO, RoundTripsPaperSuiteByteIdentically) {
  for (const Workload &W : paperSuite()) {
    SCOPED_TRACE(W.Name);
    const ProfileData &PD = profiledWorkload(W).PD;
    std::string Text = writeProfileText(PD);
    ProfileData Parsed;
    std::string Err;
    ASSERT_TRUE(parseProfileText(Text, Parsed, Err)) << Err;
    expectProfilesEqual(PD, Parsed);
    // write(parse(write(PD))) == write(PD): the canonical order is a
    // fixpoint, so cache keys built from the text are stable.
    EXPECT_EQ(writeProfileText(Parsed), Text);
  }
}

TEST(ProfileIO, RoundTripsStressAndIndirectCalls) {
  for (const Workload &W : {makeStress(8, 4, 2), makeHealth(), makeVpr()}) {
    SCOPED_TRACE(W.Name);
    const ProfileData &PD = profiledWorkload(W).PD;
    std::string Text = writeProfileText(PD);
    ProfileData Parsed;
    std::string Err;
    ASSERT_TRUE(parseProfileText(Text, Parsed, Err)) << Err;
    expectProfilesEqual(PD, Parsed);
  }
}

TEST(ProfileIO, CommentsAndBlankLinesAreIgnored) {
  ProfileData PD;
  std::string Err;
  EXPECT_TRUE(parseProfileText("# hello\n\nsspprof v1\n# mid\nfuncs 1\n"
                               "blockcounts 0 2: 5 6  # trailing\n"
                               "baseline 42\n",
                               PD, Err))
      << Err;
  EXPECT_EQ(PD.BaselineCycles, 42u);
  ASSERT_EQ(PD.BlockCounts.size(), 1u);
  EXPECT_EQ(PD.BlockCounts[0], (std::vector<uint64_t>{5, 6}));
}

struct BadCase {
  const char *Name;
  const char *Text;
  const char *ErrSubstring;
};

TEST(ProfileIO, RejectsMalformedInputWithLocatedErrors) {
  const BadCase Cases[] = {
      {"missing header", "funcs 1\n", "header"},
      {"wrong version", "sspprof v2\n", "header"},
      {"empty", "", "missing 'sspprof v1' header"},
      {"unknown record", "sspprof v1\nfuncs 1\nbogus 1 2\n",
       "unknown record 'bogus'"},
      {"record before funcs", "sspprof v1\nblockcounts 0 1: 3\n",
       "before 'funcs'"},
      {"func out of range", "sspprof v1\nfuncs 1\nedge 1 0 0 5\n",
       "out of range"},
      {"duplicate funcs", "sspprof v1\nfuncs 1\nfuncs 2\n",
       "duplicate 'funcs'"},
      {"duplicate baseline", "sspprof v1\nbaseline 1\nbaseline 2\n",
       "duplicate 'baseline'"},
      {"duplicate blockcounts",
       "sspprof v1\nfuncs 1\nblockcounts 0 1: 3\nblockcounts 0 1: 4\n",
       "duplicate 'blockcounts'"},
      {"count arity", "sspprof v1\nfuncs 1\nblockcounts 0 3: 1 2\n",
       "expected 3 counts"},
      {"trailing junk", "sspprof v1\nfuncs 1\nbaseline 7 extra\n",
       "trailing junk"},
      {"negative number", "sspprof v1\nfuncs 1\nbaseline -4\n",
       "malformed 'baseline'"},
      {"overflow", "sspprof v1\nfuncs 1\nbaseline 99999999999999999999\n",
       "malformed 'baseline'"},
      {"duplicate edge", "sspprof v1\nfuncs 1\nedge 0 0 1 5\nedge 0 0 1 6\n",
       "duplicate 'edge'"},
      {"out-of-order calls",
       "sspprof v1\nfuncs 2\ncall 1 0 0 5\ncall 0 0 0 6\n", "out of order"},
      {"out-of-order icalls",
       "sspprof v1\nfuncs 2\nicall 0 0 0 1 5\nicall 0 0 0 1 6\n",
       "out of order"},
      {"duplicate load",
       "sspprof v1\nfuncs 1\nload 0 3 1 0 0 0 1 0 0 0 0 230\n"
       "load 0 3 1 0 0 0 1 0 0 0 0 230\n",
       "duplicate 'load'"},
      {"short load record", "sspprof v1\nfuncs 1\nload 0 3 1 0 0\n",
       "malformed 'load'"},
      // Dependence-evidence records (depevidence/instcount/memdep/regdep).
      {"instcount before depevidence",
       "sspprof v1\nfuncs 1\ninstcount 0 0 5\n", "before 'depevidence'"},
      {"memdep before depevidence",
       "sspprof v1\nfuncs 1\nmemdep 0 0 1 5\n", "before 'depevidence'"},
      {"regdep before depevidence",
       "sspprof v1\nfuncs 1\nregdep 0 0 1 5\n", "before 'depevidence'"},
      {"duplicate depevidence",
       "sspprof v1\nfuncs 1\ndepevidence 1\ndepevidence 1\n",
       "duplicate 'depevidence'"},
      {"depevidence version",
       "sspprof v1\nfuncs 1\ndepevidence 2\n", "unsupported 'depevidence'"},
      {"zero instcount",
       "sspprof v1\nfuncs 1\ndepevidence 1\ninstcount 0 0 0\n",
       "zero 'instcount'"},
      {"out-of-order instcounts",
       "sspprof v1\nfuncs 1\ndepevidence 1\ninstcount 0 2 5\n"
       "instcount 0 1 4\n",
       "out of order"},
      {"duplicate instcount",
       "sspprof v1\nfuncs 1\ndepevidence 1\ninstcount 0 1 5\n"
       "instcount 0 1 5\n",
       "out of order"},
      {"out-of-order memdeps",
       "sspprof v1\nfuncs 1\ndepevidence 1\nmemdep 0 2 3 5\n"
       "memdep 0 1 3 4\n",
       "out of order"},
      {"out-of-order regdeps",
       "sspprof v1\nfuncs 1\ndepevidence 1\nregdep 0 2 3 5\n"
       "regdep 0 1 3 4\n",
       "out of order"},
      {"instcount func out of range",
       "sspprof v1\nfuncs 1\ndepevidence 1\ninstcount 1 0 5\n",
       "out of range"},
      {"memdep func out of range",
       "sspprof v1\nfuncs 1\ndepevidence 1\nmemdep 1 0 1 5\n",
       "out of range"},
      {"truncated instcount",
       "sspprof v1\nfuncs 1\ndepevidence 1\ninstcount 0 1\n",
       "malformed 'instcount'"},
      {"truncated memdep",
       "sspprof v1\nfuncs 1\ndepevidence 1\nmemdep 0 1 2\n",
       "malformed 'memdep'"},
      {"truncated regdep",
       "sspprof v1\nfuncs 1\ndepevidence 1\nregdep 0 1 2\n",
       "malformed 'regdep'"},
      {"instcount count overflow",
       "sspprof v1\nfuncs 1\ndepevidence 1\n"
       "instcount 0 1 99999999999999999999\n",
       "malformed 'instcount'"},
      {"memdep id overflow",
       "sspprof v1\nfuncs 1\ndepevidence 1\nmemdep 0 99999999999 1 5\n",
       "out of 32-bit range"},
      {"depevidence trailing junk",
       "sspprof v1\nfuncs 1\ndepevidence 1 extra\n", "trailing junk"},
  };
  for (const BadCase &C : Cases) {
    SCOPED_TRACE(C.Name);
    ProfileData PD;
    std::string Err;
    EXPECT_FALSE(parseProfileText(C.Text, PD, Err));
    EXPECT_NE(Err.find("line "), std::string::npos) << Err;
    EXPECT_NE(Err.find(C.ErrSubstring), std::string::npos) << Err;
  }
}

// The canonical record order the writer guarantees: the dependence
// evidence forms a trailer — marker first, then instcounts, memdeps,
// regdeps — after every legacy record kind. Cache keys are built from the
// text, so the order is part of the format contract, not a style choice.
TEST(ProfileIO, DependenceRecordsAreACanonicalTrailer) {
  size_t SuiteMemDeps = 0, SuiteRegDeps = 0;
  for (const Workload &W : paperSuite()) {
    SCOPED_TRACE(W.Name);
    const ProfileData &PD = profiledWorkload(W).PD;
    ASSERT_TRUE(PD.HasDepEvidence);
    EXPECT_FALSE(PD.InstCounts.empty());
    SuiteMemDeps += PD.MemDepCounts.size();
    SuiteRegDeps += PD.RegDepCounts.size();

    std::string Text = writeProfileText(PD);
    size_t Ev = Text.find("\ndepevidence 1\n");
    ASSERT_NE(Ev, std::string::npos);
    EXPECT_EQ(Text.find("depevidence", Ev + 2), std::string::npos);
    // No legacy record may follow the marker.
    for (const char *Kw :
         {"\nbaseline ", "\nfuncs ", "\nblockcounts ", "\nedge ", "\ncall ",
          "\nicall ", "\nload "})
      EXPECT_EQ(Text.find(Kw, Ev), std::string::npos) << Kw;
    // Evidence kinds appear in instcount -> memdep -> regdep order.
    size_t Ic = Text.find("\ninstcount ");
    size_t Md = Text.find("\nmemdep ");
    size_t Rd = Text.find("\nregdep ");
    ASSERT_NE(Ic, std::string::npos);
    EXPECT_LT(Ev, Ic);
    if (Md != std::string::npos) {
      EXPECT_LT(Ic, Md);
    }
    if (Rd != std::string::npos) {
      EXPECT_LT(Ic, Rd);
      if (Md != std::string::npos) {
        EXPECT_LT(Md, Rd);
      }
    }
  }
  // The suite exercises both dependence kinds end to end.
  EXPECT_GT(SuiteMemDeps, 0u);
  EXPECT_GT(SuiteRegDeps, 0u);
}

// The parser's totality contract under mutation: every mutant either
// fails with a located "line N:" error or parses into a profile whose
// canonical text is a fixpoint. Nothing may crash or silently accept a
// corrupt record.
void expectParseTotal(const std::string &Text) {
  ProfileData PD;
  std::string Err;
  if (!parseProfileText(Text, PD, Err)) {
    EXPECT_NE(Err.find("line "), std::string::npos) << Err;
    return;
  }
  std::string Canon = writeProfileText(PD);
  ProfileData PD2;
  ASSERT_TRUE(parseProfileText(Canon, PD2, Err)) << Err;
  EXPECT_EQ(writeProfileText(PD2), Canon);
}

TEST(ProfileIO, MutatedDependenceRecordsFailLocatedOrStayCanonical) {
  const ProfileData &PD = profiledWorkload(makeMcf()).PD;
  ASSERT_TRUE(PD.HasDepEvidence);
  std::string Text = writeProfileText(PD);

  std::vector<std::string> Lines;
  for (size_t Pos = 0; Pos < Text.size();) {
    size_t Nl = Text.find('\n', Pos);
    Lines.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }

  auto rebuild = [&](size_t Skip, const std::string &Replace) {
    std::string S;
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (I == Skip)
        S += Replace; // May be empty (deletion) or two lines (duplication).
      else
        S += Lines[I] + "\n";
    }
    return S;
  };

  unsigned Mutants = 0;
  for (size_t I = 0; I < Lines.size(); ++I) {
    const std::string &L = Lines[I];
    if (L.rfind("depevidence", 0) != 0 && L.rfind("instcount", 0) != 0 &&
        L.rfind("memdep", 0) != 0 && L.rfind("regdep", 0) != 0)
      continue;
    SCOPED_TRACE("line " + std::to_string(I + 1) + ": " + L);
    // Truncated record: drop the last token.
    expectParseTotal(rebuild(I, L.substr(0, L.find_last_of(' ')) + "\n"));
    // Unknown record: corrupt the keyword.
    expectParseTotal(rebuild(I, "x" + L + "\n"));
    // Duplicated record: breaks the strict sort (or the marker's
    // uniqueness).
    expectParseTotal(rebuild(I, L + "\n" + L + "\n"));
    // Deleted record: legal for counts/edges, fatal for the marker.
    expectParseTotal(rebuild(I, ""));
    // File truncated mid-record.
    expectParseTotal(Text.substr(0, Text.find(L) + L.size() / 2));
    Mutants += 5;
  }
  // The sweep must actually have covered the evidence trailer.
  EXPECT_GE(Mutants, 5u * 4u);
}

/// Real attribution evidence: adapt mcf, simulate the enhanced binary,
/// and attach the per-trigger fate rollups to the profile.
ProfileData attribProfileOf(const Workload &W) {
  const ProfiledWorkload &PW = profiledWorkload(W);
  core::ToolOptions TO;
  core::PostPassTool Tool(PW.P, PW.PD, TO);
  ir::Program Enhanced = Tool.adapt();
  ir::LinkedProgram LP = ir::LinkedProgram::link(Enhanced);
  mem::SimMemory Mem;
  PW.W.BuildMemory(Mem);
  sim::Simulator Sim(sim::MachineConfig::inOrder(), LP, Mem);
  sim::SimStats S = Sim.run();
  ProfileData PD = PW.PD;
  PD.HasAttrib = true;
  PD.Attrib = S.Attribution;
  return PD;
}

TEST(ProfileIO, AttributionRecordsRoundTripByteIdentically) {
  ProfileData PD = attribProfileOf(makeMcf());
  ASSERT_FALSE(PD.Attrib.empty());
  std::string Text = writeProfileText(PD);
  ProfileData Parsed;
  std::string Err;
  ASSERT_TRUE(parseProfileText(Text, Parsed, Err)) << Err;
  EXPECT_TRUE(Parsed.HasAttrib);

  // Parsed order is the canonical (trigger-sorted) order; every field —
  // including the timeliness slack the feedback policy hoists on — must
  // survive.
  std::vector<sim::PrefetchAttribution> Sorted = PD.Attrib;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const sim::PrefetchAttribution &A,
               const sim::PrefetchAttribution &B) {
              return A.Trigger < B.Trigger;
            });
  ASSERT_EQ(Parsed.Attrib.size(), Sorted.size());
  for (size_t I = 0; I < Sorted.size(); ++I) {
    SCOPED_TRACE("record " + std::to_string(I));
    EXPECT_EQ(Parsed.Attrib[I].Trigger, Sorted[I].Trigger);
    EXPECT_EQ(Parsed.Attrib[I].Slice, Sorted[I].Slice);
    EXPECT_EQ(Parsed.Attrib[I].Spawns, Sorted[I].Spawns);
    EXPECT_EQ(Parsed.Attrib[I].MaxChainDepth, Sorted[I].MaxChainDepth);
    for (unsigned F = 0; F < sim::NumPrefetchFates; ++F)
      EXPECT_EQ(Parsed.Attrib[I].Fates[F], Sorted[I].Fates[F]);
    EXPECT_EQ(Parsed.Attrib[I].LateCycles, Sorted[I].LateCycles);
  }

  // The canonical text is a fixpoint, and the writer canonicalizes any
  // in-memory order — so profile-text cache keys are stable however the
  // attribution was produced.
  EXPECT_EQ(writeProfileText(Parsed), Text);
  std::reverse(Parsed.Attrib.begin(), Parsed.Attrib.end());
  EXPECT_EQ(writeProfileText(Parsed), Text);
}

TEST(ProfileIO, RejectsMalformedAttributionRecords) {
  const char *Hdr = "sspprof v1\nfuncs 2\nbaseline 1\n";
  const BadCase Cases[] = {
      {"fates before the marker", "fates 0 1 0 0 3 2 1 0 0 0 0 9\n",
       "'fates' before 'attrib'"},
      {"duplicate marker", "attrib 1\nattrib 1\n",
       "duplicate 'attrib' record"},
      {"unsupported version", "attrib 2\n",
       "unsupported 'attrib' version"},
      {"marker with junk", "attrib 1 1\n", "trailing junk"},
      {"out of order", "attrib 1\nfates 0 2 0 0 1 1 1 0 0 0 0 0\n"
                       "fates 0 1 0 0 1 1 1 0 0 0 0 0\n",
       "out of order"},
      {"duplicate trigger", "attrib 1\nfates 0 1 0 0 1 1 1 0 0 0 0 0\n"
                            "fates 0 1 0 0 1 1 1 0 0 0 0 0\n",
       "out of order"},
      {"trigger func out of range", "attrib 1\nfates 7 1 0 0 1 1 1 0 0 0 0 0\n",
       "out of range"},
      {"slice func out of range", "attrib 1\nfates 0 1 5 3 1 1 1 0 0 0 0 0\n",
       "out of range"},
      {"truncated fates", "attrib 1\nfates 0 1 0 0 3 2 1 0 0 0 0\n",
       "malformed 'fates' record"},
      {"trailing junk", "attrib 1\nfates 0 1 0 0 3 2 1 0 0 0 0 9 9\n",
       "trailing junk"},
  };
  for (const BadCase &C : Cases) {
    SCOPED_TRACE(C.Name);
    std::string Text = std::string(Hdr) + C.Text;
    ProfileData PD;
    std::string Err;
    EXPECT_FALSE(parseProfileText(Text, PD, Err)) << Text;
    EXPECT_NE(Err.find("line "), std::string::npos) << Err;
    EXPECT_NE(Err.find(C.ErrSubstring), std::string::npos)
        << "got: " << Err;
  }
  // The (0, 0) slice sid is the simulator's "origin unknown" sentinel
  // and must stay accepted even though fn0's index namespace is real.
  ProfileData PD;
  std::string Err;
  EXPECT_TRUE(parseProfileText(std::string(Hdr) +
                                   "attrib 1\nfates 1 4 0 0 3 2 1 0 0 0 0 9\n",
                               PD, Err))
      << Err;
  ASSERT_EQ(PD.Attrib.size(), 1u);
  EXPECT_EQ(PD.Attrib[0].Slice, 0u);
  EXPECT_EQ(PD.Attrib[0].LateCycles, 9u);
}

TEST(ProfileIO, MutatedAttributionRecordsFailLocatedOrStayCanonical) {
  ProfileData PD = attribProfileOf(makeMcf());
  ASSERT_FALSE(PD.Attrib.empty());
  std::string Text = writeProfileText(PD);

  std::vector<std::string> Lines;
  for (size_t Pos = 0; Pos < Text.size();) {
    size_t Nl = Text.find('\n', Pos);
    Lines.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  auto rebuild = [&](size_t Skip, const std::string &Replace) {
    std::string S;
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (I == Skip)
        S += Replace;
      else
        S += Lines[I] + "\n";
    }
    return S;
  };

  unsigned Mutants = 0;
  for (size_t I = 0; I < Lines.size(); ++I) {
    const std::string &L = Lines[I];
    if (L.rfind("attrib", 0) != 0 && L.rfind("fates", 0) != 0)
      continue;
    SCOPED_TRACE("line " + std::to_string(I + 1) + ": " + L);
    expectParseTotal(rebuild(I, L.substr(0, L.find_last_of(' ')) + "\n"));
    expectParseTotal(rebuild(I, "x" + L + "\n"));
    expectParseTotal(rebuild(I, L + "\n" + L + "\n"));
    expectParseTotal(rebuild(I, ""));
    expectParseTotal(Text.substr(0, Text.find(L) + L.size() / 2));
    Mutants += 5;
  }
  // Marker plus at least one fates record must have been swept.
  EXPECT_GE(Mutants, 5u * 2u);
}

TEST(ProfileIO, ErrorLineNumbersAreExact) {
  ProfileData PD;
  std::string Err;
  EXPECT_FALSE(
      parseProfileText("sspprof v1\nfuncs 1\n\nbogus\n", PD, Err));
  EXPECT_EQ(Err.find("line 4:"), 0u) << Err;
}

} // namespace
